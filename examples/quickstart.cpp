// Quickstart: characterize a board, profile an application, and get a
// communication-model recommendation — the complete framework loop of
// Fig. 2 in ~40 lines.
//
//   $ ./quickstart
#include <iostream>

#include "core/framework.h"
#include "soc/presets.h"

int main() {
  using namespace cig;

  // 1. Pick a target platform (or build your own BoardConfig).
  core::Framework framework(soc::jetson_agx_xavier());

  // 2. Describe your application: a CPU producer writing a 1 MiB buffer
  //    and a GPU kernel streaming over it, 4 launches per frame.
  workload::Workload app;
  app.name = "camera-pipeline";
  app.cpu.name = "acquire";
  app.cpu.ops = 100000;
  app.cpu.pattern = mem::PatternSpec{.kind = mem::PatternKind::Linear,
                                     .base = 0x1000'0000,
                                     .extent = MiB(1),
                                     .access_size = 64,
                                     .rw = mem::RwMix::WriteOnly,
                                     .passes = 1,
                                     .line_hint = 64};
  app.gpu.name = "process";
  app.gpu.ops = 2e6;
  app.gpu.utilization = 0.5;
  app.gpu.pattern = mem::PatternSpec{.kind = mem::PatternKind::Linear,
                                     .base = 0x1000'0000,
                                     .extent = MiB(1),
                                     .access_size = 4,
                                     .rw = mem::RwMix::ReadOnly,
                                     .passes = 1,
                                     .line_hint = 64};
  app.h2d_bytes = MiB(1);
  app.iterations = 4;
  app.overlappable = true;

  // 3. Run the full tuning loop: micro-benchmarks -> profile -> decision,
  //    then verify by measuring all three communication models.
  const auto report = framework.tune(app, comm::CommModel::StandardCopy);
  std::cout << report.to_string() << '\n';

  const auto& rec = report.recommendation;
  if (rec.switch_model) {
    std::cout << "=> port the app to " << comm::model_name(rec.suggested)
              << " (expected up to " << (rec.estimated_speedup - 1) * 100
              << "% faster; measured "
              << (report.actual_speedup() - 1) * 100 << "%)\n";
  } else {
    std::cout << "=> keep " << comm::model_name(rec.current) << '\n';
  }
  return 0;
}
