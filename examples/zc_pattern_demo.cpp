// The zero-copy communication pattern (Section III-C), live: a real
// two-thread producer/consumer pipeline over a tiled shared buffer, with
// the determinism check the paper's pattern guarantees, plus the simulated
// timeline showing the overlap it buys.
#include <iostream>

#include "comm/executor.h"
#include "core/zc_pattern.h"
#include "soc/presets.h"
#include "workload/builders.h"
#include "workload/functional.h"

int main() {
  using namespace cig;
  using namespace cig::core;

  const auto board = soc::jetson_agx_xavier();

  // --- functional: threaded tiled pipeline -----------------------------------
  // The CPU produces into its tiles while the "GPU" consumes the tiles of
  // the opposite parity; parities swap each phase, a barrier separates
  // phases, and no per-access synchronisation is needed.
  const auto tiling = make_tiling(board, /*phases=*/6);
  std::cout << "tiling: " << tiling.total_elements << " floats, "
            << tiling.tile_count() << " tiles of " << tiling.tile_elements
            << " elements (one LLC block each)\n";

  double consumed = 0.0;
  TiledBuffer buffer(tiling);
  const auto stats = run_zero_copy_pipeline(
      buffer,
      [](std::span<float> tile, std::uint32_t phase, std::size_t) {
        workload::produce_tile(tile.data(), tile.size(), phase);
      },
      [&consumed](std::span<float> tile, std::uint32_t, std::size_t) {
        workload::consume_tile(tile.data(), tile.size(), consumed);
      },
      tiling.phases, /*concurrent=*/true);
  std::cout << "pipeline: " << stats.phases << " phases, CPU tiles "
            << stats.cpu_tiles << ", GPU tiles " << stats.gpu_tiles
            << ", checksum " << consumed << "\n";

  // Determinism check: the sequential reference must match bit-for-bit.
  double consumed_ref = 0.0;
  TiledBuffer reference(tiling);
  run_zero_copy_pipeline(
      reference,
      [](std::span<float> tile, std::uint32_t phase, std::size_t) {
        workload::produce_tile(tile.data(), tile.size(), phase);
      },
      [&consumed_ref](std::span<float> tile, std::uint32_t, std::size_t) {
        workload::consume_tile(tile.data(), tile.size(), consumed_ref);
      },
      tiling.phases, /*concurrent=*/false);
  std::cout << "determinism: concurrent checksum "
            << (consumed == consumed_ref ? "==" : "!=")
            << " sequential reference\n\n";

  // --- simulated: what the overlap buys on the timeline ------------------------
  soc::SoC soc(board);
  comm::Executor executor(soc);
  auto workload = workload::mb3_workload(board);
  const auto zc = executor.run(workload, comm::CommModel::ZeroCopy);
  const auto sc = executor.run(workload, comm::CommModel::StandardCopy);

  std::cout << "MB3 under SC (serialized, with copies):\n"
            << sc.timeline.render_gantt() << '\n';
  std::cout << "MB3 under ZC (tiled pattern, overlapped):\n"
            << zc.timeline.render_gantt() << '\n';
  std::cout << "SC " << format_time(sc.total) << " -> ZC "
            << format_time(zc.total) << " ("
            << (sc.total / zc.total - 1) * 100 << "% faster, overlap "
            << zc.overlap_fraction * 100 << "%)\n";
  return 0;
}
