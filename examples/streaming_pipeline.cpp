// A streaming camera pipeline on the zero-copy tiled pattern: the CPU
// acquires sensor frames into the pinned tiled buffer while the "GPU"
// consumer reduces each tile — the exact producer/consumer shape the
// paper's Section III-C pattern was designed for.
//
// Functional (real threads, real frames) and simulated (per-frame pattern
// timing on two boards) views side by side.
#include <iostream>

#include "apps/shwfs/image.h"
#include "core/pattern_sim.h"
#include "core/zc_pattern.h"
#include "soc/presets.h"
#include "support/stats.h"

int main() {
  using namespace cig;
  using namespace cig::core;

  const auto board = soc::jetson_agx_xavier();
  constexpr std::uint32_t kFrames = 8;

  // The shared structure holds one sensor frame's worth of pixels (as
  // floats) sized to the GPU LLC; each frame is streamed through it in
  // tile-sized pieces.
  const auto tiling = make_tiling(board, /*phases=*/2);
  TiledBuffer buffer(tiling);
  std::cout << "pipeline buffer: " << tiling.total_elements << " floats in "
            << tiling.tile_count() << " tiles\n";

  RunningStat tile_sums;
  for (std::uint32_t frame_index = 0; frame_index < kFrames; ++frame_index) {
    // Acquire a real synthetic sensor frame (deterministic per index).
    const auto frame = apps::shwfs::make_frame(
        apps::shwfs::SensorGeometry{.image_width = 256,
                                    .image_height = 256,
                                    .subaperture_px = 32},
        apps::shwfs::FrameOptions{.seed = 100 + frame_index});

    double frame_sum = 0.0;
    const auto stats = run_zero_copy_pipeline(
        buffer,
        // CPU producer: copy the frame's pixels into the shared tiles.
        [&](std::span<float> tile, std::uint32_t, std::size_t tile_index) {
          const std::size_t offset = tile_index * tiling.tile_elements;
          for (std::size_t i = 0; i < tile.size(); ++i) {
            const std::size_t p = (offset + i) % frame.pixels.size();
            tile[i] = static_cast<float>(frame.pixels[p]);
          }
        },
        // GPU consumer: per-tile intensity reduction.
        [&](std::span<float> tile, std::uint32_t, std::size_t) {
          double sum = 0;
          for (float v : tile) sum += v;
          frame_sum += sum;
        },
        tiling.phases, /*concurrent=*/true);
    tile_sums.add(frame_sum);
    if (frame_index == 0) {
      std::cout << "frame 0: " << stats.cpu_tiles << " produced / "
                << stats.gpu_tiles << " consumed tiles, intensity sum "
                << frame_sum << '\n';
    }
  }
  std::cout << kFrames << " frames streamed; mean per-frame intensity "
            << tile_sums.mean() << " (stddev " << tile_sums.stddev()
            << ")\n\n";

  // Simulated pattern timing for the same tiling on two boards.
  for (const auto& b : {soc::jetson_tx2(), soc::jetson_agx_xavier()}) {
    soc::SoC soc(b);
    PatternSimulator simulator(soc);
    PatternSimConfig config;
    config.tiling = make_tiling(b, 2);
    const auto result = simulator.simulate(config);
    std::cout << b.name << ": per-frame pattern time "
              << format_time(result.total) << " (overlap "
              << result.overlap_fraction * 100 << "%, skew "
              << format_time(result.skew_time) << ")\n";
  }
  std::cout << "\nThe same pattern that streams at microsecond scale on the\n"
               "I/O-coherent Xavier crawls on the TX2's uncached pinned path\n"
               "— the device, not the code, decides.\n";
  return 0;
}
