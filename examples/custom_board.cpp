// Defining your own unified-memory SoC and characterizing it with the
// micro-benchmark suite — what you would do for a board the presets do not
// cover (e.g. a hypothetical Orin-class device with I/O coherence).
#include <iostream>

#include "core/microbench.h"
#include "soc/board.h"
#include "support/table.h"

int main() {
  using namespace cig;

  // A hypothetical next-generation I/O-coherent SoC.
  soc::BoardConfig board;
  board.name = "hypothetical-orin";
  board.capability = coherence::Capability::HwIoCoherent;

  board.cpu.cores = 12;
  board.cpu.frequency = GHz(2.2);
  board.cpu.ipc = 2.5;
  board.cpu.l1 = {mem::make_geometry(KiB(64), 64, 4), GBps(80), nanosec(1)};
  board.cpu.llc = {mem::make_geometry(MiB(4), 64, 16), GBps(60), nanosec(6)};
  board.cpu.uncached_bandwidth = GBps(8);

  board.gpu.sms = 16;
  board.gpu.lanes_per_sm = 128;
  board.gpu.frequency = GHz(1.3);
  board.gpu.issue_efficiency = 1.0;
  board.gpu.l1 = {mem::make_geometry(KiB(256), 64, 4), GBps(800), nanosec(4)};
  board.gpu.llc = {mem::make_geometry(MiB(4), 64, 16), GBps(450), nanosec(12)};
  board.gpu.launch_overhead = microsec(4);
  board.gpu.uncached_bandwidth = GBps(8);

  board.dram = mem::DramConfig{.bandwidth = GBps(204.8),
                               .latency = nanosec(100),
                               .uncached_efficiency = 0.1,
                               .energy_per_byte = 25e-12};
  board.io_coherence = coherence::IoCoherenceConfig{
      .snoop_bandwidth = GBps(60), .snoop_latency = nanosec(140)};
  board.copy = soc::CopyEngineConfig{.bandwidth = GBps(25),
                                     .per_call_overhead = microsec(2)};
  board.validate();

  // Characterize it: this is what you would hand to the DecisionEngine.
  soc::SoC soc(board);
  core::MicrobenchSuite suite(soc);
  const auto device = suite.characterize();

  Table table({"characteristic", "value"});
  table.add_row({"board", device.board});
  table.add_row({"GPU LL peak (SC)",
                 format_bandwidth(device.gpu_cache_max_throughput())});
  table.add_row({"GPU cache threshold",
                 Table::num(device.gpu_threshold_pct(), 1) + " %"});
  table.add_row({"GPU zone-2 end",
                 Table::num(device.gpu_zone2_end_pct(), 1) + " %"});
  table.add_row({"CPU cache threshold",
                 Table::num(device.cpu_threshold_pct(), 1) + " %"});
  table.add_row({"SC->ZC max speedup",
                 Table::num(device.sc_zc_max_speedup(), 2) + "x"});
  table.add_row({"ZC->SC max speedup",
                 Table::num(device.zc_sc_max_speedup(), 2) + "x"});
  print_table(std::cout, table);

  std::cout << "Interpretation: a generous coherent port (60 GB/s) widens\n"
               "the zone where zero-copy is viable compared to Xavier.\n";
  return 0;
}
