// Case study 2 (Section IV-C): the ORB-SLAM front-end on TX2 and Xavier.
//
// The functional part runs a real two-frame feature pipeline (pyramid,
// FAST-9, rBRIEF, Hamming matching); the simulated part shows why zero-copy
// collapses on the TX2 (GPU-cache-dependent kernels) but breaks even on the
// I/O-coherent Xavier.
#include <iostream>

#include "apps/orbslam/fast.h"
#include "apps/orbslam/matcher.h"
#include "apps/orbslam/orb.h"
#include "apps/orbslam/pyramid.h"
#include "apps/orbslam/workload.h"
#include "core/framework.h"
#include "soc/presets.h"

int main() {
  using namespace cig;
  using namespace cig::apps::orbslam;

  // --- functional front-end on two synthetic frames ---------------------------
  const Image frame0 = make_test_scene(640, 480, 42);
  const Image frame1 = make_test_scene(640, 480, 42, 4.0, 2.0);  // camera move
  Pyramid pyramid(frame0);
  std::cout << "pyramid: " << pyramid.levels() << " levels, "
            << format_bytes(pyramid.total_bytes()) << " total\n";

  auto k0 = fast_detect(frame0);
  auto k1 = fast_detect(frame1);
  const auto d0 = describe(frame0, k0);
  const auto d1 = describe(frame1, k1);
  const auto matches = match_descriptors(d0, d1);
  std::cout << "FAST keypoints: " << k0.size() << " / " << k1.size()
            << ", ORB matches: " << matches.size() << "\n\n";

  // --- communication-model tuning ----------------------------------------------
  for (const auto& board : {soc::jetson_tx2(), soc::jetson_agx_xavier()}) {
    std::cout << "== " << board.name << " ==\n";
    core::Framework framework(board);
    const auto workload = orbslam_workload(board);

    // Profile the app as currently implemented (standard copy).
    const auto rec = framework.analyze(workload, comm::CommModel::StandardCopy);
    std::cout << rec.to_string();

    // What would happen if someone ported it to ZC anyway?
    comm::Executor executor(framework.soc());
    const auto sc = executor.run(workload, comm::CommModel::StandardCopy);
    const auto zc = executor.run(workload, comm::CommModel::ZeroCopy);
    std::cout << "  measured per frame: SC " << format_time(sc.total)
              << " vs ZC " << format_time(zc.total) << " (kernel "
              << format_time(sc.kernel_time_per_iter()) << " -> "
              << format_time(zc.kernel_time_per_iter()) << ")\n\n";
  }

  std::cout << "Paper outcome: TX2 collapses under ZC (70 ms -> 521 ms);\n"
               "Xavier breaks even (30 ms both) thanks to I/O coherence.\n";
  return 0;
}
