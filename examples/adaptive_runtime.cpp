// Adaptive runtime demo: a phasic workload (alternating cache-light and
// cache-heavy phases) streamed through the online controller. The controller
// starts on standard copy, detects the phase changes from the windowed
// eqn-1/2 metrics, and switches the communication model mid-run — then the
// adaptive run is compared against every static model and the per-phase
// oracle.
//
//   $ ./adaptive_runtime
#include <cstdio>
#include <iostream>

#include "core/framework.h"
#include "runtime/replay.h"
#include "soc/presets.h"

int main() {
  using namespace cig;

  core::Framework framework(soc::jetson_tx2());
  const auto phases = workload::phasic_workload_phases(framework.board());

  std::cout << "phasic trace on " << framework.board().name << ":\n";
  for (const auto& phase : phases) {
    std::printf("  %-5s x%u samples (kernel %s)\n",
                phase.cache_heavy ? "heavy" : "light", phase.samples,
                phase.workload.gpu.name.c_str());
  }

  runtime::ReplayOptions options;
  const auto result = runtime::replay_phasic(framework, phases, options);
  const auto ref = runtime::compare_static(framework, phases, options.exec);

  std::cout << '\n' << result.metrics.to_string() << '\n';

  std::cout << "switch log:\n";
  for (const auto& s : result.samples) {
    if (!s.decision.switched && !s.decision.vetoed_by_cost) continue;
    std::printf("  t=%8.1f us  phase %u (%s)  %s %s->%s  pred %.2fx\n",
                s.time * 1e6, s.phase, s.cache_heavy ? "heavy" : "light",
                s.decision.switched ? "switch" : "veto  ",
                comm::model_name(s.decision.model_before),
                comm::model_name(s.decision.switched
                                     ? s.decision.model_after
                                     : s.decision.model_before),
                s.decision.predicted_speedup);
  }

  std::printf("\nadaptive  %10.1f us\n", result.adaptive_time * 1e6);
  std::printf("oracle    %10.1f us  (per-phase best static)\n",
              ref.oracle_time * 1e6);
  for (const comm::CommModel m : core::kAllModels) {
    std::printf("static %s %10.1f us%s\n", comm::model_name(m),
                ref.static_time[core::model_index(m)] * 1e6,
                m == ref.best_static ? "  (best static)"
                : m == ref.worst_static ? "  (worst static)" : "");
  }
  std::printf("adaptive/oracle = %.3f, adaptive/worst-static = %.3f\n",
              result.adaptive_time / ref.oracle_time,
              result.adaptive_time /
                  ref.static_time[core::model_index(ref.worst_static)]);
  return 0;
}
