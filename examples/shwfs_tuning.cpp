// Case study 1 (Section IV-B): tuning the Shack-Hartmann wavefront-sensor
// centroid extraction across the three Jetson boards.
//
// Also demonstrates the *functional* side of the substrate: a synthetic
// sensor frame is generated and centroided for real, so you can see the
// algorithm the simulated workload stands for.
#include <iostream>

#include "apps/shwfs/centroid.h"
#include "apps/shwfs/image.h"
#include "apps/shwfs/workload.h"
#include "core/framework.h"
#include "soc/presets.h"

int main() {
  using namespace cig;
  using namespace cig::apps::shwfs;

  // --- the algorithm itself (functional payload) ---------------------------
  const SensorGeometry sensor{.image_width = 256,
                              .image_height = 256,
                              .subaperture_px = 32};
  const Frame frame = make_frame(sensor);
  const auto centroids = extract_centroids(
      frame, CentroidOptions{.method = Method::WindowedCoG});
  std::cout << "SH-WFS: " << sensor.subaperture_count()
            << " subapertures, centroid RMS error "
            << rms_error(frame, centroids) << " px\n\n";

  // --- the tuning loop on each board ----------------------------------------
  for (const auto& board : soc::jetson_family()) {
    std::cout << "== " << board.name << " ==\n";
    core::Framework framework(board);
    const auto workload = shwfs_workload(board);
    const auto report = framework.tune(workload, comm::CommModel::StandardCopy);
    std::cout << report.recommendation.to_string();

    const auto& sc =
        report.measured[core::model_index(comm::CommModel::StandardCopy)];
    const auto& zc =
        report.measured[core::model_index(comm::CommModel::ZeroCopy)];
    std::cout << "  measured per frame: SC " << format_time(sc.total)
              << ", ZC " << format_time(zc.total) << " ("
              << (sc.total / zc.total - 1) * 100 << "% vs SC)\n\n";
  }

  std::cout << "Paper outcome: keep SC on Nano/TX2 (CPU-cache-dependent),\n"
               "switch to ZC on Xavier (+38% measured, est. up to 69%).\n";
  return 0;
}
