// Tests for the workload layer: task specs, functional payloads, and the
// micro-benchmark builders.
#include <gtest/gtest.h>

#include <cmath>

#include "soc/presets.h"
#include "workload/builders.h"
#include "workload/functional.h"
#include "workload/task.h"

namespace cig::workload {
namespace {

// --- task validation -------------------------------------------------------------

TEST(Task, DefaultWorkloadValidates) {
  Workload w;
  w.cpu.pattern.count = 1;
  w.validate();
  SUCCEED();
}

TEST(TaskDeath, RejectsZeroIterations) {
  Workload w;
  w.iterations = 0;
  EXPECT_DEATH(w.validate(), "Precondition");
}

TEST(TaskDeath, RejectsBadUtilization) {
  Workload w;
  w.gpu.utilization = 0.0;
  EXPECT_DEATH(w.validate(), "Precondition");
}

TEST(TaskDeath, RejectsSubUnityTimeScale) {
  Workload w;
  w.cpu.time_scale = 0.5;
  EXPECT_DEATH(w.validate(), "Precondition");
}

// --- functional payloads -----------------------------------------------------------

TEST(Functional, FpChainIsFiniteAndDeterministic) {
  const double a = fp_chain(1.5, 10000);
  const double b = fp_chain(1.5, 10000);
  EXPECT_TRUE(std::isfinite(a));
  EXPECT_DOUBLE_EQ(a, b);
}

TEST(Functional, FpChainConvergesToFixedPoint) {
  // The chain x -> (sqrt(x)*1.9+0.7)/1.3+0.1 contracts; long runs converge.
  const double x1 = fp_chain(1.0, 100000);
  const double x2 = fp_chain(50.0, 100000);
  EXPECT_NEAR(x1, x2, 1e-9);
}

TEST(Functional, FpChainFlops) {
  EXPECT_DOUBLE_EQ(fp_chain_flops(10), 50.0);
}

TEST(Functional, Reduction2dMatchesNaiveSum) {
  std::vector<double> m(16 * 8);
  double expected = 0;
  for (std::size_t i = 0; i < m.size(); ++i) {
    m[i] = static_cast<double>(i) * 0.25;
    expected += m[i];
  }
  EXPECT_NEAR(reduction_2d(m, 16, 8), expected, 1e-9);
}

TEST(FunctionalDeath, Reduction2dChecksShape) {
  std::vector<double> m(10);
  EXPECT_DEATH(reduction_2d(m, 4, 4), "Precondition");
}

TEST(Functional, FmaSweepTouchesOnlyFraction) {
  std::vector<float> data(1000, 1.0f);
  fma_sweep(data, 0.1, 1);
  // First 100 elements transformed, the rest untouched.
  EXPECT_NE(data[0], 1.0f);
  EXPECT_NE(data[99], 1.0f);
  EXPECT_EQ(data[100], 1.0f);
  EXPECT_EQ(data[999], 1.0f);
}

TEST(Functional, FmaSweepDeterministicChecksum) {
  std::vector<float> a(512, 2.0f), b(512, 2.0f);
  EXPECT_DOUBLE_EQ(fma_sweep(a, 0.5, 4), fma_sweep(b, 0.5, 4));
}

TEST(Functional, SparseUpdateDeterministic) {
  std::vector<float> a(4096, 1.0f), b(4096, 1.0f);
  EXPECT_DOUBLE_EQ(sparse_update(a, 10000, 7), sparse_update(b, 10000, 7));
  EXPECT_EQ(a, b);
}

TEST(Functional, SparseUpdateDifferentSeedsDiffer) {
  std::vector<float> a(4096, 1.0f), b(4096, 1.0f);
  EXPECT_NE(sparse_update(a, 1000, 1), sparse_update(b, 1000, 2));
}

TEST(Functional, ProduceConsumeTileRoundTrip) {
  std::vector<float> tile(97);
  produce_tile(tile.data(), tile.size(), 3);
  double acc = 0;
  consume_tile(tile.data(), tile.size(), acc);
  double expected = 0;
  for (std::size_t i = 0; i < tile.size(); ++i) {
    expected += static_cast<float>(4 * 1000 + i % 97);
  }
  EXPECT_DOUBLE_EQ(acc, expected);
}

// --- builders, per board ------------------------------------------------------------

class BuilderTest : public ::testing::TestWithParam<soc::BoardConfig> {};

TEST_P(BuilderTest, Mb1IsValidAndOverlappable) {
  const auto w = mb1_workload(GetParam());
  w.validate();
  EXPECT_TRUE(w.overlappable);
  EXPECT_GT(w.h2d_bytes, 0u);
  EXPECT_EQ(w.gpu.pattern.kind, mem::PatternKind::Linear);
  EXPECT_EQ(w.cpu.pattern.kind, mem::PatternKind::SingleLocation);
  EXPECT_EQ(w.cpu.mlp, 1.0);  // dependent chain
}

TEST_P(BuilderTest, Mb1MatrixSitsInLlcBand) {
  const auto& board = GetParam();
  const auto w = mb1_workload(board);
  EXPECT_GT(w.gpu.pattern.extent, board.gpu.l1.geometry.capacity);
  EXPECT_LE(w.gpu.pattern.extent, board.gpu.llc.geometry.capacity);
}

TEST_P(BuilderTest, Mb2SpanScalesWithFraction) {
  const auto& board = GetParam();
  const auto small = mb2_workload(board, 1.0 / 16000);
  const auto large = mb2_workload(board, 0.5);
  EXPECT_LT(small.gpu.pattern.extent, large.gpu.pattern.extent);
  EXPECT_EQ(large.gpu.pattern.extent / large.gpu.pattern.passes,
            large.gpu.pattern.extent / large.gpu.pattern.passes);
  small.validate();
  large.validate();
}

TEST_P(BuilderTest, Mb2HasNoCopies) {
  const auto w = mb2_workload(GetParam(), 0.01);
  EXPECT_EQ(w.h2d_bytes, 0u);
  EXPECT_EQ(w.d2h_bytes, 0u);
  EXPECT_FALSE(w.overlappable);
}

TEST_P(BuilderTest, Mb2CpuComputeIsBoardRelative) {
  const auto& board = GetParam();
  const auto w = mb2_cpu_workload(board, 0.1);
  // Fixed ~120 us of arithmetic regardless of board speed.
  const double compute =
      w.cpu.ops / (board.cpu_peak_ops_per_second() * w.cpu.ops_per_cycle);
  EXPECT_NEAR(compute, 120e-6, 1e-9);
}

TEST_P(BuilderTest, Mb3ScalingPreservesLogicalSize) {
  const auto& board = GetParam();
  const auto w1 = mb3_workload(board, 1);
  const auto w8 = mb3_workload(board, 8);
  EXPECT_EQ(w1.h2d_bytes, w8.h2d_bytes);  // logical copies identical
  EXPECT_EQ(w1.gpu.pattern.extent, w8.gpu.pattern.extent * 8);
  EXPECT_DOUBLE_EQ(w8.gpu.time_scale, 8.0);
  EXPECT_DOUBLE_EQ(w1.gpu.time_scale, 1.0);
}

TEST_P(BuilderTest, Mb3IsCacheIndependentShape) {
  const auto& board = GetParam();
  const auto w = mb3_workload(board);
  EXPECT_EQ(w.gpu.pattern.kind, mem::PatternKind::Random);
  EXPECT_GT(w.gpu.pattern.extent, board.gpu.llc.geometry.capacity);
  EXPECT_GT(mem::footprint(w.cpu.pattern), board.cpu.llc.geometry.capacity);
  EXPECT_TRUE(w.overlappable);
}

INSTANTIATE_TEST_SUITE_P(Boards, BuilderTest,
                         ::testing::Values(soc::jetson_nano(),
                                           soc::jetson_tx2(),
                                           soc::jetson_agx_xavier()),
                         [](const auto& info) {
                           std::string n = info.param.name;
                           for (auto& c : n) {
                             if (!std::isalnum(static_cast<unsigned char>(c)))
                               c = '_';
                           }
                           return n;
                         });

TEST(Builders, FractionsAreSortedAndInRange) {
  const auto gpu = mb2_fractions();
  const auto cpu = mb2_cpu_fractions();
  EXPECT_TRUE(std::is_sorted(gpu.begin(), gpu.end()));
  EXPECT_TRUE(std::is_sorted(cpu.begin(), cpu.end()));
  for (double f : gpu) {
    EXPECT_GT(f, 0.0);
    EXPECT_LE(f, 0.5);
  }
  for (double f : cpu) {
    EXPECT_GT(f, 0.0);
    EXPECT_LE(f, 0.5);
  }
}

TEST(BuildersDeath, Mb2RejectsBadFraction) {
  EXPECT_DEATH(mb2_workload(soc::jetson_tx2(), 0.0), "Precondition");
  EXPECT_DEATH(mb2_workload(soc::jetson_tx2(), 0.6), "Precondition");
}

}  // namespace
}  // namespace cig::workload
