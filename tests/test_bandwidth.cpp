// Tests for the shared-DRAM bandwidth arbiter (water-filling scheduler).
#include <gtest/gtest.h>

#include "mem/bandwidth.h"

namespace cig::mem {
namespace {

TEST(Bandwidth, SingleAgentRunsAtOwnCap) {
  const auto shares = contended_schedule({{1e9, GBps(2)}}, GBps(10));
  ASSERT_EQ(shares.size(), 1u);
  EXPECT_NEAR(shares[0].finish_time, 0.5, 1e-9);  // 1 GB at 2 GB/s
}

TEST(Bandwidth, SingleAgentLimitedBySharedBw) {
  const auto shares = contended_schedule({{1e9, GBps(100)}}, GBps(10));
  EXPECT_NEAR(shares[0].finish_time, 0.1, 1e-9);
}

TEST(Bandwidth, EqualAgentsShareFairly) {
  const auto shares =
      contended_schedule({{1e9, GBps(100)}, {1e9, GBps(100)}}, GBps(10));
  EXPECT_NEAR(shares[0].finish_time, 0.2, 1e-9);
  EXPECT_NEAR(shares[1].finish_time, 0.2, 1e-9);
}

TEST(Bandwidth, EarlyFinisherReleasesBandwidth) {
  // Agent 0 moves 1 GB, agent 1 moves 3 GB, 10 GB/s shared, uncapped.
  // Phase 1: both at 5 GB/s until agent 0 finishes at t=0.2 (1 GB).
  // Agent 1 then has 2 GB left at 10 GB/s -> finishes at 0.4.
  const auto shares =
      contended_schedule({{1e9, GBps(100)}, {3e9, GBps(100)}}, GBps(10));
  EXPECT_NEAR(shares[0].finish_time, 0.2, 1e-9);
  EXPECT_NEAR(shares[1].finish_time, 0.4, 1e-9);
}

TEST(Bandwidth, CapLimitsFairShareRedistribution) {
  // Agent 0 capped at 2 GB/s; agent 1 gets the remaining 8 GB/s.
  const auto shares =
      contended_schedule({{2e9, GBps(2)}, {8e9, GBps(100)}}, GBps(10));
  EXPECT_NEAR(shares[0].finish_time, 1.0, 1e-9);
  EXPECT_NEAR(shares[1].finish_time, 1.0, 1e-9);
}

TEST(Bandwidth, ZeroByteAgentsFinishImmediately) {
  const auto shares =
      contended_schedule({{0, GBps(1)}, {1e9, GBps(100)}}, GBps(10));
  EXPECT_DOUBLE_EQ(shares[0].finish_time, 0.0);
  EXPECT_NEAR(shares[1].finish_time, 0.1, 1e-9);
}

TEST(Bandwidth, EmptyDemandsNoWork) {
  EXPECT_TRUE(contended_schedule({}, GBps(10)).empty());
  EXPECT_DOUBLE_EQ(contended_makespan({}, GBps(10)), 0.0);
}

TEST(Bandwidth, MakespanIsMaxFinish) {
  const Seconds makespan =
      contended_makespan({{1e9, GBps(100)}, {3e9, GBps(100)}}, GBps(10));
  EXPECT_NEAR(makespan, 0.4, 1e-9);
}

TEST(Bandwidth, ThreeAgentsStagedFinishes) {
  // 1, 2 and 3 GB, 9 GB/s shared, uncapped: all run at 3 until t=1/3
  // (agent 0 done), then 4.5 each until agent 1 done, then full rate.
  const auto shares = contended_schedule(
      {{1e9, GBps(100)}, {2e9, GBps(100)}, {3e9, GBps(100)}}, GBps(9));
  EXPECT_NEAR(shares[0].finish_time, 1.0 / 3, 1e-9);
  // Agent 1: 1 GB left at t=1/3, rate 4.5 GB/s -> finishes at 1/3 + 2/9.
  EXPECT_NEAR(shares[1].finish_time, 1.0 / 3 + 1.0 / 4.5, 1e-9);
  // Agent 2: by conservation the 6 GB drain exactly at t = 6/9 = 2/3.
  EXPECT_NEAR(shares[2].finish_time, 2.0 / 3, 1e-9);
}

// Conservation property: makespan >= total bytes / shared bandwidth and
// >= each agent's solo time at its cap.
TEST(Bandwidth, ConservationLowerBounds) {
  const std::vector<BandwidthDemand> demands = {
      {2.5e9, GBps(4)}, {1.0e9, GBps(50)}, {0.5e9, GBps(1)}};
  const BytesPerSecond shared = GBps(6);
  const Seconds makespan = contended_makespan(demands, shared);
  double total = 0;
  for (const auto& d : demands) {
    total += d.bytes;
    EXPECT_GE(makespan + 1e-9, d.bytes / d.cap);
  }
  EXPECT_GE(makespan + 1e-9, total / shared);
}

// Work-conserving property: with a single uncapped agent class, the
// makespan equals exactly total/shared.
TEST(Bandwidth, WorkConservingWhenUncapped) {
  const std::vector<BandwidthDemand> demands = {
      {1e9, GBps(100)}, {2e9, GBps(100)}, {4e9, GBps(100)}};
  EXPECT_NEAR(contended_makespan(demands, GBps(7)), 1.0, 1e-9);
}

TEST(BandwidthDeath, RejectsNegativeBytes) {
  EXPECT_DEATH(contended_schedule({{-1.0, GBps(1)}}, GBps(10)),
               "Precondition");
}

TEST(BandwidthDeath, RejectsZeroSharedBandwidth) {
  EXPECT_DEATH(contended_schedule({{1.0, GBps(1)}}, 0), "Precondition");
}

}  // namespace
}  // namespace cig::mem
