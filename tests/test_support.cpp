// Unit tests for the support library: units, RNG, statistics, tables, CSV,
// logging.
#include <gtest/gtest.h>

#include <cctype>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>

#include "support/csv.h"
#include "support/log.h"
#include "support/rng.h"
#include "support/stats.h"
#include "support/table.h"
#include "support/units.h"

namespace cig {
namespace {

// --- units -------------------------------------------------------------------

TEST(Units, TimeConstructors) {
  EXPECT_DOUBLE_EQ(seconds(1.5), 1.5);
  EXPECT_DOUBLE_EQ(millisec(2.0), 2e-3);
  EXPECT_DOUBLE_EQ(microsec(3.0), 3e-6);
  EXPECT_DOUBLE_EQ(nanosec(4.0), 4e-9);
}

TEST(Units, TimeConversionRoundTrip) {
  EXPECT_DOUBLE_EQ(to_us(microsec(453.5)), 453.5);
  EXPECT_DOUBLE_EQ(to_ms(millisec(70)), 70);
  EXPECT_DOUBLE_EQ(to_ns(nanosec(120)), 120);
}

TEST(Units, SizeConstructors) {
  EXPECT_EQ(KiB(1), 1024u);
  EXPECT_EQ(MiB(2), 2u * 1024 * 1024);
  EXPECT_EQ(GiB(1), 1024ull * 1024 * 1024);
}

TEST(Units, BandwidthIsDecimal) {
  EXPECT_DOUBLE_EQ(GBps(1.28), 1.28e9);
  EXPECT_DOUBLE_EQ(to_GBps(GBps(97.34)), 97.34);
  EXPECT_DOUBLE_EQ(MBps(500), 5e8);
}

TEST(Units, FrequencyConstructors) {
  EXPECT_DOUBLE_EQ(MHz(921), 921e6);
  EXPECT_DOUBLE_EQ(GHz(1.3), 1.3e9);
}

TEST(Units, FormatTimePicksScale) {
  EXPECT_EQ(format_time(seconds(1.5)), "1.500 s");
  EXPECT_EQ(format_time(millisec(70)), "70.00 ms");
  EXPECT_EQ(format_time(microsec(453.54)), "453.54 us");
  EXPECT_EQ(format_time(nanosec(120)), "120.0 ns");
}

TEST(Units, FormatBytesPicksScale) {
  EXPECT_EQ(format_bytes(512), "512 B");
  EXPECT_EQ(format_bytes(KiB(256)), "256.00 KiB");
  EXPECT_EQ(format_bytes(MiB(512)), "512.00 MiB");
  EXPECT_EQ(format_bytes(GiB(2)), "2.00 GiB");
}

TEST(Units, FormatBandwidth) {
  EXPECT_EQ(format_bandwidth(GBps(97.34)), "97.34 GB/s");
}

// --- rng ---------------------------------------------------------------------

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += a.next() == b.next();
  EXPECT_LT(equal, 5);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(rng.below(13), 13u);
}

TEST(Rng, BelowCoversRange) {
  Rng rng(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(3);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(-3.0, 7.0);
    EXPECT_GE(v, -3.0);
    EXPECT_LT(v, 7.0);
  }
}

TEST(Rng, SplitMixAdvancesState) {
  std::uint64_t state = 1;
  const auto a = splitmix64(state);
  const auto b = splitmix64(state);
  EXPECT_NE(a, b);
}

// --- stats -------------------------------------------------------------------

TEST(RunningStat, EmptyIsZero) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0);
}

TEST(RunningStat, KnownValues) {
  RunningStat s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStat, SingleSampleVarianceZero) {
  RunningStat s;
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
}

TEST(RunningStat, ResetClears) {
  RunningStat s;
  s.add(1);
  s.add(2);
  s.reset();
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0);
}

TEST(Stats, PercentileInterpolates) {
  std::vector<double> v{10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 10);
  EXPECT_DOUBLE_EQ(percentile(v, 1.0), 40);
  EXPECT_DOUBLE_EQ(percentile(v, 0.5), 25);
}

TEST(Stats, MedianOddCount) {
  EXPECT_DOUBLE_EQ(median({3, 1, 2}), 2);
}

TEST(Stats, GeometricMean) {
  EXPECT_NEAR(geometric_mean({1.0, 4.0}), 2.0, 1e-12);
  EXPECT_NEAR(geometric_mean({2.0, 2.0, 2.0}), 2.0, 1e-12);
}

TEST(StatsDeath, PercentileRejectsEmpty) {
  EXPECT_DEATH(percentile({}, 0.5), "Precondition");
}

TEST(StatsDeath, GeometricMeanRejectsNonPositive) {
  EXPECT_DEATH(geometric_mean({1.0, 0.0}), "Precondition");
}

// --- table -------------------------------------------------------------------

TEST(Table, CountsRowsAndColumns) {
  Table t({"a", "b"});
  t.add_row({"1", "2"});
  t.add_row({"3", "4"});
  EXPECT_EQ(t.rows(), 2u);
  EXPECT_EQ(t.columns(), 2u);
}

TEST(Table, RenderContainsCells) {
  Table t({"Board", "GB/s"});
  t.add_row({"TX2", "97.34"});
  const std::string out = t.render();
  EXPECT_NE(out.find("Board"), std::string::npos);
  EXPECT_NE(out.find("97.34"), std::string::npos);
  EXPECT_NE(out.find("TX2"), std::string::npos);
}

TEST(Table, MarkdownHasSeparatorRow) {
  Table t({"x"});
  t.add_row({"1"});
  const std::string md = t.render_markdown();
  EXPECT_NE(md.find("|---|"), std::string::npos);
  EXPECT_NE(md.find("| 1 |"), std::string::npos);
}

TEST(Table, NumFormatsPrecision) {
  EXPECT_EQ(Table::num(1.23456, 2), "1.23");
  EXPECT_EQ(Table::num(1.5, 0), "2");
}

TEST(TableDeath, RowArityMismatch) {
  Table t({"a", "b"});
  EXPECT_DEATH(t.add_row({"only-one"}), "Precondition");
}

// --- csv ---------------------------------------------------------------------

TEST(Csv, WritesHeaderAndRows) {
  const std::string path = ::testing::TempDir() + "/cig_csv_test.csv";
  {
    CsvWriter csv(path, {"x", "y"});
    csv.add_row(std::vector<std::string>{"1", "2"});
    csv.add_row(std::vector<double>{3.5, 4.5});
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "x,y");
  std::getline(in, line);
  EXPECT_EQ(line, "1,2");
  std::getline(in, line);
  EXPECT_EQ(line, "3.5,4.5");
  std::remove(path.c_str());
}

TEST(Csv, EscapesCommasAndQuotes) {
  const std::string path = ::testing::TempDir() + "/cig_csv_escape.csv";
  {
    CsvWriter csv(path, {"v"});
    csv.add_row(std::vector<std::string>{"a,b"});
    csv.add_row(std::vector<std::string>{"say \"hi\""});
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);  // header
  std::getline(in, line);
  EXPECT_EQ(line, "\"a,b\"");
  std::getline(in, line);
  EXPECT_EQ(line, "\"say \"\"hi\"\"\"");
  std::remove(path.c_str());
}

// --- log ---------------------------------------------------------------------

TEST(Log, ParseLevels) {
  EXPECT_EQ(parse_log_level("debug"), LogLevel::Debug);
  EXPECT_EQ(parse_log_level("INFO"), LogLevel::Info);
  EXPECT_EQ(parse_log_level("Warn"), LogLevel::Warn);
  EXPECT_EQ(parse_log_level("error"), LogLevel::Error);
  EXPECT_EQ(parse_log_level("off"), LogLevel::Off);
  EXPECT_EQ(parse_log_level("bogus"), LogLevel::Warn);
}

TEST(Log, SetAndGetLevel) {
  const LogLevel before = log_level();
  set_log_level(LogLevel::Error);
  EXPECT_EQ(log_level(), LogLevel::Error);
  set_log_level(before);
}

TEST(Log, LineCarriesIso8601UtcTimestamp) {
  const std::string line =
      detail::format_log_line(LogLevel::Warn, nullptr, "message");
  // 2026-08-06T12:34:56.789Z [cig WARN] message\n
  ASSERT_GE(line.size(), 25u);
  const std::string stamp = line.substr(0, 24);
  EXPECT_EQ(stamp[4], '-');
  EXPECT_EQ(stamp[7], '-');
  EXPECT_EQ(stamp[10], 'T');
  EXPECT_EQ(stamp[13], ':');
  EXPECT_EQ(stamp[16], ':');
  EXPECT_EQ(stamp[19], '.');
  EXPECT_EQ(stamp[23], 'Z');
  for (const std::size_t i : {0u, 1u, 2u, 3u, 5u, 6u, 8u, 9u, 11u, 12u, 14u,
                              15u, 17u, 18u, 20u, 21u, 22u}) {
    EXPECT_TRUE(std::isdigit(static_cast<unsigned char>(stamp[i])))
        << "position " << i << " in " << stamp;
  }
  EXPECT_NE(line.find(" [cig WARN] message\n"), std::string::npos);
}

TEST(Log, ComponentTagIsOptional) {
  const std::string tagged =
      detail::format_log_line(LogLevel::Info, "comm", "hello");
  EXPECT_NE(tagged.find("[cig INFO comm] hello\n"), std::string::npos);
  const std::string untagged =
      detail::format_log_line(LogLevel::Info, "", "hello");
  EXPECT_NE(untagged.find("[cig INFO] hello\n"), std::string::npos);
}

TEST(Log, LineIsSingleTerminatedWrite) {
  const std::string line =
      detail::format_log_line(LogLevel::Error, "sim", "one\ntwo");
  // Exactly one trailing newline terminates the line (embedded newlines in
  // the message are the caller's own business).
  EXPECT_EQ(line.back(), '\n');
  EXPECT_EQ(line.find("[cig ERROR sim] one\ntwo\n"),
            line.size() - std::string("[cig ERROR sim] one\ntwo\n").size());
}

}  // namespace
}  // namespace cig
