// Tests for the event-driven simulator of the zero-copy tiled pattern.
#include <gtest/gtest.h>

#include "core/pattern_sim.h"
#include "soc/presets.h"

namespace cig::core {
namespace {

PatternSimConfig config_for(const soc::BoardConfig& board,
                            std::uint32_t phases = 4) {
  PatternSimConfig config;
  config.tiling = make_tiling(board, phases);
  return config;
}

TEST(PatternSim, ProducesConsistentTimeline) {
  soc::SoC soc(soc::jetson_agx_xavier());
  PatternSimulator simulator(soc);
  const auto result = simulator.simulate(config_for(soc.config()));
  EXPECT_GT(result.total, 0.0);
  EXPECT_TRUE(result.timeline.lanes_consistent());
  // One CPU and one GPU segment per phase.
  EXPECT_EQ(result.timeline.segments().size(), 2u * 4);
}

TEST(PatternSim, TotalBoundsBusyTimes) {
  soc::SoC soc(soc::jetson_tx2());
  PatternSimulator simulator(soc);
  const auto result = simulator.simulate(config_for(soc.config()));
  EXPECT_GE(result.total + 1e-12, result.cpu_busy);
  EXPECT_GE(result.total + 1e-12, result.gpu_busy);
  EXPECT_LE(result.total,
            result.cpu_busy + result.gpu_busy + result.barrier_time + 1e-9);
}

TEST(PatternSim, OverlapIsSubstantial) {
  soc::SoC soc(soc::jetson_agx_xavier());
  PatternSimulator simulator(soc);
  const auto result = simulator.simulate(config_for(soc.config()));
  EXPECT_GT(result.overlap_fraction, 0.4);
}

TEST(PatternSim, MorePhasesMoreBarrierTime) {
  soc::SoC soc(soc::jetson_agx_xavier());
  PatternSimulator simulator(soc);
  const auto few = simulator.simulate(config_for(soc.config(), 2));
  const auto many = simulator.simulate(config_for(soc.config(), 16));
  EXPECT_GT(many.barrier_time, few.barrier_time);
  EXPECT_NEAR(many.barrier_time, 16 * microsec(2), 1e-12);
}

TEST(PatternSim, SkewReflectsSideImbalance) {
  soc::SoC soc(soc::jetson_tx2());
  PatternSimulator simulator(soc);
  auto config = config_for(soc.config());
  // Pile arithmetic on the CPU side only: skew must grow.
  const auto balanced = simulator.simulate(config);
  config.cpu_ops_per_element = 400.0;
  const auto skewed = simulator.simulate(config);
  EXPECT_GT(skewed.skew_time, balanced.skew_time);
}

TEST(PatternSim, XavierFasterThanTx2PerByte) {
  // The TX2's 1.28 GB/s uncached GPU path must dominate its pattern time;
  // Xavier's coherent port is ~25x faster.
  soc::SoC tx2(soc::jetson_tx2());
  soc::SoC xavier(soc::jetson_agx_xavier());
  PatternSimulator sim_tx2(tx2);
  PatternSimulator sim_xavier(xavier);
  const auto config_tx2 = config_for(tx2.config());
  const auto config_xavier = config_for(xavier.config());
  const double bytes_tx2 =
      static_cast<double>(config_tx2.tiling.total_elements) * 4;
  const double bytes_xavier =
      static_cast<double>(config_xavier.tiling.total_elements) * 4;
  const double tx2_per_byte =
      sim_tx2.simulate(config_tx2).total / bytes_tx2;
  const double xavier_per_byte =
      sim_xavier.simulate(config_xavier).total / bytes_xavier;
  EXPECT_GT(tx2_per_byte, xavier_per_byte * 5);
}

TEST(PatternSim, TileTimesScaleWithTileSize) {
  soc::SoC soc(soc::jetson_agx_xavier());
  PatternSimulator simulator(soc);
  auto small = config_for(soc.config());
  auto large = config_for(soc.config());
  large.tiling.tile_elements = small.tiling.tile_elements * 16;
  EXPECT_GT(simulator.gpu_tile_time(large), simulator.gpu_tile_time(small));
  EXPECT_GT(simulator.cpu_tile_time(large), simulator.cpu_tile_time(small));
}

TEST(PatternSim, CpuSideCheapOnIoCoherentBoards) {
  // Xavier's CPU keeps its caches under ZC; the TX2's does not. Per-tile
  // CPU cost (normalised by CPU speed) must be far worse on the TX2.
  soc::SoC tx2(soc::jetson_tx2());
  soc::SoC xavier(soc::jetson_agx_xavier());
  PatternSimulator sim_tx2(tx2);
  PatternSimulator sim_xavier(xavier);
  const auto c_tx2 = config_for(tx2.config());
  const auto c_xavier = config_for(xavier.config());
  EXPECT_GT(sim_tx2.cpu_tile_time(c_tx2),
            sim_xavier.cpu_tile_time(c_xavier) * 3);
}

TEST(PatternSimDeath, RejectsInvalidTiling) {
  soc::SoC soc(soc::generic_board());
  PatternSimulator simulator(soc);
  PatternSimConfig config;
  config.tiling.total_elements = 4;   // a single tile: no parities
  config.tiling.tile_elements = 16;
  EXPECT_DEATH(simulator.simulate(config), "Precondition");
}

}  // namespace
}  // namespace cig::core
