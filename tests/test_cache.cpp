// Unit and property tests for the set-associative cache simulator.
#include <gtest/gtest.h>

#include <tuple>

#include "mem/cache.h"
#include "mem/geometry.h"
#include "support/rng.h"

namespace cig::mem {
namespace {

// --- geometry -------------------------------------------------------------------

TEST(Geometry, BasicDerivedQuantities) {
  const auto g = make_geometry(KiB(32), 64, 2);
  EXPECT_EQ(g.lines(), 512u);
  EXPECT_EQ(g.sets(), 256u);
}

TEST(Geometry, AddressDecomposition) {
  const auto g = make_geometry(KiB(4), 64, 2);  // 32 sets
  EXPECT_EQ(g.line_of(0), 0u);
  EXPECT_EQ(g.line_of(63), 0u);
  EXPECT_EQ(g.line_of(64), 1u);
  EXPECT_EQ(g.set_of(64), 1u);
  EXPECT_EQ(g.set_of(64 * 32), 0u);  // wraps around the sets
  EXPECT_EQ(g.tag_of(64 * 32), 1u);
}

TEST(Geometry, ValidityChecks) {
  const auto valid = [](Bytes capacity, std::uint32_t line,
                        std::uint32_t ways) {
    return CacheGeometry{capacity, line, ways}.valid();
  };
  EXPECT_TRUE(valid(KiB(32), 64, 2));
  EXPECT_FALSE(valid(0, 64, 2));
  EXPECT_FALSE(valid(KiB(32), 0, 2));
  EXPECT_FALSE(valid(KiB(32), 64, 0));
  EXPECT_FALSE(valid(KiB(31), 64, 2));  // not a power of two
  EXPECT_FALSE(valid(KiB(32), 48, 2));
}

TEST(Geometry, FullyAssociativeSingleSet) {
  const auto g = make_geometry(KiB(1), 64, 16);
  EXPECT_EQ(g.sets(), 1u);
  EXPECT_TRUE(g.valid());
}

TEST(GeometryDeath, MakeGeometryRejectsInvalid) {
  EXPECT_DEATH(make_geometry(KiB(31), 64, 2), "Precondition");
}

TEST(Geometry, ToStringDescribes) {
  const auto g = make_geometry(MiB(2), 64, 16);
  const std::string s = g.to_string();
  EXPECT_NE(s.find("2.00 MiB"), std::string::npos);
  EXPECT_NE(s.find("16-way"), std::string::npos);
}

// --- basic cache behaviour --------------------------------------------------------

TEST(Cache, ColdMissThenHit) {
  SetAssocCache c(make_geometry(KiB(4), 64, 2), Replacement::Lru);
  EXPECT_FALSE(c.access(0x100, AccessKind::Read).hit);
  EXPECT_TRUE(c.access(0x100, AccessKind::Read).hit);
  EXPECT_TRUE(c.access(0x13F, AccessKind::Read).hit);  // same line
  EXPECT_EQ(c.stats().read_misses, 1u);
  EXPECT_EQ(c.stats().read_hits, 2u);
}

TEST(Cache, WriteMarksDirty) {
  SetAssocCache c(make_geometry(KiB(4), 64, 2), Replacement::Lru);
  c.access(0x0, AccessKind::Write);
  EXPECT_EQ(c.dirty_lines(), 1u);
  EXPECT_EQ(c.valid_lines(), 1u);
}

TEST(Cache, ReadDoesNotDirty) {
  SetAssocCache c(make_geometry(KiB(4), 64, 2), Replacement::Lru);
  c.access(0x0, AccessKind::Read);
  EXPECT_EQ(c.dirty_lines(), 0u);
}

TEST(Cache, ProbeDoesNotMutate) {
  SetAssocCache c(make_geometry(KiB(4), 64, 2), Replacement::Lru);
  EXPECT_FALSE(c.probe(0x0));
  c.access(0x0, AccessKind::Read);
  const auto stats_before = c.stats().accesses();
  EXPECT_TRUE(c.probe(0x0));
  EXPECT_EQ(c.stats().accesses(), stats_before);
}

TEST(Cache, EvictionOnSetConflict) {
  // 2-way, 32 sets: three lines mapping to set 0 must evict one.
  SetAssocCache c(make_geometry(KiB(4), 64, 2), Replacement::Lru);
  const std::uint64_t set_stride = 64 * 32;
  c.access(0 * set_stride, AccessKind::Read);
  c.access(1 * set_stride, AccessKind::Read);
  c.access(2 * set_stride, AccessKind::Read);
  EXPECT_EQ(c.stats().evictions, 1u);
}

TEST(Cache, LruEvictsLeastRecentlyUsed) {
  SetAssocCache c(make_geometry(KiB(4), 64, 2), Replacement::Lru);
  const std::uint64_t s = 64 * 32;
  c.access(0 * s, AccessKind::Read);  // A
  c.access(1 * s, AccessKind::Read);  // B
  c.access(0 * s, AccessKind::Read);  // touch A -> B is LRU
  c.access(2 * s, AccessKind::Read);  // C evicts B
  EXPECT_TRUE(c.probe(0 * s));
  EXPECT_FALSE(c.probe(1 * s));
  EXPECT_TRUE(c.probe(2 * s));
}

TEST(Cache, FifoIgnoresRecency) {
  SetAssocCache c(make_geometry(KiB(4), 64, 2), Replacement::Fifo);
  const std::uint64_t s = 64 * 32;
  c.access(0 * s, AccessKind::Read);  // A (first in)
  c.access(1 * s, AccessKind::Read);  // B
  c.access(0 * s, AccessKind::Read);  // touching A must not save it
  c.access(2 * s, AccessKind::Read);  // evicts A (FIFO)
  EXPECT_FALSE(c.probe(0 * s));
  EXPECT_TRUE(c.probe(1 * s));
  EXPECT_TRUE(c.probe(2 * s));
}

TEST(Cache, DirtyEvictionCountsWriteback) {
  SetAssocCache c(make_geometry(KiB(4), 64, 2), Replacement::Lru);
  const std::uint64_t s = 64 * 32;
  c.access(0 * s, AccessKind::Write);
  c.access(1 * s, AccessKind::Read);
  const auto outcome = c.access(2 * s, AccessKind::Read);  // evicts dirty A
  EXPECT_TRUE(outcome.victim_dirty);
  EXPECT_EQ(c.stats().writebacks, 1u);
}

TEST(Cache, RandomPolicyDeterministicForSeed) {
  const auto geom = make_geometry(KiB(4), 64, 2);
  SetAssocCache a(geom, Replacement::Random, 99);
  SetAssocCache b(geom, Replacement::Random, 99);
  Rng addr(5);
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t address = addr.below(KiB(16));
    EXPECT_EQ(a.access(address, AccessKind::Read).hit,
              b.access(address, AccessKind::Read).hit);
  }
}

TEST(Cache, TreePlruKeepsHotLine) {
  SetAssocCache c(make_geometry(KiB(4), 64, 4), Replacement::TreePlru);
  const std::uint64_t s = 64 * 16;  // 16 sets with 4 ways
  // Fill set 0 with 4 lines, touching line 0 repeatedly.
  for (std::uint64_t i = 0; i < 4; ++i) c.access(i * s, AccessKind::Read);
  c.access(0, AccessKind::Read);
  c.access(4 * s, AccessKind::Read);  // eviction needed
  EXPECT_TRUE(c.probe(0));            // the hottest line must survive
}

// --- maintenance ops ----------------------------------------------------------------

TEST(Cache, FlushDirtyKeepsLinesValid) {
  SetAssocCache c(make_geometry(KiB(4), 64, 2), Replacement::Lru);
  c.access(0x0, AccessKind::Write);
  c.access(0x40, AccessKind::Write);
  EXPECT_EQ(c.flush_dirty(), 2u);
  EXPECT_EQ(c.dirty_lines(), 0u);
  EXPECT_EQ(c.valid_lines(), 2u);
  EXPECT_TRUE(c.access(0x0, AccessKind::Read).hit);
}

TEST(Cache, InvalidateAllDropsEverything) {
  SetAssocCache c(make_geometry(KiB(4), 64, 2), Replacement::Lru);
  c.access(0x0, AccessKind::Write);
  c.access(0x40, AccessKind::Read);
  EXPECT_EQ(c.invalidate_all(), 1u);  // one dirty line written back
  EXPECT_EQ(c.valid_lines(), 0u);
  EXPECT_FALSE(c.access(0x0, AccessKind::Read).hit);
}

TEST(Cache, InvalidateRangeIsSelective) {
  SetAssocCache c(make_geometry(KiB(4), 64, 2), Replacement::Lru);
  c.access(0x000, AccessKind::Write);
  c.access(0x400, AccessKind::Write);
  EXPECT_EQ(c.invalidate_range(0x000, 0x40), 1u);
  EXPECT_FALSE(c.probe(0x000));
  EXPECT_TRUE(c.probe(0x400));
}

TEST(Cache, InvalidateRangeZeroBytesNoop) {
  SetAssocCache c(make_geometry(KiB(4), 64, 2), Replacement::Lru);
  c.access(0x0, AccessKind::Write);
  EXPECT_EQ(c.invalidate_range(0x0, 0), 0u);
  EXPECT_TRUE(c.probe(0x0));
}

TEST(Cache, CleanRangeKeepsValidity) {
  SetAssocCache c(make_geometry(KiB(4), 64, 2), Replacement::Lru);
  c.access(0x00, AccessKind::Write);
  c.access(0x80, AccessKind::Write);
  EXPECT_EQ(c.clean_range(0x00, 0x40), 1u);
  EXPECT_EQ(c.dirty_lines(), 1u);  // the 0x80 line stays dirty
  EXPECT_TRUE(c.probe(0x00));
}

TEST(Cache, ResetClearsContentsAndStats) {
  SetAssocCache c(make_geometry(KiB(4), 64, 2), Replacement::Lru);
  c.access(0x0, AccessKind::Write);
  c.reset();
  EXPECT_EQ(c.valid_lines(), 0u);
  EXPECT_EQ(c.stats().accesses(), 0u);
}

TEST(Cache, ResetStatsKeepsContents) {
  SetAssocCache c(make_geometry(KiB(4), 64, 2), Replacement::Lru);
  c.access(0x0, AccessKind::Read);
  c.reset_stats();
  EXPECT_EQ(c.stats().accesses(), 0u);
  EXPECT_TRUE(c.probe(0x0));
}

TEST(CacheStats, MissRateArithmetic) {
  CacheStats s;
  EXPECT_DOUBLE_EQ(s.miss_rate(), 0.0);
  s.read_hits = 3;
  s.read_misses = 1;
  EXPECT_DOUBLE_EQ(s.miss_rate(), 0.25);
  EXPECT_DOUBLE_EQ(s.hit_rate(), 0.75);
}

TEST(Cache, ReplacementNames) {
  EXPECT_STREQ(replacement_name(Replacement::Lru), "LRU");
  EXPECT_STREQ(replacement_name(Replacement::Fifo), "FIFO");
  EXPECT_STREQ(replacement_name(Replacement::TreePlru), "tree-PLRU");
  EXPECT_STREQ(replacement_name(Replacement::Random), "random");
}

// --- property sweeps -----------------------------------------------------------------

using CachePropertyParams = std::tuple<Bytes, std::uint32_t, Replacement>;

class CacheProperties : public ::testing::TestWithParam<CachePropertyParams> {};

// A working set that fits entirely must produce only cold misses.
TEST_P(CacheProperties, FittingWorkingSetHasOnlyColdMisses) {
  const auto [capacity, ways, policy] = GetParam();
  SetAssocCache c(make_geometry(capacity, 64, ways), policy);
  const Bytes working_set = capacity / 2;
  for (int pass = 0; pass < 4; ++pass) {
    for (std::uint64_t a = 0; a < working_set; a += 64) {
      c.access(a, AccessKind::Read);
    }
  }
  EXPECT_EQ(c.stats().read_misses, working_set / 64);
}

// Sequential streaming over 4x the capacity must keep missing (LRU/FIFO).
TEST_P(CacheProperties, StreamingOverCapacityKeepsMissing) {
  const auto [capacity, ways, policy] = GetParam();
  if (policy == Replacement::Random || policy == Replacement::TreePlru) {
    GTEST_SKIP() << "guarantee only holds for strict-age policies";
  }
  SetAssocCache c(make_geometry(capacity, 64, ways), policy);
  const Bytes span = capacity * 4;
  for (int pass = 0; pass < 3; ++pass) {
    for (std::uint64_t a = 0; a < span; a += 64) {
      c.access(a, AccessKind::Read);
    }
  }
  EXPECT_DOUBLE_EQ(c.stats().miss_rate(), 1.0);
}

// Valid lines never exceed the capacity in lines.
TEST_P(CacheProperties, ValidLinesBounded) {
  const auto [capacity, ways, policy] = GetParam();
  SetAssocCache c(make_geometry(capacity, 64, ways), policy, 3);
  Rng rng(17);
  for (int i = 0; i < 20000; ++i) {
    c.access(rng.below(capacity * 8),
             rng.below(2) ? AccessKind::Read : AccessKind::Write);
  }
  EXPECT_LE(c.valid_lines(), capacity / 64);
  EXPECT_LE(c.dirty_lines(), c.valid_lines());
}

// Hits + misses == accesses, and flushing twice writes back nothing new.
TEST_P(CacheProperties, AccountingIdentities) {
  const auto [capacity, ways, policy] = GetParam();
  SetAssocCache c(make_geometry(capacity, 64, ways), policy, 5);
  Rng rng(23);
  for (int i = 0; i < 5000; ++i) {
    c.access(rng.below(capacity * 2),
             rng.below(4) == 0 ? AccessKind::Write : AccessKind::Read);
  }
  const auto& s = c.stats();
  EXPECT_EQ(s.hits() + s.misses(), s.accesses());
  c.flush_dirty();
  EXPECT_EQ(c.flush_dirty(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheProperties,
    ::testing::Combine(::testing::Values(KiB(4), KiB(32), KiB(256)),
                       ::testing::Values(2u, 4u, 16u),
                       ::testing::Values(Replacement::Lru, Replacement::Fifo,
                                         Replacement::TreePlru,
                                         Replacement::Random)));

// Running valid/dirty counters must track the per-way state exactly through
// every state transition: fills, evictions, flushes and the ranged
// maintenance ops (which index directly into the line's set).
TEST_P(CacheProperties, RunningCountersMatchRecount) {
  const auto [capacity, ways, policy] = GetParam();
  SetAssocCache c(make_geometry(capacity, 64, ways), policy, 7);
  Rng rng(41);
  const auto audit = [&c] {
    EXPECT_EQ(c.valid_lines(), c.recount_valid_lines());
    EXPECT_EQ(c.dirty_lines(), c.recount_dirty_lines());
  };
  for (int i = 0; i < 3000; ++i) {
    c.access(rng.below(capacity * 4),
             rng.below(3) == 0 ? AccessKind::Write : AccessKind::Read);
    if (i % 251 == 0) {
      // Interleave every maintenance op with the access stream.
      const std::uint64_t base = rng.below(capacity * 4);
      const Bytes bytes = 64 * (1 + rng.below(64));
      switch (rng.below(4)) {
        case 0: c.invalidate_range(base, bytes); break;
        case 1: c.clean_range(base, bytes); break;
        case 2: c.flush_dirty(); break;
        default: c.invalidate_all(); break;
      }
      audit();
    }
  }
  audit();
  c.reset();
  audit();
  EXPECT_EQ(c.valid_lines(), 0u);
}

// Ranged ops on unaligned, partial-line windows account correctly too.
TEST(Cache, RangeOpsPartialLineCountersConsistent) {
  SetAssocCache c(make_geometry(KiB(4), 64, 2), Replacement::Lru);
  c.access(0x000, AccessKind::Write);
  c.access(0x040, AccessKind::Write);
  c.access(0x080, AccessKind::Read);
  // [0x20, 0x60) touches the 0x000 and 0x040 lines only.
  EXPECT_EQ(c.clean_range(0x20, 0x40), 2u);
  EXPECT_EQ(c.dirty_lines(), c.recount_dirty_lines());
  EXPECT_EQ(c.invalidate_range(0x20, 0x40), 0u);  // both already clean
  EXPECT_EQ(c.valid_lines(), c.recount_valid_lines());
  EXPECT_EQ(c.valid_lines(), 1u);  // the 0x080 line survives
  EXPECT_TRUE(c.probe(0x080));
}

// Larger caches never have more misses on the same trace (LRU inclusion).
TEST(CacheProperty, MissRateMonotoneInCapacityForLru) {
  Rng rng(31);
  std::vector<std::uint64_t> trace(30000);
  for (auto& a : trace) a = rng.below(KiB(64));

  std::uint64_t previous_misses = ~0ull;
  for (Bytes capacity : {KiB(4), KiB(8), KiB(16), KiB(32), KiB(64)}) {
    // Fully associative: the LRU stack property guarantees inclusion.
    SetAssocCache c(make_geometry(capacity, 64,
                                  static_cast<std::uint32_t>(capacity / 64)),
                    Replacement::Lru);
    for (auto a : trace) c.access(a, AccessKind::Read);
    EXPECT_LE(c.stats().read_misses, previous_misses)
        << "capacity " << capacity;
    previous_misses = c.stats().read_misses;
  }
}

}  // namespace
}  // namespace cig::mem
