// Integration tests for the top-level Framework API on the generic board.
#include <gtest/gtest.h>

#include "core/framework.h"
#include "soc/presets.h"

namespace cig::core {
namespace {

workload::Workload small_app() {
  workload::Workload w;
  w.name = "small-app";
  w.cpu.ops = 5000;
  w.cpu.pattern = mem::PatternSpec{.kind = mem::PatternKind::Linear,
                                   .base = 0x1000'0000,
                                   .extent = KiB(8),
                                   .access_size = 4,
                                   .rw = mem::RwMix::WriteOnly,
                                   .passes = 1,
                                   .line_hint = 64};
  w.gpu.ops = 20000;
  w.gpu.pattern = mem::PatternSpec{.kind = mem::PatternKind::Linear,
                                   .base = 0x1000'0000,
                                   .extent = KiB(8),
                                   .access_size = 4,
                                   .rw = mem::RwMix::ReadOnly,
                                   .passes = 2,
                                   .line_hint = 64};
  w.h2d_bytes = KiB(8);
  w.iterations = 3;
  w.overlappable = true;
  return w;
}

TEST(Framework, DeviceCharacterizationIsCached) {
  Framework fw(soc::generic_board());
  const auto* first = &fw.device();
  const auto* second = &fw.device();
  EXPECT_EQ(first, second);
  EXPECT_EQ(first->board, "generic");
}

TEST(Framework, ProfileReportsSaneNumbers) {
  Framework fw(soc::generic_board());
  const auto profile =
      fw.profile(small_app(), comm::CommModel::StandardCopy);
  EXPECT_EQ(profile.workload, "small-app");
  EXPECT_EQ(profile.board, "generic");
  EXPECT_GT(profile.kernel_time, 0.0);
  EXPECT_GT(profile.cpu_time, 0.0);
  EXPECT_GT(profile.copy_time, 0.0);
  EXPECT_GT(profile.total_time,
            profile.kernel_time + profile.cpu_time);
  EXPECT_GT(profile.average_power, 0.0);
  EXPECT_FALSE(profile.to_string().empty());
}

TEST(Framework, AnalyzeProducesRecommendation) {
  Framework fw(soc::generic_board());
  const auto rec = fw.analyze(small_app(), comm::CommModel::StandardCopy);
  EXPECT_EQ(rec.current, comm::CommModel::StandardCopy);
  EXPECT_FALSE(rec.rationale.empty());
}

TEST(Framework, TuneMeasuresAllThreeModels) {
  Framework fw(soc::generic_board());
  const auto report = fw.tune(small_app(), comm::CommModel::StandardCopy);
  for (const auto model : kAllModels) {
    const auto& run = report.measured[model_index(model)];
    EXPECT_GT(run.total, 0.0) << comm::model_name(model);
    EXPECT_EQ(run.model, model);
  }
  EXPECT_FALSE(report.to_string().empty());
}

TEST(Framework, TuneReportSpeedupConsistent) {
  Framework fw(soc::generic_board());
  const auto report = fw.tune(small_app(), comm::CommModel::StandardCopy);
  if (report.recommendation.switch_model) {
    const auto& current =
        report.measured[model_index(report.recommendation.current)];
    const auto& suggested =
        report.measured[model_index(report.recommendation.suggested)];
    EXPECT_NEAR(report.actual_speedup(), current.total / suggested.total,
                1e-12);
  }
}

TEST(Framework, BoardAccessors) {
  Framework fw(soc::jetson_tx2());
  EXPECT_EQ(fw.board().name, "Jetson TX2");
  EXPECT_EQ(&fw.soc().config(), &fw.board());
}

}  // namespace
}  // namespace cig::core
