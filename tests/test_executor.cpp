// Tests for the execution engine: model semantics (SC copies+flush, UM
// migration, ZC cache bypass + overlap), time composition, profiling
// counters and energy accounting.
#include <gtest/gtest.h>

#include "comm/executor.h"
#include "soc/presets.h"

namespace cig::comm {
namespace {

constexpr std::uint64_t kShared = 0x1000'0000ull;
constexpr std::uint64_t kPrivate = 0x5000'0000ull;

// A small, hand-knowable workload on the generic board.
workload::Workload tiny_workload() {
  workload::Workload w;
  w.name = "tiny";
  w.cpu.name = "producer";
  w.cpu.ops = 1000;
  w.cpu.pattern = mem::PatternSpec{.kind = mem::PatternKind::Linear,
                                   .base = kShared,
                                   .extent = KiB(16),
                                   .access_size = 4,
                                   .rw = mem::RwMix::WriteOnly,
                                   .passes = 1,
                                   .line_hint = 64};
  w.gpu.name = "consumer";
  w.gpu.ops = 2000;
  w.gpu.pattern = mem::PatternSpec{.kind = mem::PatternKind::Linear,
                                   .base = kShared,
                                   .extent = KiB(16),
                                   .access_size = 4,
                                   .rw = mem::RwMix::ReadOnly,
                                   .passes = 1,
                                   .line_hint = 64};
  w.h2d_bytes = KiB(16);
  w.d2h_bytes = KiB(1);
  w.iterations = 2;
  w.overlappable = true;
  return w;
}

class ExecutorTest : public ::testing::Test {
 protected:
  ExecutorTest() : soc_(soc::generic_board()), executor_(soc_) {}
  soc::SoC soc_;
  Executor executor_;
};

TEST_F(ExecutorTest, ScComposesSerially) {
  const auto r = executor_.run(tiny_workload(), CommModel::StandardCopy);
  EXPECT_NEAR(r.total,
              r.cpu_time + r.kernel_time + r.copy_time + r.coherence_time +
                  r.migration_time,
              1e-12);
  EXPECT_GT(r.copy_time, 0.0);
  EXPECT_GT(r.coherence_time, 0.0);
  EXPECT_DOUBLE_EQ(r.migration_time, 0.0);
  EXPECT_DOUBLE_EQ(r.overlap_fraction, 0.0);
}

TEST_F(ExecutorTest, ScCopyTimeMatchesEngineModel) {
  const auto w = tiny_workload();
  const auto r = executor_.run(w, CommModel::StandardCopy);
  const auto& copy = soc_.config().copy;
  const Seconds expected_per_iter =
      2 * copy.per_call_overhead +
      (static_cast<double>(w.h2d_bytes) + w.d2h_bytes) / copy.bandwidth;
  EXPECT_NEAR(r.copy_time_per_iter(), expected_per_iter, 1e-9);
}

TEST_F(ExecutorTest, UmMigratesInsteadOfCopying) {
  const auto r = executor_.run(tiny_workload(), CommModel::UnifiedMemory);
  EXPECT_DOUBLE_EQ(r.copy_time, 0.0);
  EXPECT_GT(r.migration_time, 0.0);  // CPU/GPU ping-pong on the same range
}

TEST_F(ExecutorTest, ZcHasNoCopiesNoMigration) {
  const auto r = executor_.run(tiny_workload(), CommModel::ZeroCopy);
  EXPECT_DOUBLE_EQ(r.copy_time, 0.0);
  EXPECT_DOUBLE_EQ(r.coherence_time, 0.0);
  EXPECT_DOUBLE_EQ(r.migration_time, 0.0);
}

TEST_F(ExecutorTest, ZcOverlapsWhenAllowed) {
  const auto r = executor_.run(tiny_workload(), CommModel::ZeroCopy);
  EXPECT_GT(r.overlap_fraction, 0.3);
  EXPECT_LT(r.total, r.cpu_time + r.kernel_time);
}

TEST_F(ExecutorTest, ZcSerializesWhenNotOverlappable) {
  auto w = tiny_workload();
  w.overlappable = false;
  const auto r = executor_.run(w, CommModel::ZeroCopy);
  EXPECT_DOUBLE_EQ(r.overlap_fraction, 0.0);
  EXPECT_NEAR(r.total, r.cpu_time + r.kernel_time, 1e-12);
}

TEST_F(ExecutorTest, OverlapOptionDisablesOverlap) {
  Executor serial(soc_, ExecOptions{.overlap = false});
  const auto r = serial.run(tiny_workload(), CommModel::ZeroCopy);
  EXPECT_DOUBLE_EQ(r.overlap_fraction, 0.0);
}

TEST_F(ExecutorTest, TimelineIsConsistentForAllModels) {
  for (const auto model : {CommModel::StandardCopy, CommModel::UnifiedMemory,
                           CommModel::ZeroCopy}) {
    const auto r = executor_.run(tiny_workload(), model);
    EXPECT_TRUE(r.timeline.lanes_consistent());
    EXPECT_NEAR(r.timeline.makespan(), r.total, 1e-9);
  }
}

TEST_F(ExecutorTest, IterationsScaleTotals) {
  auto w = tiny_workload();
  w.iterations = 1;
  const auto one = executor_.run(w, CommModel::StandardCopy);
  w.iterations = 4;
  const auto four = executor_.run(w, CommModel::StandardCopy);
  EXPECT_NEAR(four.total, one.total * 4, one.total * 0.05);
  EXPECT_NEAR(four.total_per_iter(), one.total_per_iter(),
              one.total_per_iter() * 0.05);
}

TEST_F(ExecutorTest, CacheEnablesRestoredAfterZcRun) {
  executor_.run(tiny_workload(), CommModel::ZeroCopy);
  EXPECT_TRUE(soc_.cpu_hierarchy().any_level_enabled());
  EXPECT_TRUE(soc_.gpu_hierarchy().any_level_enabled());
}

TEST_F(ExecutorTest, EnergyPositiveAndScalesWithModelTime) {
  const auto sc = executor_.run(tiny_workload(), CommModel::StandardCopy);
  EXPECT_GT(sc.energy, 0.0);
  EXPECT_GT(sc.dram_traffic, 0u);
}

TEST_F(ExecutorTest, ZcUncachedCostsMoreOnSwFlushKernel) {
  // Generic board is SwFlush: the GPU kernel must slow down under ZC.
  auto w = tiny_workload();
  w.overlappable = false;
  const auto sc = executor_.run(w, CommModel::StandardCopy);
  const auto zc = executor_.run(w, CommModel::ZeroCopy);
  EXPECT_GT(zc.kernel_time, sc.kernel_time);
  EXPECT_GT(zc.cpu_time, sc.cpu_time);  // CPU side uncached too
}

TEST_F(ExecutorTest, PrivateDataUnaffectedByZc) {
  auto w = tiny_workload();
  w.overlappable = false;
  // Move all CPU traffic to private data: ZC must not slow the CPU task.
  w.cpu.private_pattern = w.cpu.pattern;
  w.cpu.private_pattern->base = kPrivate;
  w.cpu.pattern.extent = 64;
  w.cpu.pattern.count = 0;
  w.cpu.pattern.kind = mem::PatternKind::SingleLocation;
  const auto sc = executor_.run(w, CommModel::StandardCopy);
  const auto zc = executor_.run(w, CommModel::ZeroCopy);
  EXPECT_NEAR(zc.cpu_time, sc.cpu_time, sc.cpu_time * 0.05);
}

TEST_F(ExecutorTest, TimeScaleMultipliesTaskTime) {
  auto w = tiny_workload();
  w.overlappable = false;
  const auto base = executor_.run(w, CommModel::ZeroCopy);
  w.cpu.time_scale = 3.0;
  w.gpu.time_scale = 3.0;
  const auto scaled = executor_.run(w, CommModel::ZeroCopy);
  // Launch overhead is not scaled, so allow a tolerance.
  EXPECT_GT(scaled.cpu_time, base.cpu_time * 2.5);
  EXPECT_GT(scaled.kernel_time, base.kernel_time * 2.0);
}

TEST_F(ExecutorTest, GpuTransactionsIncludePrivatePattern) {
  auto w = tiny_workload();
  const auto without = executor_.run(w, CommModel::StandardCopy);
  w.gpu.private_pattern = w.gpu.pattern;
  w.gpu.private_pattern->base = kPrivate;
  const auto with = executor_.run(w, CommModel::StandardCopy);
  EXPECT_GT(with.gpu_transactions, without.gpu_transactions);
}

TEST_F(ExecutorTest, ProfilerRatesAreRates) {
  const auto r = executor_.run(tiny_workload(), CommModel::StandardCopy);
  for (double rate : {r.cpu_l1_miss_rate, r.cpu_llc_miss_rate,
                      r.gpu_l1_hit_rate, r.gpu_llc_hit_rate}) {
    EXPECT_GE(rate, 0.0);
    EXPECT_LE(rate, 1.0);
  }
  EXPECT_GT(r.gpu_demand_throughput, 0.0);
  EXPECT_GT(r.cpu_demand_throughput, 0.0);
}

TEST_F(ExecutorTest, WarmupHidesColdMisses) {
  // Without per-iteration copies (no invalidation), a warm working set
  // that fits the GPU LLC produces a high measured hit rate after the
  // warmup iteration.
  auto w = tiny_workload();  // 16 KiB fits the generic 32 KiB GPU LLC
  w.h2d_bytes = 0;
  w.d2h_bytes = 0;
  w.gpu.pattern.passes = 2;
  const auto r = executor_.run(w, CommModel::StandardCopy);
  EXPECT_GT(r.gpu_llc_hit_rate + r.gpu_l1_hit_rate, 0.5);
}

TEST_F(ExecutorTest, UmWithinTenPercentOfSc) {
  // The paper treats UM ~ SC (+-8%); our model should stay in that band
  // for a copy-light workload.
  auto w = tiny_workload();
  const auto sc = executor_.run(w, CommModel::StandardCopy);
  const auto um = executor_.run(w, CommModel::UnifiedMemory);
  EXPECT_NEAR(um.total / sc.total, 1.0, 0.35);
}

// Per-model regression on the TX2 preset: Table I ordering.
TEST(ExecutorTx2, ThroughputOrderingZcScUm) {
  soc::SoC soc(soc::jetson_tx2());
  Executor executor(soc);
  auto w = tiny_workload();
  w.gpu.pattern.extent = KiB(256);  // LLC band on the TX2
  w.h2d_bytes = KiB(256);
  const auto sc = executor.run(w, CommModel::StandardCopy);
  const auto um = executor.run(w, CommModel::UnifiedMemory);
  const auto zc = executor.run(w, CommModel::ZeroCopy);
  EXPECT_LT(zc.gpu_ll_throughput, sc.gpu_ll_throughput);
  EXPECT_LT(sc.gpu_ll_throughput, um.gpu_ll_throughput);
}

}  // namespace
}  // namespace cig::comm
