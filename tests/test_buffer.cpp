// Tests for logical buffers and the simulated-address-space allocator.
#include <gtest/gtest.h>

#include "comm/buffer.h"

namespace cig::comm {
namespace {

TEST(Buffer, BasicProperties) {
  Buffer b("frame", KiB(256), mem::Space::Pinned, 0x4000'0000);
  EXPECT_EQ(b.name(), "frame");
  EXPECT_EQ(b.size(), KiB(256));
  EXPECT_EQ(b.space(), mem::Space::Pinned);
  EXPECT_EQ(b.base(), 0x4000'0000u);
  EXPECT_EQ(b.end(), 0x4000'0000u + KiB(256));
}

TEST(Buffer, ContainsIsHalfOpen) {
  Buffer b("x", 64, mem::Space::HostPartition, 0x1000);
  EXPECT_TRUE(b.contains(0x1000));
  EXPECT_TRUE(b.contains(0x103F));
  EXPECT_FALSE(b.contains(0x1040));
  EXPECT_FALSE(b.contains(0x0FFF));
}

TEST(AddressMap, BuffersWithinASpaceAreDisjoint) {
  AddressMap map;
  const auto a = map.allocate("a", 1000, mem::Space::Pinned);
  const auto b = map.allocate("b", 1000, mem::Space::Pinned);
  EXPECT_GE(b.base(), a.end());
  EXPECT_FALSE(a.contains(b.base()));
}

TEST(AddressMap, BuffersAreLineAligned) {
  AddressMap map;
  map.allocate("odd", 100, mem::Space::HostPartition);
  const auto next = map.allocate("next", 64, mem::Space::HostPartition);
  EXPECT_EQ(next.base() % 64, 0u);
}

TEST(AddressMap, SpacesHaveDisjointRegions) {
  AddressMap map;
  const auto host = map.allocate("h", KiB(4), mem::Space::HostPartition);
  const auto device = map.allocate("d", KiB(4), mem::Space::DevicePartition);
  const auto pinned = map.allocate("p", KiB(4), mem::Space::Pinned);
  const auto managed = map.allocate("m", KiB(4), mem::Space::Managed);
  // No pairwise overlap.
  const Buffer* buffers[] = {&host, &device, &pinned, &managed};
  for (const auto* x : buffers) {
    for (const auto* y : buffers) {
      if (x == y) continue;
      EXPECT_FALSE(x->contains(y->base()))
          << x->name() << " overlaps " << y->name();
    }
  }
}

TEST(AddressMap, TracksAllocatedBytesPerSpace) {
  AddressMap map;
  map.allocate("a", 100, mem::Space::Pinned);
  EXPECT_GE(map.allocated(mem::Space::Pinned), 100u);
  EXPECT_EQ(map.allocated(mem::Space::Managed), 0u);
}

TEST(AddressMap, RecordsAllBuffers) {
  AddressMap map;
  map.allocate("a", 64, mem::Space::Pinned);
  map.allocate("b", 64, mem::Space::Managed);
  ASSERT_EQ(map.buffers().size(), 2u);
  EXPECT_EQ(map.buffers()[0].name(), "a");
  EXPECT_EQ(map.buffers()[1].name(), "b");
}

TEST(AddressMapDeath, RejectsZeroSize) {
  AddressMap map;
  EXPECT_DEATH(map.allocate("zero", 0, mem::Space::Pinned), "Precondition");
}

TEST(Space, NamesAreStable) {
  EXPECT_STREQ(mem::space_name(mem::Space::HostPartition), "host");
  EXPECT_STREQ(mem::space_name(mem::Space::DevicePartition), "device");
  EXPECT_STREQ(mem::space_name(mem::Space::Pinned), "pinned");
  EXPECT_STREQ(mem::space_name(mem::Space::Managed), "managed");
}

}  // namespace
}  // namespace cig::comm
