// Tests for the MB2 sweep analysis: threshold extraction, zone boundaries,
// classification.
#include <gtest/gtest.h>

#include "core/thresholds.h"

namespace cig::core {
namespace {

SweepPoint point(double fraction, double t_sc_us, double t_zc_us,
                 double tput_sc_gbps) {
  return SweepPoint{.fraction = fraction,
                    .time_sc = microsec(t_sc_us),
                    .time_zc = microsec(t_zc_us),
                    .throughput_sc = GBps(tput_sc_gbps),
                    .throughput_zc = GBps(tput_sc_gbps / 2)};
}

TEST(Thresholds, DivergenceMidSweep) {
  // Comparable at the first two points, diverging after.
  const auto analysis = analyze_sweep(
      {
          point(0.01, 10, 11, 2),    // +10%
          point(0.02, 10, 14, 5),    // +40%  (still within 0.8)
          point(0.05, 10, 30, 20),   // +200% -> diverged, zone 3 at 1.7
          point(0.10, 10, 80, 50),   // worse
          point(0.50, 10, 200, 100), // peak throughput 100
      },
      /*comparable_tolerance=*/0.8, /*zone3_slowdown=*/1.7);
  EXPECT_DOUBLE_EQ(analysis.threshold_pct, 5.0);    // 5 of 100 GB/s
  EXPECT_DOUBLE_EQ(analysis.zone2_end_pct, 20.0);   // first > 170%
  EXPECT_DOUBLE_EQ(to_GBps(analysis.peak_throughput), 100.0);
}

TEST(Thresholds, AllComparableMeansHundredPercent) {
  const auto analysis = analyze_sweep({
      point(0.01, 10, 10, 5),
      point(0.10, 20, 21, 50),
      point(0.50, 40, 42, 100),
  });
  EXPECT_DOUBLE_EQ(analysis.threshold_pct, 100.0);
  EXPECT_DOUBLE_EQ(analysis.zone2_end_pct, 100.0);
}

TEST(Thresholds, NeverComparableMeansZero) {
  const auto analysis = analyze_sweep({
      point(0.01, 10, 100, 5),
      point(0.10, 10, 200, 50),
  });
  EXPECT_DOUBLE_EQ(analysis.threshold_pct, 0.0);
}

TEST(Thresholds, ComparableRunMustBePrefix) {
  // A late re-convergence does not extend the threshold: only the initial
  // comparable run counts.
  const auto analysis = analyze_sweep(
      {
          point(0.01, 10, 11, 5),
          point(0.02, 10, 100, 10),  // diverged here
          point(0.10, 10, 10, 50),   // (re-converged; must be ignored)
          point(0.50, 10, 10, 100),
      },
      0.5, 2.0);
  EXPECT_DOUBLE_EQ(analysis.threshold_pct, 5.0);
}

TEST(Thresholds, UsagePctOverridesThroughputRatio) {
  auto p1 = point(0.01, 10, 11, 5);
  p1.usage_pct = 12.5;
  auto p2 = point(0.10, 10, 100, 50);
  p2.usage_pct = 40.0;
  const auto analysis = analyze_sweep({p1, p2}, 0.5, 2.0);
  EXPECT_DOUBLE_EQ(analysis.threshold_pct, 12.5);
  EXPECT_DOUBLE_EQ(analysis.zone2_end_pct, 40.0);
}

TEST(Thresholds, ToleranceWidensComparableRegion) {
  const std::vector<SweepPoint> points = {
      point(0.01, 10, 13, 5),   // +30%
      point(0.10, 10, 16, 50),  // +60%
      point(0.50, 10, 40, 100),
  };
  const auto tight = analyze_sweep(points, 0.2, 3.0);
  const auto loose = analyze_sweep(points, 0.7, 3.0);
  EXPECT_DOUBLE_EQ(tight.threshold_pct, 0.0);
  EXPECT_DOUBLE_EQ(loose.threshold_pct, 50.0);
}

TEST(Thresholds, Zone2EndNeverBelowThreshold) {
  const auto analysis = analyze_sweep(
      {
          point(0.01, 10, 11, 50),
          point(0.50, 10, 100, 10),  // diverged at lower throughput
      },
      0.5, 2.0);
  EXPECT_GE(analysis.zone2_end_pct, analysis.threshold_pct);
}

TEST(Thresholds, ClassifyZones) {
  ThresholdAnalysis analysis;
  analysis.threshold_pct = 16.2;
  analysis.zone2_end_pct = 57.1;
  EXPECT_EQ(analysis.classify(7.0), Zone::Comparable);
  EXPECT_EQ(analysis.classify(16.2), Zone::Comparable);
  EXPECT_EQ(analysis.classify(20.1), Zone::Grey);
  EXPECT_EQ(analysis.classify(57.1), Zone::Grey);
  EXPECT_EQ(analysis.classify(80.0), Zone::CacheBound);
}

TEST(Thresholds, ZoneNames) {
  EXPECT_NE(std::string(zone_name(Zone::Comparable)).find("zone-1"),
            std::string::npos);
  EXPECT_NE(std::string(zone_name(Zone::Grey)).find("zone-2"),
            std::string::npos);
  EXPECT_NE(std::string(zone_name(Zone::CacheBound)).find("zone-3"),
            std::string::npos);
}

TEST(Thresholds, ToStringMentionsNumbers) {
  ThresholdAnalysis analysis;
  analysis.threshold_pct = 2.7;
  analysis.zone2_end_pct = 30;
  analysis.peak_throughput = GBps(97.34);
  const std::string s = analysis.to_string();
  EXPECT_NE(s.find("2.7"), std::string::npos);
  EXPECT_NE(s.find("97.34"), std::string::npos);
}

TEST(ThresholdsDeath, RejectsEmptySweep) {
  EXPECT_DEATH(analyze_sweep({}), "Precondition");
}

TEST(ThresholdsDeath, RejectsUnsortedSweep) {
  EXPECT_DEATH(analyze_sweep({point(0.5, 10, 10, 10),
                              point(0.1, 10, 10, 10)}),
               "Precondition");
}

TEST(ThresholdsDeath, RejectsZeroScTime) {
  EXPECT_DEATH(analyze_sweep({point(0.1, 0, 10, 10)}), "Precondition");
}

}  // namespace
}  // namespace cig::core
