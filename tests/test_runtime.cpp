// Tests for the online adaptive runtime: streaming window, hysteresis
// bands, the refined switch estimator, the controller's switching sequence
// on the phasic trace, and the metrics/trace export surface.
#include <gtest/gtest.h>

#include "comm/executor.h"
#include "core/framework.h"
#include "runtime/replay.h"
#include "sim/trace_export.h"
#include "soc/presets.h"
#include "workload/builders.h"

namespace cig::runtime {
namespace {

using comm::CommModel;

profile::ProfileReport sample_with(Seconds total, Seconds kernel,
                                   Seconds cpu) {
  profile::ProfileReport p;
  p.model = CommModel::StandardCopy;
  p.total_time = total;
  p.kernel_time = kernel;
  p.cpu_time = cpu;
  p.copy_time = std::max(0.0, total - kernel - cpu);
  p.iterations = 1;
  p.gpu_transactions = 1000;
  p.gpu_transaction_size = 4;
  return p;
}

// --- streaming window --------------------------------------------------------

TEST(StreamingProfile, WindowedIsArithmeticMean) {
  StreamingProfile window({.capacity = 4, .ewma_alpha = 0.5});
  window.add(sample_with(microsec(100), microsec(60), microsec(20)));
  window.add(sample_with(microsec(300), microsec(180), microsec(40)));
  const auto mean = window.windowed();
  EXPECT_NEAR(to_us(mean.total_time), 200.0, 1e-9);
  EXPECT_NEAR(to_us(mean.kernel_time), 120.0, 1e-9);
  EXPECT_NEAR(to_us(mean.cpu_time), 30.0, 1e-9);
}

TEST(StreamingProfile, WindowSlides) {
  StreamingProfile window({.capacity = 2, .ewma_alpha = 0.5});
  for (const double us : {100.0, 200.0, 400.0}) {
    window.add(sample_with(microsec(us), microsec(us / 2), 0));
  }
  EXPECT_EQ(window.size(), 2u);
  EXPECT_NEAR(to_us(window.windowed().total_time), 300.0, 1e-9);
  EXPECT_NEAR(to_us(window.latest().total_time), 400.0, 1e-9);
}

TEST(StreamingProfile, EwmaReactsWithinTwoSamples) {
  // alpha = 0.6 recovers 1 - 0.4^2 = 84% of a step change after two
  // samples — the reaction-lag budget the controller's phase detection
  // assumes (asserted with fp headroom).
  StreamingProfile window({.capacity = 8, .ewma_alpha = 0.6});
  for (int i = 0; i < 8; ++i) {
    window.add(sample_with(microsec(100), microsec(50), 0));
  }
  window.add(sample_with(microsec(1100), microsec(550), 0));
  window.add(sample_with(microsec(1100), microsec(550), 0));
  const double recovered =
      (to_us(window.smoothed().total_time) - 100.0) / 1000.0;
  EXPECT_GE(recovered, 0.83);
}

TEST(StreamingProfile, ClearRestartsStatistics) {
  StreamingProfile window({.capacity = 4, .ewma_alpha = 0.5});
  window.add(sample_with(microsec(100), microsec(50), 0));
  window.clear();
  EXPECT_TRUE(window.empty());
  window.add(sample_with(microsec(900), microsec(450), 0));
  EXPECT_NEAR(to_us(window.smoothed().total_time), 900.0, 1e-9);
}

// --- hysteresis --------------------------------------------------------------

TEST(HysteresisBand, RequiresCrossingTheMargin) {
  HysteresisBand band(10.0, {.margin_frac = 0.25, .confirm_samples = 1});
  EXPECT_FALSE(band.update(10.0));          // at the boundary: hold
  EXPECT_FALSE(band.update(12.4));          // inside the dead band
  EXPECT_TRUE(band.update(12.6));           // > 12.5 crosses
  EXPECT_TRUE(band.update(8.0));            // inside the band: hold over
  EXPECT_FALSE(band.update(7.4));           // < 7.5 crosses back
}

TEST(HysteresisBand, ConfirmSamplesDebounceSpikes) {
  HysteresisBand band(10.0, {.margin_frac = 0.25, .confirm_samples = 2});
  EXPECT_FALSE(band.update(20.0));  // first out-of-band sample: not yet
  EXPECT_FALSE(band.update(10.0));  // streak broken
  EXPECT_FALSE(band.update(20.0));
  EXPECT_TRUE(band.update(20.0));   // second consecutive: confirmed
}

TEST(HysteresisBand, RearmMovesBoundaryAndResets) {
  HysteresisBand band(10.0, {.margin_frac = 0.25, .confirm_samples = 1});
  EXPECT_TRUE(band.update(20.0));
  band.rearm(60.0);
  EXPECT_FALSE(band.over());
  EXPECT_FALSE(band.update(70.0));  // inside the new band (45..75)
  EXPECT_TRUE(band.update(80.0));
}

TEST(HysteresisZoneTracker, OscillationNeverChangesZone) {
  // Property: any ±eps oscillation inside the margin leaves the zone
  // untouched, at every boundary and from either side.
  for (const double boundary : {1.84, 10.0, 60.0}) {
    for (const double eps_frac : {0.02, 0.1, 0.24}) {
      HysteresisZoneTracker tracker(boundary, boundary * 3,
                                    /*grey_exists=*/true,
                                    {.margin_frac = 0.25,
                                     .confirm_samples = 1});
      const auto initial = tracker.zone();
      for (int i = 0; i < 200; ++i) {
        const double usage =
            boundary * (1 + ((i % 2) != 0 ? eps_frac : -eps_frac));
        EXPECT_EQ(tracker.update(usage), initial);
        EXPECT_FALSE(tracker.changed());
      }
    }
  }
}

TEST(HysteresisZoneTracker, LargeSwingIsDetectedOnce) {
  HysteresisZoneTracker tracker(10.0, 50.0, /*grey_exists=*/true,
                                {.margin_frac = 0.25, .confirm_samples = 1});
  EXPECT_EQ(tracker.update(5.0), core::Zone::Comparable);
  EXPECT_EQ(tracker.update(70.0), core::Zone::CacheBound);
  EXPECT_TRUE(tracker.changed());
  EXPECT_EQ(tracker.update(70.0), core::Zone::CacheBound);
  EXPECT_FALSE(tracker.changed());
}

// --- refined estimator -------------------------------------------------------

class EstimatorTest : public ::testing::Test {
 protected:
  core::Framework framework_{soc::jetson_tx2()};
  SwitchEstimator estimator_{framework_.device(), framework_.board()};
};

TEST_F(EstimatorTest, RefineToSameModelIsNeutral) {
  auto report = sample_with(microsec(100), microsec(50), microsec(10));
  const auto est =
      estimator_.refine(report, CommModel::StandardCopy, KiB(4));
  EXPECT_DOUBLE_EQ(est.speedup, 1.0);
}

TEST_F(EstimatorTest, CopyDominatedPhaseFavoursZeroCopy) {
  // 90% of the iteration is copy/maintenance overhead and the kernel's
  // demand is far below the ZC path peak: the refined estimate must beat
  // the offline MB3 cap (< 1 on TX2) and predict a win.
  auto report = sample_with(microsec(1000), microsec(90), microsec(10));
  report.gpu_transactions = 100;  // 400 B per iteration: trivial demand
  const auto est = estimator_.refine(report, CommModel::ZeroCopy, KiB(4));
  EXPECT_GT(est.speedup, 1.0);
  EXPECT_LT(framework_.device().sc_zc_max_speedup(), 1.0)
      << "TX2 MB3 cap should be < 1 (otherwise this test is vacuous)";
}

TEST_F(EstimatorTest, PathSaturatedPhaseRejectsZeroCopy) {
  // The kernel demands far more bandwidth than the ZC path delivers: the
  // roofline must price the slowdown and reject the switch.
  auto report = sample_with(microsec(100), microsec(90), microsec(5));
  report.gpu_transactions = 25e6;  // 100 MB per iteration >> ZC path
  const auto est = estimator_.refine(report, CommModel::ZeroCopy, KiB(4));
  EXPECT_LT(est.speedup, 1.0);
}

TEST_F(EstimatorTest, LeavingZeroCopyIsCappedByDeviceBound) {
  auto report = sample_with(millisec(10), millisec(9.9), microsec(10));
  report.model = CommModel::ZeroCopy;
  report.gpu_transactions = 2.5e6;  // 10 MB/iter through the slow path
  const auto est =
      estimator_.refine(report, CommModel::StandardCopy, KiB(64));
  EXPECT_GT(est.speedup, 1.0);
  EXPECT_LE(est.speedup, framework_.device().zc_sc_max_speedup());
}

// --- switch-cost model -------------------------------------------------------

TEST(SwitchCost, EstimateIsPositiveAndMonotonicInBytes) {
  soc::SoC soc(soc::jetson_tx2());
  comm::Executor executor(soc);
  const auto small = executor.estimate_switch_cost(
      CommModel::StandardCopy, CommModel::ZeroCopy, KiB(64));
  const auto large = executor.estimate_switch_cost(
      CommModel::StandardCopy, CommModel::ZeroCopy, MiB(16));
  EXPECT_GT(small.total(), 0.0);
  EXPECT_GE(large.total(), small.total());
  EXPECT_GE(large.bytes_moved, small.bytes_moved);
}

// --- controller on the phasic trace ------------------------------------------

class PhasicReplayTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    framework_ = new core::Framework(soc::jetson_tx2());
    phases_ = new std::vector<workload::PhasicPhase>(
        workload::phasic_workload_phases(framework_->board()));
    result_ = new ReplayResult(replay_phasic(*framework_, *phases_, {}));
  }
  static void TearDownTestSuite() {
    delete result_;
    delete phases_;
    delete framework_;
    result_ = nullptr;
    phases_ = nullptr;
    framework_ = nullptr;
  }

  static core::Framework* framework_;
  static std::vector<workload::PhasicPhase>* phases_;
  static ReplayResult* result_;
};

core::Framework* PhasicReplayTest::framework_ = nullptr;
std::vector<workload::PhasicPhase>* PhasicReplayTest::phases_ = nullptr;
ReplayResult* PhasicReplayTest::result_ = nullptr;

TEST_F(PhasicReplayTest, ControllerChasesThePhases) {
  // SC start -> ZC for the light phase, away from ZC (to a cached model)
  // at each heavy onset, back to ZC at the next light onset.
  EXPECT_GE(result_->metrics.switches, 3u);
  EXPECT_GE(result_->switches_into(CommModel::ZeroCopy), 2u);
  EXPECT_GE(result_->switches_into(CommModel::StandardCopy) +
                result_->switches_into(CommModel::UnifiedMemory),
            1u);
  EXPECT_EQ(result_->metrics.mispredicted_switches, 0u);
}

TEST_F(PhasicReplayTest, FirstSwitchLeavesStandardCopyForZeroCopy) {
  // The light opening phase: the offline flow alone could never suggest
  // this on TX2 (MB3 cap < 1); the refined estimator must.
  ASSERT_FALSE(result_->samples.empty());
  for (const auto& s : result_->samples) {
    if (!s.decision.switched) continue;
    EXPECT_EQ(s.decision.model_before, CommModel::StandardCopy);
    EXPECT_EQ(s.decision.model_after, CommModel::ZeroCopy);
    EXPECT_GT(s.decision.predicted_speedup, 1.0);
    EXPECT_LT(s.decision.offline_speedup, 1.0);
    break;
  }
}

TEST_F(PhasicReplayTest, AdaptiveBeatsWorstStaticAndTracksOracle) {
  const auto ref = compare_static(*framework_, *phases_, {});
  const Seconds worst = ref.static_time[core::model_index(ref.worst_static)];
  EXPECT_LT(result_->adaptive_time, worst);
  EXPECT_LE(result_->adaptive_time, ref.oracle_time * 1.10);
  EXPECT_GE(result_->adaptive_time, ref.oracle_time * 0.999);
}

TEST_F(PhasicReplayTest, MetricsReachTheStatRegistry) {
  for (const char* key :
       {"runtime.samples", "runtime.switches", "runtime.phase_changes",
        "runtime.switch_overhead_us", "runtime.time_in_ZC_us",
        "runtime.predicted_speedup_product",
        "runtime.realized_speedup_product", "runtime.vetoed_by_cost",
        "runtime.vetoed_by_estimate"}) {
    EXPECT_TRUE(result_->registry.contains(key)) << key;
  }
  EXPECT_EQ(result_->registry.get("runtime.switches"),
            static_cast<double>(result_->metrics.switches));
}

TEST_F(PhasicReplayTest, ControllerLaneIsExportedToChromeTrace) {
  const auto doc = sim::to_chrome_trace(result_->timeline, "test");
  bool ctrl_thread = false;
  bool switch_event = false;
  for (const auto& event : doc.at("traceEvents").as_array()) {
    if (event.at("ph").as_string() == "M" &&
        event.at("args").at("name").as_string() == "CTRL") {
      ctrl_thread = true;
    }
    if (event.at("ph").as_string() == "X" &&
        event.at("name").as_string().find("switch") != std::string::npos) {
      switch_event = true;
    }
  }
  EXPECT_TRUE(ctrl_thread);
  EXPECT_TRUE(switch_event);
}

TEST(OscillationReplay, HysteresisHoldsTheModel) {
  // The acceptance property: a trace oscillating ±eps around the ZC
  // saturation boundary must produce zero switches and zero detected
  // phase changes.
  core::Framework framework(soc::jetson_tx2());
  workload::OscillationConfig config;
  config.flips = 10;
  config.samples_per_phase = 3;
  const auto phases =
      workload::oscillation_workload_phases(framework.board(), config);
  ReplayOptions options;
  options.controller.initial_model = CommModel::ZeroCopy;
  const auto result = replay_phasic(framework, phases, options);
  EXPECT_EQ(result.metrics.switches, 0u);
  EXPECT_EQ(result.metrics.phase_changes, 0u);
  EXPECT_EQ(result.metrics.samples,
            static_cast<std::uint64_t>((config.flips + 1) *
                                       config.samples_per_phase));
}

// --- metrics export ----------------------------------------------------------

TEST(RuntimeMetrics, ExportWritesEveryCounter) {
  RuntimeMetrics metrics;
  metrics.samples = 7;
  metrics.switches = 2;
  metrics.vetoed_by_cost = 1;
  metrics.demotions = 3;
  metrics.switch_overhead = microsec(42);
  metrics.time_in_model[core::model_index(CommModel::ZeroCopy)] =
      millisec(3);
  sim::StatRegistry registry;
  metrics.export_to(registry);
  EXPECT_EQ(registry.get("runtime.samples"), 7.0);
  EXPECT_EQ(registry.get("runtime.switches"), 2.0);
  EXPECT_EQ(registry.get("runtime.vetoed_by_cost"), 1.0);
  EXPECT_EQ(registry.get("runtime.demotions"), 3.0);
  EXPECT_NEAR(registry.get("runtime.switch_overhead_us"), 42.0, 1e-9);
  EXPECT_NEAR(registry.get("runtime.time_in_ZC_us"), 3000.0, 1e-9);
  EXPECT_FALSE(metrics.to_string().empty());
}

// --- memory-pressure governor in the control loop ----------------------------

class PressureControllerTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    framework_ = new core::Framework(soc::jetson_tx2());
    engine_ = new core::DecisionEngine(framework_->device());
  }
  static void TearDownTestSuite() {
    delete engine_;
    delete framework_;
    engine_ = nullptr;
    framework_ = nullptr;
  }

  static core::Framework* framework_;
  static core::DecisionEngine* engine_;
};

core::Framework* PressureControllerTest::framework_ = nullptr;
core::DecisionEngine* PressureControllerTest::engine_ = nullptr;

TEST_F(PressureControllerTest, BudgetDemotesTheResidentModel) {
  comm::Executor executor(framework_->soc());
  ControllerConfig config;
  // One 4 KiB page shared: SC pins 8192 B, UM 4160 B, ZC 4096 B. A 6000 B
  // budget rejects the initial SC residency on the very first sample.
  config.pressure.budget = 6000;
  AdaptiveController controller(*engine_, executor, config);
  ASSERT_EQ(controller.model(), CommModel::StandardCopy);

  const auto decision = controller.on_sample(
      sample_with(microsec(100), microsec(60), microsec(20)), 0, KiB(4));
  EXPECT_TRUE(decision.demoted);
  EXPECT_EQ(decision.model_before, CommModel::StandardCopy);
  EXPECT_EQ(decision.model_after, CommModel::UnifiedMemory);
  EXPECT_EQ(controller.model(), CommModel::UnifiedMemory);
  EXPECT_LE(decision.footprint_bytes, 6000u);
  EXPECT_EQ(controller.metrics().demotions, 1u);
  EXPECT_EQ(controller.governor().demotions(), 1u);

  // The forced demotion carries structured provenance naming the budget.
  bool names_budget = false;
  for (const auto& check : decision.explanation.checks) {
    if (check.find("budget") != std::string::npos) names_budget = true;
  }
  EXPECT_TRUE(names_budget);
  EXPECT_NE(decision.rationale.find("pressure"), std::string::npos);
}

TEST_F(PressureControllerTest, AllocFailureWalksTheLadderAndSurvivesAtFloor) {
  comm::Executor executor(framework_->soc());
  AdaptiveController controller(*engine_, executor, {});  // no byte budget
  const auto sample = sample_with(microsec(100), microsec(60), microsec(20));

  controller.signal_alloc_failure();
  auto d1 = controller.on_sample(sample, 0, KiB(4));
  EXPECT_TRUE(d1.demoted);
  EXPECT_EQ(controller.model(), CommModel::UnifiedMemory);

  controller.signal_alloc_failure();
  auto d2 = controller.on_sample(sample, 0, KiB(4));
  EXPECT_TRUE(d2.demoted);
  EXPECT_EQ(controller.model(), CommModel::ZeroCopy);

  // At the floor there is nothing left to free: the event is recorded and
  // the sample proceeds instead of crashing.
  controller.signal_alloc_failure();
  auto d3 = controller.on_sample(sample, 0, KiB(4));
  EXPECT_FALSE(d3.demoted);
  EXPECT_EQ(controller.model(), CommModel::ZeroCopy);
  EXPECT_NE(d3.guard_event.find("alloc failure"), std::string::npos);
  EXPECT_EQ(controller.metrics().demotions, 2u);
}

TEST_F(PressureControllerTest, SnapshotRoundTripsGovernorState) {
  comm::Executor executor(framework_->soc());
  ControllerConfig config;
  config.pressure.budget = 6000;
  AdaptiveController controller(*engine_, executor, config);
  controller.on_sample(sample_with(microsec(100), microsec(60), microsec(20)),
                       0, KiB(4));  // forces one demotion
  ASSERT_EQ(controller.governor().demotions(), 1u);

  comm::Executor executor2(framework_->soc());
  AdaptiveController restored(*engine_, executor2, config);
  restored.restore(controller.snapshot());
  EXPECT_EQ(restored.snapshot().dump(), controller.snapshot().dump());
  EXPECT_EQ(restored.model(), controller.model());
  EXPECT_EQ(restored.governor().demotions(), 1u);
  EXPECT_EQ(restored.governor().level(), controller.governor().level());
}

TEST_F(PressureControllerTest, SnapshotRefusesADifferentBudgetConfig) {
  comm::Executor executor(framework_->soc());
  ControllerConfig config;
  config.pressure.budget = 6000;
  AdaptiveController controller(*engine_, executor, config);
  const Json snap = controller.snapshot();

  ControllerConfig other = config;
  other.pressure.budget = 7000;
  comm::Executor executor2(framework_->soc());
  AdaptiveController mismatched(*engine_, executor2, other);
  EXPECT_THROW(mismatched.restore(snap), std::runtime_error);
}

TEST(PressureReplay, StaticBudgetBlocksOverBudgetCandidates) {
  core::Framework framework(soc::jetson_tx2());
  const auto phases = workload::phasic_workload_phases(framework.board());
  ReplayOptions options;
  // Between the heavy-phase UM (266240 B) and SC (524288 B) footprints:
  // the cache-bound heavy phases keep suggesting SC, the budget keeps
  // rejecting it, and the run must still complete on a valid model.
  options.controller.pressure.budget = 300000;
  const auto result = replay_phasic(framework, phases, options);
  ASSERT_FALSE(result.samples.empty());
  EXPECT_LT(core::model_index(result.samples.back().decision.model_after), 3u);
  EXPECT_GT(result.registry.get("runtime.mem.blocked"), 0.0);
  EXPECT_EQ(result.registry.get("runtime.mem.budget_bytes"), 300000.0);
  EXPECT_EQ(result.switches_into(CommModel::StandardCopy), 0u);
}

}  // namespace
}  // namespace cig::runtime
