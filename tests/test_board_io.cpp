// Tests for board-config serialisation and resolution.
#include <gtest/gtest.h>

#include <cstdio>

#include "soc/board_io.h"
#include "soc/presets.h"

namespace cig::soc {
namespace {

TEST(BoardIo, RoundTripPreservesEveryPreset) {
  for (const auto& original :
       {jetson_nano(), jetson_tx2(), jetson_agx_xavier(), generic_board()}) {
    const auto restored = board_from_json(board_to_json(original));
    EXPECT_EQ(restored.name, original.name);
    EXPECT_EQ(restored.capability, original.capability);
    EXPECT_EQ(restored.cpu.cores, original.cpu.cores);
    EXPECT_DOUBLE_EQ(restored.cpu.frequency, original.cpu.frequency);
    EXPECT_DOUBLE_EQ(restored.cpu.ipc, original.cpu.ipc);
    EXPECT_EQ(restored.cpu.llc.geometry.capacity,
              original.cpu.llc.geometry.capacity);
    EXPECT_EQ(restored.gpu.sms, original.gpu.sms);
    EXPECT_DOUBLE_EQ(restored.gpu.issue_efficiency,
                     original.gpu.issue_efficiency);
    EXPECT_NEAR(restored.gpu.uncached_bandwidth,
                original.gpu.uncached_bandwidth, 1e3);
    EXPECT_NEAR(restored.dram.bandwidth, original.dram.bandwidth, 1e3);
    EXPECT_NEAR(restored.io_coherence.snoop_bandwidth,
                original.io_coherence.snoop_bandwidth, 1e3);
    EXPECT_EQ(restored.um.batch_pages, original.um.batch_pages);
    EXPECT_NEAR(restored.copy.bandwidth, original.copy.bandwidth, 1e3);
    EXPECT_NEAR(restored.power.idle, original.power.idle, 1e-9);
    EXPECT_NEAR(restored.dram.energy_per_byte, original.dram.energy_per_byte,
                1e-15);
  }
}

TEST(BoardIo, SparseJsonInheritsGenericDefaults) {
  const auto board = board_from_json(Json::parse(R"({
    "name": "minimal",
    "dram": {"bandwidth_gbps": 100}
  })"));
  EXPECT_EQ(board.name, "minimal");
  EXPECT_NEAR(to_GBps(board.dram.bandwidth), 100.0, 1e-9);
  // Everything else came from generic_board().
  const auto generic = generic_board();
  EXPECT_EQ(board.cpu.cores, generic.cpu.cores);
  EXPECT_EQ(board.gpu.llc.geometry.capacity,
            generic.gpu.llc.geometry.capacity);
}

TEST(BoardIo, CapabilityStringsParse) {
  const auto io = board_from_json(
      Json::parse(R"({"capability": "hw-io-coherent"})"));
  EXPECT_EQ(io.capability, coherence::Capability::HwIoCoherent);
  const auto sw = board_from_json(Json::parse(R"({"capability": "sw-flush"})"));
  EXPECT_EQ(sw.capability, coherence::Capability::SwFlush);
}

TEST(BoardIo, InvalidGeometryIsRejectedOnLoad) {
  EXPECT_DEATH(board_from_json(Json::parse(
                   R"({"cpu": {"l1": {"capacity_bytes": 1000}}})")),
               "Precondition");  // 1000 is not a power of two
}

TEST(BoardIo, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/cig_board.json";
  save_board(jetson_tx2(), path);
  const auto loaded = load_board(path);
  EXPECT_EQ(loaded.name, "Jetson TX2");
  EXPECT_NEAR(to_GBps(loaded.gpu.uncached_bandwidth), 1.28, 0.01);
  std::remove(path.c_str());
}

TEST(BoardIo, LoadMissingFileThrows) {
  EXPECT_THROW(load_board("/nonexistent/board.json"), std::runtime_error);
}

TEST(BoardIo, ResolveByPresetNameCaseInsensitive) {
  EXPECT_EQ(resolve_board("tx2").name, "Jetson TX2");
  EXPECT_EQ(resolve_board("TX2").name, "Jetson TX2");
  EXPECT_EQ(resolve_board("xavier").name, "Jetson AGX Xavier");
  EXPECT_EQ(resolve_board("jetson-nano").name, "Jetson Nano");
  EXPECT_EQ(resolve_board("xavier-nx").name, "Jetson Xavier NX");
  EXPECT_EQ(resolve_board("generic").name, "generic");
}

TEST(BoardIo, ResolveByFilePath) {
  const std::string path = ::testing::TempDir() + "/cig_resolve.json";
  save_board(jetson_nano(), path);
  EXPECT_EQ(resolve_board(path).name, "Jetson Nano");
  std::remove(path.c_str());
}

TEST(BoardIo, ResolveUnknownThrows) {
  EXPECT_THROW(resolve_board("orin-agx-9000"), std::runtime_error);
}

TEST(BoardIo, EditedFieldSurvivesRoundTrip) {
  auto j = board_to_json(jetson_tx2());
  j["gpu"]["llc"]["bandwidth_gbps"] = Json(123.0);
  const auto board = board_from_json(j);
  EXPECT_NEAR(to_GBps(board.gpu.llc.bandwidth), 123.0, 1e-9);
}

}  // namespace
}  // namespace cig::soc
