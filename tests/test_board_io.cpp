// Tests for board-config serialisation and resolution.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <string>

#include "soc/board_io.h"
#include "soc/presets.h"

namespace cig::soc {
namespace {

TEST(BoardIo, RoundTripPreservesEveryPreset) {
  for (const auto& original :
       {jetson_nano(), jetson_tx2(), jetson_agx_xavier(), generic_board()}) {
    const auto restored = board_from_json(board_to_json(original));
    EXPECT_EQ(restored.name, original.name);
    EXPECT_EQ(restored.capability, original.capability);
    EXPECT_EQ(restored.cpu.cores, original.cpu.cores);
    EXPECT_DOUBLE_EQ(restored.cpu.frequency, original.cpu.frequency);
    EXPECT_DOUBLE_EQ(restored.cpu.ipc, original.cpu.ipc);
    EXPECT_EQ(restored.cpu.llc.geometry.capacity,
              original.cpu.llc.geometry.capacity);
    EXPECT_EQ(restored.gpu.sms, original.gpu.sms);
    EXPECT_DOUBLE_EQ(restored.gpu.issue_efficiency,
                     original.gpu.issue_efficiency);
    EXPECT_NEAR(restored.gpu.uncached_bandwidth,
                original.gpu.uncached_bandwidth, 1e3);
    EXPECT_NEAR(restored.dram.bandwidth, original.dram.bandwidth, 1e3);
    EXPECT_NEAR(restored.io_coherence.snoop_bandwidth,
                original.io_coherence.snoop_bandwidth, 1e3);
    EXPECT_EQ(restored.um.batch_pages, original.um.batch_pages);
    EXPECT_NEAR(restored.copy.bandwidth, original.copy.bandwidth, 1e3);
    EXPECT_NEAR(restored.power.idle, original.power.idle, 1e-9);
    EXPECT_NEAR(restored.dram.energy_per_byte, original.dram.energy_per_byte,
                1e-15);
  }
}

TEST(BoardIo, SparseJsonInheritsGenericDefaults) {
  const auto board = board_from_json(Json::parse(R"({
    "name": "minimal",
    "dram": {"bandwidth_gbps": 100}
  })"));
  EXPECT_EQ(board.name, "minimal");
  EXPECT_NEAR(to_GBps(board.dram.bandwidth), 100.0, 1e-9);
  // Everything else came from generic_board().
  const auto generic = generic_board();
  EXPECT_EQ(board.cpu.cores, generic.cpu.cores);
  EXPECT_EQ(board.gpu.llc.geometry.capacity,
            generic.gpu.llc.geometry.capacity);
}

TEST(BoardIo, CapabilityStringsParse) {
  const auto io = board_from_json(
      Json::parse(R"({"capability": "hw-io-coherent"})"));
  EXPECT_EQ(io.capability, coherence::Capability::HwIoCoherent);
  const auto sw = board_from_json(Json::parse(R"({"capability": "sw-flush"})"));
  EXPECT_EQ(sw.capability, coherence::Capability::SwFlush);
}

// Every malformed-board diagnostic must name the offending key: a board
// author edits one line, the error should point back at it.
std::string load_error(const std::string& text) {
  try {
    board_from_json(Json::parse(text));
  } catch (const std::runtime_error& error) {
    return error.what();
  }
  ADD_FAILURE() << "expected board_from_json to reject: " << text;
  return "";
}

TEST(BoardIo, InvalidGeometryIsRejectedOnLoad) {
  // 1000 is not a power of two.
  const std::string what =
      load_error(R"({"cpu": {"l1": {"capacity_bytes": 1000}}})");
  EXPECT_NE(what.find("cpu.l1"), std::string::npos) << what;
  EXPECT_NE(what.find("realisable"), std::string::npos) << what;
}

TEST(BoardIo, WrongTypeNamesTheKey) {
  const std::string what =
      load_error(R"({"cpu": {"frequency_mhz": "fast"}})");
  EXPECT_NE(what.find("cpu.frequency_mhz"), std::string::npos) << what;
  EXPECT_NE(what.find("expected a number"), std::string::npos) << what;
}

TEST(BoardIo, WrongSectionTypeNamesTheSection) {
  const std::string what = load_error(R"({"dram": 42})");
  EXPECT_NE(what.find("dram"), std::string::npos) << what;
  EXPECT_NE(what.find("expected an object"), std::string::npos) << what;
}

TEST(BoardIo, OutOfRangeNamesTheKey) {
  const std::string negative_bw =
      load_error(R"({"dram": {"bandwidth_gbps": -3}})");
  EXPECT_NE(negative_bw.find("dram.bandwidth_gbps"), std::string::npos)
      << negative_bw;
  EXPECT_NE(negative_bw.find("must be > 0"), std::string::npos) << negative_bw;

  const std::string zero_cores = load_error(R"({"cpu": {"cores": 0}})");
  EXPECT_NE(zero_cores.find("cpu.cores"), std::string::npos) << zero_cores;

  const std::string efficiency =
      load_error(R"({"dram": {"uncached_efficiency": 1.5}})");
  EXPECT_NE(efficiency.find("dram.uncached_efficiency"), std::string::npos)
      << efficiency;
  EXPECT_NE(efficiency.find("must be <= 1"), std::string::npos) << efficiency;
}

TEST(BoardIo, L1MustBeSmallerThanLlc) {
  const std::string what = load_error(
      R"({"cpu": {"l1": {"capacity_bytes": 4194304},
                  "llc": {"capacity_bytes": 32768}}})");
  EXPECT_NE(what.find("cpu.l1.capacity_bytes"), std::string::npos) << what;
  EXPECT_NE(what.find("smaller than cpu.llc.capacity_bytes"),
            std::string::npos)
      << what;
}

TEST(BoardIo, UnknownCapabilityNamesTheKey) {
  const std::string what = load_error(R"({"capability": "telepathy"})");
  EXPECT_NE(what.find("capability"), std::string::npos) << what;
  EXPECT_NE(what.find("telepathy"), std::string::npos) << what;
}

TEST(BoardIo, NonFiniteNumberIsRejected) {
  // The JSON grammar has no NaN literal, but a computed Json can hold one
  // (e.g. a script that round-trips through board_to_json).
  auto j = board_to_json(generic_board());
  j["gpu"]["issue_efficiency"] = Json(std::nan(""));
  try {
    board_from_json(j);
    ADD_FAILURE() << "expected NaN issue_efficiency to be rejected";
  } catch (const std::runtime_error& error) {
    EXPECT_NE(std::string(error.what()).find("gpu.issue_efficiency"),
              std::string::npos)
        << error.what();
  }
}

TEST(BoardIo, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/cig_board.json";
  save_board(jetson_tx2(), path);
  const auto loaded = load_board(path);
  EXPECT_EQ(loaded.name, "Jetson TX2");
  EXPECT_NEAR(to_GBps(loaded.gpu.uncached_bandwidth), 1.28, 0.01);
  std::remove(path.c_str());
}

TEST(BoardIo, LoadMissingFileThrows) {
  EXPECT_THROW(load_board("/nonexistent/board.json"), std::runtime_error);
}

TEST(BoardIo, ResolveByPresetNameCaseInsensitive) {
  EXPECT_EQ(resolve_board("tx2").name, "Jetson TX2");
  EXPECT_EQ(resolve_board("TX2").name, "Jetson TX2");
  EXPECT_EQ(resolve_board("xavier").name, "Jetson AGX Xavier");
  EXPECT_EQ(resolve_board("jetson-nano").name, "Jetson Nano");
  EXPECT_EQ(resolve_board("xavier-nx").name, "Jetson Xavier NX");
  EXPECT_EQ(resolve_board("generic").name, "generic");
}

TEST(BoardIo, ResolveByFilePath) {
  const std::string path = ::testing::TempDir() + "/cig_resolve.json";
  save_board(jetson_nano(), path);
  EXPECT_EQ(resolve_board(path).name, "Jetson Nano");
  std::remove(path.c_str());
}

TEST(BoardIo, ResolveUnknownThrows) {
  EXPECT_THROW(resolve_board("orin-agx-9000"), std::runtime_error);
}

TEST(BoardIo, EditedFieldSurvivesRoundTrip) {
  auto j = board_to_json(jetson_tx2());
  j["gpu"]["llc"]["bandwidth_gbps"] = Json(123.0);
  const auto board = board_from_json(j);
  EXPECT_NEAR(to_GBps(board.gpu.llc.bandwidth), 123.0, 1e-9);
}

}  // namespace
}  // namespace cig::soc
