// End-to-end reproduction tests: these pin the paper's headline results as
// executable assertions — the framework, run on the simulated Jetson
// boards, must reach the same decisions the paper reports.
#include <gtest/gtest.h>

#include "apps/orbslam/workload.h"
#include "apps/shwfs/workload.h"
#include "core/framework.h"
#include "profile/energy.h"
#include "soc/presets.h"

namespace cig {
namespace {

using comm::CommModel;

// --- SH-WFS (Section IV-B) -----------------------------------------------------

TEST(PaperShwfs, Tx2FrameworkKeepsStandardCopy) {
  // Table II: both usages sit above the TX2 thresholds (CPU 19.8 > 15.6,
  // GPU 3.7 > 2.7 in the paper) -> the framework keeps SC/UM.
  core::Framework fw(soc::jetson_tx2());
  const auto rec = fw.analyze(apps::shwfs::shwfs_workload(fw.board()),
                              CommModel::StandardCopy);
  EXPECT_FALSE(rec.switch_model);
  EXPECT_EQ(rec.suggested, CommModel::StandardCopy);
  EXPECT_TRUE(rec.cpu_over_threshold);
}

TEST(PaperShwfs, NanoFrameworkKeepsStandardCopy) {
  core::Framework fw(soc::jetson_nano());
  const auto rec = fw.analyze(apps::shwfs::shwfs_workload(fw.board()),
                              CommModel::StandardCopy);
  EXPECT_FALSE(rec.switch_model);
  EXPECT_TRUE(rec.cpu_over_threshold);
}

TEST(PaperShwfs, XavierFrameworkSuggestsZeroCopyAndItWins) {
  // Table II/III: the framework suggests ZC on Xavier and the measured
  // switch is a real speedup (paper: estimated up to 69%, actual +38%).
  core::Framework fw(soc::jetson_agx_xavier());
  const auto workload = apps::shwfs::shwfs_workload(fw.board());
  const auto report = fw.tune(workload, CommModel::StandardCopy);
  EXPECT_TRUE(report.recommendation.switch_model);
  EXPECT_EQ(report.recommendation.suggested, CommModel::ZeroCopy);
  EXPECT_GT(report.recommendation.estimated_speedup, 1.2);
  EXPECT_GT(report.actual_speedup(), 1.2);
  // The estimate is an upper bound on the realised speedup ("up to").
  EXPECT_GE(report.recommendation.estimated_speedup * 1.15,
            report.actual_speedup());
}

TEST(PaperShwfs, ZcDegradesTotalOnSwFlushBoards) {
  // Table III: switching to ZC on Nano/TX2 loses performance.
  for (const auto& board : {soc::jetson_nano(), soc::jetson_tx2()}) {
    soc::SoC soc(board);
    comm::Executor executor(soc);
    const auto workload = apps::shwfs::shwfs_workload(board);
    const auto sc = executor.run(workload, CommModel::StandardCopy);
    const auto zc = executor.run(workload, CommModel::ZeroCopy);
    EXPECT_GT(zc.total, sc.total) << board.name;
    EXPECT_GT(zc.cpu_time, sc.cpu_time * 1.5) << board.name;
  }
}

TEST(PaperShwfs, UmWithinTenPercentOfSc) {
  // Table III: |UM - SC| below ~10% on every board.
  for (const auto& board : soc::jetson_family()) {
    soc::SoC soc(board);
    comm::Executor executor(soc);
    const auto workload = apps::shwfs::shwfs_workload(board);
    const auto sc = executor.run(workload, CommModel::StandardCopy);
    const auto um = executor.run(workload, CommModel::UnifiedMemory);
    EXPECT_NEAR(um.total / sc.total, 1.0, 0.12) << board.name;
  }
}

TEST(PaperShwfs, XavierZcSavesEnergy) {
  // Section IV-B: ZC saves energy on Xavier (paper: ~0.12 J/s).
  const auto board = soc::jetson_agx_xavier();
  soc::SoC soc(board);
  comm::Executor executor(soc);
  const auto workload = apps::shwfs::shwfs_workload(board);
  const auto sc = executor.run(workload, CommModel::StandardCopy);
  const auto zc = executor.run(workload, CommModel::ZeroCopy);
  const auto cmp = profile::compare_energy(sc, zc);
  EXPECT_GT(cmp.joules_per_second_saved_at(200.0, board.power.idle), 0.0);
}

// --- ORB-SLAM (Section IV-C) -----------------------------------------------------

TEST(PaperOrbslam, Tx2IsGpuCacheBound) {
  // Table IV: GPU cache usage far above the TX2 threshold (zone 3).
  core::Framework fw(soc::jetson_tx2());
  const auto rec = fw.analyze(apps::orbslam::orbslam_workload(fw.board()),
                              CommModel::StandardCopy);
  EXPECT_EQ(rec.gpu_zone, core::Zone::CacheBound);
  EXPECT_FALSE(rec.switch_model);  // already on SC: no change suggested
}

TEST(PaperOrbslam, Tx2OnZcIsToldToSwitchBack) {
  core::Framework fw(soc::jetson_tx2());
  const auto rec = fw.analyze(apps::orbslam::orbslam_workload(fw.board()),
                              CommModel::ZeroCopy);
  EXPECT_TRUE(rec.switch_model);
  EXPECT_EQ(rec.suggested, CommModel::StandardCopy);
  EXPECT_GT(rec.max_speedup, 10.0);  // the device bound is huge on the TX2
}

TEST(PaperOrbslam, XavierLandsInGreyZone) {
  // Table IV: Xavier profile sits in zone 2 (16.2-57.1% in the paper).
  core::Framework fw(soc::jetson_agx_xavier());
  const auto rec = fw.analyze(apps::orbslam::orbslam_workload(fw.board()),
                              CommModel::StandardCopy);
  EXPECT_EQ(rec.gpu_zone, core::Zone::Grey);
}

TEST(PaperOrbslam, Tx2ZcIsCatastrophic) {
  // Table V: SC 70 ms vs ZC 521 ms on the TX2 (-744%); we require at
  // least a 2x degradation with the kernel hit even harder.
  soc::SoC soc(soc::jetson_tx2());
  comm::Executor executor(soc);
  const auto workload = apps::orbslam::orbslam_workload(soc.config());
  const auto sc = executor.run(workload, CommModel::StandardCopy);
  const auto zc = executor.run(workload, CommModel::ZeroCopy);
  EXPECT_GT(zc.total, sc.total * 2.0);
  EXPECT_GT(zc.kernel_time, sc.kernel_time * 3.0);
}

TEST(PaperOrbslam, XavierZcBreaksEven) {
  // Table V: 30 ms under both models on Xavier (kernel -10%, compensated).
  soc::SoC soc(soc::jetson_agx_xavier());
  comm::Executor executor(soc);
  const auto workload = apps::orbslam::orbslam_workload(soc.config());
  const auto sc = executor.run(workload, CommModel::StandardCopy);
  const auto zc = executor.run(workload, CommModel::ZeroCopy);
  EXPECT_NEAR(zc.total / sc.total, 1.0, 0.15);
  EXPECT_GT(zc.kernel_time, sc.kernel_time);  // kernel slightly slower
  EXPECT_LT(zc.kernel_time, sc.kernel_time * 1.6);
}

// --- device characterization (Section IV-A) ----------------------------------------

TEST(PaperDevices, Table1ThroughputShape) {
  // ZC/SC/UM ordering holds on both boards, and the ZC gap is an order of
  // magnitude larger on the TX2 than on Xavier (77x vs 7x in Table I).
  soc::SoC tx2(soc::jetson_tx2());
  soc::SoC xavier(soc::jetson_agx_xavier());
  const auto mb1_tx2 = core::MicrobenchSuite(tx2).run_mb1();
  const auto mb1_xavier = core::MicrobenchSuite(xavier).run_mb1();

  const auto ratio = [](const core::Mb1Result& r) {
    return r.gpu_ll_throughput[core::model_index(CommModel::StandardCopy)] /
           r.gpu_ll_throughput[core::model_index(CommModel::ZeroCopy)];
  };
  EXPECT_GT(ratio(mb1_tx2), 50.0);
  EXPECT_LT(ratio(mb1_xavier), 12.0);
  EXPECT_GT(ratio(mb1_tx2), ratio(mb1_xavier) * 5);
}

TEST(PaperDevices, XavierToleratesZcFarBetterThanTx2) {
  soc::SoC tx2(soc::jetson_tx2());
  soc::SoC xavier(soc::jetson_agx_xavier());
  const auto mb2_tx2 = core::MicrobenchSuite(tx2).run_mb2();
  const auto mb2_xavier = core::MicrobenchSuite(xavier).run_mb2();
  EXPECT_GT(mb2_xavier.gpu.threshold_pct, mb2_tx2.gpu.threshold_pct * 3);
  EXPECT_DOUBLE_EQ(mb2_xavier.cpu.threshold_pct, 100.0);
  EXPECT_LT(mb2_tx2.cpu.threshold_pct, 100.0);
}

}  // namespace
}  // namespace cig
