// Protocol fuzz/property tests for the serve wire format (serve/protocol.h)
// and the daemon's request loop: malformed JSON, unknown ops, out-of-range
// fields, oversized lines and out-of-order tenant traffic must all produce
// structured error replies — one reply per input line, never an abort — and
// the reply stream for a fixed input must be byte-identical at every jobs
// setting.
#include <gtest/gtest.h>

#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "serve/protocol.h"
#include "serve/server.h"
#include "support/json.h"

namespace cig::serve {
namespace {

ParsedLine parse(const std::string& line) { return parse_request(line, 1); }

std::string error_of(const std::string& line) {
  const ParsedLine parsed = parse(line);
  if (parsed.ok) return "";
  return parsed.error.string_or("error", "");
}

TEST(ServeProtocol, ValidRequestDefaults) {
  const ParsedLine parsed =
      parse("{\"op\":\"sample\",\"tenant\":\"a\"}");
  ASSERT_TRUE(parsed.ok);
  EXPECT_EQ(parsed.request.op, Op::Sample);
  EXPECT_EQ(parsed.request.tenant, "a");
  EXPECT_EQ(parsed.request.board, "tx2");
  EXPECT_EQ(parsed.request.span, 4096u);
  EXPECT_EQ(parsed.request.iterations, 1u);
  EXPECT_FALSE(parsed.request.heavy);

  const ParsedLine heavy =
      parse("{\"op\":\"sample\",\"tenant\":\"a\",\"heavy\":true}");
  ASSERT_TRUE(heavy.ok);
  EXPECT_GT(heavy.request.demand, parsed.request.demand);
}

TEST(ServeProtocol, StructuredErrorsForBadInput) {
  EXPECT_EQ(error_of("this is not json"), "parse");
  EXPECT_EQ(error_of("{\"op\":\"sample\",\"tenant\":"), "parse");
  EXPECT_EQ(error_of("[1,2,3]"), "parse");  // not an object
  EXPECT_EQ(error_of("{}"), "bad-request");
  EXPECT_EQ(error_of("{\"op\":\"frobnicate\"}"), "unknown-op");
  EXPECT_EQ(error_of("{\"op\":\"sample\"}"), "bad-request");  // no tenant
  EXPECT_EQ(error_of("{\"op\":\"sample\",\"tenant\":\"\"}"), "bad-request");
  EXPECT_EQ(error_of("{\"op\":\"sample\",\"tenant\":\"" +
                     std::string(kMaxTenantIdBytes + 1, 'x') + "\"}"),
            "bad-request");
  EXPECT_EQ(
      error_of("{\"op\":\"sample\",\"tenant\":\"a\",\"span\":1}"),
      "bad-request");  // below kMinSpanBytes
  EXPECT_EQ(error_of("{\"op\":\"sample\",\"tenant\":\"a\",\"span\":" +
                     std::to_string(kMaxSpanBytes * 2) + "}"),
            "bad-request");
  EXPECT_EQ(
      error_of("{\"op\":\"sample\",\"tenant\":\"a\",\"demand\":-1}"),
      "bad-request");
  EXPECT_EQ(
      error_of("{\"op\":\"sample\",\"tenant\":\"a\",\"demand\":1e9}"),
      "bad-request");
  EXPECT_EQ(
      error_of("{\"op\":\"sample\",\"tenant\":\"a\",\"iterations\":0}"),
      "bad-request");
  EXPECT_EQ(error_of("{\"op\":\"sample\",\"tenant\":\"a\",\"iterations\":" +
                     std::to_string(kMaxIterations + 1) + "}"),
            "bad-request");
}

TEST(ServeProtocol, TraceIdsAcceptedGeneratedAndValidated) {
  // Given ids are kept and flagged as caller-supplied.
  const ParsedLine given = parse(
      "{\"op\":\"sample\",\"tenant\":\"a\",\"trace_id\":\"req-42.b\"}");
  ASSERT_TRUE(given.ok);
  EXPECT_TRUE(given.request.trace_id_given);
  EXPECT_EQ(given.request.trace_id, "req-42.b");

  // Absent ids get a deterministic per-line fallback, not an error.
  const ParsedLine absent = parse_request(
      "{\"op\":\"sample\",\"tenant\":\"a\"}", 17);
  ASSERT_TRUE(absent.ok);
  EXPECT_FALSE(absent.request.trace_id_given);
  EXPECT_EQ(absent.request.trace_id, "r17");

  // Oversized, non-string or non-printable ids are bad requests.
  EXPECT_EQ(error_of("{\"op\":\"sample\",\"tenant\":\"a\",\"trace_id\":\"" +
                     std::string(kMaxTraceIdBytes + 1, 't') + "\"}"),
            "bad-request");
  EXPECT_EQ(error_of("{\"op\":\"sample\",\"tenant\":\"a\",\"trace_id\":7}"),
            "bad-request");
  EXPECT_EQ(
      error_of("{\"op\":\"sample\",\"tenant\":\"a\",\"trace_id\":\"\"}"),
      "bad-request");
  EXPECT_EQ(error_of(
                "{\"op\":\"sample\",\"tenant\":\"a\",\"trace_id\":\"a b\"}"),
            "bad-request");
}

TEST(ServeProtocol, QosFieldsParsedAndBounded) {
  // Defaults: shed class 1, no per-request deadline.
  const ParsedLine plain = parse("{\"op\":\"sample\",\"tenant\":\"a\"}");
  ASSERT_TRUE(plain.ok);
  EXPECT_EQ(plain.request.priority, kDefaultPriority);
  EXPECT_EQ(plain.request.deadline_us, 0u);

  for (std::uint32_t p = 0; p <= kMaxPriority; ++p) {
    const ParsedLine parsed =
        parse("{\"op\":\"decide\",\"tenant\":\"a\",\"priority\":" +
              std::to_string(p) + "}");
    ASSERT_TRUE(parsed.ok) << p;
    EXPECT_EQ(parsed.request.priority, p);
  }
  const ParsedLine deadline = parse(
      "{\"op\":\"decide\",\"tenant\":\"a\",\"deadline_us\":2500}");
  ASSERT_TRUE(deadline.ok);
  EXPECT_EQ(deadline.request.deadline_us, 2500u);

  // Out-of-range, fractional and wrong-typed QoS fields are bad requests.
  EXPECT_EQ(error_of("{\"op\":\"decide\",\"tenant\":\"a\",\"priority\":-1}"),
            "bad-request");
  EXPECT_EQ(error_of("{\"op\":\"decide\",\"tenant\":\"a\",\"priority\":" +
                     std::to_string(kMaxPriority + 1) + "}"),
            "bad-request");
  EXPECT_EQ(error_of("{\"op\":\"decide\",\"tenant\":\"a\",\"priority\":1.5}"),
            "bad-request");
  EXPECT_EQ(
      error_of("{\"op\":\"decide\",\"tenant\":\"a\",\"priority\":\"high\"}"),
      "bad-request");
  EXPECT_EQ(
      error_of("{\"op\":\"decide\",\"tenant\":\"a\",\"deadline_us\":0}"),
      "bad-request");
  EXPECT_EQ(
      error_of("{\"op\":\"decide\",\"tenant\":\"a\",\"deadline_us\":-5}"),
      "bad-request");
  EXPECT_EQ(error_of("{\"op\":\"decide\",\"tenant\":\"a\",\"deadline_us\":" +
                     std::to_string(2 * kMaxDeadlineUs) + "}"),
            "bad-request");
  EXPECT_EQ(
      error_of(
          "{\"op\":\"decide\",\"tenant\":\"a\",\"deadline_us\":\"soon\"}"),
      "bad-request");
}

TEST(ServeProtocol, ErrorRepliesEchoRequestContext) {
  // Whatever parsed before the rejection is echoed: op, tenant, and a
  // client-supplied trace id.
  const ParsedLine bad_span = parse_request(
      "{\"op\":\"sample\",\"tenant\":\"t9\",\"trace_id\":\"tr-1\","
      "\"span\":1}",
      5);
  ASSERT_FALSE(bad_span.ok);
  EXPECT_EQ(bad_span.error.string_or("error", ""), "bad-request");
  EXPECT_EQ(bad_span.error.string_or("op", ""), "sample");
  EXPECT_EQ(bad_span.error.string_or("tenant", ""), "t9");
  EXPECT_EQ(bad_span.error.string_or("trace_id", ""), "tr-1");

  // An unknown op still echoes the op text and tenant.
  const ParsedLine bad_op = parse_request(
      "{\"op\":\"frobnicate\",\"tenant\":\"t9\"}", 6);
  ASSERT_FALSE(bad_op.ok);
  EXPECT_EQ(bad_op.error.string_or("op", ""), "frobnicate");
  EXPECT_EQ(bad_op.error.string_or("tenant", ""), "t9");

  // Nothing understood -> nothing invented: a parse error echoes no
  // context fields, and generated trace ids are never echoed.
  const ParsedLine garbage = parse_request("not json at all", 7);
  ASSERT_FALSE(garbage.ok);
  EXPECT_FALSE(garbage.error.contains("op"));
  EXPECT_FALSE(garbage.error.contains("tenant"));
  EXPECT_FALSE(garbage.error.contains("trace_id"));
  const ParsedLine no_trace = parse_request(
      "{\"op\":\"sample\",\"tenant\":\"t9\",\"span\":1}", 8);
  ASSERT_FALSE(no_trace.ok);
  EXPECT_FALSE(no_trace.error.contains("trace_id"));
}

TEST(ServeProtocol, DumpTraceParsesOptionalPath) {
  const ParsedLine bare = parse("{\"op\":\"dump_trace\"}");
  ASSERT_TRUE(bare.ok);
  EXPECT_EQ(bare.request.op, Op::DumpTrace);
  EXPECT_TRUE(bare.request.path.empty());

  const ParsedLine with_path =
      parse("{\"op\":\"dump_trace\",\"path\":\"/tmp/f.trace.json\"}");
  ASSERT_TRUE(with_path.ok);
  EXPECT_EQ(with_path.request.path, "/tmp/f.trace.json");

  EXPECT_EQ(error_of("{\"op\":\"dump_trace\",\"path\":\"\"}"), "bad-request");
  EXPECT_EQ(error_of("{\"op\":\"dump_trace\",\"path\":123}"), "bad-request");
  EXPECT_EQ(error_of("{\"op\":\"dump_trace\",\"path\":\"" +
                     std::string(kMaxDumpPathBytes + 1, 'p') + "\"}"),
            "bad-request");
}

TEST(ServeProtocol, OversizedLineRejectedBeforeParsing) {
  std::string line = "{\"op\":\"sample\",\"tenant\":\"a\",\"pad\":\"";
  line += std::string(kMaxLineBytes, 'x');
  line += "\"}";
  EXPECT_EQ(error_of(line), "oversized-line");
}

TEST(ServeProtocol, ErrorRepliesCarryTheLineNumber) {
  const ParsedLine parsed = parse_request("garbage", 42);
  ASSERT_FALSE(parsed.ok);
  EXPECT_EQ(parsed.error.number_or("line", 0), 42);
  EXPECT_FALSE(parsed.error.bool_or("ok", true));
  EXPECT_FALSE(parsed.error.string_or("detail", "").empty());
}

// Deterministic corpus of hostile lines: truncations and byte mutations of
// a valid request, random garbage, wrong-typed fields. Seeded, so every run
// and every jobs setting sees the same bytes.
std::vector<std::string> fuzz_corpus(std::size_t count) {
  const std::string seed_line =
      "{\"op\":\"sample\",\"tenant\":\"fuzz\",\"span\":4096,"
      "\"demand\":0.5,\"iterations\":2,\"heavy\":false}";
  std::mt19937 rng(0xC19u);
  std::vector<std::string> corpus;
  corpus.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    std::string line = seed_line;
    switch (i % 5) {
      case 0:  // truncate
        line = line.substr(0, 1 + rng() % (line.size() - 1));
        break;
      case 1: {  // mutate one byte
        line[rng() % line.size()] =
            static_cast<char>(32 + rng() % 95);
        break;
      }
      case 2: {  // random printable garbage
        const std::size_t n = 1 + rng() % 64;
        line.clear();
        for (std::size_t k = 0; k < n; ++k) {
          line += static_cast<char>(32 + rng() % 95);
        }
        break;
      }
      case 3:  // structurally valid JSON, hostile values
        line = "{\"op\":\"sample\",\"tenant\":\"fuzz\",\"span\":" +
               std::to_string(static_cast<long long>(rng()) - (1LL << 31)) +
               ",\"iterations\":" + std::to_string(rng()) + "}";
        break;
      case 4:  // hostile QoS fields
        line = "{\"op\":\"decide\",\"tenant\":\"fuzz\",\"priority\":" +
               std::to_string(static_cast<long long>(rng() % 64) - 8) +
               ",\"deadline_us\":" +
               std::to_string(static_cast<long long>(rng()) - (1LL << 31)) +
               "}";
        break;
    }
    corpus.push_back(std::move(line));
  }
  return corpus;
}

TEST(ServeProtocol, FuzzedLinesNeverThrow) {
  for (const std::string& line : fuzz_corpus(2000)) {
    const ParsedLine parsed = parse(line);  // must not throw or abort
    if (!parsed.ok) {
      EXPECT_FALSE(parsed.error.string_or("error", "").empty()) << line;
    }
  }
}

// The daemon-level property: a stream interleaving garbage with valid
// traffic gets exactly one reply per line, keeps serving afterwards, and is
// byte-identical across jobs settings. No state dir and no samples for
// unregistered tenants, so no board characterization is needed — the test
// exercises the request loop, not the simulator.
TEST(ServeProtocol, ServerSurvivesFuzzedStream) {
  std::ostringstream script;
  std::size_t lines = 0;
  const std::vector<std::string> corpus = fuzz_corpus(300);
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    script << corpus[i] << '\n';
    ++lines;
    if (i % 10 == 0) {
      // Out-of-order tenant traffic: samples and decides for tenants that
      // never sent a hello must answer unknown-tenant, not abort.
      script << "{\"op\":\"sample\",\"tenant\":\"never-hello-"
             << i << "\"}\n";
      script << "{\"op\":\"decide\",\"tenant\":\"also-never\"}\n";
      lines += 2;
    }
  }
  script << "{\"op\":\"stats\"}\n{\"op\":\"shutdown\"}\n";
  lines += 2;

  auto run = [&](int jobs) {
    ServeOptions options;
    options.jobs = jobs;
    options.batch_max = 16;
    Server server(options);
    std::istringstream in(script.str());
    std::ostringstream out;
    const int exit = server.run(in, out);
    EXPECT_EQ(exit, 0);
    EXPECT_GT(server.metrics().parse_errors, 0u);
    return out.str();
  };

  const std::string serial = run(1);
  const std::string parallel = run(8);
  EXPECT_EQ(serial, parallel);

  std::size_t replies = 0;
  std::istringstream out(serial);
  std::string line;
  bool shutdown_ok = false;
  while (std::getline(out, line)) {
    ++replies;
    const Json reply = Json::parse(line);  // every reply is valid JSON
    if (reply.string_or("op", "") == "shutdown") {
      shutdown_ok = reply.bool_or("ok", false);
    }
  }
  EXPECT_EQ(replies, lines);
  EXPECT_TRUE(shutdown_ok);
}

}  // namespace
}  // namespace cig::serve
