// Tests for the SoC layer: board presets, validation, compute-time model,
// SoC assembly and reset semantics.
#include <gtest/gtest.h>

#include <cctype>

#include "soc/presets.h"
#include "soc/soc.h"

namespace cig::soc {
namespace {

// --- presets -----------------------------------------------------------------

class PresetTest : public ::testing::TestWithParam<BoardConfig> {};

TEST_P(PresetTest, Validates) {
  GetParam().validate();  // aborts on violation
  SUCCEED();
}

TEST_P(PresetTest, CacheSizesAreOrdered) {
  const auto& b = GetParam();
  EXPECT_LT(b.cpu.l1.geometry.capacity, b.cpu.llc.geometry.capacity);
  EXPECT_LT(b.gpu.l1.geometry.capacity, b.gpu.llc.geometry.capacity);
}

TEST_P(PresetTest, UncachedPathSlowerThanDram) {
  const auto& b = GetParam();
  EXPECT_LT(b.gpu.uncached_bandwidth, b.dram.bandwidth);
  EXPECT_LT(b.cpu.uncached_bandwidth, b.dram.bandwidth);
}

TEST_P(PresetTest, PeakRatesPositive) {
  const auto& b = GetParam();
  EXPECT_GT(b.cpu_peak_ops_per_second(), 0.0);
  EXPECT_GT(b.gpu_peak_ops_per_second(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Boards, PresetTest,
    ::testing::Values(jetson_nano(), jetson_tx2(), jetson_agx_xavier(),
                      jetson_xavier_nx(), generic_board()),
    [](const auto& info) {
      std::string n = info.param.name;
      for (auto& c : n) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return n;
    });

TEST(Presets, OnlyXavierIsIoCoherent) {
  EXPECT_EQ(jetson_nano().capability, coherence::Capability::SwFlush);
  EXPECT_EQ(jetson_tx2().capability, coherence::Capability::SwFlush);
  EXPECT_EQ(jetson_agx_xavier().capability,
            coherence::Capability::HwIoCoherent);
}

TEST(Presets, DramBandwidthsMatchModules) {
  EXPECT_NEAR(to_GBps(jetson_nano().dram.bandwidth), 25.6, 0.1);
  EXPECT_NEAR(to_GBps(jetson_tx2().dram.bandwidth), 59.7, 0.1);
  EXPECT_NEAR(to_GBps(jetson_agx_xavier().dram.bandwidth), 136.5, 0.1);
}

TEST(Presets, Tx2UncachedGpuPathMatchesTable1) {
  // The paper's Table I: 1.28 GB/s ZC throughput on the TX2.
  EXPECT_NEAR(to_GBps(jetson_tx2().gpu.uncached_bandwidth), 1.28, 0.01);
}

TEST(Presets, XavierNxIsScaledDownAgx) {
  const auto nx = jetson_xavier_nx();
  const auto agx = jetson_agx_xavier();
  EXPECT_EQ(nx.capability, coherence::Capability::HwIoCoherent);
  EXPECT_LT(nx.gpu.sms, agx.gpu.sms);
  EXPECT_LT(nx.dram.bandwidth, agx.dram.bandwidth);
  EXPECT_LT(nx.io_coherence.snoop_bandwidth,
            agx.io_coherence.snoop_bandwidth);
}

TEST(Presets, FamilyHasAllThreeBoards) {
  const auto family = jetson_family();
  ASSERT_EQ(family.size(), 3u);
  EXPECT_EQ(family[0].name, "Jetson Nano");
  EXPECT_EQ(family[1].name, "Jetson TX2");
  EXPECT_EQ(family[2].name, "Jetson AGX Xavier");
}

// --- compute-time model ---------------------------------------------------------

TEST(ComputeModel, CpuTimeInverseToRate) {
  SoC soc(generic_board());  // 1 GHz, ipc 1
  EXPECT_NEAR(soc.cpu_compute_time(1e9, 1.0), 1.0, 1e-9);
  EXPECT_NEAR(soc.cpu_compute_time(1e9, 0.5), 2.0, 1e-9);
  EXPECT_NEAR(soc.cpu_compute_time(1e9, 1.0, 2), 0.5, 1e-9);
}

TEST(ComputeModel, GpuTimeScalesWithUtilization) {
  SoC soc(generic_board());  // 1 SM x 32 lanes x 1 GHz = 32 Gops
  EXPECT_NEAR(soc.gpu_compute_time(32e9, 1.0), 1.0, 1e-9);
  EXPECT_NEAR(soc.gpu_compute_time(32e9, 0.5), 2.0, 1e-9);
}

TEST(ComputeModel, IpcScalesCpuRate) {
  auto board = generic_board();
  board.cpu.ipc = 2.0;
  SoC soc(std::move(board));
  EXPECT_NEAR(soc.cpu_compute_time(1e9, 1.0), 0.5, 1e-9);
}

TEST(ComputeModelDeath, RejectsTooManyThreads) {
  SoC soc(generic_board());  // 2 cores
  EXPECT_DEATH(soc.cpu_compute_time(1e9, 1.0, 3), "Precondition");
}

TEST(ComputeModelDeath, RejectsBadUtilization) {
  SoC soc(generic_board());
  EXPECT_DEATH(soc.gpu_compute_time(1.0, 1.5), "Precondition");
}

// --- SoC assembly ----------------------------------------------------------------

TEST(Soc, HierarchiesWireToOwnCaches) {
  SoC soc(generic_board());
  soc.cpu_hierarchy().access({0x0, 4, mem::AccessKind::Read});
  EXPECT_EQ(soc.cpu_l1().stats().read_misses, 1u);
  EXPECT_EQ(soc.gpu_l1().stats().read_misses, 0u);
  soc.gpu_hierarchy().access({0x0, 4, mem::AccessKind::Read});
  EXPECT_EQ(soc.gpu_l1().stats().read_misses, 1u);
}

TEST(Soc, SharedDramSeesBothAgents) {
  SoC soc(generic_board());
  soc.cpu_hierarchy().access({0x0, 4, mem::AccessKind::Read});
  soc.gpu_hierarchy().access({0x10000, 4, mem::AccessKind::Read});
  EXPECT_EQ(soc.dram().cached_bytes(), 128u);  // two 64 B fills
}

TEST(Soc, ResetRestoresPristineState) {
  SoC soc(generic_board());
  soc.cpu_hierarchy().set_enabled(0, false);
  soc.cpu_hierarchy().access({0x0, 4, mem::AccessKind::Write});
  soc.um_engine().touch_range(coherence::Owner::Device, 0, KiB(8));
  soc.reset();
  EXPECT_EQ(soc.cpu_l1().valid_lines(), 0u);
  EXPECT_EQ(soc.cpu_l1().stats().accesses(), 0u);
  EXPECT_EQ(soc.dram().total_bytes(), 0u);
  EXPECT_EQ(soc.um_engine().pages_tracked(), 0u);
  EXPECT_TRUE(soc.cpu_hierarchy().any_level_enabled());
  // Re-enabled after reset: the L1 serves again.
  soc.cpu_hierarchy().access({0x0, 4, mem::AccessKind::Read});
  soc.cpu_hierarchy().access({0x0, 4, mem::AccessKind::Read});
  EXPECT_EQ(soc.cpu_l1().stats().read_hits, 1u);
}

TEST(Soc, ConfigIsValidatedOnConstruction) {
  BoardConfig bad = generic_board();
  bad.cpu.l1.geometry.capacity = bad.cpu.llc.geometry.capacity * 2;
  EXPECT_DEATH(SoC{std::move(bad)}, "Precondition");
}

}  // namespace
}  // namespace cig::soc
