// Tests for the seeded fault injector and the scenario catalogue.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <string>
#include <vector>

#include "fault/injector.h"
#include "fault/scenario.h"
#include "sim/stat_registry.h"
#include "soc/presets.h"
#include "soc/soc.h"

namespace cig::fault {
namespace {

profile::ProfileReport make_report() {
  profile::ProfileReport report;
  report.workload = "synthetic";
  report.board = "test";
  report.cpu_l1_miss_rate = 0.2;
  report.cpu_llc_miss_rate = 0.1;
  report.gpu_l1_hit_rate = 0.8;
  report.gpu_llc_hit_rate = 0.9;
  report.gpu_transactions = 1000;
  report.gpu_transaction_size = 32;
  report.kernel_time = 1e-3;
  report.cpu_time = 5e-4;
  report.copy_time = 2e-4;
  report.total_time = 2e-3;
  report.gpu_ll_throughput = 1e9;
  report.cpu_ll_throughput = 2e9;
  report.energy = 0.1;
  report.average_power = 5;
  return report;
}

TEST(FaultInjector, KindNamesAreStableSnakeCase) {
  EXPECT_STREQ(fault_kind_name(FaultKind::CounterNoise), "counter_noise");
  EXPECT_STREQ(fault_kind_name(FaultKind::CounterDropout), "counter_dropout");
  EXPECT_STREQ(fault_kind_name(FaultKind::CounterSaturation),
               "counter_saturation");
  EXPECT_STREQ(fault_kind_name(FaultKind::OutlierSpike), "outlier_spike");
  EXPECT_STREQ(fault_kind_name(FaultKind::StaleBatch), "stale_batch");
  EXPECT_STREQ(fault_kind_name(FaultKind::ThermalDerate), "thermal_derate");
  EXPECT_STREQ(fault_kind_name(FaultKind::CorruptCharacterization),
               "corrupt_characterization");
}

TEST(FaultInjector, SameSeedReproducesTheExactFaultSequence) {
  const std::vector<FaultSpec> specs = {
      {.kind = FaultKind::CounterNoise, .probability = 0.5, .magnitude = 0.3}};
  FaultInjector a(specs, 1234);
  FaultInjector b(specs, 1234);
  for (std::uint64_t i = 0; i < 64; ++i) {
    auto ra = make_report();
    auto rb = make_report();
    EXPECT_EQ(a.on_report(ra, nullptr, i), b.on_report(rb, nullptr, i));
    EXPECT_EQ(ra.total_time, rb.total_time) << "sample " << i;
    EXPECT_EQ(ra.gpu_llc_hit_rate, rb.gpu_llc_hit_rate) << "sample " << i;
  }
  EXPECT_EQ(a.metrics().total, b.metrics().total);
}

TEST(FaultInjector, DifferentSeedsDrawDifferentFaults) {
  const std::vector<FaultSpec> specs = {
      {.kind = FaultKind::CounterNoise, .probability = 0.5, .magnitude = 0.3}};
  FaultInjector a(specs, 1);
  FaultInjector b(specs, 2);
  bool diverged = false;
  for (std::uint64_t i = 0; i < 64 && !diverged; ++i) {
    auto ra = make_report();
    auto rb = make_report();
    a.on_report(ra, nullptr, i);
    b.on_report(rb, nullptr, i);
    diverged = ra.total_time != rb.total_time;
  }
  EXPECT_TRUE(diverged);
}

TEST(FaultInjector, ActiveSampleWindowIsRespected) {
  const std::vector<FaultSpec> specs = {{.kind = FaultKind::CounterNoise,
                                         .probability = 1.0,
                                         .magnitude = 0.3,
                                         .first_sample = 8,
                                         .last_sample = 15}};
  FaultInjector injector(specs, 7);
  for (std::uint64_t i = 0; i < 24; ++i) {
    auto report = make_report();
    const bool fired = injector.on_report(report, nullptr, i);
    EXPECT_EQ(fired, i >= 8 && i <= 15) << "sample " << i;
  }
  EXPECT_EQ(injector.metrics().by_kind[static_cast<std::size_t>(
                FaultKind::CounterNoise)],
            8u);
}

TEST(FaultInjector, DropoutZeroesRatesButKeepsTimes) {
  FaultInjector injector(
      {{.kind = FaultKind::CounterDropout, .probability = 1.0}}, 7);
  auto report = make_report();
  ASSERT_TRUE(injector.on_report(report, nullptr, 0));
  EXPECT_EQ(report.gpu_llc_hit_rate, 0.0);
  EXPECT_EQ(report.gpu_transactions, 0.0);
  EXPECT_EQ(report.gpu_ll_throughput, 0.0);
  EXPECT_EQ(report.total_time, make_report().total_time);
}

TEST(FaultInjector, SaturationPegsRatesAtOne) {
  FaultInjector injector(
      {{.kind = FaultKind::CounterSaturation, .probability = 1.0,
        .magnitude = 0.5}},
      7);
  auto report = make_report();
  ASSERT_TRUE(injector.on_report(report, nullptr, 0));
  EXPECT_EQ(report.gpu_l1_hit_rate, 1.0);
  EXPECT_EQ(report.gpu_llc_hit_rate, 1.0);
  EXPECT_GT(report.gpu_ll_throughput, make_report().gpu_ll_throughput);
}

TEST(FaultInjector, SpikeInflatesEveryTiming) {
  FaultInjector injector({{.kind = FaultKind::OutlierSpike,
                           .probability = 1.0,
                           .magnitude = 9.0}},
                         7);
  auto report = make_report();
  const auto clean = make_report();
  ASSERT_TRUE(injector.on_report(report, nullptr, 0));
  EXPECT_NEAR(report.total_time, clean.total_time * 10.0, 1e-12);
  EXPECT_NEAR(report.kernel_time, clean.kernel_time * 10.0, 1e-12);
}

TEST(FaultInjector, StaleBatchReplaysThePreviousReport) {
  FaultInjector injector(
      {{.kind = FaultKind::StaleBatch, .probability = 1.0, .first_sample = 1}},
      7);
  auto first = make_report();
  first.total_time = 42e-3;
  injector.on_report(first, nullptr, 0);  // window starts at sample 1
  auto second = make_report();
  ASSERT_TRUE(injector.on_report(second, nullptr, 1));
  EXPECT_EQ(second.total_time, 42e-3);
}

TEST(FaultInjector, DerateScheduleStartsAtFirstSample) {
  FaultInjector injector({{.kind = FaultKind::ThermalDerate,
                           .magnitude = 0.4,
                           .first_sample = 10}},
                         7);
  EXPECT_EQ(injector.derate_factor(9), 1.0);
  EXPECT_NEAR(injector.derate_factor(10), 0.6, 1e-12);
  // Extreme magnitudes are floored: the board slows down, it never stops.
  FaultInjector extreme(
      {{.kind = FaultKind::ThermalDerate, .magnitude = 0.99}}, 7);
  EXPECT_NEAR(extreme.derate_factor(0), 0.05, 1e-12);
}

TEST(FaultInjector, PreSampleAppliesDerateOncePerChange) {
  soc::SoC soc(soc::jetson_tx2());
  FaultInjector injector({{.kind = FaultKind::ThermalDerate,
                           .magnitude = 0.4,
                           .first_sample = 4}},
                         7);
  injector.pre_sample(soc, nullptr, 0);
  EXPECT_EQ(soc.derate(), 1.0);
  injector.pre_sample(soc, nullptr, 4);
  EXPECT_NEAR(soc.derate(), 0.6, 1e-12);
  injector.pre_sample(soc, nullptr, 5);  // unchanged factor: no new event
  const auto derate_kind =
      static_cast<std::size_t>(FaultKind::ThermalDerate);
  EXPECT_EQ(injector.metrics().by_kind[derate_kind], 1u);
}

core::DeviceCharacterization make_device() {
  core::DeviceCharacterization device;
  device.board = "test";
  for (std::size_t m = 0; m < 3; ++m) {
    device.mb1.gpu_ll_throughput[m] = 1e9;
    device.mb1.cpu_time[m] = 1e-3;
    device.mb1.gpu_time[m] = 1e-3;
    device.mb1.total_time[m] = 2e-3;
    device.mb3.total_time[m] = 3e-3;
    device.mb3.cpu_time[m] = 1e-3;
    device.mb3.gpu_time[m] = 1e-3;
    device.mb3.copy_time[m] = 1e-3;
  }
  device.mb2.gpu.threshold_pct = 60;
  device.mb2.gpu.zone2_end_pct = 90;
  device.mb2.cpu.threshold_pct = 50;
  device.mb2.cpu.zone2_end_pct = 80;
  return device;
}

TEST(FaultInjector, CorruptionIsExactlyWhatProblemsCatches) {
  auto device = make_device();
  EXPECT_TRUE(device.problems().empty());

  FaultInjector injector({{.kind = FaultKind::CorruptCharacterization,
                           .probability = 1.0,
                           .magnitude = 1.0}},
                         7);
  injector.corrupt(device);
  const auto problems = device.problems();
  ASSERT_FALSE(problems.empty());
  bool names_a_field = false;
  for (const auto& problem : problems) {
    if (problem.find("mb1") != std::string::npos ||
        problem.find("mb2") != std::string::npos ||
        problem.find("mb3") != std::string::npos) {
      names_a_field = true;
    }
  }
  EXPECT_TRUE(names_a_field);
  EXPECT_GT(injector.metrics().by_kind[static_cast<std::size_t>(
                FaultKind::CorruptCharacterization)],
            0u);
}

TEST(FaultInjector, MetricsExportUnderFaultPrefix) {
  FaultInjector injector(
      {{.kind = FaultKind::CounterNoise, .probability = 1.0}}, 7);
  auto report = make_report();
  injector.on_report(report, nullptr, 0);
  sim::StatRegistry registry;
  injector.export_stats(registry);
  EXPECT_EQ(registry.get("fault.total"), 1.0);
  EXPECT_EQ(registry.get("fault.counter_noise"), 1.0);
  EXPECT_EQ(registry.get("fault.outlier_spike"), 0.0);
}

TEST(Scenarios, CatalogueHasUniqueNamesAndBounds) {
  const auto& scenarios = all_scenarios();
  ASSERT_GE(scenarios.size(), 5u);
  std::set<std::string> names;
  for (const auto& scenario : scenarios) {
    EXPECT_FALSE(scenario.name.empty());
    EXPECT_FALSE(scenario.specs.empty()) << scenario.name;
    EXPECT_GT(scenario.regret_bound, 1.0) << scenario.name;
    EXPECT_TRUE(names.insert(scenario.name).second)
        << "duplicate scenario name " << scenario.name;
  }
}

TEST(Scenarios, LookupByNameAndUnknownThrows) {
  EXPECT_EQ(scenario_by_name("kitchen-sink").name, "kitchen-sink");
  try {
    scenario_by_name("does-not-exist");
    FAIL() << "expected scenario_by_name to throw";
  } catch (const std::runtime_error& error) {
    // The error lists the catalogue so a typo is self-correcting.
    EXPECT_NE(std::string(error.what()).find("kitchen-sink"),
              std::string::npos)
        << error.what();
  }
}

}  // namespace
}  // namespace cig::fault
