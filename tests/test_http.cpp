// Tests for the serve observability plane: the minimal HTTP responder
// (src/serve/http), the Prometheus exposition it serves, the /statusz and
// /healthz JSON snapshots, the dump_trace protocol op, slow-request
// accounting, trace_id echoing and the jobs-invariance of every scrape
// surface (byte-identical for jobs 1 vs 8).
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "serve/http.h"
#include "serve/server.h"
#include "support/json.h"

namespace cig::serve {
namespace {

namespace fs = std::filesystem;

std::string shared_cache_dir() {
  return (fs::temp_directory_path() / "cig-serve-test-cache").string();
}

ServeOptions base_options() {
  ServeOptions o;
  o.cache_dir = shared_cache_dir();
  return o;
}

// Feeds a scripted JSON session through the server (building tenant state
// the scrape endpoints can report on).
void run_script(Server& server, const std::string& script) {
  std::istringstream in(script);
  std::ostringstream out;
  server.run(in, out);
}

std::string demo_script() {
  return
      "{\"op\":\"hello\",\"tenant\":\"alpha\",\"board\":\"tx2\"}\n"
      "{\"op\":\"hello\",\"tenant\":\"beta\",\"board\":\"tx2\"}\n"
      "{\"op\":\"sample\",\"tenant\":\"alpha\",\"span\":256}\n"
      "{\"op\":\"sample\",\"tenant\":\"alpha\",\"heavy\":true,\"span\":256}\n"
      "{\"op\":\"sample\",\"tenant\":\"beta\",\"span\":1024}\n"
      "{\"op\":\"decide\",\"tenant\":\"alpha\"}\n";
}

struct HttpResult {
  int returned = 0;             // handle_http_session return value
  std::string status_line;
  std::vector<std::string> headers;
  std::string body;
};

// Runs one raw HTTP request text through handle_http_session and splits
// the response into status line / headers / body.
HttpResult http(Server& server, const std::string& raw_request) {
  std::istringstream in(raw_request);
  std::ostringstream out;
  HttpResult r;
  r.returned = handle_http_session(server, in, out);
  const std::string text = out.str();
  const std::size_t header_end = text.find("\r\n\r\n");
  if (header_end == std::string::npos) {
    r.body = text;
    return r;
  }
  std::istringstream head(text.substr(0, header_end));
  std::getline(head, r.status_line);
  if (!r.status_line.empty() && r.status_line.back() == '\r') {
    r.status_line.pop_back();
  }
  std::string line;
  while (std::getline(head, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    r.headers.push_back(line);
  }
  r.body = text.substr(header_end + 4);
  return r;
}

bool has_header(const HttpResult& r, const std::string& needle) {
  for (const auto& h : r.headers) {
    if (h.find(needle) != std::string::npos) return true;
  }
  return false;
}

TEST(ServeHttp, MetricsEndpointServesLabeledExposition) {
  Server server(base_options());
  run_script(server, demo_script());

  const HttpResult r = http(server, "GET /metrics HTTP/1.1\r\n\r\n");
  EXPECT_EQ(r.returned, 200);
  EXPECT_EQ(r.status_line, "HTTP/1.1 200 OK");
  EXPECT_TRUE(has_header(r, "Content-Type: text/plain; version=0.0.4"));
  EXPECT_TRUE(has_header(r, "Connection: close"));
  EXPECT_TRUE(has_header(r,
                         "Content-Length: " + std::to_string(r.body.size())));

  // Plain counters, the aggregate histogram and per-tenant labeled series.
  EXPECT_NE(r.body.find("cig_serve_requests"), std::string::npos);
  EXPECT_NE(r.body.find("# TYPE cig_serve_decide_us histogram"),
            std::string::npos);
  EXPECT_NE(r.body.find("cig_serve_decide_us_bucket{le=\"+Inf\"}"),
            std::string::npos);
  EXPECT_NE(r.body.find(
                "cig_serve_tenant_decide_us_bucket{tenant=\"alpha\",le="),
            std::string::npos);
  EXPECT_NE(r.body.find("cig_serve_tenant_samples{tenant=\"beta\"}"),
            std::string::npos);
  EXPECT_NE(r.body.find("cig_obs_labels_dropped 0"), std::string::npos);
}

TEST(ServeHttp, HealthzAndStatuszServeJson) {
  Server server(base_options());
  run_script(server, demo_script());

  const HttpResult health = http(server, "GET /healthz HTTP/1.1\r\n\r\n");
  EXPECT_EQ(health.returned, 200);
  EXPECT_TRUE(has_header(health, "Content-Type: application/json"));
  const Json h = Json::parse(health.body);
  EXPECT_TRUE(h.bool_or("ok", false));
  EXPECT_FALSE(h.bool_or("torn", true));
  EXPECT_EQ(h.number_or("tenants", 0), 2);

  const HttpResult status = http(server, "GET /statusz HTTP/1.1\r\n\r\n");
  EXPECT_EQ(status.returned, 200);
  const Json s = Json::parse(status.body);
  EXPECT_EQ(s.number_or("requests", 0), 6);
  EXPECT_EQ(s.at("tenants").number_or("known", 0), 2);
  ASSERT_TRUE(s.contains("tenants_detail"));
  EXPECT_EQ(s.at("tenants_detail").as_array().size(), 2u);
  EXPECT_GT(s.at("decide_us").number_or("count", 0), 0);
  EXPECT_GT(s.at("flight").number_or("recorded", 0), 0);
}

TEST(ServeHttp, QueryStringIsStrippedAndHeadOmitsBody) {
  Server server(base_options());

  const HttpResult with_query =
      http(server, "GET /healthz?probe=1 HTTP/1.1\r\n\r\n");
  EXPECT_EQ(with_query.returned, 200);

  const HttpResult head = http(server, "HEAD /healthz HTTP/1.1\r\n\r\n");
  EXPECT_EQ(head.returned, 200);
  EXPECT_TRUE(head.body.empty());
  // Content-Length still advertises the GET body size.
  EXPECT_FALSE(has_header(head, "Content-Length: 0"));
}

TEST(ServeHttp, UnknownPathIs404) {
  Server server(base_options());
  const HttpResult r = http(server, "GET /nope HTTP/1.1\r\n\r\n");
  EXPECT_EQ(r.returned, 404);
  EXPECT_EQ(r.status_line, "HTTP/1.1 404 Not Found");
  const Json j = Json::parse(r.body);
  EXPECT_FALSE(j.bool_or("ok", true));
  EXPECT_EQ(j.number_or("status", 0), 404);
}

TEST(ServeHttp, NonGetMethodIs405WithAllow) {
  Server server(base_options());
  const HttpResult r =
      http(server, "POST /metrics HTTP/1.1\r\nContent-Length: 0\r\n\r\n");
  EXPECT_EQ(r.returned, 405);
  EXPECT_TRUE(has_header(r, "Allow: GET, HEAD"));
}

TEST(ServeHttp, MalformedRequestLinesAre400) {
  Server server(base_options());
  // No target / extra tokens / missing HTTP version marker.
  EXPECT_EQ(http(server, "GET\r\n\r\n").returned, 400);
  EXPECT_EQ(http(server, "GET /metrics HTTP/1.1 extra\r\n\r\n").returned, 400);
  EXPECT_EQ(http(server, "GET /metrics FTP/1.0\r\n\r\n").returned, 400);
  EXPECT_EQ(http(server, "GET  HTTP/1.1\r\n\r\n").returned, 400);
}

TEST(ServeHttp, PartialReadsAreTruncatedRequests) {
  Server server(base_options());
  // Stream ends mid-request-line (no terminator at all).
  EXPECT_EQ(http(server, "GET /metr").returned, 400);
  // Request line complete, headers never terminated by a blank line.
  EXPECT_EQ(http(server, "GET /metrics HTTP/1.1\r\nHost: x\r\n").returned,
            400);
  // Empty connection (scanner poked the port): no response at all.
  EXPECT_EQ(http(server, "").returned, 0);
}

TEST(ServeHttp, MalformedHeaderLineIs400) {
  Server server(base_options());
  const HttpResult r =
      http(server, "GET /metrics HTTP/1.1\r\nnot a header\r\n\r\n");
  EXPECT_EQ(r.returned, 400);
}

TEST(ServeHttp, OversizedRequestIs431) {
  Server server(base_options());
  std::string raw = "GET /metrics HTTP/1.1\r\n";
  raw += "X-Padding: " + std::string(kMaxHttpRequestBytes, 'x') + "\r\n\r\n";
  const HttpResult r = http(server, raw);
  EXPECT_EQ(r.returned, 431);
}

TEST(ServeHttp, ScrapeSurfacesAreJobsInvariant) {
  ServeOptions serial = base_options();
  serial.jobs = 1;
  ServeOptions parallel = base_options();
  parallel.jobs = 8;
  Server a(serial);
  Server b(parallel);
  run_script(a, demo_script());
  run_script(b, demo_script());

  const std::string metrics_a = http(a, "GET /metrics HTTP/1.1\r\n\r\n").body;
  const std::string metrics_b = http(b, "GET /metrics HTTP/1.1\r\n\r\n").body;
  EXPECT_EQ(metrics_a, metrics_b);

  const std::string status_a = http(a, "GET /statusz HTTP/1.1\r\n\r\n").body;
  const std::string status_b = http(b, "GET /statusz HTTP/1.1\r\n\r\n").body;
  EXPECT_EQ(status_a, status_b);

  // The flight ring (sim-clock stamped, recorded on serial paths only)
  // must dump byte-identically too.
  EXPECT_EQ(a.flight_trace().dump(), b.flight_trace().dump());
}

TEST(ServeHttp, DumpTraceOpWritesChromeTrace) {
  const fs::path dir =
      fs::temp_directory_path() / "cig-serve-http-dumptrace";
  fs::remove_all(dir);
  fs::create_directories(dir);
  const std::string dump_path = (dir / "flight.trace.json").string();

  Server server(base_options());
  std::istringstream in(demo_script() + "{\"op\":\"dump_trace\",\"path\":\"" +
                        dump_path + "\"}\n");
  std::ostringstream out;
  EXPECT_EQ(server.run(in, out), 0);

  ASSERT_TRUE(fs::exists(dump_path));
  std::ifstream dump_in(dump_path);
  std::ostringstream bytes;
  bytes << dump_in.rdbuf();
  const Json doc = Json::parse(bytes.str());
  ASSERT_TRUE(doc.contains("traceEvents"));
  EXPECT_FALSE(doc.at("traceEvents").as_array().empty());
  EXPECT_EQ(server.metrics().flight_dumps, 1u);

  // The reply stream acknowledged the dump.
  EXPECT_NE(out.str().find("\"op\":\"dump_trace\""), std::string::npos);
  EXPECT_NE(out.str().find("\"ok\":true"), std::string::npos);
  fs::remove_all(dir);
}

TEST(ServeHttp, InlineDumpTraceReturnsTraceWithoutPath) {
  Server server(base_options());
  std::istringstream in(demo_script() + "{\"op\":\"dump_trace\"}\n");
  std::ostringstream out;
  EXPECT_EQ(server.run(in, out), 0);
  // Last reply line carries the serialized trace inline.
  const std::string text = out.str();
  const std::size_t last = text.rfind("{\"");
  ASSERT_NE(last, std::string::npos);
  const Json reply = Json::parse(text.substr(last));
  ASSERT_TRUE(reply.contains("trace"));
  const Json trace = Json::parse(reply.string_or("trace", "{}"));
  EXPECT_TRUE(trace.contains("traceEvents"));
}

TEST(ServeHttp, SlowRequestsAreCountedAboveThreshold) {
  ServeOptions o = base_options();
  o.slow_request_us = 0.001;  // everything is slow
  Server server(o);
  run_script(server, demo_script());
  EXPECT_GT(server.metrics().slow_requests, 0u);
  EXPECT_EQ(server.metrics().slow_requests,
            server.statusz_json().number_or("slow_requests", 0));

  ServeOptions quiet = base_options();
  quiet.slow_request_us = 1e12;  // nothing is slow
  Server fast(quiet);
  run_script(fast, demo_script());
  EXPECT_EQ(fast.metrics().slow_requests, 0u);
}

TEST(ServeHttp, TraceIdIsEchoedOnlyWhenGiven) {
  Server server(base_options());
  std::istringstream in(
      "{\"op\":\"hello\",\"tenant\":\"a\",\"board\":\"tx2\"}\n"
      "{\"op\":\"sample\",\"tenant\":\"a\",\"span\":256,"
      "\"trace_id\":\"req-42\"}\n"
      "{\"op\":\"sample\",\"tenant\":\"a\",\"span\":256}\n"
      "{\"op\":\"stats\",\"trace_id\":\"global-1\"}\n");
  std::ostringstream out;
  EXPECT_EQ(server.run(in, out), 0);

  std::istringstream lines(out.str());
  std::string line;
  std::vector<Json> replies;
  while (std::getline(lines, line)) replies.push_back(Json::parse(line));
  ASSERT_EQ(replies.size(), 4u);
  EXPECT_EQ(replies[1].string_or("trace_id", ""), "req-42");
  EXPECT_FALSE(replies[2].contains("trace_id"));
  EXPECT_EQ(replies[3].string_or("trace_id", ""), "global-1");
}

TEST(ServeHttp, LabelCapBoundsTenantCardinality) {
  ServeOptions o = base_options();
  o.label_cap = 2;
  Server server(o);
  std::ostringstream script;
  for (int t = 0; t < 5; ++t) {
    script << "{\"op\":\"hello\",\"tenant\":\"t" << t
           << "\",\"board\":\"tx2\"}\n"
           << "{\"op\":\"sample\",\"tenant\":\"t" << t << "\",\"span\":256}\n";
  }
  run_script(server, script.str());

  const std::string text = server.metrics_text();
  // Two tenants admitted per labeled family, the rest counted as dropped.
  EXPECT_NE(text.find("tenant=\"t0\""), std::string::npos);
  EXPECT_NE(text.find("tenant=\"t1\""), std::string::npos);
  EXPECT_EQ(text.find("tenant=\"t4\""), std::string::npos);
  EXPECT_EQ(text.find("cig_obs_labels_dropped 0"), std::string::npos);

  const Json status = server.statusz_json();
  EXPECT_EQ(status.at("tenants_detail").as_array().size(), 2u);
  EXPECT_EQ(status.number_or("tenants_omitted", 0), 3);
}

}  // namespace
}  // namespace cig::serve
