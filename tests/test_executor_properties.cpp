// Property suite: execution-engine invariants that must hold for every
// (board, model, workload) combination — conservation, consistency and
// ordering laws rather than calibrated values.
#include <gtest/gtest.h>

#include <cctype>
#include <cmath>
#include <memory>
#include <tuple>

#include "apps/shwfs/workload.h"
#include "comm/executor.h"
#include "soc/board_io.h"
#include "workload/builders.h"

namespace cig::comm {
namespace {

using Param = std::tuple<std::string /*board*/, std::string /*workload*/,
                         CommModel>;

workload::Workload make_named_workload(const std::string& name,
                                       const soc::BoardConfig& board) {
  if (name == "mb1") return workload::mb1_workload(board);
  if (name == "mb2small") return workload::mb2_workload(board, 1.0 / 1000);
  if (name == "shwfs") return apps::shwfs::shwfs_workload(board);
  ADD_FAILURE() << "unknown workload " << name;
  return workload::mb1_workload(board);
}

class ExecutorProperties : public ::testing::TestWithParam<Param> {
 protected:
  RunResult run() {
    const auto& [board_name, workload_name, model] = GetParam();
    const auto board = soc::resolve_board(board_name);
    soc_ = std::make_unique<soc::SoC>(board);
    Executor executor(*soc_);
    return executor.run(make_named_workload(workload_name, board), model);
  }

  std::unique_ptr<soc::SoC> soc_;
};

TEST_P(ExecutorProperties, TimesAreFiniteAndPositive) {
  const auto r = run();
  EXPECT_GT(r.total, 0.0);
  EXPECT_TRUE(std::isfinite(r.total));
  EXPECT_GE(r.cpu_time, 0.0);
  EXPECT_GT(r.kernel_time, 0.0);
  EXPECT_GE(r.copy_time, 0.0);
  EXPECT_GE(r.coherence_time, 0.0);
  EXPECT_GE(r.migration_time, 0.0);
}

TEST_P(ExecutorProperties, TimelineMatchesTotals) {
  const auto r = run();
  EXPECT_TRUE(r.timeline.lanes_consistent());
  EXPECT_NEAR(r.timeline.makespan(), r.total, r.total * 1e-9 + 1e-12);
  // Busy time on each lane never exceeds the makespan.
  for (const auto lane : {sim::Lane::Cpu, sim::Lane::Gpu, sim::Lane::Copy}) {
    EXPECT_LE(r.timeline.busy(lane), r.total * (1 + 1e-9));
  }
}

TEST_P(ExecutorProperties, ComponentsNeverExceedTotal) {
  const auto r = run();
  // Under serialized models the parts sum to the total; under overlapped
  // ZC they may exceed it, but no single component can.
  EXPECT_LE(r.copy_time, r.total * (1 + 1e-9));
  EXPECT_LE(r.coherence_time, r.total * (1 + 1e-9));
  EXPECT_LE(r.migration_time, r.total * (1 + 1e-9));
}

TEST_P(ExecutorProperties, ModelSemanticsRespected) {
  const auto r = run();
  const auto model = std::get<2>(GetParam());
  switch (model) {
    case CommModel::StandardCopy:
      EXPECT_DOUBLE_EQ(r.migration_time, 0.0);
      break;
    case CommModel::UnifiedMemory:
      EXPECT_DOUBLE_EQ(r.copy_time, 0.0);
      EXPECT_DOUBLE_EQ(r.coherence_time, 0.0);
      break;
    case CommModel::ZeroCopy:
      EXPECT_DOUBLE_EQ(r.copy_time, 0.0);
      EXPECT_DOUBLE_EQ(r.coherence_time, 0.0);
      EXPECT_DOUBLE_EQ(r.migration_time, 0.0);
      break;
  }
}

TEST_P(ExecutorProperties, EnergyAndTrafficPositive) {
  const auto r = run();
  EXPECT_GT(r.energy, 0.0);
  // A fully LLC-resident steady state may legitimately have zero DRAM
  // traffic; the demand-side counter must still be positive.
  EXPECT_GT(r.gpu_transactions, 0.0);
  // Average power must sit between the idle floor and the all-on ceiling.
  const auto& power = soc_->config().power;
  const double average = r.energy / r.total;
  EXPECT_GT(average, power.idle * 0.99);
  EXPECT_LT(average, (power.idle + power.cpu_active + power.gpu_active +
                      power.copy_active) *
                             1.01 +
                         5.0 /* DRAM traffic term bound */);
}

TEST_P(ExecutorProperties, RatesWithinUnitInterval) {
  const auto r = run();
  for (const double rate : {r.cpu_l1_miss_rate, r.cpu_llc_miss_rate,
                            r.gpu_l1_hit_rate, r.gpu_llc_hit_rate}) {
    EXPECT_GE(rate, 0.0);
    EXPECT_LE(rate, 1.0);
  }
  EXPECT_GE(r.overlap_fraction, 0.0);
  EXPECT_LE(r.overlap_fraction, 1.0 + 1e-9);
}

TEST_P(ExecutorProperties, DeterministicAcrossRuns) {
  const auto a = run();
  const auto b = run();
  EXPECT_DOUBLE_EQ(a.total, b.total);
  EXPECT_DOUBLE_EQ(a.kernel_time, b.kernel_time);
  EXPECT_DOUBLE_EQ(a.energy, b.energy);
  EXPECT_EQ(a.dram_traffic, b.dram_traffic);
}

TEST_P(ExecutorProperties, SocLeftCleanForReuse) {
  run();
  EXPECT_TRUE(soc_->cpu_hierarchy().any_level_enabled());
  EXPECT_TRUE(soc_->gpu_hierarchy().any_level_enabled());
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, ExecutorProperties,
    ::testing::Combine(
        ::testing::Values("generic", "tx2", "xavier", "xavier-nx"),
        ::testing::Values("mb1", "mb2small", "shwfs"),
        ::testing::Values(CommModel::StandardCopy, CommModel::UnifiedMemory,
                          CommModel::ZeroCopy)),
    [](const auto& info) {
      std::string name = std::get<0>(info.param) + "_" +
                         std::get<1>(info.param) + "_" +
                         comm::model_name(std::get<2>(info.param));
      for (auto& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace cig::comm
