// Tests for the per-comm-model resident-footprint accounting: page
// rounding, the SC > UM > ZC ordering the demotion ladder relies on, and
// the annotation of Recommendations/Explanations with footprint figures.
#include <gtest/gtest.h>

#include "core/decision.h"
#include "core/footprint.h"

namespace cig::core {
namespace {

using comm::CommModel;

TEST(FootprintModel, PagesRoundUpToWholePages) {
  EXPECT_EQ(FootprintModel::pages(0), 0u);
  EXPECT_EQ(FootprintModel::pages(1), kFootprintPageBytes);
  EXPECT_EQ(FootprintModel::pages(kFootprintPageBytes), kFootprintPageBytes);
  EXPECT_EQ(FootprintModel::pages(kFootprintPageBytes + 1),
            2 * kFootprintPageBytes);
  EXPECT_EQ(FootprintModel::pages(10 * kFootprintPageBytes),
            10 * kFootprintPageBytes);
}

TEST(FootprintModel, ExactFiguresForOnePage) {
  const Bytes span = kFootprintPageBytes;
  // SC: host staging copy + device copy.
  EXPECT_EQ(FootprintModel::resident_bytes(CommModel::StandardCopy, span),
            2 * kFootprintPageBytes);
  // UM: one managed allocation + per-page migration metadata.
  EXPECT_EQ(FootprintModel::resident_bytes(CommModel::UnifiedMemory, span),
            kFootprintPageBytes + kUnifiedMemoryPagePenaltyBytes);
  // ZC: exactly one pinned shared copy.
  EXPECT_EQ(FootprintModel::resident_bytes(CommModel::ZeroCopy, span),
            kFootprintPageBytes);
}

TEST(FootprintModel, LadderOrderingHoldsForAnySpan) {
  for (const Bytes span : {Bytes(1), Bytes(4096), Bytes(65536),
                           Bytes(262144), Bytes(1) << 26}) {
    const Bytes sc = FootprintModel::resident_bytes(CommModel::StandardCopy,
                                                    span);
    const Bytes um = FootprintModel::resident_bytes(CommModel::UnifiedMemory,
                                                    span);
    const Bytes zc = FootprintModel::resident_bytes(CommModel::ZeroCopy, span);
    EXPECT_GT(sc, um) << "span " << span;
    EXPECT_GT(um, zc) << "span " << span;
  }
}

TEST(FootprintModel, TableMatchesPerModelFigures) {
  const Bytes span = 3 * kFootprintPageBytes + 17;
  const auto table = FootprintModel::table(span);
  for (const CommModel model : kAllModels) {
    EXPECT_EQ(table[model_index(model)],
              FootprintModel::resident_bytes(model, span));
  }
}

TEST(FootprintModel, DemotionLadderDescendsToTheFloor) {
  EXPECT_EQ(FootprintModel::demote(CommModel::StandardCopy),
            CommModel::UnifiedMemory);
  EXPECT_EQ(FootprintModel::demote(CommModel::UnifiedMemory),
            CommModel::ZeroCopy);
  // ZC is the floor: nothing smaller to fall back to.
  EXPECT_EQ(FootprintModel::demote(CommModel::ZeroCopy), CommModel::ZeroCopy);
  EXPECT_FALSE(FootprintModel::is_floor(CommModel::StandardCopy));
  EXPECT_FALSE(FootprintModel::is_floor(CommModel::UnifiedMemory));
  EXPECT_TRUE(FootprintModel::is_floor(CommModel::ZeroCopy));
}

TEST(FootprintAnnotation, FillsRecommendationAndExplanation) {
  Recommendation rec;
  rec.current = CommModel::StandardCopy;
  rec.suggested = CommModel::ZeroCopy;
  DecisionEngine::annotate_footprint(rec, kFootprintPageBytes);
  EXPECT_EQ(rec.shared_bytes, kFootprintPageBytes);
  EXPECT_EQ(rec.current_footprint_bytes, 2 * kFootprintPageBytes);
  EXPECT_EQ(rec.suggested_footprint_bytes, kFootprintPageBytes);
  EXPECT_EQ(rec.explanation.shared_bytes, kFootprintPageBytes);
  EXPECT_EQ(rec.explanation.current_footprint_bytes, 2 * kFootprintPageBytes);
  EXPECT_EQ(rec.explanation.suggested_footprint_bytes, kFootprintPageBytes);
}

TEST(FootprintAnnotation, ZeroBytesIsANoOp) {
  Recommendation rec;
  rec.current = CommModel::StandardCopy;
  rec.suggested = CommModel::UnifiedMemory;
  DecisionEngine::annotate_footprint(rec, 0);
  EXPECT_EQ(rec.shared_bytes, 0u);
  EXPECT_EQ(rec.current_footprint_bytes, 0u);
  EXPECT_EQ(rec.suggested_footprint_bytes, 0u);
}

}  // namespace
}  // namespace cig::core
