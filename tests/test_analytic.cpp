// Tests for the analytical cache model, cross-validated against the exact
// set-associative simulator.
#include <gtest/gtest.h>

#include "mem/analytic.h"
#include "mem/cache.h"
#include "mem/hierarchy.h"

namespace cig::mem {
namespace {

// Exact steady-state hit rate: warm the cache with one pass, then measure.
double simulated_steady_hit_rate(const PatternSpec& pattern,
                                 const CacheGeometry& geometry) {
  SetAssocCache cache(geometry, Replacement::Lru);
  walk(pattern, [&](const MemoryAccess& a) { cache.access(a.address, a.kind); });
  cache.reset_stats();
  walk(pattern, [&](const MemoryAccess& a) { cache.access(a.address, a.kind); });
  return cache.stats().hit_rate();
}

PatternSpec linear(Bytes extent) {
  return PatternSpec{.kind = PatternKind::Linear,
                     .base = 0,
                     .extent = extent,
                     .access_size = 4,
                     .rw = RwMix::ReadOnly,
                     .passes = 1,
                     .line_hint = 64};
}

TEST(Analytic, FittingLinearSweepIsAllHits) {
  const auto geometry = make_geometry(KiB(32), 64, 8);
  const auto estimate = estimate_cache_behaviour(linear(KiB(16)), geometry);
  EXPECT_DOUBLE_EQ(estimate.hit_rate, 1.0);
  EXPECT_DOUBLE_EQ(estimate.steady_misses_per_pass, 0.0);
  EXPECT_DOUBLE_EQ(estimate.cold_misses, KiB(16) / 64.0);
  EXPECT_DOUBLE_EQ(simulated_steady_hit_rate(linear(KiB(16)), geometry), 1.0);
}

TEST(Analytic, OverflowingLinearSweepThrashes) {
  const auto geometry = make_geometry(KiB(32), 64, 8);
  const auto estimate = estimate_cache_behaviour(linear(KiB(128)), geometry);
  EXPECT_DOUBLE_EQ(estimate.hit_rate, 0.0);
  EXPECT_DOUBLE_EQ(simulated_steady_hit_rate(linear(KiB(128)), geometry), 0.0);
}

TEST(Analytic, SingleLocationAlwaysHits) {
  const PatternSpec spec{.kind = PatternKind::SingleLocation,
                         .base = 0x40,
                         .extent = 64,
                         .access_size = 4,
                         .rw = RwMix::ReadOnly,
                         .count = 100};
  const auto geometry = make_geometry(KiB(4), 64, 2);
  EXPECT_DOUBLE_EQ(estimate_cache_behaviour(spec, geometry).hit_rate, 1.0);
  EXPECT_DOUBLE_EQ(simulated_steady_hit_rate(spec, geometry), 1.0);
}

// Random residency model vs exact simulation, across extent/capacity ratios.
class AnalyticRandom
    : public ::testing::TestWithParam<std::pair<Bytes, Bytes>> {};

TEST_P(AnalyticRandom, HitRateWithinTolerance) {
  const auto [capacity, extent] = GetParam();
  const PatternSpec spec{.kind = PatternKind::Random,
                         .base = 0,
                         .extent = extent,
                         .access_size = 4,
                         .rw = RwMix::ReadOnly,
                         .count = 100000,
                         .seed = 7,
                         .line_hint = 64};
  const auto geometry = make_geometry(capacity, 64, 16);
  const double analytic = estimate_cache_behaviour(spec, geometry).hit_rate;
  const double simulated = simulated_steady_hit_rate(spec, geometry);
  EXPECT_NEAR(analytic, simulated, 0.08)
      << "capacity " << capacity << " extent " << extent;
}

INSTANTIATE_TEST_SUITE_P(
    Ratios, AnalyticRandom,
    ::testing::Values(std::pair<Bytes, Bytes>{KiB(32), KiB(16)},   // resident
                      std::pair<Bytes, Bytes>{KiB(32), KiB(64)},   // 50%
                      std::pair<Bytes, Bytes>{KiB(32), KiB(128)},  // 25%
                      std::pair<Bytes, Bytes>{KiB(32), KiB(512)},  // 6%
                      std::pair<Bytes, Bytes>{KiB(256), KiB(512)}));

TEST(Analytic, ServiceSplitSumsToOne) {
  const auto l1 = make_geometry(KiB(32), 64, 4);
  const auto llc = make_geometry(MiB(2), 64, 16);
  for (Bytes extent : {KiB(16), KiB(256), MiB(8)}) {
    const auto split = estimate_service_split(linear(extent), l1, llc);
    EXPECT_NEAR(split.l1 + split.llc + split.dram, 1.0, 1e-12);
    EXPECT_GE(split.l1, 0.0);
    EXPECT_GE(split.llc, 0.0);
    EXPECT_GE(split.dram, 0.0);
  }
}

TEST(Analytic, ServiceSplitBands) {
  const auto l1 = make_geometry(KiB(32), 64, 4);
  const auto llc = make_geometry(MiB(2), 64, 16);
  // L1-resident.
  EXPECT_DOUBLE_EQ(estimate_service_split(linear(KiB(16)), l1, llc).l1, 1.0);
  // LLC band: misses L1, hits LLC.
  const auto mid = estimate_service_split(linear(KiB(256)), l1, llc);
  EXPECT_DOUBLE_EQ(mid.l1, 0.0);
  EXPECT_DOUBLE_EQ(mid.llc, 1.0);
  // DRAM band.
  const auto big = estimate_service_split(linear(MiB(8)), l1, llc);
  EXPECT_DOUBLE_EQ(big.dram, 1.0);
}

TEST(Analytic, MemoryTimeOrdersByBand) {
  const auto l1 = make_geometry(KiB(32), 64, 4);
  const auto llc = make_geometry(MiB(2), 64, 16);
  // Same bytes-per-pass basis: compare per-byte service cost by using the
  // same extent scaled through passes... simpler: time per byte must grow
  // as the working set falls out of each level.
  const Seconds t_l1 =
      estimate_memory_time(linear(KiB(16)), l1, GBps(100), llc, GBps(30),
                           GBps(10)) /
      KiB(16);
  const Seconds t_llc =
      estimate_memory_time(linear(KiB(256)), l1, GBps(100), llc, GBps(30),
                           GBps(10)) /
      KiB(256);
  const Seconds t_dram =
      estimate_memory_time(linear(MiB(8)), l1, GBps(100), llc, GBps(30),
                           GBps(10)) /
      MiB(8);
  EXPECT_LT(t_l1, t_llc);
  EXPECT_LT(t_llc, t_dram);
}

// Cross-validation against the full hierarchy walker for the MB1-style
// LLC-band workload: both should attribute nearly all service to the LLC.
TEST(Analytic, MatchesHierarchyOnLlcBandWorkload) {
  const auto l1_geometry = make_geometry(KiB(4), 64, 2);
  const auto llc_geometry = make_geometry(KiB(64), 64, 8);
  const auto pattern = linear(KiB(32));

  const auto split =
      estimate_service_split(pattern, l1_geometry, llc_geometry);

  MainMemory dram(DramConfig{});
  SetAssocCache l1(l1_geometry, Replacement::Lru);
  SetAssocCache llc(llc_geometry, Replacement::Lru);
  MemoryHierarchy hierarchy({{&l1, GBps(50), 0, true, "L1"},
                             {&llc, GBps(20), 0, true, "LLC"}},
                            &dram);
  // Warm.
  walk(pattern, [&](const MemoryAccess& a) { hierarchy.access(a); });
  hierarchy.reset_counters();
  walk(pattern, [&](const MemoryAccess& a) { hierarchy.access(a); });
  const auto& c = hierarchy.counters();
  const double total = static_cast<double>(c.total_accesses);
  EXPECT_NEAR(static_cast<double>(c.level[1].served) / total, split.llc, 0.05);
  EXPECT_NEAR(static_cast<double>(c.dram_served) / total, split.dram, 0.05);
}

}  // namespace
}  // namespace cig::mem
