// Tests for the ORB-SLAM front-end substrate: pyramid, FAST, ORB
// descriptors, matching, and the simulator workload mapping.
#include <gtest/gtest.h>

#include <cmath>

#include "apps/orbslam/fast.h"
#include "apps/orbslam/matcher.h"
#include "apps/orbslam/orb.h"
#include "apps/orbslam/pyramid.h"
#include "apps/orbslam/workload.h"
#include "soc/presets.h"

namespace cig::apps::orbslam {
namespace {

Image scene() { return make_test_scene(320, 240, 7); }

// --- scene & pyramid --------------------------------------------------------------

TEST(Scene, DeterministicForSeed) {
  const auto a = make_test_scene(320, 240, 7);
  const auto b = make_test_scene(320, 240, 7);
  EXPECT_EQ(a.pixels, b.pixels);
}

TEST(Scene, ShiftMovesContent) {
  const auto a = make_test_scene(320, 240, 7, 0, 0);
  const auto b = make_test_scene(320, 240, 7, 5, 0);
  EXPECT_NE(a.pixels, b.pixels);
}

TEST(Pyramid, BuildsRequestedLevels) {
  Pyramid pyramid(scene(), PyramidOptions{.levels = 4, .scale_factor = 1.2});
  EXPECT_EQ(pyramid.levels(), 4u);
  EXPECT_EQ(pyramid.level(0).width, 320u);
  EXPECT_LT(pyramid.level(1).width, 320u);
  EXPECT_NEAR(pyramid.scale_of(2), 1.44, 1e-9);
}

TEST(Pyramid, LevelsShrinkGeometrically) {
  Pyramid pyramid(scene(), PyramidOptions{.levels = 5, .scale_factor = 1.5});
  for (std::uint32_t l = 1; l < pyramid.levels(); ++l) {
    EXPECT_NEAR(static_cast<double>(pyramid.level(l - 1).width) /
                    pyramid.level(l).width,
                1.5, 0.05);
  }
}

TEST(Pyramid, StopsBeforeDegenerateLevels) {
  Pyramid pyramid(make_test_scene(64, 64, 1),
                  PyramidOptions{.levels = 20, .scale_factor = 2.0});
  EXPECT_LT(pyramid.levels(), 20u);
  EXPECT_GE(pyramid.level(pyramid.levels() - 1).width, 32u);
}

TEST(Pyramid, TotalBytesSumsLevels) {
  Pyramid pyramid(scene(), PyramidOptions{.levels = 2, .scale_factor = 2.0});
  EXPECT_EQ(pyramid.total_bytes(),
            pyramid.level(0).pixels.size() + pyramid.level(1).pixels.size());
}

// --- FAST ---------------------------------------------------------------------------

TEST(Fast, FindsCornersInTexturedScene) {
  const auto keypoints = fast_detect(scene());
  EXPECT_GT(keypoints.size(), 50u);
}

TEST(Fast, FlatImageHasNoCorners) {
  Image flat;
  flat.width = 128;
  flat.height = 128;
  flat.pixels.assign(128 * 128, 100);
  EXPECT_TRUE(fast_detect(flat).empty());
}

TEST(Fast, SyntheticCornerDetected) {
  // A bright square on dark background: its corners are FAST corners.
  Image img;
  img.width = 64;
  img.height = 64;
  img.pixels.assign(64 * 64, 20);
  for (std::uint32_t y = 28; y < 40; ++y) {
    for (std::uint32_t x = 28; x < 40; ++x) img.at(x, y) = 220;
  }
  FastOptions options;
  options.border = 16;
  const auto keypoints = fast_detect(img, options);
  ASSERT_FALSE(keypoints.empty());
  // At least one detection near a square corner.
  bool near_corner = false;
  for (const auto& kp : keypoints) {
    for (const auto& [cx, cy] : {std::pair{28u, 28u}, {39u, 28u},
                                 {28u, 39u}, {39u, 39u}}) {
      if (std::abs(static_cast<int>(kp.x) - static_cast<int>(cx)) <= 2 &&
          std::abs(static_cast<int>(kp.y) - static_cast<int>(cy)) <= 2) {
        near_corner = true;
      }
    }
  }
  EXPECT_TRUE(near_corner);
}

TEST(Fast, NonMaxSuppressionReducesCount) {
  FastOptions with;
  FastOptions without;
  without.nonmax_suppression = false;
  const auto suppressed = fast_detect(scene(), with);
  const auto raw = fast_detect(scene(), without);
  EXPECT_LT(suppressed.size(), raw.size());
  EXPECT_GT(suppressed.size(), 0u);
}

TEST(Fast, HigherThresholdFindsFewerCorners) {
  FastOptions low;
  low.threshold = 10;
  FastOptions high;
  high.threshold = 60;
  EXPECT_GE(fast_detect(scene(), low).size(),
            fast_detect(scene(), high).size());
}

TEST(Fast, ScoresPositiveAtDetections) {
  const auto keypoints = fast_detect(scene());
  for (const auto& kp : keypoints) EXPECT_GT(kp.score, 0.0f);
}

TEST(Fast, RespectsBorder) {
  FastOptions options;
  options.border = 20;
  const auto image = scene();
  for (const auto& kp : fast_detect(image, options)) {
    EXPECT_GE(kp.x, 20u);
    EXPECT_LT(kp.x, image.width - 20);
    EXPECT_GE(kp.y, 20u);
    EXPECT_LT(kp.y, image.height - 20);
  }
}

// --- ORB ---------------------------------------------------------------------------

TEST(Orb, DescriptorDeterministic) {
  const auto image = scene();
  auto keypoints = fast_detect(image);
  ASSERT_FALSE(keypoints.empty());
  compute_orientations(image, keypoints);
  const auto a = orb_descriptor(image, keypoints[0]);
  const auto b = orb_descriptor(image, keypoints[0]);
  EXPECT_EQ(a, b);
}

TEST(Orb, HammingDistanceSelfIsZero) {
  const auto image = scene();
  auto keypoints = fast_detect(image);
  ASSERT_GE(keypoints.size(), 2u);
  const auto descriptors = describe(image, keypoints);
  EXPECT_EQ(hamming_distance(descriptors[0], descriptors[0]), 0u);
  EXPECT_LE(hamming_distance(descriptors[0], descriptors[1]), 256u);
}

TEST(Orb, OrientationPointsTowardBrightSide) {
  // Bright half-plane to the right of the keypoint: the intensity centroid
  // angle must be near 0 (pointing +x).
  Image img;
  img.width = 64;
  img.height = 64;
  img.pixels.assign(64 * 64, 10);
  for (std::uint32_t y = 0; y < 64; ++y) {
    for (std::uint32_t x = 32; x < 64; ++x) img.at(x, y) = 200;
  }
  const float angle = intensity_centroid_angle(img, 32, 32, 15);
  EXPECT_NEAR(angle, 0.0f, 0.2f);
}

TEST(Orb, DistinctKeypointsUsuallyDiffer) {
  const auto image = scene();
  auto keypoints = fast_detect(image);
  ASSERT_GE(keypoints.size(), 10u);
  const auto descriptors = describe(image, keypoints);
  int zero_pairs = 0;
  for (std::size_t i = 1; i < 10; ++i) {
    if (hamming_distance(descriptors[0], descriptors[i]) == 0) ++zero_pairs;
  }
  EXPECT_LE(zero_pairs, 2);
}

// --- matching -------------------------------------------------------------------------

TEST(Matcher, SelfMatchIsIdentity) {
  const auto image = scene();
  auto keypoints = fast_detect(image);
  const auto descriptors = describe(image, keypoints);
  MatchOptions options;
  options.ratio = 1.0;  // allow ties against near-duplicates
  const auto matches = match_descriptors(descriptors, descriptors, options);
  EXPECT_GT(matches.size(), descriptors.size() / 2);
  for (const auto& m : matches) {
    EXPECT_EQ(m.distance, 0u);
    EXPECT_EQ(m.query, m.train);
  }
}

TEST(Matcher, EmptyTrainSetNoMatches) {
  const auto image = scene();
  auto keypoints = fast_detect(image);
  const auto descriptors = describe(image, keypoints);
  EXPECT_TRUE(match_descriptors(descriptors, {}).empty());
}

TEST(Matcher, CrossCheckNeverIncreasesMatches) {
  const auto a = scene();
  const auto b = make_test_scene(320, 240, 7, 3, 2);
  auto ka = fast_detect(a);
  auto kb = fast_detect(b);
  const auto da = describe(a, ka);
  const auto db = describe(b, kb);
  MatchOptions with;
  with.cross_check = true;
  MatchOptions without;
  without.cross_check = false;
  EXPECT_LE(match_descriptors(da, db, with).size(),
            match_descriptors(da, db, without).size());
}

TEST(Matcher, ShiftedSceneStillMatches) {
  const auto a = scene();
  const auto b = make_test_scene(320, 240, 7, 2, 1);
  auto ka = fast_detect(a);
  auto kb = fast_detect(b);
  ASSERT_GT(ka.size(), 20u);
  const auto da = describe(a, ka);
  const auto db = describe(b, kb);
  const auto matches = match_descriptors(da, db);
  EXPECT_GT(matches.size(), 10u);
  // The dominant displacement among matches should be near (2, 1).
  int consistent = 0;
  for (const auto& m : matches) {
    const double dx = static_cast<double>(kb[m.train].x) - ka[m.query].x;
    const double dy = static_cast<double>(kb[m.train].y) - ka[m.query].y;
    if (std::abs(dx - 2) <= 2 && std::abs(dy - 1) <= 2) ++consistent;
  }
  EXPECT_GT(consistent * 2, static_cast<int>(matches.size()));
}

// --- workload mapping --------------------------------------------------------------

TEST(OrbWorkload, ValidatesOnEvaluatedBoards) {
  for (const auto& board : {soc::jetson_tx2(), soc::jetson_agx_xavier()}) {
    const auto w = orbslam_workload(board);
    w.validate();
    EXPECT_EQ(w.iterations, kKernelsPerFrame);
    EXPECT_FALSE(w.overlappable);  // tracking depends on extraction
    EXPECT_EQ(w.h2d_bytes, 0u);    // frame upload amortised
    EXPECT_TRUE(w.gpu.private_pattern.has_value());
  }
}

TEST(OrbWorkload, GpuHeavySharedTrafficMakesZcHostile) {
  const auto w = orbslam_workload(soc::jetson_tx2());
  // Shared per-launch traffic is large (the ZC-killer on the TX2)...
  EXPECT_GE(w.gpu.pattern.extent, KiB(256));
  // ...while the CPU side barely touches the shared buffer (Table IV: 0%).
  EXPECT_LE(w.cpu.pattern.extent, KiB(32));
}

}  // namespace
}  // namespace cig::apps::orbslam

// --- quadtree keypoint distribution ------------------------------------------------

#include "apps/orbslam/distribute.h"

namespace cig::apps::orbslam {
namespace {

TEST(Distribute, FewKeypointsPassThrough) {
  std::vector<Keypoint> keypoints = {{10, 10, 0, 1.0f, 0.0f},
                                     {20, 20, 0, 2.0f, 0.0f}};
  const auto result = distribute_quadtree(keypoints, 100, 100, 10);
  EXPECT_EQ(result.size(), 2u);
}

TEST(Distribute, ReducesToRoughlyTarget) {
  const auto image = make_test_scene(320, 240, 7);
  const auto keypoints = fast_detect(image);
  ASSERT_GT(keypoints.size(), 100u);
  const auto result = distribute_quadtree(keypoints, 320, 240, 50);
  EXPECT_LE(result.size(), keypoints.size());
  EXPECT_GE(result.size(), 40u);
  EXPECT_LE(result.size(), 80u);  // quadtree granularity overshoot bound
}

TEST(Distribute, KeepsHighestScorePerRegion) {
  // Two clustered keypoints: the stronger must survive.
  std::vector<Keypoint> keypoints;
  for (std::uint32_t i = 0; i < 8; ++i) {
    keypoints.push_back({10 + i, 10, 0, static_cast<float>(i), 0.0f});
  }
  const auto result = distribute_quadtree(keypoints, 64, 64, 1);
  ASSERT_GE(result.size(), 1u);
  float best = 0;
  for (const auto& kp : result) best = std::max(best, kp.score);
  EXPECT_FLOAT_EQ(best, 7.0f);
}

TEST(Distribute, ImprovesSpatialCoverage) {
  // A scene where detections cluster: after distribution the per-keypoint
  // coverage must not be worse.
  const auto image = make_test_scene(320, 240, 11);
  const auto keypoints = fast_detect(image);
  ASSERT_GT(keypoints.size(), 80u);
  const auto distributed = distribute_quadtree(keypoints, 320, 240, 60);

  const double before =
      coverage_fraction(keypoints, 320, 240, 8) / keypoints.size();
  const double after =
      coverage_fraction(distributed, 320, 240, 8) / distributed.size();
  EXPECT_GE(after, before);  // coverage per retained keypoint improves
}

TEST(Distribute, SurvivorsAreFromInput) {
  const auto image = make_test_scene(320, 240, 3);
  const auto keypoints = fast_detect(image);
  const auto result = distribute_quadtree(keypoints, 320, 240, 30);
  for (const auto& kp : result) {
    const bool found = std::any_of(
        keypoints.begin(), keypoints.end(), [&](const Keypoint& other) {
          return other.x == kp.x && other.y == kp.y &&
                 other.score == kp.score;
        });
    EXPECT_TRUE(found);
  }
}

TEST(Distribute, CoverageFractionBounds) {
  EXPECT_DOUBLE_EQ(coverage_fraction({}, 100, 100, 4), 0.0);
  std::vector<Keypoint> one = {{50, 50, 0, 1.0f, 0.0f}};
  EXPECT_DOUBLE_EQ(coverage_fraction(one, 100, 100, 1), 1.0);
  EXPECT_DOUBLE_EQ(coverage_fraction(one, 100, 100, 4), 1.0 / 16);
}

}  // namespace
}  // namespace cig::apps::orbslam
