// Integration tests for the micro-benchmark suite on the board presets.
// These pin the qualitative device characteristics the paper's framework
// depends on (Table I ordering, thresholds, max speedups).
#include <gtest/gtest.h>

#include "core/microbench.h"
#include "soc/presets.h"

namespace cig::core {
namespace {

using comm::CommModel;

TEST(Mb1Tx2, ThroughputOrderingMatchesTable1) {
  soc::SoC soc(soc::jetson_tx2());
  MicrobenchSuite suite(soc);
  const auto mb1 = suite.run_mb1();
  const auto zc = mb1.gpu_ll_throughput[model_index(CommModel::ZeroCopy)];
  const auto sc = mb1.gpu_ll_throughput[model_index(CommModel::StandardCopy)];
  const auto um = mb1.gpu_ll_throughput[model_index(CommModel::UnifiedMemory)];
  EXPECT_LT(zc, sc);
  EXPECT_LT(sc, um);
  // Table I magnitudes (within 15%).
  EXPECT_NEAR(to_GBps(zc), 1.28, 1.28 * 0.15);
  EXPECT_NEAR(to_GBps(sc), 97.34, 97.34 * 0.15);
  EXPECT_NEAR(to_GBps(um), 104.15, 104.15 * 0.15);
}

TEST(Mb1Xavier, ThroughputMatchesTable1) {
  soc::SoC soc(soc::jetson_agx_xavier());
  MicrobenchSuite suite(soc);
  const auto mb1 = suite.run_mb1();
  EXPECT_NEAR(
      to_GBps(mb1.gpu_ll_throughput[model_index(CommModel::ZeroCopy)]), 32.29,
      32.29 * 0.15);
  EXPECT_NEAR(
      to_GBps(mb1.gpu_ll_throughput[model_index(CommModel::StandardCopy)]),
      214.64, 214.64 * 0.15);
}

TEST(Mb1Tx2, ZcScMaxSpeedupIsLarge) {
  // The paper: GPU throughput up to ~77x lower under ZC on the TX2,
  // yielding a ZC->SC kernel-speedup bound of ~70.
  soc::SoC soc(soc::jetson_tx2());
  MicrobenchSuite suite(soc);
  const auto mb1 = suite.run_mb1();
  EXPECT_GT(mb1.zc_sc_max_speedup(), 40.0);
  EXPECT_LT(mb1.zc_sc_max_speedup(), 110.0);
}

TEST(Mb1Xavier, ZcScMaxSpeedupIsModerate) {
  // Paper: "limited" to ~3.7x thanks to I/O coherence; our port model
  // lands in the single digits.
  soc::SoC soc(soc::jetson_agx_xavier());
  MicrobenchSuite suite(soc);
  const auto mb1 = suite.run_mb1();
  EXPECT_GT(mb1.zc_sc_max_speedup(), 2.0);
  EXPECT_LT(mb1.zc_sc_max_speedup(), 12.0);
}

TEST(Mb1Tx2, ZcPunishesCpuOnSwFlushBoards) {
  soc::SoC soc(soc::jetson_tx2());
  MicrobenchSuite suite(soc);
  const auto mb1 = suite.run_mb1();
  const auto sc = mb1.cpu_time[model_index(CommModel::StandardCopy)];
  const auto zc = mb1.cpu_time[model_index(CommModel::ZeroCopy)];
  EXPECT_GT(zc / sc, 1.5);  // paper: "up to 70%" worse
}

TEST(Mb1Xavier, ZcLeavesCpuAloneOnIoCoherentBoards) {
  soc::SoC soc(soc::jetson_agx_xavier());
  MicrobenchSuite suite(soc);
  const auto mb1 = suite.run_mb1();
  const auto sc = mb1.cpu_time[model_index(CommModel::StandardCopy)];
  const auto zc = mb1.cpu_time[model_index(CommModel::ZeroCopy)];
  EXPECT_NEAR(zc / sc, 1.0, 0.05);
}

TEST(Mb2Tx2, ThresholdNearPaper) {
  soc::SoC soc(soc::jetson_tx2());
  MicrobenchSuite suite(soc);
  const auto mb2 = suite.run_mb2();
  EXPECT_GT(mb2.gpu.threshold_pct, 0.5);
  EXPECT_LT(mb2.gpu.threshold_pct, 6.0);  // paper: 2.7
  EXPECT_GT(mb2.cpu.threshold_pct, 4.0);
  EXPECT_LT(mb2.cpu.threshold_pct, 30.0);  // paper: 15.6
}

TEST(Mb2Xavier, ThresholdAndZonesNearPaper) {
  soc::SoC soc(soc::jetson_agx_xavier());
  MicrobenchSuite suite(soc);
  const auto mb2 = suite.run_mb2();
  EXPECT_NEAR(mb2.gpu.threshold_pct, 16.2, 6.0);   // paper: 16.2
  EXPECT_NEAR(mb2.gpu.zone2_end_pct, 57.1, 15.0);  // paper: 57.1
  // HW I/O coherence keeps the CPU cache on: the threshold is unreachable.
  EXPECT_DOUBLE_EQ(mb2.cpu.threshold_pct, 100.0);
}

TEST(Mb2, SweepPointsAreWellFormed) {
  soc::SoC soc(soc::jetson_tx2());
  MicrobenchSuite suite(soc);
  const auto mb2 = suite.run_mb2();
  ASSERT_FALSE(mb2.gpu.points.empty());
  for (const auto& p : mb2.gpu.points) {
    EXPECT_GT(p.time_sc, 0.0);
    EXPECT_GT(p.time_zc, 0.0);
    EXPECT_GE(p.time_zc, p.time_sc * 0.8);  // ZC never mysteriously faster
  }
}

TEST(Mb3Xavier, ZcWinsWithOverlap) {
  soc::SoC soc(soc::jetson_agx_xavier());
  MicrobenchSuite suite(soc);
  const auto mb3 = suite.run_mb3();
  // Paper: ZC up to 152% faster than SC, 164% than UM on the I/O-coherent
  // board; we require at least +60% and UM within 15% of SC.
  EXPECT_GT(mb3.sc_zc_max_speedup(), 1.6);
  EXPECT_GT(mb3.um_zc_max_speedup(), 1.6);
  const auto sc = mb3.total_time[model_index(CommModel::StandardCopy)];
  const auto um = mb3.total_time[model_index(CommModel::UnifiedMemory)];
  EXPECT_NEAR(um / sc, 1.0, 0.15);
  EXPECT_GT(mb3.overlap_fraction_zc, 0.5);
}

TEST(Mb3Tx2, ZcLosesOnSwFlushBoards) {
  soc::SoC soc(soc::jetson_tx2());
  MicrobenchSuite suite(soc);
  const auto mb3 = suite.run_mb3();
  EXPECT_LT(mb3.sc_zc_max_speedup(), 1.0);
}

TEST(Characterize, AssemblesAllPieces) {
  soc::SoC soc(soc::jetson_tx2());
  MicrobenchSuite suite(soc);
  const auto device = suite.characterize();
  EXPECT_EQ(device.board, "Jetson TX2");
  EXPECT_GT(device.gpu_cache_max_throughput(), 0.0);
  EXPECT_GT(device.gpu_threshold_pct(), 0.0);
  EXPECT_GE(device.gpu_zone2_end_pct(), device.gpu_threshold_pct());
  EXPECT_GT(device.zc_sc_max_speedup(), 1.0);
}

}  // namespace
}  // namespace cig::core
