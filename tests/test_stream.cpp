// Tests for the access-stream generators: coverage, determinism, and
// consistency between walk() and the analytical counters.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "mem/stream.h"

namespace cig::mem {
namespace {

std::vector<MemoryAccess> collect(const PatternSpec& spec) {
  std::vector<MemoryAccess> out;
  walk(spec, [&](const MemoryAccess& a) { out.push_back(a); });
  return out;
}

TEST(Stream, LinearCoversExtentOnce) {
  PatternSpec spec{.kind = PatternKind::Linear,
                   .base = 0x1000,
                   .extent = 512,
                   .access_size = 4,
                   .rw = RwMix::ReadOnly,
                   .passes = 1,
                   .line_hint = 64};
  const auto accesses = collect(spec);
  ASSERT_EQ(accesses.size(), 8u);
  Bytes covered = 0;
  for (const auto& a : accesses) {
    EXPECT_GE(a.address, 0x1000u);
    EXPECT_LT(a.address, 0x1200u);
    EXPECT_EQ(a.kind, AccessKind::Read);
    covered += a.size;
  }
  EXPECT_EQ(covered, 512u);
}

TEST(Stream, LinearTailSmallerThanLine) {
  PatternSpec spec{.kind = PatternKind::Linear,
                   .base = 0,
                   .extent = 100,
                   .access_size = 4,
                   .rw = RwMix::ReadOnly,
                   .passes = 1,
                   .line_hint = 64};
  const auto accesses = collect(spec);
  ASSERT_EQ(accesses.size(), 2u);
  EXPECT_EQ(accesses[0].size, 64u);
  EXPECT_EQ(accesses[1].size, 36u);
}

TEST(Stream, PassesRepeatSweep) {
  PatternSpec spec{.kind = PatternKind::Linear,
                   .base = 0,
                   .extent = 256,
                   .access_size = 4,
                   .rw = RwMix::ReadOnly,
                   .passes = 3,
                   .line_hint = 64};
  EXPECT_EQ(collect(spec).size(), 12u);
}

TEST(Stream, ReadModifyWriteEmitsPairs) {
  PatternSpec spec{.kind = PatternKind::Linear,
                   .base = 0,
                   .extent = 128,
                   .access_size = 4,
                   .rw = RwMix::ReadModifyWrite,
                   .passes = 1,
                   .line_hint = 64};
  const auto accesses = collect(spec);
  ASSERT_EQ(accesses.size(), 4u);
  EXPECT_EQ(accesses[0].kind, AccessKind::Read);
  EXPECT_EQ(accesses[1].kind, AccessKind::Write);
  EXPECT_EQ(accesses[0].address, accesses[1].address);
}

TEST(Stream, WriteOnlyEmitsWrites) {
  PatternSpec spec{.kind = PatternKind::Linear,
                   .base = 0,
                   .extent = 128,
                   .access_size = 4,
                   .rw = RwMix::WriteOnly,
                   .passes = 1,
                   .line_hint = 64};
  for (const auto& a : collect(spec)) EXPECT_EQ(a.kind, AccessKind::Write);
}

TEST(Stream, StridedStepsByStride) {
  PatternSpec spec{.kind = PatternKind::Strided,
                   .base = 0,
                   .extent = 1024,
                   .access_size = 4,
                   .rw = RwMix::ReadOnly,
                   .passes = 1,
                   .stride = 256};
  const auto accesses = collect(spec);
  ASSERT_EQ(accesses.size(), 4u);
  EXPECT_EQ(accesses[1].address - accesses[0].address, 256u);
  EXPECT_EQ(accesses[0].size, 4u);  // natural granularity
}

TEST(Stream, RandomStaysInExtentAndIsDeterministic) {
  PatternSpec spec{.kind = PatternKind::Random,
                   .base = 0x8000,
                   .extent = 4096,
                   .access_size = 4,
                   .rw = RwMix::ReadOnly,
                   .count = 500,
                   .seed = 9,
                   .line_hint = 64};
  const auto a = collect(spec);
  const auto b = collect(spec);
  ASSERT_EQ(a.size(), 500u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].address, b[i].address);
    EXPECT_GE(a[i].address, 0x8000u);
    EXPECT_LT(a[i].address, 0x9000u);
    EXPECT_EQ(a[i].address % 64, 0u);  // line-aligned touches
  }
}

TEST(Stream, RandomDifferentSeedsDiffer) {
  PatternSpec spec{.kind = PatternKind::Random,
                   .base = 0,
                   .extent = KiB(64),
                   .access_size = 4,
                   .rw = RwMix::ReadOnly,
                   .count = 100,
                   .seed = 1,
                   .line_hint = 64};
  const auto a = collect(spec);
  spec.seed = 2;
  const auto b = collect(spec);
  int same = 0;
  for (std::size_t i = 0; i < a.size(); ++i) same += a[i].address == b[i].address;
  EXPECT_LT(same, 20);
}

TEST(Stream, SingleLocationRepeats) {
  PatternSpec spec{.kind = PatternKind::SingleLocation,
                   .base = 0xAB40,
                   .extent = 64,
                   .access_size = 4,
                   .rw = RwMix::ReadModifyWrite,
                   .count = 10};
  const auto accesses = collect(spec);
  ASSERT_EQ(accesses.size(), 20u);  // rmw doubles
  for (const auto& a : accesses) EXPECT_EQ(a.address, 0xAB40u);
}

TEST(Stream, Tiled2DCoversMatrixExactlyOncePerPass) {
  PatternSpec spec{.kind = PatternKind::Tiled2D,
                   .base = 0,
                   .access_size = 4,
                   .rw = RwMix::ReadOnly,
                   .passes = 1,
                   .width = 64,
                   .height = 32,
                   .tile_width = 16,
                   .tile_height = 16,
                   .line_hint = 64};
  Bytes covered = 0;
  std::set<std::uint64_t> touched;
  walk(spec, [&](const MemoryAccess& a) {
    covered += a.size;
    touched.insert(a.address);
  });
  EXPECT_EQ(covered, 64u * 32 * 4);
  EXPECT_EQ(touched.size(), 64u * 32 * 4 / 64);  // one line per 64 B
}

TEST(Stream, Tiled2DHandlesPartialTiles) {
  PatternSpec spec{.kind = PatternKind::Tiled2D,
                   .base = 0,
                   .access_size = 4,
                   .rw = RwMix::ReadOnly,
                   .passes = 1,
                   .width = 40,   // not a multiple of the tile
                   .height = 20,
                   .tile_width = 16,
                   .tile_height = 16,
                   .line_hint = 64};
  Bytes covered = 0;
  walk(spec, [&](const MemoryAccess& a) { covered += a.size; });
  EXPECT_EQ(covered, 40u * 20 * 4);
}

// --- analytical counters vs actual walk -------------------------------------------

struct CounterCase {
  PatternSpec spec;
  const char* name;
};

class StreamCounters : public ::testing::TestWithParam<CounterCase> {};

TEST_P(StreamCounters, LineAccessesMatchesWalk) {
  const auto& spec = GetParam().spec;
  std::uint64_t emitted = 0;
  walk(spec, [&](const MemoryAccess&) { ++emitted; });
  EXPECT_EQ(line_accesses(spec), emitted);
}

TEST_P(StreamCounters, FootprintBoundsAddresses) {
  const auto& spec = GetParam().spec;
  walk(spec, [&](const MemoryAccess& a) {
    EXPECT_GE(a.address, spec.base);
    EXPECT_LE(a.address + a.size, spec.base + footprint(spec));
  });
}

TEST_P(StreamCounters, RequestedBytesPositive) {
  const auto& spec = GetParam().spec;
  EXPECT_GT(requested_bytes(spec), 0u);
  EXPECT_EQ(requested_bytes(spec), element_accesses(spec) * spec.access_size);
}

INSTANTIATE_TEST_SUITE_P(
    Patterns, StreamCounters,
    ::testing::Values(
        CounterCase{{.kind = PatternKind::Linear,
                     .base = 0x100,
                     .extent = 1000,
                     .access_size = 4,
                     .rw = RwMix::ReadOnly,
                     .passes = 2,
                     .line_hint = 64},
                    "linear"},
        CounterCase{{.kind = PatternKind::Linear,
                     .base = 0,
                     .extent = 4096,
                     .access_size = 8,
                     .rw = RwMix::ReadModifyWrite,
                     .passes = 1,
                     .line_hint = 128},
                    "linear_rmw"},
        CounterCase{{.kind = PatternKind::Strided,
                     .base = 64,
                     .extent = 8192,
                     .access_size = 4,
                     .rw = RwMix::WriteOnly,
                     .passes = 3,
                     .stride = 128},
                    "strided"},
        CounterCase{{.kind = PatternKind::Random,
                     .base = 0x4000,
                     .extent = KiB(16),
                     .access_size = 4,
                     .rw = RwMix::ReadModifyWrite,
                     .count = 333,
                     .seed = 4,
                     .line_hint = 64},
                    "random"},
        CounterCase{{.kind = PatternKind::SingleLocation,
                     .base = 0x40,
                     .extent = 64,
                     .access_size = 4,
                     .rw = RwMix::ReadOnly,
                     .count = 77},
                    "single"},
        CounterCase{{.kind = PatternKind::Tiled2D,
                     .base = 0,
                     .access_size = 4,
                     .rw = RwMix::ReadOnly,
                     .passes = 2,
                     .width = 48,
                     .height = 48,
                     .tile_width = 16,
                     .tile_height = 16,
                     .line_hint = 64},
                    "tiled"}),
    [](const auto& info) { return info.param.name; });

}  // namespace
}  // namespace cig::mem
