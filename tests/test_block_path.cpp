// Block hot path vs per-access oracle: the property this file defends is
// that MemoryHierarchy::access_block (and everything layered on it —
// walk_block, access_linear, the executor's block emitters) produces
// byte-identical counters AND cache state to per-access walking of the same
// stream, for every pattern kind, read/write mix and replacement policy.
// Fast-forward (CIG_FASTFWD) deliberately breaks that identity; its
// contract — exact demand counters, bounded interpolation error on steady
// streams, detail forced under CIG_AUDIT — is pinned here too.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "comm/executor.h"
#include "mem/hierarchy.h"
#include "mem/stream.h"
#include "soc/presets.h"
#include "soc/soc.h"
#include "workload/builders.h"
#include "workload/trace.h"

namespace cig::mem {
namespace {

// Two-level rig small enough that a few KiB of footprint forces evictions
// (and, with writes, dirty writebacks) through both levels.
struct Rig {
  explicit Rig(Replacement policy, bool l1_on = true, bool llc_on = true)
      : dram(DramConfig{}),
        l1(make_geometry(KiB(1), 64, 2), policy),
        llc(make_geometry(KiB(8), 64, 4), policy),
        hierarchy({{&l1, GBps(50), nanosec(1), l1_on, "L1"},
                   {&llc, GBps(20), nanosec(8), llc_on, "LLC"}},
                  &dram) {}

  MainMemory dram;
  SetAssocCache l1;
  SetAssocCache llc;
  MemoryHierarchy hierarchy;
};

std::vector<PatternSpec> pattern_matrix() {
  std::vector<PatternSpec> specs;
  // Footprints past the 8 KiB LLC so every config sees misses, evictions
  // and (for write mixes) dirty writebacks at both levels.
  specs.push_back({.kind = PatternKind::Linear,
                   .base = 0x1000,
                   .extent = KiB(24),
                   .passes = 2});
  specs.push_back({.kind = PatternKind::Strided,
                   .base = 0x1000,
                   .extent = KiB(32),
                   .passes = 2,
                   .stride = 192});
  specs.push_back({.kind = PatternKind::Random,
                   .base = 0x1000,
                   .extent = KiB(64),
                   .count = 3000,
                   .seed = 7});
  specs.push_back({.kind = PatternKind::SingleLocation,
                   .base = 0x2040,
                   .count = 700});
  specs.push_back({.kind = PatternKind::Tiled2D,
                   .base = 0x1000,
                   .access_size = 4,
                   .width = 96,
                   .height = 40,
                   .tile_width = 32,
                   .tile_height = 8});
  return specs;
}

void expect_equivalent_walks(const PatternSpec& spec, Replacement policy,
                             bool l1_on, bool llc_on) {
  Rig oracle(policy, l1_on, llc_on);
  Rig block(policy, l1_on, llc_on);
  walk(spec, [&](const MemoryAccess& a) { oracle.hierarchy.access(a); });
  walk_block(spec,
             [&](const AccessBlock& b) { block.hierarchy.access_block(b); });
  std::string diff;
  EXPECT_TRUE(hierarchies_equivalent(oracle.hierarchy, block.hierarchy, &diff))
      << "pattern kind " << static_cast<int>(spec.kind) << " rw "
      << static_cast<int>(spec.rw) << " policy "
      << replacement_name(policy) << " l1=" << l1_on << " llc=" << llc_on
      << ": " << diff;
}

TEST(BlockPathEquivalence, EveryPatternMixAndPolicy) {
  const Replacement policies[] = {Replacement::Lru, Replacement::Fifo,
                                  Replacement::TreePlru, Replacement::Random};
  const RwMix mixes[] = {RwMix::ReadOnly, RwMix::WriteOnly,
                         RwMix::ReadModifyWrite};
  for (const Replacement policy : policies) {
    for (PatternSpec spec : pattern_matrix()) {
      for (const RwMix mix : mixes) {
        spec.rw = mix;
        expect_equivalent_walks(spec, policy, true, true);
      }
    }
  }
}

TEST(BlockPathEquivalence, PartialLevelEnables) {
  PatternSpec spec{.kind = PatternKind::Random,
                   .base = 0,
                   .extent = KiB(32),
                   .rw = RwMix::ReadModifyWrite,
                   .count = 2000,
                   .seed = 3};
  expect_equivalent_walks(spec, Replacement::Lru, true, false);   // L1 only
  expect_equivalent_walks(spec, Replacement::Lru, false, true);   // LLC only
  expect_equivalent_walks(spec, Replacement::Lru, false, false);  // uncached
}

TEST(BlockPathEquivalence, PartialTrailingBlock) {
  // 300 accesses: one full 256-block plus a 44-access trailer; also a
  // stream smaller than a single block.
  for (const std::uint64_t count : {300u, 5u}) {
    PatternSpec spec{.kind = PatternKind::SingleLocation,
                     .base = 0x40,
                     .rw = RwMix::ReadModifyWrite,
                     .count = count};
    expect_equivalent_walks(spec, Replacement::Lru, true, true);
  }
}

TEST(BlockPathEquivalence, AccessLinearMatchesPerAccessLoop) {
  for (const bool enabled : {true, false}) {
    Rig oracle(Replacement::Lru, enabled, enabled);
    Rig block(Replacement::Lru, enabled, enabled);
    const std::uint64_t base = 0x1000;
    const Bytes bytes = KiB(20) + 17;  // ragged tail exercises the partial
    block.hierarchy.access_linear(base, bytes, AccessKind::Write);
    const std::uint32_t step = enabled ? 64 : 16;
    const std::uint64_t end = base + bytes;
    for (std::uint64_t addr = base; addr < end; addr += step) {
      const auto size = static_cast<std::uint32_t>(
          std::min<std::uint64_t>(step, end - addr));
      oracle.hierarchy.access({addr, size, AccessKind::Write});
    }
    std::string diff;
    EXPECT_TRUE(
        hierarchies_equivalent(oracle.hierarchy, block.hierarchy, &diff))
        << "enabled=" << enabled << ": " << diff;
  }
}

TEST(BlockPathEquivalence, TraceReplayBlocksMatchesReplay) {
  workload::TraceRecorder recorder;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    recorder.record(0x1000 + (i * 72) % KiB(16), 8,
                    i % 3 == 0 ? AccessKind::Write : AccessKind::Read);
  }
  Rig oracle(Replacement::TreePlru);
  Rig block(Replacement::TreePlru);
  recorder.replay([&](const MemoryAccess& a) { oracle.hierarchy.access(a); });
  recorder.replay_blocks(
      [&](const AccessBlock& b) { block.hierarchy.access_block(b); });
  std::string diff;
  EXPECT_TRUE(hierarchies_equivalent(oracle.hierarchy, block.hierarchy, &diff))
      << diff;
}

TEST(BlockPathEquivalence, DivergenceIsDetected) {
  Rig a(Replacement::Lru);
  Rig b(Replacement::Lru);
  a.hierarchy.access({0x0, 4, AccessKind::Read});
  std::string diff;
  EXPECT_FALSE(hierarchies_equivalent(a.hierarchy, b.hierarchy, &diff));
  EXPECT_FALSE(diff.empty());
}

TEST(AccessBlockTest, PushFullClear) {
  AccessBlock block;
  EXPECT_TRUE(block.empty());
  for (std::size_t i = 0; i < AccessBlock::kCapacity; ++i) {
    block.push(i * 64, 4, AccessKind::Write);
  }
  EXPECT_TRUE(block.full());
  EXPECT_EQ(block.access(3).address, 3u * 64);
  EXPECT_EQ(block.access(3).kind, AccessKind::Write);
  block.clear();
  EXPECT_TRUE(block.empty());
}

// --- fast-forward ------------------------------------------------------------

TEST(FastForwardTest, DemandCountersStayExact) {
  Rig rig(Replacement::Lru);
  rig.hierarchy.set_fastforward(8);
  const PatternSpec spec{.kind = PatternKind::Linear,
                         .base = 0,
                         .extent = KiB(96),
                         .rw = RwMix::ReadModifyWrite,
                         .passes = 3};
  walk_block(spec,
             [&](const AccessBlock& b) { rig.hierarchy.access_block(b); });
  EXPECT_EQ(rig.hierarchy.counters().total_accesses, line_accesses(spec));
  Bytes requested = 0;
  walk(spec, [&](const MemoryAccess& a) { requested += a.size; });
  EXPECT_EQ(rig.hierarchy.counters().requested_bytes, requested);
}

TEST(FastForwardTest, SteadyStreamInterpolatesWithinBound) {
  // A steady multi-pass linear stream is the documented best case: every
  // window has the same miss profile, so interpolated counters should land
  // within a few percent of full detail. docs/performance.md quotes 10% on
  // phasic traces; pin 10% here for the steady stream.
  const PatternSpec spec{.kind = PatternKind::Linear,
                         .base = 0,
                         .extent = KiB(64),
                         .rw = RwMix::ReadModifyWrite,
                         .passes = 4};
  Rig detailed(Replacement::Lru);
  walk_block(spec, [&](const AccessBlock& b) {
    detailed.hierarchy.access_block(b);
  });
  Rig fast(Replacement::Lru);
  fast.hierarchy.set_fastforward(4);
  walk_block(spec,
             [&](const AccessBlock& b) { fast.hierarchy.access_block(b); });

  const auto close = [](double approx, double exact, const char* what) {
    ASSERT_GT(exact, 0.0) << what;
    EXPECT_NEAR(approx / exact, 1.0, 0.10) << what;
  };
  close(static_cast<double>(fast.hierarchy.counters().dram_bytes),
        static_cast<double>(detailed.hierarchy.counters().dram_bytes),
        "dram_bytes");
  close(static_cast<double>(fast.hierarchy.counters().dram_served),
        static_cast<double>(detailed.hierarchy.counters().dram_served),
        "dram_served");
  close(static_cast<double>(fast.dram.cached_bytes()),
        static_cast<double>(detailed.dram.cached_bytes()), "dram traffic");
  close(static_cast<double>(fast.llc.stats().misses()),
        static_cast<double>(detailed.llc.stats().misses()), "llc misses");
}

TEST(FastForwardTest, ResetRestartsWindowSequence) {
  Rig rig(Replacement::Lru);
  rig.hierarchy.set_fastforward(1000);  // everything after window 0 skipped
  AccessBlock block;
  for (std::size_t i = 0; i < AccessBlock::kCapacity; ++i) {
    // 8 distinct lines, L1-resident, so the first window has exactly 8 cold
    // misses and a re-walk of warm caches has none.
    block.push((i % 8) * 64, 4, AccessKind::Read);
  }
  rig.hierarchy.access_block(block);
  const Bytes after_first = rig.hierarchy.counters().dram_bytes;
  EXPECT_GT(after_first, 0u);
  // reset_counters restarts the sequence: the next block is detailed again
  // (it would otherwise be interpolated from the stale record).
  rig.hierarchy.reset_counters();
  rig.hierarchy.access_block(block);
  // Window 0 after reset re-walks warm caches: every line hits, so DRAM
  // bytes stay zero — an interpolated replay of the cold window would not.
  EXPECT_EQ(rig.hierarchy.counters().dram_bytes, 0u);
  EXPECT_EQ(rig.hierarchy.counters().level[0].served,
            AccessBlock::kCapacity);
}

TEST(FastForwardTest, ResolveFastfwdPrecedence) {
  ::unsetenv("CIG_FASTFWD");
  EXPECT_EQ(resolve_fastfwd(0), 1u);   // default: full detail
  EXPECT_EQ(resolve_fastfwd(5), 5u);   // explicit wins
  ::setenv("CIG_FASTFWD", "16", 1);
  EXPECT_EQ(resolve_fastfwd(0), 16u);  // env when unset
  EXPECT_EQ(resolve_fastfwd(3), 3u);   // explicit still wins over env
  ::setenv("CIG_FASTFWD", "not-a-number", 1);
  EXPECT_EQ(resolve_fastfwd(0), 1u);   // invalid env ignored (warns once)
  ::unsetenv("CIG_FASTFWD");
}

// --- runtime audit -----------------------------------------------------------

TEST(RuntimeAuditTest, EnvFlagSemantics) {
  ::unsetenv("CIG_AUDIT");
  EXPECT_FALSE(runtime_audit_enabled());
  ::setenv("CIG_AUDIT", "1", 1);
  EXPECT_TRUE(runtime_audit_enabled());
  ::setenv("CIG_AUDIT", "0", 1);
  EXPECT_FALSE(runtime_audit_enabled());
  ::setenv("CIG_AUDIT", "", 1);
  EXPECT_FALSE(runtime_audit_enabled());
  ::unsetenv("CIG_AUDIT");
}

TEST(RuntimeAuditTest, CloneCarriesStateAndStaysEquivalent) {
  Rig rig(Replacement::Random);
  const PatternSpec warm{.kind = PatternKind::Random,
                         .base = 0,
                         .extent = KiB(32),
                         .rw = RwMix::ReadModifyWrite,
                         .count = 1500,
                         .seed = 11};
  walk_block(warm,
             [&](const AccessBlock& b) { rig.hierarchy.access_block(b); });
  rig.hierarchy.reset_counters();
  HierarchyClone clone(rig.hierarchy);
  // Same post-warmup stream through both: the clone must track the real
  // hierarchy exactly (shared starting cache state, separate DRAM copy).
  const PatternSpec tail{.kind = PatternKind::Random,
                         .base = 0,
                         .extent = KiB(32),
                         .rw = RwMix::ReadModifyWrite,
                         .count = 800,
                         .seed = 12};
  walk_block(tail, [&](const AccessBlock& b) {
    rig.hierarchy.access_block(b);
    for (std::size_t i = 0; i < b.count; ++i) {
      clone.hierarchy().access(b.access(i));
    }
  });
  std::string diff;
  EXPECT_TRUE(hierarchies_equivalent(rig.hierarchy, clone.hierarchy(), &diff))
      << diff;
}

// End-to-end: a full executor run on both coherence capabilities with
// CIG_AUDIT=1 — every walk re-runs through the oracle and aborts on any
// divergence, so simple completion is the assertion. Xavier's ZC leg also
// exercises the I/O-coherent port alongside the audit (the port must not be
// replayed into the oracle). CIG_FASTFWD is set to prove audit forces full
// detail rather than diverging on interpolated counters.
TEST(RuntimeAuditTest, ExecutorRunsAuditCleanOnPresets) {
  ::setenv("CIG_AUDIT", "1", 1);
  ::setenv("CIG_FASTFWD", "16", 1);
  for (const auto& board : {soc::jetson_tx2(), soc::jetson_agx_xavier()}) {
    soc::SoC soc(board);
    comm::Executor executor(soc);
    const auto workload = workload::mb2_workload(board, 0.5);
    for (const auto model :
         {comm::CommModel::StandardCopy, comm::CommModel::UnifiedMemory,
          comm::CommModel::ZeroCopy}) {
      const auto result = executor.run(workload, model);
      EXPECT_GT(result.total, 0.0);
    }
  }
  ::unsetenv("CIG_AUDIT");
  ::unsetenv("CIG_FASTFWD");
}

}  // namespace
}  // namespace cig::mem
