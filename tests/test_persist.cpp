// Tests for the persistence primitives (src/persist): record framing,
// atomic file replacement, the append-only journal with torn-tail recovery,
// versioned snapshots — and, via fault::CrashInjector in Throw mode, the
// recovery outcome after an in-process simulated crash at every seam.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "fault/crash.h"
#include "persist/atomic_io.h"
#include "persist/codec.h"
#include "persist/journal.h"
#include "persist/seam.h"
#include "persist/snapshot.h"
#include "support/json.h"

namespace cig::persist {
namespace {

namespace fs = std::filesystem;

std::string slurp(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

class PersistTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("cig-persist-test-" + std::string(::testing::UnitTest::GetInstance()
                                                  ->current_test_info()
                                                  ->name()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override {
    fault::CrashInjector::instance().disarm();
    fs::remove_all(dir_);
  }

  fs::path dir_;
};

// --- codec ----------------------------------------------------------------

TEST_F(PersistTest, CodecRoundTrip) {
  std::string blob;
  append_record(blob, "first");
  append_record(blob, "");
  append_record(blob, std::string(1000, 'x'));

  const auto decoded = decode_records(blob);
  ASSERT_EQ(decoded.payloads.size(), 3u);
  EXPECT_EQ(decoded.payloads[0], "first");
  EXPECT_EQ(decoded.payloads[1], "");
  EXPECT_EQ(decoded.payloads[2], std::string(1000, 'x'));
  EXPECT_EQ(decoded.valid_bytes, blob.size());
  EXPECT_FALSE(decoded.torn);
}

TEST_F(PersistTest, CodecTruncatedTailIsTorn) {
  std::string blob;
  append_record(blob, "keep me");
  const std::size_t intact = blob.size();
  append_record(blob, "lost in the crash");
  // Chop the second record mid-payload: a torn write.
  blob.resize(intact + kRecordHeaderBytes + 4);

  const auto decoded = decode_records(blob);
  ASSERT_EQ(decoded.payloads.size(), 1u);
  EXPECT_EQ(decoded.payloads[0], "keep me");
  EXPECT_EQ(decoded.valid_bytes, intact);
  EXPECT_TRUE(decoded.torn);
  EXPECT_EQ(decoded.torn_bytes, blob.size() - intact);
}

TEST_F(PersistTest, CodecChecksumFlipRejectsRecordAndTail) {
  std::string blob;
  append_record(blob, "record one");
  const std::size_t intact = blob.size();
  append_record(blob, "record two");
  append_record(blob, "record three");
  // Flip one payload byte of record two: its checksum no longer matches,
  // so it and everything after it is torn (a scan cannot trust any frame
  // boundary past a damaged record).
  blob[intact + kRecordHeaderBytes] ^= 0x01;

  const auto decoded = decode_records(blob);
  ASSERT_EQ(decoded.payloads.size(), 1u);
  EXPECT_EQ(decoded.payloads[0], "record one");
  EXPECT_TRUE(decoded.torn);
}

TEST_F(PersistTest, CodecImplausibleLengthIsTorn) {
  std::string blob(kRecordHeaderBytes + 64, '\0');
  blob[0] = '\xff';  // length field way past kMaxRecordBytes
  blob[1] = '\xff';
  blob[2] = '\xff';
  blob[3] = '\xff';
  const auto decoded = decode_records(blob);
  EXPECT_TRUE(decoded.payloads.empty());
  EXPECT_TRUE(decoded.torn);
}

// --- atomic_write_file ----------------------------------------------------

TEST_F(PersistTest, AtomicWriteCreatesAndReplaces) {
  const auto path = dir_ / "out.txt";
  atomic_write_file(path.string(), "version 1");
  EXPECT_EQ(slurp(path), "version 1");
  atomic_write_file(path.string(), "version 2 is longer");
  EXPECT_EQ(slurp(path), "version 2 is longer");
  // No temp file left behind.
  EXPECT_FALSE(fs::exists(path.string() + ".tmp"));
}

// A crash at any atomic.* seam must leave either the complete old file or
// the complete new file — never a mix, never a truncated file.
TEST_F(PersistTest, AtomicWriteCrashLeavesOldOrNewWholeFile) {
  const auto path = dir_ / "state.json";
  for (const std::string& seam : crash_seams()) {
    if (seam.rfind("atomic.", 0) != 0) continue;
    atomic_write_file(path.string(), "OLD");
    fault::CrashInjector::instance().arm(seam, 1, fault::CrashMode::Throw);
    bool crashed = false;
    try {
      atomic_write_file(path.string(), "NEWCONTENT");
    } catch (const fault::CrashInjected& crash) {
      crashed = true;
      EXPECT_EQ(crash.seam(), seam);
    }
    EXPECT_TRUE(crashed) << seam;
    const std::string after = slurp(path);
    EXPECT_TRUE(after == "OLD" || after == "NEWCONTENT")
        << seam << " left '" << after << "'";
    if (seam == "atomic.post_rename") {
      EXPECT_EQ(after, "NEWCONTENT") << "crash after rename keeps the new file";
    } else {
      EXPECT_EQ(after, "OLD") << "crash before rename keeps the old file";
    }
  }
}

// --- journal --------------------------------------------------------------

TEST_F(PersistTest, JournalAppendAndRecover) {
  const auto path = (dir_ / "j.journal").string();
  {
    Journal journal(path);
    EXPECT_EQ(journal.recovery().records, 0u);
    journal.append("alpha");
    journal.append("beta");
  }
  Journal reopened(path);
  EXPECT_EQ(reopened.recovery().records, 2u);
  EXPECT_FALSE(reopened.recovery().torn);
  ASSERT_EQ(reopened.records().size(), 2u);
  EXPECT_EQ(reopened.records()[0], "alpha");
  EXPECT_EQ(reopened.records()[1], "beta");
}

TEST_F(PersistTest, JournalTruncatesTornTailOnOpen) {
  const auto path = (dir_ / "j.journal").string();
  {
    Journal journal(path);
    journal.append("intact");
  }
  const auto intact_size = fs::file_size(path);
  std::ofstream(path, std::ios::app | std::ios::binary)
      .write("\x09\x00\x00\x00garbage", 11);
  {
    Journal reopened(path);
    EXPECT_EQ(reopened.recovery().records, 1u);
    EXPECT_TRUE(reopened.recovery().torn);
    EXPECT_EQ(reopened.recovery().torn_bytes, 11u);
    // The file itself was repaired, and appending extends valid state.
    EXPECT_EQ(fs::file_size(path), intact_size);
    reopened.append("after recovery");
  }
  Journal third(path);
  EXPECT_EQ(third.recovery().records, 2u);
  EXPECT_FALSE(third.recovery().torn);
}

TEST_F(PersistTest, JournalTruncateRecordsDropsTail) {
  const auto path = (dir_ / "j.journal").string();
  Journal journal(path);
  journal.append("one");
  journal.append("two");
  journal.append("three");
  journal.truncate_records(1);
  ASSERT_EQ(journal.records().size(), 1u);
  EXPECT_EQ(journal.records()[0], "one");

  Journal reopened(path);
  ASSERT_EQ(reopened.records().size(), 1u);
  EXPECT_EQ(reopened.records()[0], "one");
}

// A crash at any journal.* seam loses at most the record being appended;
// every previously fsynced record survives recovery.
TEST_F(PersistTest, JournalCrashLosesAtMostLastAppend) {
  for (const std::string& seam : crash_seams()) {
    if (seam.rfind("journal.", 0) != 0) continue;
    const auto path = (dir_ / ("crash-" + seam)).string();
    bool crashed = false;
    try {
      Journal journal(path);
      journal.append("committed");
      fault::CrashInjector::instance().arm(seam, 1, fault::CrashMode::Throw);
      journal.append("in flight");
    } catch (const fault::CrashInjected&) {
      crashed = true;
    }
    EXPECT_TRUE(crashed) << seam;
    Journal recovered(path);
    ASSERT_GE(recovered.records().size(), 1u) << seam;
    EXPECT_EQ(recovered.records()[0], "committed");
    if (seam == "journal.mid_append") {
      EXPECT_TRUE(recovered.recovery().torn) << seam;
      EXPECT_EQ(recovered.records().size(), 1u);
    }
    if (seam == "journal.post_append") {
      // Crash after the full frame hit the file: the record survives.
      ASSERT_EQ(recovered.records().size(), 2u);
      EXPECT_EQ(recovered.records()[1], "in flight");
    }
  }
}

// --- snapshot -------------------------------------------------------------

Json doc(double x) {
  Json j;
  j["x"] = Json(x);
  return j;
}

TEST_F(PersistTest, SnapshotRoundTrip) {
  const auto path = (dir_ / "s.snap").string();
  SnapshotFile snapshot;
  snapshot.kind = "unit-test";
  snapshot.version = 3;
  snapshot.records.push_back(doc(1.5));
  snapshot.records.push_back(doc(-2.25));
  write_snapshot(path, snapshot);

  const auto load = load_snapshot(path, "unit-test", 3);
  EXPECT_TRUE(load.present);
  ASSERT_TRUE(load.valid) << load.error;
  ASSERT_EQ(load.snapshot.records.size(), 2u);
  EXPECT_EQ(load.snapshot.records[0].dump(), doc(1.5).dump());
  EXPECT_EQ(load.snapshot.records[1].dump(), doc(-2.25).dump());
}

TEST_F(PersistTest, SnapshotMissingFileIsAbsentNotError) {
  const auto load = load_snapshot((dir_ / "nope.snap").string(), "k", 1);
  EXPECT_FALSE(load.present);
  EXPECT_FALSE(load.valid);
  EXPECT_FALSE(load.torn);
}

TEST_F(PersistTest, SnapshotKindAndVersionMismatchRejected) {
  const auto path = (dir_ / "s.snap").string();
  SnapshotFile snapshot;
  snapshot.kind = "unit-test";
  snapshot.version = 3;
  write_snapshot(path, snapshot);

  EXPECT_FALSE(load_snapshot(path, "other-kind", 3).valid);
  EXPECT_FALSE(load_snapshot(path, "unit-test", 4).valid);
  EXPECT_TRUE(load_snapshot(path, "unit-test", 3).valid);
}

TEST_F(PersistTest, DamagedSnapshotRejectedWhole) {
  const auto path = (dir_ / "s.snap").string();
  SnapshotFile snapshot;
  snapshot.kind = "unit-test";
  snapshot.version = 1;
  snapshot.records.push_back(doc(7));
  write_snapshot(path, snapshot);

  // Flip one byte in the middle: checksum-invalid state is never loaded,
  // even though the header record may still decode.
  std::string bytes = slurp(path);
  bytes[bytes.size() / 2] ^= 0x10;
  std::ofstream(path, std::ios::trunc | std::ios::binary)
      .write(bytes.data(), static_cast<std::streamsize>(bytes.size()));

  const auto load = load_snapshot(path, "unit-test", 1);
  EXPECT_TRUE(load.present);
  EXPECT_FALSE(load.valid);
}

// --- crash injector plumbing ----------------------------------------------

TEST_F(PersistTest, SeamCatalogueCoversAtomicAndJournal) {
  const auto& seams = crash_seams();
  EXPECT_GE(seams.size(), 8u);
  bool has_atomic = false;
  bool has_journal = false;
  for (const auto& seam : seams) {
    if (seam.rfind("atomic.", 0) == 0) has_atomic = true;
    if (seam.rfind("journal.", 0) == 0) has_journal = true;
  }
  EXPECT_TRUE(has_atomic);
  EXPECT_TRUE(has_journal);
}

TEST_F(PersistTest, InjectorFiresOnNthHitOnly) {
  auto& injector = fault::CrashInjector::instance();
  injector.arm("journal.pre_append", 3, fault::CrashMode::Throw);
  const auto path = (dir_ / "nth.journal").string();
  Journal journal(path);
  journal.append("one");
  journal.append("two");
  EXPECT_EQ(injector.hits(), 2u);
  EXPECT_THROW(journal.append("three"), fault::CrashInjected);
  // Throw mode disarms itself so recovery runs seam-free.
  EXPECT_FALSE(injector.armed());
}

TEST_F(PersistTest, ArmFromEnvParsesSeamAndHit) {
#ifndef _WIN32
  auto& injector = fault::CrashInjector::instance();
  ::setenv("CIG_CRASH_AT", "journal.pre_append:5", 1);
  EXPECT_TRUE(injector.arm_from_env());
  EXPECT_TRUE(injector.armed());
  injector.disarm();
  ::unsetenv("CIG_CRASH_AT");
  EXPECT_FALSE(injector.arm_from_env());
#endif
}

}  // namespace
}  // namespace cig::persist
