// Crash-point recovery tests for the checkpointed adaptive replay
// (runtime/checkpoint.h + replay.cpp): an in-process simulated crash
// (fault::CrashInjector, Throw mode) at a persistence seam, followed by a
// restart over the same checkpoint directory, must produce decisions
// byte-identical to an uninterrupted golden run — and guard state
// (quarantine strikes, watchdog pins) must survive the snapshot round-trip.
//
// The serve-mode section at the bottom applies the same discipline to the
// multi-tenant daemon: a crash at every serve.* seam, then a restart over
// the same state directory plus an at-least-once re-feed of the stream,
// must leave checkpoints byte-identical to an uninterrupted golden run.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/framework.h"
#include "fault/crash.h"
#include "profile/profiler.h"
#include "runtime/controller.h"
#include "runtime/guard.h"
#include "runtime/replay.h"
#include "serve/crashtest.h"
#include "serve/server.h"
#include "soc/presets.h"
#include "workload/builders.h"

namespace cig::runtime {
namespace {

namespace fs = std::filesystem;

// 2 light/heavy pairs x 8 samples = 32 samples: fast, but long enough for
// the controller to switch models a few times.
workload::PhasicConfig short_trace() {
  workload::PhasicConfig config;
  config.phase_pairs = 2;
  config.samples_per_phase = 8;
  return config;
}

class CrashRecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (fs::temp_directory_path() /
            ("cig-crash-recovery-" +
             std::string(::testing::UnitTest::GetInstance()
                             ->current_test_info()
                             ->name())))
               .string();
    fs::remove_all(dir_);
  }
  void TearDown() override {
    fault::CrashInjector::instance().disarm();
    fs::remove_all(dir_);
  }

  std::string dir_;
};

void expect_identical_decisions(const ReplayResult& recovered,
                                const ReplayResult& golden) {
  ASSERT_EQ(recovered.decision_log.size(), golden.decision_log.size());
  for (std::size_t i = 0; i < golden.decision_log.size(); ++i) {
    EXPECT_EQ(recovered.decision_log[i].dump(), golden.decision_log[i].dump())
        << "decision " << i << " diverged";
  }
  // Byte-identical decisions imply the same trajectory; the end-to-end
  // adaptive time must then match to the last bit as well.
  EXPECT_EQ(recovered.adaptive_time, golden.adaptive_time);
  EXPECT_EQ(recovered.metrics.switches, golden.metrics.switches);
}

TEST_F(CrashRecoveryTest, ResumeAfterJournalCrashIsByteIdentical) {
  core::Framework framework(soc::jetson_tx2());
  const auto phases =
      workload::phasic_workload_phases(framework.board(), short_trace());
  const auto golden = replay_phasic(framework, phases, {});

  ReplayOptions checkpointed;
  checkpointed.checkpoint.dir = dir_;

  // Crash mid-append of the 20th sample record: the journal is left with a
  // torn tail, the snapshot points at sample 19.
  fault::CrashInjector::instance().arm("journal.mid_append", 20,
                                       fault::CrashMode::Throw);
  bool crashed = false;
  try {
    replay_phasic(framework, phases, checkpointed);
  } catch (const fault::CrashInjected& crash) {
    crashed = true;
    EXPECT_EQ(crash.seam(), "journal.mid_append");
  }
  ASSERT_TRUE(crashed);

  const auto recovered = replay_phasic(framework, phases, checkpointed);
  EXPECT_TRUE(recovered.resumed);
  EXPECT_EQ(recovered.resume_sample, 19u);
  EXPECT_EQ(recovered.persist.recovered, 19u);
  EXPECT_EQ(recovered.persist.torn_discarded, 1u);
  EXPECT_GT(recovered.persist.torn_bytes, 0u);
  expect_identical_decisions(recovered, golden);
}

TEST_F(CrashRecoveryTest, ResumeAfterSnapshotCrashWithCoarseCadence) {
  core::Framework framework(soc::jetson_tx2());
  const auto phases =
      workload::phasic_workload_phases(framework.board(), short_trace());
  const auto golden = replay_phasic(framework, phases, {});

  ReplayOptions checkpointed;
  checkpointed.checkpoint.dir = dir_;
  checkpointed.checkpoint.snapshot_every = 8;

  // Crash while writing the third snapshot (after sample 24): the journal
  // holds 24 records but the last durable snapshot covers 16, so recovery
  // must drop the 8-record journal tail and resume at 16.
  fault::CrashInjector::instance().arm("atomic.pre_rename", 3,
                                       fault::CrashMode::Throw);
  bool crashed = false;
  try {
    replay_phasic(framework, phases, checkpointed);
  } catch (const fault::CrashInjected&) {
    crashed = true;
  }
  ASSERT_TRUE(crashed);

  const auto recovered = replay_phasic(framework, phases, checkpointed);
  EXPECT_TRUE(recovered.resumed);
  EXPECT_EQ(recovered.resume_sample, 16u);
  EXPECT_EQ(recovered.persist.tail_dropped, 8u);
  EXPECT_EQ(recovered.persist.torn_discarded, 0u);
  expect_identical_decisions(recovered, golden);
}

TEST_F(CrashRecoveryTest, FinishedCheckpointResumesAtEndOfTrace) {
  core::Framework framework(soc::jetson_tx2());
  const auto phases =
      workload::phasic_workload_phases(framework.board(), short_trace());

  ReplayOptions checkpointed;
  checkpointed.checkpoint.dir = dir_;
  const auto first = replay_phasic(framework, phases, checkpointed);
  EXPECT_FALSE(first.resumed);

  const auto rerun = replay_phasic(framework, phases, checkpointed);
  EXPECT_TRUE(rerun.resumed);
  EXPECT_EQ(rerun.resume_sample, first.decision_log.size());
  EXPECT_TRUE(rerun.samples.empty());  // no live samples were executed
  expect_identical_decisions(rerun, first);
}

TEST_F(CrashRecoveryTest, CheckpointForLongerTraceIsInvalidatedNotResumed) {
  core::Framework framework(soc::jetson_tx2());
  const auto long_phases =
      workload::phasic_workload_phases(framework.board(), short_trace());
  workload::PhasicConfig tiny = short_trace();
  tiny.samples_per_phase = 4;
  const auto short_phases =
      workload::phasic_workload_phases(framework.board(), tiny);

  ReplayOptions checkpointed;
  checkpointed.checkpoint.dir = dir_;
  replay_phasic(framework, long_phases, checkpointed);

  // The stored checkpoint covers 32 samples; replaying a 16-sample trace
  // over it cannot resume (the resume point is outside the trace) and must
  // cold-start rather than load inapplicable state.
  const auto result = replay_phasic(framework, short_phases, checkpointed);
  EXPECT_FALSE(result.resumed);
  EXPECT_GE(result.persist.snapshot_rejected, 1u);
  EXPECT_EQ(result.decision_log.size(), 16u);
}

TEST_F(CrashRecoveryTest, ControllerSnapshotRoundTripIsByteIdentical) {
  core::Framework framework(soc::jetson_tx2());
  const core::DecisionEngine engine(framework.device());
  const auto phases =
      workload::phasic_workload_phases(framework.board(), short_trace());

  framework.soc().reset();
  profile::Profiler profiler(framework.soc(), {});
  AdaptiveController live(engine, profiler.executor(), {});
  // Drive it across a phase boundary so window, hysteresis, guards and
  // metrics all hold non-trivial state.
  std::size_t fed = 0;
  for (const auto& phase : phases) {
    for (std::uint32_t s = 0; s < phase.samples && fed < 20; ++s, ++fed) {
      comm::RunResult raw;
      const auto report =
          profiler.sample(phase.workload, live.model(), raw);
      live.on_sample(report, phase.workload.gpu.pattern.base,
                     phase.workload.gpu.pattern.extent);
    }
  }
  const Json snapshot = live.snapshot();

  AdaptiveController restored(engine, profiler.executor(), {});
  restored.restore(snapshot);
  EXPECT_EQ(restored.snapshot().dump(), snapshot.dump());
  EXPECT_EQ(restored.model(), live.model());
  EXPECT_EQ(restored.now(), live.now());
}

TEST_F(CrashRecoveryTest, RestoreRejectsSnapshotFromDifferentConfig) {
  core::Framework framework(soc::jetson_tx2());
  const core::DecisionEngine engine(framework.device());
  framework.soc().reset();
  profile::Profiler profiler(framework.soc(), {});

  AdaptiveController source(engine, profiler.executor(), {});
  const Json snapshot = source.snapshot();

  ControllerConfig other;
  other.amortization_horizon_iters = 48;  // fingerprint-relevant change
  AdaptiveController target(engine, profiler.executor(), other);
  EXPECT_THROW(target.restore(snapshot), std::runtime_error);
}

// --- guard-state edge cases across snapshot/restore -----------------------

TEST_F(CrashRecoveryTest, QuarantineStrikesAndExpirySurviveRestore) {
  GuardConfig config;  // quarantine_after = 2
  GuardMetrics before_metrics;
  SwitchGuard before(config, before_metrics);
  before.on_decision();
  // First strike against ZC: not yet quarantined.
  EXPECT_FALSE(before.on_misprediction(comm::CommModel::ZeroCopy));
  EXPECT_TRUE(before.allow(comm::CommModel::ZeroCopy));

  GuardMetrics after_metrics;
  SwitchGuard after(config, after_metrics);
  after.restore(before.snapshot());

  // The strike survived the round-trip: one more misprediction quarantines.
  EXPECT_TRUE(after.on_misprediction(comm::CommModel::ZeroCopy));
  EXPECT_FALSE(after.allow(comm::CommModel::ZeroCopy));

  // And the quarantine expires on schedule across another round-trip.
  GuardMetrics final_metrics;
  SwitchGuard resumed(config, final_metrics);
  resumed.restore(after.snapshot());
  EXPECT_FALSE(resumed.allow(comm::CommModel::ZeroCopy));
  for (std::uint64_t i = 0; i <= config.cooldown_decisions; ++i) {
    resumed.on_decision();
  }
  EXPECT_TRUE(resumed.allow(comm::CommModel::ZeroCopy));
}

// --- serve-mode seam recovery -------------------------------------------
//
// Same contract as `cigtool crashtest --mode serve`, exercised in-process:
// arm a Throw-mode crash at each serve.* seam, let it tear the daemon out
// of its session, restart over the same state directory and re-feed the
// whole stream. The recovered state directory must match an uninterrupted
// golden run byte for byte, and the re-fed samples must be acknowledged as
// replayed rather than re-executed.

std::map<std::string, std::string> state_dir_bytes(const std::string& dir) {
  std::map<std::string, std::string> files;
  for (const auto& entry : fs::recursive_directory_iterator(dir)) {
    if (!entry.is_regular_file()) continue;
    // Flight-recorder dumps are recovery forensics, not durable state:
    // only the recovered run writes one.
    const std::string name = entry.path().filename().string();
    const std::string suffix = ".trace.json";
    if (name.size() > suffix.size() &&
        name.compare(name.size() - suffix.size(), suffix.size(), suffix) ==
            0) {
      continue;
    }
    std::ifstream in(entry.path(), std::ios::binary);
    std::ostringstream bytes;
    bytes << in.rdbuf();
    files[fs::relative(entry.path(), dir).string()] = bytes.str();
  }
  return files;
}

serve::ServeOptions serve_options(const std::string& state_dir) {
  serve::ServeOptions options;
  options.state_dir = state_dir;
  options.resident_budget = 2;  // below the tenant count: evictions fire
  options.batch_max = 8;
  options.cache_dir =
      (fs::temp_directory_path() / "cig-serve-test-cache").string();
  return options;
}

TEST_F(CrashRecoveryTest, ServeSeamCrashesRecoverByteIdentical) {
  serve::ScriptOptions script_options;  // 4 tenants x 4 samples + decides
  const std::string script = serve::scripted_session(script_options);

  const std::string golden_dir = dir_ + "/golden";
  {
    serve::Server golden(serve_options(golden_dir));
    std::istringstream in(script);
    std::ostringstream out;
    ASSERT_EQ(golden.run(in, out), 0);
  }
  const auto golden_bytes = state_dir_bytes(golden_dir);
  ASSERT_FALSE(golden_bytes.empty());

  for (const std::string& seam : serve::serve_crash_seams()) {
    SCOPED_TRACE(seam);
    const std::string state = dir_ + "/" + seam;

    // Crash: the injected fault must escape the request loop (it is not a
    // std::exception, so the daemon's error shielding cannot swallow it).
    fault::CrashInjector::instance().arm(seam, 1, fault::CrashMode::Throw);
    bool crashed = false;
    {
      serve::Server crashing(serve_options(state));
      std::istringstream in(script);
      std::ostringstream out;
      try {
        crashing.run(in, out);
      } catch (const fault::CrashInjected& crash) {
        crashed = true;
        EXPECT_EQ(crash.seam(), seam);
      }
    }
    fault::CrashInjector::instance().disarm();
    ASSERT_TRUE(crashed);

    // Recover: restart over the torn-off state dir, re-feed everything.
    serve::Server recovered(serve_options(state));
    std::istringstream in(script);
    std::ostringstream out;
    EXPECT_EQ(recovered.run(in, out), 0);
    EXPECT_EQ(state_dir_bytes(state), golden_bytes);
  }
}

TEST_F(CrashRecoveryTest, ServeRecoveryDedupsRefedSamples) {
  serve::ScriptOptions script_options;
  const std::string script = serve::scripted_session(script_options);
  const std::string state = dir_ + "/state";

  // Crash right after the first manifest publish: recovery sees durable
  // tenants mid-history, so the re-fed prefix must dedup, not re-execute.
  fault::CrashInjector::instance().arm("serve.post_manifest", 1,
                                       fault::CrashMode::Throw);
  {
    serve::Server crashing(serve_options(state));
    std::istringstream in(script);
    std::ostringstream out;
    try {
      crashing.run(in, out);
      FAIL() << "seam never fired";
    } catch (const fault::CrashInjected&) {
    }
  }
  fault::CrashInjector::instance().disarm();

  serve::Server recovered(serve_options(state));
  std::istringstream in(script);
  std::ostringstream out;
  EXPECT_EQ(recovered.run(in, out), 0);
  // At least one re-fed sample was already in a recovered checkpoint and
  // must be acknowledged without re-execution; none may error.
  EXPECT_GT(recovered.metrics().replayed_samples, 0u);
  EXPECT_EQ(recovered.metrics().errors, 0u);
}

TEST_F(CrashRecoveryTest, WatchdogPinAndReasonSurviveRestore) {
  GuardConfig config;  // watchdog: >4 switches in 16 decisions pins
  GuardMetrics before_metrics;
  SwitchGuard before(config, before_metrics);
  bool tripped = false;
  for (int i = 0; i < 8 && !tripped; ++i) {
    before.on_decision();
    tripped = before.on_switch();
  }
  ASSERT_TRUE(tripped);
  EXPECT_TRUE(before.pinned());
  ASSERT_FALSE(before.pin_reason().empty());

  GuardMetrics after_metrics;
  SwitchGuard after(config, after_metrics);
  after.restore(before.snapshot());
  EXPECT_TRUE(after.pinned());
  EXPECT_EQ(after.pin_reason(), before.pin_reason());

  // The pin expires on the restored clock, not a fresh one.
  for (std::uint64_t i = 0; i <= config.pin_decisions; ++i) {
    after.on_decision();
  }
  EXPECT_FALSE(after.pinned());
}

}  // namespace
}  // namespace cig::runtime
