// Chaos property suite: every (scenario, board) cell must satisfy the
// robustness invariants no matter which faults fire.
//
//   - the run completes and lands on a valid communication model
//   - regret against the clean static-best stays under the scenario bound
//   - corrupt characterizations route analyze() into the degraded SC
//     fallback with the rejected inputs named in the Explanation
//   - a fixed seed is byte-identical across reruns and worker counts
#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "core/result_cache.h"
#include "fault/chaos.h"
#include "fault/scenario.h"
#include "soc/board_io.h"

namespace cig::fault {
namespace {

bool corrupts_characterization(const FaultScenario& scenario) {
  return std::any_of(scenario.specs.begin(), scenario.specs.end(),
                     [](const FaultSpec& spec) {
                       return spec.kind == FaultKind::CorruptCharacterization;
                     });
}

TEST(ChaosProperties, EveryCellHoldsTheInvariants) {
  // One memory-only cache across the grid: each board characterizes once.
  core::ResultCache cache;
  ChaosOptions options;
  options.sweep.cache = &cache;

  for (const std::string board_name : {"tx2", "xavier"}) {
    const auto board = soc::resolve_board(board_name);
    for (const auto& scenario : all_scenarios()) {
      SCOPED_TRACE(board.name + " / " + scenario.name);
      const auto cell = run_chaos(board, scenario, options);

      // Landed on a valid model with a plausible runtime.
      EXPECT_LT(core::model_index(cell.final_model), 3u);
      EXPECT_GT(cell.adaptive_time, 0.0);
      for (const auto model : core::kAllModels) {
        EXPECT_GT(cell.static_time[core::model_index(model)], 0.0);
      }

      // Every scenario actually injected something.
      EXPECT_GT(cell.fault_metrics.total, 0u);
      EXPECT_EQ(cell.registry.get("fault.total"),
                static_cast<double>(cell.fault_metrics.total));

      // Bounded regret against the clean static-best oracle.
      EXPECT_GT(cell.regret, 0.0);
      EXPECT_LE(cell.regret, scenario.regret_bound)
          << "adaptive " << to_us(cell.adaptive_time) << " us vs best static "
          << to_us(cell.static_time[core::model_index(cell.best_static)])
          << " us";

      // The guardrail counters are part of the cell's registry contract.
      EXPECT_TRUE(cell.registry.contains("runtime.guard.rejected_samples"));

      if (corrupts_characterization(scenario)) {
        EXPECT_TRUE(cell.degraded);
        EXPECT_EQ(cell.degraded_suggested, comm::CommModel::StandardCopy);
        EXPECT_FALSE(cell.degraded_problems.empty());
        bool explains_degradation = false;
        for (const auto& check : cell.degraded_checks) {
          if (check.find("degraded") != std::string::npos) {
            explains_degradation = true;
          }
        }
        EXPECT_TRUE(explains_degradation)
            << "explanation has " << cell.degraded_checks.size() << " checks";
      } else {
        EXPECT_FALSE(cell.degraded);
      }
    }
  }
}

TEST(ChaosProperties, SpikesAreCaughtByTheSampleGuard) {
  const auto board = soc::resolve_board("tx2");
  const auto cell =
      run_chaos(board, scenario_by_name("spike-outliers"), {});
  EXPECT_GT(cell.registry.get("runtime.guard.rejected_samples"), 0.0);
}

TEST(ChaosProperties, FixedSeedIsByteIdenticalAcrossReruns) {
  const auto board = soc::resolve_board("tx2");
  const auto& scenario = scenario_by_name("kitchen-sink");
  ChaosOptions options;
  options.seed = 42;
  const std::string first = run_chaos(board, scenario, options)
                                .to_json().dump();
  const std::string second = run_chaos(board, scenario, options)
                                 .to_json().dump();
  EXPECT_EQ(first, second);
}

TEST(ChaosProperties, FixedSeedIsByteIdenticalAcrossWorkerCounts) {
  const auto board = soc::resolve_board("xavier");
  const auto& scenario = scenario_by_name("counter-noise");
  ChaosOptions serial;
  serial.seed = 42;
  serial.sweep.jobs = 1;
  ChaosOptions wide;
  wide.seed = 42;
  wide.sweep.jobs = 8;
  EXPECT_EQ(run_chaos(board, scenario, serial).to_json().dump(),
            run_chaos(board, scenario, wide).to_json().dump());
}

TEST(ChaosProperties, MemShrinkDemotesInsteadOfFailing) {
  // The shrinking-DRAM ramp forces the controller down the footprint
  // ladder: the cell completes on a valid model, the governor reports the
  // pressure surface, and at least one demotion (plan or resident) fires
  // instead of any failure.
  const auto board = soc::resolve_board("tx2");
  const auto cell = run_chaos(board, scenario_by_name("mem-shrink"), {});
  EXPECT_GT(cell.registry.get("runtime.demotions"), 0.0);
  EXPECT_GT(cell.registry.get("runtime.mem.blocked"), 0.0);
  EXPECT_GT(cell.registry.get("runtime.mem.budget_bytes"), 0.0);
  EXPECT_GT(cell.registry.get("runtime.mem.level_changes"), 0.0);
  EXPECT_LE(cell.regret, scenario_by_name("mem-shrink").regret_bound);
}

TEST(ChaosProperties, AllocFailuresDemoteAndNeverCrash) {
  const auto board = soc::resolve_board("tx2");
  const auto cell = run_chaos(board, scenario_by_name("alloc-fail"), {});
  EXPECT_GT(cell.fault_metrics.total, 0u);
  EXPECT_GT(cell.registry.get("runtime.demotions"), 0.0);
  EXPECT_LE(cell.regret, scenario_by_name("alloc-fail").regret_bound);
}

TEST(ChaosProperties, OomCrunchKeepsEveryGuardrailActive) {
  const auto board = soc::resolve_board("tx2");
  const auto cell = run_chaos(board, scenario_by_name("oom-crunch"), {});
  EXPECT_GT(cell.registry.get("runtime.demotions"), 0.0);
  EXPECT_GT(cell.registry.get("runtime.mem.budget_bytes"), 0.0);
  EXPECT_LE(cell.regret, scenario_by_name("oom-crunch").regret_bound);
}

TEST(ChaosProperties, PressureCellsAreByteIdenticalAcrossWorkerCounts) {
  // The governor's state transitions are serial and seed-pure, so a
  // pressure-ramp cell must replay byte-identically at any --jobs.
  const auto board = soc::resolve_board("tx2");
  const auto& scenario = scenario_by_name("mem-shrink");
  ChaosOptions serial;
  serial.seed = 42;
  serial.sweep.jobs = 1;
  ChaosOptions wide;
  wide.seed = 42;
  wide.sweep.jobs = 8;
  EXPECT_EQ(run_chaos(board, scenario, serial).to_json().dump(),
            run_chaos(board, scenario, wide).to_json().dump());
}

TEST(ChaosProperties, DifferentSeedsDrawDifferentFaultStreams) {
  const auto board = soc::resolve_board("tx2");
  const auto& scenario = scenario_by_name("counter-noise");
  ChaosOptions a;
  a.seed = 1;
  ChaosOptions b;
  b.seed = 2;
  EXPECT_NE(run_chaos(board, scenario, a).to_json().dump(),
            run_chaos(board, scenario, b).to_json().dump());
}

}  // namespace
}  // namespace cig::fault
