// Exit-code contract tests for the cigtool binary (documented in the README
// and in `cigtool --help`):
//
//   0  success
//   1  usage error (bad command, malformed flag or argument)
//   2  operational failure (runtime error, check violation)
//   3  recovery discarded torn state (checkpointed runtime / serve only)
//
// Each test shells out to the real binary (path baked in via CIGTOOL_PATH)
// with cheap commands only — nothing here characterizes a board.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#ifndef _WIN32
#include <sys/wait.h>
#endif

#include "persist/atomic_io.h"
#include "support/json.h"

namespace {

namespace fs = std::filesystem;

#ifndef CIGTOOL_PATH
#error "test_cli needs -DCIGTOOL_PATH=\"...\" pointing at the cigtool binary"
#endif

struct CliResult {
  int exit = -1;
  std::string out;  // combined stdout, from a capture file
};

// Runs `cigtool <args>` with stdout captured and stderr folded in; the
// shell-level plumbing keeps this portable across POSIX CI runners.
CliResult run_cli(const std::string& args, const std::string& scratch,
                  const std::string& stdin_text = "") {
  CliResult result;
#ifdef _WIN32
  (void)args;
  (void)scratch;
  (void)stdin_text;
  return result;  // exit codes are POSIX-shaped; skip on Windows
#else
  const std::string out_file = scratch + "/cli-out.txt";
  std::string command = std::string(CIGTOOL_PATH) + " " + args;
  if (!stdin_text.empty()) {
    const std::string in_file = scratch + "/cli-in.txt";
    std::ofstream in(in_file);
    in << stdin_text;
    in.close();
    command += " < '" + in_file + "'";
  } else {
    command += " < /dev/null";
  }
  command += " > '" + out_file + "' 2>&1";
  const int status = std::system(command.c_str());
  if (WIFEXITED(status)) result.exit = WEXITSTATUS(status);
  std::ifstream captured(out_file);
  std::ostringstream text;
  text << captured.rdbuf();
  result.out = text.str();
  return result;
#endif
}

class CigtoolCliTest : public ::testing::Test {
 protected:
  void SetUp() override {
#ifdef _WIN32
    GTEST_SKIP() << "exit-code contract is POSIX-only";
#endif
    dir_ = (fs::temp_directory_path() /
            ("cig-cli-" + std::string(::testing::UnitTest::GetInstance()
                                          ->current_test_info()
                                          ->name())))
               .string();
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string dir_;
};

TEST_F(CigtoolCliTest, SuccessExitsZero) {
  const CliResult boards = run_cli("boards", dir_);
  EXPECT_EQ(boards.exit, 0);
  EXPECT_NE(boards.out.find("Jetson TX2"), std::string::npos);

  // A serve session with no tenants touches no board and exits cleanly.
  const CliResult serve =
      run_cli("serve", dir_, "{\"op\":\"shutdown\"}\n");
  EXPECT_EQ(serve.exit, 0);
}

TEST_F(CigtoolCliTest, ChaosListPrintsTheCatalogue) {
  // --list enumerates the scenario catalogue without running a cell, so it
  // must answer instantly (no characterization) and name every scenario
  // class including the OOM-grade trio.
  const CliResult list = run_cli("chaos --list", dir_);
  EXPECT_EQ(list.exit, 0);
  for (const char* scenario :
       {"counter-noise", "kitchen-sink", "mem-shrink", "alloc-fail",
        "oom-crunch", "serve-storm"}) {
    EXPECT_NE(list.out.find(scenario), std::string::npos) << scenario;
  }
  EXPECT_NE(list.out.find("regret <="), std::string::npos);

  const CliResult json = run_cli("chaos --list --json", dir_);
  EXPECT_EQ(json.exit, 0);
  const cig::Json doc = cig::Json::parse(json.out);
  EXPECT_GE(doc.at("scenarios").as_array().size(), 15u);
}

TEST_F(CigtoolCliTest, HelpGoesToStdoutAndExitsZero) {
  const CliResult help = run_cli("--help", dir_);
  EXPECT_EQ(help.exit, 0);
  EXPECT_NE(help.out.find("usage:"), std::string::npos);
  EXPECT_NE(help.out.find("serve"), std::string::npos);
  EXPECT_NE(help.out.find("exit codes:"), std::string::npos);
}

TEST_F(CigtoolCliTest, UsageErrorsExitOne) {
  EXPECT_EQ(run_cli("", dir_).exit, 1);              // no command
  EXPECT_EQ(run_cli("frobnicate", dir_).exit, 1);    // unknown command
  EXPECT_EQ(run_cli("show", dir_).exit, 1);          // missing argument
  EXPECT_EQ(run_cli("crashtest --mode bogus", dir_).exit, 1);
  EXPECT_EQ(run_cli("serve --listen carrier-pigeon:7", dir_).exit, 1);
  EXPECT_EQ(run_cli("cache stats", dir_).exit, 1);   // needs --cache-dir
}

TEST_F(CigtoolCliTest, OperationalFailuresExitTwo) {
  EXPECT_EQ(run_cli("show no-such-board", dir_).exit, 2);
  EXPECT_EQ(run_cli("serve --script " + dir_ + "/missing.jsonl", dir_).exit,
            2);
}

TEST_F(CigtoolCliTest, TornStateRecoveryExitsThree) {
  // A corrupt manifest is discarded on recovery; the daemon still serves
  // the session but reports the discard through exit code 3.
  const std::string state = dir_ + "/state";
  fs::create_directories(state + "/tenants");
  cig::persist::atomic_write_file(state + "/manifest.snap",
                                  "garbage, not a snapshot\n");
  const CliResult serve = run_cli("serve --state-dir " + state, dir_,
                                  "{\"op\":\"shutdown\"}\n");
  EXPECT_EQ(serve.exit, 3);
}

}  // namespace
