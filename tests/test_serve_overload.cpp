// Overload-plane tests for the serve daemon: the AdmissionController state
// machine (watermark hysteresis, priority shedding, token buckets,
// deadline screening, quarantine), the end-to-end reject surface
// (structured error replies with retry_after_ms), the jobs-invariance
// contract under overload, graceful drain, and the serve-layer chaos
// scenarios with their SLO verdicts.
//
// Board characterization shares the same content-addressed cache directory
// as test_serve.cpp, so only the first suite run per machine pays it.
#include <gtest/gtest.h>

#include <algorithm>
#include <csignal>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "fault/session.h"
#include "serve/chaos.h"
#include "serve/overload.h"
#include "serve/server.h"
#include "support/json.h"

#ifndef _WIN32
#include <fcntl.h>
#include <sys/wait.h>
#include <unistd.h>
#endif

namespace cig::serve {
namespace {

namespace fs = std::filesystem;

std::string shared_cache_dir() {
  return (fs::temp_directory_path() / "cig-serve-test-cache").string();
}

Request make_request(Op op, const std::string& tenant,
                     std::uint32_t priority = kDefaultPriority) {
  Request req;
  req.op = op;
  req.tenant = tenant;
  req.priority = priority;
  return req;
}

Request heavy_sample(const std::string& tenant,
                     std::uint32_t priority = kDefaultPriority,
                     std::uint32_t iterations = 4) {
  Request req = make_request(Op::Sample, tenant, priority);
  req.heavy = true;
  req.iterations = iterations;
  return req;
}

// ---------------------------------------------------------------------------
// AdmissionController unit tests (no daemon, no characterization).

TEST(AdmissionControllerTest, DisabledByDefaultAdmitsEverything) {
  AdmissionController admission{OverloadConfig{}};
  EXPECT_FALSE(admission.enabled());
  for (std::uint64_t line = 1; line <= 64; ++line) {
    admission.on_line(line);
    const auto decision = admission.admit(heavy_sample("t"), line);
    EXPECT_EQ(decision.verdict, AdmissionVerdict::Admit);
  }
  EXPECT_EQ(admission.queue_depth(), 0.0);
}

TEST(AdmissionControllerTest, ShedsAtHighWatermarkAndRecoversAtLow) {
  OverloadConfig config;
  config.queue_high = 8;
  config.queue_low = 2;
  AdmissionController admission(config);
  ASSERT_TRUE(admission.enabled());

  // Pack the queue on one line with class-0 traffic: cost-4 samples,
  // drain only happens on line advance. At light overload the shed floor
  // is 1, so only class 0 is shed.
  admission.on_line(1);
  std::uint64_t admitted = 0;
  std::uint64_t shed = 0;
  for (int i = 0; i < 6; ++i) {
    const auto decision = admission.admit(heavy_sample("t", /*priority=*/0), 1);
    if (decision.verdict == AdmissionVerdict::Admit) {
      ++admitted;
    } else {
      ASSERT_EQ(decision.verdict, AdmissionVerdict::Shed);
      EXPECT_GT(decision.retry_after_ms, 0u);
      ++shed;
    }
  }
  // First admit takes the queue to 4; every later request would cross the
  // high watermark (4 + 4 >= 8) and is shed, leaving the queue at 4.
  EXPECT_EQ(admitted, 1u);
  EXPECT_EQ(shed, 5u);
  EXPECT_TRUE(admission.shedding());

  // Hysteresis: shedding stays on while the queue drains toward low...
  admission.on_line(2);  // one line of drain: queue 4 -> 3 > low
  EXPECT_TRUE(admission.shedding());
  EXPECT_EQ(admission.admit(make_request(Op::Decide, "t", 0), 2).verdict,
            AdmissionVerdict::Shed);
  // ...and clears only at (or below) the low watermark.
  admission.on_line(5);  // queue 3 -> 0 <= low
  EXPECT_FALSE(admission.shedding());
  EXPECT_EQ(admission.admit(make_request(Op::Decide, "t", 0), 5).verdict,
            AdmissionVerdict::Admit);
}

TEST(AdmissionControllerTest, ShedFloorEscalatesAndPriority3Survives) {
  OverloadConfig config;
  config.queue_high = 4;
  config.queue_low = 1;
  AdmissionController admission(config);

  admission.on_line(1);
  // Drive the queue past 2x high: floor escalates to 3.
  while (admission.queue_depth() < 2 * config.queue_high) {
    admission.admit(heavy_sample("t", /*priority=*/3), 1);
  }
  EXPECT_EQ(admission.shed_floor(), 3u);
  EXPECT_EQ(admission.admit(heavy_sample("t", 2), 1).verdict,
            AdmissionVerdict::Shed);
  // Priority 3 is never shed, no matter how deep the queue is.
  EXPECT_EQ(admission.admit(make_request(Op::Decide, "t", 3), 1).verdict,
            AdmissionVerdict::Admit);
}

TEST(AdmissionControllerTest, TokenBucketLimitsPerTenantAndRefills) {
  OverloadConfig config;
  config.tenant_rate = 0.5;   // half a token per line
  config.tenant_burst = 1.0;  // one cost-1 request of headroom
  AdmissionController admission(config);
  ASSERT_TRUE(admission.enabled());

  Request sample = make_request(Op::Sample, "a");  // cost 1 (one iteration)
  admission.on_line(1);
  EXPECT_EQ(admission.admit(sample, 1).verdict, AdmissionVerdict::Admit);
  const auto limited = admission.admit(sample, 1);
  EXPECT_EQ(limited.verdict, AdmissionVerdict::RateLimited);
  EXPECT_GT(limited.retry_after_ms, 0u);

  // Buckets are per tenant: a sibling still has its full burst.
  EXPECT_EQ(admission.admit(make_request(Op::Sample, "b"), 1).verdict,
            AdmissionVerdict::Admit);

  // Two lines later the 0.5/line refill covers another cost-1 request.
  admission.on_line(3);
  EXPECT_EQ(admission.admit(sample, 3).verdict, AdmissionVerdict::Admit);
}

TEST(AdmissionControllerTest, DeadlineScreensOnQueueWaitEstimate) {
  OverloadConfig config;
  config.queue_high = 1000;  // watermark far away: only deadlines matter
  config.service_us_per_unit = 100.0;
  AdmissionController admission(config);

  admission.on_line(1);
  // Fill the queue to 8 cost units => estimated wait 800us.
  for (int i = 0; i < 2; ++i) admission.admit(heavy_sample("t"), 1);
  ASSERT_EQ(admission.queue_depth(), 8.0);

  Request relaxed = make_request(Op::Decide, "t");
  relaxed.deadline_us = 10000;
  EXPECT_EQ(admission.admit(relaxed, 1).verdict, AdmissionVerdict::Admit);

  Request tight = make_request(Op::Decide, "t");
  tight.deadline_us = 100;
  const auto expired = admission.admit(tight, 1);
  EXPECT_EQ(expired.verdict, AdmissionVerdict::DeadlineExpired);
  EXPECT_GT(expired.retry_after_ms, 0u);

  // The config-wide default applies to requests without a deadline.
  OverloadConfig with_default = config;
  with_default.default_deadline_us = 100;
  AdmissionController defaulted(with_default);
  defaulted.on_line(1);
  for (int i = 0; i < 2; ++i) defaulted.admit(heavy_sample("t"), 1);
  EXPECT_EQ(defaulted.admit(make_request(Op::Decide, "t"), 1).verdict,
            AdmissionVerdict::DeadlineExpired);
}

TEST(AdmissionControllerTest, QuarantineTripsAndCoolsDown) {
  OverloadConfig config;
  config.quarantine_after = 3;
  config.quarantine_cooldown = 10;
  AdmissionController admission(config);
  ASSERT_TRUE(admission.enabled());

  admission.on_line(5);
  EXPECT_FALSE(admission.on_failure("p", 5));
  EXPECT_FALSE(admission.on_failure("p", 5));
  // A success in between resets the consecutive-strike count.
  admission.on_success("p");
  EXPECT_FALSE(admission.on_failure("p", 5));
  EXPECT_FALSE(admission.on_failure("p", 5));
  EXPECT_TRUE(admission.on_failure("p", 5));  // third consecutive: trip
  EXPECT_EQ(admission.quarantined_tenants(5), 1u);

  const auto rejected = admission.admit(make_request(Op::Decide, "p"), 6);
  EXPECT_EQ(rejected.verdict, AdmissionVerdict::Quarantined);
  EXPECT_GT(rejected.retry_after_ms, 0u);
  // Healthy neighbors are unaffected.
  EXPECT_EQ(admission.admit(make_request(Op::Decide, "q"), 6).verdict,
            AdmissionVerdict::Admit);

  // Past the cooldown the tenant is admitted again.
  admission.on_line(16);
  EXPECT_EQ(admission.admit(make_request(Op::Decide, "p"), 16).verdict,
            AdmissionVerdict::Admit);
  EXPECT_EQ(admission.quarantined_tenants(16), 0u);
}

// ---------------------------------------------------------------------------
// End-to-end daemon tests.

struct SessionResult {
  int exit = 0;
  std::string out;
  std::vector<Json> replies;
};

SessionResult run_session(Server& server, const std::string& script) {
  std::istringstream in(script);
  std::ostringstream out;
  SessionResult result;
  result.exit = server.run(in, out);
  result.out = out.str();
  std::istringstream lines(result.out);
  std::string line;
  while (std::getline(lines, line)) {
    if (!line.empty()) result.replies.push_back(Json::parse(line));
  }
  return result;
}

class ServeOverloadTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (fs::temp_directory_path() /
            ("cig-serve-overload-" +
             std::string(::testing::UnitTest::GetInstance()
                             ->current_test_info()
                             ->name())))
               .string();
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  ServeOptions options() {
    ServeOptions o;
    o.cache_dir = shared_cache_dir();
    return o;
  }

  std::string dir_;
};

std::string flood_script(int burst) {
  std::ostringstream script;
  script << "{\"op\":\"hello\",\"tenant\":\"a\",\"board\":\"tx2\"}\n";
  for (int i = 0; i < burst; ++i) {
    script << "{\"op\":\"sample\",\"tenant\":\"a\",\"heavy\":true,"
              "\"iterations\":4,\"priority\":0}\n";
  }
  script << "{\"op\":\"decide\",\"tenant\":\"a\",\"priority\":3}\n"
         << "{\"op\":\"shutdown\"}\n";
  return script.str();
}

TEST_F(ServeOverloadTest, FloodShedsWithStructuredRejects) {
  ServeOptions o = options();
  o.overload.queue_high = 6;
  o.overload.queue_low = 2;
  Server server(o);
  const SessionResult r = run_session(server, flood_script(8));
  EXPECT_EQ(r.exit, 0);

  std::size_t shed_replies = 0;
  for (const Json& reply : r.replies) {
    if (reply.bool_or("ok", true)) continue;
    ASSERT_EQ(reply.string_or("error", ""), "overloaded");
    EXPECT_GT(reply.number_or("retry_after_ms", 0), 0);
    EXPECT_EQ(reply.string_or("op", ""), "sample");
    EXPECT_EQ(reply.string_or("tenant", ""), "a");
    ++shed_replies;
  }
  EXPECT_GT(shed_replies, 0u);
  EXPECT_EQ(server.metrics().shed, shed_replies);
  EXPECT_EQ(server.metrics().rejected, shed_replies);
  // The priority-3 decide at the tail is never shed.
  const Json& decide = r.replies[r.replies.size() - 2];
  EXPECT_TRUE(decide.bool_or("ok", false));
}

TEST_F(ServeOverloadTest, SheddingIsJobsInvariant) {
  const std::string script = flood_script(8);
  std::vector<std::string> outputs;
  for (const int jobs : {1, 8}) {
    ServeOptions o = options();
    o.overload.queue_high = 6;
    o.overload.queue_low = 2;
    o.jobs = jobs;
    Server server(o);
    outputs.push_back(run_session(server, script).out);
  }
  EXPECT_EQ(outputs[0], outputs[1]);
}

TEST_F(ServeOverloadTest, DefaultDeadlineRejectsWhenBacklogged) {
  ServeOptions o = options();
  o.overload.queue_high = 1000;
  o.overload.default_deadline_us = 100;
  o.overload.service_us_per_unit = 100.0;
  Server server(o);
  std::ostringstream script;
  script << "{\"op\":\"hello\",\"tenant\":\"a\",\"board\":\"tx2\"}\n";
  // Two cost-4 samples on consecutive lines leave ~7 units queued, an
  // estimated wait far past the 100us default deadline. The samples carry
  // their own generous deadlines so only the defaulted decide expires.
  script << "{\"op\":\"sample\",\"tenant\":\"a\",\"heavy\":true,"
            "\"iterations\":4,\"deadline_us\":1000000}\n"
         << "{\"op\":\"sample\",\"tenant\":\"a\",\"heavy\":true,"
            "\"iterations\":4,\"deadline_us\":1000000}\n"
         << "{\"op\":\"decide\",\"tenant\":\"a\"}\n"
         << "{\"op\":\"decide\",\"tenant\":\"a\",\"deadline_us\":100000}\n"
         << "{\"op\":\"shutdown\"}\n";
  const SessionResult r = run_session(server, script.str());
  EXPECT_EQ(r.exit, 0);
  const Json& defaulted = r.replies[3];
  EXPECT_FALSE(defaulted.bool_or("ok", true));
  EXPECT_EQ(defaulted.string_or("error", ""), "deadline-expired");
  // An explicit generous deadline overrides the default.
  EXPECT_TRUE(r.replies[4].bool_or("ok", false));
  EXPECT_EQ(server.metrics().deadline_expired, 1u);
}

TEST_F(ServeOverloadTest, PoisonTenantIsQuarantinedAndReleased) {
  ServeOptions o = options();
  o.overload.quarantine_after = 2;
  o.overload.quarantine_cooldown = 4;
  o.batch_max = 1;  // emit (and strike) immediately, line by line
  Server server(o);
  std::ostringstream script;
  script << "{\"op\":\"hello\",\"tenant\":\"a\",\"board\":\"tx2\"}\n";
  // Two unknown-tenant failures trip the ghost; the third request lands in
  // quarantine.
  for (int i = 0; i < 3; ++i) {
    script << "{\"op\":\"decide\",\"tenant\":\"ghost\"}\n";
  }
  // Pad past the cooldown, then the ghost is admitted (and fails) again.
  for (int i = 0; i < 5; ++i) {
    script << "{\"op\":\"sample\",\"tenant\":\"a\"}\n";
  }
  script << "{\"op\":\"decide\",\"tenant\":\"ghost\"}\n"
         << "{\"op\":\"shutdown\"}\n";
  const SessionResult r = run_session(server, script.str());
  EXPECT_EQ(r.exit, 0);

  EXPECT_EQ(r.replies[1].string_or("error", ""), "unknown-tenant");
  EXPECT_EQ(r.replies[2].string_or("error", ""), "unknown-tenant");
  const Json& quarantined = r.replies[3];
  EXPECT_EQ(quarantined.string_or("error", ""), "quarantined");
  EXPECT_GT(quarantined.number_or("retry_after_ms", 0), 0);
  EXPECT_EQ(r.replies[9].string_or("error", ""), "unknown-tenant");
  EXPECT_EQ(server.metrics().quarantine_trips, 1u);
  EXPECT_EQ(server.metrics().quarantine_rejected, 1u);
}

TEST_F(ServeOverloadTest, AdmissionRejectsDoNotCountAsStrikes) {
  ServeOptions o = options();
  o.overload.queue_high = 6;
  o.overload.queue_low = 2;
  o.overload.quarantine_after = 2;
  Server server(o);
  // The whole flood is shed rejects — admission rejects must never trip
  // the flooding tenant into quarantine.
  const SessionResult r = run_session(server, flood_script(12));
  EXPECT_EQ(r.exit, 0);
  EXPECT_GT(server.metrics().shed, 0u);
  EXPECT_EQ(server.metrics().quarantine_trips, 0u);
}

TEST_F(ServeOverloadTest, DrainFlagStopsIntakeAndStillCheckpoints) {
  ServeOptions o = options();
  o.state_dir = dir_ + "/state";
  fs::create_directories(o.state_dir);
  volatile std::sig_atomic_t drain = 0;
  o.drain_signal = &drain;
  Server server(o);

  // First session: register and sample normally.
  {
    std::istringstream in(
        "{\"op\":\"hello\",\"tenant\":\"a\",\"board\":\"tx2\"}\n"
        "{\"op\":\"sample\",\"tenant\":\"a\"}\n");
    std::ostringstream out;
    EXPECT_EQ(server.run(in, out), 0);
  }
  EXPECT_FALSE(server.drain_requested());

  // Second session starts with the flag already raised: the daemon stops
  // intake after the first line, flushes, checkpoints and dumps flight.
  drain = 1;
  std::istringstream in(
      "{\"op\":\"sample\",\"tenant\":\"a\"}\n"
      "{\"op\":\"sample\",\"tenant\":\"a\"}\n"
      "{\"op\":\"sample\",\"tenant\":\"a\"}\n");
  std::ostringstream out;
  EXPECT_EQ(server.run(in, out), 0);
  EXPECT_TRUE(server.drain_requested());
  EXPECT_EQ(server.metrics().drains, 1u);

  // Only the first post-flag line was consumed; its reply was still
  // emitted (drain finishes in-flight work, it does not drop it).
  std::size_t replies = 0;
  std::istringstream lines(out.str());
  std::string line;
  while (std::getline(lines, line)) {
    if (!line.empty()) ++replies;
  }
  EXPECT_EQ(replies, 1u);
  EXPECT_TRUE(fs::exists(o.state_dir + "/flight.trace.json"));
  EXPECT_TRUE(fs::exists(o.state_dir + "/manifest.snap"));
}

#ifndef _WIN32
// Full SIGTERM lifecycle against the real binary: acknowledged work must
// survive the drain, and the daemon must exit 0 on its own.
TEST(ServeDrainLifecycleTest, SigtermDrainsCheckpointsAndExitsZero) {
  const fs::path dir =
      fs::temp_directory_path() / "cig-serve-sigterm-drain";
  fs::remove_all(dir);
  fs::create_directories(dir / "state");

  int to_child[2];
  int from_child[2];
  ASSERT_EQ(::pipe(to_child), 0);
  ASSERT_EQ(::pipe(from_child), 0);
  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    ::dup2(to_child[0], STDIN_FILENO);
    ::dup2(from_child[1], STDOUT_FILENO);
    ::close(to_child[0]);
    ::close(to_child[1]);
    ::close(from_child[0]);
    ::close(from_child[1]);
    const std::string state = (dir / "state").string();
    ::execl(CIGTOOL_PATH, CIGTOOL_PATH, "serve", "--state-dir",
            state.c_str(), "--batch-max", "1", "--cache-dir",
            shared_cache_dir().c_str(), static_cast<char*>(nullptr));
    ::_exit(127);
  }
  ::close(to_child[0]);
  ::close(from_child[1]);

  const std::string script =
      "{\"op\":\"hello\",\"tenant\":\"a\",\"board\":\"tx2\"}\n"
      "{\"op\":\"sample\",\"tenant\":\"a\"}\n"
      "{\"op\":\"checkpoint\"}\n";
  ASSERT_EQ(::write(to_child[1], script.data(), script.size()),
            static_cast<ssize_t>(script.size()));

  // batch-max 1 flushes per line: wait for all three acknowledgements so
  // the work is definitely acknowledged before the signal.
  std::string acked;
  char buf[4096];
  while (std::count(acked.begin(), acked.end(), '\n') < 3) {
    const ssize_t n = ::read(from_child[0], buf, sizeof(buf));
    ASSERT_GT(n, 0) << "daemon closed its reply stream early";
    acked.append(buf, static_cast<std::size_t>(n));
  }

  ASSERT_EQ(::kill(pid, SIGTERM), 0);
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  EXPECT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);
  ::close(to_child[1]);
  ::close(from_child[0]);

  // The acknowledged tenant survived the drain on disk.
  EXPECT_TRUE(fs::exists(dir / "state" / "manifest.snap"));
  EXPECT_TRUE(fs::exists(dir / "state" / "flight.trace.json"));
  bool tenant_checkpoint = false;
  for (const auto& entry :
       fs::recursive_directory_iterator(dir / "state" / "tenants")) {
    if (entry.is_regular_file() &&
        entry.path().extension().string() == ".snap") {
      tenant_checkpoint = true;
    }
  }
  EXPECT_TRUE(tenant_checkpoint);
  fs::remove_all(dir);
}
#endif

// ---------------------------------------------------------------------------
// Serve-layer chaos scenarios.

TEST(SessionFaultInjectorTest, MutationsAreDeterministicPerSeed) {
  std::vector<std::string> lines;
  for (int i = 0; i < 40; ++i) {
    lines.push_back("{\"op\":\"sample\",\"tenant\":\"t\"}");
  }
  const std::vector<fault::SessionFaultSpec> specs = {
      {fault::SessionFaultKind::GarbageLine, 0.3, 0, 0, UINT64_MAX},
      {fault::SessionFaultKind::TruncatedLine, 0.3, 0.4, 0, UINT64_MAX},
      {fault::SessionFaultKind::MidBatchDisconnect, 0.1, 0, 0, UINT64_MAX},
  };
  fault::SessionFaultInjector a(specs, 7);
  fault::SessionFaultInjector b(specs, 7);
  fault::SessionFaultInjector c(specs, 8);
  const auto sa = a.mutate(lines).sessions;
  const auto sb = b.mutate(lines).sessions;
  const auto sc = c.mutate(lines).sessions;
  EXPECT_EQ(sa, sb);
  EXPECT_NE(sa, sc);
}

class ServeChaosTest : public ::testing::Test {
 protected:
  ServeChaosOptions chaos_options(int jobs = 1) {
    ServeChaosOptions o;
    o.cache_dir = shared_cache_dir();
    o.jobs = jobs;
    return o;
  }
};

TEST_F(ServeChaosTest, EveryScenarioMeetsItsSlo) {
  for (const fault::ServeScenario& scenario : fault::serve_scenarios()) {
    const ServeChaosResult result =
        run_serve_chaos(scenario, chaos_options());
    EXPECT_TRUE(result.passed)
        << scenario.name << ": "
        << (result.violations.empty() ? "?" : result.violations.front());
    EXPECT_EQ(result.replies, result.requests) << scenario.name;
    EXPECT_FALSE(result.torn) << scenario.name;
  }
}

TEST_F(ServeChaosTest, FloodScenarioActuallySheds) {
  const ServeChaosResult result = run_serve_chaos(
      fault::serve_scenario_by_name("serve-flood"), chaos_options());
  EXPECT_GT(result.shed, 0u);
  EXPECT_GT(result.session_metrics.injected_lines, 0u);
}

TEST_F(ServeChaosTest, CellsAreByteIdenticalAcrossJobs) {
  const fault::ServeScenario& scenario =
      fault::serve_scenario_by_name("serve-storm");
  const std::string serial =
      run_serve_chaos(scenario, chaos_options(1)).to_json().dump(2);
  const std::string parallel =
      run_serve_chaos(scenario, chaos_options(4)).to_json().dump(2);
  EXPECT_EQ(serial, parallel);
}

TEST(ServeScenarioCatalogueTest, NamesResolveAndUnknownsThrow) {
  EXPECT_FALSE(fault::serve_scenarios().empty());
  for (const auto& scenario : fault::serve_scenarios()) {
    EXPECT_TRUE(fault::is_serve_scenario(scenario.name));
    EXPECT_EQ(fault::serve_scenario_by_name(scenario.name).name,
              scenario.name);
  }
  EXPECT_FALSE(fault::is_serve_scenario("thermal-throttle"));
  EXPECT_THROW(fault::serve_scenario_by_name("serve-nope"),
               std::runtime_error);
}

}  // namespace
}  // namespace cig::serve
