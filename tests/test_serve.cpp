// End-to-end tests for the multi-tenant decision service (serve::Server):
// the request/reply lifecycle, LRU eviction + transparent restore, the
// jobs-invariance contract (byte-identical reply streams and checkpoint
// directories for every worker count), checkpoint/recovery with replay
// dedup, and the serve.* metrics surface.
//
// Board characterization is the only expensive step; every test shares one
// content-addressed ResultCache directory so only the first run per machine
// pays it (cached loads are byte-identical to fresh ones).
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "serve/crashtest.h"
#include "serve/server.h"
#include "serve/tenant.h"
#include "support/json.h"

namespace cig::serve {
namespace {

namespace fs = std::filesystem;

std::string shared_cache_dir() {
  return (fs::temp_directory_path() / "cig-serve-test-cache").string();
}

struct SessionResult {
  int exit = 0;
  std::string out;
  std::vector<Json> replies;
};

SessionResult run_session(Server& server, const std::string& script) {
  std::istringstream in(script);
  std::ostringstream out;
  SessionResult result;
  result.exit = server.run(in, out);
  result.out = out.str();
  std::istringstream lines(result.out);
  std::string line;
  while (std::getline(lines, line)) {
    if (!line.empty()) result.replies.push_back(Json::parse(line));
  }
  return result;
}

SessionResult run_session(const ServeOptions& options,
                          const std::string& script) {
  Server server(options);
  return run_session(server, script);
}

// True for flight-recorder dumps (forensics a recovering daemon drops into
// the state dir); they are not part of the durable-state contract.
bool is_flight_dump(const fs::path& path) {
  const std::string name = path.filename().string();
  const std::string suffix = ".trace.json";
  return name.size() > suffix.size() &&
         name.compare(name.size() - suffix.size(), suffix.size(), suffix) == 0;
}

// Byte map of every regular file under `dir`, keyed by relative path.
// Flight dumps are excluded so recovered state can still compare
// byte-identical to golden.
std::map<std::string, std::string> dir_bytes(const std::string& dir) {
  std::map<std::string, std::string> files;
  if (!fs::exists(dir)) return files;
  for (const auto& entry : fs::recursive_directory_iterator(dir)) {
    if (!entry.is_regular_file()) continue;
    if (is_flight_dump(entry.path())) continue;
    std::ifstream in(entry.path(), std::ios::binary);
    std::ostringstream bytes;
    bytes << in.rdbuf();
    files[fs::relative(entry.path(), dir).string()] = bytes.str();
  }
  return files;
}

class ServeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (fs::temp_directory_path() /
            ("cig-serve-" + std::string(::testing::UnitTest::GetInstance()
                                            ->current_test_info()
                                            ->name())))
               .string();
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  ServeOptions options(const std::string& state_subdir = "") {
    ServeOptions o;
    o.cache_dir = shared_cache_dir();
    if (!state_subdir.empty()) o.state_dir = dir_ + "/" + state_subdir;
    return o;
  }

  std::string dir_;
};

TEST_F(ServeTest, LifecycleRoundTrip) {
  const std::string script =
      "{\"op\":\"hello\",\"tenant\":\"a\",\"board\":\"tx2\"}\n"
      "{\"op\":\"sample\",\"tenant\":\"a\",\"span\":256}\n"
      "{\"op\":\"sample\",\"tenant\":\"a\",\"heavy\":true,\"span\":256}\n"
      "{\"op\":\"decide\",\"tenant\":\"a\"}\n"
      "{\"op\":\"explain\",\"tenant\":\"a\"}\n"
      "{\"op\":\"stats\",\"tenant\":\"a\"}\n"
      "{\"op\":\"stats\"}\n"
      "{\"op\":\"metrics\"}\n"
      "{\"op\":\"shutdown\"}\n";
  const SessionResult r = run_session(options(), script);
  EXPECT_EQ(r.exit, 0);
  ASSERT_EQ(r.replies.size(), 9u);

  const Json& hello = r.replies[0];
  EXPECT_TRUE(hello.bool_or("ok", false));
  EXPECT_EQ(hello.string_or("tenant", ""), "a");
  EXPECT_FALSE(hello.bool_or("existing", true));

  const Json& sample1 = r.replies[1];
  EXPECT_TRUE(sample1.bool_or("ok", false));
  EXPECT_EQ(sample1.number_or("n", 0), 1);
  EXPECT_FALSE(sample1.string_or("model", "").empty());
  EXPECT_GT(sample1.number_or("latency_us", 0), 0);

  EXPECT_EQ(r.replies[2].number_or("n", 0), 2);

  const Json& decide = r.replies[3];
  EXPECT_TRUE(decide.bool_or("ok", false));
  EXPECT_TRUE(decide.contains("suggested"));
  EXPECT_GE(decide.number_or("estimated_speedup", 0), 0);

  const Json& explain = r.replies[4];
  EXPECT_TRUE(explain.bool_or("ok", false));
  EXPECT_TRUE(explain.contains("rationale"));
  EXPECT_TRUE(explain.contains("explanation"));

  const Json& tstats = r.replies[5];
  EXPECT_EQ(tstats.number_or("samples", 0), 2);
  EXPECT_EQ(tstats.string_or("board", ""), "Jetson TX2");
  EXPECT_EQ(tstats.at("latency_us").number_or("count", 0), 2);

  const Json& gstats = r.replies[6];
  EXPECT_EQ(gstats.at("tenants").number_or("known", 0), 1);
  EXPECT_EQ(gstats.at("counters").number_or("serve.samples", 0), 2);

  const Json& metrics = r.replies[7];
  EXPECT_NE(metrics.string_or("text", "").find("cig_serve_requests"),
            std::string::npos);

  EXPECT_TRUE(r.replies[8].bool_or("ok", false));
}

TEST_F(ServeTest, TenantErrorsAreStructured) {
  const std::string script =
      "{\"op\":\"sample\",\"tenant\":\"ghost\"}\n"
      "{\"op\":\"hello\",\"tenant\":\"a\",\"board\":\"tx2\"}\n"
      "{\"op\":\"decide\",\"tenant\":\"a\"}\n"
      "{\"op\":\"hello\",\"tenant\":\"a\",\"board\":\"xavier\"}\n"
      "{\"op\":\"hello\",\"tenant\":\"b\",\"board\":\"no-such-board\"}\n"
      "{\"op\":\"shutdown\"}\n";
  const SessionResult r = run_session(options(), script);
  EXPECT_EQ(r.exit, 0);
  ASSERT_EQ(r.replies.size(), 6u);
  EXPECT_EQ(r.replies[0].string_or("error", ""), "unknown-tenant");
  EXPECT_TRUE(r.replies[1].bool_or("ok", false));
  EXPECT_EQ(r.replies[2].string_or("error", ""), "no-samples");
  EXPECT_EQ(r.replies[3].string_or("error", ""), "bad-request");
  EXPECT_EQ(r.replies[4].string_or("error", ""), "bad-request");
}

TEST_F(ServeTest, RepliesAndStateIdenticalAcrossJobs) {
  ScriptOptions script_options;
  script_options.tenants = 6;
  script_options.samples_per_tenant = 4;
  const std::string script = scripted_session(script_options);

  ServeOptions serial = options("state-serial");
  serial.jobs = 1;
  serial.resident_budget = 3;  // evictions + restores on both paths
  serial.batch_max = 8;
  const SessionResult a = run_session(serial, script);

  ServeOptions parallel = options("state-parallel");
  parallel.jobs = 8;
  parallel.resident_budget = 3;
  parallel.batch_max = 8;
  const SessionResult b = run_session(parallel, script);

  EXPECT_EQ(a.exit, 0);
  EXPECT_EQ(b.exit, 0);
  EXPECT_EQ(a.out, b.out);  // byte-identical reply streams
  EXPECT_EQ(dir_bytes(serial.state_dir), dir_bytes(parallel.state_dir));
}

TEST_F(ServeTest, EvictionRestoreMatchesAllResident) {
  ScriptOptions script_options;
  script_options.tenants = 5;
  script_options.samples_per_tenant = 4;
  // No explicit checkpoint op: its "written" count legitimately differs
  // between budgets (eviction already checkpointed the tight run's
  // tenants), and this test compares reply streams byte for byte.
  script_options.checkpoint = false;
  const std::string script = scripted_session(script_options);

  ServeOptions tight = options("state-tight");
  tight.resident_budget = 1;
  tight.batch_max = 4;
  Server tight_server(tight);
  const SessionResult a = run_session(tight_server, script);
  EXPECT_EQ(a.exit, 0);
  EXPECT_GT(tight_server.metrics().evictions, 0u);
  EXPECT_GT(tight_server.metrics().restores, 0u);

  ServeOptions roomy = options("state-roomy");
  roomy.resident_budget = 64;
  roomy.batch_max = 4;
  Server roomy_server(roomy);
  const SessionResult b = run_session(roomy_server, script);
  EXPECT_EQ(b.exit, 0);
  EXPECT_EQ(roomy_server.metrics().evictions, 0u);

  // Eviction/restore is transparent: identical replies, identical durable
  // state, on both sides of the budget.
  EXPECT_EQ(a.out, b.out);
  EXPECT_EQ(dir_bytes(tight.state_dir), dir_bytes(roomy.state_dir));
}

TEST_F(ServeTest, InMemoryEvictionWithoutStateDir) {
  ScriptOptions script_options;
  script_options.tenants = 4;
  script_options.samples_per_tenant = 3;
  script_options.checkpoint = false;
  const std::string script = scripted_session(script_options);

  ServeOptions blob = options();  // no state dir: in-memory checkpoints
  blob.resident_budget = 1;
  blob.batch_max = 4;
  Server blob_server(blob);
  const SessionResult a = run_session(blob_server, script);
  EXPECT_EQ(a.exit, 0);
  EXPECT_GT(blob_server.metrics().evictions, 0u);
  EXPECT_GT(blob_server.metrics().restores, 0u);

  ServeOptions durable = options("state");
  durable.resident_budget = 1;
  durable.batch_max = 4;
  const SessionResult b = run_session(durable, script);

  // The reply stream must not depend on where checkpoints live.
  EXPECT_EQ(a.out, b.out);
}

TEST_F(ServeTest, RecoveryReplaysWithoutReexecution) {
  ScriptOptions script_options;
  script_options.tenants = 3;
  script_options.samples_per_tenant = 3;
  const std::string script = scripted_session(script_options);

  ServeOptions o = options("state");
  const SessionResult first = run_session(o, script);
  EXPECT_EQ(first.exit, 0);
  const auto golden = dir_bytes(o.state_dir);
  ASSERT_FALSE(golden.empty());

  // Restart over the same state dir and re-feed the whole stream (the
  // at-least-once client contract). Every sample is already in the
  // recovered checkpoints, so all of them are acknowledged as replayed and
  // the durable state stays byte-identical.
  Server recovered(o);
  EXPECT_GT(recovered.metrics().tenants_recovered, 0u);
  const SessionResult second = run_session(recovered, script);
  EXPECT_EQ(second.exit, 0);
  EXPECT_EQ(recovered.metrics().samples, 0u);
  EXPECT_GT(recovered.metrics().replayed_samples, 0u);
  bool saw_replayed = false;
  for (const Json& reply : second.replies) {
    if (reply.bool_or("replayed", false)) saw_replayed = true;
    EXPECT_TRUE(reply.bool_or("ok", false)) << reply.dump();
  }
  EXPECT_TRUE(saw_replayed);
  EXPECT_EQ(dir_bytes(o.state_dir), golden);

  // The recovering daemon leaves a flight-recorder dump behind for
  // post-mortem use, and it must parse as a Chrome trace.
  const fs::path dump = fs::path(o.state_dir) / "flight-recovery.trace.json";
  ASSERT_TRUE(fs::exists(dump));
  std::ifstream dump_in(dump);
  std::ostringstream dump_bytes;
  dump_bytes << dump_in.rdbuf();
  const Json doc = Json::parse(dump_bytes.str());
  ASSERT_TRUE(doc.contains("traceEvents"));
  EXPECT_FALSE(doc.at("traceEvents").as_array().empty());
}

TEST_F(ServeTest, RecoveredSessionContinuesPastReplay) {
  const std::string first_script =
      "{\"op\":\"hello\",\"tenant\":\"a\",\"board\":\"tx2\"}\n"
      "{\"op\":\"sample\",\"tenant\":\"a\",\"span\":256}\n"
      "{\"op\":\"sample\",\"tenant\":\"a\",\"span\":256,\"heavy\":true}\n"
      "{\"op\":\"shutdown\"}\n";
  ServeOptions o = options("state");
  EXPECT_EQ(run_session(o, first_script).exit, 0);

  // Re-feed the old stream plus one genuinely new sample: the old samples
  // replay, the new one executes and advances the tenant.
  const std::string second_script =
      "{\"op\":\"hello\",\"tenant\":\"a\",\"board\":\"tx2\"}\n"
      "{\"op\":\"sample\",\"tenant\":\"a\",\"span\":256}\n"
      "{\"op\":\"sample\",\"tenant\":\"a\",\"span\":256,\"heavy\":true}\n"
      "{\"op\":\"sample\",\"tenant\":\"a\",\"span\":512}\n"
      "{\"op\":\"stats\",\"tenant\":\"a\"}\n"
      "{\"op\":\"shutdown\"}\n";
  Server recovered(o);
  const SessionResult r = run_session(recovered, second_script);
  EXPECT_EQ(r.exit, 0);
  ASSERT_EQ(r.replies.size(), 6u);
  EXPECT_TRUE(r.replies[0].bool_or("existing", false));
  EXPECT_TRUE(r.replies[1].bool_or("replayed", false));
  EXPECT_TRUE(r.replies[2].bool_or("replayed", false));
  EXPECT_FALSE(r.replies[3].bool_or("replayed", false));
  EXPECT_EQ(r.replies[3].number_or("n", 0), 3);
  EXPECT_EQ(r.replies[4].number_or("samples", 0), 3);
}

TEST_F(ServeTest, TenantCheckpointDocRoundTrips) {
  ServeOptions o = options();
  o.resident_budget = 1;
  Server server(o);
  const std::string script =
      "{\"op\":\"hello\",\"tenant\":\"a\",\"board\":\"tx2\"}\n"
      "{\"op\":\"sample\",\"tenant\":\"a\",\"span\":256}\n"
      "{\"op\":\"sample\",\"tenant\":\"a\",\"span\":256,\"heavy\":true}\n"
      "{\"op\":\"hello\",\"tenant\":\"b\",\"board\":\"tx2\"}\n"  // evicts a
      "{\"op\":\"stats\",\"tenant\":\"a\"}\n"  // restores a
      "{\"op\":\"shutdown\"}\n";
  const SessionResult r = run_session(server, script);
  EXPECT_EQ(r.exit, 0);
  // The restored tenant reports the full pre-eviction history.
  EXPECT_EQ(r.replies[4].number_or("samples", 0), 2);
  EXPECT_EQ(r.replies[4].at("latency_us").number_or("count", 0), 2);
}

TEST_F(ServeTest, MetricsFileExportedAtomically) {
  ServeOptions o = options("state");
  o.metrics_out = dir_ + "/serve.prom";
  o.metrics_every = 2;
  const std::string script =
      "{\"op\":\"hello\",\"tenant\":\"a\",\"board\":\"tx2\"}\n"
      "{\"op\":\"sample\",\"tenant\":\"a\",\"span\":256}\n"
      "{\"op\":\"sample\",\"tenant\":\"a\",\"span\":256}\n"
      "{\"op\":\"shutdown\"}\n";
  const SessionResult r = run_session(o, script);
  EXPECT_EQ(r.exit, 0);
  ASSERT_TRUE(fs::exists(o.metrics_out));
  std::ifstream in(o.metrics_out);
  std::ostringstream text;
  text << in.rdbuf();
  EXPECT_NE(text.str().find("cig_serve_requests 4"), std::string::npos);
  EXPECT_NE(text.str().find("cig_serve_samples 2"), std::string::npos);
  EXPECT_FALSE(fs::exists(o.metrics_out + ".tmp"));
}

TEST_F(ServeTest, CountersCoverEvictionLifecycle) {
  ScriptOptions script_options;
  script_options.tenants = 4;
  script_options.samples_per_tenant = 2;
  ServeOptions o = options("state");
  o.resident_budget = 2;
  o.batch_max = 4;
  Server server(o);
  const SessionResult r = run_session(server, scripted_session(script_options));
  EXPECT_EQ(r.exit, 0);

  const sim::StatRegistry reg = server.registry();
  EXPECT_EQ(reg.get("serve.tenants.known"), 4);
  EXPECT_GT(reg.get("serve.evictions"), 0);
  EXPECT_GT(reg.get("serve.checkpoints.written"), 0);
  EXPECT_GT(reg.get("serve.manifest.publishes"), 0);
  EXPECT_EQ(reg.get("serve.samples"), 8);
  EXPECT_EQ(reg.get("serve.errors"), 0);
  EXPECT_LE(reg.get("serve.tenants.resident"), 2);
}

// --- memory-pressure governor in the serve plane -----------------------------

TEST_F(ServeTest, ByteBudgetEvictsUnderPressure) {
  ScriptOptions script_options;
  script_options.tenants = 4;
  script_options.samples_per_tenant = 4;
  const std::string script = scripted_session(script_options);

  // 6144 B holds one default-span tenant resident (ZC 4096 B) but not two:
  // the governor, not the count budget, does the evicting.
  ServeOptions o = options("state");
  o.mem_budget = 6144;
  o.batch_max = 6;
  Server server(o);
  const SessionResult r = run_session(server, script);
  EXPECT_EQ(r.exit, 0);
  EXPECT_GT(server.metrics().pressure_evictions, 0u);
  EXPECT_GT(server.metrics().restores, 0u);
  EXPECT_LE(server.resident_footprint(), o.mem_budget);
  EXPECT_GT(server.footprint_peak(), 0u);
  EXPECT_TRUE(server.governor().enabled());

  const sim::StatRegistry reg = server.registry();
  EXPECT_EQ(reg.get("serve.evictions.pressure"),
            static_cast<double>(server.metrics().pressure_evictions));
  EXPECT_EQ(reg.get("serve.mem.budget_bytes"), 6144);
  EXPECT_GT(reg.get("serve.mem.footprint_peak_bytes"), 0);
}

TEST_F(ServeTest, CountAndByteBudgetsCompose) {
  ScriptOptions script_options;
  script_options.tenants = 5;
  script_options.samples_per_tenant = 3;
  script_options.checkpoint = false;
  const std::string script = scripted_session(script_options);

  // Both budgets armed: the count loop trims to 3 residents, then the byte
  // loop digs below that whenever their summed footprint breaks 8 KiB.
  ServeOptions both = options("state-both");
  both.resident_budget = 3;
  both.mem_budget = 8192;
  both.batch_max = 4;
  Server both_server(both);
  const SessionResult a = run_session(both_server, script);
  EXPECT_EQ(a.exit, 0);
  EXPECT_GT(both_server.metrics().evictions, 0u);
  EXPECT_GT(both_server.metrics().pressure_evictions, 0u);
  EXPECT_LE(both_server.resident_footprint(), both.mem_budget);

  // Eviction cause is invisible to clients: a roomy run answers the same.
  ServeOptions roomy = options("state-roomy");
  roomy.batch_max = 4;
  const SessionResult b = run_session(roomy, script);
  EXPECT_EQ(a.out, b.out);
}

TEST_F(ServeTest, ZeroByteBudgetDisablesTheGovernor) {
  ScriptOptions script_options;
  script_options.tenants = 3;
  script_options.samples_per_tenant = 2;
  ServeOptions o = options("state");  // mem_budget defaults to 0
  Server server(o);
  const SessionResult r = run_session(server, scripted_session(script_options));
  EXPECT_EQ(r.exit, 0);
  EXPECT_FALSE(server.governor().enabled());
  EXPECT_EQ(server.metrics().pressure_evictions, 0u);
  EXPECT_EQ(server.metrics().mem_exhausted, 0u);
  // The footprint surface stays live even without a budget.
  EXPECT_GT(server.footprint_peak(), 0u);
  EXPECT_FALSE(server.registry().contains("serve.mem.budget_bytes"));
}

TEST_F(ServeTest, BudgetSmallerThanOneTenantRefusesRestore) {
  // 2 KiB cannot hold even one default-span checkpoint (ZC 4096 B): after
  // the first eviction every touch must be refused with a structured
  // mem-exhausted error echoing tenant and trace id — never a crash.
  ServeOptions o = options("state");
  o.mem_budget = 2048;
  o.batch_max = 4;
  Server server(o);
  const std::string script =
      "{\"op\":\"hello\",\"tenant\":\"a\",\"board\":\"tx2\"}\n"
      "{\"op\":\"hello\",\"tenant\":\"b\",\"board\":\"tx2\"}\n"
      "{\"op\":\"sample\",\"tenant\":\"a\"}\n"
      "{\"op\":\"sample\",\"tenant\":\"b\"}\n"
      "{\"op\":\"sample\",\"tenant\":\"a\",\"trace_id\":\"t-abc\"}\n"
      "{\"op\":\"decide\",\"tenant\":\"b\"}\n"
      "{\"op\":\"shutdown\"}\n";
  const SessionResult r = run_session(server, script);
  EXPECT_EQ(r.exit, 0);
  EXPECT_GT(server.metrics().mem_exhausted, 0u);

  bool saw_refusal = false;
  for (const auto& reply : r.replies) {
    if (reply.string_or("error", "") != "mem-exhausted") continue;
    saw_refusal = true;
    EXPECT_FALSE(reply.string_or("tenant", "").empty());
    const std::string detail = reply.string_or("detail", "");
    EXPECT_NE(detail.find("checkpoint needs"), std::string::npos);
    EXPECT_NE(detail.find("budget"), std::string::npos);
  }
  EXPECT_TRUE(saw_refusal);

  // The client-supplied trace id rides the refusal like any error reply.
  bool traced_refusal = false;
  for (const auto& reply : r.replies) {
    if (reply.string_or("error", "") == "mem-exhausted" &&
        reply.string_or("trace_id", "") == "t-abc") {
      traced_refusal = true;
    }
  }
  EXPECT_TRUE(traced_refusal);
}

TEST_F(ServeTest, PressureRunsAreJobsInvariant) {
  ScriptOptions script_options;
  script_options.tenants = 5;
  script_options.samples_per_tenant = 4;
  const std::string script = scripted_session(script_options);

  ServeOptions serial = options("state-serial");
  serial.mem_budget = 6144;
  serial.batch_max = 6;
  serial.jobs = 1;
  const SessionResult a = run_session(serial, script);

  ServeOptions wide = options("state-wide");
  wide.mem_budget = 6144;
  wide.batch_max = 6;
  wide.jobs = 4;
  const SessionResult b = run_session(wide, script);

  EXPECT_EQ(a.exit, 0);
  EXPECT_EQ(b.exit, 0);
  EXPECT_EQ(a.out, b.out);
  EXPECT_EQ(dir_bytes(serial.state_dir), dir_bytes(wide.state_dir));
}

TEST_F(ServeTest, ManifestCarriesCheckpointFootprints) {
  ServeOptions o = options("state");
  o.mem_budget = 6144;
  o.batch_max = 4;
  ScriptOptions script_options;
  script_options.tenants = 3;
  script_options.samples_per_tenant = 2;
  Server server(o);
  const SessionResult r = run_session(server, scripted_session(script_options));
  EXPECT_EQ(r.exit, 0);

  std::ifstream in(o.state_dir + "/manifest.snap");
  ASSERT_TRUE(in.good());
  std::ostringstream bytes;
  bytes << in.rdbuf();
  const std::string manifest = bytes.str();
  // Every checkpointed tenant's entry records its resident cost, so a
  // recovering daemon can refuse over-budget restores before paying for
  // the rebuild.
  EXPECT_NE(manifest.find("\"footprint\""), std::string::npos);
}

}  // namespace
}  // namespace cig::serve
