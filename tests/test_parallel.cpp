// Tests for the deterministic worker pool (support/parallel.h): results in
// index order regardless of jobs, lowest-index exception propagation, the
// serial jobs=1 path, CIG_JOBS resolution and the pool.* counters.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "support/parallel.h"

namespace cig::support {
namespace {

TEST(Parallel, MapPreservesItemOrderSerial) {
  const std::vector<int> items = {5, 3, 9, 1, 7};
  const auto doubled =
      parallel_map(items, /*jobs=*/1, [](int x) { return x * 2; });
  EXPECT_EQ(doubled, (std::vector<int>{10, 6, 18, 2, 14}));
}

TEST(Parallel, MapIdenticalAcrossJobCounts) {
  std::vector<int> items(257);
  std::iota(items.begin(), items.end(), 0);
  const auto fn = [](int x) { return x * x - 3 * x; };
  const auto serial = parallel_map(items, 1, fn);
  for (int jobs : {2, 4, 8}) {
    EXPECT_EQ(parallel_map(items, jobs, fn), serial) << "jobs=" << jobs;
  }
}

TEST(Parallel, ForIndexCoversEveryIndexExactlyOnce) {
  constexpr std::size_t kCount = 1000;
  std::vector<std::atomic<int>> executed(kCount);
  parallel_for_index(kCount, 8,
                     [&](std::size_t i) { executed[i].fetch_add(1); });
  for (std::size_t i = 0; i < kCount; ++i) {
    EXPECT_EQ(executed[i].load(), 1) << "index " << i;
  }
}

TEST(Parallel, SerialPathRunsOnCallingThread) {
  const auto caller = std::this_thread::get_id();
  parallel_for_index(4, 1, [&](std::size_t) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
  });
}

TEST(Parallel, LowestFailingIndexWins) {
  // Several indices throw; the rethrown exception must always come from the
  // lowest one, independent of worker scheduling.
  for (int jobs : {1, 2, 8}) {
    try {
      parallel_for_index(100, jobs, [](std::size_t i) {
        if (i % 7 == 3) {  // first failing index is 3
          throw std::runtime_error("index " + std::to_string(i));
        }
      });
      FAIL() << "expected an exception (jobs=" << jobs << ")";
    } catch (const std::runtime_error& error) {
      EXPECT_STREQ(error.what(), "index 3") << "jobs=" << jobs;
    }
  }
}

TEST(Parallel, EmptyBatchIsNoop) {
  parallel_for_index(0, 8, [](std::size_t) { FAIL() << "must not run"; });
  const auto empty =
      parallel_map(std::vector<int>{}, 8, [](int x) { return x; });
  EXPECT_TRUE(empty.empty());
}

TEST(Parallel, ResolveJobsPrecedence) {
  unsetenv("CIG_JOBS");
  EXPECT_EQ(resolve_jobs(3), 3);        // explicit request wins
  EXPECT_EQ(env_jobs(), 0);             // unset -> 0
  EXPECT_EQ(resolve_jobs(0), hardware_jobs());

  setenv("CIG_JOBS", "5", 1);
  EXPECT_EQ(env_jobs(), 5);
  EXPECT_EQ(resolve_jobs(0), 5);        // env fills in for "unspecified"
  EXPECT_EQ(resolve_jobs(2), 2);        // but never overrides a request

  setenv("CIG_JOBS", "not-a-number", 1);
  EXPECT_EQ(env_jobs(), 0);
  setenv("CIG_JOBS", "-4", 1);
  EXPECT_EQ(env_jobs(), 0);
  unsetenv("CIG_JOBS");
}

TEST(Parallel, HardwareJobsPositive) { EXPECT_GE(hardware_jobs(), 1); }

// --jobs parsing is strict: CLI inputs fail loudly with the value named,
// unlike the env override which only warns.
TEST(Parallel, ParseJobsAcceptsTheValidRange) {
  EXPECT_EQ(parse_jobs("1"), 1);
  EXPECT_EQ(parse_jobs("8"), 8);
  EXPECT_EQ(parse_jobs("4096"), 4096);
}

TEST(Parallel, ParseJobsRejectsGarbageWithTheValueNamed) {
  const auto message_of = [](const std::string& text) -> std::string {
    try {
      parse_jobs(text);
    } catch (const std::invalid_argument& error) {
      return error.what();
    }
    ADD_FAILURE() << "expected parse_jobs to reject '" << text << "'";
    return "";
  };
  EXPECT_NE(message_of("0").find("'0'"), std::string::npos);
  EXPECT_NE(message_of("0").find("must be >= 1"), std::string::npos);
  EXPECT_NE(message_of("-4").find("must be >= 1"), std::string::npos);
  EXPECT_NE(message_of("banana").find("not an integer"), std::string::npos);
  EXPECT_NE(message_of("3x").find("not an integer"), std::string::npos);
  EXPECT_NE(message_of("").find("not an integer"), std::string::npos);
  EXPECT_NE(message_of("5000").find("4096"), std::string::npos);
}

TEST(Parallel, PoolCountersTrackBatches) {
  reset_pool_counters();
  parallel_for_index(10, 4, [](std::size_t) {});
  parallel_for_index(25, 2, [](std::size_t) {});
  const auto counters = pool_counters();
  EXPECT_EQ(counters.tasks, 35u);
  EXPECT_EQ(counters.batches, 2u);
  EXPECT_EQ(counters.peak_queue_depth, 25u);
}

}  // namespace
}  // namespace cig::support
