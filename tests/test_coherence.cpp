// Tests for the coherence machinery: flush engine, I/O-coherence port,
// page-migration engine, capability semantics.
#include <gtest/gtest.h>

#include "coherence/flush.h"
#include "coherence/io_coherence.h"
#include "coherence/model.h"
#include "coherence/page_migration.h"

namespace cig::coherence {
namespace {

// --- capability model ------------------------------------------------------------

TEST(Capability, Names) {
  EXPECT_STREQ(capability_name(Capability::SwFlush), "sw-flush");
  EXPECT_STREQ(capability_name(Capability::HwIoCoherent), "hw-io-coherent");
}

TEST(Capability, ZeroCopyEffectSwFlushDisablesBoth) {
  const auto effect = zero_copy_effect(Capability::SwFlush);
  EXPECT_FALSE(effect.cpu_llc_enabled);
  EXPECT_FALSE(effect.gpu_llc_enabled);
}

TEST(Capability, ZeroCopyEffectIoCoherentKeepsCpuLlc) {
  const auto effect = zero_copy_effect(Capability::HwIoCoherent);
  EXPECT_TRUE(effect.cpu_llc_enabled);
  EXPECT_FALSE(effect.gpu_llc_enabled);
}

// --- flush engine ----------------------------------------------------------------

class FlushTest : public ::testing::Test {
 protected:
  FlushTest()
      : cache_(mem::make_geometry(KiB(4), 64, 2), mem::Replacement::Lru),
        engine_(FlushCosts{.op_overhead = microsec(2),
                           .writeback_bw = GBps(10),
                           .per_line = nanosec(2)}) {}
  mem::SetAssocCache cache_;
  FlushEngine engine_;
};

TEST_F(FlushTest, CostGrowsWithDirtyLines) {
  const Seconds none = engine_.cost_for(0, 64);
  const Seconds some = engine_.cost_for(100, 64);
  const Seconds more = engine_.cost_for(1000, 64);
  EXPECT_DOUBLE_EQ(none, microsec(2));  // just the op overhead
  EXPECT_LT(none, some);
  EXPECT_LT(some, more);
}

TEST_F(FlushTest, CostIsLinearInLines) {
  const Seconds base = engine_.cost_for(0, 64);
  const Seconds one = engine_.cost_for(1, 64) - base;
  const Seconds hundred = engine_.cost_for(100, 64) - base;
  EXPECT_NEAR(hundred, one * 100, 1e-12);
}

TEST_F(FlushTest, FlushWritesBackDirtyLines) {
  cache_.access(0x00, mem::AccessKind::Write);
  cache_.access(0x40, mem::AccessKind::Write);
  cache_.access(0x80, mem::AccessKind::Read);
  const auto result = engine_.flush(cache_);
  EXPECT_EQ(result.dirty_lines, 2u);
  EXPECT_EQ(result.bytes_written, 128u);
  EXPECT_GT(result.time, 0.0);
  EXPECT_EQ(cache_.dirty_lines(), 0u);
  EXPECT_EQ(cache_.valid_lines(), 3u);  // clean, not invalidate
}

TEST_F(FlushTest, InvalidateDropsLines) {
  cache_.access(0x00, mem::AccessKind::Write);
  const auto result = engine_.invalidate(cache_);
  EXPECT_EQ(result.dirty_lines, 1u);
  EXPECT_EQ(cache_.valid_lines(), 0u);
}

TEST_F(FlushTest, RangedOpsTouchOnlyRange) {
  cache_.access(0x000, mem::AccessKind::Write);
  cache_.access(0x800, mem::AccessKind::Write);
  const auto inval = engine_.invalidate_range(cache_, 0x000, 0x40);
  EXPECT_EQ(inval.dirty_lines, 1u);
  EXPECT_TRUE(cache_.probe(0x800));
  const auto clean = engine_.clean_range(cache_, 0x800, 0x40);
  EXPECT_EQ(clean.dirty_lines, 1u);
  EXPECT_TRUE(cache_.probe(0x800));
  EXPECT_EQ(cache_.dirty_lines(), 0u);
}

// --- I/O coherence port -----------------------------------------------------------

TEST(IoPort, SnoopHitWhenLinePresent) {
  mem::SetAssocCache llc(mem::make_geometry(KiB(4), 64, 2),
                         mem::Replacement::Lru);
  IoCoherencePort port(IoCoherenceConfig{});
  llc.access(0x100, mem::AccessKind::Write);
  EXPECT_TRUE(port.device_access(0x100, 4, mem::AccessKind::Read, &llc));
  EXPECT_FALSE(port.device_access(0x900, 4, mem::AccessKind::Read, &llc));
  EXPECT_EQ(port.counters().snoop_hits, 1u);
  EXPECT_EQ(port.counters().snoop_misses, 1u);
  EXPECT_EQ(port.counters().bytes, 8u);
}

TEST(IoPort, NullTargetAlwaysMisses) {
  IoCoherencePort port(IoCoherenceConfig{});
  EXPECT_FALSE(port.device_access(0x0, 4, mem::AccessKind::Read, nullptr));
  EXPECT_EQ(port.counters().snoop_misses, 1u);
}

TEST(IoPort, TransferTimeMatchesBandwidth) {
  IoCoherencePort port(
      IoCoherenceConfig{.snoop_bandwidth = GBps(32), .snoop_latency = 0});
  EXPECT_NEAR(port.transfer_time(MiB(32)), MiB(32) / 32e9, 1e-12);
}

TEST(IoPort, ResetClearsCounters) {
  IoCoherencePort port(IoCoherenceConfig{});
  port.device_access(0, 4, mem::AccessKind::Read, nullptr);
  port.reset_counters();
  EXPECT_EQ(port.counters().snoop_misses, 0u);
  EXPECT_EQ(port.counters().bytes, 0u);
}

// --- page migration ----------------------------------------------------------------

class MigrationTest : public ::testing::Test {
 protected:
  MigrationTest()
      : engine_(PageMigrationConfig{.page_size = KiB(4),
                                    .fault_latency = microsec(10),
                                    .migration_bw = GBps(10),
                                    .batch_pages = 4}) {}
  PageMigrationEngine engine_;
};

TEST_F(MigrationTest, HostOwnsFreshPages) {
  EXPECT_EQ(engine_.owner_of(0x0), Owner::Host);
  const auto result = engine_.touch_range(Owner::Host, 0, KiB(64));
  EXPECT_EQ(result.pages_migrated, 0u);
  EXPECT_EQ(result.faults, 0u);
  EXPECT_DOUBLE_EQ(result.time, 0.0);
}

TEST_F(MigrationTest, DeviceFirstTouchMigrates) {
  const auto result = engine_.touch_range(Owner::Device, 0, KiB(64));
  EXPECT_EQ(result.pages_touched, 16u);
  EXPECT_EQ(result.pages_migrated, 16u);
  EXPECT_EQ(result.faults, 4u);  // 16 pages / batch of 4
  EXPECT_EQ(result.bytes_moved, KiB(64));
  EXPECT_GT(result.time, 0.0);
  EXPECT_EQ(engine_.owner_of(0x0), Owner::Device);
}

TEST_F(MigrationTest, RepeatedDeviceTouchIsFree) {
  engine_.touch_range(Owner::Device, 0, KiB(64));
  const auto again = engine_.touch_range(Owner::Device, 0, KiB(64));
  EXPECT_EQ(again.pages_migrated, 0u);
  EXPECT_DOUBLE_EQ(again.time, 0.0);
}

TEST_F(MigrationTest, PingPongMigratesBothWays) {
  const auto to_device = engine_.touch_range(Owner::Device, 0, KiB(16));
  const auto to_host = engine_.touch_range(Owner::Host, 0, KiB(16));
  EXPECT_EQ(to_device.pages_migrated, 4u);
  EXPECT_EQ(to_host.pages_migrated, 4u);
}

TEST_F(MigrationTest, PartialOverlapMigratesOnlyForeignPages) {
  engine_.touch_range(Owner::Device, 0, KiB(8));  // pages 0,1
  const auto result = engine_.touch_range(Owner::Host, 0, KiB(16));
  EXPECT_EQ(result.pages_touched, 4u);
  EXPECT_EQ(result.pages_migrated, 2u);
}

TEST_F(MigrationTest, UnalignedRangeCoversStraddledPages) {
  const auto result =
      engine_.touch_range(Owner::Device, KiB(4) - 1, 2);  // straddles 2 pages
  EXPECT_EQ(result.pages_touched, 2u);
}

TEST_F(MigrationTest, ZeroBytesIsNoop) {
  const auto result = engine_.touch_range(Owner::Device, 0, 0);
  EXPECT_EQ(result.pages_touched, 0u);
}

TEST_F(MigrationTest, BatchingReducesFaults) {
  PageMigrationEngine fine(PageMigrationConfig{.page_size = KiB(4),
                                               .fault_latency = microsec(10),
                                               .migration_bw = GBps(10),
                                               .batch_pages = 1});
  const auto batched = engine_.touch_range(Owner::Device, 0, KiB(64));
  const auto unbatched = fine.touch_range(Owner::Device, 0, KiB(64));
  EXPECT_LT(batched.faults, unbatched.faults);
  EXPECT_LT(batched.time, unbatched.time);
}

TEST_F(MigrationTest, NonContiguousRunsFaultSeparately) {
  // Pre-own pages 0..3 and 8..11 on the device; a host sweep over 0..11
  // then has two disjoint runs of foreign pages... actually host touch of
  // the full range sees runs [0..3] and [8..11] separated by host pages.
  engine_.touch_range(Owner::Device, 0, KiB(16));            // pages 0-3
  engine_.touch_range(Owner::Device, KiB(32), KiB(16));      // pages 8-11
  const auto result = engine_.touch_range(Owner::Host, 0, KiB(48));
  EXPECT_EQ(result.pages_migrated, 8u);
  EXPECT_EQ(result.faults, 2u);  // two runs of 4 pages, batch 4
}

TEST_F(MigrationTest, ResetRestoresHostOwnership) {
  engine_.touch_range(Owner::Device, 0, KiB(16));
  engine_.reset();
  EXPECT_EQ(engine_.owner_of(0), Owner::Host);
  EXPECT_EQ(engine_.pages_tracked(), 0u);
}

}  // namespace
}  // namespace cig::coherence
