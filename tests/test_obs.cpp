// Tests for the observability layer: the span tracer (RAII scopes,
// counters, flow arrows), the log-bucket latency histogram, the Prometheus
// snapshot, the extended Chrome-trace export (counter tracks + flows), the
// decision-provenance Explanation round-trip, and the end-to-end replay
// trace the adaptive runtime produces.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <random>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "core/explain.h"
#include "obs/flight.h"
#include "obs/histogram.h"
#include "obs/prometheus.h"
#include "obs/tracer.h"
#include "runtime/replay.h"
#include "sim/trace_export.h"
#include "soc/presets.h"
#include "support/units.h"
#include "workload/builders.h"

namespace cig {
namespace {

// --- tracer ------------------------------------------------------------------

TEST(Tracer, SpanCoversClockAdvance) {
  obs::Tracer tracer;
  tracer.set_now(microsec(10));
  {
    CIG_TRACE_SPAN(tracer, sim::Lane::Cpu, "work");
    tracer.set_now(microsec(35));
  }
  const auto& segments = tracer.timeline().segments();
  ASSERT_EQ(segments.size(), 1u);
  EXPECT_EQ(segments[0].lane, sim::Lane::Cpu);
  EXPECT_DOUBLE_EQ(to_us(segments[0].start), 10.0);
  EXPECT_DOUBLE_EQ(to_us(segments[0].end), 35.0);
  EXPECT_EQ(segments[0].label, "work");
}

TEST(Tracer, SpanCloseIsIdempotentAndClamped) {
  obs::Tracer tracer;
  tracer.set_now(microsec(20));
  auto span = tracer.span(sim::Lane::Gpu, "kernel");
  tracer.set_now(microsec(5));  // clock moved backwards (caller bug)
  span.close();
  span.close();  // second close is a no-op
  const auto& segments = tracer.timeline().segments();
  ASSERT_EQ(segments.size(), 1u);
  // Clamped: a span never ends before it started.
  EXPECT_DOUBLE_EQ(to_us(segments[0].start), 20.0);
  EXPECT_DOUBLE_EQ(to_us(segments[0].end), 20.0);
}

TEST(Tracer, TwoSpansInOneScope) {
  obs::Tracer tracer;
  {
    CIG_TRACE_SPAN(tracer, sim::Lane::Cpu, "outer");
    CIG_TRACE_SPAN(tracer, sim::Lane::Gpu, "inner");
    tracer.set_now(microsec(7));
  }
  ASSERT_EQ(tracer.timeline().segments().size(), 2u);
  EXPECT_DOUBLE_EQ(to_us(tracer.timeline().busy(sim::Lane::Cpu)), 7.0);
  EXPECT_DOUBLE_EQ(to_us(tracer.timeline().busy(sim::Lane::Gpu)), 7.0);
}

TEST(Tracer, CountersStampedAtClock) {
  obs::Tracer tracer;
  tracer.set_now(microsec(3));
  tracer.counter("cache_pct", 42.0);
  tracer.counter_at(microsec(9), "cache_pct", 58.0);
  const auto& counters = tracer.aux().counters;
  ASSERT_EQ(counters.size(), 2u);
  EXPECT_EQ(counters[0].track, "cache_pct");
  EXPECT_DOUBLE_EQ(to_us(counters[0].ts), 3.0);
  EXPECT_DOUBLE_EQ(counters[0].value, 42.0);
  EXPECT_DOUBLE_EQ(to_us(counters[1].ts), 9.0);
}

TEST(Tracer, CountersFromRegistryPrefixView) {
  sim::StatRegistry registry;
  registry.set("runtime.switches", 3);
  registry.set("runtime.samples", 12);
  registry.set("cache.cpu_l1.hits", 99);
  obs::Tracer tracer;
  tracer.counters_from(registry.with_prefix("runtime."));
  ASSERT_EQ(tracer.aux().counters.size(), 2u);
  // Registry order is lexicographic, names preserved in full.
  EXPECT_EQ(tracer.aux().counters[0].track, "runtime.samples");
  EXPECT_EQ(tracer.aux().counters[1].track, "runtime.switches");
}

TEST(Tracer, FlowIdsAreUniqueAndBalanced) {
  obs::Tracer tracer;
  const auto a = tracer.flow_begin(sim::Lane::Ctrl, "switch SC->ZC");
  tracer.set_now(microsec(50));
  const auto b = tracer.flow_begin(sim::Lane::Ctrl, "switch ZC->UM");
  EXPECT_NE(a, b);
  EXPECT_FALSE(tracer.aux().flows_balanced());
  tracer.flow_end(a, sim::Lane::Ctrl, "switch SC->ZC");
  tracer.flow_end(b, sim::Lane::Ctrl, "switch ZC->UM");
  EXPECT_TRUE(tracer.aux().flows_balanced());
}

TEST(Tracer, ClearResetsEverything) {
  obs::Tracer tracer;
  tracer.segment(sim::Lane::Cpu, 0, microsec(1), "x");
  tracer.counter("c", 1);
  tracer.flow_begin(sim::Lane::Ctrl, "f");
  tracer.set_now(microsec(5));
  tracer.clear();
  EXPECT_TRUE(tracer.timeline().segments().empty());
  EXPECT_TRUE(tracer.aux().empty());
  EXPECT_DOUBLE_EQ(tracer.now(), 0.0);
}

// --- trace aux ---------------------------------------------------------------

TEST(TraceAux, AppendShiftsTimestamps) {
  sim::TraceAux base, other;
  other.counters.push_back({"c", microsec(5), 1.0});
  other.flows.push_back({1, sim::Lane::Ctrl, microsec(6), "f", true});
  other.flows.push_back({1, sim::Lane::Ctrl, microsec(8), "f", false});
  base.append(other, microsec(100));
  ASSERT_EQ(base.counters.size(), 1u);
  EXPECT_DOUBLE_EQ(to_us(base.counters[0].ts), 105.0);
  ASSERT_EQ(base.flows.size(), 2u);
  EXPECT_DOUBLE_EQ(to_us(base.flows[0].ts), 106.0);
  EXPECT_TRUE(base.flows_balanced());
}

// --- chrome export with counters and flows -----------------------------------

sim::Timeline ctrl_timeline() {
  sim::Timeline t;
  t.add(sim::Lane::Cpu, microsec(0), microsec(10), "produce");
  t.add(sim::Lane::Ctrl, microsec(10), microsec(12), "switch SC->ZC");
  return t;
}

sim::TraceAux ctrl_aux() {
  sim::TraceAux aux;
  // Deliberately unsorted: the exporter must emit monotone "C" events.
  aux.counters.push_back({"usage_pct", microsec(8), 40.0});
  aux.counters.push_back({"usage_pct", microsec(2), 10.0});
  aux.flows.push_back({7, sim::Lane::Ctrl, microsec(11), "switch", true});
  aux.flows.push_back({7, sim::Lane::Cpu, microsec(14), "switch", false});
  return aux;
}

TEST(TraceExportAux, CounterEventsMonotoneInTs) {
  const auto doc = sim::to_chrome_trace(ctrl_timeline(), ctrl_aux());
  double last_ts = -1;
  int counter_events = 0;
  for (const auto& event : doc.at("traceEvents").as_array()) {
    if (event.at("ph").as_string() != "C") continue;
    ++counter_events;
    EXPECT_EQ(event.at("name").as_string(), "usage_pct");
    EXPECT_GE(event.at("ts").as_number(), last_ts);
    last_ts = event.at("ts").as_number();
    EXPECT_TRUE(event.at("args").at("value").is_number());
  }
  EXPECT_EQ(counter_events, 2);
}

TEST(TraceExportAux, FlowsPairedByIdAndName) {
  const auto doc = sim::to_chrome_trace(ctrl_timeline(), ctrl_aux());
  std::multiset<std::pair<double, std::string>> begins, ends;
  for (const auto& event : doc.at("traceEvents").as_array()) {
    const auto& ph = event.at("ph").as_string();
    if (ph == "s") {
      begins.insert({event.at("id").as_number(),
                     event.at("name").as_string()});
    } else if (ph == "f") {
      // Binding mode "e" attaches the arrow end to the enclosing slice.
      EXPECT_EQ(event.at("bp").as_string(), "e");
      ends.insert({event.at("id").as_number(),
                   event.at("name").as_string()});
    }
  }
  EXPECT_EQ(begins.size(), 1u);
  EXPECT_EQ(begins, ends);
}

TEST(TraceExportAux, LanesStillPresentWithAux) {
  const auto doc = sim::to_chrome_trace(ctrl_timeline(), ctrl_aux());
  std::set<std::string> lane_names;
  for (const auto& event : doc.at("traceEvents").as_array()) {
    if (event.at("ph").as_string() == "M" &&
        event.at("name").as_string() == "thread_name") {
      lane_names.insert(event.at("args").at("name").as_string());
    }
  }
  EXPECT_EQ(lane_names, (std::set<std::string>{"CPU", "GPU", "COPY", "CTRL"}));
}

TEST(TraceExportAux, EmptyAuxMatchesPlainExport) {
  const auto plain = sim::to_chrome_trace(ctrl_timeline());
  const auto with_aux = sim::to_chrome_trace(ctrl_timeline(), sim::TraceAux{});
  EXPECT_EQ(plain.dump(), with_aux.dump());
}

// --- histogram ---------------------------------------------------------------

TEST(Histogram, EmptyIsZeros) {
  obs::Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.percentile(0.5), 0.0);
}

TEST(Histogram, SingleValueIsEveryPercentile) {
  obs::Histogram h;
  h.add(123.0);
  EXPECT_DOUBLE_EQ(h.min(), 123.0);
  EXPECT_DOUBLE_EQ(h.max(), 123.0);
  EXPECT_DOUBLE_EQ(h.mean(), 123.0);
  // Percentiles are clamped to [min, max], so a single sample is exact.
  EXPECT_DOUBLE_EQ(h.percentile(0.0), 123.0);
  EXPECT_DOUBLE_EQ(h.percentile(0.5), 123.0);
  EXPECT_DOUBLE_EQ(h.percentile(1.0), 123.0);
}

TEST(Histogram, PercentilesOfKnownUniformDistribution) {
  obs::Histogram h;
  for (int i = 1; i <= 1000; ++i) h.add(static_cast<double>(i));
  // One bucket ratio of relative error at 24 buckets/decade is ~10%.
  EXPECT_NEAR(h.percentile(0.50), 500.0, 55.0);
  EXPECT_NEAR(h.percentile(0.95), 950.0, 100.0);
  EXPECT_NEAR(h.percentile(0.99), 990.0, 100.0);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 1000.0);
  EXPECT_NEAR(h.mean(), 500.5, 1e-9);
}

TEST(Histogram, PercentilesOfLognormalAgainstExactOrderStatistic) {
  std::mt19937 rng(42);
  std::lognormal_distribution<double> dist(3.0, 1.0);
  obs::Histogram h;
  std::vector<double> values;
  for (int i = 0; i < 5000; ++i) {
    const double v = dist(rng);
    values.push_back(v);
    h.add(v);
  }
  std::sort(values.begin(), values.end());
  for (const double q : {0.5, 0.95, 0.99}) {
    const double exact =
        values[static_cast<std::size_t>(q * (values.size() - 1))];
    EXPECT_NEAR(h.percentile(q), exact, exact * 0.11)
        << "quantile " << q;
  }
}

TEST(Histogram, ClampsOutOfRangeValues) {
  obs::Histogram h(/*floor=*/1.0, /*ceiling=*/100.0);
  h.add(1e-6);
  h.add(1e6);
  EXPECT_EQ(h.count(), 2u);
  // Exact extremes are tracked on the side.
  EXPECT_DOUBLE_EQ(h.min(), 1e-6);
  EXPECT_DOUBLE_EQ(h.max(), 1e6);
  // Percentiles stay within [min, max] even for clamped samples.
  EXPECT_GE(h.percentile(0.5), h.min());
  EXPECT_LE(h.percentile(0.5), h.max());
}

TEST(Histogram, MergeMatchesCombinedAdds) {
  obs::Histogram a, b, combined;
  for (int i = 1; i <= 100; ++i) {
    a.add(i);
    combined.add(i);
  }
  for (int i = 500; i <= 600; ++i) {
    b.add(i);
    combined.add(i);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_DOUBLE_EQ(a.sum(), combined.sum());
  EXPECT_DOUBLE_EQ(a.percentile(0.5), combined.percentile(0.5));
  EXPECT_DOUBLE_EQ(a.max(), combined.max());
}

TEST(Histogram, ExportToRegistry) {
  obs::Histogram h;
  for (int i = 1; i <= 100; ++i) h.add(i);
  sim::StatRegistry registry;
  h.export_to(registry, "runtime.phase_latency_us");
  EXPECT_DOUBLE_EQ(registry.get("runtime.phase_latency_us.count"), 100.0);
  EXPECT_NEAR(registry.get("runtime.phase_latency_us.mean"), 50.5, 1e-9);
  EXPECT_DOUBLE_EQ(registry.get("runtime.phase_latency_us.min"), 1.0);
  EXPECT_DOUBLE_EQ(registry.get("runtime.phase_latency_us.max"), 100.0);
  EXPECT_TRUE(registry.contains("runtime.phase_latency_us.p50"));
  EXPECT_TRUE(registry.contains("runtime.phase_latency_us.p95"));
  EXPECT_TRUE(registry.contains("runtime.phase_latency_us.p99"));
}

// --- prometheus snapshot -----------------------------------------------------

TEST(Prometheus, SanitizesNames) {
  EXPECT_EQ(obs::prometheus_name("runtime.switch_overhead_us"),
            "cig_runtime_switch_overhead_us");
  EXPECT_EQ(obs::prometheus_name("cache usage %"), "cig_cache_usage_pct");
  EXPECT_EQ(obs::prometheus_name("a-b/c"), "cig_a_b_c");
}

TEST(Prometheus, GaugesAndQuantileSummaries) {
  sim::StatRegistry registry;
  registry.set("runtime.switches", 3);
  obs::Histogram h;
  for (int i = 1; i <= 100; ++i) h.add(i);
  h.export_to(registry, "runtime.phase_latency_us");
  const std::string text = obs::to_prometheus(registry);
  EXPECT_NE(text.find("# TYPE cig_runtime_switches gauge"), std::string::npos);
  EXPECT_NE(text.find("cig_runtime_switches 3"), std::string::npos);
  EXPECT_NE(text.find("# TYPE cig_runtime_phase_latency_us summary"),
            std::string::npos);
  EXPECT_NE(text.find("cig_runtime_phase_latency_us{quantile=\"0.5\"}"),
            std::string::npos);
  EXPECT_NE(text.find("cig_runtime_phase_latency_us{quantile=\"0.95\"}"),
            std::string::npos);
  EXPECT_NE(text.find("cig_runtime_phase_latency_us{quantile=\"0.99\"}"),
            std::string::npos);
  // The .p50/.p95/.p99 counters are folded into the summary, not repeated
  // as separate gauges.
  EXPECT_EQ(text.find("cig_runtime_phase_latency_us_p50"), std::string::npos);
  EXPECT_EQ(text.back(), '\n');
}

TEST(Histogram, OverflowBucketPercentilesReachTheTrackedMax) {
  obs::Histogram h;  // default ceiling 1e9
  h.add(5.0);
  h.add(5e12);  // lands in the overflow bucket, max tracked exactly
  EXPECT_DOUBLE_EQ(h.percentile(1.0), 5e12);
  // A quantile inside the overflow bucket interpolates toward the exact
  // max instead of stopping at the bucket edge.
  EXPECT_GT(h.percentile(0.99), 1e9);
  EXPECT_LE(h.percentile(0.99), 5e12);
}

TEST(Histogram, ExactExtremeQuantiles) {
  obs::Histogram h;
  for (int i = 1; i <= 37; ++i) h.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(h.percentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(h.percentile(1.0), 37.0);
  // Quantiles are monotone in q.
  double prev = h.percentile(0.0);
  for (double q = 0.1; q <= 1.0; q += 0.1) {
    const double cur = h.percentile(q);
    EXPECT_GE(cur, prev) << "q=" << q;
    prev = cur;
  }
}

TEST(Histogram, CumulativeBucketsEndAtCount) {
  obs::Histogram h;
  for (int i = 1; i <= 250; ++i) h.add(static_cast<double>(i % 50 + 1));
  const auto buckets = h.cumulative_buckets();
  ASSERT_FALSE(buckets.empty());
  std::uint64_t prev = 0;
  for (const auto& b : buckets) {
    EXPECT_GE(b.count, prev);  // cumulative counts are monotone
    prev = b.count;
  }
  EXPECT_EQ(buckets.back().count, h.count());
}

// --- labeled exposition ------------------------------------------------------

TEST(Exposition, HistogramFamilyIsConformant) {
  obs::Histogram h;
  for (int i = 1; i <= 100; ++i) h.add(static_cast<double>(i));
  obs::Exposition exposition;
  exposition.add_histogram("serve.decide_us", {}, h);
  const std::string text = exposition.render();

  EXPECT_NE(text.find("# TYPE cig_serve_decide_us histogram"),
            std::string::npos);
  // Bucket counts are cumulative and +Inf equals _count.
  std::uint64_t prev = 0;
  bool saw_bucket = false;
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.rfind("cig_serve_decide_us_bucket{", 0) != 0) continue;
    saw_bucket = true;
    const std::uint64_t count =
        std::stoull(line.substr(line.rfind(' ') + 1));
    EXPECT_GE(count, prev) << line;
    prev = count;
  }
  EXPECT_TRUE(saw_bucket);
  EXPECT_NE(text.find("cig_serve_decide_us_bucket{le=\"+Inf\"} 100"),
            std::string::npos);
  EXPECT_NE(text.find("cig_serve_decide_us_sum 5050"), std::string::npos);
  EXPECT_NE(text.find("cig_serve_decide_us_count 100"), std::string::npos);
}

TEST(Exposition, LabelValuesAreEscaped) {
  EXPECT_EQ(obs::escape_label_value("plain"), "plain");
  EXPECT_EQ(obs::escape_label_value("a\"b"), "a\\\"b");
  EXPECT_EQ(obs::escape_label_value("a\\b"), "a\\\\b");
  EXPECT_EQ(obs::escape_label_value("a\nb"), "a\\nb");

  obs::Exposition exposition;
  exposition.add_gauge("serve.tenant.samples", {{"tenant", "we\"ird\\t"}}, 7);
  const std::string text = exposition.render();
  EXPECT_NE(text.find("tenant=\"we\\\"ird\\\\t\""), std::string::npos);
}

TEST(Exposition, SeriesCapDropsExcessLabeledSeries) {
  obs::Exposition exposition(/*series_cap=*/2);
  for (int t = 0; t < 5; ++t) {
    exposition.add_gauge("serve.tenant.samples",
                         {{"tenant", "t" + std::to_string(t)}},
                         static_cast<double>(t));
  }
  // Unlabeled families are never capped.
  exposition.add_gauge("serve.requests", {}, 42);
  EXPECT_EQ(exposition.dropped(), 3u);

  const std::string text = exposition.render();
  EXPECT_NE(text.find("tenant=\"t0\""), std::string::npos);
  EXPECT_NE(text.find("tenant=\"t1\""), std::string::npos);
  EXPECT_EQ(text.find("tenant=\"t2\""), std::string::npos);
  EXPECT_NE(text.find("cig_serve_requests 42"), std::string::npos);
  EXPECT_NE(text.find("cig_obs_labels_dropped 3"), std::string::npos);
}

TEST(Exposition, RegistryHistogramsKeepBucketSeriesOnly) {
  sim::StatRegistry registry;
  registry.set("serve.requests", 9);
  obs::Histogram h;
  for (int i = 1; i <= 10; ++i) h.add(static_cast<double>(i));
  h.export_to(registry, "serve.decide_us");

  obs::Exposition exposition;
  exposition.add_histogram("serve.decide_us", {}, h);
  exposition.add_registry(registry);
  const std::string text = exposition.render();

  // The registry's quantile/count shadows of the histogram family are
  // suppressed in favor of the conformant bucket series...
  EXPECT_EQ(text.find("quantile="), std::string::npos);
  EXPECT_NE(text.find("cig_serve_decide_us_bucket{"), std::string::npos);
  // ...while unrelated gauges pass through.
  EXPECT_NE(text.find("cig_serve_requests 9"), std::string::npos);
  // Exactly one TYPE line per family.
  std::size_t type_lines = 0;
  std::size_t pos = 0;
  while ((pos = text.find("# TYPE cig_serve_decide_us ", pos)) !=
         std::string::npos) {
    ++type_lines;
    pos += 1;
  }
  EXPECT_EQ(type_lines, 1u);
}

// --- flight recorder ---------------------------------------------------------

TEST(FlightRecorder, RingWrapKeepsNewestOldestFirst) {
  obs::FlightRecorder flight(4);
  for (int i = 0; i < 10; ++i) {
    flight.instant(sim::Lane::Ctrl, microsec(i), "ev" + std::to_string(i));
  }
  EXPECT_EQ(flight.capacity(), 4u);
  EXPECT_EQ(flight.size(), 4u);
  EXPECT_EQ(flight.recorded(), 10u);
  EXPECT_EQ(flight.dropped(), 6u);
  const auto events = flight.events();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events[0].label, "ev6");
  EXPECT_EQ(events[3].label, "ev9");
}

TEST(FlightRecorder, ChromeTraceIsDeterministic) {
  obs::FlightRecorder flight(16);
  flight.span(sim::Lane::Cpu, microsec(1), microsec(3), "work");
  flight.instant(sim::Lane::Ctrl, microsec(4), "marker");
  flight.counter(microsec(5), "queue", 2);
  const Json a = flight.to_chrome_trace();
  const Json b = flight.to_chrome_trace();
  EXPECT_EQ(a.dump(), b.dump());
  ASSERT_TRUE(a.contains("traceEvents"));
  EXPECT_GE(a.at("traceEvents").as_array().size(), 3u);
}

TEST(FlightRecorder, SetCapacityClearsRing) {
  obs::FlightRecorder flight(8);
  flight.instant(sim::Lane::Ctrl, microsec(1), "x");
  flight.set_capacity(2);
  EXPECT_EQ(flight.size(), 0u);
  EXPECT_EQ(flight.recorded(), 0u);
  flight.instant(sim::Lane::Ctrl, microsec(2), "a");
  flight.instant(sim::Lane::Ctrl, microsec(3), "b");
  flight.instant(sim::Lane::Ctrl, microsec(4), "c");
  EXPECT_EQ(flight.size(), 2u);
  EXPECT_EQ(flight.events()[0].label, "b");
}

// --- explanation round-trip --------------------------------------------------

TEST(Explanation, ZoneKeysParseBack) {
  for (const core::Zone zone : {core::Zone::Comparable, core::Zone::Grey,
                                core::Zone::CacheBound}) {
    EXPECT_EQ(core::zone_from_key(core::zone_key(zone)), zone);
  }
}

TEST(Explanation, JsonRoundTrip) {
  core::Explanation ex;
  ex.board = "Jetson TX2";
  ex.capability = "sw-flush";
  ex.gpu_usage_pct = 12.5;
  ex.cpu_usage_pct = 30.25;
  ex.gpu_threshold_pct = 1.8;
  ex.gpu_zone2_end_pct = 7.0;
  ex.cpu_threshold_pct = 11.4;
  ex.gpu_zone = core::Zone::CacheBound;
  ex.cpu_over_threshold = true;
  ex.equation = 4;
  ex.inputs.runtime = microsec(300);
  ex.inputs.copy_time = microsec(27);
  ex.inputs.cpu_time = microsec(57);
  ex.inputs.gpu_time = microsec(168);
  ex.max_speedup = 1.31;
  ex.estimated_speedup = 1.12;
  ex.current = comm::CommModel::ZeroCopy;
  ex.suggested = comm::CommModel::StandardCopy;
  ex.switch_model = true;
  ex.use_overlap_pattern = false;
  ex.checks = {"check one", "check two"};
  ex.rationale = "because";

  // Serialise, re-parse the dumped text, and rebuild.
  const auto parsed = Json::parse(ex.to_json().dump(2));
  const auto back = core::Explanation::from_json(parsed);
  EXPECT_EQ(back.board, ex.board);
  EXPECT_EQ(back.capability, ex.capability);
  EXPECT_DOUBLE_EQ(back.gpu_usage_pct, ex.gpu_usage_pct);
  EXPECT_DOUBLE_EQ(back.cpu_usage_pct, ex.cpu_usage_pct);
  EXPECT_DOUBLE_EQ(back.gpu_threshold_pct, ex.gpu_threshold_pct);
  EXPECT_DOUBLE_EQ(back.gpu_zone2_end_pct, ex.gpu_zone2_end_pct);
  EXPECT_DOUBLE_EQ(back.cpu_threshold_pct, ex.cpu_threshold_pct);
  EXPECT_EQ(back.gpu_zone, ex.gpu_zone);
  EXPECT_EQ(back.cpu_over_threshold, ex.cpu_over_threshold);
  EXPECT_EQ(back.equation, ex.equation);
  EXPECT_NEAR(to_us(back.inputs.runtime), to_us(ex.inputs.runtime), 1e-9);
  EXPECT_NEAR(to_us(back.inputs.copy_time), to_us(ex.inputs.copy_time), 1e-9);
  EXPECT_NEAR(to_us(back.inputs.cpu_time), to_us(ex.inputs.cpu_time), 1e-9);
  EXPECT_NEAR(to_us(back.inputs.gpu_time), to_us(ex.inputs.gpu_time), 1e-9);
  EXPECT_DOUBLE_EQ(back.max_speedup, ex.max_speedup);
  EXPECT_DOUBLE_EQ(back.estimated_speedup, ex.estimated_speedup);
  EXPECT_EQ(back.current, ex.current);
  EXPECT_EQ(back.suggested, ex.suggested);
  EXPECT_EQ(back.switch_model, ex.switch_model);
  EXPECT_EQ(back.use_overlap_pattern, ex.use_overlap_pattern);
  EXPECT_EQ(back.checks, ex.checks);
  EXPECT_EQ(back.rationale, ex.rationale);
}

// --- end-to-end: replay produces a complete observable trace -----------------

TEST(ReplayObservability, TraceHasLanesCountersAndBalancedFlows) {
  core::Framework framework(soc::jetson_tx2());
  const auto phases = workload::phasic_workload_phases(framework.board());
  const auto result = runtime::replay_phasic(framework, phases);

  // The merged aux must be balanced (AdaptiveController::finish closes any
  // dangling switch->phase arrow).
  EXPECT_TRUE(result.aux.flows_balanced());
  EXPECT_FALSE(result.aux.counters.empty());

  const auto doc =
      sim::to_chrome_trace(result.timeline, result.aux, "test replay");
  std::set<std::string> lane_names, counter_tracks;
  std::multiset<double> flow_begins, flow_ends;
  double last_counter_ts = -1;
  bool counters_monotone = true;
  for (const auto& event : doc.at("traceEvents").as_array()) {
    const auto& ph = event.at("ph").as_string();
    if (ph == "M" && event.at("name").as_string() == "thread_name") {
      lane_names.insert(event.at("args").at("name").as_string());
    } else if (ph == "C") {
      counter_tracks.insert(event.at("name").as_string());
      if (event.at("ts").as_number() < last_counter_ts) {
        counters_monotone = false;
      }
      last_counter_ts = event.at("ts").as_number();
    } else if (ph == "s") {
      flow_begins.insert(event.at("id").as_number());
    } else if (ph == "f") {
      flow_ends.insert(event.at("id").as_number());
    }
  }
  EXPECT_EQ(lane_names,
            (std::set<std::string>{"CPU", "GPU", "COPY", "CTRL"}));
  EXPECT_GE(counter_tracks.size(), 3u) << "at least three counter tracks";
  EXPECT_TRUE(counter_tracks.count("ctrl.gpu_cache_usage_pct"));
  EXPECT_TRUE(counter_tracks.count("runtime.switches"));
  EXPECT_TRUE(counters_monotone);
  EXPECT_FALSE(flow_begins.empty()) << "phasic trace must switch";
  EXPECT_EQ(flow_begins, flow_ends);
}

TEST(ReplayObservability, RegistryCarriesLatencyPercentiles) {
  core::Framework framework(soc::jetson_tx2());
  const auto phases = workload::phasic_workload_phases(framework.board());
  const auto result = runtime::replay_phasic(framework, phases);
  for (const char* key :
       {"runtime.phase_latency_us.p50", "runtime.phase_latency_us.p95",
        "runtime.phase_latency_us.p99", "runtime.kernel_latency_us.p50"}) {
    EXPECT_TRUE(result.registry.contains(key)) << key;
    EXPECT_GT(result.registry.get(key), 0.0) << key;
  }
  // p50 <= p95 <= p99 on a real distribution.
  EXPECT_LE(result.registry.get("runtime.phase_latency_us.p50"),
            result.registry.get("runtime.phase_latency_us.p95"));
  EXPECT_LE(result.registry.get("runtime.phase_latency_us.p95"),
            result.registry.get("runtime.phase_latency_us.p99"));
}

TEST(ReplayObservability, DecisionsCarryProvenance) {
  core::Framework framework(soc::jetson_tx2());
  const auto phases = workload::phasic_workload_phases(framework.board());
  const auto result = runtime::replay_phasic(framework, phases);
  bool saw_switch = false;
  for (const auto& record : result.samples) {
    if (!record.decision.switched) continue;
    saw_switch = true;
    EXPECT_NE(record.decision.flow_id, 0u);
    const auto j = record.decision.to_json();
    EXPECT_TRUE(j.at("switched").as_bool());
    EXPECT_FALSE(j.at("explanation").at("checks").as_array().empty());
    // The provenance JSON survives a text round-trip.
    const auto reparsed = Json::parse(j.dump(2));
    EXPECT_EQ(reparsed.at("model_after").as_string(),
              comm::model_name(record.decision.model_after));
  }
  EXPECT_TRUE(saw_switch);
}

}  // namespace
}  // namespace cig
