// Unit tests for the simulation core: event queue, stat registry, timeline.
#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.h"
#include "sim/stat_registry.h"
#include "sim/timeline.h"

namespace cig::sim {
namespace {

// --- event queue --------------------------------------------------------------

TEST(EventQueue, RunsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(3.0, [&] { order.push_back(3); });
  q.schedule_at(1.0, [&] { order.push_back(1); });
  q.schedule_at(2.0, [&] { order.push_back(2); });
  q.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, EqualTimesAreFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    q.schedule_at(1.0, [&order, i] { order.push_back(i); });
  }
  q.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, NowAdvancesWithEvents) {
  EventQueue q;
  Seconds seen = -1;
  q.schedule_at(2.5, [&] { seen = q.now(); });
  const Seconds end = q.run();
  EXPECT_DOUBLE_EQ(seen, 2.5);
  EXPECT_DOUBLE_EQ(end, 2.5);
}

TEST(EventQueue, ScheduleAfterIsRelative) {
  EventQueue q;
  Seconds fired = -1;
  q.schedule_at(1.0, [&] {
    q.schedule_after(0.5, [&] { fired = q.now(); });
  });
  q.run();
  EXPECT_DOUBLE_EQ(fired, 1.5);
}

TEST(EventQueue, EventsCanScheduleEvents) {
  EventQueue q;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 10) q.schedule_after(1.0, chain);
  };
  q.schedule_at(0.0, chain);
  const Seconds end = q.run();
  EXPECT_EQ(depth, 10);
  EXPECT_DOUBLE_EQ(end, 9.0);
}

TEST(EventQueue, RunUntilStopsAtBoundary) {
  EventQueue q;
  int fired = 0;
  q.schedule_at(1.0, [&] { ++fired; });
  q.schedule_at(5.0, [&] { ++fired; });
  q.run_until(2.0);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(q.pending(), 1u);
  EXPECT_DOUBLE_EQ(q.now(), 2.0);
  q.run();
  EXPECT_EQ(fired, 2);
}

TEST(EventQueue, ResetClearsEverything) {
  EventQueue q;
  q.schedule_at(1.0, [] {});
  q.reset();
  EXPECT_TRUE(q.empty());
  EXPECT_DOUBLE_EQ(q.now(), 0.0);
}

TEST(EventQueueDeath, RejectsPastEvents) {
  EventQueue q;
  q.schedule_at(2.0, [] {});
  q.run();
  EXPECT_DEATH(q.schedule_at(1.0, [] {}), "Precondition");
}

// --- stat registry -------------------------------------------------------------

TEST(StatRegistry, AddAccumulates) {
  StatRegistry r;
  r.add("hits");
  r.add("hits", 2.0);
  EXPECT_DOUBLE_EQ(r.get("hits"), 3.0);
}

TEST(StatRegistry, MissingIsZero) {
  StatRegistry r;
  EXPECT_DOUBLE_EQ(r.get("nothing"), 0.0);
  EXPECT_FALSE(r.contains("nothing"));
}

TEST(StatRegistry, SetOverwrites) {
  StatRegistry r;
  r.add("x", 5);
  r.set("x", 1);
  EXPECT_DOUBLE_EQ(r.get("x"), 1);
}

TEST(StatRegistry, RatioHandlesZeroTotal) {
  StatRegistry r;
  EXPECT_DOUBLE_EQ(r.ratio("a", "b"), 0.0);
  r.add("a", 3);
  r.add("b", 1);
  EXPECT_DOUBLE_EQ(r.ratio("a", "b"), 0.75);
}

TEST(StatRegistry, MergeSums) {
  StatRegistry a, b;
  a.add("x", 1);
  b.add("x", 2);
  b.add("y", 5);
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.get("x"), 3);
  EXPECT_DOUBLE_EQ(a.get("y"), 5);
}

TEST(StatRegistry, ToStringListsSorted) {
  StatRegistry r;
  r.add("b", 2);
  r.add("a", 1);
  const std::string s = r.to_string();
  EXPECT_LT(s.find("a = 1"), s.find("b = 2"));
}

TEST(StatRegistry, WithPrefixSelectsContiguousRange) {
  StatRegistry r;
  r.set("runtime.switches", 3);
  r.set("runtime.samples", 10);
  r.set("runtimes", 1);         // shares a prefix string but not the dot
  r.set("cache.cpu.hits", 99);
  r.set("zzz", 0);
  const StatRegistry view = r.with_prefix("runtime.");
  EXPECT_EQ(view.size(), 2u);
  EXPECT_DOUBLE_EQ(view.get("runtime.switches"), 3.0);
  EXPECT_DOUBLE_EQ(view.get("runtime.samples"), 10.0);
  EXPECT_FALSE(view.contains("runtimes"));
  EXPECT_FALSE(view.contains("cache.cpu.hits"));
  // Empty prefix = full copy; unmatched prefix = empty view.
  EXPECT_EQ(r.with_prefix("").size(), r.size());
  EXPECT_EQ(r.with_prefix("nope.").size(), 0u);
}

TEST(StatRegistry, JsonExportIsDeterministicallySorted) {
  StatRegistry r;
  r.set("b.two", 2);
  r.set("a.one", 1);
  r.set("c.three", 3);
  const std::string dumped = r.to_json().dump();
  // Lexicographic name order in the serialized text — the documented
  // ordering guarantee machine-readable exports rely on.
  EXPECT_LT(dumped.find("a.one"), dumped.find("b.two"));
  EXPECT_LT(dumped.find("b.two"), dumped.find("c.three"));
  const auto parsed = Json::parse(dumped);
  EXPECT_DOUBLE_EQ(parsed.at("a.one").as_number(), 1.0);
  EXPECT_DOUBLE_EQ(parsed.at("c.three").as_number(), 3.0);
}

// --- timeline -------------------------------------------------------------------

TEST(Timeline, BusySumsLaneDurations) {
  Timeline t;
  t.add(Lane::Cpu, 0, 1, "a");
  t.add(Lane::Cpu, 2, 4, "b");
  t.add(Lane::Gpu, 0, 3, "k");
  EXPECT_DOUBLE_EQ(t.busy(Lane::Cpu), 3.0);
  EXPECT_DOUBLE_EQ(t.busy(Lane::Gpu), 3.0);
  EXPECT_DOUBLE_EQ(t.busy(Lane::Copy), 0.0);
}

TEST(Timeline, MakespanIsLastEnd) {
  Timeline t;
  t.add(Lane::Cpu, 0, 1, "a");
  t.add(Lane::Copy, 5, 7, "c");
  EXPECT_DOUBLE_EQ(t.makespan(), 7.0);
}

TEST(Timeline, EmptyMakespanZero) {
  Timeline t;
  EXPECT_DOUBLE_EQ(t.makespan(), 0.0);
  EXPECT_TRUE(t.lanes_consistent());
}

TEST(Timeline, DetectsLaneOverlap) {
  Timeline t;
  t.add(Lane::Gpu, 0, 2, "a");
  t.add(Lane::Gpu, 1, 3, "b");
  EXPECT_FALSE(t.lanes_consistent());
}

TEST(Timeline, TouchingSegmentsAreConsistent) {
  Timeline t;
  t.add(Lane::Gpu, 0, 2, "a");
  t.add(Lane::Gpu, 2, 3, "b");
  EXPECT_TRUE(t.lanes_consistent());
}

TEST(Timeline, CrossLaneOverlapMeasured) {
  Timeline t;
  t.add(Lane::Cpu, 0, 4, "cpu");
  t.add(Lane::Gpu, 2, 6, "gpu");
  EXPECT_DOUBLE_EQ(t.overlap(Lane::Cpu, Lane::Gpu), 2.0);
}

TEST(Timeline, OverlapWithMultipleSegments) {
  Timeline t;
  t.add(Lane::Cpu, 0, 1, "a");
  t.add(Lane::Cpu, 2, 3, "b");
  t.add(Lane::Gpu, 0.5, 2.5, "k");
  EXPECT_DOUBLE_EQ(t.overlap(Lane::Cpu, Lane::Gpu), 1.0);
}

TEST(Timeline, AppendShiftsByOffset) {
  Timeline a, b;
  b.add(Lane::Cpu, 0, 1, "x");
  a.append(b, 10.0);
  ASSERT_EQ(a.segments().size(), 1u);
  EXPECT_DOUBLE_EQ(a.segments()[0].start, 10.0);
  EXPECT_DOUBLE_EQ(a.segments()[0].end, 11.0);
}

TEST(Timeline, GanttMentionsAllLanes) {
  Timeline t;
  t.add(Lane::Cpu, 0, 1, "a");
  const std::string gantt = t.render_gantt();
  EXPECT_NE(gantt.find("CPU"), std::string::npos);
  EXPECT_NE(gantt.find("GPU"), std::string::npos);
  EXPECT_NE(gantt.find("COPY"), std::string::npos);
}

TEST(Timeline, LaneNames) {
  EXPECT_STREQ(lane_name(Lane::Cpu), "CPU");
  EXPECT_STREQ(lane_name(Lane::Gpu), "GPU");
  EXPECT_STREQ(lane_name(Lane::Copy), "COPY");
}

TEST(TimelineDeath, RejectsNegativeDuration) {
  Timeline t;
  EXPECT_DEATH(t.add(Lane::Cpu, 2, 1, "bad"), "Precondition");
}

}  // namespace
}  // namespace cig::sim

// --- chrome trace export ---------------------------------------------------------

#include <cstdio>
#include <fstream>

#include "sim/trace_export.h"

namespace cig::sim {
namespace {

Timeline example_timeline() {
  Timeline t;
  t.add(Lane::Cpu, microsec(0), microsec(10), "produce");
  t.add(Lane::Gpu, microsec(5), microsec(25), "kernel");
  t.add(Lane::Copy, microsec(25), microsec(30), "d2h");
  return t;
}

TEST(TraceExport, DocumentHasEventsAndMetadata) {
  const auto doc = to_chrome_trace(example_timeline(), "unit-test");
  const auto& events = doc.at("traceEvents").as_array();
  // 1 process-name + 4 thread-name metadata + 3 segments.
  ASSERT_EQ(events.size(), 8u);
  EXPECT_EQ(events[0].at("ph").as_string(), "M");
  EXPECT_EQ(events[0].at("args").at("name").as_string(), "unit-test");
}

TEST(TraceExport, SegmentsBecomeCompleteEvents) {
  const auto doc = to_chrome_trace(example_timeline());
  bool found_kernel = false;
  for (const auto& event : doc.at("traceEvents").as_array()) {
    if (event.at("ph").as_string() != "X") continue;
    if (event.at("name").as_string() == "kernel") {
      found_kernel = true;
      EXPECT_DOUBLE_EQ(event.at("ts").as_number(), 5.0);
      EXPECT_DOUBLE_EQ(event.at("dur").as_number(), 20.0);
      EXPECT_EQ(event.at("cat").as_string(), "GPU");
    }
  }
  EXPECT_TRUE(found_kernel);
}

TEST(TraceExport, WritesParsableFile) {
  const std::string path = ::testing::TempDir() + "/cig_trace.json";
  write_chrome_trace(example_timeline(), path);
  std::ifstream in(path);
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  const auto doc = Json::parse(text);
  EXPECT_TRUE(doc.at("traceEvents").is_array());
  std::remove(path.c_str());
}

TEST(TraceExport, EmptyTimelineStillValid) {
  const auto doc = to_chrome_trace(Timeline{});
  EXPECT_EQ(doc.at("traceEvents").as_array().size(), 5u);  // metadata only
}

}  // namespace
}  // namespace cig::sim
