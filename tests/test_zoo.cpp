// Tests for the workload zoo: functional payload correctness and the
// qualitative model behaviour each archetype is designed to show.
#include <gtest/gtest.h>

#include <numeric>

#include "comm/executor.h"
#include "soc/presets.h"
#include "workload/functional.h"
#include "workload/zoo.h"

namespace cig::workload {
namespace {

// --- functional payloads ------------------------------------------------------

TEST(Conv2d, ConstantImageIsFixedPoint) {
  std::vector<float> input(32 * 16, 3.0f);
  const auto output = convolve_2d(input, 32, 16, 5);
  for (float v : output) EXPECT_NEAR(v, 3.0f, 1e-5);
}

TEST(Conv2d, BoxBlurAveragesNeighbourhood) {
  // Single bright pixel spreads into a K x K plateau of 1/K^2.
  std::vector<float> input(16 * 16, 0.0f);
  input[8 * 16 + 8] = 9.0f;
  const auto output = convolve_2d(input, 16, 16, 3);
  EXPECT_NEAR(output[8 * 16 + 8], 1.0f, 1e-6);
  EXPECT_NEAR(output[7 * 16 + 7], 1.0f, 1e-6);
  EXPECT_NEAR(output[8 * 16 + 6], 0.0f, 1e-6);  // outside the 3x3
}

TEST(Conv2d, PreservesTotalMassAwayFromBorders) {
  std::vector<float> input(64 * 64, 0.0f);
  input[32 * 64 + 32] = 1.0f;
  const auto output = convolve_2d(input, 64, 64, 5);
  const double mass = std::accumulate(output.begin(), output.end(), 0.0);
  EXPECT_NEAR(mass, 1.0, 1e-4);
}

TEST(ConvDeath, RejectsEvenKernel) {
  std::vector<float> input(16, 0.0f);
  EXPECT_DEATH(convolve_2d(input, 4, 4, 4), "Precondition");
}

TEST(Histogram, CountsSumToSampleCount) {
  std::vector<float> data(1000);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<float>(i) / 1000.0f;
  }
  const auto counts = histogram(data, 10, 0.0f, 1.0f);
  EXPECT_EQ(std::accumulate(counts.begin(), counts.end(), 0u), 1000u);
  for (auto c : counts) EXPECT_EQ(c, 100u);  // uniform data
}

TEST(Histogram, ClampsOutOfRange) {
  const std::vector<float> data = {-5.0f, 0.5f, 99.0f};
  const auto counts = histogram(data, 4, 0.0f, 1.0f);
  EXPECT_EQ(counts[0], 1u);  // clamped low
  EXPECT_EQ(counts[2], 1u);
  EXPECT_EQ(counts[3], 1u);  // clamped high
}

TEST(PointerChase, FullCycleReturnsToStart) {
  // Sattolo permutations are single cycles: after exactly `nodes` hops the
  // walk is back at the start.
  for (std::size_t nodes : {2u, 17u, 256u}) {
    EXPECT_EQ(pointer_chase(nodes, nodes, 9), 0u) << nodes;
    EXPECT_NE(pointer_chase(nodes, 1, 9), 0u) << nodes;  // moved away
  }
}

TEST(PointerChase, DeterministicPerSeed) {
  EXPECT_EQ(pointer_chase(1024, 500, 7), pointer_chase(1024, 500, 7));
  EXPECT_NE(pointer_chase(1024, 500, 7), pointer_chase(1024, 500, 8));
}

// --- zoo workload shapes --------------------------------------------------------

TEST(Zoo, AllWorkloadsValidateOnAllBoards) {
  for (const auto& board : soc::jetson_family()) {
    for (const auto& [name, workload] : workload_zoo(board)) {
      workload.validate();
      EXPECT_FALSE(name.empty());
    }
  }
}

TEST(Zoo, Conv2dIsGpuCacheHungryOnTx2) {
  // The stencil's repeated passes make ZC catastrophic on a SwFlush board.
  const auto board = soc::jetson_tx2();
  soc::SoC soc(board);
  comm::Executor executor(soc);
  const auto workload = conv2d_workload(board);
  const auto sc = executor.run(workload, comm::CommModel::StandardCopy);
  const auto zc = executor.run(workload, comm::CommModel::ZeroCopy);
  EXPECT_GT(zc.kernel_time, sc.kernel_time * 3);
}

TEST(Zoo, SaxpyPrefersZeroCopyOnXavier) {
  const auto board = soc::jetson_agx_xavier();
  soc::SoC soc(board);
  comm::Executor executor(soc);
  const auto workload = saxpy_stream_workload(board);
  const auto sc = executor.run(workload, comm::CommModel::StandardCopy);
  const auto zc = executor.run(workload, comm::CommModel::ZeroCopy);
  EXPECT_LT(zc.total, sc.total);
}

TEST(Zoo, PointerChaseIsCpuBound) {
  const auto board = soc::jetson_tx2();
  soc::SoC soc(board);
  comm::Executor executor(soc);
  const auto workload = pointer_chase_workload(board);
  const auto sc = executor.run(workload, comm::CommModel::StandardCopy);
  EXPECT_GT(sc.cpu_time, sc.kernel_time);
  // And the dependent walk collapses under ZC's uncached path.
  const auto zc = executor.run(workload, comm::CommModel::ZeroCopy);
  EXPECT_GT(zc.cpu_time, sc.cpu_time * 2);
}

TEST(Zoo, HistogramBinsStayCacheResident) {
  // The 16 KiB bin table fits the GPU L1: the scattered updates (which
  // dominate the access count) hit in cache under SC, while the streaming
  // input misses through — so the L1 hit rate is high even though the
  // LLC's is not.
  const auto board = soc::jetson_tx2();
  soc::SoC soc(board);
  comm::Executor executor(soc);
  const auto workload = histogram_workload(board);
  const auto sc = executor.run(workload, comm::CommModel::StandardCopy);
  EXPECT_GT(sc.gpu_l1_hit_rate, 0.5);
}

}  // namespace
}  // namespace cig::workload
