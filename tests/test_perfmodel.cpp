// Tests for the performance model (eqns 1-4 of the paper).
#include <gtest/gtest.h>

#include "core/perfmodel.h"

namespace cig::core {
namespace {

// --- eqn 1: CPU cache usage ---------------------------------------------------

TEST(CpuCacheUsage, Definition) {
  // 20% of accesses miss L1; 10% of those also miss the LLC.
  EXPECT_DOUBLE_EQ(cpu_cache_usage(0.2, 0.1), 0.18);
}

TEST(CpuCacheUsage, ZeroMissRateMeansZeroUsage) {
  EXPECT_DOUBLE_EQ(cpu_cache_usage(0.0, 0.5), 0.0);
}

TEST(CpuCacheUsage, AllMissesToDramMeansZeroUsage) {
  EXPECT_DOUBLE_EQ(cpu_cache_usage(1.0, 1.0), 0.0);
}

TEST(CpuCacheUsage, PerfectLlcServiceEqualsL1MissRate) {
  EXPECT_DOUBLE_EQ(cpu_cache_usage(0.35, 0.0), 0.35);
}

TEST(CpuCacheUsageDeath, RejectsOutOfRangeRates) {
  EXPECT_DEATH(cpu_cache_usage(1.5, 0.0), "Precondition");
  EXPECT_DEATH(cpu_cache_usage(0.5, -0.1), "Precondition");
}

// --- eqn 2: GPU cache usage ---------------------------------------------------

TEST(GpuCacheUsage, Definition) {
  // 1e6 transactions x 4 B, 50% L1 hit, 100 us kernel: LL demand
  // = 1e6*4*0.5/1e-4 = 20 GB/s; over a 100 GB/s peak -> 20%.
  EXPECT_NEAR(gpu_cache_usage(1e6, 4, 0.5, 100e-6, GBps(20 / 0.2)), 0.2,
              1e-12);
}

TEST(GpuCacheUsage, FullL1HitMeansZeroLlDemand) {
  EXPECT_DOUBLE_EQ(gpu_cache_usage(1e6, 4, 1.0, 1e-3, GBps(100)), 0.0);
}

TEST(GpuCacheUsage, ScalesInverselyWithKernelTime) {
  const double fast = gpu_cache_usage(1e6, 4, 0.0, 50e-6, GBps(100));
  const double slow = gpu_cache_usage(1e6, 4, 0.0, 200e-6, GBps(100));
  EXPECT_NEAR(fast, slow * 4, 1e-12);
}

TEST(GpuCacheUsageDeath, RejectsNonPositiveRuntime) {
  EXPECT_DEATH(gpu_cache_usage(1e6, 4, 0.5, 0.0, GBps(100)), "Precondition");
}

TEST(CacheUsage, FromProfileReport) {
  profile::ProfileReport report;
  report.cpu_l1_miss_rate = 0.25;
  report.cpu_llc_miss_rate = 0.2;
  report.gpu_transactions = 1e6;
  report.gpu_transaction_size = 4;
  report.gpu_l1_hit_rate = 0.0;
  report.kernel_time = 100e-6;
  const auto usage = cache_usage(report, GBps(100));
  EXPECT_DOUBLE_EQ(usage.cpu, 0.2);
  EXPECT_NEAR(usage.gpu, 0.4, 1e-12);
  EXPECT_DOUBLE_EQ(usage.cpu_pct(), 20.0);
}

TEST(CacheUsage, ZeroKernelTimeYieldsZeroGpuUsage) {
  profile::ProfileReport report;
  report.kernel_time = 0;
  const auto usage = cache_usage(report, GBps(100));
  EXPECT_DOUBLE_EQ(usage.gpu, 0.0);
}

// --- eqn 3: SC -> ZC speedup -----------------------------------------------------

TEST(Eqn3, PerfectOverlapAndNoCopyDoubles) {
  // runtime 100, no copies, cpu == gpu: ZC estimate = 100/2 -> speedup 2.
  const SpeedupInputs in{.runtime = 100e-6,
                         .copy_time = 0,
                         .cpu_time = 40e-6,
                         .gpu_time = 40e-6};
  EXPECT_NEAR(sc_to_zc_speedup(in, 10.0), 2.0, 1e-12);
}

TEST(Eqn3, CopyRemovalAddsToSpeedup) {
  const SpeedupInputs with_copy{.runtime = 100e-6,
                                .copy_time = 20e-6,
                                .cpu_time = 40e-6,
                                .gpu_time = 40e-6};
  const SpeedupInputs without{.runtime = 100e-6,
                              .copy_time = 0,
                              .cpu_time = 40e-6,
                              .gpu_time = 40e-6};
  EXPECT_GT(sc_to_zc_speedup(with_copy, 10.0),
            sc_to_zc_speedup(without, 10.0));
}

TEST(Eqn3, GpuDominatedWorkloadGainsLittleFromOverlap) {
  const SpeedupInputs in{.runtime = 100e-6,
                         .copy_time = 0,
                         .cpu_time = 1e-6,
                         .gpu_time = 99e-6};
  EXPECT_NEAR(sc_to_zc_speedup(in, 10.0), 1.0 + 1.0 / 99, 1e-9);
}

TEST(Eqn3, CapAppliesDeviceBound) {
  const SpeedupInputs in{.runtime = 100e-6,
                         .copy_time = 50e-6,
                         .cpu_time = 40e-6,
                         .gpu_time = 40e-6};
  EXPECT_DOUBLE_EQ(sc_to_zc_speedup(in, 1.5), 1.5);
}

TEST(Eqn3Death, RejectsCopyExceedingRuntime) {
  const SpeedupInputs in{.runtime = 10e-6,
                         .copy_time = 20e-6,
                         .cpu_time = 1e-6,
                         .gpu_time = 1e-6};
  EXPECT_DEATH(sc_to_zc_speedup(in, 2.0), "Precondition");
}

// --- eqn 4: ZC -> SC speedup -----------------------------------------------------

TEST(Eqn4, StructuralCostsAlonePredictSlowdown) {
  // Balanced tasks: serialization doubles the time, plus the copy; the raw
  // formula therefore predicts < 1 and the device bound supplies the
  // cache-side upside.
  const SpeedupInputs in{.runtime = 100e-6,
                         .copy_time = 10e-6,
                         .cpu_time = 40e-6,
                         .gpu_time = 40e-6};
  const double speedup = zc_to_sc_speedup(in, 70.0);
  EXPECT_LT(speedup, 1.0);
  EXPECT_NEAR(speedup, 100.0 / 210.0, 1e-9);
}

TEST(Eqn4, CapBoundsTheEstimate) {
  const SpeedupInputs in{.runtime = 100e-6,
                         .copy_time = 0,
                         .cpu_time = 1e-9,
                         .gpu_time = 100e-6};
  EXPECT_LE(zc_to_sc_speedup(in, 3.7), 3.7);
}

TEST(Eqn4, GpuOnlyWorkloadApproachesUnityBeforeCap) {
  const SpeedupInputs in{.runtime = 100e-6,
                         .copy_time = 0,
                         .cpu_time = 0,
                         .gpu_time = 100e-6};
  EXPECT_NEAR(zc_to_sc_speedup(in, 70.0), 1.0, 1e-9);
}

TEST(Eqn4, MoreCopiesLowerTheEstimate) {
  SpeedupInputs in{.runtime = 100e-6,
                   .copy_time = 0,
                   .cpu_time = 20e-6,
                   .gpu_time = 80e-6};
  const double no_copy = zc_to_sc_speedup(in, 70.0);
  in.copy_time = 30e-6;
  EXPECT_LT(zc_to_sc_speedup(in, 70.0), no_copy);
}

}  // namespace
}  // namespace cig::core
