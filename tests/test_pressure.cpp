// Tests for the memory-pressure governor: budget resolution (flag vs
// CIG_MEM_BUDGET), graded levels with edge-only reporting, the
// would_exceed verdict, the exported counter surface, and the crash-grade
// snapshot/restore round-trip.
#include <gtest/gtest.h>

#include <cstdlib>

#include "mem/pressure.h"
#include "sim/stat_registry.h"

namespace cig::mem {
namespace {

TEST(PressureGovernor, DisabledByDefault) {
  PressureGovernor governor;
  EXPECT_FALSE(governor.enabled());
  EXPECT_FALSE(governor.would_exceed(1ull << 40));
  EXPECT_FALSE(governor.observe(1ull << 40));
  EXPECT_EQ(governor.level(), PressureLevel::Ok);
}

TEST(PressureGovernor, GradesLevelsAgainstTheBudget) {
  PressureGovernor governor(PressureConfig{.budget = 1000});
  ASSERT_TRUE(governor.enabled());

  EXPECT_FALSE(governor.observe(100));  // ok -> ok: no edge
  EXPECT_EQ(governor.level(), PressureLevel::Ok);

  EXPECT_TRUE(governor.observe(750));  // warn_frac = 0.75
  EXPECT_EQ(governor.level(), PressureLevel::Warn);
  EXPECT_FALSE(governor.observe(800));  // warn -> warn: no edge

  EXPECT_TRUE(governor.observe(900));  // critical_frac = 0.90
  EXPECT_EQ(governor.level(), PressureLevel::Critical);

  EXPECT_TRUE(governor.observe(0));  // back to ok is an edge too
  EXPECT_EQ(governor.level(), PressureLevel::Ok);
  EXPECT_EQ(governor.level_changes(), 3u);
  EXPECT_EQ(governor.peak_resident(), 900u);
}

TEST(PressureGovernor, WouldExceedIsAStrictBudgetCheck) {
  PressureGovernor governor(PressureConfig{.budget = 4096});
  EXPECT_FALSE(governor.would_exceed(4096));  // exactly at budget fits
  EXPECT_TRUE(governor.would_exceed(4097));
}

TEST(PressureGovernor, SetBudgetRegradesOnNextObserve) {
  PressureGovernor governor(PressureConfig{.budget = 10000});
  EXPECT_FALSE(governor.observe(5000));
  EXPECT_EQ(governor.level(), PressureLevel::Ok);
  governor.set_budget(5000);  // the shrinking-DRAM ramp
  EXPECT_TRUE(governor.observe(5000));
  EXPECT_EQ(governor.level(), PressureLevel::Critical);
  EXPECT_TRUE(governor.would_exceed(5001));
}

TEST(PressureGovernor, LevelNamesAreStable) {
  EXPECT_STREQ(pressure_level_name(PressureLevel::Ok), "ok");
  EXPECT_STREQ(pressure_level_name(PressureLevel::Warn), "warn");
  EXPECT_STREQ(pressure_level_name(PressureLevel::Critical), "critical");
}

TEST(PressureGovernor, ExportsTheFullCounterSurface) {
  PressureGovernor governor(PressureConfig{.budget = 1000});
  governor.observe(900);
  governor.count_demotion();
  governor.count_blocked();
  governor.count_blocked();

  sim::StatRegistry registry;
  governor.export_to(registry, "runtime.mem");
  EXPECT_EQ(registry.get("runtime.mem.budget_bytes"), 1000.0);
  EXPECT_EQ(registry.get("runtime.mem.resident_bytes"), 900.0);
  EXPECT_EQ(registry.get("runtime.mem.peak_bytes"), 900.0);
  EXPECT_EQ(registry.get("runtime.mem.level"), 2.0);
  EXPECT_EQ(registry.get("runtime.mem.level_changes"), 1.0);
  EXPECT_EQ(registry.get("runtime.mem.demotions"), 1.0);
  EXPECT_EQ(registry.get("runtime.mem.blocked"), 2.0);
}

TEST(PressureGovernor, SnapshotRestoreRoundTripsExactly) {
  PressureGovernor governor(PressureConfig{.budget = 8192});
  governor.observe(4000);
  governor.observe(7000);
  governor.count_demotion();
  governor.count_blocked();

  PressureGovernor restored(PressureConfig{.budget = 8192});
  restored.restore(governor.snapshot());
  EXPECT_EQ(restored.snapshot().dump(), governor.snapshot().dump());
  EXPECT_EQ(restored.level(), governor.level());
  EXPECT_EQ(restored.resident(), governor.resident());
  EXPECT_EQ(restored.peak_resident(), governor.peak_resident());
  EXPECT_EQ(restored.demotions(), governor.demotions());
  EXPECT_EQ(restored.blocked(), governor.blocked());

  // A restored governor grades the next observation exactly as the
  // original would have.
  PressureGovernor fresh(PressureConfig{.budget = 8192});
  fresh.restore(governor.snapshot());
  EXPECT_EQ(fresh.observe(7500), governor.observe(7500));
  EXPECT_EQ(fresh.level(), governor.level());
}

TEST(ResolveMemBudget, FlagWinsOverEnvironment) {
  ::setenv("CIG_MEM_BUDGET", "12345", 1);
  EXPECT_EQ(resolve_mem_budget(999), 999u);
  ::unsetenv("CIG_MEM_BUDGET");
}

TEST(ResolveMemBudget, EnvironmentFillsInWhenFlagUnset) {
  ::setenv("CIG_MEM_BUDGET", "12345", 1);
  EXPECT_EQ(resolve_mem_budget(0), 12345u);
  ::unsetenv("CIG_MEM_BUDGET");
  EXPECT_EQ(resolve_mem_budget(0), 0u);
}

TEST(ResolveMemBudget, MalformedEnvironmentCountsAsUnset) {
  for (const char* bad : {"", "zzz", "-5", "12MB", "1e6"}) {
    ::setenv("CIG_MEM_BUDGET", bad, 1);
    EXPECT_EQ(resolve_mem_budget(0), 0u) << "env \"" << bad << "\"";
  }
  ::unsetenv("CIG_MEM_BUDGET");
}

}  // namespace
}  // namespace cig::mem
