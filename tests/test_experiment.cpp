// Tests for the declarative experiment-grid runner.
#include <gtest/gtest.h>

#include "core/experiment.h"
#include "soc/presets.h"

namespace cig::core {
namespace {

TEST(Experiment, ResolveApplicationKnowsAllApps) {
  const auto board = soc::generic_board();
  for (const std::string name : {"shwfs", "orbslam", "mb1", "mb3"}) {
    const auto workload = resolve_application(name, board);
    workload.validate();
    EXPECT_FALSE(workload.name.empty());
  }
  EXPECT_THROW(resolve_application("nope", board), std::runtime_error);
}

TEST(Experiment, GridCoversFullCartesianProduct) {
  ExperimentSpec spec;
  spec.boards = {"generic"};
  spec.apps = {"mb1"};
  const auto grid = run_grid(spec);
  EXPECT_EQ(grid.cells().size(), 3u);  // three models by default
  for (const auto& cell : grid.cells()) {
    EXPECT_GT(cell.run.total, 0.0);
  }
}

TEST(Experiment, AtFindsCellsAndThrowsOnMiss) {
  ExperimentSpec spec;
  spec.boards = {"generic"};
  spec.apps = {"mb1"};
  spec.models = {comm::CommModel::StandardCopy};
  const auto grid = run_grid(spec);
  EXPECT_NO_THROW(grid.at("generic", "mb1", comm::CommModel::StandardCopy));
  EXPECT_THROW(grid.at("generic", "mb1", comm::CommModel::ZeroCopy),
               std::runtime_error);
  EXPECT_THROW(grid.at("tx2", "mb1", comm::CommModel::StandardCopy),
               std::runtime_error);
}

TEST(Experiment, SpeedupVsScIsConsistent) {
  ExperimentSpec spec;
  spec.boards = {"generic"};
  spec.apps = {"mb1"};
  const auto grid = run_grid(spec);
  EXPECT_DOUBLE_EQ(
      grid.speedup_vs_sc("generic", "mb1", comm::CommModel::StandardCopy),
      1.0);
  const double zc =
      grid.speedup_vs_sc("generic", "mb1", comm::CommModel::ZeroCopy);
  const auto& sc_cell =
      grid.at("generic", "mb1", comm::CommModel::StandardCopy);
  const auto& zc_cell = grid.at("generic", "mb1", comm::CommModel::ZeroCopy);
  EXPECT_DOUBLE_EQ(zc, sc_cell.run.total / zc_cell.run.total);
}

TEST(Experiment, OutputsAreWellFormed) {
  ExperimentSpec spec;
  spec.boards = {"generic"};
  spec.apps = {"mb1"};
  spec.models = {comm::CommModel::StandardCopy, comm::CommModel::ZeroCopy};
  const auto grid = run_grid(spec);

  const auto table = grid.to_table();
  EXPECT_EQ(table.rows(), 2u);

  const auto csv = grid.to_csv();
  EXPECT_NE(csv.find("board,app,model"), std::string::npos);
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 3);  // header + 2 rows

  const auto json = grid.to_json();
  EXPECT_EQ(json.at("cells").as_array().size(), 2u);
  EXPECT_EQ(json.at("cells").as_array()[0].at("model").as_string(), "SC");
}

TEST(Experiment, MatchesDirectExecutorRun) {
  ExperimentSpec spec;
  spec.boards = {"generic"};
  spec.apps = {"mb1"};
  spec.models = {comm::CommModel::StandardCopy};
  const auto grid = run_grid(spec);

  soc::SoC soc(soc::generic_board());
  comm::Executor executor(soc);
  const auto direct = executor.run(
      resolve_application("mb1", soc.config()), comm::CommModel::StandardCopy);
  EXPECT_DOUBLE_EQ(
      grid.at("generic", "mb1", comm::CommModel::StandardCopy).run.total,
      direct.total);
}

TEST(ExperimentDeath, RejectsEmptySpec) {
  ExperimentSpec spec;
  EXPECT_DEATH(run_grid(spec), "Precondition");
}

}  // namespace
}  // namespace cig::core
