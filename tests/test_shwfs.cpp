// Tests for the Shack-Hartmann application substrate: synthetic frames,
// centroid extraction accuracy, and the simulator workload mapping.
#include <gtest/gtest.h>

#include "apps/shwfs/centroid.h"
#include "apps/shwfs/image.h"
#include "apps/shwfs/workload.h"
#include "soc/presets.h"

namespace cig::apps::shwfs {
namespace {

SensorGeometry small_sensor() {
  return SensorGeometry{.image_width = 128,
                        .image_height = 128,
                        .subaperture_px = 32};
}

TEST(Frame, GeometryDerivedQuantities) {
  const auto g = small_sensor();
  EXPECT_EQ(g.grid_cols(), 4u);
  EXPECT_EQ(g.grid_rows(), 4u);
  EXPECT_EQ(g.subaperture_count(), 16u);
}

TEST(Frame, HasPixelsAndTruth) {
  const auto frame = make_frame(small_sensor());
  EXPECT_EQ(frame.pixels.size(), 128u * 128);
  EXPECT_EQ(frame.truth.size(), 16u);
}

TEST(Frame, DeterministicForSeed) {
  FrameOptions options;
  options.seed = 99;
  const auto a = make_frame(small_sensor(), options);
  const auto b = make_frame(small_sensor(), options);
  EXPECT_EQ(a.pixels, b.pixels);
  for (std::size_t i = 0; i < a.truth.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.truth[i].dx, b.truth[i].dx);
  }
}

TEST(Frame, SpotsBrighterThanBackground) {
  FrameOptions options;
  options.noise_sigma = 0;
  const auto frame = make_frame(small_sensor(), options);
  std::uint16_t max_px = 0;
  for (auto px : frame.pixels) max_px = std::max(max_px, px);
  EXPECT_GT(max_px, options.background + options.peak_intensity / 2);
}

TEST(Frame, TruthWithinDisplacementBound) {
  FrameOptions options;
  options.max_displacement_px = 5.0;
  const auto frame = make_frame(small_sensor(), options);
  for (const auto& spot : frame.truth) {
    EXPECT_LE(std::abs(spot.dx), 5.0);
    EXPECT_LE(std::abs(spot.dy), 5.0);
  }
}

TEST(FrameDeath, RejectsNonDividingSubapertures) {
  EXPECT_DEATH(make_frame(SensorGeometry{.image_width = 100,
                                         .image_height = 100,
                                         .subaperture_px = 32}),
               "Precondition");
}

// --- centroid accuracy ------------------------------------------------------------

TEST(Centroid, ThresholdedCogRecoversCleanSpots) {
  FrameOptions options;
  options.noise_sigma = 0;
  options.background = 0;
  const auto frame = make_frame(small_sensor(), options);
  CentroidOptions copts;
  copts.method = Method::ThresholdedCoG;
  copts.threshold = 100;
  const auto centroids = extract_centroids(frame, copts);
  EXPECT_LT(rms_error(frame, centroids), 0.05);  // sub-pixel, near-exact
}

TEST(Centroid, ThresholdingBeatsPlainCogUnderBackground) {
  FrameOptions options;
  options.noise_sigma = 60;
  options.background = 2000;
  const auto frame = make_frame(small_sensor(), options);

  CentroidOptions plain;
  plain.method = Method::CenterOfGravity;
  CentroidOptions thresholded;
  thresholded.method = Method::ThresholdedCoG;
  thresholded.threshold = 3000;

  const double plain_rms = rms_error(frame, extract_centroids(frame, plain));
  const double thr_rms =
      rms_error(frame, extract_centroids(frame, thresholded));
  EXPECT_LT(thr_rms, plain_rms);
  EXPECT_LT(thr_rms, 0.5);
}

TEST(Centroid, WindowedRefinementAtLeastAsGood) {
  FrameOptions options;
  options.noise_sigma = 100;
  const auto frame = make_frame(small_sensor(), options);

  CentroidOptions thresholded;
  thresholded.method = Method::ThresholdedCoG;
  CentroidOptions windowed;
  windowed.method = Method::WindowedCoG;

  const double thr =
      rms_error(frame, extract_centroids(frame, thresholded));
  const double win = rms_error(frame, extract_centroids(frame, windowed));
  // Windowing trades a small clean-frame bias for robustness; both must
  // stay well inside sub-pixel accuracy.
  EXPECT_LT(thr, 0.3);
  EXPECT_LT(win, 0.3);
}

TEST(Centroid, OneCentroidPerSubaperture) {
  const auto frame = make_frame(small_sensor());
  const auto centroids = extract_centroids(frame);
  EXPECT_EQ(centroids.size(), frame.geometry.subaperture_count());
  for (const auto& c : centroids) EXPECT_GT(c.mass, 0.0);
}

TEST(CentroidDeath, RmsErrorChecksArity) {
  const auto frame = make_frame(small_sensor());
  EXPECT_DEATH(rms_error(frame, {}), "Precondition");
}

// --- workload mapping --------------------------------------------------------------

TEST(ShwfsWorkload, ValidatesOnAllBoards) {
  for (const auto& board : soc::jetson_family()) {
    const auto w = shwfs_workload(board);
    w.validate();
    EXPECT_EQ(w.iterations, kKernelsPerFrame);
    EXPECT_EQ(w.h2d_bytes, kFrameBytes);
    EXPECT_FALSE(w.overlappable);
    EXPECT_TRUE(w.cpu.private_pattern.has_value());
    EXPECT_TRUE(w.gpu.private_pattern.has_value());
  }
}

TEST(ShwfsWorkload, CpuPrivateWorkingSetSplitsA57FromCarmel) {
  // The private working set (40 KiB) exceeds a 32 KiB A57 L1 but fits
  // Carmel's 64 KiB — this is what differentiates the Table II CPU cache
  // usage between Nano/TX2 and Xavier.
  const auto w = shwfs_workload(soc::jetson_tx2());
  const Bytes ws = w.cpu.private_pattern->extent;
  EXPECT_GT(ws, soc::jetson_tx2().cpu.l1.geometry.capacity);
  EXPECT_LT(ws, soc::jetson_agx_xavier().cpu.l1.geometry.capacity);
}

}  // namespace
}  // namespace cig::apps::shwfs

// --- wavefront reconstruction -------------------------------------------------

#include <cmath>

#include "apps/shwfs/reconstruct.h"

namespace cig::apps::shwfs {
namespace {

// Analytic slope fields for known wavefronts.
std::pair<std::vector<double>, std::vector<double>> slopes_of(
    std::uint32_t cols, std::uint32_t rows,
    const std::function<double(double, double)>& phase) {
  // Hudgin: sx(c, r) = phi(c+1, r) - phi(c, r); last column/row unused but
  // filled consistently.
  std::vector<double> sx(static_cast<std::size_t>(cols) * rows);
  std::vector<double> sy(sx.size());
  for (std::uint32_t r = 0; r < rows; ++r) {
    for (std::uint32_t c = 0; c < cols; ++c) {
      const std::size_t i = static_cast<std::size_t>(r) * cols + c;
      sx[i] = phase(c + 1, r) - phase(c, r);
      sy[i] = phase(c, r + 1) - phase(c, r);
    }
  }
  return {sx, sy};
}

WavefrontGrid grid_of(std::uint32_t cols, std::uint32_t rows,
                      const std::function<double(double, double)>& phase) {
  WavefrontGrid grid;
  grid.cols = cols;
  grid.rows = rows;
  grid.phase.resize(static_cast<std::size_t>(cols) * rows);
  double mean = 0;
  for (std::uint32_t r = 0; r < rows; ++r) {
    for (std::uint32_t c = 0; c < cols; ++c) {
      grid.phase[static_cast<std::size_t>(r) * cols + c] = phase(c, r);
      mean += phase(c, r);
    }
  }
  mean /= static_cast<double>(grid.phase.size());
  for (auto& v : grid.phase) v -= mean;
  return grid;
}

TEST(Reconstruct, FlatWavefrontFromZeroSlopes) {
  const std::vector<double> zero(64, 0.0);
  const auto grid = reconstruct_wavefront(zero, zero, 8, 8);
  for (double v : grid.phase) EXPECT_NEAR(v, 0.0, 1e-9);
}

TEST(Reconstruct, RecoversTilt) {
  const auto tilt = [](double x, double y) { return 0.3 * x - 0.1 * y; };
  const auto [sx, sy] = slopes_of(12, 10, tilt);
  const auto reconstructed = reconstruct_wavefront(sx, sy, 12, 10);
  const auto truth = grid_of(12, 10, tilt);
  EXPECT_LT(rms_phase_difference(reconstructed, truth), 1e-6);
}

TEST(Reconstruct, RecoversDefocus) {
  const auto defocus = [](double x, double y) {
    const double cx = x - 5.5, cy = y - 5.5;
    return 0.05 * (cx * cx + cy * cy);
  };
  const auto [sx, sy] = slopes_of(12, 12, defocus);
  const auto reconstructed = reconstruct_wavefront(sx, sy, 12, 12);
  const auto truth = grid_of(12, 12, defocus);
  EXPECT_LT(rms_phase_difference(reconstructed, truth), 1e-4);
}

TEST(Reconstruct, PistonFreeOutput) {
  const auto tilt = [](double x, double) { return x * 2.0 + 100.0; };
  const auto [sx, sy] = slopes_of(8, 8, tilt);
  const auto grid = reconstruct_wavefront(sx, sy, 8, 8);
  double mean = 0;
  for (double v : grid.phase) mean += v;
  EXPECT_NEAR(mean / grid.phase.size(), 0.0, 1e-9);
}

TEST(Reconstruct, EndToEndFromSyntheticFrame) {
  // Frame -> centroids -> wavefront: the full AO pipeline on clean data.
  // The synthetic frame's truth displacements ARE the slope field.
  SensorGeometry geometry{.image_width = 256,
                          .image_height = 256,
                          .subaperture_px = 32};
  FrameOptions options;
  options.noise_sigma = 0;
  options.background = 0;
  const auto frame = make_frame(geometry, options);
  auto centroids = extract_centroids(
      frame, CentroidOptions{.method = Method::ThresholdedCoG,
                             .threshold = 100});
  const auto reconstructed = reconstruct_wavefront(centroids, geometry);

  std::vector<double> sx(frame.truth.size()), sy(frame.truth.size());
  for (std::size_t i = 0; i < frame.truth.size(); ++i) {
    sx[i] = frame.truth[i].dx;
    sy[i] = frame.truth[i].dy;
  }
  const auto from_truth = reconstruct_wavefront(sx, sy, geometry.grid_cols(),
                                                geometry.grid_rows());
  EXPECT_LT(rms_phase_difference(reconstructed, from_truth), 0.1);
}

TEST(ReconstructDeath, RejectsMismatchedSizes) {
  const std::vector<double> sx(64, 0.0), sy(32, 0.0);
  EXPECT_DEATH(reconstruct_wavefront(sx, sy, 8, 8), "Precondition");
}

}  // namespace
}  // namespace cig::apps::shwfs
