// Tests for trace-driven workloads: recorder semantics, the TracedArray
// instrumentation, coalescing, and replay against the cache simulator.
#include <gtest/gtest.h>

#include "mem/cache.h"
#include "mem/hierarchy.h"
#include "workload/trace.h"

namespace cig::workload {
namespace {

using mem::AccessKind;

TEST(TraceRecorder, RecordsInOrder) {
  TraceRecorder recorder;
  recorder.record(0x10, 4, AccessKind::Read);
  recorder.record(0x20, 8, AccessKind::Write);
  ASSERT_EQ(recorder.size(), 2u);
  EXPECT_EQ(recorder.trace()[0].address, 0x10u);
  EXPECT_EQ(recorder.trace()[1].size, 8u);
  EXPECT_EQ(recorder.reads(), 1u);
  EXPECT_EQ(recorder.writes(), 1u);
  EXPECT_EQ(recorder.requested_bytes(), 12u);
}

TEST(TraceRecorder, ClearEmpties) {
  TraceRecorder recorder;
  recorder.record(0, 4, AccessKind::Read);
  recorder.clear();
  EXPECT_TRUE(recorder.empty());
}

TEST(TraceRecorder, ReplayPreservesOrder) {
  TraceRecorder recorder;
  for (std::uint64_t i = 0; i < 10; ++i) {
    recorder.record(i * 4, 4, AccessKind::Read);
  }
  std::uint64_t expected = 0;
  recorder.replay([&](const mem::MemoryAccess& a) {
    EXPECT_EQ(a.address, expected);
    expected += 4;
  });
  EXPECT_EQ(expected, 40u);
}

TEST(TraceRecorder, UniqueLinesAndRange) {
  TraceRecorder recorder;
  recorder.record(0, 4, AccessKind::Read);
  recorder.record(60, 8, AccessKind::Read);  // straddles lines 0 and 1
  recorder.record(128, 4, AccessKind::Read);
  EXPECT_EQ(recorder.unique_lines(64), 3u);
  const auto [lo, hi] = recorder.address_range();
  EXPECT_EQ(lo, 0u);
  EXPECT_EQ(hi, 132u);
}

TEST(TraceRecorder, EmptyRangeIsZero) {
  TraceRecorder recorder;
  EXPECT_EQ(recorder.address_range(), (std::pair<std::uint64_t,
                                                 std::uint64_t>{0, 0}));
}

// --- coalescing ----------------------------------------------------------------

TEST(TraceCoalesce, MergesConsecutiveSameLineAccesses) {
  TraceRecorder recorder;
  for (std::uint64_t i = 0; i < 16; ++i) {
    recorder.record(i * 4, 4, AccessKind::Read);  // one 64 B line
  }
  const auto coalesced = recorder.coalesced(64);
  ASSERT_EQ(coalesced.size(), 1u);
  EXPECT_EQ(coalesced.trace()[0].size, 64u);
}

TEST(TraceCoalesce, DoesNotMergeAcrossLines) {
  TraceRecorder recorder;
  recorder.record(60, 4, AccessKind::Read);
  recorder.record(64, 4, AccessKind::Read);  // next line
  EXPECT_EQ(recorder.coalesced(64).size(), 2u);
}

TEST(TraceCoalesce, DoesNotMergeReadsWithWrites) {
  TraceRecorder recorder;
  recorder.record(0, 4, AccessKind::Read);
  recorder.record(4, 4, AccessKind::Write);
  recorder.record(8, 4, AccessKind::Read);
  EXPECT_EQ(recorder.coalesced(64).size(), 3u);
}

TEST(TraceCoalesce, NonAdjacentSameLineStillMerges) {
  // Strided accesses within one line coalesce (warp semantics), even when
  // not byte-adjacent.
  TraceRecorder recorder;
  recorder.record(0, 4, AccessKind::Read);
  recorder.record(32, 4, AccessKind::Read);
  const auto coalesced = recorder.coalesced(64);
  ASSERT_EQ(coalesced.size(), 1u);
  EXPECT_EQ(coalesced.trace()[0].size, 36u);
}

// --- TracedArray ------------------------------------------------------------------

TEST(TracedArray, RecordsReadsAndWrites) {
  std::vector<float> data(8, 1.0f);
  TraceRecorder recorder;
  TracedArray<float> traced(data, 0x1000, recorder);

  const float x = traced[2];       // read
  traced[3] = x + 1.0f;            // write
  traced[3] += 2.0f;               // read + write

  ASSERT_EQ(recorder.size(), 4u);
  EXPECT_EQ(recorder.trace()[0].address, 0x1000u + 8);
  EXPECT_EQ(recorder.trace()[0].kind, AccessKind::Read);
  EXPECT_EQ(recorder.trace()[1].address, 0x1000u + 12);
  EXPECT_EQ(recorder.trace()[1].kind, AccessKind::Write);
  EXPECT_EQ(recorder.trace()[2].kind, AccessKind::Read);
  EXPECT_EQ(recorder.trace()[3].kind, AccessKind::Write);
  EXPECT_FLOAT_EQ(data[3], 4.0f);  // the computation really happened
}

TEST(TracedArray, RealLoopProducesLinearTrace) {
  std::vector<float> data(256, 2.0f);
  TraceRecorder recorder;
  TracedArray<float> traced(data, 0, recorder);

  // A real saxpy-like loop, unmodified apart from the wrapper.
  for (std::size_t i = 0; i < traced.size(); ++i) {
    traced[i] = traced.read(i) * 1.5f + 0.5f;
  }

  EXPECT_EQ(recorder.reads(), 256u);
  EXPECT_EQ(recorder.writes(), 256u);
  EXPECT_EQ(recorder.unique_lines(64), 256u * 4 / 64);
  for (float v : data) EXPECT_FLOAT_EQ(v, 3.5f);
}

// The headline property: replaying a traced loop against the exact cache
// simulator gives the same hit behaviour as the equivalent PatternSpec.
TEST(TracedArray, TraceMatchesEquivalentPattern) {
  std::vector<float> data(4096);
  TraceRecorder recorder;
  TracedArray<float> traced(data, 0, recorder);
  for (std::size_t i = 0; i < traced.size(); ++i) {
    traced[i] = 1.0f;  // write-only sweep over 16 KiB
  }
  const auto coalesced = recorder.coalesced(64);

  const auto geometry = mem::make_geometry(KiB(8), 64, 4);
  mem::SetAssocCache from_trace(geometry, mem::Replacement::Lru);
  coalesced.replay([&](const mem::MemoryAccess& a) {
    from_trace.access(a.address, a.kind);
  });

  mem::SetAssocCache from_pattern(geometry, mem::Replacement::Lru);
  mem::walk(mem::PatternSpec{.kind = mem::PatternKind::Linear,
                             .base = 0,
                             .extent = KiB(16),
                             .access_size = 4,
                             .rw = mem::RwMix::WriteOnly,
                             .passes = 1,
                             .line_hint = 64},
            [&](const mem::MemoryAccess& a) {
              from_pattern.access(a.address, a.kind);
            });

  EXPECT_EQ(from_trace.stats().write_misses,
            from_pattern.stats().write_misses);
  EXPECT_EQ(from_trace.stats().accesses(), from_pattern.stats().accesses());
}

TEST(TracedArray, UncoalescedTraceSeesPerElementAccesses) {
  std::vector<float> data(64);
  TraceRecorder recorder;
  TracedArray<float> traced(data, 0, recorder);
  for (std::size_t i = 0; i < traced.size(); ++i) traced[i] = 0.0f;
  // Raw trace: one access per element; coalesced: one per line.
  EXPECT_EQ(recorder.size(), 64u);
  EXPECT_EQ(recorder.coalesced(64).size(), 64u * 4 / 64);
}

}  // namespace
}  // namespace cig::workload

// --- trace-driven execution ---------------------------------------------------

#include "comm/executor.h"
#include "soc/presets.h"

namespace cig::workload {
namespace {

TEST(TraceDrivenExecutor, TraceEquivalentToPatternRun) {
  // A workload whose shared stream is a recorded linear sweep must time
  // exactly like the symbolic pattern describing the same sweep.
  const auto board = soc::generic_board();

  Workload by_pattern;
  by_pattern.name = "by-pattern";
  by_pattern.gpu.ops = 1000;
  by_pattern.gpu.pattern = mem::PatternSpec{.kind = mem::PatternKind::Linear,
                                            .base = 0x1000'0000,
                                            .extent = KiB(16),
                                            .access_size = 4,
                                            .rw = mem::RwMix::ReadOnly,
                                            .passes = 2,
                                            .line_hint = 64};
  by_pattern.cpu.ops = 500;
  by_pattern.cpu.pattern = by_pattern.gpu.pattern;
  by_pattern.h2d_bytes = KiB(16);
  by_pattern.iterations = 2;

  // Record the identical stream into a trace.
  auto recorder = std::make_shared<TraceRecorder>();
  mem::walk(by_pattern.gpu.pattern, [&](const mem::MemoryAccess& a) {
    recorder->record(a.address, a.size, a.kind);
  });
  Workload by_trace = by_pattern;
  by_trace.name = "by-trace";
  by_trace.gpu.shared_trace = recorder;

  soc::SoC soc_a(board);
  soc::SoC soc_b(board);
  comm::Executor exec_a(soc_a);
  comm::Executor exec_b(soc_b);
  const auto a = exec_a.run(by_pattern, comm::CommModel::StandardCopy);
  const auto b = exec_b.run(by_trace, comm::CommModel::StandardCopy);
  EXPECT_DOUBLE_EQ(a.kernel_time, b.kernel_time);
  EXPECT_DOUBLE_EQ(a.total, b.total);
  EXPECT_DOUBLE_EQ(a.gpu_demand_throughput, b.gpu_demand_throughput);
}

TEST(TraceDrivenExecutor, RealLoopTraceRunsUnderAllModels) {
  // Instrument a real computation, hand its coalesced trace to the
  // executor, and check the ZC-vs-SC relationship still emerges.
  std::vector<float> data(8192);
  TraceRecorder raw;
  TracedArray<float> traced(data, 0x1000'0000, raw);
  for (std::size_t i = 0; i < traced.size(); ++i) {
    traced[i] = traced.read(i) * 2.0f + 1.0f;
  }
  auto coalesced =
      std::make_shared<TraceRecorder>(raw.coalesced(64));

  Workload w;
  w.name = "traced-saxpy";
  w.gpu.ops = 16384;
  w.gpu.pattern = mem::PatternSpec{.kind = mem::PatternKind::Linear,
                                   .base = 0x1000'0000,
                                   .extent = 8192 * 4,
                                   .access_size = 4,
                                   .rw = mem::RwMix::ReadModifyWrite,
                                   .passes = 1,
                                   .line_hint = 64};
  w.gpu.shared_trace = coalesced;
  w.cpu.ops = 100;
  w.cpu.pattern.count = 0;
  w.cpu.pattern.kind = mem::PatternKind::SingleLocation;
  w.overlappable = false;

  soc::SoC soc(soc::jetson_tx2());
  comm::Executor executor(soc);
  const auto sc = executor.run(w, comm::CommModel::StandardCopy);
  const auto zc = executor.run(w, comm::CommModel::ZeroCopy);
  EXPECT_GT(zc.kernel_time, sc.kernel_time * 2);  // uncached pinned path
}

}  // namespace
}  // namespace cig::workload
