// Tests for the zero-copy tiled communication pattern (Section III-C):
// tiling derivation, disjointness, determinism of the concurrent schedule.
#include <gtest/gtest.h>

#include <map>
#include <mutex>
#include <set>
#include <vector>

#include "core/zc_pattern.h"
#include "soc/presets.h"

namespace cig::core {
namespace {

TEST(Tiling, MakeTilingUsesBoardGeometry) {
  const auto board = soc::jetson_tx2();
  const auto tiling = make_tiling(board, 4);
  // Structure sized to the GPU LLC (512 KiB of floats).
  EXPECT_EQ(tiling.total_elements,
            board.gpu.llc.geometry.capacity / sizeof(float));
  // Tile = min(CPU LLC line, GPU LLC line) = 64 B = 16 floats.
  EXPECT_EQ(tiling.tile_elements, 16u);
  EXPECT_EQ(tiling.phases, 4u);
}

TEST(Tiling, TileCountRoundsUp) {
  TilingConfig config{.total_elements = 100, .tile_elements = 16, .phases = 1};
  EXPECT_EQ(config.tile_count(), 7u);
}

TEST(TilingDeath, RejectsDegenerateConfigs) {
  TilingConfig config{.total_elements = 8, .tile_elements = 16, .phases = 1};
  EXPECT_DEATH(config.validate(), "Precondition");  // only one tile
}

TEST(TiledBuffer, TilesPartitionTheBuffer) {
  TiledBuffer buffer(
      TilingConfig{.total_elements = 100, .tile_elements = 16, .phases = 1});
  std::size_t total = 0;
  for (std::size_t t = 0; t < buffer.tile_count(); ++t) {
    total += buffer.tile(t).size();
  }
  EXPECT_EQ(total, 100u);
  EXPECT_EQ(buffer.tile(6).size(), 4u);  // ragged tail tile
}

TEST(TiledBuffer, TilesAreContiguousAndDisjoint) {
  TiledBuffer buffer(
      TilingConfig{.total_elements = 64, .tile_elements = 16, .phases = 1});
  for (std::size_t t = 1; t < buffer.tile_count(); ++t) {
    EXPECT_EQ(buffer.tile(t - 1).data() + buffer.tile(t - 1).size(),
              buffer.tile(t).data());
  }
}

TEST(Pipeline, SequentialAssignsParitiesPerPhase) {
  TiledBuffer buffer(
      TilingConfig{.total_elements = 64, .tile_elements = 16, .phases = 2});
  std::vector<std::pair<std::uint32_t, std::size_t>> cpu_log, gpu_log;
  const auto stats = run_zero_copy_pipeline(
      buffer,
      [&](std::span<float>, std::uint32_t phase, std::size_t tile) {
        cpu_log.emplace_back(phase, tile);
      },
      [&](std::span<float>, std::uint32_t phase, std::size_t tile) {
        gpu_log.emplace_back(phase, tile);
      },
      2, /*concurrent=*/false);
  EXPECT_EQ(stats.cpu_tiles, 4u);
  EXPECT_EQ(stats.gpu_tiles, 4u);
  // Phase 0: CPU even, GPU odd; phase 1 swapped.
  EXPECT_EQ(cpu_log[0], (std::pair<std::uint32_t, std::size_t>{0, 0}));
  EXPECT_EQ(cpu_log[1], (std::pair<std::uint32_t, std::size_t>{0, 2}));
  EXPECT_EQ(cpu_log[2], (std::pair<std::uint32_t, std::size_t>{1, 1}));
  EXPECT_EQ(gpu_log[0], (std::pair<std::uint32_t, std::size_t>{0, 1}));
  EXPECT_EQ(gpu_log[2], (std::pair<std::uint32_t, std::size_t>{1, 0}));
}

TEST(Pipeline, EveryTileVisitedByBothSidesOverTwoPhases) {
  TiledBuffer buffer(
      TilingConfig{.total_elements = 160, .tile_elements = 16, .phases = 2});
  std::set<std::size_t> cpu_tiles, gpu_tiles;
  run_zero_copy_pipeline(
      buffer,
      [&](std::span<float>, std::uint32_t, std::size_t t) {
        cpu_tiles.insert(t);
      },
      [&](std::span<float>, std::uint32_t, std::size_t t) {
        gpu_tiles.insert(t);
      },
      2, /*concurrent=*/false);
  EXPECT_EQ(cpu_tiles.size(), buffer.tile_count());
  EXPECT_EQ(gpu_tiles.size(), buffer.tile_count());
}

TEST(Pipeline, ConcurrentNeverSharesATileWithinAPhase) {
  TiledBuffer buffer(
      TilingConfig{.total_elements = 4096, .tile_elements = 16, .phases = 8});
  std::mutex mutex;
  std::map<std::uint32_t, std::set<std::size_t>> cpu_by_phase, gpu_by_phase;
  run_zero_copy_pipeline(
      buffer,
      [&](std::span<float>, std::uint32_t phase, std::size_t t) {
        std::lock_guard lock(mutex);
        cpu_by_phase[phase].insert(t);
      },
      [&](std::span<float>, std::uint32_t phase, std::size_t t) {
        std::lock_guard lock(mutex);
        gpu_by_phase[phase].insert(t);
      },
      8, /*concurrent=*/true);
  for (std::uint32_t phase = 0; phase < 8; ++phase) {
    for (std::size_t t : cpu_by_phase[phase]) {
      EXPECT_EQ(gpu_by_phase[phase].count(t), 0u)
          << "tile " << t << " shared in phase " << phase;
    }
  }
}

// The headline property: the concurrent pipelined execution produces
// exactly the same data as the sequential reference (deterministic results
// without per-access synchronisation).
class PipelineDeterminism : public ::testing::TestWithParam<
                                std::tuple<std::size_t, std::uint32_t>> {};

TEST_P(PipelineDeterminism, ConcurrentMatchesSequential) {
  const auto [elements, phases] = GetParam();
  const TilingConfig config{
      .total_elements = elements, .tile_elements = 16, .phases = phases};

  // Producer adds a phase/tile-dependent value; consumer squares tiles.
  const auto producer = [](std::span<float> tile, std::uint32_t phase,
                           std::size_t index) {
    for (std::size_t i = 0; i < tile.size(); ++i) {
      tile[i] += static_cast<float>(phase * 31 + index * 7 + i);
    }
  };
  const auto consumer = [](std::span<float> tile, std::uint32_t phase,
                           std::size_t) {
    for (auto& v : tile) v = v * 0.5f + static_cast<float>(phase);
  };

  TiledBuffer sequential(config);
  run_zero_copy_pipeline(sequential, producer, consumer, phases, false);

  for (int run = 0; run < 3; ++run) {
    TiledBuffer concurrent(config);
    run_zero_copy_pipeline(concurrent, producer, consumer, phases, true);
    ASSERT_EQ(concurrent.all().size(), sequential.all().size());
    for (std::size_t i = 0; i < sequential.all().size(); ++i) {
      ASSERT_EQ(concurrent.all()[i], sequential.all()[i])
          << "element " << i << " run " << run;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, PipelineDeterminism,
    ::testing::Combine(::testing::Values(64, 1000, 4096),
                       ::testing::Values(1u, 2u, 5u)));

TEST(Pipeline, StatsCountPhases) {
  TiledBuffer buffer(
      TilingConfig{.total_elements = 64, .tile_elements = 16, .phases = 3});
  const auto stats = run_zero_copy_pipeline(
      buffer, [](std::span<float>, std::uint32_t, std::size_t) {},
      [](std::span<float>, std::uint32_t, std::size_t) {}, 3, true);
  EXPECT_EQ(stats.phases, 3u);
  EXPECT_EQ(stats.cpu_tiles + stats.gpu_tiles, 4u * 3);
}

TEST(PipelineDeath, RejectsNullCallbacks) {
  TiledBuffer buffer(
      TilingConfig{.total_elements = 64, .tile_elements = 16, .phases = 1});
  EXPECT_DEATH(run_zero_copy_pipeline(buffer, nullptr,
                                      [](std::span<float>, std::uint32_t,
                                         std::size_t) {},
                                      1),
               "Precondition");
}

TEST(TiledBufferDeath, TileIndexOutOfRange) {
  TiledBuffer buffer(
      TilingConfig{.total_elements = 64, .tile_elements = 16, .phases = 1});
  EXPECT_DEATH(buffer.tile(4), "Precondition");
}

}  // namespace
}  // namespace cig::core
