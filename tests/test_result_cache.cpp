// Tests for the content-addressed result cache (core/result_cache.h) and
// the end-to-end determinism guarantees it depends on: characterization is
// byte-identical across job counts, across cache hits vs fresh runs, and
// corrupt, stale or torn journal records degrade to misses instead of
// failures.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "core/framework.h"
#include "core/result_cache.h"
#include "core/sweep.h"
#include "persist/journal.h"
#include "sim/stat_registry.h"
#include "soc/presets.h"
#include "support/hash.h"

namespace cig::core {
namespace {

namespace fs = std::filesystem;

// Fresh scratch directory per test.
class ResultCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (fs::temp_directory_path() /
            ("cig-cache-test-" +
             std::string(::testing::UnitTest::GetInstance()
                             ->current_test_info()
                             ->name())))
               .string();
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string dir_;
};

Json payload(double x) {
  Json j;
  j["x"] = Json(x);
  return j;
}

TEST_F(ResultCacheTest, MemoryHitAfterStore) {
  ResultCache cache;  // memory-only
  EXPECT_FALSE(cache.lookup("sweep", "k1").has_value());
  cache.store("sweep", "k1", payload(1.5));
  const auto hit = cache.lookup("sweep", "k1");
  ASSERT_TRUE(hit.has_value());
  EXPECT_DOUBLE_EQ(hit->at("x").as_number(), 1.5);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().stores, 1u);
  EXPECT_EQ(cache.stats().disk_hits, 0u);
}

TEST_F(ResultCacheTest, KindsAreSeparateNamespaces) {
  ResultCache cache;
  cache.store("sweep", "k", payload(1));
  EXPECT_FALSE(cache.lookup("characterization", "k").has_value());
}

TEST_F(ResultCacheTest, DiskRoundTripAcrossInstances) {
  {
    ResultCache writer(dir_);
    writer.store("sweep", "key-text", payload(2.25));
  }
  ResultCache reader(dir_);
  const auto hit = reader.lookup("sweep", "key-text");
  ASSERT_TRUE(hit.has_value());
  EXPECT_DOUBLE_EQ(hit->at("x").as_number(), 2.25);
  EXPECT_EQ(reader.stats().disk_hits, 1u);

  // Promoted to memory: a second lookup must not be a disk hit again.
  ASSERT_TRUE(reader.lookup("sweep", "key-text").has_value());
  EXPECT_EQ(reader.stats().hits, 2u);
  EXPECT_EQ(reader.stats().disk_hits, 1u);
}

TEST_F(ResultCacheTest, TornJournalTailTruncatedOnRecovery) {
  {
    ResultCache writer(dir_);
    writer.store("sweep", "a", payload(3));
    writer.store("sweep", "b", payload(4));
  }
  // A crash mid-append leaves a partial frame at the tail; recovery must
  // keep every intact record and truncate the rest.
  std::ofstream(fs::path(dir_) / "cache.journal",
                std::ios::app | std::ios::binary)
      .write("\x40\x00\x00\x00\x1f\x2e", 6);

  ResultCache reader(dir_);
  const auto hit = reader.lookup("sweep", "a");
  ASSERT_TRUE(hit.has_value());
  EXPECT_DOUBLE_EQ(hit->at("x").as_number(), 3.0);
  EXPECT_TRUE(reader.lookup("sweep", "b").has_value());
  EXPECT_EQ(reader.stats().recovered, 2u);
  EXPECT_EQ(reader.stats().torn_discarded, 1u);

  sim::StatRegistry registry;
  reader.export_stats(registry);
  EXPECT_EQ(registry.get("persist.recovered"), 2.0);
  EXPECT_EQ(registry.get("persist.torn_discarded"), 1.0);
}

TEST_F(ResultCacheTest, UnparsableRecordDroppedAndOverwritable) {
  fs::create_directories(dir_);
  {
    // Checksum-valid frame around garbage: framing cannot catch it, the
    // JSON parse must — and it must stay a dropped record, never an error.
    persist::Journal journal((fs::path(dir_) / "cache.journal").string());
    journal.append("{ not json");
  }
  ResultCache reader(dir_);
  EXPECT_FALSE(reader.lookup("sweep", "k").has_value());
  EXPECT_EQ(reader.stats().corrupt_dropped, 1u);

  // The store path appends a fresh record and the cache recovers.
  reader.store("sweep", "k", payload(4));
  ResultCache reader2(dir_);
  const auto hit = reader2.lookup("sweep", "k");
  ASSERT_TRUE(hit.has_value());
  EXPECT_DOUBLE_EQ(hit->at("x").as_number(), 4.0);
}

TEST_F(ResultCacheTest, MissingSchemaFieldIgnoredNotFatal) {
  fs::create_directories(dir_);
  {
    persist::Journal journal((fs::path(dir_) / "cache.journal").string());
    Json record;  // parses fine, but carries no "schema" field at all
    record["kind"] = Json(std::string("sweep"));
    record["key_text"] = Json(std::string("k"));
    record["value"] = payload(7);
    journal.append(record.dump());
  }
  ResultCache reader(dir_);
  EXPECT_FALSE(reader.lookup("sweep", "k").has_value());
  EXPECT_EQ(reader.stats().invalid, 1u);
  EXPECT_EQ(reader.stats().corrupt_dropped, 0u);

  sim::StatRegistry registry;
  reader.export_stats(registry);
  EXPECT_EQ(registry.get("cache.invalid"), 1.0);
}

TEST_F(ResultCacheTest, StaleSchemaTagTreatedAsMiss) {
  fs::create_directories(dir_);
  {
    persist::Journal journal((fs::path(dir_) / "cache.journal").string());
    Json stale;
    stale["schema"] = Json(std::string("cig-result-cache-v0"));
    stale["kind"] = Json(std::string("sweep"));
    stale["key_text"] = Json(std::string("k"));
    stale["value"] = payload(5);
    journal.append(stale.dump());
  }
  ResultCache reader(dir_);
  EXPECT_FALSE(reader.lookup("sweep", "k").has_value());
  EXPECT_EQ(reader.stats().corrupt_dropped, 1u);
}

TEST_F(ResultCacheTest, LaterRecordOverridesEarlier) {
  {
    ResultCache writer(dir_);
    writer.store("sweep", "k", payload(1));
    writer.store("sweep", "k", payload(2));
  }
  ResultCache reader(dir_);
  const auto hit = reader.lookup("sweep", "k");
  ASSERT_TRUE(hit.has_value());
  EXPECT_DOUBLE_EQ(hit->at("x").as_number(), 2.0);
  // Two journal records, one live entry.
  EXPECT_EQ(reader.disk_usage().entries, 1u);
}

TEST_F(ResultCacheTest, LegacyEntryFilesCountedAndCleared) {
  ResultCache cache(dir_);
  cache.store("sweep", "a", payload(1));
  // A per-entry file from the pre-journal disk format.
  std::ofstream(fs::path(dir_) /
                ("sweep-" + support::fnv1a64_hex(ResultCache::key_of("old")) +
                 ".json"))
      << "{}";
  EXPECT_EQ(cache.disk_usage().entries, 2u);
  EXPECT_EQ(cache.clear(), 2u);
  EXPECT_EQ(cache.disk_usage().entries, 0u);
}

TEST_F(ResultCacheTest, DiskUsageAndClear) {
  ResultCache cache(dir_);
  cache.store("sweep", "a", payload(1));
  cache.store("sweep", "b", payload(2));
  cache.store("characterization", "c", payload(3));
  const auto usage = cache.disk_usage();
  EXPECT_EQ(usage.entries, 3u);
  EXPECT_GT(usage.bytes, 0u);

  // A foreign file in the directory is not ours to delete.
  std::ofstream(fs::path(dir_) / "notes.txt") << "keep me\n";
  EXPECT_EQ(cache.clear(), 3u);
  EXPECT_EQ(cache.disk_usage().entries, 0u);
  EXPECT_TRUE(fs::exists(fs::path(dir_) / "notes.txt"));
  EXPECT_FALSE(cache.lookup("sweep", "a").has_value());
}

TEST_F(ResultCacheTest, MemoryOnlyCacheHasNoDiskFootprint) {
  ResultCache cache;
  cache.store("sweep", "k", payload(1));
  const auto usage = cache.disk_usage();
  EXPECT_EQ(usage.entries, 0u);
  EXPECT_EQ(usage.bytes, 0u);
  EXPECT_EQ(cache.clear(), 0u);
}

// An unusable --cache-dir must cost one warning and the disk tier — never
// the run. A path under a regular file cannot be created for any uid
// (chmod-based probes are useless under root, which ignores mode bits).
TEST_F(ResultCacheTest, UnusableDirDisablesDiskTierAndKeepsServing) {
  fs::create_directories(dir_);
  const std::string blocker = dir_ + "/blocker";
  { std::ofstream out(blocker); out << "regular file\n"; }

  ResultCache cache(blocker + "/sub");
  EXPECT_TRUE(cache.disk_enabled());  // not probed yet

  cache.store("sweep", "k1", payload(1.5));    // disk write fails silently
  const auto hit = cache.lookup("sweep", "k1");  // memory still serves
  ASSERT_TRUE(hit.has_value());
  EXPECT_DOUBLE_EQ(hit->at("x").as_number(), 1.5);

  EXPECT_FALSE(cache.disk_enabled());
  EXPECT_EQ(cache.stats().disabled, 1u);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().stores, 1u);

  sim::StatRegistry registry;
  cache.export_stats(registry);
  EXPECT_EQ(registry.get("cache.disabled"), 1.0);
}

TEST_F(ResultCacheTest, UsableDirReportsDiskEnabled) {
  ResultCache cache(dir_);
  cache.store("sweep", "k1", payload(2.0));
  EXPECT_TRUE(cache.disk_enabled());
  EXPECT_EQ(cache.stats().disabled, 0u);
  sim::StatRegistry registry;
  cache.export_stats(registry);
  EXPECT_EQ(registry.get("cache.disabled"), 0.0);
}

// --- end-to-end determinism ----------------------------------------------------

// The guarantee everything else rests on: fanning the MB2 sweeps out over a
// worker pool changes nothing, for any board preset.
TEST(SweepDeterminism, CharacterizationIdenticalAcrossJobCounts) {
  for (const auto& board : {soc::jetson_nano(), soc::jetson_tx2(),
                            soc::jetson_agx_xavier()}) {
    SweepOptions serial;
    serial.jobs = 1;
    Framework reference(board, {}, serial);
    const std::string expected = reference.device().to_json().dump();

    SweepOptions pooled;
    pooled.jobs = 8;
    Framework parallel(board, {}, pooled);
    EXPECT_EQ(parallel.device().to_json().dump(), expected)
        << "board " << board.name;
  }
}

TEST(SweepDeterminism, SweepPointsIdenticalAcrossJobCounts) {
  const auto board = soc::jetson_tx2();
  SweepOptions serial;
  serial.jobs = 1;
  SweepOptions pooled;
  pooled.jobs = 8;
  const auto a = mb2_gpu_sweep(board, {}, serial);
  const auto b = mb2_gpu_sweep(board, {}, pooled);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].to_json().dump(), b[i].to_json().dump()) << "point " << i;
  }
}

TEST(SweepDeterminism, CachedCharacterizationByteIdenticalToFresh) {
  const auto dir =
      (std::filesystem::temp_directory_path() / "cig-cache-test-warm")
          .string();
  std::filesystem::remove_all(dir);
  const auto board = soc::jetson_tx2();

  Framework fresh(board);
  const std::string expected = fresh.device().to_json().dump();

  ResultCache cache(dir);
  sim::StatRegistry cold_stats;
  SweepOptions cold;
  cold.cache = &cache;
  cold.stats = &cold_stats;
  Framework first(board, {}, cold);
  EXPECT_EQ(first.device().to_json().dump(), expected);
  EXPECT_EQ(cold_stats.get("cache.hit"), 0.0);

  // Second framework, same cache dir: everything must come from the cache
  // (cache.hit > 0) and still be byte-identical.
  ResultCache warm_cache(dir);
  sim::StatRegistry warm_stats;
  SweepOptions warm;
  warm.cache = &warm_cache;
  warm.stats = &warm_stats;
  Framework second(board, {}, warm);
  EXPECT_EQ(second.device().to_json().dump(), expected);
  EXPECT_GT(warm_stats.get("cache.hit"), 0.0);
  EXPECT_EQ(warm_stats.get("cache.miss"), 0.0);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace cig::core
