// Tests for the minimal JSON value type, parser and writer.
#include <gtest/gtest.h>

#include "support/json.h"

namespace cig {
namespace {

// --- value type -----------------------------------------------------------------

TEST(JsonValue, DefaultIsNull) {
  Json j;
  EXPECT_TRUE(j.is_null());
}

TEST(JsonValue, TypePredicates) {
  EXPECT_TRUE(Json(true).is_bool());
  EXPECT_TRUE(Json(3.5).is_number());
  EXPECT_TRUE(Json(42).is_number());
  EXPECT_TRUE(Json("hi").is_string());
  EXPECT_TRUE(Json(JsonArray{}).is_array());
  EXPECT_TRUE(Json(JsonObject{}).is_object());
}

TEST(JsonValue, CheckedAccessorsThrowOnMismatch) {
  EXPECT_THROW(Json(1.0).as_string(), std::runtime_error);
  EXPECT_THROW(Json("x").as_number(), std::runtime_error);
  EXPECT_THROW(Json(true).as_array(), std::runtime_error);
}

TEST(JsonValue, ObjectBuilderCreatesMembers) {
  Json j;
  j["a"] = Json(1.0);
  j["b"]["nested"] = Json("x");
  EXPECT_DOUBLE_EQ(j.at("a").as_number(), 1.0);
  EXPECT_EQ(j.at("b").at("nested").as_string(), "x");
}

TEST(JsonValue, ArrayBuilderAppends) {
  Json j;
  j.push_back(Json(1.0));
  j.push_back(Json("two"));
  ASSERT_EQ(j.as_array().size(), 2u);
  EXPECT_EQ(j.as_array()[1].as_string(), "two");
}

TEST(JsonValue, FallbackAccessors) {
  Json j;
  j["present"] = Json(5.0);
  EXPECT_DOUBLE_EQ(j.number_or("present", 1.0), 5.0);
  EXPECT_DOUBLE_EQ(j.number_or("absent", 1.0), 1.0);
  EXPECT_EQ(j.string_or("absent", "fb"), "fb");
  EXPECT_TRUE(j.bool_or("absent", true));
  EXPECT_THROW(j.at("absent"), std::runtime_error);
}

// --- parsing --------------------------------------------------------------------

TEST(JsonParse, Scalars) {
  EXPECT_TRUE(Json::parse("null").is_null());
  EXPECT_TRUE(Json::parse("true").as_bool());
  EXPECT_FALSE(Json::parse("false").as_bool());
  EXPECT_DOUBLE_EQ(Json::parse("3.25").as_number(), 3.25);
  EXPECT_DOUBLE_EQ(Json::parse("-17").as_number(), -17);
  EXPECT_DOUBLE_EQ(Json::parse("1.5e3").as_number(), 1500);
  EXPECT_EQ(Json::parse("\"hello\"").as_string(), "hello");
}

TEST(JsonParse, NestedStructure) {
  const auto j = Json::parse(R"({
    "name": "tx2",
    "cores": 4,
    "caches": [{"level": 1, "kib": 32}, {"level": 2, "kib": 2048}],
    "io_coherent": false
  })");
  EXPECT_EQ(j.at("name").as_string(), "tx2");
  EXPECT_DOUBLE_EQ(j.at("cores").as_number(), 4);
  ASSERT_EQ(j.at("caches").as_array().size(), 2u);
  EXPECT_DOUBLE_EQ(j.at("caches").as_array()[1].at("kib").as_number(), 2048);
  EXPECT_FALSE(j.at("io_coherent").as_bool());
}

TEST(JsonParse, StringEscapes) {
  EXPECT_EQ(Json::parse(R"("a\"b\\c\nd\te")").as_string(), "a\"b\\c\nd\te");
  EXPECT_EQ(Json::parse(R"("Aé")").as_string(), "A\xC3\xA9");
}

TEST(JsonParse, EmptyContainers) {
  EXPECT_TRUE(Json::parse("[]").as_array().empty());
  EXPECT_TRUE(Json::parse("{}").as_object().empty());
  EXPECT_TRUE(Json::parse("  [ ]  ").as_array().empty());
}

TEST(JsonParse, WhitespaceTolerant) {
  const auto j = Json::parse(" {\n\t\"a\" :\t[ 1 ,2 ] }\r\n");
  EXPECT_EQ(j.at("a").as_array().size(), 2u);
}

TEST(JsonParse, ErrorsCarryOffsets) {
  EXPECT_THROW(Json::parse(""), JsonParseError);
  EXPECT_THROW(Json::parse("{"), JsonParseError);
  EXPECT_THROW(Json::parse("[1,]"), JsonParseError);
  EXPECT_THROW(Json::parse("{\"a\":}"), JsonParseError);
  EXPECT_THROW(Json::parse("tru"), JsonParseError);
  EXPECT_THROW(Json::parse("1 2"), JsonParseError);
  EXPECT_THROW(Json::parse("\"unterminated"), JsonParseError);
  EXPECT_THROW(Json::parse("{'single':1}"), JsonParseError);
}

TEST(JsonParse, RejectsControlCharactersInStrings) {
  EXPECT_THROW(Json::parse("\"a\nb\""), JsonParseError);
}

// --- round trips -----------------------------------------------------------------

TEST(JsonRoundTrip, CompactAndPretty) {
  Json j;
  j["b"] = Json(true);
  j["n"] = Json(2.5);
  j["s"] = Json("text with \"quotes\"");
  j["list"].push_back(Json(1.0));
  j["list"].push_back(Json(nullptr));

  for (int indent : {0, 2, 4}) {
    const auto reparsed = Json::parse(j.dump(indent));
    EXPECT_EQ(reparsed, j) << "indent " << indent;
  }
}

TEST(JsonRoundTrip, IntegersStayIntegral) {
  EXPECT_EQ(Json(1024).dump(), "1024");
  EXPECT_EQ(Json(-3).dump(), "-3");
  EXPECT_EQ(Json::parse(Json(1e12).dump()).as_number(), 1e12);
}

TEST(JsonRoundTrip, DoublesSurvive) {
  const double value = 97.340000000000003;
  EXPECT_DOUBLE_EQ(Json::parse(Json(value).dump()).as_number(), value);
}

TEST(JsonDump, ObjectKeysSortedDeterministically) {
  Json j;
  j["zeta"] = Json(1.0);
  j["alpha"] = Json(2.0);
  const std::string s = j.dump();
  EXPECT_LT(s.find("alpha"), s.find("zeta"));
}

}  // namespace
}  // namespace cig
