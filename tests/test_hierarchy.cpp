// Tests for the multi-level hierarchy walker: service attribution, byte
// accounting, enable/disable semantics, uncached path.
#include <gtest/gtest.h>

#include <memory>

#include "mem/hierarchy.h"

namespace cig::mem {
namespace {

class HierarchyTest : public ::testing::Test {
 protected:
  HierarchyTest()
      : dram_(DramConfig{.bandwidth = GBps(10),
                         .latency = nanosec(100),
                         .uncached_efficiency = 0.1,
                         .energy_per_byte = 40e-12}),
        l1_(make_geometry(KiB(1), 64, 2), Replacement::Lru),
        llc_(make_geometry(KiB(8), 64, 4), Replacement::Lru),
        hierarchy_({{&l1_, GBps(50), nanosec(1), true, "L1"},
                    {&llc_, GBps(20), nanosec(8), true, "LLC"}},
                   &dram_) {}

  MainMemory dram_;
  SetAssocCache l1_;
  SetAssocCache llc_;
  MemoryHierarchy hierarchy_;
};

TEST_F(HierarchyTest, ColdAccessReachesDram) {
  EXPECT_EQ(hierarchy_.access({0x0, 4, AccessKind::Read}),
            MemoryHierarchy::kDram);
  EXPECT_EQ(hierarchy_.counters().dram_served, 1u);
  EXPECT_EQ(hierarchy_.counters().dram_read_served, 1u);
  // Fill granularity is the LLC line.
  EXPECT_EQ(hierarchy_.counters().dram_bytes, 64u);
}

TEST_F(HierarchyTest, SecondAccessHitsL1) {
  hierarchy_.access({0x0, 4, AccessKind::Read});
  EXPECT_EQ(hierarchy_.access({0x0, 4, AccessKind::Read}), 0u);
  EXPECT_EQ(hierarchy_.counters().level[0].served, 1u);
  // An L1 hit delivers only the requested bytes, not a whole line.
  EXPECT_EQ(hierarchy_.counters().level[0].bytes, 4u);
}

TEST_F(HierarchyTest, L1EvictionServedByLlc) {
  // Touch 3 lines mapping to the same L1 set (1 KiB, 2-way, 8 sets).
  const std::uint64_t l1_set_stride = 64 * 8;
  hierarchy_.access({0 * l1_set_stride, 4, AccessKind::Read});
  hierarchy_.access({1 * l1_set_stride, 4, AccessKind::Read});
  hierarchy_.access({2 * l1_set_stride, 4, AccessKind::Read});
  // First line evicted from L1 but still in the (8 KiB) LLC.
  EXPECT_EQ(hierarchy_.access({0, 4, AccessKind::Read}), 1u);
  EXPECT_EQ(hierarchy_.counters().level[1].served, 1u);
  EXPECT_EQ(hierarchy_.counters().level[1].bytes, 64u);  // line fill upward
}

TEST_F(HierarchyTest, WriteCountsAsNonReadServe) {
  hierarchy_.access({0x0, 4, AccessKind::Write});
  EXPECT_EQ(hierarchy_.counters().dram_served, 1u);
  EXPECT_EQ(hierarchy_.counters().dram_read_served, 0u);
}

TEST_F(HierarchyTest, DisabledL1FallsThroughToLlc) {
  hierarchy_.set_enabled(0, false);
  hierarchy_.access({0x0, 4, AccessKind::Read});
  hierarchy_.access({0x0, 4, AccessKind::Read});
  EXPECT_EQ(hierarchy_.counters().level[0].served, 0u);
  EXPECT_EQ(hierarchy_.counters().level[1].served, 1u);
  // With L1 off, an LLC hit is the first enabled level: requested bytes.
  EXPECT_EQ(hierarchy_.counters().level[1].bytes, 4u);
}

TEST_F(HierarchyTest, AllDisabledUsesUncachedPath) {
  hierarchy_.set_enabled(0, false);
  hierarchy_.set_enabled(1, false);
  EXPECT_FALSE(hierarchy_.any_level_enabled());
  hierarchy_.access({0x0, 4, AccessKind::Read});
  hierarchy_.access({0x4, 4, AccessKind::Write});
  const auto& c = hierarchy_.counters();
  EXPECT_EQ(c.uncached_served, 2u);
  EXPECT_EQ(c.uncached_read_served, 1u);
  EXPECT_EQ(c.uncached_bytes, 8u);  // natural granularity, no line fills
  EXPECT_EQ(c.dram_served, 0u);
  EXPECT_EQ(dram_.uncached_bytes(), 8u);
}

TEST_F(HierarchyTest, RequestedBytesTracksDemand) {
  hierarchy_.access({0x0, 4, AccessKind::Read});
  hierarchy_.access({0x40, 16, AccessKind::Read});
  EXPECT_EQ(hierarchy_.counters().requested_bytes, 20u);
  EXPECT_EQ(hierarchy_.counters().total_accesses, 2u);
}

TEST_F(HierarchyTest, DirtyL1VictimWritesBackToLlc) {
  const std::uint64_t l1_set_stride = 64 * 8;
  hierarchy_.access({0, 4, AccessKind::Write});
  hierarchy_.access({1 * l1_set_stride, 4, AccessKind::Read});
  hierarchy_.reset_counters();
  hierarchy_.access({2 * l1_set_stride, 4, AccessKind::Read});  // evicts dirty
  // The dirty line moved down to the LLC: its bytes appear at level 1.
  EXPECT_EQ(hierarchy_.counters().level[1].bytes, 64u);
}

TEST_F(HierarchyTest, LastEnabledTracksEnables) {
  EXPECT_EQ(hierarchy_.last_enabled(), 1u);
  hierarchy_.set_enabled(1, false);
  EXPECT_EQ(hierarchy_.last_enabled(), 0u);
  hierarchy_.set_enabled(0, false);
  EXPECT_EQ(hierarchy_.last_enabled(), MemoryHierarchy::kDram);
}

TEST_F(HierarchyTest, ResetCountersZeroesEverything) {
  hierarchy_.access({0x0, 4, AccessKind::Read});
  hierarchy_.reset_counters();
  const auto& c = hierarchy_.counters();
  EXPECT_EQ(c.total_accesses, 0u);
  EXPECT_EQ(c.dram_bytes, 0u);
  EXPECT_EQ(c.level[0].served, 0u);
  EXPECT_EQ(c.level[1].served, 0u);
}

TEST_F(HierarchyTest, AccessLinearWalksWholeSpan) {
  hierarchy_.access_linear(0, 1024, AccessKind::Read);
  EXPECT_EQ(hierarchy_.counters().total_accesses, 1024u / 64);
  EXPECT_EQ(hierarchy_.counters().requested_bytes, 1024u);
}

TEST_F(HierarchyTest, AccessLinearZeroBytesIsNoop) {
  hierarchy_.access_linear(0, 0, AccessKind::Read);
  EXPECT_EQ(hierarchy_.counters().total_accesses, 0u);
}

TEST_F(HierarchyTest, DramTrafficEnergyAccrues) {
  hierarchy_.access({0x0, 4, AccessKind::Read});
  EXPECT_GT(dram_.total_bytes(), 0u);
  EXPECT_GT(dram_.traffic_energy(), 0.0);
  dram_.reset_traffic();
  EXPECT_EQ(dram_.total_bytes(), 0u);
}

TEST(MainMemory, UncachedBandwidthScales) {
  MainMemory m(DramConfig{.bandwidth = GBps(60),
                          .latency = nanosec(100),
                          .uncached_efficiency = 0.05,
                          .energy_per_byte = 0});
  EXPECT_DOUBLE_EQ(m.cached_bandwidth(), GBps(60));
  EXPECT_DOUBLE_EQ(m.uncached_bandwidth(), GBps(3));
}

// Steady-state property: a working set fitting the LLC but not L1 is served
// by the LLC after warmup (the MB1 "LL-L1 throughput" situation).
TEST_F(HierarchyTest, LlcBandWorkingSetServedByLlc) {
  const Bytes span = KiB(4);  // > 1 KiB L1, < 8 KiB LLC
  for (int pass = 0; pass < 3; ++pass) {
    hierarchy_.access_linear(0, span, AccessKind::Read);
  }
  hierarchy_.reset_counters();
  hierarchy_.access_linear(0, span, AccessKind::Read);
  const auto& c = hierarchy_.counters();
  EXPECT_EQ(c.dram_served, 0u);
  EXPECT_GT(c.level[1].served, c.level[0].served);
}

}  // namespace
}  // namespace cig::mem
