// Tests for the decision engine (the Fig. 2 flow), using a fabricated
// device characterization so every branch is reachable deterministically.
#include <gtest/gtest.h>

#include "core/decision.h"
#include "core/framework.h"
#include "runtime/hysteresis.h"
#include "soc/presets.h"

namespace cig::core {
namespace {

using comm::CommModel;

DeviceCharacterization fake_device() {
  DeviceCharacterization d;
  d.board = "fake";
  d.capability = coherence::Capability::HwIoCoherent;  // grey zone exists
  // MB1: SC LL throughput 100 GB/s; ZC kernel 10x slower.
  d.mb1.gpu_ll_throughput[model_index(CommModel::StandardCopy)] = GBps(100);
  d.mb1.gpu_ll_throughput[model_index(CommModel::UnifiedMemory)] = GBps(107);
  d.mb1.gpu_ll_throughput[model_index(CommModel::ZeroCopy)] = GBps(10);
  d.mb1.gpu_time[model_index(CommModel::StandardCopy)] = microsec(100);
  d.mb1.gpu_time[model_index(CommModel::UnifiedMemory)] = microsec(95);
  d.mb1.gpu_time[model_index(CommModel::ZeroCopy)] = microsec(1000);
  // MB2: GPU threshold 10%, zone 2 up to 50%; CPU threshold 20%.
  d.mb2.gpu.threshold_pct = 10.0;
  d.mb2.gpu.zone2_end_pct = 50.0;
  d.mb2.gpu.peak_throughput = GBps(100);
  d.mb2.cpu.threshold_pct = 20.0;
  d.mb2.cpu.zone2_end_pct = 60.0;
  d.mb2.cpu.peak_throughput = GBps(20);
  // MB3: overlapped ZC up to 2x faster than SC.
  d.mb3.total_time[model_index(CommModel::StandardCopy)] = millisec(2);
  d.mb3.total_time[model_index(CommModel::UnifiedMemory)] = millisec(2.1);
  d.mb3.total_time[model_index(CommModel::ZeroCopy)] = millisec(1);
  return d;
}

// Profile with the given cache behaviour; kernel demand is chosen so that
// eqn 2 yields `gpu_usage_pct` against the fake 100 GB/s peak.
profile::ProfileReport fake_profile(CommModel model, double gpu_usage_pct,
                                    double cpu_usage_fraction) {
  profile::ProfileReport p;
  p.workload = "app";
  p.board = "fake";
  p.model = model;
  p.kernel_time = microsec(100);
  p.cpu_time = microsec(80);
  p.copy_time = microsec(20);
  p.total_time = microsec(220);
  p.gpu_transaction_size = 4;
  p.gpu_l1_hit_rate = 0.0;
  // The decision engine normalises eqn 2 by the MB1 peak of the model the
  // profile was taken under; build the demand accordingly so
  // `gpu_usage_pct` is the resulting usage.
  const double peak = model == CommModel::ZeroCopy
                          ? 10e9
                          : model == CommModel::UnifiedMemory ? 107e9 : 100e9;
  p.gpu_transactions = gpu_usage_pct / 100.0 * peak * 100e-6 / 4.0;
  p.cpu_l1_miss_rate = cpu_usage_fraction;  // with LLC miss 0 -> usage == this
  p.cpu_llc_miss_rate = 0.0;
  return p;
}

class DecisionTest : public ::testing::Test {
 protected:
  DecisionEngine engine_{fake_device()};
};

TEST_F(DecisionTest, Zone3OnScKeepsSc) {
  const auto rec =
      engine_.recommend(fake_profile(CommModel::StandardCopy, 80.0, 0.05));
  EXPECT_EQ(rec.gpu_zone, Zone::CacheBound);
  EXPECT_FALSE(rec.switch_model);
  EXPECT_EQ(rec.suggested, CommModel::StandardCopy);
}

TEST_F(DecisionTest, Zone3OnZcSwitchesToSc) {
  const auto rec =
      engine_.recommend(fake_profile(CommModel::ZeroCopy, 80.0, 0.05));
  EXPECT_TRUE(rec.switch_model);
  EXPECT_EQ(rec.suggested, CommModel::StandardCopy);
  EXPECT_DOUBLE_EQ(rec.max_speedup, 10.0);  // from the MB1 kernel ratio
  EXPECT_LE(rec.estimated_speedup, rec.max_speedup);
}

TEST_F(DecisionTest, GreyZoneOnScSuggestsTryingZc) {
  const auto rec =
      engine_.recommend(fake_profile(CommModel::StandardCopy, 30.0, 0.05));
  EXPECT_EQ(rec.gpu_zone, Zone::Grey);
  EXPECT_TRUE(rec.switch_model);
  EXPECT_EQ(rec.suggested, CommModel::ZeroCopy);
  EXPECT_TRUE(rec.use_overlap_pattern);
}

TEST_F(DecisionTest, GreyZoneOnZcKeepsZc) {
  const auto rec =
      engine_.recommend(fake_profile(CommModel::ZeroCopy, 30.0, 0.05));
  EXPECT_FALSE(rec.switch_model);
  EXPECT_EQ(rec.suggested, CommModel::ZeroCopy);
}

TEST_F(DecisionTest, LowUsageSuggestsZcForEnergy) {
  const auto rec =
      engine_.recommend(fake_profile(CommModel::StandardCopy, 5.0, 0.05));
  EXPECT_EQ(rec.gpu_zone, Zone::Comparable);
  EXPECT_FALSE(rec.cpu_over_threshold);
  EXPECT_TRUE(rec.switch_model);
  EXPECT_EQ(rec.suggested, CommModel::ZeroCopy);
  EXPECT_GT(rec.estimated_speedup, 1.0);
  EXPECT_DOUBLE_EQ(rec.max_speedup, 2.0);  // from MB3
}

TEST_F(DecisionTest, LowGpuHighCpuUsageKeepsSc) {
  // The SH-WFS-on-TX2 situation: GPU usage below threshold, CPU above.
  const auto rec =
      engine_.recommend(fake_profile(CommModel::StandardCopy, 5.0, 0.4));
  EXPECT_TRUE(rec.cpu_over_threshold);
  EXPECT_FALSE(rec.switch_model);
  EXPECT_EQ(rec.suggested, CommModel::StandardCopy);
}

TEST_F(DecisionTest, LowGpuHighCpuOnZcSwitchesBack) {
  const auto rec =
      engine_.recommend(fake_profile(CommModel::ZeroCopy, 5.0, 0.4));
  EXPECT_TRUE(rec.switch_model);
  EXPECT_EQ(rec.suggested, CommModel::StandardCopy);
}

TEST_F(DecisionTest, ZcAlreadyOptimalIsConfirmed) {
  const auto rec =
      engine_.recommend(fake_profile(CommModel::ZeroCopy, 5.0, 0.05));
  EXPECT_FALSE(rec.switch_model);
  EXPECT_EQ(rec.suggested, CommModel::ZeroCopy);
  EXPECT_TRUE(rec.use_overlap_pattern);
}

TEST_F(DecisionTest, UnifiedMemoryTreatedLikeSc) {
  const auto rec =
      engine_.recommend(fake_profile(CommModel::UnifiedMemory, 5.0, 0.05));
  EXPECT_TRUE(rec.switch_model);
  EXPECT_EQ(rec.suggested, CommModel::ZeroCopy);
}

TEST_F(DecisionTest, EstimateRespectsEqn3) {
  const auto profile = fake_profile(CommModel::StandardCopy, 5.0, 0.05);
  const auto rec = engine_.recommend(profile);
  const auto inputs = DecisionEngine::inputs_from(profile);
  EXPECT_DOUBLE_EQ(rec.estimated_speedup,
                   sc_to_zc_speedup(inputs, rec.max_speedup));
}

TEST_F(DecisionTest, RationaleAndToStringPopulated) {
  const auto rec =
      engine_.recommend(fake_profile(CommModel::StandardCopy, 5.0, 0.05));
  EXPECT_FALSE(rec.rationale.empty());
  const std::string s = rec.to_string();
  EXPECT_NE(s.find("SC"), std::string::npos);
  EXPECT_NE(s.find("ZC"), std::string::npos);
  EXPECT_NE(s.find("estimated speedup"), std::string::npos);
}

TEST_F(DecisionTest, UsageComputedFromProfile) {
  const auto rec =
      engine_.recommend(fake_profile(CommModel::StandardCopy, 30.0, 0.1));
  EXPECT_NEAR(rec.usage.gpu_pct(), 30.0, 0.5);
  EXPECT_NEAR(rec.usage.cpu_pct(), 10.0, 0.5);
}

TEST_F(DecisionTest, NoZcSuggestionWhenDeviceBoundBelowOne) {
  // A TX2/Nano-like device where even the cache-independent MB3 loses
  // under ZC: low cache usage must NOT trigger a switch.
  auto device = fake_device();
  device.capability = coherence::Capability::SwFlush;
  device.mb3.total_time[model_index(CommModel::ZeroCopy)] = millisec(4);
  const DecisionEngine engine(device);
  const auto rec =
      engine.recommend(fake_profile(CommModel::StandardCopy, 5.0, 0.05));
  EXPECT_FALSE(rec.switch_model);
  EXPECT_EQ(rec.suggested, CommModel::StandardCopy);
  EXPECT_NE(rec.rationale.find("MB3 bound"), std::string::npos);
}

// --- boundary behaviour ------------------------------------------------------
// The zone classification must be exact at the measured boundaries:
// usage == GPU_Cache_Threshold still counts as zone 1 (the paper defines
// the threshold as the last comparable point), and usage == zone-2 end
// still counts as zone 2.

TEST_F(DecisionTest, ExactlyAtGpuThresholdIsComparable) {
  EXPECT_EQ(engine_.classify_gpu(10.0), Zone::Comparable);
  EXPECT_EQ(engine_.classify_gpu(10.0 + 1e-9), Zone::Grey);
  EXPECT_EQ(engine_.classify_gpu(10.0 - 1e-9), Zone::Comparable);
}

TEST_F(DecisionTest, ExactlyAtZone2EndIsGrey) {
  EXPECT_EQ(engine_.classify_gpu(50.0), Zone::Grey);
  EXPECT_EQ(engine_.classify_gpu(50.0 + 1e-9), Zone::CacheBound);
}

TEST(DecisionBoundary, SwFlushCollapsesGreyExactlyAboveThreshold) {
  auto device = fake_device();
  device.capability = coherence::Capability::SwFlush;
  const DecisionEngine engine(device);
  EXPECT_EQ(engine.classify_gpu(10.0), Zone::Comparable);
  // One epsilon above the threshold jumps straight to zone 3: zone 2 only
  // exists on I/O-coherent devices.
  EXPECT_EQ(engine.classify_gpu(10.0 + 1e-9), Zone::CacheBound);
}

TEST(DecisionBoundary, XavierZoneEdgesFromCharacterization) {
  // The real Xavier characterization: the measured threshold and zone-2 end
  // must themselves classify as zone 1 / zone 2 (closed boundaries), with
  // the open side starting an epsilon above.
  core::Framework framework(soc::jetson_agx_xavier());
  const DecisionEngine engine(framework.device());
  const double threshold = framework.device().gpu_threshold_pct();
  const double zone2_end = framework.device().gpu_zone2_end_pct();
  ASSERT_GT(threshold, 0.0);
  ASSERT_GT(zone2_end, threshold);

  EXPECT_EQ(engine.classify_gpu(threshold), Zone::Comparable);
  EXPECT_EQ(engine.classify_gpu(threshold * (1 + 1e-9)), Zone::Grey);
  EXPECT_EQ(engine.classify_gpu(zone2_end), Zone::Grey);
  EXPECT_EQ(engine.classify_gpu(zone2_end * (1 + 1e-9)), Zone::CacheBound);
}

TEST(DecisionBoundary, HysteresisAbsorbsOscillationTheRawClassifierFlapsOn) {
  // Property: for every amplitude inside the hysteresis margin, a metric
  // oscillating ±eps around the threshold flips the *raw* classification
  // every sample but never moves the debounced tracker.
  const auto device = fake_device();
  const DecisionEngine engine(device);
  const double threshold = device.mb2.gpu.threshold_pct;
  runtime::HysteresisConfig hysteresis;  // margin_frac = 0.25
  for (const double eps_frac : {0.01, 0.05, 0.10, 0.20, 0.24}) {
    runtime::HysteresisZoneTracker tracker(threshold,
                                           device.mb2.gpu.zone2_end_pct,
                                           /*grey_exists=*/true, hysteresis);
    const Zone initial = tracker.zone();
    int raw_flips = 0;
    Zone raw_prev = engine.classify_gpu(threshold * (1 - eps_frac));
    for (int i = 0; i < 100; ++i) {
      const double usage =
          threshold * (1 + ((i % 2) != 0 ? eps_frac : -eps_frac));
      const Zone raw = engine.classify_gpu(usage);
      raw_flips += raw != raw_prev ? 1 : 0;
      raw_prev = raw;
      EXPECT_EQ(tracker.update(usage), initial) << "eps=" << eps_frac;
      EXPECT_FALSE(tracker.changed());
    }
    EXPECT_GE(raw_flips, 99) << "eps=" << eps_frac;  // flaps every sample
  }
}

TEST(DecisionEngine, InputsFromMapsFields) {
  profile::ProfileReport p;
  p.total_time = 1.0;
  p.copy_time = 0.25;
  p.cpu_time = 0.3;
  p.kernel_time = 0.4;
  const auto in = DecisionEngine::inputs_from(p);
  EXPECT_DOUBLE_EQ(in.runtime, 1.0);
  EXPECT_DOUBLE_EQ(in.copy_time, 0.25);
  EXPECT_DOUBLE_EQ(in.cpu_time, 0.3);
  EXPECT_DOUBLE_EQ(in.gpu_time, 0.4);
}

}  // namespace
}  // namespace cig::core
