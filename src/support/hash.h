// Stable, seed-free content hashing for cache keys and fingerprints.
//
// FNV-1a (64-bit) over bytes: the value is part of the on-disk result-cache
// format, so it must never depend on platform, endianness of std::hash, or
// library version. Do not swap in std::hash here.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace cig::support {

constexpr std::uint64_t kFnvOffsetBasis = 0xcbf29ce484222325ull;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

constexpr std::uint64_t fnv1a64(std::string_view bytes,
                                std::uint64_t seed = kFnvOffsetBasis) {
  std::uint64_t hash = seed;
  for (const char c : bytes) {
    hash ^= static_cast<std::uint8_t>(c);
    hash *= kFnvPrime;
  }
  return hash;
}

// Fixed-width lowercase-hex rendering (16 digits) for file names and logs.
inline std::string fnv1a64_hex(std::uint64_t hash) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kDigits[hash & 0xF];
    hash >>= 4;
  }
  return out;
}

}  // namespace cig::support
