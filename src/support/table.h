// Plain-text table rendering for the benchmark harnesses: every bench binary
// prints rows in the same layout the paper's tables/figures use.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace cig {

enum class Align { Left, Right };

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  // Adds a row; the row must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  // Convenience: formats doubles with the given precision.
  static std::string num(double v, int precision = 2);

  // Renders with box-drawing separators, one aligned column per header.
  std::string render(Align numbers = Align::Right) const;

  // Renders as GitHub-flavoured Markdown (used by EXPERIMENTS.md tooling).
  std::string render_markdown() const;

  std::size_t rows() const { return rows_.size(); }
  std::size_t columns() const { return headers_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

// Prints `table.render()` followed by a blank line.
void print_table(std::ostream& os, const Table& table);

}  // namespace cig
