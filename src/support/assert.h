// Contract-checking macros in the spirit of the C++ Core Guidelines
// (I.6 Expects / I.8 Ensures). Violations abort with a source location;
// they indicate programming errors, not runtime conditions.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace cig::detail {

[[noreturn]] inline void contract_failure(const char* kind, const char* expr,
                                          const char* file, int line) {
  std::fprintf(stderr, "%s violation: (%s) at %s:%d\n", kind, expr, file, line);
  std::abort();
}

}  // namespace cig::detail

#define CIG_EXPECTS(cond)                                                    \
  ((cond) ? static_cast<void>(0)                                             \
          : ::cig::detail::contract_failure("Precondition", #cond, __FILE__, \
                                            __LINE__))

#define CIG_ENSURES(cond)                                                     \
  ((cond) ? static_cast<void>(0)                                              \
          : ::cig::detail::contract_failure("Postcondition", #cond, __FILE__, \
                                            __LINE__))

#define CIG_ASSERT(cond)                                                   \
  ((cond) ? static_cast<void>(0)                                           \
          : ::cig::detail::contract_failure("Assertion", #cond, __FILE__, \
                                            __LINE__))
