// Contract-checking macros in the spirit of the C++ Core Guidelines
// (I.6 Expects / I.8 Ensures). Violations abort with a source location;
// they indicate programming errors, not runtime conditions.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace cig::detail {

[[noreturn]] inline void contract_failure(const char* kind, const char* expr,
                                          const char* file, int line) {
  std::fprintf(stderr, "%s violation: (%s) at %s:%d\n", kind, expr, file, line);
  std::abort();
}

}  // namespace cig::detail

#define CIG_EXPECTS(cond)                                                    \
  ((cond) ? static_cast<void>(0)                                             \
          : ::cig::detail::contract_failure("Precondition", #cond, __FILE__, \
                                            __LINE__))

#define CIG_ENSURES(cond)                                                     \
  ((cond) ? static_cast<void>(0)                                              \
          : ::cig::detail::contract_failure("Postcondition", #cond, __FILE__, \
                                            __LINE__))

#define CIG_ASSERT(cond)                                                   \
  ((cond) ? static_cast<void>(0)                                           \
          : ::cig::detail::contract_failure("Assertion", #cond, __FILE__, \
                                            __LINE__))

// Debug-only audit: for invariant checks too expensive for release builds
// (e.g. recounting cache lines after a ranged maintenance op). Compiled
// out under NDEBUG; the same invariants stay covered by tests.
#ifdef NDEBUG
#define CIG_AUDIT(cond) static_cast<void>(0)
#else
#define CIG_AUDIT(cond) CIG_ASSERT(cond)
#endif
