// Minimal JSON value type, parser and writer.
//
// Used for board-config files (soc/board_io.h) and machine-readable CLI
// output. Self-contained on purpose (no external dependencies are
// available in the target environments). Supports the full JSON grammar
// except \uXXXX escapes beyond Latin-1 (sufficient for config files);
// numbers are stored as double.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <variant>
#include <vector>

namespace cig {

class Json;
using JsonArray = std::vector<Json>;
using JsonObject = std::map<std::string, Json>;

class JsonParseError : public std::runtime_error {
 public:
  JsonParseError(const std::string& message, std::size_t offset)
      : std::runtime_error(message + " at offset " + std::to_string(offset)),
        offset_(offset) {}
  std::size_t offset() const { return offset_; }

 private:
  std::size_t offset_;
};

class Json {
 public:
  Json() : value_(nullptr) {}
  Json(std::nullptr_t) : value_(nullptr) {}
  Json(bool b) : value_(b) {}
  Json(double d) : value_(d) {}
  Json(int i) : value_(static_cast<double>(i)) {}
  Json(std::uint64_t u) : value_(static_cast<double>(u)) {}
  Json(const char* s) : value_(std::string(s)) {}
  Json(std::string s) : value_(std::move(s)) {}
  Json(JsonArray a) : value_(std::move(a)) {}
  Json(JsonObject o) : value_(std::move(o)) {}

  bool is_null() const { return std::holds_alternative<std::nullptr_t>(value_); }
  bool is_bool() const { return std::holds_alternative<bool>(value_); }
  bool is_number() const { return std::holds_alternative<double>(value_); }
  bool is_string() const { return std::holds_alternative<std::string>(value_); }
  bool is_array() const { return std::holds_alternative<JsonArray>(value_); }
  bool is_object() const { return std::holds_alternative<JsonObject>(value_); }

  // Checked accessors (throw std::runtime_error on type mismatch).
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const JsonArray& as_array() const;
  const JsonObject& as_object() const;
  JsonArray& as_array();
  JsonObject& as_object();

  // Object convenience: fetch a member (throws if absent or not an object),
  // or return `fallback` when the member is missing.
  const Json& at(const std::string& key) const;
  bool contains(const std::string& key) const;
  double number_or(const std::string& key, double fallback) const;
  std::string string_or(const std::string& key, std::string fallback) const;
  bool bool_or(const std::string& key, bool fallback) const;

  // Object/array builders.
  Json& operator[](const std::string& key);  // creates object members
  void push_back(Json value);                // appends to an array

  // Serialises; `indent` > 0 pretty-prints with that many spaces.
  std::string dump(int indent = 0) const;

  // Parses a complete JSON document (throws JsonParseError).
  static Json parse(const std::string& text);

  bool operator==(const Json& other) const { return value_ == other.value_; }

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  std::variant<std::nullptr_t, bool, double, std::string, JsonArray,
               JsonObject>
      value_;
};

}  // namespace cig
