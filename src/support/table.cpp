#include "support/table.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <ostream>
#include <sstream>

#include "support/assert.h"

namespace cig {

namespace {

bool looks_numeric(const std::string& s) {
  if (s.empty()) return false;
  std::size_t digits = 0;
  for (char c : s) {
    if (std::isdigit(static_cast<unsigned char>(c))) ++digits;
  }
  return digits * 2 >= s.size();
}

std::string pad(const std::string& s, std::size_t width, bool right) {
  if (s.size() >= width) return s;
  const std::string fill(width - s.size(), ' ');
  return right ? fill + s : s + fill;
}

}  // namespace

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  CIG_EXPECTS(!headers_.empty());
}

void Table::add_row(std::vector<std::string> cells) {
  CIG_EXPECTS(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string Table::render(Align numbers) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  std::ostringstream out;
  auto rule = [&] {
    out << '+';
    for (std::size_t w : widths) out << std::string(w + 2, '-') << '+';
    out << '\n';
  };

  rule();
  out << '|';
  for (std::size_t c = 0; c < headers_.size(); ++c)
    out << ' ' << pad(headers_[c], widths[c], false) << " |";
  out << '\n';
  rule();
  for (const auto& row : rows_) {
    out << '|';
    for (std::size_t c = 0; c < row.size(); ++c) {
      const bool right = numbers == Align::Right && looks_numeric(row[c]);
      out << ' ' << pad(row[c], widths[c], right) << " |";
    }
    out << '\n';
  }
  rule();
  return out.str();
}

std::string Table::render_markdown() const {
  std::ostringstream out;
  out << '|';
  for (const auto& h : headers_) out << ' ' << h << " |";
  out << "\n|";
  for (std::size_t c = 0; c < headers_.size(); ++c) out << "---|";
  out << '\n';
  for (const auto& row : rows_) {
    out << '|';
    for (const auto& cell : row) out << ' ' << cell << " |";
    out << '\n';
  }
  return out.str();
}

void print_table(std::ostream& os, const Table& table) {
  os << table.render() << '\n';
}

}  // namespace cig
