#include "support/json.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace cig {

namespace {

[[noreturn]] void type_error(const char* expected) {
  throw std::runtime_error(std::string("Json: value is not ") + expected);
}

}  // namespace

bool Json::as_bool() const {
  if (!is_bool()) type_error("a bool");
  return std::get<bool>(value_);
}

double Json::as_number() const {
  if (!is_number()) type_error("a number");
  return std::get<double>(value_);
}

const std::string& Json::as_string() const {
  if (!is_string()) type_error("a string");
  return std::get<std::string>(value_);
}

const JsonArray& Json::as_array() const {
  if (!is_array()) type_error("an array");
  return std::get<JsonArray>(value_);
}

const JsonObject& Json::as_object() const {
  if (!is_object()) type_error("an object");
  return std::get<JsonObject>(value_);
}

JsonArray& Json::as_array() {
  if (!is_array()) type_error("an array");
  return std::get<JsonArray>(value_);
}

JsonObject& Json::as_object() {
  if (!is_object()) type_error("an object");
  return std::get<JsonObject>(value_);
}

const Json& Json::at(const std::string& key) const {
  const auto& object = as_object();
  const auto it = object.find(key);
  if (it == object.end()) {
    throw std::runtime_error("Json: missing member '" + key + "'");
  }
  return it->second;
}

bool Json::contains(const std::string& key) const {
  return is_object() && as_object().count(key) != 0;
}

double Json::number_or(const std::string& key, double fallback) const {
  return contains(key) ? at(key).as_number() : fallback;
}

std::string Json::string_or(const std::string& key,
                            std::string fallback) const {
  return contains(key) ? at(key).as_string() : std::move(fallback);
}

bool Json::bool_or(const std::string& key, bool fallback) const {
  return contains(key) ? at(key).as_bool() : fallback;
}

Json& Json::operator[](const std::string& key) {
  if (is_null()) value_ = JsonObject{};
  return as_object()[key];
}

void Json::push_back(Json value) {
  if (is_null()) value_ = JsonArray{};
  as_array().push_back(std::move(value));
}

// --- serialisation -------------------------------------------------------------

namespace {

void dump_string(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void dump_number(std::string& out, double d) {
  if (std::isfinite(d) && d == std::floor(d) && std::abs(d) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.0f", d);
    out += buf;
  } else {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.17g", d);
    out += buf;
  }
}

void newline_indent(std::string& out, int indent, int depth) {
  if (indent <= 0) return;
  out += '\n';
  out.append(static_cast<std::size_t>(indent) * depth, ' ');
}

}  // namespace

void Json::dump_to(std::string& out, int indent, int depth) const {
  if (is_null()) {
    out += "null";
  } else if (is_bool()) {
    out += std::get<bool>(value_) ? "true" : "false";
  } else if (is_number()) {
    dump_number(out, std::get<double>(value_));
  } else if (is_string()) {
    dump_string(out, std::get<std::string>(value_));
  } else if (is_array()) {
    const auto& array = std::get<JsonArray>(value_);
    if (array.empty()) {
      out += "[]";
      return;
    }
    out += '[';
    for (std::size_t i = 0; i < array.size(); ++i) {
      if (i) out += ',';
      newline_indent(out, indent, depth + 1);
      array[i].dump_to(out, indent, depth + 1);
    }
    newline_indent(out, indent, depth);
    out += ']';
  } else {
    const auto& object = std::get<JsonObject>(value_);
    if (object.empty()) {
      out += "{}";
      return;
    }
    out += '{';
    bool first = true;
    for (const auto& [key, value] : object) {
      if (!first) out += ',';
      first = false;
      newline_indent(out, indent, depth + 1);
      dump_string(out, key);
      out += indent > 0 ? ": " : ":";
      value.dump_to(out, indent, depth + 1);
    }
    newline_indent(out, indent, depth);
    out += '}';
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

// --- parsing --------------------------------------------------------------------

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Json parse_document() {
    Json value = parse_value();
    skip_whitespace();
    if (pos_ != text_.size()) fail("trailing characters");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& message) const {
    throw JsonParseError(message, pos_);
  }

  void skip_whitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* literal) {
    const std::size_t n = std::char_traits<char>::length(literal);
    if (text_.compare(pos_, n, literal) == 0) {
      pos_ += n;
      return true;
    }
    return false;
  }

  Json parse_value() {
    skip_whitespace();
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Json(parse_string());
      case 't':
        if (consume_literal("true")) return Json(true);
        fail("invalid literal");
      case 'f':
        if (consume_literal("false")) return Json(false);
        fail("invalid literal");
      case 'n':
        if (consume_literal("null")) return Json(nullptr);
        fail("invalid literal");
      default: return parse_number();
    }
  }

  Json parse_object() {
    expect('{');
    JsonObject object;
    skip_whitespace();
    if (peek() == '}') {
      ++pos_;
      return Json(std::move(object));
    }
    while (true) {
      skip_whitespace();
      std::string key = parse_string();
      skip_whitespace();
      expect(':');
      object[std::move(key)] = parse_value();
      skip_whitespace();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return Json(std::move(object));
    }
  }

  Json parse_array() {
    expect('[');
    JsonArray array;
    skip_whitespace();
    if (peek() == ']') {
      ++pos_;
      return Json(std::move(array));
    }
    while (true) {
      array.push_back(parse_value());
      skip_whitespace();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return Json(std::move(array));
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) fail("unterminated escape");
        const char e = text_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) fail("bad \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code += h - '0';
              } else if (h >= 'a' && h <= 'f') {
                code += 10 + h - 'a';
              } else if (h >= 'A' && h <= 'F') {
                code += 10 + h - 'A';
              } else {
                fail("bad \\u escape digit");
              }
            }
            // Latin-1 subset is enough for config files; encode as UTF-8.
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default: fail("unknown escape");
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        fail("control character in string");
      } else {
        out += c;
      }
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    double value = 0;
    const auto result =
        std::from_chars(text_.data() + start, text_.data() + pos_, value);
    if (result.ec != std::errc{} || result.ptr != text_.data() + pos_ ||
        start == pos_) {
      pos_ = start;
      fail("invalid number");
    }
    return Json(value);
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

Json Json::parse(const std::string& text) {
  return Parser(text).parse_document();
}

}  // namespace cig
