// Streaming and batch summary statistics used by benchmark harnesses and
// the profiler (Welford's algorithm for numerically stable variance).
#pragma once

#include <cstddef>
#include <vector>

namespace cig {

// Single-pass mean/variance/min/max accumulator.
class RunningStat {
 public:
  void add(double x);
  void reset();

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const;  // sample variance (n-1)
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

// Percentile with linear interpolation; `q` in [0,1]. Sorts a copy.
double percentile(std::vector<double> samples, double q);

// Median of the samples. Sorts a copy.
double median(std::vector<double> samples);

// Median absolute deviation — robust spread estimate for noisy measurements
// (unscaled: multiply by ~1.4826 to estimate sigma for normal data).
double mad(const std::vector<double>& samples);

// Geometric mean (all samples must be > 0).
double geometric_mean(const std::vector<double>& samples);

}  // namespace cig
