#include "support/parallel.h"

#include <atomic>
#include <cstdlib>
#include <exception>
#include <limits>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "support/assert.h"
#include "support/log.h"

namespace cig::support {

namespace {

std::atomic<std::uint64_t> g_tasks{0};
std::atomic<std::uint64_t> g_batches{0};
std::atomic<std::uint64_t> g_peak_depth{0};

void note_batch(std::size_t count) {
  g_tasks.fetch_add(count, std::memory_order_relaxed);
  g_batches.fetch_add(1, std::memory_order_relaxed);
  std::uint64_t depth = count;
  std::uint64_t seen = g_peak_depth.load(std::memory_order_relaxed);
  while (depth > seen &&
         !g_peak_depth.compare_exchange_weak(seen, depth,
                                             std::memory_order_relaxed)) {
  }
}

}  // namespace

int hardware_jobs() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

int env_jobs() {
  const char* raw = std::getenv("CIG_JOBS");
  if (raw == nullptr || *raw == '\0') return 0;
  char* end = nullptr;
  const long parsed = std::strtol(raw, &end, 10);
  if (end == raw || *end != '\0' || parsed <= 0 || parsed > 4096) {
    // An environment override must never abort a run, but a silently
    // discarded one sends users chasing phantom scheduling bugs — say it
    // once and fall through to the defaults.
    static std::once_flag warned;
    std::call_once(warned, [raw] {
      CIG_LOG_C(::cig::LogLevel::Warn, "support",
                "ignoring invalid CIG_JOBS='"
                    << raw << "' (want an integer in [1, 4096])");
    });
    return 0;
  }
  return static_cast<int>(parsed);
}

int parse_jobs(const std::string& text) {
  const char* raw = text.c_str();
  char* end = nullptr;
  const long parsed = std::strtol(raw, &end, 10);
  if (*raw == '\0' || end == raw || *end != '\0') {
    throw std::invalid_argument("invalid jobs value '" + text +
                                "': not an integer");
  }
  if (parsed <= 0) {
    throw std::invalid_argument("invalid jobs value '" + text +
                                "': must be >= 1");
  }
  if (parsed > 4096) {
    throw std::invalid_argument("invalid jobs value '" + text +
                                "': exceeds the 4096-worker ceiling");
  }
  return static_cast<int>(parsed);
}

int resolve_jobs(int requested) {
  if (requested > 0) return requested;
  const int env = env_jobs();
  if (env > 0) return env;
  return hardware_jobs();
}

PoolCounters pool_counters() {
  PoolCounters c;
  c.tasks = g_tasks.load(std::memory_order_relaxed);
  c.batches = g_batches.load(std::memory_order_relaxed);
  c.peak_queue_depth = g_peak_depth.load(std::memory_order_relaxed);
  return c;
}

void reset_pool_counters() {
  g_tasks.store(0, std::memory_order_relaxed);
  g_batches.store(0, std::memory_order_relaxed);
  g_peak_depth.store(0, std::memory_order_relaxed);
}

void parallel_for_index(std::size_t count, int jobs,
                        const std::function<void(std::size_t)>& fn) {
  CIG_EXPECTS(static_cast<bool>(fn));
  if (count == 0) return;
  note_batch(count);

  jobs = resolve_jobs(jobs);
  if (static_cast<std::size_t>(jobs) > count) {
    jobs = static_cast<int>(count);
  }
  if (jobs <= 1) {
    // Serial fallback: same call order, same thread, no pool involved.
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }

  std::atomic<std::size_t> next{0};
  std::mutex error_mutex;
  std::exception_ptr first_error;
  std::size_t first_error_index = std::numeric_limits<std::size_t>::max();

  // Every index runs even after a failure (batches are small); the error
  // with the lowest index wins, matching what the serial loop would have
  // thrown first.
  auto worker = [&]() {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      try {
        fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (i < first_error_index) {
          first_error_index = i;
          first_error = std::current_exception();
        }
      }
    }
  };

  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(jobs));
  for (int w = 0; w < jobs; ++w) workers.emplace_back(worker);
  for (auto& thread : workers) thread.join();

  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace cig::support
