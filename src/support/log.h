// Leveled logging to stderr. Default level is Warn so library users see
// problems but benches stay quiet; set CIG_LOG=debug|info|warn|error or call
// set_log_level() to change it.
//
// Lines carry an ISO-8601 UTC timestamp and an optional component tag:
//
//   2026-08-06T12:34:56.789Z [cig WARN comm] switch cost exceeds gain
//
// Each line is assembled in full and written with a single stderr write so
// concurrent loggers never interleave mid-line.
#pragma once

#include <sstream>
#include <string>

namespace cig {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

LogLevel log_level();
void set_log_level(LogLevel level);

// Parses "debug"/"info"/"warn"/"error"/"off" (case-insensitive).
LogLevel parse_log_level(const std::string& name);

namespace detail {
void emit_log(LogLevel level, const std::string& message);
void emit_log(LogLevel level, const char* component,
              const std::string& message);

// The "<timestamp> [cig <LEVEL> <component>] <message>\n" line emit_log
// writes (exposed so tests can check the format without capturing stderr).
std::string format_log_line(LogLevel level, const char* component,
                            const std::string& message);
}

}  // namespace cig

#define CIG_LOG(level, expr)                                      \
  do {                                                            \
    if (static_cast<int>(level) >=                                \
        static_cast<int>(::cig::log_level())) {                   \
      std::ostringstream cig_log_ss;                              \
      cig_log_ss << expr;                                         \
      ::cig::detail::emit_log(level, cig_log_ss.str());           \
    }                                                             \
  } while (0)

// Component-tagged variant: CIG_LOG_C(level, "comm", "msg " << x).
#define CIG_LOG_C(level, component, expr)                         \
  do {                                                            \
    if (static_cast<int>(level) >=                                \
        static_cast<int>(::cig::log_level())) {                   \
      std::ostringstream cig_log_ss;                              \
      cig_log_ss << expr;                                         \
      ::cig::detail::emit_log(level, component, cig_log_ss.str());\
    }                                                             \
  } while (0)

#define CIG_DEBUG(expr) CIG_LOG(::cig::LogLevel::Debug, expr)
#define CIG_INFO(expr) CIG_LOG(::cig::LogLevel::Info, expr)
#define CIG_WARN(expr) CIG_LOG(::cig::LogLevel::Warn, expr)
#define CIG_ERROR(expr) CIG_LOG(::cig::LogLevel::Error, expr)
