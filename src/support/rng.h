// Deterministic pseudo-random number generation.
//
// The simulator must be fully reproducible across runs and platforms, so we
// ship our own small generators instead of relying on the
// implementation-defined distributions of <random>.
#pragma once

#include <cstdint>

#include "support/assert.h"

namespace cig {

// SplitMix64 — used to seed and for cheap hashing.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

// xoshiro256** — fast, high-quality, deterministic PRNG.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5EEDC16u) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  // Uniform in [0, bound).
  std::uint64_t below(std::uint64_t bound) {
    CIG_EXPECTS(bound > 0);
    // Multiply-shift rejection-free mapping (slight modulo bias is
    // irrelevant for workload generation).
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next()) * bound) >> 64);
  }

  // Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  // Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

}  // namespace cig
