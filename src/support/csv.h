// Minimal CSV writer for exporting benchmark sweeps (e.g. the Fig. 3 / Fig. 6
// series) so they can be re-plotted outside the harness.
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace cig {

class CsvWriter {
 public:
  // Opens `path` for writing and emits the header row. Throws on failure.
  CsvWriter(const std::string& path, std::vector<std::string> columns);

  void add_row(const std::vector<std::string>& cells);
  void add_row(const std::vector<double>& values);

  // Flushes and closes; also called by the destructor.
  void close();

  ~CsvWriter();
  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;

 private:
  static std::string escape(const std::string& cell);

  std::ofstream out_;
  std::size_t columns_ = 0;
};

}  // namespace cig
