#include "support/stats.h"

#include <algorithm>
#include <cmath>

#include "support/assert.h"

namespace cig {

void RunningStat::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStat::reset() { *this = RunningStat{}; }

double RunningStat::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

double percentile(std::vector<double> samples, double q) {
  CIG_EXPECTS(!samples.empty());
  CIG_EXPECTS(q >= 0.0 && q <= 1.0);
  std::sort(samples.begin(), samples.end());
  const double pos = q * static_cast<double>(samples.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, samples.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return samples[lo] * (1.0 - frac) + samples[hi] * frac;
}

double median(std::vector<double> samples) {
  return percentile(std::move(samples), 0.5);
}

double mad(const std::vector<double>& samples) {
  const double center = median(samples);
  std::vector<double> deviations;
  deviations.reserve(samples.size());
  for (double s : samples) deviations.push_back(std::abs(s - center));
  return median(std::move(deviations));
}

double geometric_mean(const std::vector<double>& samples) {
  CIG_EXPECTS(!samples.empty());
  double log_sum = 0.0;
  for (double s : samples) {
    CIG_EXPECTS(s > 0.0);
    log_sum += std::log(s);
  }
  return std::exp(log_sum / static_cast<double>(samples.size()));
}

}  // namespace cig
