// Units used throughout the library.
//
// Times are plain `double` seconds (alias `Seconds`) — the simulator is a
// continuous-time performance model, not a cycle-accurate RTL model, so
// floating-point seconds with named constructors keep the arithmetic
// readable. Byte counts are unsigned 64-bit. Bandwidths are bytes/second.
#pragma once

#include <cstdint>
#include <string>

namespace cig {

using Seconds = double;        // simulated wall-clock time
using Bytes = std::uint64_t;   // data sizes
using BytesPerSecond = double; // bandwidths
using Joules = double;         // energy
using Watts = double;          // power

// --- time constructors -----------------------------------------------------
constexpr Seconds seconds(double v) { return v; }
constexpr Seconds millisec(double v) { return v * 1e-3; }
constexpr Seconds microsec(double v) { return v * 1e-6; }
constexpr Seconds nanosec(double v) { return v * 1e-9; }

constexpr double to_us(Seconds t) { return t * 1e6; }
constexpr double to_ms(Seconds t) { return t * 1e3; }
constexpr double to_ns(Seconds t) { return t * 1e9; }

// --- size constructors ------------------------------------------------------
constexpr Bytes KiB(std::uint64_t v) { return v * 1024ull; }
constexpr Bytes MiB(std::uint64_t v) { return v * 1024ull * 1024ull; }
constexpr Bytes GiB(std::uint64_t v) { return v * 1024ull * 1024ull * 1024ull; }

// --- bandwidth constructors ---------------------------------------------------
// Vendor-style decimal giga (1e9), matching how the paper reports GB/s.
constexpr BytesPerSecond GBps(double v) { return v * 1e9; }
constexpr BytesPerSecond MBps(double v) { return v * 1e6; }
constexpr double to_GBps(BytesPerSecond bw) { return bw / 1e9; }

// --- frequency ----------------------------------------------------------------
using Hertz = double;
constexpr Hertz MHz(double v) { return v * 1e6; }
constexpr Hertz GHz(double v) { return v * 1e9; }

// Human-readable renderings ("453.5 us", "512.0 MiB", "97.3 GB/s").
std::string format_time(Seconds t);
std::string format_bytes(Bytes b);
std::string format_bandwidth(BytesPerSecond bw);

}  // namespace cig
