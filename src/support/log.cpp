#include "support/log.h"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <ctime>

#include "support/assert.h"
#include "support/units.h"

namespace cig {

namespace {

std::atomic<LogLevel>& level_storage() {
  static std::atomic<LogLevel> level = [] {
    if (const char* env = std::getenv("CIG_LOG")) {
      return parse_log_level(env);
    }
    return LogLevel::Warn;
  }();
  return level;
}

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF";
  }
  return "?";
}

}  // namespace

LogLevel log_level() { return level_storage().load(std::memory_order_relaxed); }

void set_log_level(LogLevel level) {
  level_storage().store(level, std::memory_order_relaxed);
}

LogLevel parse_log_level(const std::string& name) {
  std::string lower = name;
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (lower == "debug") return LogLevel::Debug;
  if (lower == "info") return LogLevel::Info;
  if (lower == "warn") return LogLevel::Warn;
  if (lower == "error") return LogLevel::Error;
  if (lower == "off") return LogLevel::Off;
  return LogLevel::Warn;
}

namespace detail {

namespace {

// ISO-8601 UTC with millisecond precision, e.g. 2026-08-06T12:34:56.789Z.
std::string timestamp_utc() {
  const auto now = std::chrono::system_clock::now();
  const std::time_t secs = std::chrono::system_clock::to_time_t(now);
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      now.time_since_epoch())
                      .count() %
                  1000;
  std::tm tm{};
  gmtime_r(&secs, &tm);
  char buf[40];
  std::snprintf(buf, sizeof buf, "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ",
                tm.tm_year + 1900, tm.tm_mon + 1, tm.tm_mday, tm.tm_hour,
                tm.tm_min, tm.tm_sec, static_cast<int>(ms));
  return buf;
}

}  // namespace

std::string format_log_line(LogLevel level, const char* component,
                            const std::string& message) {
  std::string line = timestamp_utc();
  line += " [cig ";
  line += level_name(level);
  if (component != nullptr && component[0] != '\0') {
    line += ' ';
    line += component;
  }
  line += "] ";
  line += message;
  line += '\n';
  return line;
}

void emit_log(LogLevel level, const char* component,
              const std::string& message) {
  const std::string line = format_log_line(level, component, message);
  // One write per line: concurrent loggers never interleave mid-line.
  std::fwrite(line.data(), 1, line.size(), stderr);
}

void emit_log(LogLevel level, const std::string& message) {
  emit_log(level, nullptr, message);
}

}  // namespace detail

// --- unit formatting (declared in units.h) ----------------------------------

std::string format_time(Seconds t) {
  char buf[64];
  const double abs = t < 0 ? -t : t;
  if (abs >= 1.0) {
    std::snprintf(buf, sizeof buf, "%.3f s", t);
  } else if (abs >= 1e-3) {
    std::snprintf(buf, sizeof buf, "%.2f ms", to_ms(t));
  } else if (abs >= 1e-6) {
    std::snprintf(buf, sizeof buf, "%.2f us", to_us(t));
  } else {
    std::snprintf(buf, sizeof buf, "%.1f ns", to_ns(t));
  }
  return buf;
}

std::string format_bytes(Bytes b) {
  char buf[64];
  const double v = static_cast<double>(b);
  if (b >= GiB(1)) {
    std::snprintf(buf, sizeof buf, "%.2f GiB", v / static_cast<double>(GiB(1)));
  } else if (b >= MiB(1)) {
    std::snprintf(buf, sizeof buf, "%.2f MiB", v / static_cast<double>(MiB(1)));
  } else if (b >= KiB(1)) {
    std::snprintf(buf, sizeof buf, "%.2f KiB", v / static_cast<double>(KiB(1)));
  } else {
    std::snprintf(buf, sizeof buf, "%llu B", static_cast<unsigned long long>(b));
  }
  return buf;
}

std::string format_bandwidth(BytesPerSecond bw) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.2f GB/s", to_GBps(bw));
  return buf;
}

}  // namespace cig
