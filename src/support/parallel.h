// Deterministic data parallelism for the characterization harness.
//
// Sweep points and experiment cells are pure functions of their index, so
// they can be farmed out across a fixed-size worker pool without changing
// results: `parallel_for_index` / `parallel_map` always deliver results in
// index order regardless of completion order, propagate the exception of
// the lowest failing index, and with jobs = 1 degrade to a plain serial
// loop on the calling thread (bit-for-bit identical, no thread machinery).
//
// Job-count resolution (resolve_jobs): an explicit positive request wins;
// otherwise the CIG_JOBS environment variable; otherwise the hardware
// concurrency. The pool keeps process-global counters (tasks executed,
// peak batch depth) that callers export as `pool.*` stats.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace cig::support {

// Number of hardware threads (always >= 1).
int hardware_jobs();

// Parsed CIG_JOBS environment override, or 0 when unset/invalid. An invalid
// value (non-numeric, zero, negative, or absurdly large) logs one warning
// per process and is then ignored — the environment must never abort a run.
int env_jobs();

// Strict parse of an explicit jobs request (--jobs flags): throws
// std::invalid_argument with a one-line message naming the bad value for
// anything but an integer in [1, 4096]. CLI inputs, unlike environment
// variables, fail loudly.
int parse_jobs(const std::string& text);

// Effective job count: `requested` if > 0, else CIG_JOBS, else hardware.
int resolve_jobs(int requested);

// Process-global pool counters (monotonic; see pool.* stat export).
struct PoolCounters {
  std::uint64_t tasks = 0;             // indices executed by parallel batches
  std::uint64_t batches = 0;           // parallel_for_index invocations
  std::uint64_t peak_queue_depth = 0;  // largest batch submitted so far
};

PoolCounters pool_counters();
void reset_pool_counters();  // tests only

// Invokes `fn(i)` for every i in [0, count). With jobs <= 1 this is a
// serial loop on the calling thread; otherwise `jobs` workers drain an
// atomic index counter. If any invocation throws, the exception from the
// lowest failing index is rethrown after all workers stop (remaining
// indices may or may not have run; callers treat the batch as failed).
void parallel_for_index(std::size_t count, int jobs,
                        const std::function<void(std::size_t)>& fn);

// Maps `fn` over `items`, returning results in item order. `R` must be
// default-constructible (slots are pre-allocated so workers never contend).
template <typename T, typename Fn>
auto parallel_map(const std::vector<T>& items, int jobs, Fn&& fn)
    -> std::vector<decltype(fn(items.front()))> {
  using R = decltype(fn(items.front()));
  std::vector<R> results(items.size());
  parallel_for_index(items.size(), jobs,
                     [&](std::size_t i) { results[i] = fn(items[i]); });
  return results;
}

}  // namespace cig::support
