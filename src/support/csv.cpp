#include "support/csv.h"

#include <sstream>
#include <stdexcept>

#include "support/assert.h"

namespace cig {

CsvWriter::CsvWriter(const std::string& path, std::vector<std::string> columns)
    : out_(path), columns_(columns.size()) {
  CIG_EXPECTS(!columns.empty());
  if (!out_) throw std::runtime_error("CsvWriter: cannot open " + path);
  add_row(columns);
}

void CsvWriter::add_row(const std::vector<std::string>& cells) {
  CIG_EXPECTS(cells.size() == columns_);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) out_ << ',';
    out_ << escape(cells[i]);
  }
  out_ << '\n';
}

void CsvWriter::add_row(const std::vector<double>& values) {
  std::vector<std::string> cells;
  cells.reserve(values.size());
  for (double v : values) {
    std::ostringstream ss;
    ss << v;
    cells.push_back(ss.str());
  }
  add_row(cells);
}

void CsvWriter::close() {
  if (out_.is_open()) out_.close();
}

CsvWriter::~CsvWriter() { close(); }

std::string CsvWriter::escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string quoted = "\"";
  for (char c : cell) {
    if (c == '"') quoted += '"';
    quoted += c;
  }
  quoted += '"';
  return quoted;
}

}  // namespace cig
