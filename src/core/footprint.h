// Resident-footprint accounting per communication model.
//
// The decision engine optimizes time alone, but the three comm models pin
// very different amounts of DRAM for the same shared buffer: SC keeps a
// host staging copy *and* a device copy, UM keeps one managed allocation
// plus per-page migration metadata, and ZC keeps exactly one pinned shared
// copy. On embedded unified-memory parts (the paper's TX2/Xavier class)
// that difference is what a memory-pressure governor trades against speed:
// demoting SC -> UM -> ZC frees resident bytes monotonically.
//
// The model here is deliberately simple and deterministic — allocations are
// page-rounded and the UM metadata overhead is a fixed per-page constant —
// so footprints are a pure function of (model, shared bytes) and replay
// byte-identically everywhere they are accounted (controller, governor,
// serve tenants, checkpoints).
#pragma once

#include <array>
#include <cstdint>

#include "comm/model.h"
#include "support/units.h"

namespace cig::core {

// Allocation granularity of every footprint figure. Both boards the paper
// characterizes use 4 KiB pages for pinned and managed mappings.
inline constexpr Bytes kFootprintPageBytes = 4096;

// Per-page bookkeeping the UM driver keeps for migration state (dirty /
// residency tracking). A fixed constant keeps UM strictly between SC and
// ZC without pretending to model a specific driver.
inline constexpr Bytes kUnifiedMemoryPagePenaltyBytes = 64;

struct FootprintModel {
  // Bytes rounded up to whole pages.
  static Bytes pages(Bytes bytes);

  // Resident DRAM footprint of `shared_bytes` of shared data under
  // `model`. Guarantees SC > UM > ZC for any shared_bytes > 0.
  static Bytes resident_bytes(comm::CommModel model, Bytes shared_bytes);

  // All three footprints at once, indexed by core::model_index.
  static std::array<Bytes, 3> table(Bytes shared_bytes);

  // The demotion ladder: the next model below `model` by footprint
  // (SC -> UM -> ZC), or `model` itself when already at the bottom.
  static comm::CommModel demote(comm::CommModel model);

  // True when `model` is the smallest-footprint model (nothing to demote
  // to).
  static bool is_floor(comm::CommModel model);
};

}  // namespace cig::core
