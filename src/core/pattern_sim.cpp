#include "core/pattern_sim.h"

#include <algorithm>

#include "comm/model.h"
#include "mem/bandwidth.h"
#include "support/assert.h"

namespace cig::core {

namespace {

struct SideCosts {
  Seconds compute_per_tile = 0;
  Seconds bw_per_tile = 0;       // bandwidth component
  Seconds latency_per_tile = 0;  // serialized stall component
  double dram_bytes_per_tile = 0;
  BytesPerSecond path_bw = GBps(1);
};

// Costs of one tile on the CPU side under the zero-copy model.
SideCosts cpu_costs(const soc::SoC& soc, const PatternSimConfig& config) {
  const auto& board = soc.config();
  const Bytes tile_bytes = config.tiling.tile_elements * sizeof(float);
  const double elements = static_cast<double>(config.tiling.tile_elements);

  SideCosts costs;
  costs.compute_per_tile = elements * config.cpu_ops_per_element /
                           (board.cpu_peak_ops_per_second() *
                            config.cpu_ops_per_cycle);
  const bool uncached =
      board.capability == coherence::Capability::SwFlush;
  if (uncached) {
    // Pinned space is uncacheable: read + write at the uncached CPU rate,
    // one read stall per line (write-combining posts the stores).
    costs.path_bw = board.cpu.uncached_bandwidth;
    costs.bw_per_tile = 2.0 * static_cast<double>(tile_bytes) / costs.path_bw;
    const double lines =
        std::max<double>(1.0, static_cast<double>(tile_bytes) /
                                  board.cpu.l1.geometry.line);
    costs.latency_per_tile = lines * board.dram.latency / 8.0;
    costs.dram_bytes_per_tile = 2.0 * static_cast<double>(tile_bytes);
  } else {
    // I/O-coherent board: the CPU keeps its hierarchy; steady state the
    // tile streams through the LLC.
    costs.path_bw = board.cpu.llc.bandwidth;
    costs.bw_per_tile = 2.0 * static_cast<double>(tile_bytes) / costs.path_bw;
    // Hardware prefetch pipelines the tile stream; ~8 outstanding lines.
    costs.latency_per_tile = board.cpu.llc.latency / 8.0;
    costs.dram_bytes_per_tile = 0;  // LLC-resident
  }
  return costs;
}

// Costs of one tile on the GPU side under the zero-copy model.
SideCosts gpu_costs(const soc::SoC& soc, const PatternSimConfig& config) {
  const auto& board = soc.config();
  const Bytes tile_bytes = config.tiling.tile_elements * sizeof(float);
  const double elements = static_cast<double>(config.tiling.tile_elements);

  SideCosts costs;
  costs.compute_per_tile =
      elements * config.gpu_ops_per_element /
      (board.gpu_peak_ops_per_second() * config.gpu_utilization);
  const bool io_coherent =
      board.capability == coherence::Capability::HwIoCoherent;
  costs.path_bw = io_coherent ? board.io_coherence.snoop_bandwidth
                              : board.gpu.uncached_bandwidth;
  costs.bw_per_tile = 2.0 * static_cast<double>(tile_bytes) / costs.path_bw;
  const Seconds access_latency =
      io_coherent ? board.io_coherence.snoop_latency : board.dram.latency;
  // Warps hide most latency; one stall per tile burst at MLP ~ 64.
  costs.latency_per_tile = access_latency / 64.0;
  costs.dram_bytes_per_tile = 2.0 * static_cast<double>(tile_bytes);
  return costs;
}

Seconds side_phase_time(const SideCosts& costs, double tiles,
                        Seconds contended_bw_time) {
  const Seconds compute = costs.compute_per_tile * tiles;
  const Seconds latency = costs.latency_per_tile * tiles;
  return std::max(compute, contended_bw_time) + latency;
}

}  // namespace

PatternSimulator::PatternSimulator(soc::SoC& soc) : soc_(soc) {}

Seconds PatternSimulator::cpu_tile_time(const PatternSimConfig& config) const {
  const auto costs = cpu_costs(soc_, config);
  return std::max(costs.compute_per_tile, costs.bw_per_tile) +
         costs.latency_per_tile;
}

Seconds PatternSimulator::gpu_tile_time(const PatternSimConfig& config) const {
  const auto costs = gpu_costs(soc_, config);
  return std::max(costs.compute_per_tile, costs.bw_per_tile) +
         costs.latency_per_tile;
}

PatternSimResult PatternSimulator::simulate(const PatternSimConfig& config) {
  config.tiling.validate();
  CIG_EXPECTS(config.barrier_cost >= 0);

  const auto cpu = cpu_costs(soc_, config);
  const auto gpu = gpu_costs(soc_, config);
  const double tiles_per_side =
      static_cast<double>(config.tiling.tile_count()) / 2.0;

  PatternSimResult result;
  sim::EventQueue queue;

  // Per phase: both sides process their parity's tiles concurrently,
  // sharing the DRAM interface; the phase ends when both finish, plus the
  // barrier cost. The event queue advances phase by phase.
  Seconds now = 0;
  for (std::uint32_t phase = 0; phase < config.tiling.phases; ++phase) {
    // DRAM contention between the two sides for this phase.
    const std::vector<mem::BandwidthDemand> demands = {
        {cpu.dram_bytes_per_tile * tiles_per_side, cpu.path_bw},
        {gpu.dram_bytes_per_tile * tiles_per_side, gpu.path_bw},
    };
    const auto shares =
        mem::contended_schedule(demands, soc_.config().dram.bandwidth);

    const Seconds cpu_time =
        side_phase_time(cpu, tiles_per_side, shares[0].finish_time);
    const Seconds gpu_time =
        side_phase_time(gpu, tiles_per_side, shares[1].finish_time);

    Seconds cpu_end = 0, gpu_end = 0;
    queue.schedule_at(now + cpu_time, [&] { cpu_end = queue.now(); });
    queue.schedule_at(now + gpu_time, [&] { gpu_end = queue.now(); });
    queue.run();

    result.timeline.add(sim::Lane::Cpu, now, cpu_end,
                        "phase" + std::to_string(phase));
    result.timeline.add(sim::Lane::Gpu, now, gpu_end,
                        "phase" + std::to_string(phase));
    result.cpu_busy += cpu_time;
    result.gpu_busy += gpu_time;

    const Seconds phase_end = std::max(cpu_end, gpu_end);
    result.skew_time += phase_end - std::min(cpu_end, gpu_end);
    result.barrier_time += config.barrier_cost;
    now = phase_end + config.barrier_cost;
  }

  result.total = now;
  result.overlap_fraction =
      result.total > 0
          ? result.timeline.overlap(sim::Lane::Cpu, sim::Lane::Gpu) /
                result.total
          : 0;
  CIG_ENSURES(result.timeline.lanes_consistent());
  return result;
}

}  // namespace cig::core
