// Declarative experiment grids: run every (board x application x model)
// combination and collect the results for tabular, CSV or JSON output.
// This is what powers `cigtool grid` and makes sweep studies one-liners:
//
//   ExperimentSpec spec;
//   spec.boards = {"tx2", "xavier"};
//   spec.apps = {"shwfs", "orbslam"};
//   auto grid = run_grid(spec);
//   std::cout << grid.to_table().render();
#pragma once

#include <string>
#include <vector>

#include "comm/executor.h"
#include "support/json.h"
#include "support/table.h"

namespace cig::core {

struct ExperimentSpec {
  // Board preset names or JSON file paths (see soc::resolve_board).
  std::vector<std::string> boards;
  // Application names: "shwfs", "orbslam", "mb1", "mb3".
  std::vector<std::string> apps;
  // Communication models to measure; all three by default.
  std::vector<comm::CommModel> models = {comm::CommModel::StandardCopy,
                                         comm::CommModel::UnifiedMemory,
                                         comm::CommModel::ZeroCopy};
  // Worker count for the cells (each runs on its own SoC, so the grid is
  // embarrassingly parallel): 1 = serial, 0 = CIG_JOBS env / hardware.
  // Cell order in the result is board x app x model regardless of jobs.
  int jobs = 1;
};

// Resolves a named application workload for a board (shared with cigtool).
// Throws std::runtime_error for unknown names.
workload::Workload resolve_application(const std::string& name,
                                       const soc::BoardConfig& board);

struct ExperimentCell {
  std::string board;
  std::string app;
  comm::CommModel model = comm::CommModel::StandardCopy;
  comm::RunResult run;
};

class ExperimentGrid {
 public:
  explicit ExperimentGrid(std::vector<ExperimentCell> cells);

  const std::vector<ExperimentCell>& cells() const { return cells_; }

  // Finds a cell (throws if absent).
  const ExperimentCell& at(const std::string& board, const std::string& app,
                           comm::CommModel model) const;

  // Speedup of `model` relative to StandardCopy for one (board, app).
  double speedup_vs_sc(const std::string& board, const std::string& app,
                       comm::CommModel model) const;

  Table to_table() const;
  std::string to_csv() const;
  Json to_json() const;

 private:
  std::vector<ExperimentCell> cells_;
};

// Runs the full grid (each cell on a fresh SoC). Throws on unknown names.
ExperimentGrid run_grid(const ExperimentSpec& spec);

}  // namespace cig::core
