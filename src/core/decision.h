// The decision flow of Fig. 2: given the device characterization (from the
// micro-benchmarks) and an application profile (from any standard profiling
// tool), recommend the most suitable communication model and estimate the
// potential speedup of switching.
#pragma once

#include <string>
#include <vector>

#include "comm/model.h"
#include "core/explain.h"
#include "core/microbench.h"
#include "core/perfmodel.h"
#include "core/thresholds.h"
#include "profile/report.h"

namespace cig::core {

struct Recommendation {
  comm::CommModel current = comm::CommModel::StandardCopy;
  comm::CommModel suggested = comm::CommModel::StandardCopy;
  bool switch_model = false;
  // When ZC is suggested: also adopt the tiled communication pattern
  // (Section III-C) to overlap CPU and GPU tasks.
  bool use_overlap_pattern = false;

  CacheUsage usage;          // eqns 1-2, fractions
  Zone gpu_zone = Zone::Comparable;
  bool cpu_over_threshold = false;

  // Potential speedup of the switch (eqn 3 or 4), and the device bound.
  double estimated_speedup = 1.0;
  double max_speedup = 1.0;

  // Resident-footprint estimates (core::FootprintModel) for the current
  // and suggested models, filled by annotate_footprint() when the caller
  // knows the shared-buffer size. Zero until annotated.
  Bytes shared_bytes = 0;
  Bytes current_footprint_bytes = 0;
  Bytes suggested_footprint_bytes = 0;

  std::string rationale;

  // Structured provenance: counters, thresholds, the equation and inputs
  // behind estimated_speedup, and the ordered checks the flow evaluated.
  Explanation explanation;

  std::string to_string() const;
};

class DecisionEngine {
 public:
  explicit DecisionEngine(DeviceCharacterization device);

  // `profile` must have been taken under `profile.model` (the application
  // as currently implemented). `timing` supplies eqn-3/4 inputs; pass the
  // same report's times via `inputs_from`.
  Recommendation recommend(const profile::ProfileReport& profile) const;

  // --- incremental entry points (used by the src/runtime controller) -------
  // The online controller maintains windowed cache-usage statistics itself
  // and re-runs only the decision flow, skipping the eqn-1/2 evaluation.
  Recommendation recommend_for(const CacheUsage& usage,
                               comm::CommModel current,
                               const SpeedupInputs& inputs) const;

  // Same flow with the caller supplying the classification — the runtime
  // controller passes its hysteresis-debounced zone and CPU-threshold state
  // here so a boundary-straddling metric cannot flap the recommendation.
  Recommendation recommend_for(const CacheUsage& usage, Zone gpu_zone,
                               bool cpu_over, comm::CommModel current,
                               const SpeedupInputs& inputs) const;

  // Zone classification for a GPU cache usage in percent, with the
  // SwFlush grey-zone collapse applied (the grey zone only exists on
  // I/O-coherent devices).
  Zone classify_gpu(double usage_pct) const;

  bool cpu_over_threshold(double usage_pct) const {
    return usage_pct > device_.cpu_threshold_pct();
  }

  const DeviceCharacterization& device() const { return device_; }

  // Helper: eqn-3/4 inputs from a profile report.
  static SpeedupInputs inputs_from(const profile::ProfileReport& profile);

  // Conservative fallback when the characterization failed validation
  // (DeviceCharacterization::problems() non-empty): recommend SC — every
  // board supports it and it never catastrophically underperforms the way a
  // wrong ZC pick can — with an Explanation whose checks name each
  // rejected/missing input. No equation runs; the speedup claim stays 1.0.
  static Recommendation degraded_recommendation(
      comm::CommModel current, const std::string& board,
      coherence::Capability capability,
      const std::vector<std::string>& problems);

  // Helper: eqn-1/2 cache usage from a profile report, normalised by the
  // MB1 peak of the model the profile was taken under.
  CacheUsage usage_from(const profile::ProfileReport& profile) const;

  // Fills the footprint fields of `rec` (and its Explanation) from the
  // shared-buffer size the decision was made for. A no-op at 0 bytes.
  static void annotate_footprint(Recommendation& rec, Bytes shared_bytes);

 private:
  DeviceCharacterization device_;
};

}  // namespace cig::core
