// The decision flow of Fig. 2: given the device characterization (from the
// micro-benchmarks) and an application profile (from any standard profiling
// tool), recommend the most suitable communication model and estimate the
// potential speedup of switching.
#pragma once

#include <string>

#include "comm/model.h"
#include "core/microbench.h"
#include "core/perfmodel.h"
#include "core/thresholds.h"
#include "profile/report.h"

namespace cig::core {

struct Recommendation {
  comm::CommModel current = comm::CommModel::StandardCopy;
  comm::CommModel suggested = comm::CommModel::StandardCopy;
  bool switch_model = false;
  // When ZC is suggested: also adopt the tiled communication pattern
  // (Section III-C) to overlap CPU and GPU tasks.
  bool use_overlap_pattern = false;

  CacheUsage usage;          // eqns 1-2, fractions
  Zone gpu_zone = Zone::Comparable;
  bool cpu_over_threshold = false;

  // Potential speedup of the switch (eqn 3 or 4), and the device bound.
  double estimated_speedup = 1.0;
  double max_speedup = 1.0;

  std::string rationale;

  std::string to_string() const;
};

class DecisionEngine {
 public:
  explicit DecisionEngine(DeviceCharacterization device);

  // `profile` must have been taken under `profile.model` (the application
  // as currently implemented). `timing` supplies eqn-3/4 inputs; pass the
  // same report's times via `inputs_from`.
  Recommendation recommend(const profile::ProfileReport& profile) const;

  const DeviceCharacterization& device() const { return device_; }

  // Helper: eqn-3/4 inputs from a profile report.
  static SpeedupInputs inputs_from(const profile::ProfileReport& profile);

 private:
  DeviceCharacterization device_;
};

}  // namespace cig::core
