#include "core/footprint.h"

#include "core/microbench.h"

namespace cig::core {

Bytes FootprintModel::pages(Bytes bytes) {
  const Bytes p = kFootprintPageBytes;
  return ((bytes + p - 1) / p) * p;
}

Bytes FootprintModel::resident_bytes(comm::CommModel model,
                                     Bytes shared_bytes) {
  const Bytes rounded = pages(shared_bytes);
  const Bytes page_count = rounded / kFootprintPageBytes;
  switch (model) {
    case comm::CommModel::StandardCopy:
      // Host staging copy + device copy, both page-rounded.
      return 2 * rounded;
    case comm::CommModel::UnifiedMemory:
      // One managed allocation plus per-page migration metadata.
      return rounded + page_count * kUnifiedMemoryPagePenaltyBytes;
    case comm::CommModel::ZeroCopy:
      // Exactly one pinned shared copy.
      return rounded;
  }
  return rounded;
}

std::array<Bytes, 3> FootprintModel::table(Bytes shared_bytes) {
  std::array<Bytes, 3> out{};
  for (const auto model :
       {comm::CommModel::StandardCopy, comm::CommModel::UnifiedMemory,
        comm::CommModel::ZeroCopy}) {
    out[model_index(model)] = resident_bytes(model, shared_bytes);
  }
  return out;
}

comm::CommModel FootprintModel::demote(comm::CommModel model) {
  switch (model) {
    case comm::CommModel::StandardCopy:
      return comm::CommModel::UnifiedMemory;
    case comm::CommModel::UnifiedMemory:
      return comm::CommModel::ZeroCopy;
    case comm::CommModel::ZeroCopy:
      return comm::CommModel::ZeroCopy;
  }
  return model;
}

bool FootprintModel::is_floor(comm::CommModel model) {
  return model == comm::CommModel::ZeroCopy;
}

}  // namespace cig::core
