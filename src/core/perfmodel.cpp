#include "core/perfmodel.h"

#include <algorithm>

#include "support/assert.h"

namespace cig::core {

double cpu_cache_usage(double cpu_l1_miss_rate, double cpu_llc_miss_rate) {
  CIG_EXPECTS(cpu_l1_miss_rate >= 0 && cpu_l1_miss_rate <= 1);
  CIG_EXPECTS(cpu_llc_miss_rate >= 0 && cpu_llc_miss_rate <= 1);
  return cpu_l1_miss_rate * (1.0 - cpu_llc_miss_rate);
}

double gpu_cache_usage(double transactions, double transaction_size_bytes,
                       double gpu_l1_hit_rate, Seconds kernel_runtime,
                       BytesPerSecond max_ll_throughput) {
  CIG_EXPECTS(transactions >= 0);
  CIG_EXPECTS(transaction_size_bytes > 0);
  CIG_EXPECTS(gpu_l1_hit_rate >= 0 && gpu_l1_hit_rate <= 1);
  CIG_EXPECTS(kernel_runtime > 0);
  CIG_EXPECTS(max_ll_throughput > 0);
  const double ll_demand_bw =
      transactions * transaction_size_bytes * (1.0 - gpu_l1_hit_rate) /
      kernel_runtime;
  return ll_demand_bw / max_ll_throughput;
}

CacheUsage cache_usage(const profile::ProfileReport& report,
                       BytesPerSecond max_ll_throughput) {
  CacheUsage usage;
  usage.cpu = cpu_cache_usage(report.cpu_l1_miss_rate,
                              report.cpu_llc_miss_rate);
  if (report.kernel_time > 0 && report.gpu_transactions > 0) {
    usage.gpu = gpu_cache_usage(report.gpu_transactions,
                                report.gpu_transaction_size,
                                report.gpu_l1_hit_rate, report.kernel_time,
                                max_ll_throughput);
  }
  return usage;
}

double sc_to_zc_speedup(const SpeedupInputs& in, double max_speedup) {
  CIG_EXPECTS(in.runtime > 0);
  CIG_EXPECTS(in.gpu_time > 0);
  CIG_EXPECTS(in.copy_time >= 0 && in.copy_time < in.runtime);
  CIG_EXPECTS(max_speedup > 0);
  // Eqn 3: ZC removes the copies and overlaps the CPU and GPU tasks.
  const double overlap_factor = 1.0 + in.cpu_time / in.gpu_time;
  const double zc_estimate = (in.runtime - in.copy_time) / overlap_factor;
  return std::min(in.runtime / zc_estimate, max_speedup);
}

double zc_to_sc_speedup(const SpeedupInputs& in, double max_speedup) {
  CIG_EXPECTS(in.runtime > 0);
  CIG_EXPECTS(in.gpu_time > 0);
  CIG_EXPECTS(max_speedup > 0);
  // Eqn 4: SC re-introduces the copies and serializes CPU and GPU. The
  // formula accounts only for those structural costs; the cache benefit of
  // SC is bounded separately by ZC/SC_Max_speedup — the decision engine
  // reports [eqn 4, max] as the expected range.
  const double serial_factor = 1.0 / (1.0 + in.cpu_time / in.gpu_time);
  const double sc_estimate = in.runtime / serial_factor + in.copy_time;
  return std::min(in.runtime / sc_estimate, max_speedup);
}

}  // namespace cig::core
