#include "core/zc_pattern.h"

#include <algorithm>
#include <barrier>
#include <thread>

#include "support/assert.h"

namespace cig::core {

void TilingConfig::validate() const {
  CIG_EXPECTS(total_elements > 0);
  CIG_EXPECTS(tile_elements > 0);
  CIG_EXPECTS(phases >= 1);
  CIG_EXPECTS(tile_count() >= 2);  // need both parities
}

TilingConfig make_tiling(const soc::BoardConfig& board, std::uint32_t phases) {
  TilingConfig config;
  // Structure sized to the GPU LL cache so the GPU-side tiles stay resident.
  config.total_elements = board.gpu.llc.geometry.capacity / sizeof(float);
  const std::uint32_t block = std::min(board.cpu.llc.geometry.line,
                                       board.gpu.llc.geometry.line);
  config.tile_elements = std::max<std::size_t>(1, block / sizeof(float));
  config.phases = phases;
  config.validate();
  return config;
}

TiledBuffer::TiledBuffer(TilingConfig config) : config_(config) {
  config_.validate();
  data_.assign(config_.total_elements, 0.0f);
}

std::span<float> TiledBuffer::tile(std::size_t index) {
  CIG_EXPECTS(index < tile_count());
  const std::size_t begin = index * config_.tile_elements;
  const std::size_t end =
      std::min(begin + config_.tile_elements, data_.size());
  return std::span<float>(data_.data() + begin, end - begin);
}

std::span<const float> TiledBuffer::tile(std::size_t index) const {
  CIG_EXPECTS(index < tile_count());
  const std::size_t begin = index * config_.tile_elements;
  const std::size_t end =
      std::min(begin + config_.tile_elements, data_.size());
  return std::span<const float>(data_.data() + begin, end - begin);
}

namespace {

// Processes every tile of `buffer` whose parity matches `parity` in `phase`.
void process_parity(TiledBuffer& buffer, const TileFn& fn, std::uint32_t phase,
                    std::size_t parity, std::uint64_t& processed) {
  const std::size_t tiles = buffer.tile_count();
  for (std::size_t t = parity; t < tiles; t += 2) {
    fn(buffer.tile(t), phase, t);
    ++processed;
  }
}

}  // namespace

PipelineStats run_zero_copy_pipeline(TiledBuffer& buffer, const TileFn& cpu_fn,
                                     const TileFn& gpu_fn,
                                     std::uint32_t phases, bool concurrent) {
  CIG_EXPECTS(phases >= 1);
  CIG_EXPECTS(cpu_fn != nullptr && gpu_fn != nullptr);

  PipelineStats stats;
  stats.phases = phases;

  if (!concurrent) {
    for (std::uint32_t phase = 0; phase < phases; ++phase) {
      // CPU on even tiles at even phases, odd tiles at odd phases; the GPU
      // takes the complement. Sequential reference: CPU first, then GPU —
      // order is irrelevant because the tile sets are disjoint.
      const std::size_t cpu_parity = phase % 2;
      process_parity(buffer, cpu_fn, phase, cpu_parity, stats.cpu_tiles);
      process_parity(buffer, gpu_fn, phase, 1 - cpu_parity, stats.gpu_tiles);
    }
    return stats;
  }

  std::barrier sync(2);
  auto worker = [&](bool is_cpu) {
    std::uint64_t processed = 0;
    for (std::uint32_t phase = 0; phase < phases; ++phase) {
      const std::size_t cpu_parity = phase % 2;
      const std::size_t parity = is_cpu ? cpu_parity : 1 - cpu_parity;
      process_parity(buffer, is_cpu ? cpu_fn : gpu_fn, phase, parity,
                     processed);
      // Phase barrier: both sides must finish before parities swap,
      // guaranteeing exclusive tile ownership within each phase.
      sync.arrive_and_wait();
    }
    return processed;
  };

  std::uint64_t gpu_processed = 0;
  std::thread gpu_thread(
      [&] { gpu_processed = worker(/*is_cpu=*/false); });
  stats.cpu_tiles = worker(/*is_cpu=*/true);
  gpu_thread.join();
  stats.gpu_tiles = gpu_processed;
  return stats;
}

}  // namespace cig::core
