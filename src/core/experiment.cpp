#include "core/experiment.h"

#include <sstream>
#include <stdexcept>

#include "apps/orbslam/workload.h"
#include "apps/shwfs/workload.h"
#include "soc/board_io.h"
#include "support/assert.h"
#include "support/parallel.h"
#include "workload/builders.h"

namespace cig::core {

workload::Workload resolve_application(const std::string& name,
                                       const soc::BoardConfig& board) {
  if (name == "shwfs") return apps::shwfs::shwfs_workload(board);
  if (name == "orbslam") return apps::orbslam::orbslam_workload(board);
  if (name == "mb1") return workload::mb1_workload(board);
  if (name == "mb3") return workload::mb3_workload(board);
  throw std::runtime_error("unknown app '" + name +
                           "' (shwfs, orbslam, mb1 or mb3)");
}

ExperimentGrid::ExperimentGrid(std::vector<ExperimentCell> cells)
    : cells_(std::move(cells)) {}

const ExperimentCell& ExperimentGrid::at(const std::string& board,
                                         const std::string& app,
                                         comm::CommModel model) const {
  for (const auto& cell : cells_) {
    if (cell.board == board && cell.app == app && cell.model == model) {
      return cell;
    }
  }
  throw std::runtime_error("no cell for " + board + "/" + app + "/" +
                           comm::model_name(model));
}

double ExperimentGrid::speedup_vs_sc(const std::string& board,
                                     const std::string& app,
                                     comm::CommModel model) const {
  const auto& sc = at(board, app, comm::CommModel::StandardCopy);
  const auto& other = at(board, app, model);
  CIG_EXPECTS(other.run.total > 0);
  return sc.run.total / other.run.total;
}

Table ExperimentGrid::to_table() const {
  Table table({"board", "app", "model", "total (us)", "cpu (us)",
               "kernel (us)", "copy (us)", "energy (mJ)"});
  for (const auto& cell : cells_) {
    table.add_row({cell.board, cell.app, comm::model_name(cell.model),
                   Table::num(to_us(cell.run.total)),
                   Table::num(to_us(cell.run.cpu_time)),
                   Table::num(to_us(cell.run.kernel_time)),
                   Table::num(to_us(cell.run.copy_time)),
                   Table::num(cell.run.energy * 1e3, 3)});
  }
  return table;
}

std::string ExperimentGrid::to_csv() const {
  std::ostringstream out;
  out << "board,app,model,total_us,cpu_us,kernel_us,copy_us,energy_mj\n";
  for (const auto& cell : cells_) {
    out << cell.board << ',' << cell.app << ','
        << comm::model_name(cell.model) << ',' << to_us(cell.run.total) << ','
        << to_us(cell.run.cpu_time) << ',' << to_us(cell.run.kernel_time)
        << ',' << to_us(cell.run.copy_time) << ',' << cell.run.energy * 1e3
        << '\n';
  }
  return out.str();
}

Json ExperimentGrid::to_json() const {
  Json cells;
  for (const auto& cell : cells_) {
    Json j;
    j["board"] = Json(cell.board);
    j["app"] = Json(cell.app);
    j["model"] = Json(std::string(comm::model_name(cell.model)));
    j["total_us"] = Json(to_us(cell.run.total));
    j["cpu_us"] = Json(to_us(cell.run.cpu_time));
    j["kernel_us"] = Json(to_us(cell.run.kernel_time));
    j["copy_us"] = Json(to_us(cell.run.copy_time));
    j["energy_mj"] = Json(cell.run.energy * 1e3);
    j["overlap_fraction"] = Json(cell.run.overlap_fraction);
    cells.push_back(std::move(j));
  }
  Json document;
  document["cells"] = std::move(cells);
  return document;
}

ExperimentGrid run_grid(const ExperimentSpec& spec) {
  CIG_EXPECTS(!spec.boards.empty());
  CIG_EXPECTS(!spec.apps.empty());
  CIG_EXPECTS(!spec.models.empty());

  // Flatten the board x app x model product so the cells can be farmed out
  // across the pool; each cell gets its own SoC, so results and ordering
  // are identical to the serial nested loops for any job count.
  struct CellSpec {
    std::string board;
    std::string app;
    comm::CommModel model;
  };
  std::vector<CellSpec> pending;
  for (const auto& board_name : spec.boards) {
    for (const auto& app : spec.apps) {
      for (const auto model : spec.models) {
        pending.push_back(CellSpec{board_name, app, model});
      }
    }
  }

  auto cells = support::parallel_map(
      pending, spec.jobs, [](const CellSpec& item) {
        const auto board = soc::resolve_board(item.board);
        const auto workload = resolve_application(item.app, board);
        soc::SoC soc(board);
        comm::Executor executor(soc);
        ExperimentCell cell;
        cell.board = item.board;
        cell.app = item.app;
        cell.model = item.model;
        cell.run = executor.run(workload, item.model);
        return cell;
      });
  return ExperimentGrid(std::move(cells));
}

}  // namespace cig::core
