// The zero-copy communication pattern (Section III-C).
//
// An n-D data structure (2-D here) sized from the available GPU LL cache is
// partitioned into tiles whose size is the smaller of the CPU and GPU LLC
// block sizes, so every tile access is one coalesced transaction. CPU and
// iGPU proceed in pipelined phases: in phase i the CPU reads/writes the
// even tiles while the GPU works the odd tiles; at phase i+1 the parities
// swap. Tiles touched by the two processors are disjoint within a phase, so
// no per-access synchronisation is needed — only a phase barrier — and the
// result is deterministic.
//
// This is a *functional* implementation (real memory, real threads): the
// CPU worker runs on the calling thread's pool and the "GPU" worker stands
// in for the device-side consumer. Tests verify determinism and equivalence
// with a sequential reference execution.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "soc/board.h"
#include "support/units.h"

namespace cig::core {

struct TilingConfig {
  std::size_t total_elements = 0;   // whole shared structure (floats)
  std::size_t tile_elements = 16;   // B_size / sizeof(float)
  std::uint32_t phases = 2;

  std::size_t tile_count() const {
    return (total_elements + tile_elements - 1) / tile_elements;
  }
  void validate() const;
};

// Derives the paper's recommended tiling for a board: the structure sized
// to the GPU LL cache, tiles of min(CPU LLC line, GPU LLC line) bytes.
TilingConfig make_tiling(const soc::BoardConfig& board, std::uint32_t phases);

// Pinned shared buffer partitioned into tiles.
class TiledBuffer {
 public:
  explicit TiledBuffer(TilingConfig config);

  std::span<float> tile(std::size_t index);
  std::span<const float> tile(std::size_t index) const;

  std::size_t tile_count() const { return config_.tile_count(); }
  const TilingConfig& config() const { return config_; }
  std::span<float> all() { return data_; }
  std::span<const float> all() const { return data_; }

 private:
  TilingConfig config_;
  std::vector<float> data_;
};

// Worker callback: process one tile during one phase.
// `parity_owner` is 0 for the CPU worker and 1 for the GPU worker.
using TileFn =
    std::function<void(std::span<float> tile, std::uint32_t phase,
                       std::size_t tile_index)>;

struct PipelineStats {
  std::uint32_t phases = 0;
  std::uint64_t cpu_tiles = 0;
  std::uint64_t gpu_tiles = 0;
};

// Runs the alternate even/odd producer-consumer schedule.
//
// concurrent=true uses two real threads with a phase barrier (the intended
// deployment); concurrent=false executes the identical schedule
// sequentially (the determinism reference).
PipelineStats run_zero_copy_pipeline(TiledBuffer& buffer, const TileFn& cpu_fn,
                                     const TileFn& gpu_fn,
                                     std::uint32_t phases,
                                     bool concurrent = true);

}  // namespace cig::core
