// Decision provenance: the structured record of *why* the framework (and
// the online controller wrapping it) recommended a communication model.
//
// A Recommendation's one-line rationale is enough for a human skimming a
// report; the Explanation carries everything needed to audit or replay the
// decision — the input counters (eqn-1/2 cache usages), the device
// thresholds and the zone they selected, which speedup equation ran with
// which inputs and cap, and the ordered checks the Fig. 2 flow evaluated.
// It serializes to JSON (and parses back) so `cigtool decide --explain`,
// `cigtool explain` and `cigtool runtime --explain` can emit
// machine-readable provenance next to the human rationale.
#pragma once

#include <string>
#include <vector>

#include "comm/model.h"
#include "core/perfmodel.h"
#include "core/thresholds.h"
#include "support/json.h"
#include "support/units.h"

namespace cig::core {

// Short, parseable zone keys ("comparable" / "grey" / "cache-bound"),
// unlike zone_name()'s display strings.
const char* zone_key(Zone zone);
Zone zone_from_key(const std::string& key);

comm::CommModel model_from_name(const std::string& name);  // "SC"/"UM"/"ZC"

struct Explanation {
  // Where the decision ran.
  std::string board;
  std::string capability;

  // Decision inputs: the eqn-1/2 counters...
  double gpu_usage_pct = 0;
  double cpu_usage_pct = 0;
  // ...the device thresholds they were compared against...
  double gpu_threshold_pct = 0;
  double gpu_zone2_end_pct = 100;
  double cpu_threshold_pct = 100;
  // ...and the classification that resulted.
  Zone gpu_zone = Zone::Comparable;
  bool cpu_over_threshold = false;

  // Speedup estimate: which equation ran (3 = SC->ZC, 4 = ZC->SC,
  // 0 = no estimate on this path), over which timing inputs, with which
  // device cap.
  int equation = 0;
  SpeedupInputs inputs;
  double max_speedup = 1.0;
  double estimated_speedup = 1.0;

  // Outcome.
  comm::CommModel current = comm::CommModel::StandardCopy;
  comm::CommModel suggested = comm::CommModel::StandardCopy;
  bool switch_model = false;
  bool use_overlap_pattern = false;

  // Resident-footprint accounting (core::FootprintModel), filled by
  // callers that know the shared-buffer size (the runtime controller, the
  // serve tenants). All zero when no buffer size was supplied.
  Bytes shared_bytes = 0;
  Bytes current_footprint_bytes = 0;
  Bytes suggested_footprint_bytes = 0;

  // The ordered checks the decision flow evaluated, in evaluation order —
  // e.g. "gpu_cache_usage 12.3% <= gpu_threshold 57.1% -> zone 1".
  std::vector<std::string> checks;
  std::string rationale;

  Json to_json() const;
  static Explanation from_json(const Json& json);
};

}  // namespace cig::core
