#include "core/thresholds.h"

#include <algorithm>
#include <sstream>

#include "support/assert.h"

namespace cig::core {

const char* zone_name(Zone zone) {
  switch (zone) {
    case Zone::Comparable: return "zone-1 (ZC comparable)";
    case Zone::Grey: return "zone-2 (ZC possible with overlap)";
    case Zone::CacheBound: return "zone-3 (cache-bound, avoid ZC)";
  }
  return "?";
}

Zone ThresholdAnalysis::classify(double usage_pct) const {
  if (usage_pct <= threshold_pct) return Zone::Comparable;
  if (usage_pct <= zone2_end_pct) return Zone::Grey;
  return Zone::CacheBound;
}

std::string ThresholdAnalysis::to_string() const {
  std::ostringstream out;
  out << "threshold " << threshold_pct << " %, zone-2 end " << zone2_end_pct
      << " %, peak " << format_bandwidth(peak_throughput);
  return out.str();
}

ThresholdAnalysis analyze_sweep(std::vector<SweepPoint> points,
                                double comparable_tolerance,
                                double zone3_slowdown) {
  CIG_EXPECTS(!points.empty());
  CIG_EXPECTS(comparable_tolerance > 0);
  CIG_EXPECTS(zone3_slowdown > comparable_tolerance);
  CIG_EXPECTS(std::is_sorted(points.begin(), points.end(),
                             [](const SweepPoint& a, const SweepPoint& b) {
                               return a.fraction < b.fraction;
                             }));

  ThresholdAnalysis analysis;
  analysis.comparable_tolerance = comparable_tolerance;
  for (const auto& p : points) {
    analysis.peak_throughput =
        std::max(analysis.peak_throughput, p.throughput_sc);
  }
  CIG_EXPECTS(analysis.peak_throughput > 0);

  // Last point of the initial comparable run.
  const SweepPoint* last_comparable = nullptr;
  for (const auto& p : points) {
    CIG_EXPECTS(p.time_sc > 0);
    const double slowdown = (p.time_zc - p.time_sc) / p.time_sc;
    if (slowdown <= comparable_tolerance) {
      last_comparable = &p;
    } else {
      break;
    }
  }
  const auto point_usage = [&](const SweepPoint& p) {
    return p.usage_pct >= 0
               ? p.usage_pct
               : p.throughput_sc / analysis.peak_throughput * 100.0;
  };

  if (last_comparable == &points.back()) {
    // ZC tracked SC across the whole sweep: the cache never bottlenecks the
    // bypassed path (e.g. the CPU side of an I/O-coherent board) — the
    // threshold is unreachable (paper reports it as 100%).
    analysis.threshold_pct = 100.0;
  } else if (last_comparable != nullptr) {
    analysis.threshold_pct = point_usage(*last_comparable);
  } else {
    analysis.threshold_pct = 0.0;  // ZC never comparable on this device
  }

  // First point whose ZC slowdown exceeds the zone-3 boundary.
  analysis.zone2_end_pct = 100.0;
  for (const auto& p : points) {
    const double slowdown = (p.time_zc - p.time_sc) / p.time_sc;
    if (slowdown > zone3_slowdown) {
      analysis.zone2_end_pct = point_usage(p);
      break;
    }
  }
  analysis.zone2_end_pct =
      std::max(analysis.zone2_end_pct, analysis.threshold_pct);

  analysis.points = std::move(points);
  return analysis;
}

Json SweepPoint::to_json() const {
  Json j;
  j["fraction"] = Json(fraction);
  j["time_sc"] = Json(time_sc);
  j["time_zc"] = Json(time_zc);
  j["throughput_sc"] = Json(throughput_sc);
  j["throughput_zc"] = Json(throughput_zc);
  j["usage_pct"] = Json(usage_pct);
  return j;
}

SweepPoint SweepPoint::from_json(const Json& j) {
  SweepPoint p;
  p.fraction = j.at("fraction").as_number();
  p.time_sc = j.at("time_sc").as_number();
  p.time_zc = j.at("time_zc").as_number();
  p.throughput_sc = j.at("throughput_sc").as_number();
  p.throughput_zc = j.at("throughput_zc").as_number();
  p.usage_pct = j.at("usage_pct").as_number();
  return p;
}

Json ThresholdAnalysis::to_json() const {
  Json j;
  j["threshold_pct"] = Json(threshold_pct);
  j["zone2_end_pct"] = Json(zone2_end_pct);
  j["peak_throughput"] = Json(peak_throughput);
  j["comparable_tolerance"] = Json(comparable_tolerance);
  Json point_array = JsonArray{};
  for (const auto& p : points) point_array.push_back(p.to_json());
  j["points"] = std::move(point_array);
  return j;
}

ThresholdAnalysis ThresholdAnalysis::from_json(const Json& j) {
  ThresholdAnalysis analysis;
  analysis.threshold_pct = j.at("threshold_pct").as_number();
  analysis.zone2_end_pct = j.at("zone2_end_pct").as_number();
  analysis.peak_throughput = j.at("peak_throughput").as_number();
  analysis.comparable_tolerance = j.at("comparable_tolerance").as_number();
  for (const auto& p : j.at("points").as_array()) {
    analysis.points.push_back(SweepPoint::from_json(p));
  }
  return analysis;
}

}  // namespace cig::core
