#include "core/framework.h"

#include <sstream>

#include "support/assert.h"

namespace cig::core {

Framework::Framework(soc::BoardConfig board, comm::ExecOptions options,
                     SweepOptions sweep)
    : soc_(std::make_unique<soc::SoC>(std::move(board))),
      options_(options),
      sweep_(sweep),
      profiler_(*soc_, options),
      executor_(*soc_, options) {}

const DeviceCharacterization& Framework::device() {
  if (!device_) {
    MicrobenchSuite suite(*soc_, options_, sweep_);
    device_ = suite.characterize();
  }
  return *device_;
}

profile::ProfileReport Framework::profile(const workload::Workload& workload,
                                          comm::CommModel current_model) {
  return profiler_.profile(workload, current_model);
}

void Framework::set_device(DeviceCharacterization device) {
  device_ = std::move(device);
}

bool Framework::degraded() { return !device_problems().empty(); }

std::vector<std::string> Framework::device_problems() {
  return device().problems();
}

Recommendation Framework::analyze(const workload::Workload& workload,
                                  comm::CommModel current_model) {
  // A defective characterization (NaN thresholds, missing MB columns) must
  // not reach eqn 1-4 — usage_from would divide by the broken peak and the
  // zone classification would compare against NaN. Answer conservatively
  // and say why instead.
  const auto problems = device_problems();
  if (!problems.empty()) {
    return DecisionEngine::degraded_recommendation(
        current_model, device().board, device().capability, problems);
  }
  const DecisionEngine engine(device());
  return engine.recommend(profile(workload, current_model));
}

double Framework::TuningReport::actual_speedup() const {
  const auto& current = measured[model_index(recommendation.current)];
  const auto& suggested = measured[model_index(recommendation.suggested)];
  CIG_EXPECTS(suggested.total > 0);
  return current.total / suggested.total;
}

std::string Framework::TuningReport::to_string() const {
  std::ostringstream out;
  out << profile.to_string() << '\n' << recommendation.to_string() << '\n';
  out << "measured (all models):\n";
  for (const auto model : kAllModels) {
    const auto& run = measured[model_index(model)];
    out << "  " << comm::model_name(model) << ": total "
        << format_time(run.total_per_iter()) << " (cpu "
        << format_time(run.cpu_time_per_iter()) << ", kernel "
        << format_time(run.kernel_time_per_iter()) << ", copy "
        << format_time(run.copy_time_per_iter()) << "), energy " << run.energy
        << " J\n";
  }
  if (recommendation.switch_model) {
    out << "actual speedup of suggested switch: " << actual_speedup()
        << "x (estimated " << recommendation.estimated_speedup << "x, bound "
        << recommendation.max_speedup << "x)\n";
  }
  return out.str();
}

Framework::TuningReport Framework::tune(const workload::Workload& workload,
                                        comm::CommModel current_model) {
  TuningReport report;
  report.profile = profile(workload, current_model);
  const auto problems = device_problems();
  if (!problems.empty()) {
    report.recommendation = DecisionEngine::degraded_recommendation(
        current_model, device().board, device().capability, problems);
  } else {
    const DecisionEngine engine(device());
    report.recommendation = engine.recommend(report.profile);
  }
  for (const auto model : kAllModels) {
    report.measured[model_index(model)] = executor_.run(workload, model);
  }
  return report;
}

}  // namespace cig::core
