#include "core/result_cache.h"

#include <filesystem>
#include <fstream>
#include <sstream>

#include "support/hash.h"
#include "support/log.h"

namespace cig::core {

namespace fs = std::filesystem;

namespace {

std::string memory_key(const std::string& kind, const std::string& key_text) {
  return kind + '\0' + key_text;
}

// True if `name` looks like one of our entry files: <kind>-<16 hex>.json.
bool is_entry_file(const std::string& name) {
  if (name.size() < 22) return false;  // 1 + '-' + 16 + ".json"
  if (name.substr(name.size() - 5) != ".json") return false;
  const std::string stem = name.substr(0, name.size() - 5);
  const std::size_t dash = stem.rfind('-');
  if (dash == std::string::npos || stem.size() - dash - 1 != 16) return false;
  for (std::size_t i = dash + 1; i < stem.size(); ++i) {
    const char c = stem[i];
    const bool hex = (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f');
    if (!hex) return false;
  }
  return true;
}

}  // namespace

ResultCache::ResultCache(std::string dir) : dir_(std::move(dir)) {}

std::uint64_t ResultCache::key_of(const std::string& key_text) {
  return support::fnv1a64(key_text);
}

std::string ResultCache::entry_path(const std::string& kind,
                                    std::uint64_t key) const {
  return (fs::path(dir_) / (kind + '-' + support::fnv1a64_hex(key) + ".json"))
      .string();
}

void ResultCache::disable_disk(const std::string& why) {
  disk_disabled_ = true;
  stats_.disabled = 1;
  CIG_LOG_C(::cig::LogLevel::Warn, "cache",
            "cache dir '" << dir_ << "' unusable (" << why
                          << "); disk tier disabled, continuing memory-only");
}

bool ResultCache::ensure_disk_usable() {
  if (dir_.empty() || disk_disabled_) return false;
  if (disk_probed_) return true;
  disk_probed_ = true;
  // One write-through probe decides for the cache's lifetime: an unusable
  // directory must cost a single warning, not one failure per entry.
  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (ec) {
    disable_disk("cannot create: " + ec.message());
    return false;
  }
  const fs::path probe = fs::path(dir_) / ".cig-cache-probe";
  {
    std::ofstream out(probe, std::ios::binary | std::ios::trunc);
    out << "probe";
    if (!out) {
      disable_disk("not writable");
      return false;
    }
  }
  fs::remove(probe, ec);
  return true;
}

std::optional<Json> ResultCache::lookup(const std::string& kind,
                                        const std::string& key_text) {
  const auto it = memory_.find(memory_key(kind, key_text));
  if (it != memory_.end()) {
    ++stats_.hits;
    return it->second;
  }

  if (ensure_disk_usable()) {
    const std::string path = entry_path(kind, key_of(key_text));
    std::error_code ec;
    if (fs::exists(path, ec) && !ec) {
      try {
        std::ifstream in(path, std::ios::binary);
        std::ostringstream text;
        text << in.rdbuf();
        const Json entry = Json::parse(text.str());
        if (entry.string_or("schema", "") == kSchemaTag &&
            entry.string_or("kind", "") == kind &&
            entry.string_or("key_text", "") == key_text &&
            entry.contains("value")) {
          Json value = entry.at("value");
          memory_[memory_key(kind, key_text)] = value;
          ++stats_.hits;
          ++stats_.disk_hits;
          return value;
        }
        // Parsable but stale (schema/key mismatch or hash collision):
        // treat as a miss; the next store overwrites the file.
        ++stats_.corrupt_dropped;
      } catch (const std::exception&) {
        ++stats_.corrupt_dropped;  // unreadable/corrupt: never fatal
      }
    }
  }

  ++stats_.misses;
  return std::nullopt;
}

void ResultCache::store(const std::string& kind, const std::string& key_text,
                        const Json& value) {
  memory_[memory_key(kind, key_text)] = value;
  ++stats_.stores;

  if (!ensure_disk_usable()) return;
  try {
    Json entry;
    entry["schema"] = Json(std::string(kSchemaTag));
    entry["kind"] = Json(kind);
    entry["key_text"] = Json(key_text);
    entry["value"] = value;
    // Write-then-rename so a crashed writer never leaves a torn entry a
    // later run would have to drop as corrupt.
    const std::string path = entry_path(kind, key_of(key_text));
    const std::string tmp = path + ".tmp";
    {
      std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
      out << entry.dump(2) << '\n';
      if (!out) throw std::runtime_error("write failed");
    }
    fs::rename(tmp, path);
  } catch (const std::exception&) {
    // Disk persistence is best-effort; the in-memory entry still serves
    // this process.
  }
}

void ResultCache::export_stats(sim::StatRegistry& registry) const {
  registry.set("cache.hit", static_cast<double>(stats_.hits));
  registry.set("cache.miss", static_cast<double>(stats_.misses));
  registry.set("cache.store", static_cast<double>(stats_.stores));
  registry.set("cache.disk_hit", static_cast<double>(stats_.disk_hits));
  registry.set("cache.corrupt_dropped",
               static_cast<double>(stats_.corrupt_dropped));
  registry.set("cache.disabled", static_cast<double>(stats_.disabled));
}

ResultCache::DiskUsage ResultCache::disk_usage() const {
  DiskUsage usage;
  if (dir_.empty()) return usage;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir_, ec)) {
    if (!entry.is_regular_file(ec)) continue;
    if (!is_entry_file(entry.path().filename().string())) continue;
    ++usage.entries;
    usage.bytes += static_cast<std::uint64_t>(entry.file_size(ec));
  }
  return usage;
}

std::uint64_t ResultCache::clear() {
  memory_.clear();
  std::uint64_t removed = 0;
  if (dir_.empty()) return removed;
  std::error_code ec;
  std::vector<fs::path> victims;
  for (const auto& entry : fs::directory_iterator(dir_, ec)) {
    if (!entry.is_regular_file(ec)) continue;
    if (!is_entry_file(entry.path().filename().string())) continue;
    victims.push_back(entry.path());
  }
  for (const auto& path : victims) {
    if (fs::remove(path, ec) && !ec) ++removed;
  }
  return removed;
}

}  // namespace cig::core
