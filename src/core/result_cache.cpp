#include "core/result_cache.h"

#include <filesystem>
#include <vector>

#include "support/hash.h"
#include "support/log.h"

namespace cig::core {

namespace fs = std::filesystem;

namespace {

std::string memory_key(const std::string& kind, const std::string& key_text) {
  return kind + '\0' + key_text;
}

// True if `name` looks like a legacy per-entry file from the pre-journal
// disk format: <kind>-<16 hex>.json. clear() still removes these so a cache
// directory upgraded in place does not leak stale files forever.
bool is_legacy_entry_file(const std::string& name) {
  if (name.size() < 22) return false;  // 1 + '-' + 16 + ".json"
  if (name.substr(name.size() - 5) != ".json") return false;
  const std::string stem = name.substr(0, name.size() - 5);
  const std::size_t dash = stem.rfind('-');
  if (dash == std::string::npos || stem.size() - dash - 1 != 16) return false;
  for (std::size_t i = dash + 1; i < stem.size(); ++i) {
    const char c = stem[i];
    const bool hex = (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f');
    if (!hex) return false;
  }
  return true;
}

}  // namespace

ResultCache::ResultCache(std::string dir) : dir_(std::move(dir)) {}

std::uint64_t ResultCache::key_of(const std::string& key_text) {
  return support::fnv1a64(key_text);
}

std::string ResultCache::journal_path() const {
  return (fs::path(dir_) / "cache.journal").string();
}

void ResultCache::disable_disk(const std::string& why) {
  disk_disabled_ = true;
  stats_.disabled = 1;
  journal_.reset();
  CIG_LOG_C(::cig::LogLevel::Warn, "cache",
            "cache dir '" << dir_ << "' unusable (" << why
                          << "); disk tier disabled, continuing memory-only");
}

bool ResultCache::ensure_disk_usable() {
  if (dir_.empty() || disk_disabled_) return false;
  if (disk_probed_ && journal_) return true;
  disk_probed_ = true;
  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (ec) {
    disable_disk("cannot create: " + ec.message());
    return false;
  }
  // Opening the journal runs crash recovery: intact records load, a torn
  // tail from a crashed writer is truncated in place.
  try {
    journal_ = std::make_unique<persist::Journal>(journal_path());
  } catch (const std::exception& e) {
    disable_disk(e.what());
    return false;
  }
  const auto& recovery = journal_->recovery();
  stats_.recovered += recovery.records;
  if (recovery.torn) {
    stats_.torn_discarded += 1;
    CIG_LOG_C(::cig::LogLevel::Warn, "cache",
              "cache journal had a torn tail (" << recovery.torn_bytes
                                                << " bytes); truncated");
  }
  for (const std::string& payload : journal_->records()) {
    Json entry;
    try {
      entry = Json::parse(payload);
    } catch (const std::exception&) {
      ++stats_.corrupt_dropped;  // checksum-valid but unparsable: never fatal
      continue;
    }
    if (!entry.contains("schema")) {
      // Parses, but was not written by any known cache version at all.
      ++stats_.invalid;
      if (!warned_invalid_) {
        warned_invalid_ = true;
        CIG_LOG_C(::cig::LogLevel::Warn, "cache",
                  "cache journal contains record(s) without a schema field; "
                  "ignoring them");
      }
      continue;
    }
    if (entry.string_or("schema", "") != kSchemaTag ||
        !entry.contains("value")) {
      ++stats_.corrupt_dropped;  // older/newer schema: stale, skip
      continue;
    }
    // Later records override earlier ones: append-as-overwrite.
    disk_index_[memory_key(entry.string_or("kind", ""),
                           entry.string_or("key_text", ""))] =
        entry.at("value");
  }
  return true;
}

std::optional<Json> ResultCache::lookup(const std::string& kind,
                                        const std::string& key_text) {
  const std::string key = memory_key(kind, key_text);
  const auto it = memory_.find(key);
  if (it != memory_.end()) {
    ++stats_.hits;
    return it->second;
  }

  if (ensure_disk_usable()) {
    const auto disk_it = disk_index_.find(key);
    if (disk_it != disk_index_.end()) {
      memory_[key] = disk_it->second;
      ++stats_.hits;
      ++stats_.disk_hits;
      return disk_it->second;
    }
  }

  ++stats_.misses;
  return std::nullopt;
}

void ResultCache::store(const std::string& kind, const std::string& key_text,
                        const Json& value) {
  const std::string key = memory_key(kind, key_text);
  memory_[key] = value;
  ++stats_.stores;

  if (!ensure_disk_usable()) return;
  Json entry;
  entry["schema"] = Json(std::string(kSchemaTag));
  entry["kind"] = Json(kind);
  entry["key_text"] = Json(key_text);
  entry["value"] = value;
  try {
    // Framed + checksummed + fsynced: a crash mid-append leaves a torn tail
    // the next open truncates, never a half-entry served as valid.
    journal_->append(entry.dump());
    disk_index_[key] = value;
  } catch (const std::exception& e) {
    // Disk persistence is best-effort; the in-memory entry still serves
    // this process.
    disable_disk(e.what());
  }
}

void ResultCache::export_stats(sim::StatRegistry& registry) const {
  registry.set("cache.hit", static_cast<double>(stats_.hits));
  registry.set("cache.miss", static_cast<double>(stats_.misses));
  registry.set("cache.store", static_cast<double>(stats_.stores));
  registry.set("cache.disk_hit", static_cast<double>(stats_.disk_hits));
  registry.set("cache.corrupt_dropped",
               static_cast<double>(stats_.corrupt_dropped));
  registry.set("cache.invalid", static_cast<double>(stats_.invalid));
  registry.set("cache.disabled", static_cast<double>(stats_.disabled));
  registry.set("persist.recovered", static_cast<double>(stats_.recovered));
  registry.set("persist.torn_discarded",
               static_cast<double>(stats_.torn_discarded));
}

ResultCache::DiskUsage ResultCache::disk_usage() {
  DiskUsage usage;
  if (dir_.empty()) return usage;
  if (ensure_disk_usable()) {
    usage.entries = disk_index_.size();
    usage.bytes = journal_->size_bytes();
  }
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir_, ec)) {
    if (!entry.is_regular_file(ec)) continue;
    if (!is_legacy_entry_file(entry.path().filename().string())) continue;
    ++usage.entries;
    usage.bytes += static_cast<std::uint64_t>(entry.file_size(ec));
  }
  return usage;
}

std::uint64_t ResultCache::clear() {
  memory_.clear();
  std::uint64_t removed = 0;
  if (dir_.empty()) return removed;

  // Count and drop the journal tier (open it first if this cache never
  // touched disk, so the count reflects what was actually stored).
  if (ensure_disk_usable()) {
    removed += disk_index_.size();
  }
  disk_index_.clear();
  journal_.reset();  // close before deleting the file
  std::error_code ec;
  fs::remove(journal_path(), ec);
  // Allow the disk tier to come back (recreating an empty journal) on the
  // next store, unless it was disabled for cause.
  disk_probed_ = false;

  // Legacy per-entry files from the pre-journal format.
  std::vector<fs::path> victims;
  for (const auto& entry : fs::directory_iterator(dir_, ec)) {
    if (!entry.is_regular_file(ec)) continue;
    if (!is_legacy_entry_file(entry.path().filename().string())) continue;
    victims.push_back(entry.path());
  }
  for (const auto& path : victims) {
    if (fs::remove(path, ec) && !ec) ++removed;
  }
  return removed;
}

}  // namespace cig::core
