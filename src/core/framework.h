// Top-level API of the framework (Fig. 2): owns a simulated board,
// characterizes it with the micro-benchmark suite, profiles applications,
// and produces communication-model recommendations and tuning reports.
//
//   cig::core::Framework fw(cig::soc::jetson_agx_xavier());
//   auto report = fw.tune(my_workload, cig::comm::CommModel::StandardCopy);
//   std::cout << report.to_string();
#pragma once

#include <array>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "comm/executor.h"
#include "core/decision.h"
#include "core/microbench.h"
#include "profile/profiler.h"
#include "soc/soc.h"
#include "workload/task.h"

namespace cig::core {

class Framework {
 public:
  // `sweep` tunes the characterization path (core/sweep.h): worker count
  // for the MB2 grids, the optional result cache, and stat/trace hooks.
  explicit Framework(soc::BoardConfig board, comm::ExecOptions options = {},
                     SweepOptions sweep = {});

  // Device characterization (micro-benchmarks); cached after the first call.
  const DeviceCharacterization& device();

  // Injects a characterization from outside (a cache, a file, a test)
  // instead of running the micro-benchmarks. The input is validated lazily:
  // a defective characterization routes analyze()/tune() into degraded mode
  // rather than being rejected here.
  void set_device(DeviceCharacterization device);

  // True when the current characterization fails validation and
  // analyze()/tune() answer with the conservative degraded-mode fallback.
  bool degraded();
  // The validation failures behind degraded() (empty when healthy).
  std::vector<std::string> device_problems();

  // Profiles the application under its current communication model.
  profile::ProfileReport profile(const workload::Workload& workload,
                                 comm::CommModel current_model);

  // Profiling + decision flow: what the paper's framework outputs.
  Recommendation analyze(const workload::Workload& workload,
                         comm::CommModel current_model);

  struct TuningReport {
    profile::ProfileReport profile;
    Recommendation recommendation;
    // Ground truth: the workload measured under all three models
    // (what a developer would obtain by porting and re-measuring).
    PerModel<comm::RunResult> measured;

    double actual_speedup() const;  // current vs suggested, measured
    std::string to_string() const;
  };

  // Full loop: profile, recommend, and verify by running all three models.
  TuningReport tune(const workload::Workload& workload,
                    comm::CommModel current_model);

  soc::SoC& soc() { return *soc_; }
  const soc::BoardConfig& board() const { return soc_->config(); }

 private:
  std::unique_ptr<soc::SoC> soc_;
  comm::ExecOptions options_;
  SweepOptions sweep_;
  profile::Profiler profiler_;
  comm::Executor executor_;
  std::optional<DeviceCharacterization> device_;
};

}  // namespace cig::core
