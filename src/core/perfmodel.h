// The paper's performance model (Section III-A, equations 1-4).
//
// Cache-usage metrics quantify how much of a task's data demand is served
// by the last-level caches; the speedup estimators predict what switching
// communication model would buy, bounded by the device-specific maxima the
// micro-benchmarks extract.
#pragma once

#include "profile/report.h"
#include "support/units.h"

namespace cig::core {

// Eqn 1: CPU_Cache_usage_LL_L1 = miss_rate_L1_CPU * (1 - miss_rate_LL_CPU).
// The fraction of CPU demand that misses L1 but is served by the LLC.
// Returned as a fraction in [0, 1].
double cpu_cache_usage(double cpu_l1_miss_rate, double cpu_llc_miss_rate);

// Eqn 2: GPU_Cache_usage_LL_L1 =
//   [ t_n * t_size * (1 - hit_rate_L1_GPU) / kernel_runtime ]
//     / GPU_Cache_LL_L1^max_throughput.
// The LL-delivered bandwidth the kernel consumes, normalised by the
// device's peak LL-L1 throughput (from micro-benchmark 1). In [0, 1+].
double gpu_cache_usage(double transactions, double transaction_size_bytes,
                       double gpu_l1_hit_rate, Seconds kernel_runtime,
                       BytesPerSecond max_ll_throughput);

struct CacheUsage {
  double cpu = 0;  // fraction
  double gpu = 0;  // fraction

  double cpu_pct() const { return cpu * 100.0; }
  double gpu_pct() const { return gpu * 100.0; }
};

// Convenience: evaluate both metrics from a profile report.
CacheUsage cache_usage(const profile::ProfileReport& report,
                       BytesPerSecond max_ll_throughput);

// Inputs to eqns 3-4: the application as currently implemented.
struct SpeedupInputs {
  Seconds runtime = 0;    // whole-application time under the current model
  Seconds copy_time = 0;  // CPU-iGPU transfer time within `runtime`
  Seconds cpu_time = 0;   // CPU-task-only portion
  Seconds gpu_time = 0;   // GPU-kernel-only portion
};

// Eqn 3: potential speedup of replacing SC with ZC (not-cache-dependent
// apps): copies are eliminated and CPU/GPU computation may overlap.
// Bounded above by `max_speedup` (SC/ZC_Max_speedup from MB3).
double sc_to_zc_speedup(const SpeedupInputs& in, double max_speedup);

// Eqn 4: potential speedup of replacing ZC with SC (cache-dependent apps):
// copies come back and CPU/GPU serialize. Bounded by ZC/SC_Max_speedup
// (from MB1's kernel-time ratio).
double zc_to_sc_speedup(const SpeedupInputs& in, double max_speedup);

}  // namespace cig::core
