// Content-addressed memoization for device characterization.
//
// Sweep batches and whole DeviceCharacterization objects are pure functions
// of (board config, workload builder, ExecOptions), so they are cached
// under their full (pre-hash) key string. Entries live in memory and, when
// a cache directory is configured, in a single crash-safe append-only
// journal (persist/journal.h) of framed, checksummed records:
//
//   <dir>/cache.journal
//   record = { "schema": "cig-result-cache-v1",
//              "kind": ..., "key_text": ..., "value": ... }
//
// Opening the journal recovers it: intact records are indexed (later
// records for the same key override earlier ones), a torn tail left by a
// crashed writer is detected by its checksum and truncated
// (persist.torn_discarded), and every intact record counts toward
// persist.recovered. A record that parses but lacks the "schema" field is
// ignored with one warning (cache.invalid); one carrying a different
// schema tag or no value is dropped as stale (cache.corrupt_dropped). A
// lookup only hits when `key_text` matches exactly, so stale entries are
// misses, never wrong answers — the cache never fails a run, it only skips
// work.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>

#include "persist/journal.h"
#include "sim/stat_registry.h"
#include "support/json.h"

namespace cig::core {

class ResultCache {
 public:
  // Bumped whenever serialized payloads or key construction change shape.
  static constexpr const char* kSchemaTag = "cig-result-cache-v1";

  // `dir` empty = in-memory only. The directory is created on first store.
  explicit ResultCache(std::string dir = "");

  // Builds the canonical key string for a (kind, inputs) pair. Callers
  // append every input that affects the result; see sweep.cpp.
  static std::uint64_t key_of(const std::string& key_text);

  // Returns the cached value when `key_text` has an exact entry (memory
  // first, then disk). Disk hits are promoted into memory.
  std::optional<Json> lookup(const std::string& kind,
                             const std::string& key_text);

  // Stores/overwrites the entry (memory + disk when a directory is set).
  // Disk I/O errors are swallowed: a read-only cache dir degrades to
  // memory-only behaviour instead of failing the run.
  void store(const std::string& kind, const std::string& key_text,
             const Json& value);

  struct Stats {
    std::uint64_t hits = 0;            // memory + disk
    std::uint64_t misses = 0;
    std::uint64_t stores = 0;
    std::uint64_t disk_hits = 0;       // subset of hits served from disk
    std::uint64_t corrupt_dropped = 0; // unreadable/stale records ignored
    std::uint64_t invalid = 0;         // parsable records missing "schema"
    std::uint64_t disabled = 0;        // 1 after the disk tier shut down
    std::uint64_t recovered = 0;       // intact journal records on open
    std::uint64_t torn_discarded = 0;  // torn journal tails truncated
  };
  const Stats& stats() const { return stats_; }

  // True while the disk tier is serving (a directory is configured and has
  // not failed its probe). An unusable directory — unwritable, unreadable,
  // or a path that cannot be created — logs one warning, flips this off for
  // the cache's lifetime, and the cache carries on memory-only.
  bool disk_enabled() const { return !dir_.empty() && !disk_disabled_; }

  // Exposes the counters as `cache.*` stats (cache.hit, cache.miss, ...)
  // for the Prometheus snapshot and Perfetto counter tracks.
  void export_stats(sim::StatRegistry& registry) const;

  // Number of live disk entries (journal index plus any legacy per-entry
  // files from the pre-journal format) and their total on-disk size (0/0
  // for a memory-only cache) — `cigtool cache stats`. Non-const: the first
  // call may open and recover the journal.
  struct DiskUsage {
    std::uint64_t entries = 0;
    std::uint64_t bytes = 0;
  };
  DiskUsage disk_usage();

  // Drops every in-memory entry, deletes the journal, and removes legacy
  // per-entry files matching the old <kind>-<hex>.json pattern. Returns
  // the number of disk entries removed.
  std::uint64_t clear();

  const std::string& dir() const { return dir_; }

 private:
  std::string journal_path() const;

  // First-use open + recovery of the cache journal (creating the directory
  // if needed). On failure: one warning, disk tier off, stats_.disabled =
  // 1. Returns disk_enabled().
  bool ensure_disk_usable();

  // Permanently turns the disk tier off with a single warning naming `why`.
  void disable_disk(const std::string& why);

  std::string dir_;
  bool disk_probed_ = false;
  bool disk_disabled_ = false;
  std::map<std::string, Json> memory_;  // keyed by kind + '\0' + key_text
  // Values recovered from / appended to the journal, same key scheme.
  std::map<std::string, Json> disk_index_;
  std::unique_ptr<persist::Journal> journal_;
  bool warned_invalid_ = false;
  Stats stats_;
};

}  // namespace cig::core
