// Content-addressed memoization for device characterization.
//
// Sweep batches and whole DeviceCharacterization objects are pure functions
// of (board config, workload builder, ExecOptions), so they are cached
// under a stable FNV-1a key of those inputs. Entries live in memory and,
// when a cache directory is configured, as one JSON file per entry:
//
//   <dir>/<kind>-<16-hex-key>.json
//   { "schema": "cig-result-cache-v1", "kind": ..., "key_text": ..., "value": ... }
//
// `key_text` is the full (pre-hash) key string; a lookup only hits when it
// matches exactly, so hash collisions and stale entries written by an older
// builder version are treated as misses and rewritten. Corrupt files are
// ignored the same way — the cache never fails a run, it only skips work.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>

#include "sim/stat_registry.h"
#include "support/json.h"

namespace cig::core {

class ResultCache {
 public:
  // Bumped whenever serialized payloads or key construction change shape.
  static constexpr const char* kSchemaTag = "cig-result-cache-v1";

  // `dir` empty = in-memory only. The directory is created on first store.
  explicit ResultCache(std::string dir = "");

  // Builds the canonical key string for a (kind, inputs) pair. Callers
  // append every input that affects the result; see sweep.cpp.
  static std::uint64_t key_of(const std::string& key_text);

  // Returns the cached value when `key_text` has an exact entry (memory
  // first, then disk). Disk hits are promoted into memory.
  std::optional<Json> lookup(const std::string& kind,
                             const std::string& key_text);

  // Stores/overwrites the entry (memory + disk when a directory is set).
  // Disk I/O errors are swallowed: a read-only cache dir degrades to
  // memory-only behaviour instead of failing the run.
  void store(const std::string& kind, const std::string& key_text,
             const Json& value);

  struct Stats {
    std::uint64_t hits = 0;            // memory + disk
    std::uint64_t misses = 0;
    std::uint64_t stores = 0;
    std::uint64_t disk_hits = 0;       // subset of hits served from disk
    std::uint64_t corrupt_dropped = 0; // unreadable/stale files ignored
    std::uint64_t disabled = 0;        // 1 after the disk tier shut down
  };
  const Stats& stats() const { return stats_; }

  // True while the disk tier is serving (a directory is configured and has
  // not failed its probe). An unusable directory — unwritable, unreadable,
  // or a path that cannot be created — logs one warning, flips this off for
  // the cache's lifetime, and the cache carries on memory-only.
  bool disk_enabled() const { return !dir_.empty() && !disk_disabled_; }

  // Exposes the counters as `cache.*` stats (cache.hit, cache.miss, ...)
  // for the Prometheus snapshot and Perfetto counter tracks.
  void export_stats(sim::StatRegistry& registry) const;

  // Number of entry files and their total size under the cache directory
  // (0/0 for a memory-only cache) — `cigtool cache stats`.
  struct DiskUsage {
    std::uint64_t entries = 0;
    std::uint64_t bytes = 0;
  };
  DiskUsage disk_usage() const;

  // Drops every in-memory entry and deletes this cache's entry files
  // (only files matching the <kind>-<hex>.json pattern are touched).
  // Returns the number of disk entries removed.
  std::uint64_t clear();

  const std::string& dir() const { return dir_; }

 private:
  std::string entry_path(const std::string& kind,
                         std::uint64_t key) const;

  // First-use probe of the cache directory (create + write + remove a probe
  // file). On failure: one warning, disk tier off, stats_.disabled = 1.
  // Returns disk_enabled().
  bool ensure_disk_usable();

  // Permanently turns the disk tier off with a single warning naming `why`.
  void disable_disk(const std::string& why);

  std::string dir_;
  bool disk_probed_ = false;
  bool disk_disabled_ = false;
  std::map<std::string, Json> memory_;  // keyed by kind + '\0' + key_text
  Stats stats_;
};

}  // namespace cig::core
