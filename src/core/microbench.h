// The micro-benchmark suite (Section III-B): three calibrated workloads run
// against a simulated board to extract its communication characteristics:
//
//  MB1 -> GPU_Cache_LL_L1^max_throughput per model (Table I), CPU/GPU task
//         times per model (Fig. 5), and ZC/SC_Max_speedup (the kernel-time
//         ratio: 70x on TX2, 3.7x on Xavier).
//  MB2 -> GPU_Cache_Threshold & zones (Figs 3/6) and CPU_Cache_Threshold.
//  MB3 -> SC/ZC_Max_speedup from a balanced, cache-independent, fully
//         overlapped workload on 2^27 floats (Fig. 7).
#pragma once

#include <array>
#include <string>
#include <vector>

#include "comm/executor.h"
#include "core/sweep.h"
#include "core/thresholds.h"
#include "soc/soc.h"

namespace cig::core {

// Indexable per-model storage (order: SC, UM, ZC).
template <typename T>
using PerModel = std::array<T, 3>;

inline std::size_t model_index(comm::CommModel model) {
  return static_cast<std::size_t>(model);
}

constexpr std::array<comm::CommModel, 3> kAllModels = {
    comm::CommModel::StandardCopy, comm::CommModel::UnifiedMemory,
    comm::CommModel::ZeroCopy};

struct Mb1Result {
  PerModel<BytesPerSecond> gpu_ll_throughput{};  // Table I row
  PerModel<Seconds> cpu_time{};                  // Fig. 5 bars
  PerModel<Seconds> gpu_time{};
  PerModel<Seconds> total_time{};

  // ZC/SC_Max_speedup: how much faster the GPU kernel can get by leaving ZC.
  double zc_sc_max_speedup() const;

  Json to_json() const;
  static Mb1Result from_json(const Json& j);
};

struct Mb2Result {
  ThresholdAnalysis gpu;  // GPU_Cache_Threshold & zones
  ThresholdAnalysis cpu;  // CPU_Cache_Threshold

  Json to_json() const;
  static Mb2Result from_json(const Json& j);
};

struct Mb3Result {
  PerModel<Seconds> total_time{};
  PerModel<Seconds> cpu_time{};
  PerModel<Seconds> gpu_time{};
  PerModel<Seconds> copy_time{};
  double overlap_fraction_zc = 0;

  double sc_zc_max_speedup() const;  // total SC / total ZC
  double um_zc_max_speedup() const;

  Json to_json() const;
  static Mb3Result from_json(const Json& j);
};

// Everything the decision framework needs to know about a device.
struct DeviceCharacterization {
  std::string board;
  coherence::Capability capability = coherence::Capability::SwFlush;
  Mb1Result mb1;
  Mb2Result mb2;
  Mb3Result mb3;

  BytesPerSecond gpu_cache_max_throughput() const {
    return mb1.gpu_ll_throughput[model_index(comm::CommModel::StandardCopy)];
  }
  double gpu_threshold_pct() const { return mb2.gpu.threshold_pct; }
  double gpu_zone2_end_pct() const { return mb2.gpu.zone2_end_pct; }
  double cpu_threshold_pct() const { return mb2.cpu.threshold_pct; }
  double sc_zc_max_speedup() const { return mb3.sc_zc_max_speedup(); }
  double zc_sc_max_speedup() const { return mb1.zc_sc_max_speedup(); }

  // Full-fidelity round-trip: `from_json(to_json())` reproduces every
  // double bit-for-bit (%.17g dump), so a cached characterization is
  // indistinguishable from a fresh run. Payload of the result cache.
  Json to_json() const;
  static DeviceCharacterization from_json(const Json& j);

  // Sanity-checks the inputs the decision flow divides and pivots by:
  // non-finite / non-positive MB1 throughputs, thresholds outside (0, 100],
  // an inverted zone boundary, missing MB3 timings. Returns one message per
  // defect naming the offending field (empty = usable). A non-empty result
  // routes Framework::analyze into degraded mode instead of letting NaNs
  // flow through eqn 1-4.
  std::vector<std::string> problems() const;
};

class MicrobenchSuite {
 public:
  // `sweep` controls the MB2 grid execution: worker count, memoization and
  // observability hooks (see core/sweep.h). The default (jobs = 1, no
  // cache) is the serial reference path.
  explicit MicrobenchSuite(soc::SoC& soc, comm::ExecOptions options = {},
                           SweepOptions sweep = {});

  Mb1Result run_mb1();
  Mb2Result run_mb2();
  Mb3Result run_mb3();

  // Runs all three and assembles the characterization. With a cache in the
  // sweep options, the whole object is memoized under the (board,
  // ExecOptions) key — a warm run skips every simulation.
  DeviceCharacterization characterize();

 private:
  soc::SoC& soc_;
  comm::Executor executor_;
  SweepOptions sweep_;
};

}  // namespace cig::core
