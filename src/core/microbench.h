// The micro-benchmark suite (Section III-B): three calibrated workloads run
// against a simulated board to extract its communication characteristics:
//
//  MB1 -> GPU_Cache_LL_L1^max_throughput per model (Table I), CPU/GPU task
//         times per model (Fig. 5), and ZC/SC_Max_speedup (the kernel-time
//         ratio: 70x on TX2, 3.7x on Xavier).
//  MB2 -> GPU_Cache_Threshold & zones (Figs 3/6) and CPU_Cache_Threshold.
//  MB3 -> SC/ZC_Max_speedup from a balanced, cache-independent, fully
//         overlapped workload on 2^27 floats (Fig. 7).
#pragma once

#include <array>
#include <string>

#include "comm/executor.h"
#include "core/thresholds.h"
#include "soc/soc.h"

namespace cig::core {

// Indexable per-model storage (order: SC, UM, ZC).
template <typename T>
using PerModel = std::array<T, 3>;

inline std::size_t model_index(comm::CommModel model) {
  return static_cast<std::size_t>(model);
}

constexpr std::array<comm::CommModel, 3> kAllModels = {
    comm::CommModel::StandardCopy, comm::CommModel::UnifiedMemory,
    comm::CommModel::ZeroCopy};

struct Mb1Result {
  PerModel<BytesPerSecond> gpu_ll_throughput{};  // Table I row
  PerModel<Seconds> cpu_time{};                  // Fig. 5 bars
  PerModel<Seconds> gpu_time{};
  PerModel<Seconds> total_time{};

  // ZC/SC_Max_speedup: how much faster the GPU kernel can get by leaving ZC.
  double zc_sc_max_speedup() const;
};

struct Mb2Result {
  ThresholdAnalysis gpu;  // GPU_Cache_Threshold & zones
  ThresholdAnalysis cpu;  // CPU_Cache_Threshold
};

struct Mb3Result {
  PerModel<Seconds> total_time{};
  PerModel<Seconds> cpu_time{};
  PerModel<Seconds> gpu_time{};
  PerModel<Seconds> copy_time{};
  double overlap_fraction_zc = 0;

  double sc_zc_max_speedup() const;  // total SC / total ZC
  double um_zc_max_speedup() const;
};

// Everything the decision framework needs to know about a device.
struct DeviceCharacterization {
  std::string board;
  coherence::Capability capability = coherence::Capability::SwFlush;
  Mb1Result mb1;
  Mb2Result mb2;
  Mb3Result mb3;

  BytesPerSecond gpu_cache_max_throughput() const {
    return mb1.gpu_ll_throughput[model_index(comm::CommModel::StandardCopy)];
  }
  double gpu_threshold_pct() const { return mb2.gpu.threshold_pct; }
  double gpu_zone2_end_pct() const { return mb2.gpu.zone2_end_pct; }
  double cpu_threshold_pct() const { return mb2.cpu.threshold_pct; }
  double sc_zc_max_speedup() const { return mb3.sc_zc_max_speedup(); }
  double zc_sc_max_speedup() const { return mb1.zc_sc_max_speedup(); }
};

class MicrobenchSuite {
 public:
  explicit MicrobenchSuite(soc::SoC& soc, comm::ExecOptions options = {});

  Mb1Result run_mb1();
  Mb2Result run_mb2();
  Mb3Result run_mb3();

  // Runs all three and assembles the characterization.
  DeviceCharacterization characterize();

 private:
  soc::SoC& soc_;
  comm::Executor executor_;
};

}  // namespace cig::core
