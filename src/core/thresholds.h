// Threshold and zone extraction from the micro-benchmark-2 sweep
// (Section III-B and Figs 3/6 of the paper).
//
// Sweeping the fraction of a fixed array a kernel touches produces, for
// each fraction, a (runtime, demand-throughput) pair under ZC and under SC.
// While the kernel is overhead/compute-bound the two models are
// *comparable*; once the cache-bypassed ZC path saturates they diverge.
// The cache threshold is the SC throughput at the last comparable point
// normalised by the SC peak throughput; on I/O-coherent devices a second
// boundary (slowdown > 200%) splits a "grey" zone 2 from the ZC-hostile
// zone 3.
#pragma once

#include <string>
#include <vector>

#include "support/json.h"
#include "support/units.h"

namespace cig::core {

struct SweepPoint {
  double fraction = 0;             // of the fixed array accessed
  Seconds time_sc = 0;             // kernel/task time under SC
  Seconds time_zc = 0;             // under ZC
  BytesPerSecond throughput_sc = 0;  // demand throughput under SC
  BytesPerSecond throughput_zc = 0;
  // Directly measured cache usage (eqn 1/2) at this point, in percent.
  // Negative = not available; the analysis then falls back to
  // throughput_sc / peak (the paper's Fig. 3 construction).
  double usage_pct = -1.0;

  // Exact round-trip (doubles survive dump/parse bit-for-bit) — used by
  // the characterization result-cache.
  Json to_json() const;
  static SweepPoint from_json(const Json& j);
};

enum class Zone {
  Comparable,   // zone 1: ZC == SC; prefer ZC (energy)
  Grey,         // zone 2: ZC may still win with overlap (I/O-coherent only)
  CacheBound,   // zone 3: ZC severely bottlenecked; use SC/UM
};

const char* zone_name(Zone zone);

struct ThresholdAnalysis {
  double threshold_pct = 0;    // cache-usage % at the last comparable point
  double zone2_end_pct = 100;  // cache-usage % where slowdown exceeds 200%
  BytesPerSecond peak_throughput = 0;  // SC peak over the sweep
  double comparable_tolerance = 0;     // relative runtime tolerance used
  std::vector<SweepPoint> points;

  // Classifies an application's measured cache usage (in %).
  Zone classify(double usage_pct) const;

  std::string to_string() const;

  // Exact round-trip, including the sweep points (result-cache payload).
  Json to_json() const;
  static ThresholdAnalysis from_json(const Json& j);
};

// Analyses a sweep (points must be in increasing fraction order).
// `comparable_tolerance`: max (t_zc - t_sc) / t_sc counting as comparable
// (the paper reads this off the plots; 0.8 reproduces its thresholds).
// `zone3_slowdown`: (t_zc - t_sc) / t_sc boundary of zone 3. The paper
// quotes "200%" on its measured curves; on the simulated curves 170%
// reproduces the same 57.1%-style zone-2 end (calibrated, see DESIGN.md).
ThresholdAnalysis analyze_sweep(std::vector<SweepPoint> points,
                                double comparable_tolerance = 0.8,
                                double zone3_slowdown = 1.7);

}  // namespace cig::core
