// Discrete-event simulation of the zero-copy tiled communication pattern
// (Section III-C) on a simulated board.
//
// While the execution engine models ZC overlap at task granularity (one
// bandwidth-arbitrated block per iteration), this simulator models the
// pattern itself: per-phase tile batches on the CPU and GPU lanes, a phase
// barrier between them, and per-side tile service times derived from the
// board's hierarchies. It answers pattern-level design questions — tile
// size, phase count, barrier cost, side imbalance — and produces a real
// Timeline (used by the ablation bench and the pattern demo).
#pragma once

#include "core/zc_pattern.h"
#include "sim/event_queue.h"
#include "sim/timeline.h"
#include "soc/soc.h"

namespace cig::core {

struct PatternSimConfig {
  TilingConfig tiling;
  // Cost of one phase barrier (two-sided synchronisation + fence).
  Seconds barrier_cost = microsec(2);
  // Arithmetic per element on each side (ops).
  double cpu_ops_per_element = 2.0;
  double gpu_ops_per_element = 2.0;
  double cpu_ops_per_cycle = 2.0;  // independent per-element work pipelines
  double gpu_utilization = 0.5;
};

struct PatternSimResult {
  Seconds total = 0;
  Seconds cpu_busy = 0;
  Seconds gpu_busy = 0;
  Seconds barrier_time = 0;  // total spent in phase barriers
  Seconds skew_time = 0;     // faster side idle, waiting at barriers
  double overlap_fraction = 0;
  sim::Timeline timeline;    // one segment per side per phase
};

class PatternSimulator {
 public:
  explicit PatternSimulator(soc::SoC& soc);

  // Simulates the full pipelined schedule under the zero-copy model
  // (pinned space: cache enables per the board's coherence capability).
  PatternSimResult simulate(const PatternSimConfig& config);

  // Per-tile service time on each side (exposed for tests/ablation).
  Seconds cpu_tile_time(const PatternSimConfig& config) const;
  Seconds gpu_tile_time(const PatternSimConfig& config) const;

 private:
  soc::SoC& soc_;
};

}  // namespace cig::core
