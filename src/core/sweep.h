// The MB2 sweep engine: one place that turns a board config into the
// paper's access-fraction sweeps (Figs 3/6), shared by the micro-benchmark
// suite, the bench drivers and `cigtool sweep` so they all agree on the
// exact fraction grid — and the cache key with it.
//
// Sweep points are pure functions of (board, ExecOptions, fraction):
// Executor::run resets the SoC, so every point runs from pristine state and
// can be computed on a fresh SoC instance per point. That makes the grid
// embarrassingly parallel (support/parallel.h) and memoizable
// (core/result_cache.h) without changing a single bit of the results.
#pragma once

#include <vector>

#include "comm/executor.h"
#include "core/result_cache.h"
#include "core/thresholds.h"
#include "obs/tracer.h"
#include "sim/stat_registry.h"
#include "soc/board.h"

namespace cig::core {

struct SweepOptions {
  // Worker count: 1 = serial loop on the calling thread (the bit-for-bit
  // reference path); 0 = CIG_JOBS env override, else hardware threads;
  // N > 1 = that many pool workers. Results are index-ordered and
  // identical for every setting.
  int jobs = 1;
  // Borrowed memoization store; null disables caching.
  ResultCache* cache = nullptr;
  // When set, receives cache.* and pool.* counters after each sweep.
  sim::StatRegistry* stats = nullptr;
  // When set, each sweep point becomes a CTRL-lane span (simulated time:
  // the point's SC + ZC kernel time), with cache hits as instants.
  obs::Tracer* tracer = nullptr;
};

// Single points (fresh SoC per call; deterministic).
SweepPoint mb2_gpu_point(const soc::BoardConfig& board,
                         const comm::ExecOptions& exec, double fraction);
SweepPoint mb2_cpu_point(const soc::BoardConfig& board,
                         const comm::ExecOptions& exec, double fraction);

// Full grids over workload::mb2_fractions() / mb2_cpu_fractions(), in grid
// order. With a cache, the whole batch is stored under one key of
// (kind, builder version, board fingerprint, ExecOptions, grid).
std::vector<SweepPoint> mb2_gpu_sweep(const soc::BoardConfig& board,
                                      const comm::ExecOptions& exec,
                                      const SweepOptions& options = {});
std::vector<SweepPoint> mb2_cpu_sweep(const soc::BoardConfig& board,
                                      const comm::ExecOptions& exec,
                                      const SweepOptions& options = {});

// Canonical fingerprint of the executor knobs that affect sweep results
// (part of every sweep cache key).
std::string exec_options_fingerprint(const comm::ExecOptions& exec);

// Exports the process-global worker-pool counters into `registry` as
// pool.tasks / pool.batches / pool.queue_depth (cumulative values).
void export_pool_stats(sim::StatRegistry& registry);

}  // namespace cig::core
