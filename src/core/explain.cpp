#include "core/explain.h"

#include <stdexcept>

namespace cig::core {

const char* zone_key(Zone zone) {
  switch (zone) {
    case Zone::Comparable: return "comparable";
    case Zone::Grey: return "grey";
    case Zone::CacheBound: return "cache-bound";
  }
  return "?";
}

Zone zone_from_key(const std::string& key) {
  if (key == "comparable") return Zone::Comparable;
  if (key == "grey") return Zone::Grey;
  if (key == "cache-bound") return Zone::CacheBound;
  throw std::runtime_error("unknown zone key '" + key + "'");
}

comm::CommModel model_from_name(const std::string& name) {
  if (name == "SC") return comm::CommModel::StandardCopy;
  if (name == "UM") return comm::CommModel::UnifiedMemory;
  if (name == "ZC") return comm::CommModel::ZeroCopy;
  throw std::runtime_error("unknown model name '" + name + "'");
}

Json Explanation::to_json() const {
  Json j;
  j["board"] = Json(board);
  j["capability"] = Json(capability);

  Json counters;
  counters["gpu_cache_usage_pct"] = Json(gpu_usage_pct);
  counters["cpu_cache_usage_pct"] = Json(cpu_usage_pct);
  j["counters"] = std::move(counters);

  Json thresholds;
  thresholds["gpu_cache_threshold_pct"] = Json(gpu_threshold_pct);
  thresholds["gpu_zone2_end_pct"] = Json(gpu_zone2_end_pct);
  thresholds["cpu_cache_threshold_pct"] = Json(cpu_threshold_pct);
  j["thresholds"] = std::move(thresholds);

  j["gpu_zone"] = Json(std::string(zone_key(gpu_zone)));
  j["cpu_over_threshold"] = Json(cpu_over_threshold);

  Json estimate;
  estimate["equation"] = Json(equation);
  Json in;
  in["runtime_us"] = Json(to_us(inputs.runtime));
  in["copy_time_us"] = Json(to_us(inputs.copy_time));
  in["cpu_time_us"] = Json(to_us(inputs.cpu_time));
  in["gpu_time_us"] = Json(to_us(inputs.gpu_time));
  estimate["inputs"] = std::move(in);
  estimate["max_speedup"] = Json(max_speedup);
  estimate["estimated_speedup"] = Json(estimated_speedup);
  j["estimate"] = std::move(estimate);

  j["current_model"] = Json(std::string(comm::model_name(current)));
  j["suggested_model"] = Json(std::string(comm::model_name(suggested)));
  j["switch"] = Json(switch_model);
  j["use_overlap_pattern"] = Json(use_overlap_pattern);

  if (shared_bytes > 0) {
    Json footprint;
    footprint["shared_bytes"] = Json(static_cast<double>(shared_bytes));
    footprint["current_bytes"] =
        Json(static_cast<double>(current_footprint_bytes));
    footprint["suggested_bytes"] =
        Json(static_cast<double>(suggested_footprint_bytes));
    j["footprint"] = std::move(footprint);
  }

  Json check_list;
  for (const auto& check : checks) check_list.push_back(Json(check));
  if (checks.empty()) check_list = JsonArray{};
  j["checks"] = std::move(check_list);
  j["rationale"] = Json(rationale);
  return j;
}

Explanation Explanation::from_json(const Json& json) {
  Explanation out;
  out.board = json.string_or("board", "");
  out.capability = json.string_or("capability", "");

  const Json& counters = json.at("counters");
  out.gpu_usage_pct = counters.number_or("gpu_cache_usage_pct", 0);
  out.cpu_usage_pct = counters.number_or("cpu_cache_usage_pct", 0);

  const Json& thresholds = json.at("thresholds");
  out.gpu_threshold_pct = thresholds.number_or("gpu_cache_threshold_pct", 0);
  out.gpu_zone2_end_pct = thresholds.number_or("gpu_zone2_end_pct", 100);
  out.cpu_threshold_pct = thresholds.number_or("cpu_cache_threshold_pct", 100);

  out.gpu_zone = zone_from_key(json.at("gpu_zone").as_string());
  out.cpu_over_threshold = json.bool_or("cpu_over_threshold", false);

  const Json& estimate = json.at("estimate");
  out.equation = static_cast<int>(estimate.number_or("equation", 0));
  const Json& in = estimate.at("inputs");
  out.inputs.runtime = microsec(in.number_or("runtime_us", 0));
  out.inputs.copy_time = microsec(in.number_or("copy_time_us", 0));
  out.inputs.cpu_time = microsec(in.number_or("cpu_time_us", 0));
  out.inputs.gpu_time = microsec(in.number_or("gpu_time_us", 0));
  out.max_speedup = estimate.number_or("max_speedup", 1.0);
  out.estimated_speedup = estimate.number_or("estimated_speedup", 1.0);

  out.current = model_from_name(json.at("current_model").as_string());
  out.suggested = model_from_name(json.at("suggested_model").as_string());
  out.switch_model = json.bool_or("switch", false);
  out.use_overlap_pattern = json.bool_or("use_overlap_pattern", false);

  // Optional (documents written before footprint accounting omit it).
  if (json.contains("footprint")) {
    const Json& footprint = json.at("footprint");
    out.shared_bytes =
        static_cast<Bytes>(footprint.number_or("shared_bytes", 0));
    out.current_footprint_bytes =
        static_cast<Bytes>(footprint.number_or("current_bytes", 0));
    out.suggested_footprint_bytes =
        static_cast<Bytes>(footprint.number_or("suggested_bytes", 0));
  }

  for (const auto& check : json.at("checks").as_array()) {
    out.checks.push_back(check.as_string());
  }
  out.rationale = json.string_or("rationale", "");
  return out;
}

}  // namespace cig::core
