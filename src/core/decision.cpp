#include "core/decision.h"

#include <sstream>

#include "core/footprint.h"
#include "support/assert.h"

namespace cig::core {

namespace {

std::string percent(double fraction) {
  std::ostringstream out;
  out.precision(3);
  out << fraction * 100.0 << "%";
  return out.str();
}

std::string num(double value) {
  std::ostringstream out;
  out.precision(4);
  out << value;
  return out.str();
}

}  // namespace

std::string Recommendation::to_string() const {
  std::ostringstream out;
  out << "current model " << comm::model_name(current) << " -> suggested "
      << comm::model_name(suggested);
  if (use_overlap_pattern) out << " + tiled overlap pattern";
  out << "\n  gpu cache usage " << percent(usage.gpu) << " ("
      << zone_name(gpu_zone) << "), cpu cache usage " << percent(usage.cpu)
      << (cpu_over_threshold ? " (over threshold)" : " (under threshold)")
      << "\n  estimated speedup " << estimated_speedup << "x (device bound "
      << max_speedup << "x)\n  " << rationale << "\n";
  return out.str();
}

DecisionEngine::DecisionEngine(DeviceCharacterization device)
    : device_(std::move(device)) {}

SpeedupInputs DecisionEngine::inputs_from(
    const profile::ProfileReport& profile) {
  return SpeedupInputs{.runtime = profile.total_time,
                       .copy_time = profile.copy_time,
                       .cpu_time = profile.cpu_time,
                       .gpu_time = profile.kernel_time};
}

CacheUsage DecisionEngine::usage_from(
    const profile::ProfileReport& profile) const {
  // Eqn 2 normalises the kernel's LL demand by the *measured* peak of the
  // model the profile was taken under: a ZC-implemented app runs against
  // the uncached-path throughput, an SC/UM app against the cached one.
  const BytesPerSecond peak =
      device_.mb1.gpu_ll_throughput[model_index(profile.model)];
  return cache_usage(profile, peak);
}

Zone DecisionEngine::classify_gpu(double usage_pct) const {
  Zone zone = device_.mb2.gpu.classify(usage_pct);
  if (zone == Zone::Grey &&
      device_.capability == coherence::Capability::SwFlush) {
    // The grey zone only exists on I/O-coherent devices (the paper defines
    // it on Xavier); without HW coherence any usage above the threshold
    // means the bypassed caches dominate.
    zone = Zone::CacheBound;
  }
  return zone;
}

Recommendation DecisionEngine::degraded_recommendation(
    comm::CommModel current, const std::string& board,
    coherence::Capability capability,
    const std::vector<std::string>& problems) {
  Recommendation rec;
  rec.current = current;
  rec.suggested = comm::CommModel::StandardCopy;
  rec.switch_model = current != comm::CommModel::StandardCopy;
  rec.estimated_speedup = 1.0;
  rec.max_speedup = 1.0;

  std::ostringstream why;
  why << "degraded mode: " << problems.size()
      << " characterization input(s) rejected; falling back to the "
         "conservative SC recommendation (no speedup claimed)";
  rec.rationale = why.str();

  Explanation& ex = rec.explanation;
  ex.board = board;
  ex.capability = capability_name(capability);
  ex.current = rec.current;
  ex.suggested = rec.suggested;
  ex.switch_model = rec.switch_model;
  ex.estimated_speedup = 1.0;
  ex.max_speedup = 1.0;
  ex.rationale = rec.rationale;
  for (const auto& problem : problems) {
    ex.checks.push_back("degraded: " + problem);
  }
  ex.checks.push_back("degraded: suggesting SC without running eqn 1-4");
  return rec;
}

Recommendation DecisionEngine::recommend(
    const profile::ProfileReport& profile) const {
  return recommend_for(usage_from(profile), profile.model,
                       inputs_from(profile));
}

Recommendation DecisionEngine::recommend_for(
    const CacheUsage& usage, comm::CommModel current,
    const SpeedupInputs& inputs) const {
  return recommend_for(usage, classify_gpu(usage.gpu_pct()),
                       cpu_over_threshold(usage.cpu_pct()), current, inputs);
}

Recommendation DecisionEngine::recommend_for(
    const CacheUsage& usage, Zone gpu_zone, bool cpu_over,
    comm::CommModel current, const SpeedupInputs& inputs) const {
  Recommendation rec;
  rec.current = current;
  rec.suggested = current;
  rec.usage = usage;
  rec.gpu_zone = gpu_zone;
  rec.cpu_over_threshold = cpu_over;

  // Provenance: record the inputs and thresholds up front, the checks as
  // the flow evaluates them, and the outcome on return.
  Explanation& ex = rec.explanation;
  ex.board = device_.board;
  ex.capability = capability_name(device_.capability);
  ex.gpu_usage_pct = usage.gpu_pct();
  ex.cpu_usage_pct = usage.cpu_pct();
  ex.gpu_threshold_pct = device_.gpu_threshold_pct();
  ex.gpu_zone2_end_pct = device_.gpu_zone2_end_pct();
  ex.cpu_threshold_pct = device_.cpu_threshold_pct();
  ex.gpu_zone = gpu_zone;
  ex.cpu_over_threshold = cpu_over;
  ex.inputs = inputs;
  ex.checks.push_back("gpu_cache_usage " + num(usage.gpu_pct()) +
                      "% vs gpu_threshold " + num(ex.gpu_threshold_pct) +
                      "% / zone2_end " + num(ex.gpu_zone2_end_pct) + "% -> " +
                      zone_key(gpu_zone));
  const auto finish = [&rec, &ex] {
    ex.estimated_speedup = rec.estimated_speedup;
    ex.max_speedup = rec.max_speedup;
    ex.current = rec.current;
    ex.suggested = rec.suggested;
    ex.switch_model = rec.switch_model;
    ex.use_overlap_pattern = rec.use_overlap_pattern;
    ex.rationale = rec.rationale;
    return rec;
  };

  const bool on_zero_copy = current == comm::CommModel::ZeroCopy;

  switch (rec.gpu_zone) {
    case Zone::CacheBound: {
      // GPU-cache-dependent application: ZC's bypassed caches would (or do)
      // bottleneck the kernel.
      if (on_zero_copy) {
        rec.suggested = comm::CommModel::StandardCopy;
        rec.switch_model = true;
        rec.max_speedup = device_.zc_sc_max_speedup();
        rec.estimated_speedup = zc_to_sc_speedup(inputs, rec.max_speedup);
        ex.equation = 4;
        ex.checks.push_back("cache-bound on ZC -> eqn 4: speedup " +
                            num(rec.estimated_speedup) + "x (cap " +
                            num(rec.max_speedup) + "x) -> switch ZC->SC");
        rec.rationale =
            "GPU cache usage exceeds zone 2: the disabled GPU LLC throttles "
            "the kernel under ZC; switch to SC (or UM).";
      } else {
        rec.switch_model = false;
        ex.checks.push_back(
            "cache-bound but already on SC/UM -> keep current model");
        rec.rationale =
            "GPU cache usage exceeds zone 2 and the application already "
            "uses SC/UM: no change suggested (per the framework flow).";
      }
      return finish();
    }
    case Zone::Grey: {
      // ZC may still break even if the saved copies + overlap outweigh the
      // reduced GPU throughput (I/O-coherent devices).
      if (on_zero_copy) {
        rec.switch_model = false;
        ex.checks.push_back("grey zone on ZC -> keep ZC + overlap pattern");
        rec.rationale =
            "GPU cache usage is in zone 2: ZC remains viable; keep it and "
            "retain the overlap pattern.";
        rec.use_overlap_pattern = true;
      } else {
        rec.max_speedup = device_.sc_zc_max_speedup();
        rec.estimated_speedup = sc_to_zc_speedup(inputs, rec.max_speedup);
        ex.equation = 3;
        if (rec.estimated_speedup >= 1.0) {
          rec.suggested = comm::CommModel::ZeroCopy;
          rec.switch_model = true;
          rec.use_overlap_pattern = true;
          ex.checks.push_back("grey zone -> eqn 3: speedup " +
                              num(rec.estimated_speedup) + "x (cap " +
                              num(rec.max_speedup) +
                              "x) >= 1 -> switch SC/UM->ZC");
          rec.rationale =
              "GPU cache usage is in zone 2: ZC can match or beat SC when "
              "the eliminated copies and CPU/GPU overlap offset the cache "
              "loss; evaluate ZC with the tiled pattern.";
        } else {
          rec.switch_model = false;
          ex.checks.push_back("grey zone -> eqn 3: speedup " +
                              num(rec.estimated_speedup) + "x (cap " +
                              num(rec.max_speedup) + "x) < 1 -> keep SC/UM");
          rec.rationale =
              "GPU cache usage is in zone 2 but the device-level bound "
              "(MB3) already predicts a ZC slowdown here: keep SC/UM.";
        }
      }
      return finish();
    }
    case Zone::Comparable:
      break;  // fall through to the CPU-side check below
  }

  // GPU cache usage is low; the CPU side decides.
  ex.checks.push_back("cpu_cache_usage " + num(usage.cpu_pct()) +
                      "% vs cpu_threshold " + num(ex.cpu_threshold_pct) +
                      "% -> " + (cpu_over ? "over" : "under"));
  if (rec.cpu_over_threshold) {
    // The CPU task depends on its caches, and this device sacrifices them
    // under ZC (a SwFlush board — on I/O-coherent boards the CPU threshold
    // is 100% and this branch is unreachable).
    if (on_zero_copy) {
      rec.suggested = comm::CommModel::StandardCopy;
      rec.switch_model = true;
      rec.max_speedup = device_.zc_sc_max_speedup();
      rec.estimated_speedup = zc_to_sc_speedup(inputs, rec.max_speedup);
      ex.equation = 4;
      ex.checks.push_back("cpu over threshold on ZC -> eqn 4: speedup " +
                          num(rec.estimated_speedup) + "x (cap " +
                          num(rec.max_speedup) + "x) -> switch ZC->SC");
      rec.rationale =
          "CPU cache usage exceeds the device threshold: pinned accesses "
          "bypass the CPU cache on this board; switch to SC (or UM).";
    } else {
      rec.switch_model = false;
      ex.checks.push_back(
          "cpu over threshold, already on SC/UM -> keep current model");
      rec.rationale =
          "CPU cache usage exceeds the device threshold: keep SC/UM — ZC "
          "would degrade the CPU task on this board.";
    }
    return finish();
  }

  // Neither cache matters: ZC gives at least equal performance and saves
  // the copy energy.
  if (on_zero_copy) {
    rec.switch_model = false;
    rec.use_overlap_pattern = true;
    ex.checks.push_back(
        "both caches low, already on ZC -> keep ZC + overlap pattern");
    rec.rationale =
        "Cache usage is low on both sides: ZC is already the right model "
        "(lowest energy); use the tiled pattern for overlap.";
  } else {
    rec.max_speedup = device_.sc_zc_max_speedup();
    rec.estimated_speedup = sc_to_zc_speedup(inputs, rec.max_speedup);
    ex.equation = 3;
    if (rec.estimated_speedup >= 1.0) {
      rec.suggested = comm::CommModel::ZeroCopy;
      rec.switch_model = true;
      rec.use_overlap_pattern = true;
      ex.checks.push_back("both caches low -> eqn 3: speedup " +
                          num(rec.estimated_speedup) + "x (cap " +
                          num(rec.max_speedup) +
                          "x) >= 1 -> switch SC/UM->ZC");
      rec.rationale =
          "Cache usage is low on both sides: ZC removes the copies, enables "
          "CPU/GPU overlap and lowers energy.";
    } else {
      // Low cache usage, but the device's pinned path is so slow that even
      // the cache-independent micro-benchmark loses under ZC (MB3 bound
      // below 1): switching would trade copies for something worse.
      rec.switch_model = false;
      ex.checks.push_back("both caches low -> eqn 3: speedup " +
                          num(rec.estimated_speedup) + "x (cap " +
                          num(rec.max_speedup) + "x) < 1 -> keep SC/UM");
      rec.rationale =
          "Cache usage is low, but this device's uncached pinned path makes "
          "even cache-independent ZC a net slowdown (MB3 bound < 1): keep "
          "SC/UM.";
    }
  }
  return finish();
}

void DecisionEngine::annotate_footprint(Recommendation& rec,
                                        Bytes shared_bytes) {
  if (shared_bytes == 0) return;
  rec.shared_bytes = shared_bytes;
  rec.current_footprint_bytes =
      FootprintModel::resident_bytes(rec.current, shared_bytes);
  rec.suggested_footprint_bytes =
      FootprintModel::resident_bytes(rec.suggested, shared_bytes);
  rec.explanation.shared_bytes = shared_bytes;
  rec.explanation.current_footprint_bytes = rec.current_footprint_bytes;
  rec.explanation.suggested_footprint_bytes = rec.suggested_footprint_bytes;
}

}  // namespace cig::core
