#include "core/microbench.h"

#include "core/perfmodel.h"
#include "support/assert.h"
#include "workload/builders.h"

namespace cig::core {

double Mb1Result::zc_sc_max_speedup() const {
  const Seconds sc = gpu_time[model_index(comm::CommModel::StandardCopy)];
  const Seconds zc = gpu_time[model_index(comm::CommModel::ZeroCopy)];
  CIG_EXPECTS(sc > 0);
  return zc / sc;
}

double Mb3Result::sc_zc_max_speedup() const {
  const Seconds sc = total_time[model_index(comm::CommModel::StandardCopy)];
  const Seconds zc = total_time[model_index(comm::CommModel::ZeroCopy)];
  CIG_EXPECTS(zc > 0);
  return sc / zc;
}

double Mb3Result::um_zc_max_speedup() const {
  const Seconds um = total_time[model_index(comm::CommModel::UnifiedMemory)];
  const Seconds zc = total_time[model_index(comm::CommModel::ZeroCopy)];
  CIG_EXPECTS(zc > 0);
  return um / zc;
}

MicrobenchSuite::MicrobenchSuite(soc::SoC& soc, comm::ExecOptions options)
    : soc_(soc), executor_(soc, options) {}

Mb1Result MicrobenchSuite::run_mb1() {
  const auto workload = workload::mb1_workload(soc_.config());
  Mb1Result result;
  for (const auto model : kAllModels) {
    const auto run = executor_.run(workload, model);
    const auto i = model_index(model);
    result.gpu_ll_throughput[i] = run.gpu_ll_throughput;
    result.cpu_time[i] = run.cpu_time_per_iter();
    result.gpu_time[i] = run.kernel_time_per_iter();
    result.total_time[i] = run.total_per_iter();
  }
  return result;
}

Mb2Result MicrobenchSuite::run_mb2() {
  Mb2Result result;

  std::vector<SweepPoint> gpu_points;
  for (const double fraction : workload::mb2_fractions()) {
    const auto workload = workload::mb2_workload(soc_.config(), fraction);
    const auto sc = executor_.run(workload, comm::CommModel::StandardCopy);
    const auto zc = executor_.run(workload, comm::CommModel::ZeroCopy);
    gpu_points.push_back(SweepPoint{.fraction = fraction,
                                    .time_sc = sc.kernel_time_per_iter(),
                                    .time_zc = zc.kernel_time_per_iter(),
                                    .throughput_sc = sc.gpu_demand_throughput,
                                    .throughput_zc =
                                        zc.gpu_demand_throughput});
  }

  std::vector<SweepPoint> cpu_points;
  for (const double fraction : workload::mb2_cpu_fractions()) {
    const auto workload = workload::mb2_cpu_workload(soc_.config(), fraction);
    const auto sc = executor_.run(workload, comm::CommModel::StandardCopy);
    const auto zc = executor_.run(workload, comm::CommModel::ZeroCopy);
    SweepPoint p{.fraction = fraction,
                 .time_sc = sc.cpu_time_per_iter(),
                 .time_zc = zc.cpu_time_per_iter(),
                 .throughput_sc = sc.cpu_demand_throughput,
                 .throughput_zc = zc.cpu_demand_throughput};
    // The CPU threshold is expressed directly in eqn-1 cache usage.
    p.usage_pct =
        cpu_cache_usage(sc.cpu_l1_miss_rate, sc.cpu_llc_miss_rate) * 100.0;
    cpu_points.push_back(p);
  }
  result.gpu = analyze_sweep(std::move(gpu_points));
  // The CPU side has no launch-overhead floor, so "comparable" is judged
  // more tightly than the GPU sweep.
  result.cpu = analyze_sweep(std::move(cpu_points), /*tolerance=*/0.4);
  return result;
}

Mb3Result MicrobenchSuite::run_mb3() {
  const auto workload = workload::mb3_workload(soc_.config());
  Mb3Result result;
  for (const auto model : kAllModels) {
    const auto run = executor_.run(workload, model);
    const auto i = model_index(model);
    result.total_time[i] = run.total_per_iter();
    result.cpu_time[i] = run.cpu_time_per_iter();
    result.gpu_time[i] = run.kernel_time_per_iter();
    result.copy_time[i] = run.copy_time_per_iter() +
                          run.migration_time / run.iterations;
    if (model == comm::CommModel::ZeroCopy) {
      result.overlap_fraction_zc = run.overlap_fraction;
    }
  }
  return result;
}

DeviceCharacterization MicrobenchSuite::characterize() {
  DeviceCharacterization device;
  device.board = soc_.config().name;
  device.capability = soc_.config().capability;
  device.mb1 = run_mb1();
  device.mb2 = run_mb2();
  device.mb3 = run_mb3();
  return device;
}

}  // namespace cig::core
