#include "core/microbench.h"

#include <cmath>

#include "soc/board_io.h"
#include "support/assert.h"
#include "workload/builders.h"

namespace cig::core {

namespace {

// Bump when the characterization payload or the MB1/MB3 builders change.
constexpr int kCharacterizationKeyVersion = 1;

Json per_model_to_json(const PerModel<double>& values) {
  Json array = JsonArray{};
  for (const double v : values) array.push_back(Json(v));
  return array;
}

PerModel<double> per_model_from_json(const Json& array) {
  const auto& values = array.as_array();
  CIG_EXPECTS(values.size() == 3);
  PerModel<double> out{};
  for (std::size_t i = 0; i < 3; ++i) out[i] = values[i].as_number();
  return out;
}

}  // namespace

double Mb1Result::zc_sc_max_speedup() const {
  const Seconds sc = gpu_time[model_index(comm::CommModel::StandardCopy)];
  const Seconds zc = gpu_time[model_index(comm::CommModel::ZeroCopy)];
  CIG_EXPECTS(sc > 0);
  return zc / sc;
}

double Mb3Result::sc_zc_max_speedup() const {
  const Seconds sc = total_time[model_index(comm::CommModel::StandardCopy)];
  const Seconds zc = total_time[model_index(comm::CommModel::ZeroCopy)];
  CIG_EXPECTS(zc > 0);
  return sc / zc;
}

double Mb3Result::um_zc_max_speedup() const {
  const Seconds um = total_time[model_index(comm::CommModel::UnifiedMemory)];
  const Seconds zc = total_time[model_index(comm::CommModel::ZeroCopy)];
  CIG_EXPECTS(zc > 0);
  return um / zc;
}

Json Mb1Result::to_json() const {
  Json j;
  j["gpu_ll_throughput"] = per_model_to_json(gpu_ll_throughput);
  j["cpu_time"] = per_model_to_json(cpu_time);
  j["gpu_time"] = per_model_to_json(gpu_time);
  j["total_time"] = per_model_to_json(total_time);
  return j;
}

Mb1Result Mb1Result::from_json(const Json& j) {
  Mb1Result r;
  r.gpu_ll_throughput = per_model_from_json(j.at("gpu_ll_throughput"));
  r.cpu_time = per_model_from_json(j.at("cpu_time"));
  r.gpu_time = per_model_from_json(j.at("gpu_time"));
  r.total_time = per_model_from_json(j.at("total_time"));
  return r;
}

Json Mb2Result::to_json() const {
  Json j;
  j["gpu"] = gpu.to_json();
  j["cpu"] = cpu.to_json();
  return j;
}

Mb2Result Mb2Result::from_json(const Json& j) {
  Mb2Result r;
  r.gpu = ThresholdAnalysis::from_json(j.at("gpu"));
  r.cpu = ThresholdAnalysis::from_json(j.at("cpu"));
  return r;
}

Json Mb3Result::to_json() const {
  Json j;
  j["total_time"] = per_model_to_json(total_time);
  j["cpu_time"] = per_model_to_json(cpu_time);
  j["gpu_time"] = per_model_to_json(gpu_time);
  j["copy_time"] = per_model_to_json(copy_time);
  j["overlap_fraction_zc"] = Json(overlap_fraction_zc);
  return j;
}

Mb3Result Mb3Result::from_json(const Json& j) {
  Mb3Result r;
  r.total_time = per_model_from_json(j.at("total_time"));
  r.cpu_time = per_model_from_json(j.at("cpu_time"));
  r.gpu_time = per_model_from_json(j.at("gpu_time"));
  r.copy_time = per_model_from_json(j.at("copy_time"));
  r.overlap_fraction_zc = j.at("overlap_fraction_zc").as_number();
  return r;
}

Json DeviceCharacterization::to_json() const {
  Json j;
  j["board"] = Json(board);
  j["capability"] = Json(std::string(capability_name(capability)));
  j["mb1"] = mb1.to_json();
  j["mb2"] = mb2.to_json();
  j["mb3"] = mb3.to_json();
  return j;
}

DeviceCharacterization DeviceCharacterization::from_json(const Json& j) {
  DeviceCharacterization device;
  device.board = j.at("board").as_string();
  device.capability = j.at("capability").as_string() == "hw-io-coherent"
                          ? coherence::Capability::HwIoCoherent
                          : coherence::Capability::SwFlush;
  device.mb1 = Mb1Result::from_json(j.at("mb1"));
  device.mb2 = Mb2Result::from_json(j.at("mb2"));
  device.mb3 = Mb3Result::from_json(j.at("mb3"));
  return device;
}

std::vector<std::string> DeviceCharacterization::problems() const {
  std::vector<std::string> out;
  const auto positive_finite = [&out](double value, const std::string& what) {
    if (!std::isfinite(value) || value <= 0) {
      out.push_back(what + " is " +
                    (std::isfinite(value) ? "non-positive" : "non-finite"));
    }
  };
  for (const auto model : kAllModels) {
    const std::string suffix =
        std::string("[") + comm::model_name(model) + "]";
    positive_finite(mb1.gpu_ll_throughput[model_index(model)],
                    "mb1.gpu_ll_throughput" + suffix);
    positive_finite(mb3.total_time[model_index(model)],
                    "mb3.total_time" + suffix);
  }
  const auto threshold_in_range = [&out](double value,
                                         const std::string& what) {
    if (!(value > 0 && value <= 100.0)) {  // also catches NaN
      out.push_back(what + " outside (0, 100]");
    }
  };
  threshold_in_range(mb2.gpu.threshold_pct, "mb2.gpu.threshold_pct");
  threshold_in_range(mb2.cpu.threshold_pct, "mb2.cpu.threshold_pct");
  if (!(mb2.gpu.zone2_end_pct >= mb2.gpu.threshold_pct)) {  // NaN-safe
    out.push_back("mb2.gpu.zone2_end_pct below mb2.gpu.threshold_pct");
  }
  return out;
}

MicrobenchSuite::MicrobenchSuite(soc::SoC& soc, comm::ExecOptions options,
                                 SweepOptions sweep)
    : soc_(soc), executor_(soc, options), sweep_(sweep) {}

Mb1Result MicrobenchSuite::run_mb1() {
  const auto workload = workload::mb1_workload(soc_.config());
  Mb1Result result;
  for (const auto model : kAllModels) {
    const auto run = executor_.run(workload, model);
    const auto i = model_index(model);
    result.gpu_ll_throughput[i] = run.gpu_ll_throughput;
    result.cpu_time[i] = run.cpu_time_per_iter();
    result.gpu_time[i] = run.kernel_time_per_iter();
    result.total_time[i] = run.total_per_iter();
  }
  return result;
}

Mb2Result MicrobenchSuite::run_mb2() {
  // The sweep engine runs each point on a fresh SoC; Executor::run resets
  // state anyway, so this is bit-identical to the old shared-executor loop
  // while letting points run in parallel and batches come from the cache.
  Mb2Result result;
  result.gpu =
      analyze_sweep(mb2_gpu_sweep(soc_.config(), executor_.options(), sweep_));
  // The CPU side has no launch-overhead floor, so "comparable" is judged
  // more tightly than the GPU sweep.
  result.cpu =
      analyze_sweep(mb2_cpu_sweep(soc_.config(), executor_.options(), sweep_),
                    /*tolerance=*/0.4);
  return result;
}

Mb3Result MicrobenchSuite::run_mb3() {
  const auto workload = workload::mb3_workload(soc_.config());
  Mb3Result result;
  for (const auto model : kAllModels) {
    const auto run = executor_.run(workload, model);
    const auto i = model_index(model);
    result.total_time[i] = run.total_per_iter();
    result.cpu_time[i] = run.cpu_time_per_iter();
    result.gpu_time[i] = run.kernel_time_per_iter();
    result.copy_time[i] = run.copy_time_per_iter() +
                          run.migration_time / run.iterations;
    if (model == comm::CommModel::ZeroCopy) {
      result.overlap_fraction_zc = run.overlap_fraction;
    }
  }
  return result;
}

DeviceCharacterization MicrobenchSuite::characterize() {
  const std::string key_text =
      std::string("characterization|v") +
      std::to_string(kCharacterizationKeyVersion) + '|' +
      exec_options_fingerprint(executor_.options()) + '|' +
      soc::board_fingerprint(soc_.config());

  if (sweep_.cache != nullptr) {
    if (auto cached = sweep_.cache->lookup("characterization", key_text)) {
      if (sweep_.stats != nullptr) {
        sweep_.cache->export_stats(*sweep_.stats);
        export_pool_stats(*sweep_.stats);
      }
      return DeviceCharacterization::from_json(*cached);
    }
  }

  DeviceCharacterization device;
  device.board = soc_.config().name;
  device.capability = soc_.config().capability;
  device.mb1 = run_mb1();
  device.mb2 = run_mb2();
  device.mb3 = run_mb3();
  if (sweep_.cache != nullptr) {
    sweep_.cache->store("characterization", key_text, device.to_json());
    if (sweep_.stats != nullptr) sweep_.cache->export_stats(*sweep_.stats);
  }
  return device;
}

}  // namespace cig::core
