#include "core/sweep.h"

#include <cstdio>

#include "core/perfmodel.h"
#include "mem/hierarchy.h"
#include "soc/board_io.h"
#include "support/parallel.h"
#include "workload/builders.h"

namespace cig::core {

namespace {

// Bump when the MB2 builders or SweepPoint derivation change, so stale
// disk entries from older builds stop matching.
constexpr int kSweepKeyVersion = 1;

std::string format_double(double value) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", value);
  return buf;
}

std::string grid_fingerprint(const std::vector<double>& fractions) {
  std::string out;
  for (const double f : fractions) {
    out += format_double(f);
    out += ',';
  }
  return out;
}

std::string sweep_key_text(const char* kind, const soc::BoardConfig& board,
                           const comm::ExecOptions& exec,
                           const std::vector<double>& fractions) {
  std::string key = std::string(kind) + "|v" +
                    std::to_string(kSweepKeyVersion) + '|' +
                    exec_options_fingerprint(exec) + '|' +
                    grid_fingerprint(fractions) + '|' +
                    soc::board_fingerprint(board);
  return key;
}

Json points_to_json(const std::vector<SweepPoint>& points) {
  Json array = JsonArray{};
  for (const auto& p : points) array.push_back(p.to_json());
  return array;
}

std::vector<SweepPoint> points_from_json(const Json& array) {
  std::vector<SweepPoint> points;
  for (const auto& p : array.as_array()) {
    points.push_back(SweepPoint::from_json(p));
  }
  return points;
}

// Emits one CTRL-lane span per sweep point (stacked in simulated time: the
// point's SC + ZC kernel time) plus a running points counter, so sweep
// shards are visible in the Perfetto trace next to the executor lanes.
void trace_sweep(obs::Tracer& tracer, const char* kind,
                 const std::vector<SweepPoint>& points, bool from_cache) {
  if (from_cache) {
    tracer.instant(sim::Lane::Ctrl, std::string(kind) + ": cache hit");
    return;
  }
  Seconds now = tracer.now();
  std::size_t done = 0;
  for (const auto& p : points) {
    const Seconds end = now + p.time_sc + p.time_zc;
    char label[64];
    std::snprintf(label, sizeof label, "%s[1/%.6g]", kind, 1.0 / p.fraction);
    tracer.segment(sim::Lane::Ctrl, now, end, label);
    tracer.counter_at(end, std::string(kind) + ".points",
                      static_cast<double>(++done));
    now = end;
  }
  tracer.set_now(now);
}

using PointFn = SweepPoint (*)(const soc::BoardConfig&,
                               const comm::ExecOptions&, double);

std::vector<SweepPoint> run_sweep(const char* kind, PointFn point_fn,
                                  const std::vector<double>& fractions,
                                  const soc::BoardConfig& board,
                                  const comm::ExecOptions& exec,
                                  const SweepOptions& options) {
  const std::string key_text = sweep_key_text(kind, board, exec, fractions);

  std::vector<SweepPoint> points;
  bool from_cache = false;
  if (options.cache != nullptr) {
    if (auto cached = options.cache->lookup(kind, key_text)) {
      points = points_from_json(*cached);
      from_cache = true;
    }
  }
  if (!from_cache) {
    points = support::parallel_map(fractions, options.jobs,
                                   [&](double fraction) {
                                     return point_fn(board, exec, fraction);
                                   });
    if (options.cache != nullptr) {
      options.cache->store(kind, key_text, points_to_json(points));
    }
  }

  if (options.stats != nullptr) {
    if (options.cache != nullptr) options.cache->export_stats(*options.stats);
    export_pool_stats(*options.stats);
  }
  if (options.tracer != nullptr) {
    trace_sweep(*options.tracer, kind, points, from_cache);
  }
  return points;
}

}  // namespace

std::string exec_options_fingerprint(const comm::ExecOptions& exec) {
  // The *resolved* fast-forward interval joins the key: a fastfwd'd sweep
  // produces (deliberately) approximate counters, and a cached full-detail
  // result must never be conflated with it — whether the interval came from
  // the option or from CIG_FASTFWD.
  return std::to_string(exec.warmup_iterations) + '|' +
         (exec.overlap ? '1' : '0') + '|' +
         format_double(exec.um_llc_bandwidth_factor) + '|' +
         std::to_string(mem::resolve_fastfwd(exec.fastfwd));
}

void export_pool_stats(sim::StatRegistry& registry) {
  const auto counters = support::pool_counters();
  registry.set("pool.tasks", static_cast<double>(counters.tasks));
  registry.set("pool.batches", static_cast<double>(counters.batches));
  registry.set("pool.queue_depth",
               static_cast<double>(counters.peak_queue_depth));
}

SweepPoint mb2_gpu_point(const soc::BoardConfig& board,
                         const comm::ExecOptions& exec, double fraction) {
  soc::SoC soc(board);
  comm::Executor executor(soc, exec);
  const auto workload = workload::mb2_workload(board, fraction);
  const auto sc = executor.run(workload, comm::CommModel::StandardCopy);
  const auto zc = executor.run(workload, comm::CommModel::ZeroCopy);
  return SweepPoint{.fraction = fraction,
                    .time_sc = sc.kernel_time_per_iter(),
                    .time_zc = zc.kernel_time_per_iter(),
                    .throughput_sc = sc.gpu_demand_throughput,
                    .throughput_zc = zc.gpu_demand_throughput};
}

SweepPoint mb2_cpu_point(const soc::BoardConfig& board,
                         const comm::ExecOptions& exec, double fraction) {
  soc::SoC soc(board);
  comm::Executor executor(soc, exec);
  const auto workload = workload::mb2_cpu_workload(board, fraction);
  const auto sc = executor.run(workload, comm::CommModel::StandardCopy);
  const auto zc = executor.run(workload, comm::CommModel::ZeroCopy);
  SweepPoint p{.fraction = fraction,
               .time_sc = sc.cpu_time_per_iter(),
               .time_zc = zc.cpu_time_per_iter(),
               .throughput_sc = sc.cpu_demand_throughput,
               .throughput_zc = zc.cpu_demand_throughput};
  // The CPU threshold is expressed directly in eqn-1 cache usage.
  p.usage_pct =
      cpu_cache_usage(sc.cpu_l1_miss_rate, sc.cpu_llc_miss_rate) * 100.0;
  return p;
}

std::vector<SweepPoint> mb2_gpu_sweep(const soc::BoardConfig& board,
                                      const comm::ExecOptions& exec,
                                      const SweepOptions& options) {
  return run_sweep("mb2_gpu_sweep", &mb2_gpu_point,
                   workload::mb2_fractions(), board, exec, options);
}

std::vector<SweepPoint> mb2_cpu_sweep(const soc::BoardConfig& board,
                                      const comm::ExecOptions& exec,
                                      const SweepOptions& options) {
  return run_sweep("mb2_cpu_sweep", &mb2_cpu_point,
                   workload::mb2_cpu_fractions(), board, exec, options);
}

}  // namespace cig::core
