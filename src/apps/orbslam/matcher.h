// Brute-force descriptor matching with Lowe-style ratio test — the
// data-association step between consecutive frames in the ORB-SLAM
// front-end.
#pragma once

#include <cstdint>
#include <vector>

#include "apps/orbslam/orb.h"

namespace cig::apps::orbslam {

struct Match {
  std::uint32_t query = 0;  // index into the query descriptor set
  std::uint32_t train = 0;  // index into the train descriptor set
  std::uint32_t distance = 0;
};

struct MatchOptions {
  std::uint32_t max_distance = 64;  // reject weak matches (of 256 bits)
  double ratio = 0.8;               // best/second-best ratio test
  bool cross_check = true;          // mutual best match required
};

std::vector<Match> match_descriptors(const std::vector<Descriptor>& query,
                                     const std::vector<Descriptor>& train,
                                     const MatchOptions& options = {});

}  // namespace cig::apps::orbslam
