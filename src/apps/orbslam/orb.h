// ORB descriptors: oriented BRIEF, 256 bits per keypoint.
//
// Orientation comes from the intensity centroid of a radius-15 patch
// (Rublee et al.); the descriptor compares 256 seeded point pairs rotated
// by the keypoint angle. The pair set is generated once, deterministically,
// at first use.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "apps/orbslam/fast.h"
#include "apps/orbslam/pyramid.h"

namespace cig::apps::orbslam {

using Descriptor = std::array<std::uint32_t, 8>;  // 256 bits

// Intensity-centroid orientation of the patch around (x, y), radians.
float intensity_centroid_angle(const Image& image, std::uint32_t x,
                               std::uint32_t y, std::uint32_t radius = 15);

// Computes the rotated-BRIEF descriptor for one keypoint (whose `angle`
// must already be set, e.g. by compute_orientations).
Descriptor orb_descriptor(const Image& image, const Keypoint& keypoint);

// Sets `angle` on every keypoint.
void compute_orientations(const Image& image, std::vector<Keypoint>& keypoints,
                          std::uint32_t radius = 15);

// Full per-image extraction: orientation + descriptor for every keypoint.
std::vector<Descriptor> describe(const Image& image,
                                 std::vector<Keypoint>& keypoints);

// Hamming distance between two descriptors (0..256).
std::uint32_t hamming_distance(const Descriptor& a, const Descriptor& b);

}  // namespace cig::apps::orbslam
