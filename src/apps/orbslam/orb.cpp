#include "apps/orbslam/orb.h"

#include <bit>
#include <cmath>

#include "support/assert.h"
#include "support/rng.h"

namespace cig::apps::orbslam {

namespace {

struct PointPair {
  std::int8_t x1, y1, x2, y2;
};

// 256 seeded comparison pairs within a 31x31 patch (|coord| <= 13 so the
// rotated points stay inside the patch).
const std::array<PointPair, 256>& brief_pattern() {
  static const std::array<PointPair, 256> pattern = [] {
    std::array<PointPair, 256> p{};
    Rng rng(0x0B51Fu);
    for (auto& pair : p) {
      auto coord = [&rng]() {
        return static_cast<std::int8_t>(
            static_cast<std::int64_t>(rng.below(27)) - 13);
      };
      pair = PointPair{coord(), coord(), coord(), coord()};
    }
    return p;
  }();
  return pattern;
}

std::uint8_t sample(const Image& image, std::uint32_t cx, std::uint32_t cy,
                    double dx, double dy) {
  const auto x = static_cast<std::int64_t>(std::lround(cx + dx));
  const auto y = static_cast<std::int64_t>(std::lround(cy + dy));
  if (!image.inside(x, y)) return 0;
  return image.at(static_cast<std::uint32_t>(x), static_cast<std::uint32_t>(y));
}

}  // namespace

float intensity_centroid_angle(const Image& image, std::uint32_t x,
                               std::uint32_t y, std::uint32_t radius) {
  double m01 = 0, m10 = 0;
  const auto r = static_cast<std::int64_t>(radius);
  for (std::int64_t dy = -r; dy <= r; ++dy) {
    for (std::int64_t dx = -r; dx <= r; ++dx) {
      if (dx * dx + dy * dy > r * r) continue;
      const std::int64_t px = static_cast<std::int64_t>(x) + dx;
      const std::int64_t py = static_cast<std::int64_t>(y) + dy;
      if (!image.inside(px, py)) continue;
      const double value = image.at(static_cast<std::uint32_t>(px),
                                    static_cast<std::uint32_t>(py));
      m10 += static_cast<double>(dx) * value;
      m01 += static_cast<double>(dy) * value;
    }
  }
  return static_cast<float>(std::atan2(m01, m10));
}

Descriptor orb_descriptor(const Image& image, const Keypoint& keypoint) {
  const double c = std::cos(keypoint.angle);
  const double s = std::sin(keypoint.angle);
  Descriptor descriptor{};
  const auto& pattern = brief_pattern();
  for (std::size_t bit = 0; bit < pattern.size(); ++bit) {
    const auto& pair = pattern[bit];
    // Steered BRIEF: rotate both sample points by the keypoint angle.
    const double x1 = c * pair.x1 - s * pair.y1;
    const double y1 = s * pair.x1 + c * pair.y1;
    const double x2 = c * pair.x2 - s * pair.y2;
    const double y2 = s * pair.x2 + c * pair.y2;
    const std::uint8_t a = sample(image, keypoint.x, keypoint.y, x1, y1);
    const std::uint8_t b = sample(image, keypoint.x, keypoint.y, x2, y2);
    if (a < b) {
      descriptor[bit / 32] |= 1u << (bit % 32);
    }
  }
  return descriptor;
}

void compute_orientations(const Image& image, std::vector<Keypoint>& keypoints,
                          std::uint32_t radius) {
  for (auto& kp : keypoints) {
    kp.angle = intensity_centroid_angle(image, kp.x, kp.y, radius);
  }
}

std::vector<Descriptor> describe(const Image& image,
                                 std::vector<Keypoint>& keypoints) {
  compute_orientations(image, keypoints);
  std::vector<Descriptor> descriptors;
  descriptors.reserve(keypoints.size());
  for (const auto& kp : keypoints) {
    descriptors.push_back(orb_descriptor(image, kp));
  }
  return descriptors;
}

std::uint32_t hamming_distance(const Descriptor& a, const Descriptor& b) {
  std::uint32_t distance = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    distance += static_cast<std::uint32_t>(std::popcount(a[i] ^ b[i]));
  }
  return distance;
}

}  // namespace cig::apps::orbslam
