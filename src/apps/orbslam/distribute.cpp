#include "apps/orbslam/distribute.h"

#include <algorithm>
#include <list>
#include <set>

#include "support/assert.h"

namespace cig::apps::orbslam {

namespace {

struct Node {
  // Half-open region [x0, x1) x [y0, y1).
  std::uint32_t x0, y0, x1, y1;
  std::vector<Keypoint> keypoints;

  bool divisible() const {
    return keypoints.size() > 1 && (x1 - x0) > 1 && (y1 - y0) > 1;
  }
};

// Splits `node` into four children, moving its keypoints into them.
// Children with no keypoints are discarded.
std::vector<Node> split(const Node& node) {
  const std::uint32_t mx = node.x0 + (node.x1 - node.x0) / 2;
  const std::uint32_t my = node.y0 + (node.y1 - node.y0) / 2;
  Node children[4] = {
      {node.x0, node.y0, mx, my, {}},
      {mx, node.y0, node.x1, my, {}},
      {node.x0, my, mx, node.y1, {}},
      {mx, my, node.x1, node.y1, {}},
  };
  for (const auto& kp : node.keypoints) {
    const int child = (kp.x >= mx ? 1 : 0) + (kp.y >= my ? 2 : 0);
    children[child].keypoints.push_back(kp);
  }
  std::vector<Node> out;
  for (auto& child : children) {
    if (!child.keypoints.empty()) out.push_back(std::move(child));
  }
  return out;
}

}  // namespace

std::vector<Keypoint> distribute_quadtree(const std::vector<Keypoint>& input,
                                          std::uint32_t image_width,
                                          std::uint32_t image_height,
                                          std::size_t target) {
  CIG_EXPECTS(image_width > 0 && image_height > 0);
  CIG_EXPECTS(target >= 1);
  if (input.size() <= target) return input;

  std::list<Node> nodes;
  nodes.push_back(Node{0, 0, image_width, image_height, input});

  // Breadth-first refinement: always split the node holding the most
  // keypoints (ORB-SLAM splits all divisible nodes per level; picking the
  // fullest first converges to the same leaves with a simpler loop).
  while (nodes.size() < target) {
    auto fullest = nodes.end();
    std::size_t most = 1;
    for (auto it = nodes.begin(); it != nodes.end(); ++it) {
      if (it->divisible() && it->keypoints.size() > most) {
        most = it->keypoints.size();
        fullest = it;
      }
    }
    if (fullest == nodes.end()) break;  // nothing divisible left
    auto children = split(*fullest);
    nodes.erase(fullest);
    for (auto& child : children) nodes.push_back(std::move(child));
  }

  // Keep the best-scored keypoint per leaf.
  std::vector<Keypoint> result;
  result.reserve(nodes.size());
  for (const auto& node : nodes) {
    const auto best = std::max_element(
        node.keypoints.begin(), node.keypoints.end(),
        [](const Keypoint& a, const Keypoint& b) { return a.score < b.score; });
    result.push_back(*best);
  }
  return result;
}

double coverage_fraction(const std::vector<Keypoint>& keypoints,
                         std::uint32_t image_width,
                         std::uint32_t image_height, std::uint32_t grid) {
  CIG_EXPECTS(grid >= 1);
  if (keypoints.empty()) return 0;
  std::set<std::uint64_t> cells;
  for (const auto& kp : keypoints) {
    const std::uint64_t cx = static_cast<std::uint64_t>(kp.x) * grid /
                             image_width;
    const std::uint64_t cy = static_cast<std::uint64_t>(kp.y) * grid /
                             image_height;
    cells.insert(cy * grid + cx);
  }
  return static_cast<double>(cells.size()) /
         static_cast<double>(grid) / static_cast<double>(grid);
}

}  // namespace cig::apps::orbslam
