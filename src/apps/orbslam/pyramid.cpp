#include "apps/orbslam/pyramid.h"

#include <algorithm>
#include <cmath>

#include "support/assert.h"
#include "support/rng.h"

namespace cig::apps::orbslam {

Image make_test_scene(std::uint32_t width, std::uint32_t height,
                      std::uint64_t seed, double shift_x, double shift_y) {
  CIG_EXPECTS(width >= 64 && height >= 64);
  Image image;
  image.width = width;
  image.height = height;
  image.pixels.assign(static_cast<std::size_t>(width) * height, 0);

  // Gradient background (gives FAST nothing, gives ORB orientation texture).
  for (std::uint32_t y = 0; y < height; ++y) {
    for (std::uint32_t x = 0; x < width; ++x) {
      image.at(x, y) = static_cast<std::uint8_t>(40 + (x * 40) / width +
                                                 (y * 30) / height);
    }
  }

  // Deterministic corner-rich squares: high-contrast blocks at seeded
  // positions, shifted by the camera motion.
  Rng rng(seed);
  const std::uint32_t blocks = 160;
  for (std::uint32_t b = 0; b < blocks; ++b) {
    const double bx = rng.uniform(16.0, width - 32.0) + shift_x;
    const double by = rng.uniform(16.0, height - 32.0) + shift_y;
    const std::uint32_t size = 4 + static_cast<std::uint32_t>(rng.below(9));
    const std::uint8_t intensity =
        static_cast<std::uint8_t>(120 + rng.below(120));
    const auto x0 = static_cast<std::int64_t>(std::lround(bx));
    const auto y0 = static_cast<std::int64_t>(std::lround(by));
    for (std::int64_t y = y0; y < y0 + size; ++y) {
      for (std::int64_t x = x0; x < x0 + size; ++x) {
        if (image.inside(x, y)) {
          image.at(static_cast<std::uint32_t>(x),
                   static_cast<std::uint32_t>(y)) = intensity;
        }
      }
    }
  }
  return image;
}

Pyramid::Pyramid(const Image& base, const PyramidOptions& options)
    : options_(options) {
  CIG_EXPECTS(options.levels >= 1);
  CIG_EXPECTS(options.scale_factor > 1.0);
  levels_.push_back(base);
  for (std::uint32_t lvl = 1; lvl < options.levels; ++lvl) {
    const Image& prev = levels_.back();
    const double scale = options.scale_factor;
    const auto w = static_cast<std::uint32_t>(prev.width / scale);
    const auto h = static_cast<std::uint32_t>(prev.height / scale);
    if (w < 32 || h < 32) break;

    Image down;
    down.width = w;
    down.height = h;
    down.pixels.assign(static_cast<std::size_t>(w) * h, 0);
    // Bilinear resample.
    for (std::uint32_t y = 0; y < h; ++y) {
      for (std::uint32_t x = 0; x < w; ++x) {
        const double sx = (x + 0.5) * scale - 0.5;
        const double sy = (y + 0.5) * scale - 0.5;
        const auto x0 = static_cast<std::uint32_t>(
            std::clamp(std::floor(sx), 0.0, prev.width - 1.0));
        const auto y0 = static_cast<std::uint32_t>(
            std::clamp(std::floor(sy), 0.0, prev.height - 1.0));
        const std::uint32_t x1 = std::min(x0 + 1, prev.width - 1);
        const std::uint32_t y1 = std::min(y0 + 1, prev.height - 1);
        const double fx = std::clamp(sx - x0, 0.0, 1.0);
        const double fy = std::clamp(sy - y0, 0.0, 1.0);
        const double value =
            (1 - fx) * (1 - fy) * prev.at(x0, y0) +
            fx * (1 - fy) * prev.at(x1, y0) +
            (1 - fx) * fy * prev.at(x0, y1) + fx * fy * prev.at(x1, y1);
        down.at(x, y) = static_cast<std::uint8_t>(std::lround(value));
      }
    }
    levels_.push_back(std::move(down));
  }
}

double Pyramid::scale_of(std::uint32_t i) const {
  CIG_EXPECTS(i < levels());
  return std::pow(options_.scale_factor, static_cast<double>(i));
}

std::size_t Pyramid::total_bytes() const {
  std::size_t total = 0;
  for (const auto& lvl : levels_) total += lvl.pixels.size();
  return total;
}

}  // namespace cig::apps::orbslam
