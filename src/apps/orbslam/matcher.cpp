#include "apps/orbslam/matcher.h"

#include <limits>

namespace cig::apps::orbslam {

namespace {

struct Best {
  std::uint32_t index = 0;
  std::uint32_t best = std::numeric_limits<std::uint32_t>::max();
  std::uint32_t second = std::numeric_limits<std::uint32_t>::max();
};

Best find_best(const Descriptor& d, const std::vector<Descriptor>& set) {
  Best result;
  for (std::uint32_t i = 0; i < set.size(); ++i) {
    const std::uint32_t distance = hamming_distance(d, set[i]);
    if (distance < result.best) {
      result.second = result.best;
      result.best = distance;
      result.index = i;
    } else if (distance < result.second) {
      result.second = distance;
    }
  }
  return result;
}

}  // namespace

std::vector<Match> match_descriptors(const std::vector<Descriptor>& query,
                                     const std::vector<Descriptor>& train,
                                     const MatchOptions& options) {
  std::vector<Match> matches;
  if (train.empty()) return matches;

  for (std::uint32_t q = 0; q < query.size(); ++q) {
    const Best forward = find_best(query[q], train);
    if (forward.best > options.max_distance) continue;
    if (forward.second != std::numeric_limits<std::uint32_t>::max() &&
        static_cast<double>(forward.best) >
            options.ratio * static_cast<double>(forward.second)) {
      continue;
    }
    if (options.cross_check) {
      const Best backward = find_best(train[forward.index], query);
      if (backward.index != q) continue;
    }
    matches.push_back(Match{q, forward.index, forward.best});
  }
  return matches;
}

}  // namespace cig::apps::orbslam
