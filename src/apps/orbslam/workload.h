// Simulator mapping of the ORB-SLAM front-end (Section IV-C): per camera
// frame the GPU runs many small FAST/ORB kernels over pyramid levels and
// cells, re-reading the pinned frame data, while the CPU runs tracking.
// One workload iteration == one kernel launch.
#pragma once

#include "soc/board.h"
#include "workload/task.h"

namespace cig::apps::orbslam {

// Kernel launches per camera frame (per-level x per-cell batches).
inline constexpr std::uint32_t kKernelsPerFrame = 500;

workload::Workload orbslam_workload(const soc::BoardConfig& board);

}  // namespace cig::apps::orbslam
