// Grayscale image container and scale pyramid for the ORB-SLAM front-end
// (the second case study, after Mur-Artal & Tardos [15]).
#pragma once

#include <cstdint>
#include <vector>

namespace cig::apps::orbslam {

struct Image {
  std::uint32_t width = 0;
  std::uint32_t height = 0;
  std::vector<std::uint8_t> pixels;  // row-major

  std::uint8_t at(std::uint32_t x, std::uint32_t y) const {
    return pixels[static_cast<std::size_t>(y) * width + x];
  }
  std::uint8_t& at(std::uint32_t x, std::uint32_t y) {
    return pixels[static_cast<std::size_t>(y) * width + x];
  }
  bool inside(std::int64_t x, std::int64_t y) const {
    return x >= 0 && y >= 0 && x < width && y < height;
  }
};

// Deterministic synthetic test scene: textured blobs + gradient background,
// translated by (shift_x, shift_y) to emulate camera motion between frames.
Image make_test_scene(std::uint32_t width, std::uint32_t height,
                      std::uint64_t seed, double shift_x = 0,
                      double shift_y = 0);

struct PyramidOptions {
  std::uint32_t levels = 8;
  double scale_factor = 1.2;
};

// ORB-SLAM style scale pyramid; level 0 is the input image.
class Pyramid {
 public:
  Pyramid(const Image& base, const PyramidOptions& options = {});

  std::uint32_t levels() const { return static_cast<std::uint32_t>(levels_.size()); }
  const Image& level(std::uint32_t i) const { return levels_[i]; }
  double scale_of(std::uint32_t i) const;
  const PyramidOptions& options() const { return options_; }

  // Total pixel footprint across all levels (bytes).
  std::size_t total_bytes() const;

 private:
  PyramidOptions options_;
  std::vector<Image> levels_;
};

}  // namespace cig::apps::orbslam
