// Quadtree keypoint distribution, after ORB-SLAM's DistributeOctTree: the
// image region is recursively split into four children until there are at
// least `target` leaf nodes (or no node is divisible), then the best-scored
// keypoint of each leaf is retained. The result is a spatially uniform
// subset of the FAST detections — crucial for tracking robustness.
#pragma once

#include <cstdint>
#include <vector>

#include "apps/orbslam/fast.h"

namespace cig::apps::orbslam {

// Retains at most ~`target` keypoints, spatially distributed. Returns all
// keypoints when there are fewer than `target`. The relative order of the
// survivors follows the quadtree leaf order (spatial), not the input order.
std::vector<Keypoint> distribute_quadtree(const std::vector<Keypoint>& input,
                                          std::uint32_t image_width,
                                          std::uint32_t image_height,
                                          std::size_t target);

// Measures spatial uniformity: the image is cut into `grid x grid` cells
// and the result is the fraction of cells containing at least one keypoint
// (of the cells that contain any keypoint in the reference set).
double coverage_fraction(const std::vector<Keypoint>& keypoints,
                         std::uint32_t image_width,
                         std::uint32_t image_height, std::uint32_t grid);

}  // namespace cig::apps::orbslam
