#include "apps/orbslam/fast.h"

#include <algorithm>
#include <array>
#include <cmath>

#include "support/assert.h"

namespace cig::apps::orbslam {

namespace {

// Bresenham circle of radius 3: 16 offsets, clockwise from 12 o'clock.
constexpr std::array<std::pair<int, int>, 16> kCircle = {{{0, -3},
                                                          {1, -3},
                                                          {2, -2},
                                                          {3, -1},
                                                          {3, 0},
                                                          {3, 1},
                                                          {2, 2},
                                                          {1, 3},
                                                          {0, 3},
                                                          {-1, 3},
                                                          {-2, 2},
                                                          {-3, 1},
                                                          {-3, 0},
                                                          {-3, -1},
                                                          {-2, -2},
                                                          {-1, -3}}};

// True if >= 9 *contiguous* circle pixels are all brighter (+1) or all
// darker (-1) than centre +/- threshold.
bool is_corner(const Image& image, std::uint32_t x, std::uint32_t y,
               std::uint8_t threshold) {
  const int centre = image.at(x, y);
  const int hi = centre + threshold;
  const int lo = centre - threshold;

  // Classify the 16 circle pixels, then look for a run of 9 with wraparound
  // (scan 16 + 8 positions).
  std::array<int, 16> state{};
  for (std::size_t i = 0; i < 16; ++i) {
    const int value =
        image.at(x + kCircle[i].first, y + kCircle[i].second);
    state[i] = value > hi ? 1 : value < lo ? -1 : 0;
  }
  int run = 0;
  int current = 0;
  for (std::size_t i = 0; i < 16 + 8; ++i) {
    const int s = state[i % 16];
    if (s != 0 && s == current) {
      if (++run >= 9) return true;
    } else {
      current = s;
      run = s != 0 ? 1 : 0;
      if (run >= 9) return true;
    }
  }
  return false;
}

}  // namespace

float fast_score(const Image& image, std::uint32_t x, std::uint32_t y,
                 std::uint8_t threshold) {
  // Sum of absolute differences over the circle pixels that exceed the
  // threshold — a standard, cheap NMS score.
  const int centre = image.at(x, y);
  float score = 0;
  for (const auto& [dx, dy] : kCircle) {
    const int diff = std::abs(static_cast<int>(image.at(x + dx, y + dy)) -
                              centre);
    if (diff > threshold) score += static_cast<float>(diff - threshold);
  }
  return score;
}

std::vector<Keypoint> fast_detect(const Image& image,
                                  const FastOptions& options,
                                  std::uint32_t level) {
  CIG_EXPECTS(options.border >= 3);
  std::vector<Keypoint> raw;
  if (image.width <= 2 * options.border || image.height <= 2 * options.border) {
    return raw;
  }

  for (std::uint32_t y = options.border; y < image.height - options.border;
       ++y) {
    for (std::uint32_t x = options.border; x < image.width - options.border;
         ++x) {
      if (is_corner(image, x, y, options.threshold)) {
        raw.push_back(Keypoint{
            x, y, level, fast_score(image, x, y, options.threshold), 0.0f});
      }
    }
  }
  if (!options.nonmax_suppression) return raw;

  // 3x3 non-maximum suppression via a score map lookup.
  std::vector<Keypoint> kept;
  kept.reserve(raw.size());
  // Sparse map: (y * width + x) -> score.
  std::vector<float> scores(static_cast<std::size_t>(image.width) *
                                image.height,
                            -1.0f);
  for (const auto& kp : raw) {
    scores[static_cast<std::size_t>(kp.y) * image.width + kp.x] = kp.score;
  }
  for (const auto& kp : raw) {
    bool is_max = true;
    for (int dy = -1; dy <= 1 && is_max; ++dy) {
      for (int dx = -1; dx <= 1; ++dx) {
        if (dx == 0 && dy == 0) continue;
        const float other =
            scores[static_cast<std::size_t>(kp.y + dy) * image.width +
                   (kp.x + dx)];
        if (other > kp.score ||
            (other == kp.score && (dy < 0 || (dy == 0 && dx < 0)))) {
          is_max = false;
          break;
        }
      }
    }
    if (is_max) kept.push_back(kp);
  }
  return kept;
}

}  // namespace cig::apps::orbslam
