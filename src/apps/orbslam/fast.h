// FAST-9 corner detection (Rosten & Drummond), the keypoint stage of the
// ORB-SLAM front-end. Detects pixels where >= 9 contiguous points on a
// Bresenham circle of radius 3 are all brighter or all darker than the
// centre by a threshold, with non-maximum suppression on a score.
#pragma once

#include <cstdint>
#include <vector>

#include "apps/orbslam/pyramid.h"

namespace cig::apps::orbslam {

struct Keypoint {
  std::uint32_t x = 0;
  std::uint32_t y = 0;
  std::uint32_t level = 0;  // pyramid level
  float score = 0;          // FAST corner score
  float angle = 0;          // orientation (set by the ORB stage), radians
};

struct FastOptions {
  std::uint8_t threshold = 20;
  bool nonmax_suppression = true;
  std::uint32_t border = 16;  // skip margin (descriptor patch radius)
};

// Detects corners in one image; `level` is recorded into the keypoints.
std::vector<Keypoint> fast_detect(const Image& image,
                                  const FastOptions& options = {},
                                  std::uint32_t level = 0);

// Corner score: maximum threshold for which the pixel is still a corner
// (sum-of-absolute-differences variant used for NMS ordering).
float fast_score(const Image& image, std::uint32_t x, std::uint32_t y,
                 std::uint8_t threshold);

}  // namespace cig::apps::orbslam
