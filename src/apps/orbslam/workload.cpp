#include "apps/orbslam/workload.h"

namespace cig::apps::orbslam {

namespace {
constexpr std::uint64_t kFrameBase = 0x1000'0000ull;   // pinned/shared
constexpr std::uint64_t kCpuScratch = 0x5000'0000ull;  // CPU-private
constexpr std::uint64_t kGpuScratch = 0x6000'0000ull;  // device-private
}  // namespace

workload::Workload orbslam_workload(const soc::BoardConfig& board) {
  using namespace cig::workload;
  using namespace cig::mem;

  Workload w;
  w.name = "orbslam-frontend";
  w.iterations = kKernelsPerFrame;

  // --- GPU: FAST + ORB kernel batch ------------------------------------------
  // Each launch streams pyramid-level pixels from the shared frame buffer
  // (512 KiB per launch across the circle/patch reads) and reuses a
  // device-local pyramid workspace heavily — the private Tiled2D pattern is
  // what makes the application GPU-cache-dependent (Table IV: 25.3% on TX2,
  // 20.1% on Xavier).
  w.gpu.name = "fast+orb";
  w.gpu.pattern = PatternSpec{.kind = PatternKind::Linear,
                              .base = kFrameBase,
                              .extent = KiB(512),
                              .access_size = 4,
                              .rw = RwMix::ReadModifyWrite,  // pixels + score map
                              .passes = 1,
                              .line_hint = board.gpu.llc.geometry.line};
  w.gpu.private_pattern = PatternSpec{.kind = PatternKind::Tiled2D,
                                      .base = kGpuScratch,
                                      .access_size = 4,
                                      .rw = RwMix::ReadModifyWrite,
                                      .passes = 6,
                                      .width = 640,
                                      .height = 160,
                                      .tile_width = 32,
                                      .tile_height = 32,
                                      .line_hint =
                                          board.gpu.llc.geometry.line};
  w.gpu.ops = 4.5e6;  // circle tests + steered-BRIEF sampling per batch
  w.gpu.utilization = 0.5;

  // --- CPU: tracking / pose optimisation -------------------------------------
  // Compute-heavy, register/L1-resident (Table IV reports 0% CPU cache
  // usage); touches only a small keypoint slice of the shared buffer.
  w.cpu.name = "tracking";
  w.cpu.pattern = PatternSpec{.kind = PatternKind::Linear,
                              .base = kFrameBase,
                              .extent = KiB(16),
                              .access_size = 64,
                              .rw = RwMix::ReadOnly,
                              .passes = 1,
                              .line_hint = board.cpu.l1.geometry.line};
  w.cpu.private_pattern = PatternSpec{.kind = PatternKind::Linear,
                                      .base = kCpuScratch,
                                      .extent = KiB(8),
                                      .access_size = 4,
                                      .rw = RwMix::ReadModifyWrite,
                                      .passes = 4,
                                      .line_hint =
                                          board.cpu.l1.geometry.line};
  w.cpu.ops = 134000;  // pose iterations per kernel slot
  w.cpu.ops_per_cycle = 1.0;
  w.cpu.mlp = 8.0;

  // --- communication ----------------------------------------------------------
  // Keypoint/descriptor results stream back per batch; the frame upload is
  // amortised across the batch kernels (asynchronous copy in the reference
  // implementation).
  w.h2d_bytes = 0;
  w.d2h_bytes = KiB(1);
  w.overlappable = false;  // tracking depends on the extraction results
  w.validate();
  return w;
}

}  // namespace cig::apps::orbslam
