// Simulator mapping of the SH-WFS centroid-extraction application
// (Section IV-B): what the real CUDA implementation does per frame,
// expressed as CPU-task / GPU-kernel specs the execution engine can run on
// any board. One workload iteration == one kernel launch; the paper's
// implementation launches kNumKernels centroiding kernels per frame, each
// consuming the full sensor frame from the shared buffer.
#pragma once

#include "soc/board.h"
#include "workload/task.h"

namespace cig::apps::shwfs {

// Kernel launches per sensor frame in the reference implementation.
inline constexpr std::uint32_t kKernelsPerFrame = 3;

// Sensor frame bytes exchanged between CPU and iGPU per kernel.
inline constexpr cig::Bytes kFrameBytes = cig::KiB(256);

workload::Workload shwfs_workload(const soc::BoardConfig& board);

}  // namespace cig::apps::shwfs
