#include "apps/shwfs/workload.h"

#include "support/assert.h"

namespace cig::apps::shwfs {

namespace {
constexpr std::uint64_t kFrameBase = 0x1000'0000ull;    // pinned/shared
constexpr std::uint64_t kCpuScratch = 0x5000'0000ull;   // CPU-private
constexpr std::uint64_t kGpuScratch = 0x6000'0000ull;   // device-private
}  // namespace

workload::Workload shwfs_workload(const soc::BoardConfig& board) {
  using namespace cig::workload;
  using namespace cig::mem;

  Workload w;
  w.name = "shwfs-centroid";
  w.iterations = kKernelsPerFrame;

  // --- GPU: windowed-CoG centroiding over the frame -------------------------
  // Linear 2-byte pixel loads over the whole frame, ~48 ops/pixel
  // (3 windowed-CoG refinement iterations), per-subaperture partial sums in
  // device-local scratch.
  const double pixels = static_cast<double>(kFrameBytes) / 2.0;
  w.gpu.name = "centroid-kernel";
  w.gpu.pattern = PatternSpec{.kind = PatternKind::Linear,
                              .base = kFrameBase,
                              .extent = kFrameBytes,
                              .access_size = 2,
                              .rw = RwMix::ReadOnly,
                              .passes = 1,
                              .line_hint = board.gpu.llc.geometry.line};
  w.gpu.private_pattern = PatternSpec{.kind = PatternKind::Linear,
                                      .base = kGpuScratch,
                                      .extent = KiB(128),
                                      .access_size = 4,
                                      .rw = RwMix::ReadModifyWrite,
                                      .passes = 2,
                                      .line_hint =
                                          board.gpu.llc.geometry.line};
  w.gpu.ops = pixels * 48.0;
  w.gpu.utilization = 0.5;

  // --- CPU: frame acquisition + slope/reconstruction work -------------------
  // Writes (a share of) the frame into the shared buffer, then does
  // reconstruction arithmetic over a private working set that exceeds L1 on
  // A57-class cores (32 KiB) but fits Carmel's 64 KiB — the source of the
  // Table II CPU-cache-usage split between Nano/TX2 (19.8%) and Xavier
  // (6.1%).
  w.cpu.name = "acquire+reconstruct";
  w.cpu.pattern = PatternSpec{.kind = PatternKind::Linear,
                              .base = kFrameBase,
                              .extent = kFrameBytes,
                              .access_size = 64,  // write-combined stores
                              .rw = RwMix::WriteOnly,
                              .passes = 1,
                              .line_hint = board.cpu.l1.geometry.line};
  w.cpu.private_pattern = PatternSpec{.kind = PatternKind::Random,
                                      .base = kCpuScratch,
                                      .extent = KiB(40),
                                      .access_size = 4,
                                      .rw = RwMix::ReadOnly,
                                      .count = 46000,
                                      .seed = 0x5A,
                                      .line_hint =
                                          board.cpu.l1.geometry.line};
  w.cpu.ops = 65536;        // reconstruction arithmetic per kernel slot
  w.cpu.ops_per_cycle = 1.0;
  w.cpu.mlp = 8.0;          // streaming stores, write-combining

  // --- communication ----------------------------------------------------------
  w.h2d_bytes = kFrameBytes;  // frame upload per kernel (as in the paper)
  w.d2h_bytes = KiB(2);       // centroid table back
  // The reference implementation synchronises after each kernel (the next
  // CPU stage consumes the centroids), so CPU and GPU do not overlap.
  w.overlappable = false;
  w.validate();
  return w;
}

}  // namespace cig::apps::shwfs
