// Centroid extraction for Shack-Hartmann frames (the GPU-kernel payload of
// the first case study, after Kong et al. [14]).
//
// Three estimators of increasing robustness:
//  - CoG: plain centre of gravity over the subaperture.
//  - Thresholded CoG: background-subtracted (pixels below threshold ignored).
//  - Windowed CoG: thresholded CoG iterated in a shrinking window around the
//    previous estimate (stream-processing formulation of [14]).
#pragma once

#include <vector>

#include "apps/shwfs/image.h"

namespace cig::apps::shwfs {

struct Centroid {
  double x = 0;  // displacement from the subaperture centre, pixels
  double y = 0;
  double mass = 0;  // total (thresholded) intensity
};

enum class Method { CenterOfGravity, ThresholdedCoG, WindowedCoG };

struct CentroidOptions {
  Method method = Method::ThresholdedCoG;
  double threshold = 1200.0;   // absolute intensity threshold
  std::uint32_t window_iterations = 3;  // WindowedCoG refinement steps
  double initial_window_px = 16.0;
  double window_shrink = 0.6;
};

// Extracts one centroid per subaperture.
std::vector<Centroid> extract_centroids(const Frame& frame,
                                        const CentroidOptions& options = {});

// RMS error of the estimated displacements against the frame's ground truth.
double rms_error(const Frame& frame, const std::vector<Centroid>& centroids);

}  // namespace cig::apps::shwfs
