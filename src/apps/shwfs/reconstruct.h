// Zonal wavefront reconstruction from Shack-Hartmann slope measurements —
// the step after centroiding in a real adaptive-optics loop (the CPU-side
// work that makes the application CPU-cache-hungry in Table II).
//
// Hudgin-geometry least squares: the measured centroid displacements are
// proportional to the local wavefront gradients; the phase surface
// phi(i, j) minimising
//
//   sum_x ( phi(i, j+1) - phi(i, j) - sx(i, j) )^2
// + sum_y ( phi(i+1, j) - phi(i, j) - sy(i, j) )^2
//
// is found with Gauss-Seidel iterations on the normal equations. The
// solution is unique up to piston; we return the zero-mean solution.
#pragma once

#include <cstdint>
#include <vector>

#include "apps/shwfs/centroid.h"

namespace cig::apps::shwfs {

struct WavefrontGrid {
  std::uint32_t cols = 0;
  std::uint32_t rows = 0;
  std::vector<double> phase;  // row-major, rows x cols, zero mean

  double at(std::uint32_t col, std::uint32_t row) const {
    return phase[static_cast<std::size_t>(row) * cols + col];
  }
};

struct ReconstructOptions {
  std::uint32_t max_iterations = 500;
  double tolerance = 1e-10;  // max phase update per sweep to stop
};

// Reconstructs the wavefront from per-subaperture slopes. `sx`/`sy` are
// row-major slope grids (rows x cols), e.g. centroid displacements in
// pixels; the phase comes back in the same units (pixel-displacement
// integrated over subaperture pitch of 1).
WavefrontGrid reconstruct_wavefront(const std::vector<double>& sx,
                                    const std::vector<double>& sy,
                                    std::uint32_t cols, std::uint32_t rows,
                                    const ReconstructOptions& options = {});

// Convenience: reconstruct directly from extract_centroids() output
// arranged on the sensor's subaperture grid.
WavefrontGrid reconstruct_wavefront(const std::vector<Centroid>& centroids,
                                    const SensorGeometry& geometry,
                                    const ReconstructOptions& options = {});

// RMS of the difference between two grids after removing piston
// (their mean difference).
double rms_phase_difference(const WavefrontGrid& a, const WavefrontGrid& b);

}  // namespace cig::apps::shwfs
