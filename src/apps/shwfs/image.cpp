#include "apps/shwfs/image.h"

#include <algorithm>
#include <cmath>

#include "support/assert.h"

namespace cig::apps::shwfs {

namespace {

// Box-Muller from two uniforms (deterministic given the Rng state).
double gaussian(Rng& rng, double sigma) {
  const double u1 = std::max(rng.uniform(), 1e-12);
  const double u2 = rng.uniform();
  return sigma * std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * 3.14159265358979323846 * u2);
}

}  // namespace

Frame make_frame(const SensorGeometry& geometry, const FrameOptions& options) {
  CIG_EXPECTS(geometry.image_width % geometry.subaperture_px == 0);
  CIG_EXPECTS(geometry.image_height % geometry.subaperture_px == 0);
  CIG_EXPECTS(options.max_displacement_px * 2 < geometry.subaperture_px);

  Frame frame;
  frame.geometry = geometry;
  frame.pixels.assign(
      static_cast<std::size_t>(geometry.image_width) * geometry.image_height,
      0);
  frame.truth.resize(geometry.subaperture_count());

  Rng rng(options.seed);

  // Background + noise.
  for (auto& px : frame.pixels) {
    const double value = options.background + gaussian(rng, options.noise_sigma);
    px = static_cast<std::uint16_t>(std::clamp(value, 0.0, 65535.0));
  }

  // One Gaussian spot per subaperture.
  const double sub = geometry.subaperture_px;
  for (std::uint32_t row = 0; row < geometry.grid_rows(); ++row) {
    for (std::uint32_t col = 0; col < geometry.grid_cols(); ++col) {
      const std::size_t index =
          static_cast<std::size_t>(row) * geometry.grid_cols() + col;
      Spot& spot = frame.truth[index];
      spot.dx = rng.uniform(-options.max_displacement_px,
                            options.max_displacement_px);
      spot.dy = rng.uniform(-options.max_displacement_px,
                            options.max_displacement_px);

      const double cx = col * sub + sub / 2.0 + spot.dx;
      const double cy = row * sub + sub / 2.0 + spot.dy;
      const double two_sigma2 =
          2.0 * options.spot_sigma_px * options.spot_sigma_px;

      const std::uint32_t x0 = col * geometry.subaperture_px;
      const std::uint32_t y0 = row * geometry.subaperture_px;
      for (std::uint32_t y = y0; y < y0 + geometry.subaperture_px; ++y) {
        for (std::uint32_t x = x0; x < x0 + geometry.subaperture_px; ++x) {
          const double dx = x + 0.5 - cx;
          const double dy = y + 0.5 - cy;
          const double value =
              options.peak_intensity * std::exp(-(dx * dx + dy * dy) / two_sigma2);
          const std::size_t p =
              static_cast<std::size_t>(y) * geometry.image_width + x;
          frame.pixels[p] = static_cast<std::uint16_t>(
              std::clamp(frame.pixels[p] + value, 0.0, 65535.0));
        }
      }
    }
  }
  return frame;
}

}  // namespace cig::apps::shwfs
