#include "apps/shwfs/reconstruct.h"

#include <algorithm>
#include <cmath>

#include "support/assert.h"

namespace cig::apps::shwfs {

namespace {

void remove_piston(std::vector<double>& phase) {
  double mean = 0;
  for (double v : phase) mean += v;
  mean /= static_cast<double>(phase.size());
  for (double& v : phase) v -= mean;
}

}  // namespace

WavefrontGrid reconstruct_wavefront(const std::vector<double>& sx,
                                    const std::vector<double>& sy,
                                    std::uint32_t cols, std::uint32_t rows,
                                    const ReconstructOptions& options) {
  CIG_EXPECTS(cols >= 2 && rows >= 2);
  CIG_EXPECTS(sx.size() == static_cast<std::size_t>(cols) * rows);
  CIG_EXPECTS(sy.size() == sx.size());
  CIG_EXPECTS(options.max_iterations >= 1);

  const auto index = [cols](std::uint32_t c, std::uint32_t r) {
    return static_cast<std::size_t>(r) * cols + c;
  };

  WavefrontGrid grid;
  grid.cols = cols;
  grid.rows = rows;
  grid.phase.assign(static_cast<std::size_t>(cols) * rows, 0.0);
  auto& phi = grid.phase;

  // Gauss-Seidel on the normal equations of the Hudgin model. For an
  // interior point the stationarity condition is
  //   N * phi(c,r) = sum(neighbours) + divergence of the slope field,
  // where N is the number of neighbours (2..4 at borders/corners).
  for (std::uint32_t iteration = 0; iteration < options.max_iterations;
       ++iteration) {
    double max_update = 0;
    for (std::uint32_t r = 0; r < rows; ++r) {
      for (std::uint32_t c = 0; c < cols; ++c) {
        double sum = 0;
        double weight = 0;
        if (c > 0) {  // left neighbour, x-difference phi(c) - phi(c-1) = sx(c-1)
          sum += phi[index(c - 1, r)] + sx[index(c - 1, r)];
          weight += 1;
        }
        if (c + 1 < cols) {  // right: phi(c+1) - phi(c) = sx(c)
          sum += phi[index(c + 1, r)] - sx[index(c, r)];
          weight += 1;
        }
        if (r > 0) {  // up: phi(r) - phi(r-1) = sy(r-1)
          sum += phi[index(c, r - 1)] + sy[index(c, r - 1)];
          weight += 1;
        }
        if (r + 1 < rows) {  // down
          sum += phi[index(c, r + 1)] - sy[index(c, r)];
          weight += 1;
        }
        const double updated = sum / weight;
        max_update = std::max(max_update,
                              std::abs(updated - phi[index(c, r)]));
        phi[index(c, r)] = updated;
      }
    }
    if (max_update < options.tolerance) break;
  }

  remove_piston(phi);
  return grid;
}

WavefrontGrid reconstruct_wavefront(const std::vector<Centroid>& centroids,
                                    const SensorGeometry& geometry,
                                    const ReconstructOptions& options) {
  CIG_EXPECTS(centroids.size() == geometry.subaperture_count());
  std::vector<double> sx(centroids.size());
  std::vector<double> sy(centroids.size());
  for (std::size_t i = 0; i < centroids.size(); ++i) {
    sx[i] = centroids[i].x;
    sy[i] = centroids[i].y;
  }
  return reconstruct_wavefront(sx, sy, geometry.grid_cols(),
                               geometry.grid_rows(), options);
}

double rms_phase_difference(const WavefrontGrid& a, const WavefrontGrid& b) {
  CIG_EXPECTS(a.cols == b.cols && a.rows == b.rows);
  CIG_EXPECTS(!a.phase.empty());
  double mean_difference = 0;
  for (std::size_t i = 0; i < a.phase.size(); ++i) {
    mean_difference += a.phase[i] - b.phase[i];
  }
  mean_difference /= static_cast<double>(a.phase.size());

  double sum = 0;
  for (std::size_t i = 0; i < a.phase.size(); ++i) {
    const double d = a.phase[i] - b.phase[i] - mean_difference;
    sum += d * d;
  }
  return std::sqrt(sum / static_cast<double>(a.phase.size()));
}

}  // namespace cig::apps::shwfs
