#include "apps/shwfs/centroid.h"

#include <algorithm>
#include <cmath>

#include "support/assert.h"

namespace cig::apps::shwfs {

namespace {

// Thresholded CoG over the box [x0,x1) x [y0,y1); coordinates relative to
// the subaperture centre (cx, cy).
Centroid cog_box(const Frame& frame, double cx, double cy, double x0,
                 double y0, double x1, double y1, double threshold) {
  const auto& g = frame.geometry;
  Centroid c;
  double sx = 0, sy = 0, mass = 0;
  const auto xi0 = static_cast<std::uint32_t>(std::max(0.0, std::floor(x0)));
  const auto yi0 = static_cast<std::uint32_t>(std::max(0.0, std::floor(y0)));
  const auto xi1 = static_cast<std::uint32_t>(
      std::min<double>(g.image_width, std::ceil(x1)));
  const auto yi1 = static_cast<std::uint32_t>(
      std::min<double>(g.image_height, std::ceil(y1)));
  for (std::uint32_t y = yi0; y < yi1; ++y) {
    for (std::uint32_t x = xi0; x < xi1; ++x) {
      const double value = frame.at(x, y) - threshold;
      if (value <= 0) continue;
      sx += value * (x + 0.5);
      sy += value * (y + 0.5);
      mass += value;
    }
  }
  if (mass > 0) {
    c.x = sx / mass - cx;
    c.y = sy / mass - cy;
    c.mass = mass;
  }
  return c;
}

}  // namespace

std::vector<Centroid> extract_centroids(const Frame& frame,
                                        const CentroidOptions& options) {
  const auto& g = frame.geometry;
  std::vector<Centroid> centroids;
  centroids.reserve(g.subaperture_count());

  const double sub = g.subaperture_px;
  for (std::uint32_t row = 0; row < g.grid_rows(); ++row) {
    for (std::uint32_t col = 0; col < g.grid_cols(); ++col) {
      const double cx = col * sub + sub / 2.0;
      const double cy = row * sub + sub / 2.0;
      const double x0 = col * sub;
      const double y0 = row * sub;

      switch (options.method) {
        case Method::CenterOfGravity:
          centroids.push_back(
              cog_box(frame, cx, cy, x0, y0, x0 + sub, y0 + sub, 0.0));
          break;
        case Method::ThresholdedCoG:
          centroids.push_back(cog_box(frame, cx, cy, x0, y0, x0 + sub,
                                      y0 + sub, options.threshold));
          break;
        case Method::WindowedCoG: {
          Centroid estimate = cog_box(frame, cx, cy, x0, y0, x0 + sub,
                                      y0 + sub, options.threshold);
          double window = options.initial_window_px;
          for (std::uint32_t it = 0; it < options.window_iterations; ++it) {
            const double wx = cx + estimate.x;
            const double wy = cy + estimate.y;
            const double half = window / 2.0;
            const Centroid refined = cog_box(
                frame, cx, cy, std::max(x0, wx - half), std::max(y0, wy - half),
                std::min(x0 + sub, wx + half), std::min(y0 + sub, wy + half),
                options.threshold);
            if (refined.mass > 0) estimate = refined;
            window *= options.window_shrink;
          }
          centroids.push_back(estimate);
          break;
        }
      }
    }
  }
  return centroids;
}

double rms_error(const Frame& frame, const std::vector<Centroid>& centroids) {
  CIG_EXPECTS(centroids.size() == frame.truth.size());
  double sum = 0;
  for (std::size_t i = 0; i < centroids.size(); ++i) {
    const double ex = centroids[i].x - frame.truth[i].dx;
    const double ey = centroids[i].y - frame.truth[i].dy;
    sum += ex * ex + ey * ey;
  }
  return std::sqrt(sum / static_cast<double>(centroids.size()));
}

}  // namespace cig::apps::shwfs
