// Synthetic Shack-Hartmann wavefront-sensor frames.
//
// A SH sensor images a lenslet array: each subaperture produces one focal
// spot whose displacement from the subaperture centre encodes the local
// wavefront slope. We synthesize frames with Gaussian spots at known
// (deterministic, seeded) displacements plus background and shot-like
// noise, so centroiding accuracy can be checked against ground truth.
#pragma once

#include <cstdint>
#include <vector>

#include "support/rng.h"

namespace cig::apps::shwfs {

struct SensorGeometry {
  std::uint32_t image_width = 512;
  std::uint32_t image_height = 512;
  std::uint32_t subaperture_px = 32;  // square subapertures

  std::uint32_t grid_cols() const { return image_width / subaperture_px; }
  std::uint32_t grid_rows() const { return image_height / subaperture_px; }
  std::uint32_t subaperture_count() const { return grid_cols() * grid_rows(); }
};

struct Spot {
  double dx = 0;  // true displacement from the subaperture centre (pixels)
  double dy = 0;
};

struct Frame {
  SensorGeometry geometry;
  std::vector<std::uint16_t> pixels;        // row-major
  std::vector<Spot> truth;                  // per subaperture

  std::uint16_t at(std::uint32_t x, std::uint32_t y) const {
    return pixels[static_cast<std::size_t>(y) * geometry.image_width + x];
  }
};

struct FrameOptions {
  double spot_sigma_px = 2.0;       // Gaussian spot width
  double max_displacement_px = 6.0; // slope range (< subaperture_px / 2)
  double peak_intensity = 40000.0;  // of 16-bit range
  double background = 800.0;        // constant background level
  double noise_sigma = 120.0;       // additive Gaussian noise
  std::uint64_t seed = 42;
};

// Renders a frame with one spot per subaperture at seeded displacements.
Frame make_frame(const SensorGeometry& geometry,
                 const FrameOptions& options = {});

}  // namespace cig::apps::shwfs
