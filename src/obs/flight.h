// Always-on flight recorder: a bounded ring of recent trace events.
//
// The serve daemon (and anything else long-lived) cannot afford an
// unbounded obs::Tracer, but when something goes wrong the last few
// thousand events are exactly what an operator needs. The recorder keeps a
// fixed-capacity ring of spans / instants / counter samples mirroring the
// tracer's event vocabulary; recording overwrites the oldest events and
// never allocates beyond the ring.
//
// Timestamps are *logical* (the caller supplies them — the serve daemon
// stamps events with its serial request counter, in simulated
// microseconds), so for a fixed input stream the ring contents — and the
// Chrome/Perfetto dump rendered from them — are byte-identical regardless
// of wall clock or worker count. Dumps go through sim::to_chrome_trace, so
// a flight dump opens in the same viewers as the simulator's traces.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/timeline.h"
#include "sim/trace_export.h"
#include "support/json.h"

namespace cig::obs {

struct FlightEvent {
  enum class Kind { Span, Instant, Counter };
  Kind kind = Kind::Instant;
  sim::Lane lane = sim::Lane::Ctrl;
  Seconds start = 0;
  Seconds end = 0;          // == start for instants; unused for counters
  std::string label;        // span/instant label, or counter track name
  double value = 0;         // counter value
};

class FlightRecorder {
 public:
  explicit FlightRecorder(std::size_t capacity = kDefaultCapacity);

  static constexpr std::size_t kDefaultCapacity = 4096;

  // Drops all recorded events and resizes the ring.
  void set_capacity(std::size_t capacity);
  std::size_t capacity() const { return capacity_; }

  std::size_t size() const { return ring_.size(); }
  std::uint64_t recorded() const { return recorded_; }
  // Events overwritten by ring wrap (recorded - retained).
  std::uint64_t dropped() const {
    return recorded_ - static_cast<std::uint64_t>(ring_.size());
  }

  void span(sim::Lane lane, Seconds start, Seconds end, std::string label);
  void instant(sim::Lane lane, Seconds at, std::string label);
  void counter(Seconds at, std::string track, double value);
  void clear();

  // Retained events, oldest first.
  std::vector<FlightEvent> events() const;

  // Chrome trace-event document of the retained events (spans/instants on
  // their lanes, counters as counter tracks). Deterministic for a fixed
  // ring state.
  Json to_chrome_trace(const std::string& process_name = "cig-flight") const;

  // Atomically writes to_chrome_trace() to `path` (persist::atomic_write_file;
  // throws std::runtime_error on I/O error).
  void dump(const std::string& path,
            const std::string& process_name = "cig-flight") const;

 private:
  void push(FlightEvent ev);

  std::size_t capacity_;
  std::size_t head_ = 0;  // next write slot once the ring is full
  std::uint64_t recorded_ = 0;
  std::vector<FlightEvent> ring_;
};

}  // namespace cig::obs
