// Fixed log-bucket histogram for latency distributions.
//
// Buckets are geometrically spaced (a fixed number per decade) between a
// configurable floor and ceiling, so a single geometry covers nanosecond
// kernels and second-long phases with bounded relative error: a percentile
// read from the buckets is within one bucket ratio (10^(1/buckets_per_decade),
// ~10% at the default 24/decade) of the exact order statistic. Values are
// clamped into the outermost buckets; exact min/max/sum are tracked on the
// side so p0/p100 and the mean stay exact.
//
// The runtime records per-phase and per-kernel latencies here and exports
// p50/p95/p99 into the stat registry, the JSON outputs, and the
// Prometheus-style snapshot (obs/prometheus.h).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/stat_registry.h"
#include "support/json.h"

namespace cig::obs {

class Histogram {
 public:
  // Bucket geometry: [floor, ceiling] split into buckets_per_decade
  // log-spaced buckets per factor of 10. The defaults span 1 ns .. 1000 s
  // in microsecond-centric units (the registry export records values as
  // whatever unit the caller added; the framework uses microseconds).
  explicit Histogram(double floor = 1e-3, double ceiling = 1e9,
                     int buckets_per_decade = 24);

  void add(double value);
  void merge(const Histogram& other);  // geometries must match
  void clear();

  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const { return count_ ? sum_ / static_cast<double>(count_) : 0; }
  double min() const { return count_ ? min_ : 0; }
  double max() const { return count_ ? max_ : 0; }

  // Order statistic at quantile q in [0, 1], log-interpolated within the
  // bucket and clamped to [min, max]. q = 0 and q = 1 return the exact
  // tracked min/max (including samples clamped into the overflow bucket).
  // Returns 0 on an empty histogram. q is a fraction: percentile(0.99),
  // never percentile(99) (which would clamp to q = 1, i.e. the max).
  double percentile(double q) const;

  struct Bucket {
    double upper_bound = 0;       // inclusive upper edge of the bucket
    std::uint64_t count = 0;      // samples in this bucket (not cumulative)
  };
  // Non-empty buckets in increasing bound order.
  std::vector<Bucket> nonzero_buckets() const;
  // Cumulative counts at each non-empty bucket bound, increasing; the last
  // entry's count equals count(). Samples above the ceiling were clamped
  // into the top bucket, so its bound may understate max() by one bucket —
  // Prometheus exposition closes the gap with the "+Inf" series.
  std::vector<Bucket> cumulative_buckets() const;

  // Registry export: <prefix>.count/.mean/.min/.max/.p50/.p95/.p99.
  void export_to(sim::StatRegistry& registry, const std::string& prefix) const;

  // Exact state round-trip for checkpoint/restore: geometry is serialized
  // as the raw derived members (not re-derived from floor/ceiling), so a
  // restored histogram is bit-identical to the one snapshotted.
  Json to_json() const;
  static Histogram from_json(const Json& j);

 private:
  std::size_t bucket_index(double value) const;
  double bucket_lower(std::size_t i) const;
  double bucket_upper(std::size_t i) const;

  double floor_;
  double log_floor_;
  double inv_log_step_;  // buckets per log10 unit
  double log_step_;
  std::vector<std::uint64_t> buckets_;
  std::uint64_t count_ = 0;
  double sum_ = 0;
  double min_ = 0;
  double max_ = 0;
};

}  // namespace cig::obs
