#include "obs/prometheus.h"

#include <cctype>
#include <set>
#include <sstream>

#include "persist/atomic_io.h"

namespace cig::obs {

namespace {

// Quantile suffix handled as a summary label, or empty.
std::string quantile_of(const std::string& name, std::string* base) {
  for (const auto& [suffix, q] :
       {std::pair<const char*, const char*>{".p50", "0.5"},
        {".p95", "0.95"},
        {".p99", "0.99"}}) {
    const std::size_t len = std::string(suffix).size();
    if (name.size() > len && name.compare(name.size() - len, len, suffix) == 0) {
      *base = name.substr(0, name.size() - len);
      return q;
    }
  }
  *base = name;
  return {};
}

void format_value(std::ostringstream& out, double value) {
  out.precision(12);
  out << value;
}

}  // namespace

std::string prometheus_name(const std::string& counter_name) {
  std::string out = "cig_";
  for (const char c : counter_name) {
    if (std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == ':') {
      out += c;
    } else if (c == '.' || c == '-' || c == ' ' || c == '/') {
      out += '_';
    } else if (c == '%') {
      out += "pct";
    }  // anything else is dropped
  }
  return out;
}

std::string to_prometheus(const sim::StatRegistry& registry) {
  std::ostringstream out;
  std::set<std::string> typed;  // metric names already given a # TYPE line
  for (const auto& [name, value] : registry.all()) {
    std::string base;
    const std::string quantile = quantile_of(name, &base);
    const std::string metric = prometheus_name(base);
    if (typed.insert(metric).second) {
      out << "# TYPE " << metric << (quantile.empty() ? " gauge" : " summary")
          << '\n';
    }
    out << metric;
    if (!quantile.empty()) out << "{quantile=\"" << quantile << "\"}";
    out << ' ';
    format_value(out, value);
    out << '\n';
  }
  return out.str();
}

void write_prometheus(const sim::StatRegistry& registry,
                      const std::string& path) {
  // Atomic replace: a crash (or an exception upstream) never leaves a
  // truncated snapshot a scraper would ingest as valid-but-empty.
  persist::atomic_write_file(path, to_prometheus(registry));
}

}  // namespace cig::obs
