#include "obs/prometheus.h"

#include <cctype>
#include <set>
#include <sstream>

#include "persist/atomic_io.h"
#include "support/assert.h"

namespace cig::obs {

namespace {

// Quantile suffix handled as a summary label, or empty.
std::string quantile_of(const std::string& name, std::string* base) {
  for (const auto& [suffix, q] :
       {std::pair<const char*, const char*>{".p50", "0.5"},
        {".p95", "0.95"},
        {".p99", "0.99"}}) {
    const std::size_t len = std::string(suffix).size();
    if (name.size() > len && name.compare(name.size() - len, len, suffix) == 0) {
      *base = name.substr(0, name.size() - len);
      return q;
    }
  }
  *base = name;
  return {};
}

void format_value(std::ostringstream& out, double value) {
  out.precision(12);
  out << value;
}

std::string value_text(double value) {
  std::ostringstream out;
  format_value(out, value);
  return out.str();
}

}  // namespace

std::string prometheus_name(const std::string& counter_name) {
  std::string out = "cig_";
  for (const char c : counter_name) {
    if (std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == ':') {
      out += c;
    } else if (c == '.' || c == '-' || c == ' ' || c == '/') {
      out += '_';
    } else if (c == '%') {
      out += "pct";
    }  // anything else is dropped
  }
  return out;
}

std::string to_prometheus(const sim::StatRegistry& registry) {
  std::ostringstream out;
  std::set<std::string> typed;  // metric names already given a # TYPE line
  for (const auto& [name, value] : registry.all()) {
    std::string base;
    const std::string quantile = quantile_of(name, &base);
    const std::string metric = prometheus_name(base);
    if (typed.insert(metric).second) {
      out << "# TYPE " << metric << (quantile.empty() ? " gauge" : " summary")
          << '\n';
    }
    out << metric;
    if (!quantile.empty()) out << "{quantile=\"" << quantile << "\"}";
    out << ' ';
    format_value(out, value);
    out << '\n';
  }
  return out.str();
}

void write_prometheus(const sim::StatRegistry& registry,
                      const std::string& path) {
  // Atomic replace: a crash (or an exception upstream) never leaves a
  // truncated snapshot a scraper would ingest as valid-but-empty.
  persist::atomic_write_file(path, to_prometheus(registry));
}

std::string escape_label_value(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '"') {
      out += "\\\"";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

std::string render_label_set(const LabelSet& labels) {
  if (labels.empty()) return {};
  std::string out = "{";
  bool first = true;
  for (const Label& l : labels) {
    if (!first) out += ',';
    first = false;
    out += l.key;
    out += "=\"";
    out += escape_label_value(l.value);
    out += '"';
  }
  out += '}';
  return out;
}

Exposition::Exposition(std::size_t series_cap) : series_cap_(series_cap) {}

bool Exposition::admit(const std::string& family, const std::string& type,
                       const LabelSet& labels, Family** out) {
  Family& f = families_[family];
  if (f.type.empty()) f.type = type;
  CIG_EXPECTS(f.type == type);
  if (!labels.empty()) {
    if (series_cap_ > 0 && f.labeled >= series_cap_) {
      ++dropped_;
      return false;
    }
    ++f.labeled;
  }
  *out = &f;
  return true;
}

void Exposition::add_gauge(const std::string& name, const LabelSet& labels,
                           double value) {
  Family* fam = nullptr;
  const std::string metric = prometheus_name(name);
  if (!admit(metric, "gauge", labels, &fam)) return;
  Series s;
  s.labels_text = render_label_set(labels);
  s.lines.push_back(metric + s.labels_text + ' ' + value_text(value));
  fam->series.push_back(std::move(s));
}

void Exposition::add_histogram(const std::string& name, const LabelSet& labels,
                               const Histogram& hist) {
  Family* fam = nullptr;
  const std::string metric = prometheus_name(name);
  if (!admit(metric, "histogram", labels, &fam)) return;
  Series s;
  s.labels_text = render_label_set(labels);
  const std::string count_text =
      value_text(static_cast<double>(hist.count()));
  auto bucket_line = [&](const std::string& le, const std::string& cum) {
    LabelSet with_le = labels;
    with_le.push_back(Label{"le", le});
    return metric + "_bucket" + render_label_set(with_le) + ' ' + cum;
  };
  for (const Histogram::Bucket& b : hist.cumulative_buckets()) {
    s.lines.push_back(bucket_line(value_text(b.upper_bound),
                                  value_text(static_cast<double>(b.count))));
  }
  s.lines.push_back(bucket_line("+Inf", count_text));
  s.lines.push_back(metric + "_sum" + s.labels_text + ' ' +
                    value_text(hist.sum()));
  s.lines.push_back(metric + "_count" + s.labels_text + ' ' + count_text);
  fam->series.push_back(std::move(s));
}

void Exposition::add_registry(const sim::StatRegistry& registry) {
  for (const auto& [name, value] : registry.all()) {
    std::string base;
    const std::string quantile = quantile_of(name, &base);
    const std::string family = prometheus_name(base);
    if (!quantile.empty()) {
      // Quantile shadows of a family exported as a conformant histogram are
      // redundant (and the summary family name would collide with it).
      const auto it = families_.find(family);
      if (it != families_.end() && it->second.type == "histogram") continue;
      Family* fam = nullptr;
      if (!admit(family, "summary", {}, &fam)) continue;
      Series s;
      s.labels_text = "{quantile=\"" + quantile + "\"}";
      s.lines.push_back(family + s.labels_text + ' ' + value_text(value));
      fam->series.push_back(std::move(s));
      continue;
    }
    // A gauge named <fam>_count would collide with a histogram family's
    // reserved _count series; the histogram already carries that value.
    const std::string suffix = "_count";
    if (family.size() > suffix.size() &&
        family.compare(family.size() - suffix.size(), suffix.size(), suffix) ==
            0) {
      const std::string stem = family.substr(0, family.size() - suffix.size());
      const auto it = families_.find(stem);
      if (it != families_.end() && it->second.type == "histogram") continue;
    }
    add_gauge(name, {}, value);
  }
}

std::string Exposition::render() const {
  std::ostringstream out;
  for (const auto& [name, family] : families_) {
    out << "# TYPE " << name << ' ' << family.type << '\n';
    for (const Series& s : family.series) {
      for (const std::string& line : s.lines) out << line << '\n';
    }
  }
  out << "# TYPE cig_obs_labels_dropped gauge\n";
  out << "cig_obs_labels_dropped " << dropped_ << '\n';
  return out.str();
}

}  // namespace cig::obs
