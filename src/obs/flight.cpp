#include "obs/flight.h"

#include <utility>

#include "persist/atomic_io.h"
#include "support/assert.h"

namespace cig::obs {

FlightRecorder::FlightRecorder(std::size_t capacity) : capacity_(capacity) {
  CIG_EXPECTS(capacity >= 1);
  ring_.reserve(capacity_);
}

void FlightRecorder::set_capacity(std::size_t capacity) {
  CIG_EXPECTS(capacity >= 1);
  capacity_ = capacity;
  clear();
}

void FlightRecorder::clear() {
  ring_.clear();
  ring_.reserve(capacity_);
  head_ = 0;
  recorded_ = 0;
}

void FlightRecorder::push(FlightEvent ev) {
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(ev));
  } else {
    ring_[head_] = std::move(ev);
    head_ = (head_ + 1) % capacity_;
  }
  ++recorded_;
}

void FlightRecorder::span(sim::Lane lane, Seconds start, Seconds end,
                          std::string label) {
  CIG_EXPECTS(end >= start);
  push(FlightEvent{FlightEvent::Kind::Span, lane, start, end, std::move(label),
                   0});
}

void FlightRecorder::instant(sim::Lane lane, Seconds at, std::string label) {
  push(FlightEvent{FlightEvent::Kind::Instant, lane, at, at, std::move(label),
                   0});
}

void FlightRecorder::counter(Seconds at, std::string track, double value) {
  push(FlightEvent{FlightEvent::Kind::Counter, sim::Lane::Ctrl, at, at,
                   std::move(track), value});
}

std::vector<FlightEvent> FlightRecorder::events() const {
  std::vector<FlightEvent> out;
  out.reserve(ring_.size());
  // Once the ring has wrapped, head_ points at the oldest retained event.
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(head_ + i) % ring_.size()]);
  }
  return out;
}

Json FlightRecorder::to_chrome_trace(const std::string& process_name) const {
  sim::Timeline timeline;
  sim::TraceAux aux;
  for (const FlightEvent& ev : events()) {
    switch (ev.kind) {
      case FlightEvent::Kind::Span:
        timeline.add(ev.lane, ev.start, ev.end, ev.label);
        break;
      case FlightEvent::Kind::Instant:
        timeline.mark(ev.lane, ev.start, ev.label);
        break;
      case FlightEvent::Kind::Counter:
        aux.counters.push_back(sim::CounterSample{ev.label, ev.start, ev.value});
        break;
    }
  }
  return sim::to_chrome_trace(timeline, aux, process_name);
}

void FlightRecorder::dump(const std::string& path,
                          const std::string& process_name) const {
  persist::atomic_write_file(path, to_chrome_trace(process_name).dump() + "\n");
}

}  // namespace cig::obs
