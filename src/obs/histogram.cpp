#include "obs/histogram.h"

#include <algorithm>
#include <cmath>

#include "support/assert.h"

namespace cig::obs {

Histogram::Histogram(double floor, double ceiling, int buckets_per_decade)
    : floor_(floor),
      log_floor_(std::log10(floor)),
      inv_log_step_(buckets_per_decade),
      log_step_(1.0 / buckets_per_decade) {
  CIG_EXPECTS(floor > 0);
  CIG_EXPECTS(ceiling > floor);
  CIG_EXPECTS(buckets_per_decade >= 1);
  const double decades = std::log10(ceiling) - log_floor_;
  buckets_.assign(
      static_cast<std::size_t>(std::ceil(decades * buckets_per_decade)) + 1, 0);
}

std::size_t Histogram::bucket_index(double value) const {
  if (!(value > floor_)) return 0;
  const double idx = (std::log10(value) - log_floor_) * inv_log_step_;
  const auto i = static_cast<std::size_t>(std::max(0.0, std::ceil(idx)));
  return std::min(i, buckets_.size() - 1);
}

double Histogram::bucket_lower(std::size_t i) const {
  if (i == 0) return 0;
  return std::pow(10.0, log_floor_ + static_cast<double>(i - 1) * log_step_);
}

double Histogram::bucket_upper(std::size_t i) const {
  return std::pow(10.0, log_floor_ + static_cast<double>(i) * log_step_);
}

void Histogram::add(double value) {
  buckets_[bucket_index(value)] += 1;
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  count_ += 1;
  sum_ += value;
}

void Histogram::merge(const Histogram& other) {
  CIG_EXPECTS(buckets_.size() == other.buckets_.size());
  CIG_EXPECTS(floor_ == other.floor_);
  CIG_EXPECTS(log_step_ == other.log_step_);
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
  if (other.count_ > 0) {
    min_ = count_ ? std::min(min_, other.min_) : other.min_;
    max_ = count_ ? std::max(max_, other.max_) : other.max_;
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

void Histogram::clear() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  sum_ = 0;
  min_ = 0;
  max_ = 0;
}

double Histogram::percentile(double q) const {
  if (count_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  // The extremes are tracked exactly on the side; answering them from the
  // buckets would be off by up to one bucket ratio (and arbitrarily wrong
  // for p100 when samples were clamped into the overflow bucket).
  if (q == 0.0) return min_;
  if (q == 1.0) return max_;
  // Rank of the target order statistic (nearest-rank with interpolation
  // inside the bucket it lands in).
  const double rank = q * static_cast<double>(count_ - 1) + 1.0;
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    if (buckets_[i] == 0) continue;
    const double before = static_cast<double>(cumulative);
    cumulative += buckets_[i];
    if (static_cast<double>(cumulative) >= rank) {
      // Log-interpolate within the bucket by the fractional rank. The top
      // slot is also the overflow bucket: values above the ceiling were
      // clamped into it, so its effective upper edge is the exact max, not
      // the geometric bound.
      const double within =
          (rank - before) / static_cast<double>(buckets_[i]);
      const double lo = std::max(bucket_lower(i), min_);
      const double hi = (i + 1 == buckets_.size())
                            ? max_
                            : std::min(bucket_upper(i), max_);
      if (!(lo > 0) || hi <= lo) return std::clamp(hi, min_, max_);
      const double value =
          std::pow(10.0, std::log10(lo) +
                             within * (std::log10(hi) - std::log10(lo)));
      return std::clamp(value, min_, max_);
    }
  }
  return max_;
}

std::vector<Histogram::Bucket> Histogram::nonzero_buckets() const {
  std::vector<Bucket> out;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    if (buckets_[i] > 0) out.push_back(Bucket{bucket_upper(i), buckets_[i]});
  }
  return out;
}

std::vector<Histogram::Bucket> Histogram::cumulative_buckets() const {
  std::vector<Bucket> out = nonzero_buckets();
  std::uint64_t running = 0;
  for (Bucket& b : out) {
    running += b.count;
    b.count = running;
  }
  return out;
}

Json Histogram::to_json() const {
  Json j;
  // Raw derived geometry, not (floor, ceiling, buckets_per_decade): the
  // constructor's log10/ceil arithmetic must not be re-run on restore or a
  // merge() geometry check against a live histogram could fail on the
  // last-ulp difference.
  j["floor"] = Json(floor_);
  j["log_floor"] = Json(log_floor_);
  j["inv_log_step"] = Json(inv_log_step_);
  j["log_step"] = Json(log_step_);
  j["slots"] = Json(static_cast<double>(buckets_.size()));
  Json nonzero{JsonArray{}};
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    if (buckets_[i] == 0) continue;
    Json pair{JsonArray{}};
    pair.push_back(Json(static_cast<double>(i)));
    pair.push_back(Json(static_cast<double>(buckets_[i])));
    nonzero.push_back(std::move(pair));
  }
  j["buckets"] = std::move(nonzero);
  j["count"] = Json(static_cast<double>(count_));
  j["sum"] = Json(sum_);
  j["min"] = Json(min_);
  j["max"] = Json(max_);
  return j;
}

Histogram Histogram::from_json(const Json& j) {
  Histogram h;
  h.floor_ = j.number_or("floor", h.floor_);
  h.log_floor_ = j.number_or("log_floor", h.log_floor_);
  h.inv_log_step_ = j.number_or("inv_log_step", h.inv_log_step_);
  h.log_step_ = j.number_or("log_step", h.log_step_);
  h.buckets_.assign(static_cast<std::size_t>(j.number_or("slots", 1)), 0);
  for (const Json& pair : j.at("buckets").as_array()) {
    const JsonArray& slot_count = pair.as_array();
    const auto slot = static_cast<std::size_t>(slot_count.at(0).as_number());
    if (slot < h.buckets_.size()) {
      h.buckets_[slot] =
          static_cast<std::uint64_t>(slot_count.at(1).as_number());
    }
  }
  h.count_ = static_cast<std::uint64_t>(j.number_or("count", 0));
  h.sum_ = j.number_or("sum", 0);
  h.min_ = j.number_or("min", 0);
  h.max_ = j.number_or("max", 0);
  return h;
}

void Histogram::export_to(sim::StatRegistry& registry,
                          const std::string& prefix) const {
  registry.set(prefix + ".count", static_cast<double>(count_));
  registry.set(prefix + ".mean", mean());
  registry.set(prefix + ".min", min());
  registry.set(prefix + ".max", max());
  registry.set(prefix + ".p50", percentile(0.50));
  registry.set(prefix + ".p95", percentile(0.95));
  registry.set(prefix + ".p99", percentile(0.99));
}

}  // namespace cig::obs
