#include "obs/tracer.h"

#include <algorithm>

namespace cig::obs {

void Tracer::Span::close() {
  if (tracer_ == nullptr) return;
  close_at(tracer_->now());
}

void Tracer::Span::close_at(Seconds at) {
  if (tracer_ == nullptr) return;
  tracer_->segment(lane_, start_, std::max(at, start_), std::move(label_));
  tracer_ = nullptr;
}

void Tracer::segment(sim::Lane lane, Seconds start, Seconds end,
                     std::string label) {
  timeline_.add(lane, start, end, std::move(label));
}

void Tracer::instant(sim::Lane lane, std::string label) {
  timeline_.mark(lane, now_, std::move(label));
}

void Tracer::counter(std::string track, double value) {
  counter_at(now_, std::move(track), value);
}

void Tracer::counter_at(Seconds ts, std::string track, double value) {
  aux_.counters.push_back(sim::CounterSample{std::move(track), ts, value});
}

void Tracer::counters_from(const sim::StatRegistry& registry) {
  for (const auto& [name, value] : registry.all()) counter(name, value);
}

std::uint64_t Tracer::flow_begin(sim::Lane lane, std::string name) {
  const std::uint64_t id = next_flow_id_++;
  aux_.flows.push_back(sim::FlowEvent{id, lane, now_, std::move(name), true});
  return id;
}

void Tracer::flow_end(std::uint64_t id, sim::Lane lane, std::string name) {
  aux_.flows.push_back(sim::FlowEvent{id, lane, now_, std::move(name), false});
}

void Tracer::clear() {
  timeline_.clear();
  aux_.clear();
  now_ = 0;
  next_flow_id_ = 1;
}

}  // namespace cig::obs
