// Prometheus-style text snapshot of a stat registry.
//
// Renders every counter as a gauge in the Prometheus exposition format
// (text/plain; version 0.0.4), so a run's final registry can be scraped or
// diffed with standard tooling:
//
//   cig_runtime_switches 3
//   cig_runtime_phase_latency_us{quantile="0.5"} 812.4
//
// Naming: counter names are sanitized ('.', '-', ' ' and '%' become '_';
// anything outside [a-zA-Z0-9_:] is dropped) and prefixed with "cig_".
// Percentile counters exported by obs::Histogram::export_to (suffixes
// ".p50"/".p95"/".p99") are folded into one summary-style metric with
// quantile labels. Counters are emitted in the registry's deterministic
// (lexicographic) order.
#pragma once

#include <string>

#include "sim/stat_registry.h"

namespace cig::obs {

// Sanitized metric name: "runtime.switch_overhead_us" -> "cig_runtime_switch_overhead_us".
std::string prometheus_name(const std::string& counter_name);

std::string to_prometheus(const sim::StatRegistry& registry);

// Writes the snapshot to `path` (throws std::runtime_error on I/O error).
void write_prometheus(const sim::StatRegistry& registry,
                      const std::string& path);

}  // namespace cig::obs
