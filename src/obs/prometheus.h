// Prometheus-style text snapshot of a stat registry.
//
// Renders every counter as a gauge in the Prometheus exposition format
// (text/plain; version 0.0.4), so a run's final registry can be scraped or
// diffed with standard tooling:
//
//   cig_runtime_switches 3
//   cig_runtime_phase_latency_us{quantile="0.5"} 812.4
//
// Naming: counter names are sanitized ('.', '-', ' ' and '%' become '_';
// anything outside [a-zA-Z0-9_:] is dropped) and prefixed with "cig_".
// Percentile counters exported by obs::Histogram::export_to (suffixes
// ".p50"/".p95"/".p99") are folded into one summary-style metric with
// quantile labels. Counters are emitted in the registry's deterministic
// (lexicographic) order.
//
// Exposition extends the flat rendering with label sets and conformant
// histogram series (_bucket/_sum/_count) for live scrape endpoints
// (src/serve/http.*). Label values are escaped per the exposition format
// and the number of labeled series per family is bounded by a cardinality
// cap; drops are counted and rendered as cig_obs_labels_dropped.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/histogram.h"
#include "sim/stat_registry.h"

namespace cig::obs {

// Sanitized metric name: "runtime.switch_overhead_us" -> "cig_runtime_switch_overhead_us".
std::string prometheus_name(const std::string& counter_name);

std::string to_prometheus(const sim::StatRegistry& registry);

// Writes the snapshot to `path` (throws std::runtime_error on I/O error).
void write_prometheus(const sim::StatRegistry& registry,
                      const std::string& path);

// One label: key must already be a valid label name; the value is escaped
// at render time (backslash, double quote, newline).
struct Label {
  std::string key;
  std::string value;
};
using LabelSet = std::vector<Label>;

// Exposition-format escaping for a label value: \ -> \\, " -> \", LF -> \n.
std::string escape_label_value(const std::string& value);

// Renders {k1="v1",k2="v2"} (values escaped), or "" for an empty set.
std::string render_label_set(const LabelSet& labels);

// Deterministic builder for a labeled exposition document.
//
// Families render sorted by metric name; series within a family render in
// insertion order (callers iterate sorted containers, so the document is a
// pure function of the inputs). `series_cap` bounds the number of *labeled*
// series per family: once a family holds that many labeled series, further
// labeled adds are dropped and counted (unlabeled series never drop).
// render() always appends the drop counter as cig_obs_labels_dropped.
class Exposition {
 public:
  explicit Exposition(std::size_t series_cap = 0);  // 0 = unlimited

  void add_gauge(const std::string& name, const LabelSet& labels, double value);
  // Conformant histogram series: cumulative _bucket{le="..."} lines over the
  // non-empty buckets, a closing _bucket{le="+Inf"}, then _sum and _count.
  void add_histogram(const std::string& name, const LabelSet& labels,
                     const Histogram& hist);
  // Folds a registry the way to_prometheus() does (gauges + quantile
  // summaries), skipping any series whose family was already claimed by
  // add_histogram (their .count/.p50/.p95/.p99 shadows would collide with
  // the histogram's reserved _count and bucket series).
  void add_registry(const sim::StatRegistry& registry);

  std::uint64_t dropped() const { return dropped_; }
  std::string render() const;

 private:
  struct Series {
    std::string labels_text;  // pre-rendered label block ("" if unlabeled)
    std::vector<std::string> lines;  // fully rendered sample lines
  };
  struct Family {
    std::string type;  // "gauge" | "summary" | "histogram"
    std::size_t labeled = 0;
    std::vector<Series> series;
  };
  bool admit(const std::string& family, const std::string& type,
             const LabelSet& labels, Family** out);

  std::size_t series_cap_;
  std::uint64_t dropped_ = 0;
  std::map<std::string, Family> families_;  // keyed by prometheus_name
};

}  // namespace cig::obs
