// Span tracer: the write side of the observability layer. Components
// record what they are doing — spans (RAII scopes on a lane), instant
// events, counter samples and causal flow arrows — against a simulated
// clock, and the tracer accumulates them into the sim::Timeline /
// sim::TraceAux pair that trace_export renders for Perfetto.
//
//   obs::Tracer tracer;
//   tracer.set_now(t);
//   {
//     CIG_TRACE_SPAN(tracer, sim::Lane::Ctrl, "executor.run");
//     ... advance tracer.set_now(...) as simulated time passes ...
//   }  // span closes at the tracer's current time
//   tracer.counter("gpu_cache_usage_pct", usage.gpu_pct());
//   auto id = tracer.flow_begin(sim::Lane::Ctrl, "switch SC->ZC");
//   ... later ...
//   tracer.flow_end(id, sim::Lane::Ctrl, "switch SC->ZC");
//
// The clock is the *simulated* time base (support/units.h Seconds), not
// wall clock: the tracer observes the same timeline the executor bills.
#pragma once

#include <cstdint>
#include <string>

#include "sim/stat_registry.h"
#include "sim/timeline.h"
#include "sim/trace_export.h"
#include "support/units.h"

namespace cig::obs {

class Tracer {
 public:
  // RAII scope: captures the tracer clock at construction and adds a
  // segment [start, now] on `lane` when destroyed (or close()d early).
  class Span {
   public:
    Span(Tracer& tracer, sim::Lane lane, std::string label)
        : tracer_(&tracer), lane_(lane), label_(std::move(label)),
          start_(tracer.now()) {}
    ~Span() { close(); }

    Span(const Span&) = delete;
    Span& operator=(const Span&) = delete;

    // Idempotent early close; `at` overrides the end time (defaults to the
    // tracer clock, clamped so the span never ends before it started).
    void close();
    void close_at(Seconds at);

   private:
    Tracer* tracer_;
    sim::Lane lane_;
    std::string label_;
    Seconds start_;
  };

  // --- clock ---------------------------------------------------------------
  // The simulated-time cursor new events are stamped with. Instrumented
  // components advance it as they bill simulated time.
  void set_now(Seconds t) { now_ = t; }
  Seconds now() const { return now_; }

  // --- events --------------------------------------------------------------
  Span span(sim::Lane lane, std::string label) {
    return Span(*this, lane, std::move(label));
  }
  void segment(sim::Lane lane, Seconds start, Seconds end, std::string label);
  void instant(sim::Lane lane, std::string label);

  // Counter-track sample at the current clock (or an explicit time).
  void counter(std::string track, double value);
  void counter_at(Seconds ts, std::string track, double value);
  // One sample per counter in `registry` (use StatRegistry::with_prefix to
  // restrict which counters become tracks).
  void counters_from(const sim::StatRegistry& registry);

  // Causal arrows: flow_begin stamps the start endpoint and returns the
  // flow id; flow_end stamps a terminating endpoint. Use the same `name`
  // for both endpoints (viewers match flows by id + name).
  std::uint64_t flow_begin(sim::Lane lane, std::string name);
  void flow_end(std::uint64_t id, sim::Lane lane, std::string name);

  // The id the next flow_begin will allocate. Checkpoint/restore carries
  // this across process restarts so flow ids recorded in restored decision
  // provenance match an uninterrupted run byte for byte.
  std::uint64_t next_flow_id() const { return next_flow_id_; }
  void set_next_flow_id(std::uint64_t id) { next_flow_id_ = id; }

  // --- results -------------------------------------------------------------
  sim::Timeline& timeline() { return timeline_; }
  const sim::Timeline& timeline() const { return timeline_; }
  const sim::TraceAux& aux() const { return aux_; }

  void clear();

 private:
  sim::Timeline timeline_;
  sim::TraceAux aux_;
  Seconds now_ = 0;
  std::uint64_t next_flow_id_ = 1;
};

}  // namespace cig::obs

// RAII span over the enclosing scope. The variable name folds in the line
// number so multiple spans can coexist in one scope.
#define CIG_TRACE_SPAN_CAT2(a, b) a##b
#define CIG_TRACE_SPAN_CAT(a, b) CIG_TRACE_SPAN_CAT2(a, b)
#define CIG_TRACE_SPAN(tracer, lane, label)                      \
  ::cig::obs::Tracer::Span CIG_TRACE_SPAN_CAT(cig_trace_span_,   \
                                              __LINE__)((tracer), (lane), \
                                                        (label))
