// Crash-point injection: kill (or simulate killing) the process at a named
// persistence seam (persist/seam.h).
//
// Two modes:
//   CrashMode::Exit  — std::_Exit(kCrashExitCode) at the n-th hit of the
//                      armed seam: no destructors, no atexit, no flushing —
//                      the closest a test harness gets to `kill -9`. Used
//                      by `cigtool crashtest`, which arms a child process
//                      through the CIG_CRASH_AT environment variable.
//   CrashMode::Throw — throws CrashInjected (after disarming) so unit tests
//                      can exercise every seam in-process and then verify
//                      recovery without forking.
//
// The injector is a process-wide singleton because the seam hook is a plain
// function pointer; arming installs the hook, disarming removes it.
#pragma once

#include <cstdint>
#include <string>

namespace cig::fault {

// Child exit status crashtest interprets as "the armed seam fired". Chosen
// away from the codes cigtool uses for its own outcomes (0..3) and from the
// shell's 126/127.
inline constexpr int kCrashExitCode = 86;

// Thrown by CrashMode::Throw at the armed seam. Deliberately NOT derived
// from std::exception: the persistence layers degrade gracefully on
// ordinary I/O errors (catch std::exception, disable, continue), and a
// simulated crash must not be absorbed by that handling — it has to unwind
// the whole run the way std::_Exit would end the process.
class CrashInjected {
 public:
  explicit CrashInjected(std::string seam) : seam_(std::move(seam)) {}
  const std::string& seam() const { return seam_; }

 private:
  std::string seam_;
};

enum class CrashMode {
  Exit,   // std::_Exit(kCrashExitCode): simulated power-cut / kill -9
  Throw,  // throw CrashInjected: in-process unit-test crash
};

class CrashInjector {
 public:
  static CrashInjector& instance();

  // Arms the injector: the `nth` hit of `seam` crashes (1 = first hit).
  // Installs the persist seam hook; re-arming replaces any previous arm.
  void arm(const std::string& seam, std::uint64_t nth = 1,
           CrashMode mode = CrashMode::Exit);

  // Uninstalls the hook and resets counters (Throw mode disarms itself
  // before throwing, so recovery code runs seam-free).
  void disarm();

  bool armed() const { return armed_; }
  // Hits of the armed seam so far (counts stop advancing after disarm).
  std::uint64_t hits() const { return hits_; }

  // Reads CIG_CRASH_AT="<seam>[:<nth>]" and arms CrashMode::Exit when set.
  // Returns true when armed. How `cigtool crashtest` reaches into its
  // children without them needing any crash-specific flags.
  bool arm_from_env();

 private:
  CrashInjector() = default;
  static void on_seam(const char* seam);

  bool armed_ = false;
  std::string seam_;
  std::uint64_t nth_ = 1;
  std::uint64_t hits_ = 0;
  CrashMode mode_ = CrashMode::Exit;
};

}  // namespace cig::fault
