// Deterministic session-level fault injection for the serve daemon.
//
// Where fault::FaultInjector perturbs the simulation pipeline *inside* a
// request, the session injector perturbs the request stream itself — the
// hostile-client failure modes a long-running daemon actually meets:
//
//   - truncated request lines (client died mid-write)
//   - garbage lines (protocol confusion, port scanners)
//   - flood bursts (a runaway client hammering low-value requests)
//   - stalled sessions (client hangs, lines lost, then reconnects)
//   - mid-batch disconnects (connection torn down with work in flight)
//
// The injector rewrites a well-formed request script into a sequence of
// client sessions with faults applied. Every mutation is a pure function
// of (seed, spec index, line index) — the same splitmix64 stream idiom as
// FaultInjector — so a fixed seed reproduces the exact same hostile
// stream regardless of jobs or call order.
//
// A ServeScenario bundles session fault specs with the SLO the overload
// plane must hold under them (max reject rate, bounded decide p99, no
// torn state). `serve::run_serve_chaos` (serve/chaos.h) executes one; the
// catalogue lives here so `cigtool chaos` can enumerate serve rows next
// to the controller rows.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/stat_registry.h"

namespace cig::fault {

enum class SessionFaultKind {
  TruncatedLine = 0,  // line cut mid-byte: malformed JSON reaches the parser
  GarbageLine,        // non-protocol bytes injected before a line
  FloodBurst,         // burst of low-priority heavy requests from one tenant
  StalledSession,     // session breaks, the next lines are lost on the floor
  MidBatchDisconnect,  // session breaks cleanly; the client reconnects
};

const char* session_fault_kind_name(SessionFaultKind kind);
constexpr std::size_t kSessionFaultKindCount = 5;

struct SessionFaultSpec {
  SessionFaultKind kind = SessionFaultKind::GarbageLine;
  // Per-line firing probability in [0, 1].
  double probability = 1.0;
  // Kind-specific strength: fraction of the line retained (TruncatedLine),
  // burst length (FloodBurst), lines lost (StalledSession); unused
  // otherwise.
  double magnitude = 0.1;
  // Active line-index window over the base script, inclusive.
  std::uint64_t first_line = 0;
  std::uint64_t last_line = UINT64_MAX;
};

// What the injector did, per kind, plus totals. Exported as
// `fault.session.*`.
struct SessionFaultMetrics {
  std::uint64_t by_kind[kSessionFaultKindCount] = {};
  std::uint64_t total = 0;
  std::uint64_t mutated_lines = 0;   // truncated in place
  std::uint64_t injected_lines = 0;  // garbage + flood lines added
  std::uint64_t dropped_lines = 0;   // lost to stalls
  std::uint64_t disconnects = 0;     // session splits (stall + disconnect)

  void count(SessionFaultKind kind);
  void export_to(sim::StatRegistry& registry) const;
};

// The mutated request stream: an ordered list of client sessions, each a
// list of request lines. The serve chaos driver feeds the sessions to one
// Server in order (a disconnect ends one session; the next session models
// the reconnect).
struct MutatedStream {
  std::vector<std::vector<std::string>> sessions;
  SessionFaultMetrics metrics;
};

class SessionFaultInjector {
 public:
  SessionFaultInjector(std::vector<SessionFaultSpec> specs,
                       std::uint64_t seed);

  // Tenant/board the flood bursts impersonate. The flood opens with a
  // hello so the burst exercises admission control rather than dying as
  // unknown-tenant rejects.
  void set_flood_target(std::string tenant, std::string board);

  // Rewrites the base script (one request line per element) into faulted
  // client sessions. Pure function of (specs, seed, lines).
  MutatedStream mutate(const std::vector<std::string>& lines);

  const SessionFaultMetrics& metrics() const { return metrics_; }

 private:
  std::uint64_t stream_seed(std::size_t spec_index,
                            std::uint64_t line_index) const;
  bool fires(const SessionFaultSpec& spec, std::size_t spec_index,
             std::uint64_t line_index) const;

  std::vector<SessionFaultSpec> specs_;
  std::uint64_t seed_;
  std::string flood_tenant_ = "flood";
  std::string flood_board_ = "tx2";
  SessionFaultMetrics metrics_;
};

// A serve-layer chaos scenario: session faults plus the SLO bounds the
// overload plane must hold under them. Pure data; executed by
// serve::run_serve_chaos.
struct ServeScenario {
  std::string name;
  std::string summary;
  std::vector<SessionFaultSpec> specs;
  // SLO: at most this fraction of requests may be answered with an error
  // (admission rejects, parse errors and protocol errors all count).
  double max_reject_rate = 0.9;
  // SLO: the aggregate decide-latency p99 (simulated µs) of the work that
  // WAS admitted stays under this bound — shedding must protect the
  // admitted requests' latency, not just the daemon's life.
  double p99_bound_us = 1.0e6;
  // When true the scenario is expected to push the daemon into shedding
  // (serve.shed > 0); the cell fails if the overload never materialized.
  bool expect_shed = false;
};

// Serve scenario catalogue, stable order. Names are disjoint from
// all_scenarios() (controller rows); `is_serve_scenario` routes a mixed
// --scenarios list.
const std::vector<ServeScenario>& serve_scenarios();
const ServeScenario& serve_scenario_by_name(const std::string& name);
bool is_serve_scenario(const std::string& name);

}  // namespace cig::fault
