// Deterministic, seeded fault injection for the simulation pipeline.
//
// Real Jetson-class boards do not deliver the clean inputs the decision
// framework assumes: PMU counters are noisy and drop samples, DVFS and
// thermal throttling shift bandwidth mid-run, and cached characterizations
// go stale or arrive corrupted. The injector reproduces those failure modes
// at well-defined seams so the guardrails in src/runtime and the degraded
// mode in core::Framework can be exercised deterministically:
//
//   - profiler counter noise / dropout / saturation  (profile::ProfileReport)
//   - transient runtime-window outliers and stale sample batches
//   - mid-run bandwidth/frequency derating            (soc::SoC::set_derate)
//   - partial / corrupt DeviceCharacterization inputs (core::Framework)
//
// Every perturbation is a pure function of (seed, spec index, sample
// index), so a fixed seed reproduces the exact same fault sequence
// regardless of how calls interleave — the chaos property suite relies on
// byte-identical reruns.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/microbench.h"
#include "mem/pressure.h"
#include "obs/tracer.h"
#include "profile/report.h"
#include "sim/stat_registry.h"
#include "soc/soc.h"
#include "support/units.h"

namespace cig::fault {

enum class FaultKind {
  CounterNoise = 0,      // multiplicative noise on every counter field
  CounterDropout,        // rates/throughputs read back as zero (lost sample)
  CounterSaturation,     // rates pegged at 100%, throughput over-reported
  OutlierSpike,          // one sample's times blow up (scheduler hiccup)
  StaleBatch,            // the previous report is delivered again
  ThermalDerate,         // bandwidth + clocks derated from a sample onward
  CorruptCharacterization,  // DeviceCharacterization fields NaN/zero/missing
  MemBudgetShrink,       // hard DRAM budget cut from a sample onward
  AllocFailure,          // transient allocation failure (forces demotion)
};

const char* fault_kind_name(FaultKind kind);
constexpr std::size_t kFaultKindCount = 9;

struct FaultSpec {
  FaultKind kind = FaultKind::CounterNoise;
  // Per-sample firing probability in [0, 1] (ThermalDerate and
  // CorruptCharacterization ignore it: they are level-triggered).
  double probability = 1.0;
  // Kind-specific strength: noise amplitude (relative), spike factor - 1,
  // derate fraction (0.4 = bandwidth and clocks fall to 60%), corruption
  // severity in [0, 1].
  double magnitude = 0.1;
  // Active sample-index window, inclusive.
  std::uint64_t first_sample = 0;
  std::uint64_t last_sample = UINT64_MAX;
};

// What the injector did, per kind, plus the total. Exported as `fault.*`.
struct FaultMetrics {
  std::uint64_t by_kind[kFaultKindCount] = {};
  std::uint64_t total = 0;

  void count(FaultKind kind);
  // fault.total + fault.<kind> counters (fault.counter_noise, ...).
  void export_to(sim::StatRegistry& registry) const;
};

class FaultInjector {
 public:
  FaultInjector(std::vector<FaultSpec> specs, std::uint64_t seed);

  // True if any spec carries `kind` (regardless of its active window).
  bool has(FaultKind kind) const;

  // Applies the thermal-derate schedule for this sample to the SoC (no-op
  // when the factor is unchanged). Emits a CTRL instant per change when a
  // tracer is given.
  void pre_sample(soc::SoC& soc, obs::Tracer* tracer, std::uint64_t index);

  // Perturbs one profiler report in place (noise, dropout, saturation,
  // spikes, stale replay). Returns true when at least one fault fired.
  bool on_report(profile::ProfileReport& report, obs::Tracer* tracer,
                 std::uint64_t index);

  // Combined derate factor for `index` (1.0 = nominal) — exposed for tests.
  double derate_factor(std::uint64_t index) const;

  // Combined DRAM-budget factor for `index` (1.0 = nominal). Like
  // ThermalDerate, MemBudgetShrink specs are level-triggered: each active
  // spec multiplies the budget by (1 - magnitude), floored at 5%. A
  // shrinking *ramp* is several specs with staggered first_samples.
  double budget_factor(std::uint64_t index) const;

  // Applies the budget-shrink schedule for this sample to `governor`
  // (budget = initial x budget_factor; no-op when unchanged). Emits a CTRL
  // instant per change when a tracer is given.
  void pre_sample_pressure(mem::PressureGovernor& governor,
                           Bytes initial_budget, obs::Tracer* tracer,
                           std::uint64_t index);

  // True when a transient allocation failure fires at `index` (counted and
  // marked). The caller routes it into the controller's alloc-failure
  // demotion path.
  bool alloc_failure(obs::Tracer* tracer, std::uint64_t index);

  // Applies every CorruptCharacterization spec to `device`: drops the ZC
  // throughput column, poisons thresholds (NaN / out of range) and zeroes
  // MB3 times, scaled by the spec's magnitude. The result is exactly what
  // DeviceCharacterization::problems() must catch.
  void corrupt(core::DeviceCharacterization& device);

  const FaultMetrics& metrics() const { return metrics_; }
  void export_stats(sim::StatRegistry& registry) const {
    metrics_.export_to(registry);
  }

 private:
  // Per-(spec, sample) deterministic stream, independent of call order.
  std::uint64_t stream_seed(std::size_t spec_index,
                            std::uint64_t sample_index) const;
  bool fires(const FaultSpec& spec, std::size_t spec_index,
             std::uint64_t sample_index) const;

  std::vector<FaultSpec> specs_;
  std::uint64_t seed_;
  FaultMetrics metrics_;
  double applied_derate_ = 1.0;
  double applied_budget_factor_ = 1.0;
  std::optional<profile::ProfileReport> last_report_;
};

}  // namespace cig::fault
