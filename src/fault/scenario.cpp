#include "fault/scenario.h"

#include <stdexcept>

namespace cig::fault {

namespace {

std::vector<FaultScenario> build_catalogue() {
  std::vector<FaultScenario> catalogue;

  {
    FaultScenario s;
    s.name = "counter-noise";
    s.summary = "±25% multiplicative noise on half of all PMU samples";
    s.specs = {{FaultKind::CounterNoise, 0.5, 0.25}};
    s.regret_bound = 3.0;
    catalogue.push_back(std::move(s));
  }
  {
    FaultScenario s;
    s.name = "counter-dropout";
    s.summary = "20% of PMU batches lost (zeros), 5% saturated at ceiling";
    s.specs = {{FaultKind::CounterDropout, 0.2, 1.0},
               {FaultKind::CounterSaturation, 0.05, 0.5}};
    s.regret_bound = 3.0;
    catalogue.push_back(std::move(s));
  }
  {
    FaultScenario s;
    s.name = "spike-outliers";
    s.summary = "15% of samples report 10x times (scheduler hiccups)";
    s.specs = {{FaultKind::OutlierSpike, 0.15, 9.0}};
    s.regret_bound = 3.0;
    catalogue.push_back(std::move(s));
  }
  {
    FaultScenario s;
    s.name = "stale-window";
    s.summary = "30% of samples re-deliver the previous batch";
    s.specs = {{FaultKind::StaleBatch, 0.3, 1.0}};
    s.regret_bound = 3.0;
    catalogue.push_back(std::move(s));
  }
  {
    FaultScenario s;
    s.name = "thermal-throttle";
    s.summary = "bandwidth and clocks derated to 60% from sample 24 on";
    FaultSpec derate{FaultKind::ThermalDerate, 1.0, 0.4};
    derate.first_sample = 24;
    s.specs = {derate};
    // The faulted run executes on 0.6x hardware against a nominal-speed
    // oracle: 1/0.6 of slack on top of the usual adaptive margin.
    s.regret_bound = 6.0;
    catalogue.push_back(std::move(s));
  }
  {
    FaultScenario s;
    s.name = "corrupt-characterization";
    s.summary =
        "cached characterization corrupted (NaN thresholds, missing ZC "
        "column) -> framework degraded mode";
    s.specs = {{FaultKind::CorruptCharacterization, 1.0, 1.0},
               {FaultKind::CounterNoise, 0.25, 0.1}};
    s.regret_bound = 3.0;
    catalogue.push_back(std::move(s));
  }
  {
    FaultScenario s;
    s.name = "kitchen-sink";
    s.summary = "every fault class at once (noise, loss, spikes, thermal)";
    FaultSpec derate{FaultKind::ThermalDerate, 1.0, 0.3};
    derate.first_sample = 32;
    s.specs = {{FaultKind::CounterNoise, 0.4, 0.2},
               {FaultKind::CounterDropout, 0.1, 1.0},
               {FaultKind::OutlierSpike, 0.1, 9.0},
               {FaultKind::StaleBatch, 0.15, 1.0},
               derate};
    s.regret_bound = 8.0;
    catalogue.push_back(std::move(s));
  }

  return catalogue;
}

}  // namespace

const std::vector<FaultScenario>& all_scenarios() {
  static const std::vector<FaultScenario> catalogue = build_catalogue();
  return catalogue;
}

const FaultScenario& scenario_by_name(const std::string& name) {
  std::string known;
  for (const auto& scenario : all_scenarios()) {
    if (scenario.name == name) return scenario;
    if (!known.empty()) known += ", ";
    known += scenario.name;
  }
  throw std::runtime_error("unknown fault scenario '" + name + "' (known: " +
                           known + ")");
}

}  // namespace cig::fault
