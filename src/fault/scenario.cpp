#include "fault/scenario.h"

#include <stdexcept>

namespace cig::fault {

namespace {

std::vector<FaultScenario> build_catalogue() {
  std::vector<FaultScenario> catalogue;

  {
    FaultScenario s;
    s.name = "counter-noise";
    s.summary = "±25% multiplicative noise on half of all PMU samples";
    s.specs = {{FaultKind::CounterNoise, 0.5, 0.25}};
    s.regret_bound = 3.0;
    catalogue.push_back(std::move(s));
  }
  {
    FaultScenario s;
    s.name = "counter-dropout";
    s.summary = "20% of PMU batches lost (zeros), 5% saturated at ceiling";
    s.specs = {{FaultKind::CounterDropout, 0.2, 1.0},
               {FaultKind::CounterSaturation, 0.05, 0.5}};
    s.regret_bound = 3.0;
    catalogue.push_back(std::move(s));
  }
  {
    FaultScenario s;
    s.name = "spike-outliers";
    s.summary = "15% of samples report 10x times (scheduler hiccups)";
    s.specs = {{FaultKind::OutlierSpike, 0.15, 9.0}};
    s.regret_bound = 3.0;
    catalogue.push_back(std::move(s));
  }
  {
    FaultScenario s;
    s.name = "stale-window";
    s.summary = "30% of samples re-deliver the previous batch";
    s.specs = {{FaultKind::StaleBatch, 0.3, 1.0}};
    s.regret_bound = 3.0;
    catalogue.push_back(std::move(s));
  }
  {
    FaultScenario s;
    s.name = "thermal-throttle";
    s.summary = "bandwidth and clocks derated to 60% from sample 24 on";
    FaultSpec derate{FaultKind::ThermalDerate, 1.0, 0.4};
    derate.first_sample = 24;
    s.specs = {derate};
    // The faulted run executes on 0.6x hardware against a nominal-speed
    // oracle: 1/0.6 of slack on top of the usual adaptive margin.
    s.regret_bound = 6.0;
    catalogue.push_back(std::move(s));
  }
  {
    FaultScenario s;
    s.name = "corrupt-characterization";
    s.summary =
        "cached characterization corrupted (NaN thresholds, missing ZC "
        "column) -> framework degraded mode";
    s.specs = {{FaultKind::CorruptCharacterization, 1.0, 1.0},
               {FaultKind::CounterNoise, 0.25, 0.1}};
    s.regret_bound = 3.0;
    catalogue.push_back(std::move(s));
  }
  {
    FaultScenario s;
    s.name = "kitchen-sink";
    s.summary = "every fault class at once (noise, loss, spikes, thermal)";
    FaultSpec derate{FaultKind::ThermalDerate, 1.0, 0.3};
    derate.first_sample = 32;
    s.specs = {{FaultKind::CounterNoise, 0.4, 0.2},
               {FaultKind::CounterDropout, 0.1, 1.0},
               {FaultKind::OutlierSpike, 0.1, 9.0},
               {FaultKind::StaleBatch, 0.15, 1.0},
               derate};
    s.regret_bound = 8.0;
    catalogue.push_back(std::move(s));
  }
  {
    // Shrinking-DRAM ramp: the budget starts generous (SC fits), then is
    // cut in three staggered steps — the final one squeezing below even the
    // UM footprint, so whichever non-floor model the controller holds must
    // demote down the ladder instead of failing. Demoted models are slower
    // than the unconstrained best static, so the bound carries
    // thermal-grade slack.
    FaultScenario s;
    s.name = "mem-shrink";
    s.summary = "DRAM budget cut in 3 steps (to 50%/35%/25%) from sample 16 on";
    FaultSpec step1{FaultKind::MemBudgetShrink, 1.0, 0.5};
    step1.first_sample = 16;
    FaultSpec step2{FaultKind::MemBudgetShrink, 1.0, 0.3};
    step2.first_sample = 32;
    FaultSpec step3{FaultKind::MemBudgetShrink, 1.0, 0.3};
    step3.first_sample = 56;
    s.specs = {step1, step2, step3};
    s.regret_bound = 6.0;
    catalogue.push_back(std::move(s));
  }
  {
    // Transient allocation failures: each one forces a one-step demotion;
    // the controller may climb back when the flow re-recommends a larger
    // model, so the run oscillates down/up under a healthy budget.
    FaultScenario s;
    s.name = "alloc-fail";
    s.summary = "10% of samples hit a transient allocation failure";
    s.specs = {{FaultKind::AllocFailure, 0.10, 1.0}};
    s.regret_bound = 6.0;
    catalogue.push_back(std::move(s));
  }
  {
    // The OOM-grade crunch: a collapsing budget plus allocation failures
    // plus counter noise — the demotion path, the budget gate and the
    // input guards all active at once.
    FaultScenario s;
    s.name = "oom-crunch";
    s.summary =
        "budget collapses -60% at sample 24 + 15% alloc failures + noise";
    FaultSpec crunch{FaultKind::MemBudgetShrink, 1.0, 0.6};
    crunch.first_sample = 24;
    s.specs = {crunch,
               {FaultKind::AllocFailure, 0.15, 1.0},
               {FaultKind::CounterNoise, 0.25, 0.15}};
    s.regret_bound = 8.0;
    catalogue.push_back(std::move(s));
  }

  return catalogue;
}

}  // namespace

const std::vector<FaultScenario>& all_scenarios() {
  static const std::vector<FaultScenario> catalogue = build_catalogue();
  return catalogue;
}

const FaultScenario& scenario_by_name(const std::string& name) {
  std::string known;
  for (const auto& scenario : all_scenarios()) {
    if (scenario.name == name) return scenario;
    if (!known.empty()) known += ", ";
    known += scenario.name;
  }
  throw std::runtime_error("unknown fault scenario '" + name + "' (known: " +
                           known + ")");
}

}  // namespace cig::fault
