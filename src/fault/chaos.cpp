#include "fault/chaos.h"

#include <algorithm>
#include <utility>

#include "core/footprint.h"
#include "support/assert.h"
#include "support/rng.h"

namespace cig::fault {

namespace {

std::uint64_t fnv1a(const std::string& text) {
  std::uint64_t hash = 0xCBF29CE484222325ull;
  for (const unsigned char c : text) {
    hash ^= c;
    hash *= 0x100000001B3ull;
  }
  return hash;
}

}  // namespace

std::uint64_t cell_seed(std::uint64_t seed, const std::string& board,
                        const std::string& scenario) {
  std::uint64_t state = seed ^ fnv1a(board + "|" + scenario);
  return splitmix64(state);
}

Json ChaosResult::to_json() const {
  Json j;
  j["board"] = Json(board);
  j["scenario"] = Json(scenario);
  j["seed"] = Json(static_cast<double>(seed));
  j["final_model"] = Json(std::string(comm::model_name(final_model)));
  j["adaptive_us"] = Json(to_us(adaptive_time));
  Json statics;
  for (const auto model : core::kAllModels) {
    statics[comm::model_name(model)] =
        Json(to_us(static_time[core::model_index(model)]));
  }
  j["static_us"] = std::move(statics);
  j["best_static"] = Json(std::string(comm::model_name(best_static)));
  j["worst_static"] = Json(std::string(comm::model_name(worst_static)));
  j["oracle_us"] = Json(to_us(oracle_time));
  j["regret"] = Json(regret);
  j["regret_bound"] = Json(regret_bound);
  j["degraded"] = Json(degraded);
  if (degraded) {
    j["degraded_suggested"] =
        Json(std::string(comm::model_name(degraded_suggested)));
    Json problems = JsonArray{};
    for (const auto& p : degraded_problems) problems.push_back(Json(p));
    j["degraded_problems"] = std::move(problems);
  }
  j["registry"] = registry.to_json();
  return j;
}

ChaosResult run_chaos(const soc::BoardConfig& board,
                      const FaultScenario& scenario,
                      const ChaosOptions& options) {
  ChaosResult result;
  result.board = board.name;
  result.scenario = scenario.name;
  result.seed = options.seed;
  result.regret_bound = scenario.regret_bound;

  const std::uint64_t seed = cell_seed(options.seed, board.name,
                                       scenario.name);
  FaultInjector injector(scenario.specs, seed);

  core::Framework framework(board, options.replay.exec, options.sweep);
  const auto phases =
      workload::phasic_workload_phases(framework.board(), options.trace);

  // Degraded leg: poison a copy of the (clean) characterization exactly the
  // way a stale or truncated cache entry would, feed it to a throwaway
  // framework, and record the conservative answer. The replay leg below
  // keeps the clean characterization — a corrupted one never reaches the
  // online controller, precisely because the framework refuses to act on it.
  if (injector.has(FaultKind::CorruptCharacterization)) {
    core::DeviceCharacterization poisoned = framework.device();
    injector.corrupt(poisoned);
    core::Framework degraded_fw(board, options.replay.exec);
    degraded_fw.set_device(std::move(poisoned));
    result.degraded = degraded_fw.degraded();
    result.degraded_problems = degraded_fw.device_problems();
    const auto rec = degraded_fw.analyze(phases.front().workload,
                                         comm::CommModel::ZeroCopy);
    result.degraded_suggested = rec.suggested;
    result.degraded_checks = rec.explanation.checks;
  }

  // Replay leg: the injector perturbs the SoC before each sample (thermal
  // derating) and the profiler report after it (noise, dropout, spikes,
  // stale batches); the hardened controller runs the trace end to end.
  runtime::ReplayOptions replay = options.replay;

  // Pressure cells arm a hard DRAM budget sized from the trace itself:
  // 3x the page-rounded shared span, so SC (2x) fits at nominal budget and
  // the scenario's shrink steps are what push the controller down the
  // ladder. The ramp and the alloc-failure stream feed the controller
  // through the pressure seam, sample by sample.
  if (injector.has(FaultKind::MemBudgetShrink) ||
      injector.has(FaultKind::AllocFailure)) {
    Bytes max_extent = 0;
    for (const auto& phase : phases) {
      max_extent = std::max(max_extent, phase.workload.gpu.pattern.extent);
    }
    const Bytes initial_budget =
        3 * core::FootprintModel::pages(max_extent);
    replay.controller.pressure.budget = initial_budget;
    replay.pressure_sample = [&injector, initial_budget](
                                 runtime::AdaptiveController& controller,
                                 std::uint64_t index) {
      injector.pre_sample_pressure(controller.governor(), initial_budget,
                                   &controller.tracer(), index);
      if (injector.alloc_failure(&controller.tracer(), index)) {
        controller.signal_alloc_failure();
      }
    };
  }
  replay.before_sample = [&injector](soc::SoC& soc, obs::Tracer& tracer,
                                     std::uint64_t index) {
    injector.pre_sample(soc, &tracer, index);
  };
  replay.mutate_sample = [&injector](profile::ProfileReport& report,
                                     obs::Tracer& tracer,
                                     std::uint64_t index) {
    injector.on_report(report, &tracer, index);
  };
  auto rep = runtime::replay_phasic(framework, phases, replay);

  // Clean references: compare_static resets the SoC per model, which also
  // clears any derate the replay leg left behind — the oracle runs at
  // nominal speed, so regret prices in what the faults cost us.
  const auto ref = runtime::compare_static(framework, phases,
                                           options.replay.exec);

  result.final_model = rep.samples.empty()
                           ? options.replay.controller.initial_model
                           : rep.samples.back().decision.model_after;
  result.adaptive_time = rep.adaptive_time;
  result.static_time = ref.static_time;
  result.best_static = ref.best_static;
  result.worst_static = ref.worst_static;
  result.oracle_time = ref.oracle_time;
  const Seconds best = ref.static_time[core::model_index(ref.best_static)];
  CIG_ASSERT(best > 0);
  result.regret = rep.adaptive_time / best;

  result.metrics = rep.metrics;
  result.fault_metrics = injector.metrics();
  result.registry = std::move(rep.registry);
  injector.export_stats(result.registry);
  result.timeline = std::move(rep.timeline);
  result.aux = std::move(rep.aux);
  return result;
}

}  // namespace cig::fault
