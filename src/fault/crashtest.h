// Crash-point recovery testing: for every persistence seam, run a
// checkpointed replay in a child process armed to die at the n-th hit of
// that seam (CIG_CRASH_AT -> fault::CrashInjector), restart it over the
// same checkpoint directory, and verify the recovery invariants:
//
//   1. the restart succeeds (exit 0, or the documented exit 3 when a torn
//      tail was discarded during recovery);
//   2. no checksum-invalid state was loaded (enforced by construction in
//      persist/; a recovery that crashes or errors is a violation here);
//   3. the decisions after restore are byte-identical to an uninterrupted
//      golden run, and the adaptive end-to-end time matches exactly.
//
// The golden run executes in-process (no checkpoint directory, so no seams
// fire); children are spawned through std::system so CrashMode::Exit can
// kill them like a power cut without taking the harness down.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "support/json.h"

namespace cig::fault {

struct CrashTestOptions {
  std::string cigtool;              // path of the cigtool binary to spawn
  std::string board = "tx2";        // preset name or board JSON file
  std::string scratch_dir = "crashtest-scratch";  // per-cell dirs live here
  std::vector<std::string> seams;   // empty = persist::crash_seams()
  std::uint64_t occurrences = 2;    // test the 1st..n-th hit of each seam
  std::uint64_t snapshot_every = 1; // controller-snapshot cadence (samples)
};

// One (seam, nth-hit) cell of the crash matrix.
struct CrashTestCell {
  std::string seam;
  std::uint64_t nth = 1;
  bool exercised = false;       // the armed seam actually fired
  bool torn_recovered = false;  // recovery discarded torn state (exit 3)
  bool identical = false;       // post-restore decisions byte-identical
  bool resumed = false;         // recovery resumed mid-trace (vs cold start)
  bool violation = false;       // any invariant broken
  int crash_exit = -1;          // crash child's exit status
  int recover_exit = -1;        // recovery child's exit status (-1 = not run)
  std::string detail;           // human-readable outcome / first divergence

  Json to_json() const;
};

struct CrashTestReport {
  std::vector<CrashTestCell> cells;
  std::uint64_t exercised = 0;
  std::uint64_t violations = 0;
  std::uint64_t torn_recoveries = 0;
  std::uint64_t samples = 0;  // golden trace length (decisions compared)

  bool passed() const { return violations == 0 && exercised > 0; }
  Json to_json() const;
};

// Runs the full matrix. Throws on setup errors (unknown board, unusable
// scratch directory); per-cell failures are reported, never thrown.
CrashTestReport run_crashtest(const CrashTestOptions& options);

}  // namespace cig::fault
