// Named fault scenarios: curated FaultSpec bundles modelling the failure
// modes observed on real boards, each with the regret bound the chaos
// property suite holds the adaptive controller to. A scenario is pure data;
// `fault::run_chaos` (chaos.h) executes one against a board.
#pragma once

#include <string>
#include <vector>

#include "fault/injector.h"

namespace cig::fault {

struct FaultScenario {
  std::string name;
  std::string summary;
  std::vector<FaultSpec> specs;
  // The chaos suite asserts adaptive_time <= regret_bound * best_static
  // (the clean static-best oracle over the same trace). Thermal scenarios
  // get looser bounds because the faulted run executes on derated hardware
  // while the oracle runs at nominal speed.
  double regret_bound = 3.0;
};

// The built-in catalogue, in a stable order (CLI listings, test grids).
const std::vector<FaultScenario>& all_scenarios();

// Lookup by name; throws std::runtime_error listing the known names.
const FaultScenario& scenario_by_name(const std::string& name);

}  // namespace cig::fault
