#include "fault/injector.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "support/assert.h"
#include "support/rng.h"

namespace cig::fault {

namespace {

// Applies `fn` to every counter field a ProfileReport carries (times and
// rates alike); mirrors runtime/window.cpp's field list so faults reach
// exactly what the decision flow consumes.
template <typename Fn>
void for_each_counter(profile::ProfileReport& report, Fn fn) {
  fn(report.cpu_l1_miss_rate);
  fn(report.cpu_llc_miss_rate);
  fn(report.gpu_l1_hit_rate);
  fn(report.gpu_llc_hit_rate);
  fn(report.gpu_transactions);
  fn(report.gpu_transaction_size);
  fn(report.kernel_time);
  fn(report.cpu_time);
  fn(report.copy_time);
  fn(report.total_time);
  fn(report.gpu_ll_throughput);
  fn(report.cpu_ll_throughput);
  fn(report.energy);
  fn(report.average_power);
}

void mark(obs::Tracer* tracer, FaultKind kind) {
  if (tracer != nullptr) {
    tracer->instant(sim::Lane::Ctrl,
                    std::string("fault: ") + fault_kind_name(kind));
  }
}

}  // namespace

const char* fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::CounterNoise: return "counter_noise";
    case FaultKind::CounterDropout: return "counter_dropout";
    case FaultKind::CounterSaturation: return "counter_saturation";
    case FaultKind::OutlierSpike: return "outlier_spike";
    case FaultKind::StaleBatch: return "stale_batch";
    case FaultKind::ThermalDerate: return "thermal_derate";
    case FaultKind::CorruptCharacterization: return "corrupt_characterization";
    case FaultKind::MemBudgetShrink: return "mem_budget_shrink";
    case FaultKind::AllocFailure: return "alloc_failure";
  }
  return "unknown";
}

void FaultMetrics::count(FaultKind kind) {
  by_kind[static_cast<std::size_t>(kind)] += 1;
  total += 1;
}

void FaultMetrics::export_to(sim::StatRegistry& registry) const {
  registry.set("fault.total", static_cast<double>(total));
  for (std::size_t k = 0; k < kFaultKindCount; ++k) {
    registry.set(std::string("fault.") +
                     fault_kind_name(static_cast<FaultKind>(k)),
                 static_cast<double>(by_kind[k]));
  }
}

FaultInjector::FaultInjector(std::vector<FaultSpec> specs, std::uint64_t seed)
    : specs_(std::move(specs)), seed_(seed) {
  for (const auto& spec : specs_) {
    CIG_EXPECTS(spec.probability >= 0.0 && spec.probability <= 1.0);
    CIG_EXPECTS(spec.magnitude >= 0.0);
  }
}

bool FaultInjector::has(FaultKind kind) const {
  return std::any_of(specs_.begin(), specs_.end(),
                     [kind](const FaultSpec& s) { return s.kind == kind; });
}

std::uint64_t FaultInjector::stream_seed(std::size_t spec_index,
                                         std::uint64_t sample_index) const {
  // splitmix64 chain over (seed, spec, sample): every draw stream is a pure
  // function of its coordinates, so reruns and reorderings cannot diverge.
  std::uint64_t state = seed_;
  (void)splitmix64(state);
  state ^= 0x9E3779B97F4A7C15ull * (spec_index + 1);
  (void)splitmix64(state);
  state ^= sample_index;
  return splitmix64(state);
}

bool FaultInjector::fires(const FaultSpec& spec, std::size_t spec_index,
                          std::uint64_t sample_index) const {
  if (sample_index < spec.first_sample || sample_index > spec.last_sample) {
    return false;
  }
  if (spec.probability >= 1.0) return true;
  Rng rng(stream_seed(spec_index, sample_index));
  return rng.uniform() < spec.probability;
}

double FaultInjector::derate_factor(std::uint64_t index) const {
  double factor = 1.0;
  for (const auto& spec : specs_) {
    if (spec.kind != FaultKind::ThermalDerate) continue;
    if (index < spec.first_sample || index > spec.last_sample) continue;
    factor *= std::max(0.05, 1.0 - spec.magnitude);
  }
  return factor;
}

void FaultInjector::pre_sample(soc::SoC& soc, obs::Tracer* tracer,
                               std::uint64_t index) {
  const double factor = derate_factor(index);
  if (factor == applied_derate_) return;
  applied_derate_ = factor;
  soc.set_derate(factor);
  metrics_.count(FaultKind::ThermalDerate);
  if (tracer != nullptr) {
    std::ostringstream label;
    label.precision(3);
    label << "fault: thermal_derate x" << factor;
    tracer->instant(sim::Lane::Ctrl, label.str());
  }
}

double FaultInjector::budget_factor(std::uint64_t index) const {
  double factor = 1.0;
  for (const auto& spec : specs_) {
    if (spec.kind != FaultKind::MemBudgetShrink) continue;
    if (index < spec.first_sample || index > spec.last_sample) continue;
    factor *= std::max(0.05, 1.0 - spec.magnitude);
  }
  return factor;
}

void FaultInjector::pre_sample_pressure(mem::PressureGovernor& governor,
                                        Bytes initial_budget,
                                        obs::Tracer* tracer,
                                        std::uint64_t index) {
  const double factor = budget_factor(index);
  if (factor == applied_budget_factor_) return;
  applied_budget_factor_ = factor;
  const Bytes budget = static_cast<Bytes>(
      static_cast<double>(initial_budget) * factor);
  governor.set_budget(budget);
  metrics_.count(FaultKind::MemBudgetShrink);
  if (tracer != nullptr) {
    std::ostringstream label;
    label.precision(3);
    label << "fault: mem_budget_shrink x" << factor << " ("
          << format_bytes(budget) << ")";
    tracer->instant(sim::Lane::Ctrl, label.str());
  }
}

bool FaultInjector::alloc_failure(obs::Tracer* tracer, std::uint64_t index) {
  bool fired = false;
  for (std::size_t s = 0; s < specs_.size(); ++s) {
    const FaultSpec& spec = specs_[s];
    if (spec.kind != FaultKind::AllocFailure) continue;
    if (!fires(spec, s, index)) continue;
    fired = true;
    metrics_.count(spec.kind);
    mark(tracer, spec.kind);
  }
  return fired;
}

bool FaultInjector::on_report(profile::ProfileReport& report,
                              obs::Tracer* tracer, std::uint64_t index) {
  bool fired = false;
  for (std::size_t s = 0; s < specs_.size(); ++s) {
    const FaultSpec& spec = specs_[s];
    if (!fires(spec, s, index)) continue;
    Rng rng(stream_seed(s, index) ^ 0xFA17ull);
    switch (spec.kind) {
      case FaultKind::CounterNoise: {
        // Independent multiplicative noise per field, uniform in
        // [1 - magnitude, 1 + magnitude].
        for_each_counter(report, [&](double& field) {
          field *= rng.uniform(1.0 - spec.magnitude, 1.0 + spec.magnitude);
        });
        break;
      }
      case FaultKind::CounterDropout: {
        // A dropped PMU batch: rate/throughput registers read back zero
        // while the timing side (measured on the host) survives.
        report.cpu_l1_miss_rate = 0;
        report.cpu_llc_miss_rate = 0;
        report.gpu_l1_hit_rate = 0;
        report.gpu_llc_hit_rate = 0;
        report.gpu_transactions = 0;
        report.gpu_transaction_size = 0;
        report.gpu_ll_throughput = 0;
        report.cpu_ll_throughput = 0;
        break;
      }
      case FaultKind::CounterSaturation: {
        // Counters pegged at their ceiling: rates report 100% and the
        // throughput registers over-report by the magnitude.
        report.cpu_l1_miss_rate = 1.0;
        report.cpu_llc_miss_rate = 1.0;
        report.gpu_l1_hit_rate = 1.0;
        report.gpu_llc_hit_rate = 1.0;
        report.gpu_ll_throughput *= 1.0 + spec.magnitude;
        report.cpu_ll_throughput *= 1.0 + spec.magnitude;
        break;
      }
      case FaultKind::OutlierSpike: {
        const double factor = 1.0 + spec.magnitude;
        report.kernel_time *= factor;
        report.cpu_time *= factor;
        report.copy_time *= factor;
        report.total_time *= factor;
        break;
      }
      case FaultKind::StaleBatch: {
        if (last_report_) report = *last_report_;
        break;
      }
      case FaultKind::ThermalDerate:
      case FaultKind::CorruptCharacterization:
      case FaultKind::MemBudgetShrink:
      case FaultKind::AllocFailure:
        continue;  // handled in pre_sample*() / corrupt() / alloc_failure()
    }
    fired = true;
    metrics_.count(spec.kind);
    mark(tracer, spec.kind);
  }
  last_report_ = report;
  return fired;
}

void FaultInjector::corrupt(core::DeviceCharacterization& device) {
  for (const auto& spec : specs_) {
    if (spec.kind != FaultKind::CorruptCharacterization) continue;
    // Severity tiers: a mild corruption drops one characterization column,
    // a severe one poisons the thresholds the whole flow pivots on.
    device.mb1.gpu_ll_throughput[core::model_index(
        comm::CommModel::ZeroCopy)] = 0;
    if (spec.magnitude >= 0.3) {
      device.mb3.total_time[core::model_index(comm::CommModel::StandardCopy)] =
          0;
    }
    if (spec.magnitude >= 0.6) {
      device.mb2.gpu.threshold_pct =
          std::numeric_limits<double>::quiet_NaN();
      device.mb2.cpu.threshold_pct = -12.0;
    }
    metrics_.count(spec.kind);
  }
}

}  // namespace cig::fault
