// Chaos driver: runs one fault scenario end-to-end against one board.
//
// Two legs per cell:
//   1. Degraded leg (only when the scenario corrupts the characterization):
//      the injector poisons a copy of the device characterization, a
//      framework is fed the poisoned copy, and its analyze() answer — the
//      conservative SC fallback with the rejected inputs named in the
//      Explanation — is recorded.
//   2. Replay leg: the phasic trace runs through the adaptive controller
//      with the injector wired into the replay seams (thermal derating
//      before each sample, counter perturbation on each report). The clean
//      static references from the same trace give the regret denominator.
//
// Everything a cell produces is deterministic for a fixed seed: the
// injector draws from per-(spec, sample) streams and the result serializes
// through the byte-stable Json dump, so two invocations — at any worker
// count — emit identical bytes. tests/test_chaos_properties.cpp holds every
// (scenario, board) cell to the invariants; `cigtool chaos` runs the same
// cells from the command line.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/framework.h"
#include "fault/injector.h"
#include "fault/scenario.h"
#include "runtime/replay.h"
#include "sim/stat_registry.h"
#include "sim/trace_export.h"
#include "support/json.h"
#include "workload/builders.h"

namespace cig::fault {

struct ChaosOptions {
  std::uint64_t seed = 42;
  // Controller / executor configuration for the replay leg.
  runtime::ReplayOptions replay;
  // Characterization path knobs (worker count, result cache, stat hooks).
  core::SweepOptions sweep;
  // Trace shape; trimmed from the cigtool-runtime default so a full
  // scenario x board grid stays test-suite fast.
  workload::PhasicConfig trace{.phase_pairs = 2, .samples_per_phase = 16};
};

struct ChaosResult {
  std::string board;
  std::string scenario;
  std::uint64_t seed = 0;

  // Replay-leg outcome.
  comm::CommModel final_model = comm::CommModel::StandardCopy;
  Seconds adaptive_time = 0;
  core::PerModel<Seconds> static_time{};  // clean references
  comm::CommModel best_static = comm::CommModel::StandardCopy;
  comm::CommModel worst_static = comm::CommModel::StandardCopy;
  Seconds oracle_time = 0;
  double regret = 1.0;        // adaptive / best static (clean)
  double regret_bound = 0;    // the scenario's acceptance bound

  // Degraded leg (corrupt-characterization scenarios only).
  bool degraded = false;
  comm::CommModel degraded_suggested = comm::CommModel::StandardCopy;
  std::vector<std::string> degraded_problems;
  std::vector<std::string> degraded_checks;  // explanation.checks

  runtime::RuntimeMetrics metrics;
  FaultMetrics fault_metrics;
  sim::StatRegistry registry;  // runtime.* + runtime.guard.* + fault.*
  sim::Timeline timeline;
  sim::TraceAux aux;

  // Byte-deterministic summary (fixed seed => identical dump()).
  Json to_json() const;
};

// Deterministic per-cell injector seed: options.seed mixed with the cell's
// (board, scenario) identity, so every grid cell draws from its own stream
// no matter what order cells run in.
std::uint64_t cell_seed(std::uint64_t seed, const std::string& board,
                        const std::string& scenario);

ChaosResult run_chaos(const soc::BoardConfig& board,
                      const FaultScenario& scenario,
                      const ChaosOptions& options = {});

}  // namespace cig::fault
