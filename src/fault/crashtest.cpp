#include "fault/crashtest.h"

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#ifndef _WIN32
#include <sys/wait.h>
#endif

#include "core/framework.h"
#include "fault/crash.h"
#include "persist/seam.h"
#include "runtime/replay.h"
#include "soc/board_io.h"
#include "support/log.h"
#include "support/units.h"
#include "workload/builders.h"

namespace cig::fault {

namespace fs = std::filesystem;

namespace {

// POSIX single-quote wrapping (embedded ' becomes '\''). Every child
// argument goes through here, so paths with spaces survive std::system.
std::string shell_quote(const std::string& text) {
  std::string out = "'";
  for (const char c : text) {
    if (c == '\'') {
      out += "'\\''";
    } else {
      out += c;
    }
  }
  out += '\'';
  return out;
}

std::string cell_dir_name(const std::string& seam, std::uint64_t nth) {
  std::string name = seam;
  for (char& c : name) {
    if (c == '.') c = '-';
  }
  return name + "-" + std::to_string(nth);
}

// Runs `command` through the shell; returns the child's exit status, or -1
// when it died on a signal / could not be spawned.
int run_child(const std::string& command) {
  const int raw = std::system(command.c_str());
  if (raw == -1) return -1;
#ifdef _WIN32
  return raw;
#else
  if (WIFEXITED(raw)) return WEXITSTATUS(raw);
  return -1;
#endif
}

Json parse_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("cannot read " + path.string());
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return Json::parse(buffer.str());
}

}  // namespace

Json CrashTestCell::to_json() const {
  Json j;
  j["seam"] = Json(seam);
  j["nth"] = Json(static_cast<double>(nth));
  j["exercised"] = Json(exercised);
  j["torn_recovered"] = Json(torn_recovered);
  j["identical"] = Json(identical);
  j["resumed"] = Json(resumed);
  j["violation"] = Json(violation);
  j["crash_exit"] = Json(static_cast<double>(crash_exit));
  j["recover_exit"] = Json(static_cast<double>(recover_exit));
  j["detail"] = Json(detail);
  return j;
}

Json CrashTestReport::to_json() const {
  Json j;
  j["exercised"] = Json(static_cast<double>(exercised));
  j["violations"] = Json(static_cast<double>(violations));
  j["torn_recoveries"] = Json(static_cast<double>(torn_recoveries));
  j["samples"] = Json(static_cast<double>(samples));
  j["passed"] = Json(passed());
  Json rows = JsonArray{};
  for (const auto& cell : cells) rows.push_back(cell.to_json());
  j["cells"] = std::move(rows);
  return j;
}

CrashTestReport run_crashtest(const CrashTestOptions& options) {
#ifdef _WIN32
  throw std::runtime_error("crashtest needs a POSIX shell to kill children");
#endif
  if (options.cigtool.empty()) {
    throw std::runtime_error("crashtest: no cigtool binary path");
  }

  // Golden run: same board, same trace, no checkpoint directory — no seams
  // fire, so this is the uninterrupted baseline every recovery must match
  // byte for byte.
  core::Framework framework(soc::resolve_board(options.board));
  const auto phases = workload::phasic_workload_phases(framework.board());
  const runtime::ReplayOptions replay_options;
  const auto golden = runtime::replay_phasic(framework, phases, replay_options);
  std::vector<std::string> golden_dumps;
  golden_dumps.reserve(golden.decision_log.size());
  for (const auto& record : golden.decision_log) {
    golden_dumps.push_back(record.dump());
  }
  const double golden_us = to_us(golden.adaptive_time);

  const std::vector<std::string>& seams =
      options.seams.empty() ? persist::crash_seams() : options.seams;
  const std::uint64_t occurrences =
      options.occurrences == 0 ? 1 : options.occurrences;

  fs::create_directories(options.scratch_dir);

  CrashTestReport report;
  report.samples = golden_dumps.size();

  for (const std::string& seam : seams) {
    for (std::uint64_t nth = 1; nth <= occurrences; ++nth) {
      CrashTestCell cell;
      cell.seam = seam;
      cell.nth = nth;

      const fs::path dir =
          fs::path(options.scratch_dir) / cell_dir_name(seam, nth);
      std::error_code ec;
      fs::remove_all(dir, ec);
      fs::create_directories(dir);

      const std::string common_args =
          " runtime --board " + shell_quote(options.board) +
          " --checkpoint-dir " + shell_quote(dir.string()) +
          " --checkpoint-every " +
          std::to_string(options.snapshot_every) + " --no-static";

      // Phase 1: run armed to die at the n-th hit of the seam.
      const std::string crash_cmd =
          "CIG_CRASH_AT=" + shell_quote(seam + ":" + std::to_string(nth)) +
          " " + shell_quote(options.cigtool) + common_args + " > " +
          shell_quote((dir / "crash.log").string()) + " 2>&1";
      cell.crash_exit = run_child(crash_cmd);

      if (cell.crash_exit == 0) {
        // The run finished before the armed hit count was reached — this
        // (seam, nth) pair is unreachable on this trace. Not a violation.
        cell.detail = "seam never fired; run completed";
      } else if (cell.crash_exit != kCrashExitCode) {
        cell.violation = true;
        cell.detail = "crash child failed unexpectedly (exit " +
                      std::to_string(cell.crash_exit) + ")";
      } else {
        cell.exercised = true;

        // Phase 2: restart over the same checkpoint directory, seam-free,
        // and dump the full decision log for comparison.
        const fs::path decisions_path = dir / "decisions.json";
        const std::string recover_cmd =
            shell_quote(options.cigtool) + common_args + " --decisions-out " +
            shell_quote(decisions_path.string()) + " > " +
            shell_quote((dir / "recover.log").string()) + " 2>&1";
        cell.recover_exit = run_child(recover_cmd);

        // Invariant 1: restart succeeds. Exit 3 is the documented "recovery
        // discarded torn state" outcome; anything else non-zero is a broken
        // restart (which includes loading checksum-invalid state, were that
        // possible — persist/ rejects it and the run would cold-start).
        if (cell.recover_exit != 0 && cell.recover_exit != 3) {
          cell.violation = true;
          cell.detail = "recovery failed (exit " +
                        std::to_string(cell.recover_exit) + ")";
        } else {
          cell.torn_recovered = cell.recover_exit == 3;
          try {
            const Json doc = parse_file(decisions_path);
            const auto& persist_stats = doc.at("persist");
            const auto torn = static_cast<std::uint64_t>(
                persist_stats.number_or("torn_discarded", 0));
            cell.resumed = doc.bool_or("resumed", false);

            // Exit 3 must mean exactly "torn state was discarded".
            if ((torn > 0) != cell.torn_recovered) {
              cell.violation = true;
              cell.detail = "exit code " + std::to_string(cell.recover_exit) +
                            " disagrees with persist.torn_discarded=" +
                            std::to_string(torn);
            } else {
              // Invariant 3: decisions byte-identical to the golden run.
              const auto& decisions = doc.at("decisions").as_array();
              if (decisions.size() != golden_dumps.size()) {
                cell.violation = true;
                cell.detail = "decision count " +
                              std::to_string(decisions.size()) + " != golden " +
                              std::to_string(golden_dumps.size());
              } else {
                std::size_t diverged = decisions.size();
                for (std::size_t i = 0; i < decisions.size(); ++i) {
                  if (decisions[i].dump() != golden_dumps[i]) {
                    diverged = i;
                    break;
                  }
                }
                const double recovered_us = doc.number_or("adaptive_us", -1.0);
                if (diverged != decisions.size()) {
                  cell.violation = true;
                  cell.detail =
                      "decision " + std::to_string(diverged) +
                      " diverges from golden after restore";
                } else if (recovered_us != golden_us) {
                  cell.violation = true;
                  cell.detail = "adaptive_us " + std::to_string(recovered_us) +
                                " != golden " + std::to_string(golden_us);
                } else {
                  cell.identical = true;
                  cell.detail =
                      std::string(cell.resumed ? "resumed" : "cold start") +
                      (cell.torn_recovered ? ", torn tail discarded" : "") +
                      ", decisions identical";
                }
              }
            }
          } catch (const std::exception& e) {
            cell.violation = true;
            cell.detail = std::string("decisions file unreadable: ") + e.what();
          }
        }
      }

      if (cell.exercised) ++report.exercised;
      if (cell.violation) ++report.violations;
      if (cell.torn_recovered) ++report.torn_recoveries;
      CIG_LOG_C(cell.violation ? ::cig::LogLevel::Warn : ::cig::LogLevel::Info,
                "crashtest",
                cell.seam << " hit " << cell.nth << ": " << cell.detail);
      report.cells.push_back(std::move(cell));
    }
  }
  return report;
}

}  // namespace cig::fault
