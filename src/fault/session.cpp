#include "fault/session.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "support/assert.h"
#include "support/rng.h"

namespace cig::fault {

namespace {

// Deterministic non-protocol bytes: printable junk of a seeded length. No
// newline (the transport frames lines), no quotes that could accidentally
// complete a JSON string.
std::string garbage_line(Rng& rng) {
  static const char alphabet[] =
      "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ"
      "0123456789{}[]:,<>#$%&*+-=/";
  const std::size_t len = 8 + static_cast<std::size_t>(rng.below(33));
  std::string line;
  line.reserve(len);
  for (std::size_t i = 0; i < len; ++i) {
    line.push_back(alphabet[rng.below(sizeof(alphabet) - 1)]);
  }
  return line;
}

}  // namespace

const char* session_fault_kind_name(SessionFaultKind kind) {
  switch (kind) {
    case SessionFaultKind::TruncatedLine: return "truncated_line";
    case SessionFaultKind::GarbageLine: return "garbage_line";
    case SessionFaultKind::FloodBurst: return "flood_burst";
    case SessionFaultKind::StalledSession: return "stalled_session";
    case SessionFaultKind::MidBatchDisconnect: return "mid_batch_disconnect";
  }
  return "?";
}

void SessionFaultMetrics::count(SessionFaultKind kind) {
  ++by_kind[static_cast<std::size_t>(kind)];
  ++total;
}

void SessionFaultMetrics::export_to(sim::StatRegistry& registry) const {
  registry.set("fault.session.total", static_cast<double>(total));
  for (std::size_t k = 0; k < kSessionFaultKindCount; ++k) {
    registry.set(std::string("fault.session.") +
                     session_fault_kind_name(
                         static_cast<SessionFaultKind>(k)),
                 static_cast<double>(by_kind[k]));
  }
  registry.set("fault.session.mutated_lines",
               static_cast<double>(mutated_lines));
  registry.set("fault.session.injected_lines",
               static_cast<double>(injected_lines));
  registry.set("fault.session.dropped_lines",
               static_cast<double>(dropped_lines));
  registry.set("fault.session.disconnects",
               static_cast<double>(disconnects));
}

SessionFaultInjector::SessionFaultInjector(
    std::vector<SessionFaultSpec> specs, std::uint64_t seed)
    : specs_(std::move(specs)), seed_(seed) {
  for (const SessionFaultSpec& spec : specs_) {
    CIG_EXPECTS(spec.probability >= 0.0 && spec.probability <= 1.0);
    CIG_EXPECTS(spec.magnitude >= 0.0);
  }
}

void SessionFaultInjector::set_flood_target(std::string tenant,
                                            std::string board) {
  flood_tenant_ = std::move(tenant);
  flood_board_ = std::move(board);
}

std::uint64_t SessionFaultInjector::stream_seed(
    std::size_t spec_index, std::uint64_t line_index) const {
  // Same splitmix64 chain as FaultInjector::stream_seed: every draw stream
  // is a pure function of its coordinates.
  std::uint64_t state = seed_;
  (void)splitmix64(state);
  state ^= 0x9E3779B97F4A7C15ull * (spec_index + 1);
  (void)splitmix64(state);
  state ^= line_index;
  return splitmix64(state);
}

bool SessionFaultInjector::fires(const SessionFaultSpec& spec,
                                 std::size_t spec_index,
                                 std::uint64_t line_index) const {
  if (line_index < spec.first_line || line_index > spec.last_line) {
    return false;
  }
  if (spec.probability >= 1.0) return true;
  Rng rng(stream_seed(spec_index, line_index));
  return rng.uniform() < spec.probability;
}

MutatedStream SessionFaultInjector::mutate(
    const std::vector<std::string>& lines) {
  MutatedStream out;
  out.sessions.emplace_back();
  std::uint64_t drop_until = 0;  // base-line index the current stall ends at

  for (std::uint64_t i = 0; i < lines.size(); ++i) {
    if (i < drop_until) {
      // Lost to an active stall: the line never reaches the daemon.
      ++metrics_.dropped_lines;
      continue;
    }
    std::string line = lines[i];
    bool drop_this = false;

    for (std::size_t s = 0; s < specs_.size(); ++s) {
      const SessionFaultSpec& spec = specs_[s];
      if (!fires(spec, s, i)) continue;
      Rng rng(stream_seed(s, i) ^ 0x5E55ull);
      switch (spec.kind) {
        case SessionFaultKind::TruncatedLine: {
          const double keep_frac =
              std::clamp(spec.magnitude, 0.0, 1.0);
          const std::size_t keep = std::max<std::size_t>(
              1, static_cast<std::size_t>(
                     std::floor(static_cast<double>(line.size()) *
                                keep_frac)));
          if (keep < line.size()) {
            line.resize(keep);
            ++metrics_.mutated_lines;
            metrics_.count(spec.kind);
          }
          break;
        }
        case SessionFaultKind::GarbageLine: {
          out.sessions.back().push_back(garbage_line(rng));
          ++metrics_.injected_lines;
          metrics_.count(spec.kind);
          break;
        }
        case SessionFaultKind::FloodBurst: {
          const std::uint64_t burst = std::max<std::uint64_t>(
              1, static_cast<std::uint64_t>(spec.magnitude));
          // The flood registers itself at the never-shed priority so the
          // burst exercises admission control instead of dying as
          // unknown-tenant rejects, then hammers heavy low-class samples.
          out.sessions.back().push_back(
              "{\"op\":\"hello\",\"tenant\":\"" + flood_tenant_ +
              "\",\"board\":\"" + flood_board_ + "\",\"priority\":3}");
          for (std::uint64_t b = 0; b < burst; ++b) {
            out.sessions.back().push_back(
                "{\"op\":\"sample\",\"tenant\":\"" + flood_tenant_ +
                "\",\"heavy\":true,\"iterations\":4,\"priority\":0}");
          }
          metrics_.injected_lines += burst + 1;
          metrics_.count(spec.kind);
          break;
        }
        case SessionFaultKind::StalledSession: {
          // The client hangs: this line and the next magnitude-1 lines are
          // lost, and the connection is torn down.
          const std::uint64_t lost = std::max<std::uint64_t>(
              1, static_cast<std::uint64_t>(spec.magnitude));
          drop_until = i + lost;
          drop_this = true;
          ++metrics_.disconnects;
          metrics_.count(spec.kind);
          if (!out.sessions.back().empty()) out.sessions.emplace_back();
          break;
        }
        case SessionFaultKind::MidBatchDisconnect: {
          // Clean teardown before this line; the client reconnects and
          // resumes (the daemon keeps tenant state across sessions).
          ++metrics_.disconnects;
          metrics_.count(spec.kind);
          if (!out.sessions.back().empty()) out.sessions.emplace_back();
          break;
        }
      }
      if (drop_this) break;
    }

    if (drop_this) {
      ++metrics_.dropped_lines;
      continue;
    }
    out.sessions.back().push_back(std::move(line));
  }

  if (out.sessions.back().empty()) out.sessions.pop_back();
  out.metrics = metrics_;
  return out;
}

const std::vector<ServeScenario>& serve_scenarios() {
  static const std::vector<ServeScenario> catalogue = [] {
    std::vector<ServeScenario> list;

    {
      ServeScenario s;
      s.name = "serve-garbage";
      s.summary =
          "protocol confusion: garbage and truncated lines mixed into an "
          "otherwise healthy stream";
      s.specs = {
          {SessionFaultKind::GarbageLine, 0.20, 0, 0, UINT64_MAX},
          {SessionFaultKind::TruncatedLine, 0.15, 0.3, 0, UINT64_MAX},
      };
      s.max_reject_rate = 0.45;
      list.push_back(std::move(s));
    }
    {
      ServeScenario s;
      s.name = "serve-flood";
      s.summary =
          "runaway client: bursts of low-priority heavy samples that must "
          "be shed without hurting the well-behaved tenants";
      s.specs = {
          {SessionFaultKind::FloodBurst, 0.10, 8, 0, UINT64_MAX},
      };
      s.max_reject_rate = 0.60;
      s.expect_shed = true;
      list.push_back(std::move(s));
    }
    {
      ServeScenario s;
      s.name = "serve-disconnect";
      s.summary =
          "flaky transport: sessions torn down mid-batch, clients "
          "reconnect and resume";
      s.specs = {
          {SessionFaultKind::MidBatchDisconnect, 0.08, 0, 0, UINT64_MAX},
      };
      s.max_reject_rate = 0.10;
      list.push_back(std::move(s));
    }
    {
      ServeScenario s;
      s.name = "serve-stall";
      s.summary =
          "hung clients: sessions stall and drop request runs on the "
          "floor before reconnecting";
      s.specs = {
          {SessionFaultKind::StalledSession, 0.05, 6, 0, UINT64_MAX},
      };
      s.max_reject_rate = 0.30;
      list.push_back(std::move(s));
    }
    {
      ServeScenario s;
      s.name = "serve-storm";
      s.summary =
          "everything at once: garbage, truncation, floods, stalls and "
          "disconnects against one daemon";
      s.specs = {
          {SessionFaultKind::GarbageLine, 0.10, 0, 0, UINT64_MAX},
          {SessionFaultKind::TruncatedLine, 0.08, 0.3, 0, UINT64_MAX},
          {SessionFaultKind::FloodBurst, 0.06, 8, 0, UINT64_MAX},
          {SessionFaultKind::StalledSession, 0.03, 4, 0, UINT64_MAX},
          {SessionFaultKind::MidBatchDisconnect, 0.05, 0, 0, UINT64_MAX},
      };
      s.max_reject_rate = 0.70;
      s.expect_shed = true;
      list.push_back(std::move(s));
    }

    return list;
  }();
  return catalogue;
}

const ServeScenario& serve_scenario_by_name(const std::string& name) {
  for (const ServeScenario& scenario : serve_scenarios()) {
    if (scenario.name == name) return scenario;
  }
  std::string known;
  for (const ServeScenario& scenario : serve_scenarios()) {
    if (!known.empty()) known += ", ";
    known += scenario.name;
  }
  throw std::runtime_error("unknown serve scenario \"" + name +
                           "\" (known: " + known + ")");
}

bool is_serve_scenario(const std::string& name) {
  for (const ServeScenario& scenario : serve_scenarios()) {
    if (scenario.name == name) return true;
  }
  return false;
}

}  // namespace cig::fault
