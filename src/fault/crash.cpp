#include "fault/crash.h"

#include <cstdlib>
#include <string>

#include "persist/seam.h"
#include "support/log.h"

namespace cig::fault {

CrashInjector& CrashInjector::instance() {
  static CrashInjector injector;
  return injector;
}

void CrashInjector::arm(const std::string& seam, std::uint64_t nth,
                        CrashMode mode) {
  armed_ = true;
  seam_ = seam;
  nth_ = nth == 0 ? 1 : nth;
  hits_ = 0;
  mode_ = mode;
  persist::set_seam_hook(&CrashInjector::on_seam);
}

void CrashInjector::disarm() {
  armed_ = false;
  persist::set_seam_hook(nullptr);
}

void CrashInjector::on_seam(const char* seam) {
  CrashInjector& self = instance();
  if (!self.armed_ || self.seam_ != seam) return;
  if (++self.hits_ < self.nth_) return;
  if (self.mode_ == CrashMode::Throw) {
    // Disarm first: the recovery path under test must run seam-free, and a
    // crash inside recovery would otherwise recurse.
    const std::string name = self.seam_;
    self.disarm();
    throw CrashInjected(name);
  }
  // No destructors, no atexit, no stream flushing: everything not already
  // fsynced is lost, exactly like a power cut at this instruction.
  std::_Exit(kCrashExitCode);
}

bool CrashInjector::arm_from_env() {
  const char* spec = std::getenv("CIG_CRASH_AT");
  if (spec == nullptr || *spec == '\0') return false;
  std::string seam(spec);
  std::uint64_t nth = 1;
  const std::size_t colon = seam.rfind(':');
  if (colon != std::string::npos) {
    try {
      nth = std::stoull(seam.substr(colon + 1));
      seam = seam.substr(0, colon);
    } catch (const std::exception&) {
      // Not "<seam>:<number>" — treat the whole string as the seam name.
    }
  }
  arm(seam, nth, CrashMode::Exit);
  CIG_LOG_C(::cig::LogLevel::Info, "fault",
            "crash injection armed: seam " << seam << ", hit " << nth);
  return true;
}

}  // namespace cig::fault
