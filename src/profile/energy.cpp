#include "profile/energy.h"

namespace cig::profile {

Watts EnergyComparison::power_saving() const {
  const Watts baseline_power =
      baseline_time > 0 ? baseline_energy / baseline_time : 0;
  const Watts candidate_power =
      candidate_time > 0 ? candidate_energy / candidate_time : 0;
  return baseline_power - candidate_power;
}

double EnergyComparison::joules_per_second_saved() const {
  if (baseline_time <= 0) return 0;
  // Same amount of useful work in both runs; normalise the energy delta by
  // the baseline duration to get J saved per second of execution.
  return (baseline_energy - candidate_energy) / baseline_time;
}

double EnergyComparison::joules_per_second_saved_at(double frame_rate_hz,
                                                    Watts idle_power) const {
  const Joules per_frame = (baseline_energy - candidate_energy) -
                           idle_power * (baseline_time - candidate_time);
  return per_frame * frame_rate_hz;
}

EnergyComparison compare_energy(const comm::RunResult& baseline,
                                const comm::RunResult& candidate) {
  return EnergyComparison{.baseline_energy = baseline.energy,
                          .candidate_energy = candidate.energy,
                          .baseline_time = baseline.total,
                          .candidate_time = candidate.total};
}

}  // namespace cig::profile
