#include "profile/report.h"

#include <sstream>

namespace cig::profile {

std::string ProfileReport::to_string() const {
  std::ostringstream out;
  out << "profile: " << workload << " on " << board << " ["
      << comm::model_name(model) << "]\n";
  out << "  cpu L1 miss rate    : " << cpu_l1_miss_rate * 100 << " %\n";
  out << "  cpu LLC miss rate   : " << cpu_llc_miss_rate * 100 << " %\n";
  out << "  gpu L1 hit rate     : " << gpu_l1_hit_rate * 100 << " %\n";
  out << "  gpu LLC hit rate    : " << gpu_llc_hit_rate * 100 << " %\n";
  out << "  gpu transactions    : " << gpu_transactions << " x "
      << gpu_transaction_size << " B\n";
  out << "  kernel time         : " << format_time(kernel_time) << "\n";
  out << "  cpu time            : " << format_time(cpu_time) << "\n";
  out << "  copy time           : " << format_time(copy_time) << "\n";
  out << "  total time          : " << format_time(total_time) << "\n";
  out << "  gpu LL throughput   : " << format_bandwidth(gpu_ll_throughput)
      << "\n";
  out << "  cpu LL throughput   : " << format_bandwidth(cpu_ll_throughput)
      << "\n";
  out << "  energy              : " << energy << " J (" << average_power
      << " W)\n";
  return out.str();
}

Json ProfileReport::to_json() const {
  Json j;
  j["workload"] = Json(workload);
  j["board"] = Json(board);
  j["model"] = Json(std::string(comm::model_name(model)));
  j["iterations"] = Json(static_cast<double>(iterations));
  j["cpu_l1_miss_rate"] = Json(cpu_l1_miss_rate);
  j["cpu_llc_miss_rate"] = Json(cpu_llc_miss_rate);
  j["gpu_l1_hit_rate"] = Json(gpu_l1_hit_rate);
  j["gpu_llc_hit_rate"] = Json(gpu_llc_hit_rate);
  j["gpu_transactions"] = Json(gpu_transactions);
  j["gpu_transaction_size"] = Json(gpu_transaction_size);
  j["kernel_time"] = Json(kernel_time);
  j["cpu_time"] = Json(cpu_time);
  j["copy_time"] = Json(copy_time);
  j["total_time"] = Json(total_time);
  j["gpu_ll_throughput"] = Json(gpu_ll_throughput);
  j["cpu_ll_throughput"] = Json(cpu_ll_throughput);
  j["energy"] = Json(energy);
  j["average_power"] = Json(average_power);
  return j;
}

ProfileReport ProfileReport::from_json(const Json& j) {
  ProfileReport r;
  r.workload = j.string_or("workload", "");
  r.board = j.string_or("board", "");
  const std::string model_name = j.string_or("model", "SC");
  for (const comm::CommModel m :
       {comm::CommModel::StandardCopy, comm::CommModel::UnifiedMemory,
        comm::CommModel::ZeroCopy}) {
    if (model_name == comm::model_name(m)) r.model = m;
  }
  r.iterations = static_cast<std::uint32_t>(j.number_or("iterations", 1));
  r.cpu_l1_miss_rate = j.number_or("cpu_l1_miss_rate", 0);
  r.cpu_llc_miss_rate = j.number_or("cpu_llc_miss_rate", 0);
  r.gpu_l1_hit_rate = j.number_or("gpu_l1_hit_rate", 0);
  r.gpu_llc_hit_rate = j.number_or("gpu_llc_hit_rate", 0);
  r.gpu_transactions = j.number_or("gpu_transactions", 0);
  r.gpu_transaction_size = j.number_or("gpu_transaction_size", 0);
  r.kernel_time = j.number_or("kernel_time", 0);
  r.cpu_time = j.number_or("cpu_time", 0);
  r.copy_time = j.number_or("copy_time", 0);
  r.total_time = j.number_or("total_time", 0);
  r.gpu_ll_throughput = j.number_or("gpu_ll_throughput", 0);
  r.cpu_ll_throughput = j.number_or("cpu_ll_throughput", 0);
  r.energy = j.number_or("energy", 0);
  r.average_power = j.number_or("average_power", 0);
  return r;
}

}  // namespace cig::profile
