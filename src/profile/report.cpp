#include "profile/report.h"

#include <sstream>

namespace cig::profile {

std::string ProfileReport::to_string() const {
  std::ostringstream out;
  out << "profile: " << workload << " on " << board << " ["
      << comm::model_name(model) << "]\n";
  out << "  cpu L1 miss rate    : " << cpu_l1_miss_rate * 100 << " %\n";
  out << "  cpu LLC miss rate   : " << cpu_llc_miss_rate * 100 << " %\n";
  out << "  gpu L1 hit rate     : " << gpu_l1_hit_rate * 100 << " %\n";
  out << "  gpu LLC hit rate    : " << gpu_llc_hit_rate * 100 << " %\n";
  out << "  gpu transactions    : " << gpu_transactions << " x "
      << gpu_transaction_size << " B\n";
  out << "  kernel time         : " << format_time(kernel_time) << "\n";
  out << "  cpu time            : " << format_time(cpu_time) << "\n";
  out << "  copy time           : " << format_time(copy_time) << "\n";
  out << "  total time          : " << format_time(total_time) << "\n";
  out << "  gpu LL throughput   : " << format_bandwidth(gpu_ll_throughput)
      << "\n";
  out << "  cpu LL throughput   : " << format_bandwidth(cpu_ll_throughput)
      << "\n";
  out << "  energy              : " << energy << " J (" << average_power
      << " W)\n";
  return out.str();
}

}  // namespace cig::profile
