#include "profile/profiler.h"

namespace cig::profile {

Profiler::Profiler(soc::SoC& soc, comm::ExecOptions options)
    : soc_(soc), executor_(soc, options) {}

ProfileReport Profiler::profile(const workload::Workload& workload,
                                comm::CommModel model) {
  comm::RunResult raw;
  return profile(workload, model, raw);
}

ProfileReport Profiler::profile(const workload::Workload& workload,
                                comm::CommModel model, comm::RunResult& raw) {
  raw = executor_.run(workload, model);
  return report_from(workload, model, raw);
}

ProfileReport Profiler::sample(const workload::Workload& workload,
                               comm::CommModel model, comm::RunResult& raw) {
  raw = executor_.run_session(workload, model, /*warmup=*/0);
  return report_from(workload, model, raw);
}

ProfileReport Profiler::report_from(const workload::Workload& workload,
                                    comm::CommModel model,
                                    const comm::RunResult& raw) const {
  ProfileReport report;
  report.workload = workload.name;
  report.board = soc_.config().name;
  report.model = model;
  report.iterations = workload.iterations;
  report.cpu_l1_miss_rate = raw.cpu_l1_miss_rate;
  report.cpu_llc_miss_rate = raw.cpu_llc_miss_rate;
  report.gpu_l1_hit_rate = raw.gpu_l1_hit_rate;
  report.gpu_llc_hit_rate = raw.gpu_llc_hit_rate;
  report.gpu_transactions = raw.gpu_transactions / workload.iterations;
  report.gpu_transaction_size = raw.gpu_transaction_size;
  report.kernel_time = raw.kernel_time_per_iter();
  report.cpu_time = raw.cpu_time_per_iter();
  report.copy_time = raw.copy_time_per_iter();
  report.total_time = raw.total_per_iter();
  report.gpu_ll_throughput = raw.gpu_ll_throughput;
  report.cpu_ll_throughput = raw.cpu_ll_throughput;
  report.energy = raw.energy;
  report.average_power = raw.total > 0 ? raw.energy / raw.total : 0;
  return report;
}

}  // namespace cig::profile
