// Profile report: the "standard profiling tool" output the framework
// consumes (Fig. 2, left input). Field names mirror what nvprof / perf
// expose on real boards: per-cache hit/miss rates, transaction counts,
// kernel and copy times.
#pragma once

#include <string>

#include "comm/model.h"
#include "support/json.h"
#include "support/units.h"

namespace cig::profile {

struct ProfileReport {
  std::string workload;
  std::string board;
  comm::CommModel model = comm::CommModel::StandardCopy;
  std::uint32_t iterations = 1;

  // Cache behaviour (measured-phase rates).
  double cpu_l1_miss_rate = 0;
  double cpu_llc_miss_rate = 0;
  double gpu_l1_hit_rate = 0;
  double gpu_llc_hit_rate = 0;

  // GPU memory transactions (t_n and t_size in eqn 2).
  double gpu_transactions = 0;
  double gpu_transaction_size = 0;

  // Times (per iteration).
  Seconds kernel_time = 0;
  Seconds cpu_time = 0;
  Seconds copy_time = 0;
  Seconds total_time = 0;

  // Delivered bandwidths.
  BytesPerSecond gpu_ll_throughput = 0;
  BytesPerSecond cpu_ll_throughput = 0;

  // Energy over the measured phase.
  Joules energy = 0;
  Watts average_power = 0;

  std::string to_string() const;

  // Exact field-for-field round-trip (checkpoint/restore of the runtime
  // controller serializes the EWMA/window state as ProfileReports).
  Json to_json() const;
  static ProfileReport from_json(const Json& j);
};

}  // namespace cig::profile
