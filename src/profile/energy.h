// Energy comparison helper: the paper reports zero-copy's benefit as
// "joules saved per second of execution" relative to standard copy
// (Section IV-B/C: 0.12 J/s on Xavier, 0.09 J/s on TX2 for SH-WFS).
#pragma once

#include "comm/runresult.h"
#include "support/units.h"

namespace cig::profile {

struct EnergyComparison {
  Joules baseline_energy = 0;
  Joules candidate_energy = 0;
  Seconds baseline_time = 0;
  Seconds candidate_time = 0;

  // Average power delta (positive = candidate consumes less power).
  Watts power_saving() const;

  // Joules saved per second of (baseline) execution — the paper's metric.
  double joules_per_second_saved() const;

  // Energy saved per iteration-equivalent work.
  Joules energy_saving() const { return baseline_energy - candidate_energy; }

  // Joules saved per second when frames are processed at a fixed rate
  // (e.g. a 30 Hz camera): the faster model idles at `idle_power` for the
  // time it saves, so the net saving per frame is
  //   (E_base - E_cand) - idle_power * (t_base - t_cand),
  // multiplied by the frame rate. This is the paper's J/s metric
  // (Sections IV-B/C).
  double joules_per_second_saved_at(double frame_rate_hz,
                                    Watts idle_power) const;
};

EnergyComparison compare_energy(const comm::RunResult& baseline,
                                const comm::RunResult& candidate);

}  // namespace cig::profile
