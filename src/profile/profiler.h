// Profiler: runs a workload under its current communication model on the
// simulated SoC and produces a ProfileReport — the simulator-side stand-in
// for nvprof + tegrastats on a real board.
#pragma once

#include "comm/executor.h"
#include "profile/report.h"

namespace cig::profile {

class Profiler {
 public:
  explicit Profiler(soc::SoC& soc, comm::ExecOptions options = {});

  ProfileReport profile(const workload::Workload& workload,
                        comm::CommModel model);

  // Also returns the raw RunResult (used by benches that need timelines).
  ProfileReport profile(const workload::Workload& workload,
                        comm::CommModel model, comm::RunResult& raw);

  // Per-phase sampling for the online runtime (src/runtime): continues from
  // the *current* SoC state — no reset, no warmup — so consecutive samples
  // form a stream the controller's sliding window can ingest.
  ProfileReport sample(const workload::Workload& workload,
                       comm::CommModel model, comm::RunResult& raw);

  // Builds the report fields from an already-executed run.
  ProfileReport report_from(const workload::Workload& workload,
                            comm::CommModel model,
                            const comm::RunResult& raw) const;

  comm::Executor& executor() { return executor_; }

 private:
  soc::SoC& soc_;
  comm::Executor executor_;
};

}  // namespace cig::profile
