// Software coherence: cache-maintenance (flush / invalidate) cost model.
//
// Under standard copy, the runtime flushes the CPU LLC before a kernel
// launch (so the GPU observes produced data) and invalidates after (so the
// CPU observes results). The cost is dominated by writing dirty lines back
// to DRAM plus a fixed maintenance-operation overhead.
#pragma once

#include <cstdint>

#include "mem/cache.h"
#include "support/units.h"

namespace cig::coherence {

struct FlushCosts {
  Seconds op_overhead = microsec(3);        // driver + barrier fixed cost
  BytesPerSecond writeback_bw = GBps(20);   // dirty-line drain bandwidth
  Seconds per_line = nanosec(2);            // tag-walk cost per dirty line
};

struct FlushResult {
  std::uint64_t dirty_lines = 0;
  Bytes bytes_written = 0;
  Seconds time = 0;
};

class FlushEngine {
 public:
  explicit FlushEngine(FlushCosts costs) : costs_(costs) {}

  // Cleans all dirty lines of `cache` (writes them back, keeps them valid)
  // and returns the modelled cost.
  FlushResult flush(mem::SetAssocCache& cache) const;

  // Invalidates the whole cache (dirty lines written back first).
  FlushResult invalidate(mem::SetAssocCache& cache) const;

  // Ranged maintenance over [base, base+bytes).
  FlushResult invalidate_range(mem::SetAssocCache& cache, std::uint64_t base,
                               Bytes bytes) const;

  // Ranged clean (write back, keep valid) over [base, base+bytes).
  FlushResult clean_range(mem::SetAssocCache& cache, std::uint64_t base,
                          Bytes bytes) const;

  // Pure cost query (no cache mutation) for a known dirty-line count.
  Seconds cost_for(std::uint64_t dirty_lines, std::uint32_t line_bytes) const;

  const FlushCosts& costs() const { return costs_; }
  // Replaces the cost model (DVFS / thermal derating); no cache state here.
  void set_costs(const FlushCosts& costs) { costs_ = costs; }

 private:
  FlushCosts costs_;
};

}  // namespace cig::coherence
