// Hardware I/O-coherence port model (AGX Xavier-class).
//
// With I/O coherence the iGPU's pinned-memory reads are routed through a
// snooping port into the CPU cache hierarchy: a read that hits in the CPU
// LLC is served from there (at snoop bandwidth), otherwise it falls through
// to DRAM. GPU-side caching of the pinned space is still bypassed, which is
// why Xavier's ZC GPU throughput (32 GB/s) sits between TX2's uncached
// 1.3 GB/s and the cached 215 GB/s.
#pragma once

#include <cstdint>

#include "mem/cache.h"
#include "support/units.h"

namespace cig::coherence {

struct IoCoherenceConfig {
  BytesPerSecond snoop_bandwidth = GBps(32);  // coherent-port throughput
  Seconds snoop_latency = nanosec(180);       // extra hop over the fabric
};

struct SnoopCounters {
  std::uint64_t snoop_hits = 0;    // served from the CPU cache
  std::uint64_t snoop_misses = 0;  // fell through to DRAM
  Bytes bytes = 0;                 // total bytes moved over the port

  void reset() { *this = SnoopCounters{}; }
};

class IoCoherencePort {
 public:
  explicit IoCoherencePort(IoCoherenceConfig config) : config_(config) {}

  // Routes a device access of `size` bytes at `address` through the port.
  // `cpu_llc` may be null (port disabled / no snooping target), in which
  // case every access is a snoop miss. Returns true on snoop hit.
  bool device_access(std::uint64_t address, std::uint32_t size,
                     mem::AccessKind kind, mem::SetAssocCache* cpu_llc);

  const IoCoherenceConfig& config() const { return config_; }
  // Replaces the port timing (DVFS / thermal derating); counters survive.
  void set_config(const IoCoherenceConfig& config) { config_ = config; }
  const SnoopCounters& counters() const { return counters_; }
  void reset_counters() { counters_.reset(); }

  // Port-limited transfer time for `bytes` moved through the fabric.
  Seconds transfer_time(Bytes bytes) const {
    return static_cast<double>(bytes) / config_.snoop_bandwidth;
  }

 private:
  IoCoherenceConfig config_;
  SnoopCounters counters_;
};

}  // namespace cig::coherence
