#include "coherence/flush.h"

namespace cig::coherence {

Seconds FlushEngine::cost_for(std::uint64_t dirty_lines,
                              std::uint32_t line_bytes) const {
  const double bytes =
      static_cast<double>(dirty_lines) * static_cast<double>(line_bytes);
  return costs_.op_overhead + bytes / costs_.writeback_bw +
         static_cast<double>(dirty_lines) * costs_.per_line;
}

FlushResult FlushEngine::flush(mem::SetAssocCache& cache) const {
  FlushResult result;
  result.dirty_lines = cache.flush_dirty();
  result.bytes_written = result.dirty_lines * cache.geometry().line;
  result.time = cost_for(result.dirty_lines, cache.geometry().line);
  return result;
}

FlushResult FlushEngine::invalidate(mem::SetAssocCache& cache) const {
  FlushResult result;
  result.dirty_lines = cache.invalidate_all();
  result.bytes_written = result.dirty_lines * cache.geometry().line;
  result.time = cost_for(result.dirty_lines, cache.geometry().line);
  return result;
}

FlushResult FlushEngine::invalidate_range(mem::SetAssocCache& cache,
                                          std::uint64_t base,
                                          Bytes bytes) const {
  FlushResult result;
  result.dirty_lines = cache.invalidate_range(base, bytes);
  result.bytes_written = result.dirty_lines * cache.geometry().line;
  result.time = cost_for(result.dirty_lines, cache.geometry().line);
  return result;
}

FlushResult FlushEngine::clean_range(mem::SetAssocCache& cache,
                                     std::uint64_t base, Bytes bytes) const {
  FlushResult result;
  result.dirty_lines = cache.clean_range(base, bytes);
  result.bytes_written = result.dirty_lines * cache.geometry().line;
  result.time = cost_for(result.dirty_lines, cache.geometry().line);
  return result;
}

}  // namespace cig::coherence
