#include "coherence/page_migration.h"

#include "support/assert.h"

namespace cig::coherence {

MigrationResult PageMigrationEngine::touch_range(Owner accessor,
                                                 std::uint64_t base,
                                                 Bytes bytes) {
  MigrationResult result;
  if (bytes == 0) return result;
  const Bytes page = config_.page_size;
  const std::uint64_t first = base / page;
  const std::uint64_t last = (base + bytes - 1) / page;
  result.pages_touched = last - first + 1;

  std::uint64_t run = 0;  // consecutive pages needing migration
  auto close_run = [&] {
    if (run == 0) return;
    // One batched fault services up to batch_pages consecutive pages.
    result.faults += (run + config_.batch_pages - 1) / config_.batch_pages;
    run = 0;
  };

  for (std::uint64_t p = first; p <= last; ++p) {
    const auto it = owner_.find(p);
    const Owner current = it == owner_.end() ? Owner::Host : it->second;
    if (current != accessor) {
      owner_[p] = accessor;
      ++result.pages_migrated;
      ++run;
    } else {
      close_run();
    }
  }
  close_run();

  result.bytes_moved = result.pages_migrated * page;
  result.time = static_cast<double>(result.faults) * config_.fault_latency +
                static_cast<double>(result.bytes_moved) / config_.migration_bw;
  return result;
}

void PageMigrationEngine::reset() { owner_.clear(); }

Owner PageMigrationEngine::owner_of(std::uint64_t address) const {
  const auto it = owner_.find(address / config_.page_size);
  return it == owner_.end() ? Owner::Host : it->second;
}

}  // namespace cig::coherence
