#include "coherence/io_coherence.h"

namespace cig::coherence {

bool IoCoherencePort::device_access(std::uint64_t address, std::uint32_t size,
                                    mem::AccessKind kind,
                                    mem::SetAssocCache* cpu_llc) {
  counters_.bytes += size;
  if (cpu_llc == nullptr) {
    ++counters_.snoop_misses;
    return false;
  }
  // A device write must invalidate/own the line; a read snoops it. Either
  // way the CPU LLC is probed. We model a write as updating the line in
  // place (the port is coherent), a read as a plain lookup.
  const bool hit = cpu_llc->probe(address);
  if (hit) {
    // Keep LRU state realistic: a snoop hit touches the line.
    cpu_llc->access(address, kind);
    ++counters_.snoop_hits;
  } else {
    ++counters_.snoop_misses;
  }
  return hit;
}

}  // namespace cig::coherence
