// Unified-memory on-demand page migration (cudaMallocManaged-style).
//
// Under UM the first touch of a page by the "other" processor faults: the
// driver services the fault, migrates the page and resumes. Subsequent
// touches from the same side are free. Drivers batch faults and prefetch
// neighbouring pages; the model captures that with a batching factor and a
// streaming-migration bandwidth, which is why UM lands within a few percent
// of SC on real boards (the paper reports ±8%).
#pragma once

#include <cstdint>
#include <unordered_map>

#include "support/units.h"

namespace cig::coherence {

enum class Owner : std::uint8_t { Host, Device };

struct PageMigrationConfig {
  Bytes page_size = KiB(4);
  Seconds fault_latency = microsec(20);   // GPU fault service round-trip
  BytesPerSecond migration_bw = GBps(10); // page-move streaming bandwidth
  // Consecutive faulting pages serviced per fault round-trip (driver
  // batching + speculative prefetch of neighbours).
  std::uint32_t batch_pages = 16;
};

struct MigrationResult {
  std::uint64_t pages_touched = 0;
  std::uint64_t pages_migrated = 0;
  std::uint64_t faults = 0;       // fault round-trips after batching
  Bytes bytes_moved = 0;
  Seconds time = 0;
};

class PageMigrationEngine {
 public:
  explicit PageMigrationEngine(PageMigrationConfig config) : config_(config) {}

  // Declares that `accessor` touches [base, base+bytes). Pages not already
  // owned by `accessor` migrate; the result carries the modelled cost.
  MigrationResult touch_range(Owner accessor, std::uint64_t base, Bytes bytes);

  // Resets all ownership to Host (fresh managed allocation state).
  void reset();

  std::uint64_t pages_tracked() const { return owner_.size(); }
  Owner owner_of(std::uint64_t address) const;

  const PageMigrationConfig& config() const { return config_; }
  // Replaces the timing model (DVFS / thermal derating); the page table —
  // which pages live where — is state, not configuration, and survives.
  void set_config(const PageMigrationConfig& config) { config_ = config; }

 private:
  PageMigrationConfig config_;
  // Sparse page table: absent page => owned by Host (allocation default).
  std::unordered_map<std::uint64_t, Owner> owner_;
};

}  // namespace cig::coherence
