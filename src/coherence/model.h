// Coherence capability descriptors.
//
// The communication model chosen by an application interacts with what the
// SoC can actually guarantee:
//  - SwFlush: no hardware path between CPU caches and the iGPU; coherence
//    for SC/UM is obtained by flushing/invalidating around kernel launches,
//    and zero-copy forces the affected last-level caches OFF (Nano, TX2).
//  - HwIoCoherent: the iGPU reads snoop the CPU cache hierarchy through an
//    I/O-coherent port, so the CPU LLC stays ON under zero-copy and only
//    the GPU LLC is bypassed (AGX Xavier).
#pragma once

#include <cstdint>

#include "support/units.h"

namespace cig::coherence {

enum class Capability : std::uint8_t {
  SwFlush,        // software-managed coherence only
  HwIoCoherent,   // hardware I/O coherence (one-way: GPU snoops CPU)
};

inline const char* capability_name(Capability c) {
  switch (c) {
    case Capability::SwFlush: return "sw-flush";
    case Capability::HwIoCoherent: return "hw-io-coherent";
  }
  return "?";
}

// Which last-level caches remain enabled when the zero-copy model maps a
// pinned allocation. Derived from the capability, matching the paper's
// observations (Fig. 1 and Section IV-A).
struct ZeroCopyCacheEffect {
  bool cpu_llc_enabled = false;
  bool gpu_llc_enabled = false;
};

inline ZeroCopyCacheEffect zero_copy_effect(Capability c) {
  switch (c) {
    case Capability::SwFlush:
      return ZeroCopyCacheEffect{.cpu_llc_enabled = false,
                                 .gpu_llc_enabled = false};
    case Capability::HwIoCoherent:
      return ZeroCopyCacheEffect{.cpu_llc_enabled = true,
                                 .gpu_llc_enabled = false};
  }
  return {};
}

}  // namespace cig::coherence
