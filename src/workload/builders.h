// Builders for the paper's three micro-benchmark workloads (Section III-B).
// Sizes are derived from the target board's cache geometry so each
// micro-benchmark stresses the component it is meant to isolate
// ("selectivity" property) at a steady state ("stressing capability").
#pragma once

#include <vector>

#include "soc/board.h"
#include "workload/task.h"

namespace cig::workload {

// MB1 — peak GPU LL-L1 cache throughput. GPU: repeated 2D reduction with
// linear loads over a matrix sized to live in the GPU LLC (but exceed L1);
// CPU: dependent sqrt/div/mul chain on a single shared address. CPU and GPU
// work are balanced against each other.
Workload mb1_workload(const soc::BoardConfig& board);

// MB2 — GPU cache-threshold sweep. The kernel does ld+fma+st over the first
// `fraction` of a fixed array (16x the GPU LLC), several passes per launch.
Workload mb2_workload(const soc::BoardConfig& board, double fraction);

// MB2 (CPU variant) — used to extrapolate CPU_Cache_Threshold: fixed
// arithmetic + L1-resident data, with `fraction` of an LLC-band array
// touched per run (the mix drives eqn-1 cache usage).
Workload mb2_cpu_workload(const soc::BoardConfig& board, double fraction);

// Sweep points used by the framework (1/16000 ... 1/2, log-spaced).
std::vector<double> mb2_fractions();

// Mix fractions for the CPU-side sweep (linear in the interesting band).
std::vector<double> mb2_cpu_fractions();

// MB3 — balanced, cache-independent CPU+GPU workload on 2^27 floats
// (512 MB) with sparse GPU accesses (maximum miss rate) and full overlap
// capability. `scale_down` divides the simulated footprint while keeping
// reported times at the logical size (time_scale compensates).
Workload mb3_workload(const soc::BoardConfig& board,
                      std::uint32_t scale_down = 8);

}  // namespace cig::workload
