// Builders for the paper's three micro-benchmark workloads (Section III-B).
// Sizes are derived from the target board's cache geometry so each
// micro-benchmark stresses the component it is meant to isolate
// ("selectivity" property) at a steady state ("stressing capability").
#pragma once

#include <vector>

#include "soc/board.h"
#include "workload/task.h"

namespace cig::workload {

// MB1 — peak GPU LL-L1 cache throughput. GPU: repeated 2D reduction with
// linear loads over a matrix sized to live in the GPU LLC (but exceed L1);
// CPU: dependent sqrt/div/mul chain on a single shared address. CPU and GPU
// work are balanced against each other.
Workload mb1_workload(const soc::BoardConfig& board);

// MB2 — GPU cache-threshold sweep. The kernel does ld+fma+st over the first
// `fraction` of a fixed array (16x the GPU LLC), several passes per launch.
Workload mb2_workload(const soc::BoardConfig& board, double fraction);

// MB2 (CPU variant) — used to extrapolate CPU_Cache_Threshold: fixed
// arithmetic + L1-resident data, with `fraction` of an LLC-band array
// touched per run (the mix drives eqn-1 cache usage).
Workload mb2_cpu_workload(const soc::BoardConfig& board, double fraction);

// Sweep points used by the framework (1/16000 ... 1/2, log-spaced).
std::vector<double> mb2_fractions();

// Mix fractions for the CPU-side sweep (linear in the interesting band).
std::vector<double> mb2_cpu_fractions();

// MB3 — balanced, cache-independent CPU+GPU workload on 2^27 floats
// (512 MB) with sparse GPU accesses (maximum miss rate) and full overlap
// capability. `scale_down` divides the simulated footprint while keeping
// reported times at the logical size (time_scale compensates).
Workload mb3_workload(const soc::BoardConfig& board,
                      std::uint32_t scale_down = 8);

// --- phasic workload (for the adaptive runtime) -----------------------------
// Alternating cache-light / cache-heavy phases of the MB2-style ld+fma+st
// kernel, with real per-iteration copies so SC pays transfer costs. The
// phase intensities scale with the board's ZC-path bandwidth (uncached pinned
// path on SwFlush boards, I/O-coherent snoop port otherwise), so light
// phases sit well inside zone 1 under every model while heavy phases are
// cache-bound enough that ZC loses distinctly — the regime contrast the
// online controller is meant to chase.

struct PhasicConfig {
  std::uint32_t phase_pairs = 2;        // light+heavy pairs in the trace
  std::uint32_t samples_per_phase = 48; // control periods per phase
  std::uint32_t iterations_per_sample = 1;
  // Kernel LL demand as a multiple of the board's ZC-path bandwidth:
  // light keeps ZC usage ~2% (deep zone 1), heavy drives the ZC path 4x
  // past saturation (zone 3 under SC normalisation as well).
  double light_demand_factor = 0.02;
  double heavy_demand_factor = 4.0;
};

// One phase of a phasic run: `samples` control periods, each executing
// `workload.iterations` producer/consumer iterations.
struct PhasicPhase {
  Workload workload;
  std::uint32_t samples = 1;
  bool cache_heavy = false;
};

// Effective bandwidth of the board's zero-copy shared path (what the MB1 ZC
// normalisation peak tracks).
BytesPerSecond zc_path_bandwidth(const soc::BoardConfig& board);

// Single phase workload: MB2-style kernel over `span` bytes tuned so the
// LL demand is `demand` bytes/s, plus h2d/d2h copies of the span.
Workload phasic_phase_workload(const soc::BoardConfig& board, Bytes span,
                               BytesPerSecond demand, bool cache_heavy,
                               std::uint32_t iterations);

// The alternating light/heavy trace (light first).
std::vector<PhasicPhase> phasic_workload_phases(const soc::BoardConfig& board,
                                                const PhasicConfig& config = {});

// ±epsilon oscillation around the ZC-path saturation boundary: the kernel's
// LL demand flips between mid*(1-eps) and mid*(1+eps) of the ZC-path
// bandwidth every phase. With eps below the controller's hysteresis margin
// the dead band must absorb every flip — the non-flap fixture for the
// oscillation test and `cigtool runtime --trace oscillation`.
struct OscillationConfig {
  std::uint32_t flips = 24;              // boundary crossings in the trace
  std::uint32_t samples_per_phase = 4;   // control periods between flips
  std::uint32_t iterations_per_sample = 1;
  // Demand mid-point as a fraction of the *configured* path bandwidth. The
  // eqn-2 normaliser is the *measured* MB1 ZC peak — about half the
  // configured figure on the Jetson presets — so 0.30 configured lands the
  // measured usage at ~60%, the ZC saturation boundary.
  double mid_factor = 0.30;
  double epsilon = 0.10;  // relative amplitude (< hysteresis margin_frac)
};

std::vector<PhasicPhase> oscillation_workload_phases(
    const soc::BoardConfig& board, const OscillationConfig& config = {});

}  // namespace cig::workload
