// Trace-driven workloads: record the memory accesses a *real* computation
// performs (through an instrumented array), then replay the trace against a
// simulated board's hierarchy.
//
// The PatternSpec generators approximate a kernel's behaviour symbolically;
// tracing removes the approximation for code you can run on the host:
//
//   TraceRecorder recorder;
//   std::vector<float> image = ...;
//   TracedArray<float> traced(image, /*base=*/0x1000'0000, recorder);
//   my_real_filter(traced);                     // runs unchanged
//   auto trace = recorder.coalesced(64);        // warp/line coalescing
//   trace.replay([&](auto& a) { hierarchy.access(a); });
//
// Traces can also be summarised into the statistics the perf model needs
// (footprint, read/write mix, line-granular access count).
#pragma once

#include <cstdint>
#include <vector>

#include "mem/access.h"
#include "mem/stream.h"

namespace cig::workload {

class TraceRecorder {
 public:
  void record(std::uint64_t address, std::uint32_t size,
              mem::AccessKind kind);

  const std::vector<mem::MemoryAccess>& trace() const { return trace_; }
  std::size_t size() const { return trace_.size(); }
  bool empty() const { return trace_.empty(); }
  void clear() { trace_.clear(); }

  // Replays every access into the sink, in recorded order.
  void replay(const mem::AccessSink& sink) const;

  // Replays the trace as full (plus one trailing partial) AccessBlocks —
  // same order as replay(), batched for the block hot path
  // (MemoryHierarchy::access_block). Templated so the batching loop inlines
  // into callers that pass a lambda directly; std::function sinks pay one
  // dispatch per block, not per access.
  template <typename BlockSink>
  void replay_blocks(BlockSink&& sink) const {
    mem::AccessBlock block;
    for (const auto& a : trace_) {
      block.push(a.address, a.size, a.kind);
      if (block.full()) {
        sink(block);
        block.clear();
      }
    }
    if (!block.empty()) sink(block);
  }

  // Returns a new recorder whose trace merges consecutive accesses that
  // fall in the same `line_bytes`-sized block (what a warp coalescer or a
  // CPU line fill does). Reads and writes never merge with each other.
  TraceRecorder coalesced(std::uint32_t line_bytes) const;

  // --- summary statistics -----------------------------------------------------
  std::uint64_t reads() const;
  std::uint64_t writes() const;
  Bytes requested_bytes() const;
  // Distinct lines touched at the given granularity.
  std::uint64_t unique_lines(std::uint32_t line_bytes) const;
  // [min address, one past max touched byte); {0,0} when empty.
  std::pair<std::uint64_t, std::uint64_t> address_range() const;

 private:
  std::vector<mem::MemoryAccess> trace_;
};

// Array wrapper that records every element access into a TraceRecorder.
// The wrapped storage is borrowed, not owned.
template <typename T>
class TracedArray {
 public:
  TracedArray(std::vector<T>& data, std::uint64_t base_address,
              TraceRecorder& recorder)
      : data_(data), base_(base_address), recorder_(recorder) {}

  // Write/read proxy so both sides of an assignment are captured.
  class Reference {
   public:
    Reference(TracedArray& array, std::size_t index)
        : array_(array), index_(index) {}

    operator T() const {  // NOLINT(google-explicit-constructor): proxy
      array_.recorder_.record(array_.address_of(index_), sizeof(T),
                              mem::AccessKind::Read);
      return array_.data_[index_];
    }

    Reference& operator=(T value) {
      array_.recorder_.record(array_.address_of(index_), sizeof(T),
                              mem::AccessKind::Write);
      array_.data_[index_] = value;
      return *this;
    }

    Reference& operator+=(T value) { return *this = T(*this) + value; }
    Reference& operator*=(T value) { return *this = T(*this) * value; }

   private:
    TracedArray& array_;
    std::size_t index_;
  };

  Reference operator[](std::size_t index) { return Reference(*this, index); }

  T read(std::size_t index) const {
    recorder_.record(address_of(index), sizeof(T), mem::AccessKind::Read);
    return data_[index];
  }

  std::size_t size() const { return data_.size(); }
  std::uint64_t base() const { return base_; }

 private:
  friend class Reference;
  std::uint64_t address_of(std::size_t index) const {
    return base_ + index * sizeof(T);
  }

  std::vector<T>& data_;
  std::uint64_t base_;
  TraceRecorder& recorder_;
};

}  // namespace cig::workload
