#include "workload/trace.h"

#include <algorithm>
#include <unordered_set>

#include "support/assert.h"

namespace cig::workload {

void TraceRecorder::record(std::uint64_t address, std::uint32_t size,
                           mem::AccessKind kind) {
  CIG_EXPECTS(size > 0);
  trace_.push_back(mem::MemoryAccess{address, size, kind});
}

void TraceRecorder::replay(const mem::AccessSink& sink) const {
  for (const auto& access : trace_) sink(access);
}

TraceRecorder TraceRecorder::coalesced(std::uint32_t line_bytes) const {
  CIG_EXPECTS(line_bytes > 0);
  TraceRecorder out;
  for (const auto& access : trace_) {
    const std::uint64_t line = access.address / line_bytes;
    if (!out.trace_.empty()) {
      auto& last = out.trace_.back();
      const std::uint64_t last_line = last.address / line_bytes;
      if (last_line == line && last.kind == access.kind) {
        // Same line, same direction: one coalesced transaction. Grow the
        // recorded size up to the line (bounded, so billing stays sane).
        const std::uint64_t end = std::max(
            last.address + last.size,
            access.address + static_cast<std::uint64_t>(access.size));
        const std::uint64_t begin = std::min(last.address, access.address);
        last.address = begin;
        last.size = static_cast<std::uint32_t>(
            std::min<std::uint64_t>(end - begin, line_bytes));
        continue;
      }
    }
    out.trace_.push_back(access);
  }
  return out;
}

std::uint64_t TraceRecorder::reads() const {
  return static_cast<std::uint64_t>(
      std::count_if(trace_.begin(), trace_.end(), [](const auto& a) {
        return a.kind == mem::AccessKind::Read;
      }));
}

std::uint64_t TraceRecorder::writes() const {
  return static_cast<std::uint64_t>(trace_.size()) - reads();
}

Bytes TraceRecorder::requested_bytes() const {
  Bytes total = 0;
  for (const auto& access : trace_) total += access.size;
  return total;
}

std::uint64_t TraceRecorder::unique_lines(std::uint32_t line_bytes) const {
  CIG_EXPECTS(line_bytes > 0);
  std::unordered_set<std::uint64_t> lines;
  for (const auto& access : trace_) {
    const std::uint64_t first = access.address / line_bytes;
    const std::uint64_t last =
        (access.address + access.size - 1) / line_bytes;
    for (std::uint64_t line = first; line <= last; ++line) lines.insert(line);
  }
  return lines.size();
}

std::pair<std::uint64_t, std::uint64_t> TraceRecorder::address_range() const {
  if (trace_.empty()) return {0, 0};
  std::uint64_t lo = ~0ull, hi = 0;
  for (const auto& access : trace_) {
    lo = std::min(lo, access.address);
    hi = std::max(hi, access.address + access.size);
  }
  return {lo, hi};
}

}  // namespace cig::workload
