#include "workload/task.h"

#include "support/assert.h"

namespace cig::workload {

void Workload::validate() const {
  CIG_EXPECTS(!name.empty());
  CIG_EXPECTS(iterations >= 1);
  CIG_EXPECTS(cpu.ops >= 0 && gpu.ops >= 0);
  CIG_EXPECTS(cpu.ops_per_cycle > 0);
  CIG_EXPECTS(gpu.utilization > 0 && gpu.utilization <= 1.0);
  CIG_EXPECTS(cpu.threads >= 1);
  CIG_EXPECTS(cpu.time_scale >= 1.0);
  CIG_EXPECTS(gpu.time_scale >= 1.0);
}

}  // namespace cig::workload
