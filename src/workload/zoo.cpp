#include "workload/zoo.h"

#include "support/assert.h"

namespace cig::workload {

namespace {
constexpr std::uint64_t kSharedBase = 0x1000'0000ull;
constexpr std::uint64_t kCpuScratch = 0x5000'0000ull;
constexpr std::uint64_t kGpuScratch = 0x6000'0000ull;
}  // namespace

Workload conv2d_workload(const soc::BoardConfig& board, std::uint32_t width,
                         std::uint32_t height, std::uint32_t kernel_size) {
  CIG_EXPECTS(kernel_size >= 3 && kernel_size % 2 == 1);
  Workload w;
  w.name = "conv2d";

  const Bytes image_bytes = static_cast<Bytes>(width) * height * 4;
  const double pixels = static_cast<double>(width) * height;
  const double taps = static_cast<double>(kernel_size) * kernel_size;

  // The CPU stages the frame into the shared buffer.
  w.cpu.name = "stage-frame";
  w.cpu.ops = pixels * 0.5;
  w.cpu.ops_per_cycle = 2.0;
  w.cpu.pattern = mem::PatternSpec{.kind = mem::PatternKind::Linear,
                                   .base = kSharedBase,
                                   .extent = image_bytes,
                                   .access_size = 64,
                                   .rw = mem::RwMix::WriteOnly,
                                   .passes = 1,
                                   .line_hint = board.cpu.l1.geometry.line};
  w.cpu.mlp = 8.0;

  // The GPU reads the shared frame once per tap row (the vertical halo
  // cannot be captured by L1 alone), accumulating into a private output.
  w.gpu.name = "conv2d-kernel";
  w.gpu.pattern = mem::PatternSpec{.kind = mem::PatternKind::Linear,
                                   .base = kSharedBase,
                                   .extent = image_bytes,
                                   .access_size = 4,
                                   .rw = mem::RwMix::ReadOnly,
                                   .passes = kernel_size,  // K row sweeps
                                   .line_hint = board.gpu.llc.geometry.line};
  w.gpu.private_pattern =
      mem::PatternSpec{.kind = mem::PatternKind::Linear,
                       .base = kGpuScratch,
                       .extent = image_bytes,
                       .access_size = 4,
                       .rw = mem::RwMix::WriteOnly,
                       .passes = 1,
                       .line_hint = board.gpu.llc.geometry.line};
  w.gpu.ops = pixels * taps * 2;  // one fma per tap
  w.gpu.utilization = 0.6;
  w.gpu.mlp = 128;

  w.h2d_bytes = image_bytes;
  w.d2h_bytes = image_bytes;
  w.iterations = 2;
  w.overlappable = false;  // output consumed as a whole
  w.validate();
  return w;
}

Workload histogram_workload(const soc::BoardConfig& board, Bytes input_bytes,
                            std::uint32_t bins) {
  CIG_EXPECTS(bins >= 2);
  Workload w;
  w.name = "histogram";

  const double elements = static_cast<double>(input_bytes) / 4.0;

  w.cpu.name = "produce-samples";
  w.cpu.ops = elements * 0.25;
  w.cpu.ops_per_cycle = 2.0;
  w.cpu.pattern = mem::PatternSpec{.kind = mem::PatternKind::Linear,
                                   .base = kSharedBase,
                                   .extent = input_bytes,
                                   .access_size = 64,
                                   .rw = mem::RwMix::WriteOnly,
                                   .passes = 1,
                                   .line_hint = board.cpu.l1.geometry.line};
  w.cpu.mlp = 8.0;

  // Streaming input reads + scattered bin updates (the bins stay resident
  // in the GPU caches; atomics modelled as the rmw traffic).
  w.gpu.name = "histogram-kernel";
  w.gpu.pattern = mem::PatternSpec{.kind = mem::PatternKind::Linear,
                                   .base = kSharedBase,
                                   .extent = input_bytes,
                                   .access_size = 4,
                                   .rw = mem::RwMix::ReadOnly,
                                   .passes = 1,
                                   .line_hint = board.gpu.llc.geometry.line};
  w.gpu.private_pattern =
      mem::PatternSpec{.kind = mem::PatternKind::Random,
                       .base = kGpuScratch,
                       .extent = static_cast<Bytes>(bins) * 4,
                       .access_size = 4,
                       .rw = mem::RwMix::ReadModifyWrite,
                       .count = static_cast<std::uint64_t>(elements),
                       .seed = 0x4157,
                       .line_hint = board.gpu.llc.geometry.line};
  w.gpu.ops = elements * 3;
  w.gpu.utilization = 0.4;
  w.gpu.mlp = 64;

  w.h2d_bytes = input_bytes;
  w.d2h_bytes = static_cast<Bytes>(bins) * 4;
  w.iterations = 2;
  w.overlappable = true;  // input chunks are independent
  w.validate();
  return w;
}

Workload saxpy_stream_workload(const soc::BoardConfig& board,
                               Bytes elements_bytes) {
  Workload w;
  w.name = "saxpy-stream";

  const double elements = static_cast<double>(elements_bytes) / 4.0;
  const Bytes half = elements_bytes / 2;

  w.cpu.name = "stream-half";
  w.cpu.ops = elements;
  w.cpu.ops_per_cycle = 2.0;
  w.cpu.pattern = mem::PatternSpec{.kind = mem::PatternKind::Linear,
                                   .base = kSharedBase,
                                   .extent = half,
                                   .access_size = 4,
                                   .rw = mem::RwMix::ReadModifyWrite,
                                   .passes = 1,
                                   .line_hint = board.cpu.l1.geometry.line};
  w.cpu.mlp = 8.0;

  w.gpu.name = "stream-other-half";
  w.gpu.pattern = mem::PatternSpec{.kind = mem::PatternKind::Linear,
                                   .base = kSharedBase + half,
                                   .extent = half,
                                   .access_size = 4,
                                   .rw = mem::RwMix::ReadModifyWrite,
                                   .passes = 1,
                                   .line_hint = board.gpu.llc.geometry.line};
  w.gpu.ops = elements;
  w.gpu.utilization = 0.5;
  w.gpu.mlp = 256;

  w.h2d_bytes = elements_bytes;
  w.d2h_bytes = elements_bytes;
  w.iterations = 1;
  w.overlappable = true;
  w.validate();
  return w;
}

Workload pointer_chase_workload(const soc::BoardConfig& board,
                                Bytes working_set) {
  Workload w;
  w.name = "pointer-chase";

  // One dependent access per node, nodes scattered over a working set in
  // the CPU LLC band.
  const std::uint64_t hops = working_set / 64;

  w.cpu.name = "list-walk";
  w.cpu.ops = static_cast<double>(hops) * 4;
  w.cpu.ops_per_cycle = 0.5;
  w.cpu.pattern = mem::PatternSpec{.kind = mem::PatternKind::Random,
                                   .base = kSharedBase,
                                   .extent = working_set,
                                   .access_size = 8,  // next pointer
                                   .rw = mem::RwMix::ReadOnly,
                                   .count = hops,
                                   .seed = 0xC7A5E,
                                   .line_hint = board.cpu.l1.geometry.line};
  w.cpu.private_pattern =
      mem::PatternSpec{.kind = mem::PatternKind::Linear,
                       .base = kCpuScratch,
                       .extent = KiB(8),
                       .access_size = 64,
                       .rw = mem::RwMix::ReadModifyWrite,
                       .passes = 16,
                       .line_hint = board.cpu.l1.geometry.line};
  w.cpu.mlp = 1.0;  // fully dependent

  w.gpu.name = "token-kernel";
  w.gpu.ops = 100000;
  w.gpu.utilization = 0.5;
  w.gpu.pattern = mem::PatternSpec{.kind = mem::PatternKind::Linear,
                                   .base = kSharedBase,
                                   .extent = KiB(64),
                                   .access_size = 4,
                                   .rw = mem::RwMix::ReadOnly,
                                   .passes = 1,
                                   .line_hint = board.gpu.llc.geometry.line};
  w.gpu.mlp = 64;

  w.h2d_bytes = KiB(64);
  w.d2h_bytes = KiB(4);
  w.iterations = 2;
  w.overlappable = false;
  w.validate();
  return w;
}

std::vector<std::pair<std::string, Workload>> workload_zoo(
    const soc::BoardConfig& board) {
  return {
      {"conv2d", conv2d_workload(board)},
      {"histogram", histogram_workload(board)},
      {"saxpy", saxpy_stream_workload(board)},
      {"chase", pointer_chase_workload(board)},
  };
}

}  // namespace cig::workload
