#include "workload/builders.h"

#include <algorithm>
#include <cmath>

#include "support/assert.h"

namespace cig::workload {

namespace {

// Disjoint logical address regions so shared and private streams never alias.
constexpr std::uint64_t kSharedBase = 0x1000'0000ull;
constexpr std::uint64_t kPrivateBase = 0x4000'0000ull;

}  // namespace

Workload mb1_workload(const soc::BoardConfig& board) {
  Workload w;
  w.name = "mb1-peak-cache-throughput";

  // Matrix sized to sit in the GPU LLC while exceeding the L1, so the
  // steady-state linear reduction measures LL-L1 throughput.
  const Bytes extent = std::max<Bytes>(board.gpu.l1.geometry.capacity * 2,
                                       board.gpu.llc.geometry.capacity * 3 / 4);
  constexpr std::uint32_t kPasses = 64;
  const double elements = static_cast<double>(extent) / 4.0;

  w.gpu.name = "reduction2d";
  w.gpu.pattern = mem::PatternSpec{.kind = mem::PatternKind::Linear,
                                   .base = kSharedBase,
                                   .extent = extent,
                                   .access_size = 4,
                                   .rw = mem::RwMix::ReadOnly,
                                   .passes = kPasses,
                                   .line_hint = board.gpu.llc.geometry.line};
  w.gpu.ops = elements * kPasses;  // one add per loaded element
  w.gpu.utilization = 0.5;
  w.gpu.mlp = 1024;  // throughput kernel: enough warps to hide all latency

  // CPU: K touches of one shared address, ~110 dependent FP ops per touch
  // (sqrt/div/mul chain). K chosen so the CPU routine and the GPU kernel
  // have comparable SC runtimes ("balanced", as in Fig. 5).
  const Seconds gpu_time_estimate =
      static_cast<double>(extent) * kPasses / board.gpu.llc.bandwidth;
  constexpr double kOpsPerTouch = 110.0;
  constexpr double kCpuOpc = 0.25;  // dependent-chain issue rate
  const double touch_time =
      kOpsPerTouch / (kCpuOpc * board.cpu_peak_ops_per_second());
  const auto touches = static_cast<std::uint64_t>(
      std::max(1.0, gpu_time_estimate / touch_time));

  w.cpu.name = "fp-chain";
  w.cpu.ops = kOpsPerTouch * static_cast<double>(touches);
  w.cpu.ops_per_cycle = kCpuOpc;
  w.cpu.mlp = 1.0;  // fully dependent
  w.cpu.pattern = mem::PatternSpec{.kind = mem::PatternKind::SingleLocation,
                                   .base = kSharedBase,
                                   .extent = 64,
                                   .access_size = 4,
                                   .rw = mem::RwMix::ReadModifyWrite,
                                   .count = touches,
                                   .line_hint = board.cpu.l1.geometry.line};

  w.h2d_bytes = extent;
  w.d2h_bytes = 64;
  w.iterations = 1;
  w.overlappable = true;
  w.validate();
  return w;
}

Workload mb2_workload(const soc::BoardConfig& board, double fraction) {
  CIG_EXPECTS(fraction > 0.0 && fraction <= 0.5);
  Workload w;
  w.name = "mb2-cache-threshold";

  // Fixed array: sized so the ZC-vs-SC divergence point lands where the
  // board's uncached/coherent-port bandwidth says it should (see DESIGN.md
  // calibration notes): SwFlush boards use 8 MiB, I/O-coherent 32 MiB.
  const Bytes extent = board.capability == coherence::Capability::HwIoCoherent
                           ? MiB(32)
                           : MiB(8);
  const Bytes span = std::max<Bytes>(
      64, static_cast<Bytes>(static_cast<double>(extent) * fraction));
  constexpr std::uint32_t kPasses = 3;
  const double elements = static_cast<double>(span) / 4.0;

  w.gpu.name = "fma-sweep";
  w.gpu.pattern = mem::PatternSpec{.kind = mem::PatternKind::Linear,
                                   .base = kSharedBase,
                                   .extent = span,
                                   .access_size = 4,
                                   .rw = mem::RwMix::ReadModifyWrite,
                                   .passes = kPasses,
                                   .line_hint = board.gpu.llc.geometry.line};
  // ld + fma + st plus the two locally-calculated operands ~ 6 ops/element.
  w.gpu.ops = elements * kPasses * 6.0;
  w.gpu.utilization = 0.4;
  w.gpu.mlp = 1024;  // streaming sweep saturates the memory pipeline

  w.cpu.name = "idle";
  w.cpu.ops = 0;
  w.cpu.pattern = mem::PatternSpec{.kind = mem::PatternKind::SingleLocation,
                                   .base = kSharedBase,
                                   .extent = 64,
                                   .access_size = 4,
                                   .rw = mem::RwMix::ReadOnly,
                                   .count = 0};

  w.h2d_bytes = 0;  // MB2 compares kernel times only
  w.d2h_bytes = 0;
  w.iterations = 1;
  w.overlappable = false;
  w.validate();
  return w;
}

Workload mb2_cpu_workload(const soc::BoardConfig& board, double fraction) {
  CIG_EXPECTS(fraction > 0.0 && fraction <= 0.5);
  Workload w;
  w.name = "mb2-cpu-cache-threshold";

  // The CPU-side sweep varies the *mix*: a fixed amount of arithmetic plus
  // L1-resident accesses, with `fraction` of an LLC-band array (larger than
  // L1, smaller than the LLC) touched per run. Cache usage (eqn 1) grows
  // with the fraction; under ZC on a SwFlush board that traffic turns
  // uncacheable, and the divergence point defines CPU_Cache_Threshold.
  const Bytes array = KiB(512);  // sits in the LLC band on all Jetsons
  const Bytes span = std::max<Bytes>(
      64, static_cast<Bytes>(static_cast<double>(array) * fraction));

  w.cpu.name = "mix-sweep-cpu";
  w.cpu.pattern = mem::PatternSpec{.kind = mem::PatternKind::Linear,
                                   .base = kSharedBase,
                                   .extent = span,
                                   .access_size = 64,  // vectorised chunks
                                   .rw = mem::RwMix::ReadModifyWrite,
                                   .passes = 1,
                                   .line_hint = board.cpu.l1.geometry.line};
  // L1-resident working data, touched heavily regardless of the fraction.
  w.cpu.private_pattern =
      mem::PatternSpec{.kind = mem::PatternKind::Linear,
                       .base = kPrivateBase,
                       .extent = KiB(8),
                       .access_size = 64,
                       .rw = mem::RwMix::ReadModifyWrite,
                       .passes = 48,
                       .line_hint = board.cpu.l1.geometry.line};
  // Fixed arithmetic, independent of the fraction, scaled so the compute
  // phase lasts ~120 us on every board (the sweep probes the mix, not the
  // core speed).
  w.cpu.ops_per_cycle = 2.0;
  w.cpu.ops = 120e-6 * board.cpu_peak_ops_per_second() * w.cpu.ops_per_cycle;
  w.cpu.mlp = 8.0;

  w.gpu.name = "idle";
  w.gpu.ops = 0;
  w.gpu.pattern = mem::PatternSpec{.kind = mem::PatternKind::SingleLocation,
                                   .base = kSharedBase,
                                   .extent = 64,
                                   .access_size = 4,
                                   .rw = mem::RwMix::ReadOnly,
                                   .count = 0};
  w.h2d_bytes = 0;
  w.d2h_bytes = 0;
  w.iterations = 1;
  w.overlappable = false;
  w.validate();
  return w;
}

std::vector<double> mb2_fractions() {
  return {1.0 / 16000, 1.0 / 8000, 1.0 / 4000, 1.0 / 2000, 1.0 / 1000,
          1.0 / 500,   1.0 / 250,  1.0 / 100,  1.0 / 50,   1.0 / 20,
          1.0 / 10,    1.0 / 4,    1.0 / 2};
}

std::vector<double> mb2_cpu_fractions() {
  return {0.01, 0.02, 0.05, 0.08, 0.10, 0.125, 0.15, 0.20, 0.30, 0.40, 0.50};
}

Workload mb3_workload(const soc::BoardConfig& board,
                      std::uint32_t scale_down) {
  CIG_EXPECTS(scale_down >= 1);
  Workload w;
  w.name = "mb3-overlap-max-speedup";

  // 2^27 floats = 512 MiB logical footprint; the cache simulation walks a
  // 1/scale_down slice (every regime is DRAM-bound, so scaling is exact)
  // and time_scale restores the logical duration.
  const Bytes logical = GiB(1) / 2;
  const Bytes extent = logical / scale_down;
  const double scale = static_cast<double>(scale_down);

  // GPU: sparse read-modify-writes with maximal miss rate.
  const std::uint64_t sim_updates = extent / 8;  // one update per 2 floats
  w.gpu.name = "sparse-update";
  w.gpu.pattern = mem::PatternSpec{.kind = mem::PatternKind::Random,
                                   .base = kSharedBase,
                                   .extent = extent,
                                   .access_size = 4,
                                   .rw = mem::RwMix::ReadModifyWrite,
                                   .count = sim_updates,
                                   .seed = 0xB3,
                                   .line_hint = board.gpu.llc.geometry.line};
  w.gpu.ops = static_cast<double>(sim_updates) * 4.0;
  w.gpu.utilization = 0.5;
  w.gpu.time_scale = scale;

  // CPU: streaming pass over the shared structure plus enough arithmetic to
  // balance the kernel runtime (estimated from DRAM fill traffic).
  const double gpu_mem_estimate =
      static_cast<double>(sim_updates) * board.gpu.llc.geometry.line /
      board.dram.bandwidth;
  w.cpu.name = "stream-update";
  // CPU streams over the same shared structure the GPU updates (the tiled
  // pattern interleaves them safely under ZC; under UM this is what makes
  // the pages ping-pong every iteration).
  w.cpu.pattern = mem::PatternSpec{.kind = mem::PatternKind::Linear,
                                   .base = kSharedBase,
                                   .extent = extent,
                                   .access_size = 4,
                                   .rw = mem::RwMix::ReadModifyWrite,
                                   .passes = 1,
                                   .line_hint = board.cpu.l1.geometry.line};
  w.cpu.ops_per_cycle = 2.0;
  w.cpu.ops = gpu_mem_estimate * board.cpu.frequency * w.cpu.ops_per_cycle * 0.6;
  w.cpu.mlp = 8.0;
  w.cpu.time_scale = scale;

  w.h2d_bytes = logical;
  w.d2h_bytes = logical;
  w.iterations = 1;
  w.overlappable = true;
  w.validate();
  return w;
}

BytesPerSecond zc_path_bandwidth(const soc::BoardConfig& board) {
  return board.capability == coherence::Capability::HwIoCoherent
             ? board.io_coherence.snoop_bandwidth
             : board.gpu.uncached_bandwidth;
}

Workload phasic_phase_workload(const soc::BoardConfig& board, Bytes span,
                               BytesPerSecond demand, bool cache_heavy,
                               std::uint32_t iterations) {
  CIG_EXPECTS(span >= 64);
  CIG_EXPECTS(demand > 0);
  Workload w;
  w.name = cache_heavy ? "phasic-heavy" : "phasic-light";

  constexpr std::uint32_t kPasses = 4;
  const double bytes_per_iter = static_cast<double>(span) * kPasses;
  const double elements = bytes_per_iter / 4.0;

  w.gpu.name = cache_heavy ? "fma-heavy" : "fma-light";
  w.gpu.pattern = mem::PatternSpec{.kind = mem::PatternKind::Linear,
                                   .base = kSharedBase,
                                   .extent = span,
                                   .access_size = 4,
                                   .rw = mem::RwMix::ReadModifyWrite,
                                   .passes = kPasses,
                                   .line_hint = board.gpu.llc.geometry.line};
  // Arithmetic sized so the kernel's compute time pins the LL demand at the
  // requested level when the memory side keeps up (light phases are
  // compute-bound; heavy ones saturate whichever path the model provides).
  const Seconds compute_target = bytes_per_iter / demand;
  w.gpu.utilization = 0.5;
  w.gpu.ops = compute_target * board.gpu_peak_ops_per_second() *
              w.gpu.utilization;
  w.gpu.mlp = 1024;
  CIG_EXPECTS(w.gpu.ops >= elements);  // at least one op per loaded element

  w.cpu.name = "producer";
  // Minimal CPU side: tick the shared buffer head each iteration (the
  // producer hand-off); keeps eqn-1 CPU usage far below every threshold.
  w.cpu.ops = 1000;
  w.cpu.ops_per_cycle = 1.0;
  w.cpu.mlp = 1.0;
  w.cpu.pattern = mem::PatternSpec{.kind = mem::PatternKind::SingleLocation,
                                   .base = kSharedBase,
                                   .extent = 64,
                                   .access_size = 4,
                                   .rw = mem::RwMix::ReadModifyWrite,
                                   .count = 4,
                                   .line_hint = board.cpu.l1.geometry.line};

  w.h2d_bytes = span;
  w.d2h_bytes = span;
  w.iterations = iterations;
  w.overlappable = true;
  w.validate();
  return w;
}

std::vector<PhasicPhase> phasic_workload_phases(const soc::BoardConfig& board,
                                                const PhasicConfig& config) {
  CIG_EXPECTS(config.phase_pairs >= 1);
  CIG_EXPECTS(config.samples_per_phase >= 1);
  CIG_EXPECTS(config.light_demand_factor > 0);
  CIG_EXPECTS(config.heavy_demand_factor > config.light_demand_factor);

  const BytesPerSecond zc_bw = zc_path_bandwidth(board);
  // Light: small footprint (L1-band), demand deep inside zone 1 even under
  // the ZC normalisation peak. Heavy: LLC-band footprint (exceeds L1, fits
  // the GPU LLC so SC serves it from cache), demand past ZC saturation.
  const Bytes light_span = std::max<Bytes>(KiB(4), 64);
  const Bytes heavy_span =
      std::max<Bytes>(board.gpu.l1.geometry.capacity * 2,
                      board.gpu.llc.geometry.capacity / 2);

  const auto light = phasic_phase_workload(
      board, light_span, config.light_demand_factor * zc_bw,
      /*cache_heavy=*/false, config.iterations_per_sample);
  const auto heavy = phasic_phase_workload(
      board, heavy_span, config.heavy_demand_factor * zc_bw,
      /*cache_heavy=*/true, config.iterations_per_sample);

  std::vector<PhasicPhase> phases;
  phases.reserve(config.phase_pairs * 2);
  for (std::uint32_t i = 0; i < config.phase_pairs; ++i) {
    phases.push_back(
        PhasicPhase{light, config.samples_per_phase, /*cache_heavy=*/false});
    phases.push_back(
        PhasicPhase{heavy, config.samples_per_phase, /*cache_heavy=*/true});
  }
  return phases;
}

std::vector<PhasicPhase> oscillation_workload_phases(
    const soc::BoardConfig& board, const OscillationConfig& config) {
  CIG_EXPECTS(config.flips >= 1);
  CIG_EXPECTS(config.samples_per_phase >= 1);
  CIG_EXPECTS(config.mid_factor > 0);
  CIG_EXPECTS(config.epsilon > 0 && config.epsilon < 1);

  const BytesPerSecond zc_bw = zc_path_bandwidth(board);
  // LLC-band span (as in the heavy phasic phase) so the LL demand tracks the
  // requested level instead of being filtered by the L1.
  const Bytes span = std::max<Bytes>(board.gpu.l1.geometry.capacity * 2,
                                     board.gpu.llc.geometry.capacity / 2);
  const auto below = phasic_phase_workload(
      board, span, config.mid_factor * (1.0 - config.epsilon) * zc_bw,
      /*cache_heavy=*/false, config.iterations_per_sample);
  const auto above = phasic_phase_workload(
      board, span, config.mid_factor * (1.0 + config.epsilon) * zc_bw,
      /*cache_heavy=*/true, config.iterations_per_sample);

  std::vector<PhasicPhase> phases;
  phases.reserve(config.flips + 1);
  for (std::uint32_t i = 0; i <= config.flips; ++i) {
    const bool high = (i % 2) != 0;
    phases.push_back(PhasicPhase{high ? above : below,
                                 config.samples_per_phase, high});
  }
  return phases;
}

}  // namespace cig::workload
