#include "workload/functional.h"

#include <algorithm>
#include <cmath>

#include "support/assert.h"
#include "support/rng.h"

namespace cig::workload {

double fp_chain(double seed, std::uint64_t iterations) {
  // Dependent chain: every step needs the previous result, defeating both
  // superscalar issue and vectorisation — exactly why the paper's CPU
  // routine is latency-bound (~0.2 ops/cycle effective).
  double value = seed > 0 ? seed : 1.5;
  for (std::uint64_t i = 0; i < iterations; ++i) {
    value = std::sqrt(value) * 1.9 + 0.7;
    value = value / 1.3 + 0.1;
  }
  return value;
}

double fp_chain_flops(std::uint64_t iterations) {
  // sqrt + mul + add + div + add per loop body.
  return static_cast<double>(iterations) * 5.0;
}

double reduction_2d(const std::vector<double>& matrix, std::uint32_t width,
                    std::uint32_t height) {
  CIG_EXPECTS(matrix.size() ==
              static_cast<std::size_t>(width) * static_cast<std::size_t>(height));
  // Row-wise partial sums then a column reduction: two linear passes, the
  // shape of the paper's iterative ld.global / add / st.global kernel.
  std::vector<double> row_sums(height, 0.0);
  for (std::uint32_t y = 0; y < height; ++y) {
    double sum = 0.0;
    const double* row = matrix.data() + static_cast<std::size_t>(y) * width;
    for (std::uint32_t x = 0; x < width; ++x) sum += row[x];
    row_sums[y] = sum;
  }
  double total = 0.0;
  for (double s : row_sums) total += s;
  return total;
}

double fma_sweep(std::vector<float>& data, double fraction,
                 std::uint32_t passes) {
  CIG_EXPECTS(fraction > 0.0 && fraction <= 1.0);
  const std::size_t span =
      std::max<std::size_t>(1, static_cast<std::size_t>(
                                   static_cast<double>(data.size()) * fraction));
  double checksum = 0.0;
  for (std::uint32_t pass = 0; pass < passes; ++pass) {
    // Two locally-calculated operands (pass-dependent), as in the paper's
    // fma.rn description.
    const float a = 1.0f + 1.0f / static_cast<float>(pass + 2);
    const float b = 0.5f / static_cast<float>(pass + 1);
    for (std::size_t i = 0; i < span; ++i) {
      data[i] = data[i] * a + b;  // ld + fma + st
    }
  }
  for (std::size_t i = 0; i < span; ++i) checksum += data[i];
  return checksum;
}

double sparse_update(std::vector<float>& data, std::uint64_t count,
                     std::uint64_t seed) {
  CIG_EXPECTS(!data.empty());
  Rng rng(seed);
  double checksum = 0.0;
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::uint64_t j = rng.below(data.size());
    data[j] = data[j] * 0.97f + 0.013f;
    checksum += data[j];
  }
  return checksum;
}

std::vector<float> convolve_2d(const std::vector<float>& input,
                               std::uint32_t width, std::uint32_t height,
                               std::uint32_t kernel_size) {
  CIG_EXPECTS(input.size() ==
              static_cast<std::size_t>(width) * static_cast<std::size_t>(height));
  CIG_EXPECTS(kernel_size % 2 == 1 && kernel_size >= 1);
  const int radius = static_cast<int>(kernel_size / 2);
  const float weight =
      1.0f / (static_cast<float>(kernel_size) * static_cast<float>(kernel_size));
  std::vector<float> output(input.size());
  for (std::int64_t y = 0; y < height; ++y) {
    for (std::int64_t x = 0; x < width; ++x) {
      float sum = 0;
      for (int dy = -radius; dy <= radius; ++dy) {
        for (int dx = -radius; dx <= radius; ++dx) {
          const std::int64_t sx = std::clamp<std::int64_t>(x + dx, 0, width - 1);
          const std::int64_t sy =
              std::clamp<std::int64_t>(y + dy, 0, height - 1);
          sum += input[static_cast<std::size_t>(sy) * width + sx];
        }
      }
      output[static_cast<std::size_t>(y) * width + x] = sum * weight;
    }
  }
  return output;
}

std::vector<std::uint32_t> histogram(const std::vector<float>& data,
                                     std::uint32_t bins, float lo, float hi) {
  CIG_EXPECTS(bins >= 1);
  CIG_EXPECTS(hi > lo);
  std::vector<std::uint32_t> counts(bins, 0);
  const float scale = static_cast<float>(bins) / (hi - lo);
  for (float v : data) {
    auto bin = static_cast<std::int64_t>((v - lo) * scale);
    bin = std::clamp<std::int64_t>(bin, 0, bins - 1);
    ++counts[static_cast<std::size_t>(bin)];
  }
  return counts;
}

std::size_t pointer_chase(std::size_t nodes, std::uint64_t hops,
                          std::uint64_t seed) {
  CIG_EXPECTS(nodes >= 1);
  // Sattolo's algorithm: a single-cycle permutation, so every walk visits
  // fresh nodes until it wraps.
  std::vector<std::size_t> next(nodes);
  for (std::size_t i = 0; i < nodes; ++i) next[i] = i;
  Rng rng(seed);
  for (std::size_t i = nodes - 1; i > 0; --i) {
    const std::size_t j = rng.below(i);  // j in [0, i)
    std::swap(next[i], next[j]);
  }
  std::size_t position = 0;
  for (std::uint64_t hop = 0; hop < hops; ++hop) position = next[position];
  return position;
}

void produce_tile(float* tile, std::size_t elements, std::uint32_t phase) {
  CIG_EXPECTS(tile != nullptr);
  for (std::size_t i = 0; i < elements; ++i) {
    tile[i] = static_cast<float>((phase + 1) * 1000 + i % 97);
  }
}

void consume_tile(const float* tile, std::size_t elements,
                  double& accumulator) {
  CIG_EXPECTS(tile != nullptr);
  for (std::size_t i = 0; i < elements; ++i) accumulator += tile[i];
}

}  // namespace cig::workload
