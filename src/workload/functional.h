// Functional payloads: the actual computations behind the micro-benchmark
// specs, implemented in plain C++ so tests and examples can check *results*
// (the simulator provides timing; these provide values). Each mirrors the
// PTX-level description in Section III-B of the paper.
#pragma once

#include <cstdint>
#include <vector>

#include "support/units.h"

namespace cig::workload {

// MB1 CPU routine: dependent floating-point chain (sqrt, div, mul) on a
// single memory location. Returns the final value; `flops(iterations)`
// reports the op count the chain represents.
double fp_chain(double seed, std::uint64_t iterations);
double fp_chain_flops(std::uint64_t iterations);

// MB1 GPU kernel: 2D reduction of a row-major matrix via linear loads
// (ld.global), adds (add.s32 in the paper; we reduce doubles) and a final
// store. Returns the reduction value.
double reduction_2d(const std::vector<double>& matrix, std::uint32_t width,
                    std::uint32_t height);

// MB2 kernel body: for the first `fraction` of `data`, do ld + fma + st with
// two locally-derived operands, `passes` times. Mutates data in place and
// returns a checksum.
double fma_sweep(std::vector<float>& data, double fraction,
                 std::uint32_t passes);

// MB3 kernel body: sparse gather/scatter with maximal cache-miss behaviour:
// for `count` pseudo-random indices, data[j] = data[j] * a + b. Deterministic
// for a given seed. Returns a checksum.
double sparse_update(std::vector<float>& data, std::uint64_t count,
                     std::uint64_t seed);

// Workload-zoo payloads (see workload/zoo.h for the simulator mappings).
// 2D convolution with a box kernel of odd size K; border pixels are
// clamped. Returns the output image.
std::vector<float> convolve_2d(const std::vector<float>& input,
                               std::uint32_t width, std::uint32_t height,
                               std::uint32_t kernel_size);

// Histogram of `data` into `bins` equal-width buckets over [lo, hi).
// Out-of-range samples are clamped into the edge buckets.
std::vector<std::uint32_t> histogram(const std::vector<float>& data,
                                     std::uint32_t bins, float lo, float hi);

// Pointer chase: builds a random permutation cycle of `nodes` entries
// (seeded) and walks it `hops` times. Returns the final index — checking
// it pins both the permutation and the walk.
std::size_t pointer_chase(std::size_t nodes, std::uint64_t hops,
                          std::uint64_t seed);

// Tiled producer step used by the ZC pattern demo: writes a deterministic
// function of (phase, index) into every element of the tile.
void produce_tile(float* tile, std::size_t elements, std::uint32_t phase);

// Tiled consumer step: reduces the tile and accumulates into `accumulator`.
void consume_tile(const float* tile, std::size_t elements,
                  double& accumulator);

}  // namespace cig::workload
