// Workload description: what a CPU routine and a GPU kernel *do*, expressed
// as an instruction mix plus a symbolic memory-access pattern. The execution
// engine replays the pattern against the board's simulated hierarchy and
// combines it with the compute time in a roofline fashion.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "mem/stream.h"
#include "support/units.h"
#include "workload/trace.h"

namespace cig::workload {

struct CpuTaskSpec {
  std::string name = "cpu-task";
  double ops = 0;              // arithmetic operations per iteration
  // Effective ops/cycle on one core: ~0.2 for dependent sqrt/div chains
  // (the paper's MB1 CPU routine), up to ~4 for vectorised independent FP.
  double ops_per_cycle = 1.0;
  std::uint32_t threads = 1;
  // Accesses to the CPU-GPU *shared* data structure. Under zero-copy on a
  // SwFlush board these become uncacheable; under SC/UM they are cached.
  mem::PatternSpec pattern;
  // Optional recorded trace for the shared stream; when set it replaces
  // `pattern` for the hierarchy walk (trace-driven workloads — see
  // workload/trace.h). The pattern's `base`/`extent` should still describe
  // the buffer for copy/coherence range purposes.
  std::shared_ptr<const TraceRecorder> shared_trace;
  // Accesses to CPU-private working data (always cached, every model).
  std::optional<mem::PatternSpec> private_pattern;
  // Memory-level parallelism: how many outstanding misses the access stream
  // sustains. 1 = fully dependent chain (latency-bound); 8+ = streaming.
  double mlp = 8.0;
  // Reported times are multiplied by this factor — used when a builder
  // simulates a down-scaled footprint of a huge logical workload.
  double time_scale = 1.0;
};

struct GpuKernelSpec {
  std::string name = "gpu-kernel";
  double ops = 0;              // operations per launch
  double utilization = 1.0;    // fraction of peak lanes issuing
  // Accesses to the shared data structure (bypasses GPU caches under ZC).
  mem::PatternSpec pattern;
  // Optional recorded trace replacing `pattern` for the walk (see above).
  std::shared_ptr<const TraceRecorder> shared_trace;
  // Accesses to device-local scratch (always cached, every model).
  std::optional<mem::PatternSpec> private_pattern;
  // Thousands of resident threads hide latency; misses rarely serialize.
  double mlp = 64.0;
  double time_scale = 1.0;
};

// One producer/consumer exchange between CPU and iGPU, repeated
// `iterations` times. `h2d_bytes`/`d2h_bytes` is what standard copy moves
// per iteration (and what UM migrates on first cross-processor touch).
struct Workload {
  std::string name = "workload";
  CpuTaskSpec cpu;
  GpuKernelSpec gpu;
  Bytes h2d_bytes = 0;
  Bytes d2h_bytes = 0;
  std::uint32_t iterations = 1;
  // True if the algorithm admits the paper's tiled ZC pattern (CPU and GPU
  // can make progress concurrently on disjoint tiles).
  bool overlappable = false;

  void validate() const;
};

}  // namespace cig::workload
