// Workload zoo: archetypal CPU+iGPU kernels beyond the paper's two case
// studies, used to probe the framework's decision quality across the whole
// behaviour space (bench/zoo_accuracy):
//
//   conv2d        - GPU-cache-heavy stencil (halo reuse in the LLC)
//   histogram     - scattered updates to a cache-resident table
//   saxpy_stream  - pure streaming, cache-independent, overlap-friendly
//   pointer_chase - latency-bound dependent CPU walk
//
// Each has a symbolic simulator mapping here and a real functional
// implementation in workload/functional.h for correctness tests.
#pragma once

#include <string>
#include <vector>

#include "soc/board.h"
#include "workload/task.h"

namespace cig::workload {

// 2D convolution: the GPU re-reads each input pixel K*K times; with a
// tiled schedule the reuse is captured by the LLC, making the kernel
// strongly GPU-cache-dependent (the ORB-SLAM regime).
Workload conv2d_workload(const soc::BoardConfig& board,
                         std::uint32_t width = 640, std::uint32_t height = 480,
                         std::uint32_t kernel_size = 5);

// Histogram: streaming reads of the input with scattered read-modify-write
// updates into a small bin table that lives in the GPU caches.
Workload histogram_workload(const soc::BoardConfig& board,
                            Bytes input_bytes = MiB(4),
                            std::uint32_t bins = 4096);

// SAXPY-style streaming: single-pass, no reuse, balanced CPU/GPU halves —
// the MB3 regime where zero-copy with overlap shines on coherent boards.
Workload saxpy_stream_workload(const soc::BoardConfig& board,
                               Bytes elements_bytes = MiB(32));

// Pointer chase: the CPU walks a dependent linked list through its LLC
// (high eqn-1 usage, MLP = 1) while the GPU does token work — the SH-WFS
// CPU-side regime taken to the extreme.
Workload pointer_chase_workload(const soc::BoardConfig& board,
                                Bytes working_set = MiB(1));

// All four, with stable names (for grids and benches).
std::vector<std::pair<std::string, Workload>> workload_zoo(
    const soc::BoardConfig& board);

}  // namespace cig::workload
