// Online refinement of the eqn-3/4 speedup estimators.
//
// The offline flow caps eqn 3 with SC/ZC_Max_speedup from MB3 — a bound
// measured on a *memory-heavy* workload. On SwFlush boards that bound is
// below 1 (ZC loses MB3 outright), which makes the offline flow reject
// SC->ZC for every application, including compute-bound phases whose
// kernels never touch the slow pinned path. The runtime has something the
// offline flow does not: live counters. From the windowed profile it knows
// the kernel's element-granular demand, so it can price the *same kernel*
// on the target model's memory path (roofline style) instead of applying a
// worst-case device constant:
//
//   SC->ZC: zc_kernel = max(kernel_time, demand_bytes / ZC_LL_peak)
//           (ZC never speeds the kernel up; the uncached path bounds it)
//   ZC->SC: sc_kernel = demand_bytes / SC_LL_peak, plus the copies and the
//           serialization eqn 4 charges (capped by ZC/SC_Max_speedup)
//
// The structural eqn-3 term (copies removed, CPU/GPU overlapped) still
// applies; the refined estimate is min(structural, roofline). At full
// memory saturation the roofline converges to the MB3 ratio, so the MB3
// bound is the special case this generalises.
#pragma once

#include "core/microbench.h"
#include "core/perfmodel.h"
#include "profile/report.h"
#include "soc/board.h"

namespace cig::runtime {

struct RefinedEstimate {
  double speedup = 1.0;          // refined prediction for the switch
  Seconds target_time = 0;       // predicted per-iteration time after it
  double structural = 1.0;       // uncapped eqn-3/4 term
  double roofline = 1.0;         // memory-path term from live counters
};

class SwitchEstimator {
 public:
  SwitchEstimator(const core::DeviceCharacterization& device,
                  const soc::BoardConfig& board);

  // Refines the speedup of switching `smoothed.model` -> `to`, where
  // `smoothed` is the windowed profile of the current phase and
  // `shared_bytes` the application's shared-buffer size (what SC would copy
  // each iteration).
  RefinedEstimate refine(const profile::ProfileReport& smoothed,
                         comm::CommModel to, Bytes shared_bytes) const;

 private:
  RefinedEstimate to_zero_copy(const profile::ProfileReport& smoothed) const;
  RefinedEstimate to_cached(const profile::ProfileReport& smoothed,
                            comm::CommModel to, Bytes shared_bytes) const;

  const core::DeviceCharacterization& device_;
  const soc::BoardConfig& board_;
};

}  // namespace cig::runtime
