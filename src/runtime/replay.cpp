#include "runtime/replay.h"

#include <algorithm>
#include <array>
#include <stdexcept>
#include <utility>

#include "core/microbench.h"
#include "profile/profiler.h"
#include "support/assert.h"
#include "support/log.h"

namespace cig::runtime {

namespace {

comm::CommModel model_from_record(const Json& record, const char* field) {
  const std::string name = record.string_or(field, "SC");
  for (const comm::CommModel m : core::kAllModels) {
    if (name == comm::model_name(m)) return m;
  }
  throw std::runtime_error(std::string("journal record: unknown model \"") +
                           name + "\"");
}

}  // namespace

std::uint64_t ReplayResult::switches_into(comm::CommModel model) const {
  std::uint64_t count = 0;
  for (const auto& record : samples) {
    if (record.decision.switched && record.decision.model_after == model) {
      ++count;
    }
  }
  return count;
}

ReplayResult replay_phasic(core::Framework& framework,
                           const std::vector<workload::PhasicPhase>& phases,
                           const ReplayOptions& options) {
  CIG_EXPECTS(!phases.empty());
  // A checkpointed run must replay deterministically from its journal;
  // mutate_sample perturbs reports (and pressure_sample the budget) in
  // ways the journal does not record.
  CIG_EXPECTS(options.checkpoint.dir.empty() || !options.mutate_sample);
  CIG_EXPECTS(options.checkpoint.dir.empty() || !options.pressure_sample);
  const core::DecisionEngine engine(framework.device());

  framework.soc().reset();
  profile::Profiler profiler(framework.soc(), options.exec);
  AdaptiveController controller(engine, profiler.executor(),
                                options.controller);

  // Flat sample schedule: phase index per global sample, so a resume point
  // expressed as a sample index maps straight back into the trace.
  std::vector<std::uint32_t> schedule;
  for (std::uint32_t p = 0; p < phases.size(); ++p) {
    for (std::uint32_t s = 0; s < phases[p].samples; ++s) schedule.push_back(p);
  }

  ReplayResult result;
  ReplayCheckpoint checkpoint(options.checkpoint);
  std::uint64_t start_index = 0;

  if (checkpoint.has_snapshot()) {
    try {
      controller.restore(checkpoint.controller_state());
      if (checkpoint.resume_sample() > schedule.size()) {
        throw std::runtime_error("checkpoint covers more samples than trace");
      }
    } catch (const std::exception& e) {
      checkpoint.invalidate_snapshot(e.what());
    }
  }
  if (checkpoint.has_snapshot()) {
    // Rebuild the SoC to the crash point by re-executing the journaled
    // prefix with the tracer detached. The simulated SoC is deterministic,
    // so running the same workloads under the journaled models recreates
    // cache/page state exactly; the controller state itself comes from the
    // snapshot, and the journaled decisions seed the decision log.
    for (const Json& record : checkpoint.records()) {
      const auto index =
          static_cast<std::uint64_t>(record.number_or("index", 0));
      const auto& phase = phases[schedule[index]];
      if (options.before_sample) {
        options.before_sample(framework.soc(), controller.tracer(), index);
      }
      const comm::CommModel model = model_from_record(record, "model");
      const comm::CommModel after = model_from_record(record, "model_after");
      comm::RunResult raw;
      profiler.sample(phase.workload, model, raw);
      if (after != model) {
        profiler.executor().apply_model_switch(
            model, after, phase.workload.gpu.pattern.base,
            phase.workload.gpu.pattern.extent);
      }
      result.decision_log.push_back(record);
    }
    start_index = checkpoint.resume_sample();
    result.resumed = true;
    result.resume_sample = start_index;
    controller.tracer().instant(
        sim::Lane::Ctrl, "persist: resumed at sample " +
                             std::to_string(start_index) + " of " +
                             std::to_string(schedule.size()));
  }

  // Share the controller's tracer with the executor: executed phases land
  // on the CTRL lane of the same clock the controller annotates, and the
  // executor's bandwidth counters join the controller's counter tracks.
  // (Attached only now, so the rebuild prefix above leaves no trace.)
  profiler.executor().set_tracer(&controller.tracer());

  for (std::uint64_t i = start_index; i < schedule.size(); ++i) {
    const std::uint32_t p = schedule[i];
    const auto& phase = phases[p];
    if (options.before_sample) {
      options.before_sample(framework.soc(), controller.tracer(), i);
    }
    if (options.pressure_sample) {
      options.pressure_sample(controller, i);
    }
    const Seconds t0 = controller.now();
    const comm::CommModel model_before = controller.model();
    comm::RunResult raw;
    profile::ProfileReport report =
        profiler.sample(phase.workload, controller.model(), raw);
    if (options.mutate_sample) {
      options.mutate_sample(report, controller.tracer(), i);
    }
    result.timeline.append(raw.timeline, t0);

    SampleRecord record;
    record.phase = p;
    record.cache_heavy = phase.cache_heavy;
    record.model = model_before;
    record.time = t0;
    record.decision = controller.on_sample(
        report, phase.workload.gpu.pattern.base,
        phase.workload.gpu.pattern.extent);

    Json entry;
    entry["index"] = Json(static_cast<double>(i));
    entry["phase"] = Json(static_cast<double>(p));
    entry["cache_heavy"] = Json(phase.cache_heavy);
    entry["model"] = Json(std::string(comm::model_name(model_before)));
    entry["model_after"] =
        Json(std::string(comm::model_name(record.decision.model_after)));
    entry["t_us"] = Json(to_us(t0));
    entry["decision"] = record.decision.to_json();
    checkpoint.append_sample(entry);
    result.decision_log.push_back(std::move(entry));
    result.samples.push_back(std::move(record));

    if (checkpoint.enabled() && (i + 1) % checkpoint.snapshot_every() == 0) {
      checkpoint.write_snapshot(i + 1, controller.snapshot());
      controller.tracer().instant(
          sim::Lane::Ctrl,
          "persist: checkpoint @ sample " + std::to_string(i + 1));
    }
  }

  // Final snapshot so a rerun over a finished directory resumes (and exits)
  // immediately instead of re-executing the tail.
  if (checkpoint.enabled() && schedule.size() % checkpoint.snapshot_every() != 0) {
    checkpoint.write_snapshot(schedule.size(), controller.snapshot());
  }

  controller.finish();
  profiler.executor().set_tracer(nullptr);
  result.timeline.append(controller.timeline(), 0.0);
  result.aux = controller.tracer().aux();
  result.adaptive_time = controller.now();
  result.metrics = controller.metrics();
  result.persist = checkpoint.stats();
  result.metrics.export_to(result.registry);
  if (controller.governor().enabled()) {
    controller.governor().export_to(result.registry, "runtime.mem");
  }
  if (checkpoint.enabled() || !options.checkpoint.dir.empty()) {
    result.persist.export_to(result.registry);
  }
  return result;
}

StaticComparison compare_static(core::Framework& framework,
                                const std::vector<workload::PhasicPhase>& phases,
                                const comm::ExecOptions& exec) {
  CIG_EXPECTS(!phases.empty());
  StaticComparison out;

  // phase_time[m][p]: the phase measured end-to-end under one static model.
  std::array<std::vector<Seconds>, 3> phase_time;
  for (const comm::CommModel model : core::kAllModels) {
    const std::size_t m = core::model_index(model);
    framework.soc().reset();
    comm::Executor executor(framework.soc(), exec);
    Seconds total = 0;
    for (const auto& phase : phases) {
      Seconds in_phase = 0;
      for (std::uint32_t s = 0; s < phase.samples; ++s) {
        in_phase += executor.run_session(phase.workload, model).total;
      }
      phase_time[m].push_back(in_phase);
      total += in_phase;
    }
    out.static_time[m] = total;
  }

  for (std::size_t p = 0; p < phases.size(); ++p) {
    Seconds best = phase_time[0][p];
    for (std::size_t m = 1; m < 3; ++m) best = std::min(best, phase_time[m][p]);
    out.oracle_time += best;
  }

  const auto begin = out.static_time.begin();
  out.best_static = core::kAllModels[static_cast<std::size_t>(
      std::min_element(begin, out.static_time.end()) - begin)];
  out.worst_static = core::kAllModels[static_cast<std::size_t>(
      std::max_element(begin, out.static_time.end()) - begin)];
  return out;
}

}  // namespace cig::runtime
