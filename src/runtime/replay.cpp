#include "runtime/replay.h"

#include <algorithm>
#include <array>
#include <utility>

#include "profile/profiler.h"
#include "support/assert.h"

namespace cig::runtime {

std::uint64_t ReplayResult::switches_into(comm::CommModel model) const {
  std::uint64_t count = 0;
  for (const auto& record : samples) {
    if (record.decision.switched && record.decision.model_after == model) {
      ++count;
    }
  }
  return count;
}

ReplayResult replay_phasic(core::Framework& framework,
                           const std::vector<workload::PhasicPhase>& phases,
                           const ReplayOptions& options) {
  CIG_EXPECTS(!phases.empty());
  const core::DecisionEngine engine(framework.device());

  framework.soc().reset();
  profile::Profiler profiler(framework.soc(), options.exec);
  AdaptiveController controller(engine, profiler.executor(),
                                options.controller);
  // Share the controller's tracer with the executor: executed phases land
  // on the CTRL lane of the same clock the controller annotates, and the
  // executor's bandwidth counters join the controller's counter tracks.
  profiler.executor().set_tracer(&controller.tracer());

  ReplayResult result;
  std::uint64_t sample_index = 0;
  for (std::uint32_t p = 0; p < phases.size(); ++p) {
    const auto& phase = phases[p];
    for (std::uint32_t s = 0; s < phase.samples; ++s, ++sample_index) {
      if (options.before_sample) {
        options.before_sample(framework.soc(), controller.tracer(),
                              sample_index);
      }
      const Seconds t0 = controller.now();
      comm::RunResult raw;
      profile::ProfileReport report =
          profiler.sample(phase.workload, controller.model(), raw);
      if (options.mutate_sample) {
        options.mutate_sample(report, controller.tracer(), sample_index);
      }
      result.timeline.append(raw.timeline, t0);

      SampleRecord record;
      record.phase = p;
      record.cache_heavy = phase.cache_heavy;
      record.model = controller.model();
      record.time = t0;
      record.decision = controller.on_sample(
          report, phase.workload.gpu.pattern.base,
          phase.workload.gpu.pattern.extent);
      result.samples.push_back(std::move(record));
    }
  }

  controller.finish();
  profiler.executor().set_tracer(nullptr);
  result.timeline.append(controller.timeline(), 0.0);
  result.aux = controller.tracer().aux();
  result.adaptive_time = controller.now();
  result.metrics = controller.metrics();
  result.metrics.export_to(result.registry);
  return result;
}

StaticComparison compare_static(core::Framework& framework,
                                const std::vector<workload::PhasicPhase>& phases,
                                const comm::ExecOptions& exec) {
  CIG_EXPECTS(!phases.empty());
  StaticComparison out;

  // phase_time[m][p]: the phase measured end-to-end under one static model.
  std::array<std::vector<Seconds>, 3> phase_time;
  for (const comm::CommModel model : core::kAllModels) {
    const std::size_t m = core::model_index(model);
    framework.soc().reset();
    comm::Executor executor(framework.soc(), exec);
    Seconds total = 0;
    for (const auto& phase : phases) {
      Seconds in_phase = 0;
      for (std::uint32_t s = 0; s < phase.samples; ++s) {
        in_phase += executor.run_session(phase.workload, model).total;
      }
      phase_time[m].push_back(in_phase);
      total += in_phase;
    }
    out.static_time[m] = total;
  }

  for (std::size_t p = 0; p < phases.size(); ++p) {
    Seconds best = phase_time[0][p];
    for (std::size_t m = 1; m < 3; ++m) best = std::min(best, phase_time[m][p]);
    out.oracle_time += best;
  }

  const auto begin = out.static_time.begin();
  out.best_static = core::kAllModels[static_cast<std::size_t>(
      std::min_element(begin, out.static_time.end()) - begin)];
  out.worst_static = core::kAllModels[static_cast<std::size_t>(
      std::max_element(begin, out.static_time.end()) - begin)];
  return out;
}

}  // namespace cig::runtime
