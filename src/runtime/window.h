// Streaming profile ingester: consumes per-phase ProfileReport-shaped
// counter samples from the executor and maintains sliding-window and EWMA
// statistics of the raw counters the eqn-1/2 cache-usage metrics consume.
//
// The window averages *counters*, not derived metrics, so the controller
// can hand the aggregate straight back to the decision engine: a windowed
// report is just another ProfileReport, taken over a longer virtual phase.
#pragma once

#include <cstddef>
#include <deque>

#include "profile/report.h"
#include "support/json.h"

namespace cig::runtime {

struct WindowConfig {
  std::size_t capacity = 8;  // sliding-window length, in samples
  // EWMA weight of the newest sample; higher = faster reaction to phase
  // changes, lower = smoother metrics at the zone boundaries. 0.6 reaches
  // ~85% of a step change within two samples — one control period of
  // reaction lag on top of the hysteresis confirmation.
  double ewma_alpha = 0.6;
};

class StreamingProfile {
 public:
  explicit StreamingProfile(WindowConfig config = {});

  // Ingests one per-phase sample. Samples must all be taken under the same
  // communication model — the controller clears the window on a switch,
  // because the eqn-2 normalisation peak changes with the model.
  void add(const profile::ProfileReport& sample);

  std::size_t size() const { return window_.size(); }
  bool empty() const { return window_.empty(); }

  // Newest raw sample (window must be non-empty).
  const profile::ProfileReport& latest() const;

  // Arithmetic mean of the counters over the sliding window; identity
  // fields (workload/board/model) come from the newest sample.
  profile::ProfileReport windowed() const;

  // EWMA-smoothed counters over every sample since the last clear().
  profile::ProfileReport smoothed() const;

  void clear();

  const WindowConfig& config() const { return config_; }

  // Exact state round-trip for controller checkpoint/restore. The config is
  // not serialized — restore() assumes the window was built with the same
  // WindowConfig (the controller fingerprints its whole config instead).
  Json snapshot() const;
  void restore(const Json& j);

 private:
  WindowConfig config_;
  std::deque<profile::ProfileReport> window_;
  profile::ProfileReport ewma_;
  bool ewma_valid_ = false;
};

}  // namespace cig::runtime
