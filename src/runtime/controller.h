// Online adaptive communication-model controller: wraps the paper's
// offline decision framework (Fig. 2) in a closed control loop.
//
//   sample --> StreamingProfile (window/EWMA of eqn-1/2 counters)
//          --> HysteresisZoneTracker (debounced threshold/zone crossings)
//          --> DecisionEngine::recommend_for (incremental Fig. 2 flow)
//          --> switch planner (commit only if the predicted gain amortizes
//              the modelled switch cost within a configurable horizon)
//          --> Executor::apply_model_switch + RuntimeMetrics + trace marks
//
// The loop converts the one-shot "profile once, pick a model forever"
// framework into a runtime that chases phasic workloads (tracking vs
// relocalization in ORB-SLAM, spot-density swings in SH-WFS) while the
// hysteresis margins and the switch-cost veto keep it from flapping at the
// zone boundaries.
#pragma once

#include <string>

#include "comm/executor.h"
#include "core/decision.h"
#include "mem/pressure.h"
#include "obs/tracer.h"
#include "runtime/estimator.h"
#include "runtime/guard.h"
#include "runtime/hysteresis.h"
#include "runtime/metrics.h"
#include "runtime/window.h"
#include "sim/timeline.h"
#include "support/json.h"

namespace cig::runtime {

struct ControllerConfig {
  WindowConfig window;
  HysteresisConfig hysteresis;
  // A switch is committed only when the predicted per-iteration gain,
  // summed over this many upcoming iterations, covers the modelled switch
  // cost. Small horizon = conservative controller.
  double amortization_horizon_iters = 64;
  // Samples required in the window before the decision flow runs.
  std::size_t min_samples = 1;
  comm::CommModel initial_model = comm::CommModel::StandardCopy;
  // Zone boundary while *running* ZC, as percent saturation of the ZC path
  // (the eqn-2 normaliser under ZC is that path's tiny peak, so the MB2
  // threshold — an SC-scale number — does not apply; what matters is
  // whether the uncached/snoop path is saturated enough to throttle the
  // kernel).
  double zc_saturation_pct = 60.0;
  // Guardrails: input hygiene, misprediction rollback, quarantine and the
  // oscillation watchdog (see runtime/guard.h).
  GuardConfig guard;
  // Memory-pressure governor: hard resident-byte budget and graded
  // thresholds (see mem/pressure.h). budget = 0 disables everything —
  // footprints are still accounted into decisions, never acted on.
  mem::PressureConfig pressure;
};

// What the controller decided after ingesting one sample.
struct ControlDecision {
  comm::CommModel model_before = comm::CommModel::StandardCopy;
  comm::CommModel model_after = comm::CommModel::StandardCopy;
  bool evaluated = false;       // decision flow ran (enough samples)
  bool wanted_switch = false;   // Fig. 2 flow suggested switching
  bool switched = false;        // switch committed
  bool vetoed_by_cost = false;  // wanted, but the gain does not amortize
  core::Zone zone = core::Zone::Comparable;
  double predicted_speedup = 1.0;  // refined (roofline) estimate
  double offline_speedup = 1.0;    // what the capped offline flow predicted
  Seconds switch_cost = 0;      // realized when switched, estimate when vetoed
  Seconds predicted_gain = 0;   // over the amortization horizon
  std::string rationale;

  // Guardrail outcomes for this sample.
  bool sample_rejected = false;   // input guard dropped the sample
  bool rolled_back = false;       // mispredicted switch undone this sample
  bool blocked_by_guard = false;  // pin/quarantine held an otherwise-viable
                                  // switch (or the whole evaluation)
  std::string guard_event;        // human-readable reason when any fired

  // Memory-pressure outcomes for this sample.
  bool demoted = false;            // governor forced a footprint demotion
  bool blocked_by_budget = false;  // candidate dropped: footprint over budget
  mem::PressureLevel pressure = mem::PressureLevel::Ok;
  Bytes footprint_bytes = 0;  // resident footprint under model_after

  // Decision provenance: the offline flow's structured explanation (inputs,
  // thresholds, equations, checks). Populated when `evaluated` is true and
  // on forced demotions (the checks then name the rejected model and the
  // budget that rejected it).
  core::Explanation explanation;
  // Trace flow-arrow id linking a committed switch to the first phase under
  // the new model (0 when no switch was committed).
  std::uint64_t flow_id = 0;

  // Full provenance record: outcome flags + costs + explanation.
  Json to_json() const;
};

class AdaptiveController {
 public:
  // `engine` supplies the board characterization and the decision flow;
  // `executor` executes switches against the live simulated SoC. Both are
  // borrowed and must outlive the controller.
  AdaptiveController(const core::DecisionEngine& engine,
                     comm::Executor& executor, ControllerConfig config = {});

  comm::CommModel model() const { return model_; }

  // Ingests one per-phase profile sample taken under model() and runs the
  // control loop. `shared_base`/`shared_bytes` describe the application's
  // shared buffer (what a switch would re-allocate).
  ControlDecision on_sample(const profile::ProfileReport& sample,
                            std::uint64_t shared_base, Bytes shared_bytes);

  // Cumulative observed time: sample time plus realized switch overhead.
  // Drivers use this as the offset when assembling a merged timeline.
  Seconds now() const { return now_; }

  const RuntimeMetrics& metrics() const { return metrics_; }

  // Controller-lane annotations (switches as segments, vetoes and phase
  // changes as instant marks) for merging into an exported trace.
  const sim::Timeline& timeline() const { return tracer_.timeline(); }

  // The controller's tracer: timeline plus counter tracks and decision->
  // phase flow arrows. Drivers may share it with the executor
  // (Executor::set_tracer) so executed phases land on the same clock.
  obs::Tracer& tracer() { return tracer_; }
  const obs::Tracer& tracer() const { return tracer_; }

  // Terminates any dangling decision->phase flow arrow at the current
  // clock. Call once after the last sample so every flow start in the
  // exported trace has a matching end.
  void finish();

  const StreamingProfile& window() const { return window_; }
  const ControllerConfig& config() const { return config_; }

  // The memory-pressure governor. The mutable accessor exists for the
  // chaos harness: the shrinking-DRAM ramp rewrites the budget between
  // samples (dynamic budgets are chaos-only — see runtime/replay.h).
  const mem::PressureGovernor& governor() const { return governor_; }
  mem::PressureGovernor& governor() { return governor_; }

  // Signals that the next sample's (re)allocation transiently failed (the
  // fault::AllocFailure scenario): the controller reacts by demoting one
  // step down the footprint ladder instead of crashing, or records the
  // event when already at the ZC floor.
  void signal_alloc_failure() { alloc_failure_pending_ = true; }

  // --- checkpoint/restore ----------------------------------------------------
  // Serializes the complete control-loop state — window/EWMA, hysteresis
  // debounce, guard strikes/pins, metrics (histograms included), the
  // pending switch-verification slot and the tracer clock/flow counter — so
  // a controller restored into a rebuilt SoC continues the decision
  // sequence byte-for-byte where the snapshot left off.
  Json snapshot() const;
  // Restores a snapshot() into a freshly constructed controller. The
  // engine/executor/config must match the snapshotting run: the snapshot
  // carries a fingerprint of the config and throws std::runtime_error on
  // mismatch (callers treat that as "checkpoint invalid, cold-start").
  void restore(const Json& snapshot);

 private:
  // Re-targets the zone tracker for the current model's boundary set.
  void arm_tracker();

  // Undoes the last committed switch after its realized speedup came in
  // below the rollback threshold: restores `rollback_model_`, quarantines
  // the model that failed, restarts the statistics. Fills and returns
  // `decision`.
  ControlDecision roll_back(ControlDecision& decision, double realized,
                            std::uint64_t shared_base, Bytes shared_bytes);

  // Forces the model down the footprint ladder (SC -> UM -> ZC) to the
  // first model the budget accepts. `cause` names what triggered it
  // ("budget" / "alloc failure") in the guard event and the explanation.
  ControlDecision demote(ControlDecision& decision, const std::string& cause,
                         std::uint64_t shared_base, Bytes shared_bytes);

  const core::DecisionEngine& engine_;
  comm::Executor& executor_;
  SwitchEstimator estimator_;
  ControllerConfig config_;
  comm::CommModel model_;
  StreamingProfile window_;
  HysteresisZoneTracker zone_tracker_;
  HysteresisBand cpu_band_;
  RuntimeMetrics metrics_;
  SampleGuard sample_guard_;
  SwitchGuard switch_guard_;
  mem::PressureGovernor governor_;
  bool alloc_failure_pending_ = false;
  obs::Tracer tracer_;
  Seconds now_ = 0;

  // Open decision->phase flow arrow from the last committed switch.
  std::uint64_t pending_flow_id_ = 0;
  std::string pending_flow_name_;

  // Pending prediction verification: per-iteration time before the last
  // switch, compared against the first sample taken after it.
  bool verify_pending_ = false;
  Seconds pre_switch_iter_time_ = 0;
  double pending_predicted_ = 1.0;
  // Model to restore when the pending switch turns out mispredicted badly
  // enough to roll back (realized speedup < guard.rollback_threshold).
  comm::CommModel rollback_model_ = comm::CommModel::StandardCopy;
};

}  // namespace cig::runtime
