#include "runtime/window.h"

#include "support/assert.h"

namespace cig::runtime {

namespace {

// Applies `fn(accumulator_field, sample_field)` to every counter field the
// decision flow consumes, so the window and EWMA aggregations cannot drift
// out of sync with each other.
template <typename Fn>
void for_each_counter(profile::ProfileReport& acc,
                      const profile::ProfileReport& sample, Fn fn) {
  fn(acc.cpu_l1_miss_rate, sample.cpu_l1_miss_rate);
  fn(acc.cpu_llc_miss_rate, sample.cpu_llc_miss_rate);
  fn(acc.gpu_l1_hit_rate, sample.gpu_l1_hit_rate);
  fn(acc.gpu_llc_hit_rate, sample.gpu_llc_hit_rate);
  fn(acc.gpu_transactions, sample.gpu_transactions);
  fn(acc.gpu_transaction_size, sample.gpu_transaction_size);
  fn(acc.kernel_time, sample.kernel_time);
  fn(acc.cpu_time, sample.cpu_time);
  fn(acc.copy_time, sample.copy_time);
  fn(acc.total_time, sample.total_time);
  fn(acc.gpu_ll_throughput, sample.gpu_ll_throughput);
  fn(acc.cpu_ll_throughput, sample.cpu_ll_throughput);
  fn(acc.energy, sample.energy);
  fn(acc.average_power, sample.average_power);
}

void copy_identity(profile::ProfileReport& to,
                   const profile::ProfileReport& from) {
  to.workload = from.workload;
  to.board = from.board;
  to.model = from.model;
  to.iterations = from.iterations;
}

}  // namespace

StreamingProfile::StreamingProfile(WindowConfig config) : config_(config) {
  CIG_EXPECTS(config_.capacity >= 1);
  CIG_EXPECTS(config_.ewma_alpha > 0.0 && config_.ewma_alpha <= 1.0);
}

void StreamingProfile::add(const profile::ProfileReport& sample) {
  window_.push_back(sample);
  if (window_.size() > config_.capacity) window_.pop_front();

  if (!ewma_valid_) {
    ewma_ = sample;
    ewma_valid_ = true;
  } else {
    const double alpha = config_.ewma_alpha;
    for_each_counter(ewma_, sample, [alpha](double& acc, double value) {
      acc = (1.0 - alpha) * acc + alpha * value;
    });
    copy_identity(ewma_, sample);
  }
}

const profile::ProfileReport& StreamingProfile::latest() const {
  CIG_EXPECTS(!window_.empty());
  return window_.back();
}

profile::ProfileReport StreamingProfile::windowed() const {
  CIG_EXPECTS(!window_.empty());
  profile::ProfileReport mean;
  for (const auto& sample : window_) {
    for_each_counter(mean, sample,
                     [](double& acc, double value) { acc += value; });
  }
  const double n = static_cast<double>(window_.size());
  const profile::ProfileReport zero;
  for_each_counter(mean, zero,
                   [n](double& acc, double) { acc /= n; });
  copy_identity(mean, window_.back());
  return mean;
}

profile::ProfileReport StreamingProfile::smoothed() const {
  CIG_EXPECTS(ewma_valid_);
  return ewma_;
}

void StreamingProfile::clear() {
  window_.clear();
  ewma_valid_ = false;
}

Json StreamingProfile::snapshot() const {
  Json j;
  Json samples{JsonArray{}};
  for (const auto& sample : window_) samples.push_back(sample.to_json());
  j["window"] = std::move(samples);
  j["ewma_valid"] = Json(ewma_valid_);
  if (ewma_valid_) j["ewma"] = ewma_.to_json();
  return j;
}

void StreamingProfile::restore(const Json& j) {
  window_.clear();
  for (const Json& sample : j.at("window").as_array()) {
    window_.push_back(profile::ProfileReport::from_json(sample));
  }
  ewma_valid_ = j.bool_or("ewma_valid", false);
  ewma_ = ewma_valid_ ? profile::ProfileReport::from_json(j.at("ewma"))
                      : profile::ProfileReport{};
}

}  // namespace cig::runtime
