// Crash-safe checkpointing for the adaptive-controller replay.
//
// Two files under the checkpoint directory cooperate:
//
//   samples.journal   — one framed, checksummed record per completed sample
//                       (persist/journal.h): the phase/model/decision tuple
//                       replay needs to re-execute the sample against a
//                       fresh SoC.
//   controller.snap   — an atomically-replaced snapshot (persist/snapshot.h)
//                       of the full AdaptiveController state, written every
//                       `snapshot_every` samples and once at the end.
//
// Recovery contract: on open, the journal's torn tail (if a crash landed
// mid-append) is truncated, the snapshot is validated whole-file (torn or
// checksum-damaged snapshots are rejected outright — checksum-invalid state
// is never loaded), and the journal is reconciled against the snapshot's
// next_sample so the pair always describes one consistent resume point.
// replay_phasic then re-executes the journaled prefix against a reset SoC
// (deterministic, tracer detached), restores the controller, and continues
// live — producing decisions byte-identical to an uninterrupted run.
//
// Every step is counted in PersistStats (exported as `persist.*`). All I/O
// failures degrade to "checkpointing disabled" with one warning; a replay
// never fails because its checkpoint directory does.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "persist/journal.h"
#include "sim/stat_registry.h"
#include "support/json.h"

namespace cig::runtime {

struct CheckpointConfig {
  std::string dir;  // empty = checkpointing disabled
  // Controller-snapshot cadence in samples (the journal gets every sample
  // regardless). Larger values trade fewer atomic writes for a longer
  // re-execution prefix after a crash.
  std::uint64_t snapshot_every = 1;
};

// What persistence did during recovery and the run; exported as persist.*.
struct PersistStats {
  std::uint64_t recovered = 0;          // intact journal records recovered
  std::uint64_t torn_discarded = 0;     // torn tails / torn snapshots dropped
  std::uint64_t torn_bytes = 0;         // bytes discarded with them
  std::uint64_t tail_dropped = 0;       // journal records past the snapshot
  std::uint64_t snapshot_rejected = 0;  // snapshots refused (damage/mismatch)
  std::uint64_t snapshot_writes = 0;    // snapshots written this run
  std::uint64_t appends = 0;            // journal records appended this run
  std::uint64_t resumed = 0;            // 1 when the run resumed mid-trace
  std::uint64_t resume_sample = 0;      // first live sample index

  void export_to(sim::StatRegistry& registry) const;
  Json to_json() const;
};

class ReplayCheckpoint {
 public:
  static constexpr const char* kSnapshotKind = "cig-controller-checkpoint";
  static constexpr int kSnapshotVersion = 1;

  // Opens (creating the directory if needed) and recovers. Never throws:
  // an unusable directory disables checkpointing with one warning.
  explicit ReplayCheckpoint(const CheckpointConfig& config);

  bool enabled() const { return enabled_; }
  std::uint64_t snapshot_every() const { return config_.snapshot_every; }

  // True when recovery produced a consistent (snapshot, journal-prefix)
  // pair to resume from.
  bool has_snapshot() const { return has_snapshot_; }
  // The controller state to restore (valid only when has_snapshot()).
  const Json& controller_state() const { return controller_state_; }
  // First sample index the live loop should execute. Equals the number of
  // journaled records to re-execute for the SoC rebuild.
  std::uint64_t resume_sample() const { return resume_sample_; }
  // The journaled per-sample records covering [0, resume_sample()).
  const std::vector<Json>& records() const { return records_; }

  // Appends one completed sample record; fsynced before return. I/O errors
  // disable checkpointing (the run continues).
  void append_sample(const Json& record);

  // Atomically replaces the controller snapshot: `next_sample` samples are
  // folded into `controller_state`.
  void write_snapshot(std::uint64_t next_sample, const Json& controller_state);

  // Called when AdaptiveController::restore rejected controller_state()
  // (config fingerprint changed): drop snapshot + journal and cold-start.
  void invalidate_snapshot(const std::string& why);

  const PersistStats& stats() const { return stats_; }

 private:
  void disable(const std::string& why);

  CheckpointConfig config_;
  bool enabled_ = false;
  bool has_snapshot_ = false;
  std::uint64_t resume_sample_ = 0;
  std::vector<Json> records_;
  Json controller_state_;
  std::string snapshot_path_;
  std::unique_ptr<persist::Journal> journal_;
  PersistStats stats_;
};

}  // namespace cig::runtime
