#include "runtime/guard.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <vector>

#include "support/stats.h"

namespace cig::runtime {

namespace {

// Clamps `value` into [lo, hi]; returns true when it moved.
bool clamp_field(double& value, double lo, double hi) {
  const double clamped = std::clamp(value, lo, hi);
  if (clamped == value) return false;
  value = clamped;
  return true;
}

}  // namespace

void GuardMetrics::export_to(sim::StatRegistry& registry) const {
  registry.set("runtime.guard.clamped_fields",
               static_cast<double>(clamped_fields));
  registry.set("runtime.guard.rejected_samples",
               static_cast<double>(rejected_samples));
  registry.set("runtime.guard.rollbacks", static_cast<double>(rollbacks));
  registry.set("runtime.guard.quarantines", static_cast<double>(quarantines));
  registry.set("runtime.guard.quarantine_blocked",
               static_cast<double>(quarantine_blocked));
  registry.set("runtime.guard.watchdog_pins",
               static_cast<double>(watchdog_pins));
  registry.set("runtime.guard.pinned_decisions",
               static_cast<double>(pinned_decisions));
}

Json GuardMetrics::to_json() const {
  Json j;
  j["clamped_fields"] = Json(static_cast<double>(clamped_fields));
  j["rejected_samples"] = Json(static_cast<double>(rejected_samples));
  j["rollbacks"] = Json(static_cast<double>(rollbacks));
  j["quarantines"] = Json(static_cast<double>(quarantines));
  j["quarantine_blocked"] = Json(static_cast<double>(quarantine_blocked));
  j["watchdog_pins"] = Json(static_cast<double>(watchdog_pins));
  j["pinned_decisions"] = Json(static_cast<double>(pinned_decisions));
  return j;
}

GuardMetrics GuardMetrics::from_json(const Json& j) {
  GuardMetrics m;
  m.clamped_fields =
      static_cast<std::uint64_t>(j.number_or("clamped_fields", 0));
  m.rejected_samples =
      static_cast<std::uint64_t>(j.number_or("rejected_samples", 0));
  m.rollbacks = static_cast<std::uint64_t>(j.number_or("rollbacks", 0));
  m.quarantines = static_cast<std::uint64_t>(j.number_or("quarantines", 0));
  m.quarantine_blocked =
      static_cast<std::uint64_t>(j.number_or("quarantine_blocked", 0));
  m.watchdog_pins =
      static_cast<std::uint64_t>(j.number_or("watchdog_pins", 0));
  m.pinned_decisions =
      static_cast<std::uint64_t>(j.number_or("pinned_decisions", 0));
  return m;
}

bool SampleGuard::admit(profile::ProfileReport& sample, std::string& why) {
  if (!config_.enabled) return true;

  // Non-finite or non-positive timing: nothing downstream can use this
  // sample (phase billing would corrupt the clock), drop it whole.
  const double timings[] = {sample.kernel_time, sample.cpu_time,
                            sample.copy_time, sample.total_time};
  for (double t : timings) {
    if (!std::isfinite(t) || t < 0) {
      metrics_->rejected_samples += 1;
      why = "non-finite or negative timing";
      return false;
    }
  }
  if (sample.total_time <= 0) {
    metrics_->rejected_samples += 1;
    why = "non-positive total_time";
    return false;
  }

  // Rates live in [0, 1]; counts, bandwidths and energies are non-negative.
  // Saturated / wrapped counters are pulled back instead of dropped — the
  // timing side of the sample is still informative.
  std::uint64_t clamped = 0;
  for (double* field :
       {&sample.cpu_l1_miss_rate, &sample.cpu_llc_miss_rate,
        &sample.gpu_l1_hit_rate, &sample.gpu_llc_hit_rate,
        &sample.gpu_transactions, &sample.gpu_transaction_size,
        &sample.gpu_ll_throughput, &sample.cpu_ll_throughput, &sample.energy,
        &sample.average_power}) {
    if (!std::isfinite(*field)) {
      *field = 0;
      clamped += 1;
    }
  }
  clamped += clamp_field(sample.cpu_l1_miss_rate, 0.0, 1.0);
  clamped += clamp_field(sample.cpu_llc_miss_rate, 0.0, 1.0);
  clamped += clamp_field(sample.gpu_l1_hit_rate, 0.0, 1.0);
  clamped += clamp_field(sample.gpu_llc_hit_rate, 0.0, 1.0);
  const double kMax = std::numeric_limits<double>::max();
  clamped += clamp_field(sample.gpu_transactions, 0.0, kMax);
  clamped += clamp_field(sample.gpu_transaction_size, 0.0, kMax);
  clamped += clamp_field(sample.gpu_ll_throughput, 0.0, kMax);
  clamped += clamp_field(sample.cpu_ll_throughput, 0.0, kMax);
  clamped += clamp_field(sample.energy, 0.0, kMax);
  clamped += clamp_field(sample.average_power, 0.0, kMax);
  metrics_->clamped_fields += clamped;

  // Robust outlier rejection on the one field every decision input scales
  // with: |total_time - median| > k * MAD of the accepted history. MAD is
  // immune to the very outliers it filters, unlike a mean/stddev band.
  if (accepted_total_time_.size() >= config_.mad_min_samples) {
    const std::vector<double> history(accepted_total_time_.begin(),
                                      accepted_total_time_.end());
    const double center = median(history);
    double spread = mad(history) * config_.mad_k;
    // A flat history has MAD 0 (simulated samples repeat exactly); fall
    // back to a relative band so moderate drift still passes.
    if (spread <= 0) spread = center * 0.5;
    if (std::abs(sample.total_time - center) > spread) {
      consecutive_mad_rejects_ += 1;
      // A persistent level shift is a regime change (real phase boundary),
      // not a burst of outliers: admit it and restart the history here.
      if (consecutive_mad_rejects_ >= config_.regime_change_after) {
        consecutive_mad_rejects_ = 0;
        accepted_total_time_.clear();
      } else {
        metrics_->rejected_samples += 1;
        std::ostringstream out;
        out.precision(3);
        out << "total_time outlier (" << sample.total_time * 1e6
            << "us vs median " << center * 1e6 << "us)";
        why = out.str();
        return false;
      }
    } else {
      consecutive_mad_rejects_ = 0;
    }
  }

  accepted_total_time_.push_back(sample.total_time);
  while (accepted_total_time_.size() > config_.history) {
    accepted_total_time_.pop_front();
  }
  return true;
}

void SampleGuard::reset_history() {
  accepted_total_time_.clear();
  consecutive_mad_rejects_ = 0;
}

Json SampleGuard::snapshot() const {
  Json j;
  Json history{JsonArray{}};
  for (const double t : accepted_total_time_) history.push_back(Json(t));
  j["accepted_total_time"] = std::move(history);
  j["consecutive_mad_rejects"] =
      Json(static_cast<double>(consecutive_mad_rejects_));
  return j;
}

void SampleGuard::restore(const Json& j) {
  accepted_total_time_.clear();
  for (const Json& t : j.at("accepted_total_time").as_array()) {
    accepted_total_time_.push_back(t.as_number());
  }
  consecutive_mad_rejects_ =
      static_cast<std::size_t>(j.number_or("consecutive_mad_rejects", 0));
}

void SwitchGuard::on_decision() {
  decision_clock_ += 1;
  while (!recent_switches_.empty() &&
         recent_switches_.front() + config_.watchdog_window <
             decision_clock_) {
    recent_switches_.pop_front();
  }
}

bool SwitchGuard::pinned() const {
  return config_.enabled && decision_clock_ < pinned_until_;
}

bool SwitchGuard::allow(comm::CommModel target) const {
  if (!config_.enabled) return true;
  if (pinned()) return false;
  return decision_clock_ >= quarantined_until_[core::model_index(target)];
}

bool SwitchGuard::on_switch() {
  if (!config_.enabled) return false;
  recent_switches_.push_back(decision_clock_);
  if (recent_switches_.size() <= config_.max_switches_in_window) return false;
  // Oscillation: too many switches inside the sliding window. Pin the model
  // the controller just landed on; the pin outlasts the window so the
  // workload has time to settle before switching re-arms.
  pinned_until_ = decision_clock_ + config_.pin_decisions;
  std::ostringstream out;
  out << recent_switches_.size() << " switches in last "
      << config_.watchdog_window << " decisions";
  pin_reason_ = out.str();
  recent_switches_.clear();
  metrics_->watchdog_pins += 1;
  return true;
}

bool SwitchGuard::on_misprediction(comm::CommModel target) {
  if (!config_.enabled) return false;
  auto& strikes = strikes_[core::model_index(target)];
  strikes += 1;
  if (strikes < config_.quarantine_after) return false;
  strikes = 0;
  quarantined_until_[core::model_index(target)] =
      decision_clock_ + config_.cooldown_decisions;
  metrics_->quarantines += 1;
  return true;
}

Json SwitchGuard::snapshot() const {
  Json j;
  j["decision_clock"] = Json(static_cast<double>(decision_clock_));
  j["pinned_until"] = Json(static_cast<double>(pinned_until_));
  j["pin_reason"] = Json(pin_reason_);
  Json switches{JsonArray{}};
  for (const std::uint64_t stamp : recent_switches_) {
    switches.push_back(Json(static_cast<double>(stamp)));
  }
  j["recent_switches"] = std::move(switches);
  Json strikes{JsonArray{}};
  Json quarantined{JsonArray{}};
  for (std::size_t m = 0; m < strikes_.size(); ++m) {
    strikes.push_back(Json(static_cast<double>(strikes_[m])));
    quarantined.push_back(Json(static_cast<double>(quarantined_until_[m])));
  }
  j["strikes"] = std::move(strikes);
  j["quarantined_until"] = std::move(quarantined);
  return j;
}

void SwitchGuard::restore(const Json& j) {
  decision_clock_ =
      static_cast<std::uint64_t>(j.number_or("decision_clock", 0));
  pinned_until_ = static_cast<std::uint64_t>(j.number_or("pinned_until", 0));
  pin_reason_ = j.string_or("pin_reason", "");
  recent_switches_.clear();
  for (const Json& stamp : j.at("recent_switches").as_array()) {
    recent_switches_.push_back(static_cast<std::uint64_t>(stamp.as_number()));
  }
  const JsonArray& strikes = j.at("strikes").as_array();
  const JsonArray& quarantined = j.at("quarantined_until").as_array();
  for (std::size_t m = 0; m < strikes_.size(); ++m) {
    strikes_[m] = m < strikes.size()
                      ? static_cast<std::uint64_t>(strikes[m].as_number())
                      : 0;
    quarantined_until_[m] =
        m < quarantined.size()
            ? static_cast<std::uint64_t>(quarantined[m].as_number())
            : 0;
  }
}

}  // namespace cig::runtime
