#include "runtime/checkpoint.h"

#include <filesystem>

#include "persist/snapshot.h"
#include "support/log.h"

namespace cig::runtime {

namespace fs = std::filesystem;

void PersistStats::export_to(sim::StatRegistry& registry) const {
  registry.set("persist.recovered", static_cast<double>(recovered));
  registry.set("persist.torn_discarded", static_cast<double>(torn_discarded));
  registry.set("persist.torn_bytes", static_cast<double>(torn_bytes));
  registry.set("persist.tail_dropped", static_cast<double>(tail_dropped));
  registry.set("persist.snapshot_rejected",
               static_cast<double>(snapshot_rejected));
  registry.set("persist.snapshot_writes",
               static_cast<double>(snapshot_writes));
  registry.set("persist.appends", static_cast<double>(appends));
  registry.set("persist.resumed", static_cast<double>(resumed));
  registry.set("persist.resume_sample", static_cast<double>(resume_sample));
}

Json PersistStats::to_json() const {
  Json j;
  j["recovered"] = Json(static_cast<double>(recovered));
  j["torn_discarded"] = Json(static_cast<double>(torn_discarded));
  j["torn_bytes"] = Json(static_cast<double>(torn_bytes));
  j["tail_dropped"] = Json(static_cast<double>(tail_dropped));
  j["snapshot_rejected"] = Json(static_cast<double>(snapshot_rejected));
  j["snapshot_writes"] = Json(static_cast<double>(snapshot_writes));
  j["appends"] = Json(static_cast<double>(appends));
  j["resumed"] = Json(static_cast<double>(resumed));
  j["resume_sample"] = Json(static_cast<double>(resume_sample));
  return j;
}

ReplayCheckpoint::ReplayCheckpoint(const CheckpointConfig& config)
    : config_(config) {
  if (config_.snapshot_every == 0) config_.snapshot_every = 1;
  if (config_.dir.empty()) return;

  std::error_code ec;
  fs::create_directories(config_.dir, ec);
  if (ec) {
    disable("cannot create '" + config_.dir + "': " + ec.message());
    return;
  }
  snapshot_path_ = (fs::path(config_.dir) / "controller.snap").string();

  try {
    journal_ = std::make_unique<persist::Journal>(
        (fs::path(config_.dir) / "samples.journal").string());
  } catch (const std::exception& e) {
    disable(e.what());
    return;
  }
  enabled_ = true;

  const auto& recovery = journal_->recovery();
  stats_.recovered = recovery.records;
  if (recovery.torn) {
    stats_.torn_discarded += 1;
    stats_.torn_bytes += recovery.torn_bytes;
    CIG_LOG_C(::cig::LogLevel::Warn, "persist",
              "journal recovery truncated a torn tail ("
                  << recovery.torn_bytes << " bytes after "
                  << recovery.records << " intact records)");
  }

  // Reconcile the snapshot against the journal into one resume point.
  const persist::SnapshotLoad snap =
      persist::load_snapshot(snapshot_path_, kSnapshotKind, kSnapshotVersion);
  std::uint64_t next_sample = 0;
  bool snapshot_ok = false;
  if (snap.present) {
    if (!snap.valid) {
      stats_.snapshot_rejected += 1;
      if (snap.torn) stats_.torn_discarded += 1;
      CIG_LOG_C(::cig::LogLevel::Warn, "persist",
                "controller snapshot rejected (" << snap.error
                                                 << "); cold-starting");
    } else if (snap.snapshot.records.size() != 2) {
      stats_.snapshot_rejected += 1;
      CIG_LOG_C(::cig::LogLevel::Warn, "persist",
                "controller snapshot malformed ("
                    << snap.snapshot.records.size()
                    << " records, expected 2); cold-starting");
    } else {
      next_sample = static_cast<std::uint64_t>(
          snap.snapshot.records[0].number_or("next_sample", 0));
      if (next_sample > journal_->records().size()) {
        // The snapshot claims samples the journal never saw — the pair is
        // inconsistent (external tampering or a lost journal); trust
        // neither.
        stats_.snapshot_rejected += 1;
        CIG_LOG_C(::cig::LogLevel::Warn, "persist",
                  "controller snapshot covers "
                      << next_sample << " samples but the journal holds "
                      << journal_->records().size() << "; cold-starting");
        next_sample = 0;
      } else {
        snapshot_ok = true;
      }
    }
  }

  try {
    if (!snapshot_ok) {
      // Cold start: without a restorable controller the journaled samples
      // cannot be folded in, so the run restarts from sample 0.
      stats_.tail_dropped += journal_->records().size();
      journal_->truncate_records(0);
      return;
    }
    // Journal records past the snapshot describe samples whose controller
    // state was lost with the crash; the live loop re-runs them, so drop
    // them to keep the journal == executed-prefix invariant.
    if (journal_->records().size() > next_sample) {
      stats_.tail_dropped += journal_->records().size() - next_sample;
      journal_->truncate_records(next_sample);
    }
  } catch (const std::exception& e) {
    disable(e.what());
    return;
  }

  controller_state_ = snap.snapshot.records[1];
  resume_sample_ = next_sample;
  has_snapshot_ = true;
  records_.reserve(journal_->records().size());
  for (const std::string& payload : journal_->records()) {
    try {
      records_.push_back(Json::parse(payload));
    } catch (const std::exception& e) {
      // A checksummed record that fails to parse means the writer was
      // broken, not the disk; safest is a cold start.
      CIG_LOG_C(::cig::LogLevel::Warn, "persist",
                "journal record unparsable despite valid checksum ("
                    << e.what() << "); cold-starting");
      invalidate_snapshot("unparsable journal record");
      return;
    }
  }
  stats_.resumed = 1;
  stats_.resume_sample = resume_sample_;
}

void ReplayCheckpoint::disable(const std::string& why) {
  enabled_ = false;
  has_snapshot_ = false;
  journal_.reset();
  CIG_LOG_C(::cig::LogLevel::Warn, "persist",
            "checkpointing disabled: " << why);
}

void ReplayCheckpoint::append_sample(const Json& record) {
  if (!enabled_) return;
  try {
    journal_->append(record.dump());
    stats_.appends += 1;
  } catch (const std::exception& e) {
    disable(e.what());
  }
}

void ReplayCheckpoint::write_snapshot(std::uint64_t next_sample,
                                      const Json& controller_state) {
  if (!enabled_) return;
  persist::SnapshotFile snapshot;
  snapshot.kind = kSnapshotKind;
  snapshot.version = kSnapshotVersion;
  Json meta;
  meta["next_sample"] = Json(static_cast<double>(next_sample));
  snapshot.records.push_back(std::move(meta));
  snapshot.records.push_back(controller_state);
  try {
    persist::write_snapshot(snapshot_path_, snapshot);
    stats_.snapshot_writes += 1;
  } catch (const std::exception& e) {
    disable(e.what());
  }
}

void ReplayCheckpoint::invalidate_snapshot(const std::string& why) {
  stats_.snapshot_rejected += 1;
  stats_.resumed = 0;
  stats_.resume_sample = 0;
  has_snapshot_ = false;
  resume_sample_ = 0;
  records_.clear();
  controller_state_ = Json();
  CIG_LOG_C(::cig::LogLevel::Warn, "persist",
            "controller snapshot invalidated (" << why
                                                << "); cold-starting");
  std::error_code ec;
  fs::remove(snapshot_path_, ec);
  if (!enabled_) return;
  try {
    stats_.tail_dropped += journal_->records().size();
    journal_->truncate_records(0);
  } catch (const std::exception& e) {
    disable(e.what());
  }
}

}  // namespace cig::runtime
