#include "runtime/estimator.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "support/assert.h"

namespace cig::runtime {

namespace {

constexpr double kUnbounded = std::numeric_limits<double>::infinity();

// Element-granular bytes the kernel requested per iteration (t_n * t_size).
double gpu_demand_bytes(const profile::ProfileReport& p) {
  return p.gpu_transactions * p.gpu_transaction_size;
}

// Per-iteration time that is neither CPU compute nor kernel: copies,
// cache maintenance, UM migration — everything a switch to ZC eliminates.
Seconds transfer_overhead(const profile::ProfileReport& p) {
  return std::max(0.0, p.total_time - p.cpu_time - p.kernel_time);
}

}  // namespace

SwitchEstimator::SwitchEstimator(const core::DeviceCharacterization& device,
                                 const soc::BoardConfig& board)
    : device_(device), board_(board) {}

RefinedEstimate SwitchEstimator::refine(const profile::ProfileReport& smoothed,
                                        comm::CommModel to,
                                        Bytes shared_bytes) const {
  if (to == smoothed.model) return RefinedEstimate{};
  if (to == comm::CommModel::ZeroCopy) return to_zero_copy(smoothed);
  return to_cached(smoothed, to, shared_bytes);
}

RefinedEstimate SwitchEstimator::to_zero_copy(
    const profile::ProfileReport& smoothed) const {
  RefinedEstimate est;
  if (smoothed.total_time <= 0 || smoothed.kernel_time <= 0) return est;

  // Structural term: eqn 3 with the *measured* non-compute overhead in the
  // copy slot. The offline flow only credits explicit copies because that
  // is all a one-shot profile labels; the runtime can see that coherence
  // maintenance and UM migration vanish under ZC too.
  core::SpeedupInputs inputs{.runtime = smoothed.total_time,
                             .copy_time = transfer_overhead(smoothed),
                             .cpu_time = smoothed.cpu_time,
                             .gpu_time = smoothed.kernel_time};
  est.structural = core::sc_to_zc_speedup(inputs, kUnbounded);

  // Roofline term: the same kernel demand priced on the ZC path. The MB1 ZC
  // peak is the measured delivered bandwidth of that path (uncached pinned
  // on SwFlush boards, the snoop port on I/O-coherent ones). ZC never makes
  // the kernel itself faster, so the current kernel time is the floor.
  const BytesPerSecond zc_peak =
      device_.mb1.gpu_ll_throughput[core::model_index(
          comm::CommModel::ZeroCopy)];
  CIG_EXPECTS(zc_peak > 0);
  const Seconds zc_kernel =
      std::max(smoothed.kernel_time, gpu_demand_bytes(smoothed) / zc_peak);
  // Overlapped total: the CPU task runs concurrently under the tiled
  // pattern. CPU-side cache loss on SwFlush boards is not priced here —
  // CPU-cache-hungry tasks never reach this estimator (the CPU-threshold
  // branch of the decision flow rejects ZC for them first).
  const Seconds zc_total = std::max(zc_kernel, smoothed.cpu_time);
  est.roofline = zc_total > 0 ? smoothed.total_time / zc_total : 1.0;

  est.speedup = std::min(est.structural, est.roofline);
  est.target_time = smoothed.total_time / std::max(est.speedup, 1e-12);
  return est;
}

RefinedEstimate SwitchEstimator::to_cached(
    const profile::ProfileReport& smoothed, comm::CommModel to,
    Bytes shared_bytes) const {
  RefinedEstimate est;
  if (smoothed.total_time <= 0 || smoothed.kernel_time <= 0) return est;
  const bool from_zc = smoothed.model == comm::CommModel::ZeroCopy;

  // Eqn 4's structural term only prices what a cached model costs (copies
  // return, CPU and GPU serialize) — it is <= 1 by construction, with the
  // cache benefit bounded separately by ZC/SC_Max_speedup. The roofline
  // makes the benefit concrete.
  core::SpeedupInputs inputs{.runtime = smoothed.total_time,
                             .copy_time = smoothed.copy_time,
                             .cpu_time = smoothed.cpu_time,
                             .gpu_time = smoothed.kernel_time};
  est.structural =
      from_zc ? core::zc_to_sc_speedup(inputs, kUnbounded) : 1.0;

  // Kernel on the target model. Leaving ZC the kernel was bound by the ZC
  // path, so its demand priced on the re-enabled hierarchy is the estimate
  // (optimistic: the compute floor is invisible while the path dominates).
  // Between the two cached models the hierarchy barely changes, so the
  // measured kernel time is the floor.
  const BytesPerSecond ll_peak =
      device_.mb1.gpu_ll_throughput[core::model_index(to)];
  CIG_EXPECTS(ll_peak > 0);
  const Seconds kernel = from_zc ? gpu_demand_bytes(smoothed) / ll_peak
                                 : smoothed.kernel_time;

  // Transfer costs of the target model for the shared buffer.
  Seconds transfer = 0;
  if (to == comm::CommModel::StandardCopy) {
    // h2d + d2h explicit copies each iteration.
    transfer = 2 * (board_.copy.per_call_overhead +
                    static_cast<double>(shared_bytes) / board_.copy.bandwidth);
  } else {
    // UM steady state ping-pongs only the pages the CPU actually rewrites;
    // the rest stays device-resident after the first iteration. The CPU's
    // LL-delivered bytes approximate that working set (floor: one page).
    const double page = static_cast<double>(board_.um.page_size);
    const double cpu_bytes = std::max(
        page, smoothed.cpu_ll_throughput * smoothed.cpu_time);
    const double pages = std::ceil(cpu_bytes / page);
    const double faults =
        std::ceil(pages / static_cast<double>(board_.um.batch_pages));
    transfer = 2 * (faults * board_.um.fault_latency +
                    pages * page / board_.um.migration_bw);
  }

  const Seconds target_total = smoothed.cpu_time + kernel + transfer +
                               board_.gpu.launch_overhead;
  est.roofline =
      target_total > 0 ? smoothed.total_time / target_total : 1.0;

  // Leaving ZC the roofline can overestimate (unknown compute floor); the
  // device-level MB1 ratio caps it exactly as the offline flow's
  // expected-range upper end does.
  est.speedup = from_zc
                    ? std::min(est.roofline, device_.zc_sc_max_speedup())
                    : est.roofline;
  est.target_time = smoothed.total_time / std::max(est.speedup, 1e-12);
  return est;
}

}  // namespace cig::runtime
