// Runtime metrics of the adaptive controller: how often it switched, how
// long it spent in each communication model, and how its speedup
// predictions compared with what the switches actually realized. Exported
// into the simulator's stat registry (prefix "runtime.") so controller
// behaviour shows up next to the PMU-style counters.
#pragma once

#include <cstdint>
#include <string>

#include "core/microbench.h"
#include "obs/histogram.h"
#include "runtime/guard.h"
#include "sim/stat_registry.h"
#include "support/units.h"

namespace cig::runtime {

struct RuntimeMetrics {
  std::uint64_t samples = 0;        // profile samples ingested
  std::uint64_t decisions = 0;      // decision-flow evaluations
  std::uint64_t switches = 0;       // committed model switches
  std::uint64_t vetoed_by_cost = 0; // wanted switches the cost model blocked
  // Switches the offline flow wanted but the online roofline refinement
  // predicts would not pay (refined speedup <= 1).
  std::uint64_t vetoed_by_estimate = 0;
  // Switches whose realized speedup (pre-switch vs post-switch phase time)
  // came in below 1: the controller made things worse.
  std::uint64_t mispredicted_switches = 0;
  std::uint64_t phase_changes = 0;  // debounced zone transitions observed
  // Switches the memory-pressure governor forced down the footprint ladder
  // (SC -> UM -> ZC), counted separately from the planner's own switches so
  // the oscillation accounting stays comparable with and without a budget.
  std::uint64_t demotions = 0;

  core::PerModel<Seconds> time_in_model{};  // observed time per model
  Seconds switch_overhead = 0;              // cumulative realized switch cost

  // Geometric accumulation over committed switches: the products of the
  // predicted and of the realized speedups. predicted/realized near 1 of
  // each other = the eqn-3/4 estimators track reality online.
  double predicted_speedup_product = 1.0;
  double realized_speedup_product = 1.0;

  // Latency distributions (µs domain): one phase_latency sample per sampled
  // phase (whole phase wall time), one kernel_latency sample per phase
  // (per-iteration kernel time). export_to publishes count/mean/min/max and
  // p50/p95/p99 under "runtime.phase_latency_us.*" / ".kernel_latency_us.*".
  obs::Histogram phase_latency_us;
  obs::Histogram kernel_latency_us;

  // Guardrail trips (clamps, rejections, rollbacks, quarantines, watchdog
  // pins); exported under "runtime.guard.*".
  GuardMetrics guard;

  void export_to(sim::StatRegistry& registry) const;
  std::string to_string() const;

  // Exact state round-trip for controller checkpoint/restore (histograms
  // included, so restored percentiles match the uninterrupted run).
  Json to_json() const;
  static RuntimeMetrics from_json(const Json& j);
};

}  // namespace cig::runtime
