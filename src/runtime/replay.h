// Replay driver: streams a phasic trace (a sequence of workload phases)
// through the adaptive controller, sampling the executor once per control
// period, and assembles the merged timeline (CPU/GPU/copy lanes from the
// executor, CTRL lane from the controller) plus the runtime stat registry.
//
// Also computes the reference points the evaluation needs: each static
// model run over the same trace, and the per-phase oracle (the best static
// model chosen per phase with perfect knowledge).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "core/framework.h"
#include "runtime/checkpoint.h"
#include "runtime/controller.h"
#include "sim/stat_registry.h"
#include "sim/trace_export.h"
#include "workload/builders.h"

namespace cig::runtime {

struct ReplayOptions {
  ControllerConfig controller;
  comm::ExecOptions exec;

  // Crash-safe checkpointing (runtime/checkpoint.h). When `checkpoint.dir`
  // is set, every sample is journaled and the controller state snapshotted,
  // and a restarted replay resumes mid-trace with byte-identical decisions.
  // Checkpointed runs must be deterministic: combining a checkpoint dir
  // with `mutate_sample` is unsupported (the mutation is not journaled, so
  // a resumed run would diverge); replay_phasic refuses the combination.
  CheckpointConfig checkpoint;

  // Perturbation seams (fault injection). `before_sample` runs before each
  // sample executes — it may mutate the SoC (thermal derating); the running
  // sample index is global across phases. `mutate_sample` runs on the
  // profiler report before the controller ingests it (counter noise,
  // dropout, stale batches). Both may be empty.
  std::function<void(soc::SoC&, obs::Tracer&, std::uint64_t)> before_sample;
  std::function<void(profile::ProfileReport&, obs::Tracer&, std::uint64_t)>
      mutate_sample;

  // Memory-pressure seam (chaos only): runs before each sample with the
  // controller itself, so the shrinking-DRAM ramp can rewrite the
  // governor's budget and transient allocation failures can arm the
  // demotion path. Dynamic budget mutations are not journaled, so
  // combining this with a checkpoint dir is unsupported (replay_phasic
  // refuses it); checkpointed runs use the *static* budget in
  // ControllerConfig::pressure, which the config fingerprint covers.
  std::function<void(AdaptiveController&, std::uint64_t)> pressure_sample;
};

struct SampleRecord {
  std::uint32_t phase = 0;
  bool cache_heavy = false;
  comm::CommModel model = comm::CommModel::StandardCopy;  // model sampled under
  Seconds time = 0;                                       // sample wall-clock
  ControlDecision decision;
};

struct ReplayResult {
  Seconds adaptive_time = 0;  // controller clock: samples + switch overhead
  RuntimeMetrics metrics;
  sim::StatRegistry registry;  // "runtime.*" + "persist.*" counters
  sim::Timeline timeline;      // merged lanes + controller annotations
  sim::TraceAux aux;           // counter tracks + decision->phase flows
  std::vector<SampleRecord> samples;  // live samples (post-resume on resume)

  // One record per sample over the WHOLE trace — on a resumed run the
  // journaled prefix plus the live tail — shaped exactly like the journal
  // records, so crash-recovery tests can compare an interrupted run against
  // an uninterrupted one byte for byte.
  std::vector<Json> decision_log;
  PersistStats persist;            // zeroes when checkpointing is off
  bool resumed = false;            // this run continued a checkpoint
  std::uint64_t resume_sample = 0; // first live sample index when resumed

  std::uint64_t switches_into(comm::CommModel model) const;
};

// Replays `phases` through a fresh controller on `framework`'s board.
ReplayResult replay_phasic(core::Framework& framework,
                           const std::vector<workload::PhasicPhase>& phases,
                           const ReplayOptions& options = {});

// Reference runs over the same trace.
struct StaticComparison {
  core::PerModel<Seconds> static_time{};  // whole trace under one model
  Seconds oracle_time = 0;                // per-phase best static model
  comm::CommModel best_static = comm::CommModel::StandardCopy;
  comm::CommModel worst_static = comm::CommModel::StandardCopy;
};

StaticComparison compare_static(core::Framework& framework,
                                const std::vector<workload::PhasicPhase>& phases,
                                const comm::ExecOptions& exec = {});

}  // namespace cig::runtime
