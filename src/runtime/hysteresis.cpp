#include "runtime/hysteresis.h"

#include "support/assert.h"

namespace cig::runtime {

HysteresisBand::HysteresisBand(double boundary_pct, HysteresisConfig config)
    : boundary_pct_(boundary_pct), config_(config) {
  CIG_EXPECTS(config_.margin_frac >= 0.0 && config_.margin_frac < 1.0);
  CIG_EXPECTS(config_.confirm_samples >= 1);
}

bool HysteresisBand::update(double value_pct) {
  const double margin = boundary_pct_ * config_.margin_frac;
  const double exit_boundary =
      over_ ? boundary_pct_ - margin : boundary_pct_ + margin;
  const bool beyond = over_ ? value_pct < exit_boundary
                            : value_pct > exit_boundary;
  if (!beyond) {
    streak_ = 0;
    return over_;
  }
  if (++streak_ >= config_.confirm_samples) {
    over_ = !over_;
    streak_ = 0;
  }
  return over_;
}

void HysteresisBand::reset(bool over) {
  over_ = over;
  streak_ = 0;
}

void HysteresisBand::rearm(double boundary_pct) {
  boundary_pct_ = boundary_pct;
  reset();
}

Json HysteresisBand::snapshot() const {
  Json j;
  j["boundary_pct"] = Json(boundary_pct_);
  j["over"] = Json(over_);
  j["streak"] = Json(static_cast<double>(streak_));
  return j;
}

void HysteresisBand::restore(const Json& j) {
  boundary_pct_ = j.number_or("boundary_pct", boundary_pct_);
  over_ = j.bool_or("over", false);
  streak_ = static_cast<std::uint32_t>(j.number_or("streak", 0));
}

HysteresisZoneTracker::HysteresisZoneTracker(double threshold_pct,
                                             double zone2_end_pct,
                                             bool grey_exists,
                                             HysteresisConfig config)
    : threshold_(threshold_pct, config),
      zone2_end_(zone2_end_pct, config),
      grey_exists_(grey_exists) {
  CIG_EXPECTS(zone2_end_pct >= threshold_pct);
}

core::Zone HysteresisZoneTracker::update(double usage_pct) {
  const core::Zone before = zone();
  threshold_.update(usage_pct);
  zone2_end_.update(usage_pct);
  changed_ = zone() != before;
  return zone();
}

core::Zone HysteresisZoneTracker::zone() const {
  if (!threshold_.over()) return core::Zone::Comparable;
  if (grey_exists_ && !zone2_end_.over()) return core::Zone::Grey;
  return core::Zone::CacheBound;
}

void HysteresisZoneTracker::reset() {
  threshold_.reset();
  zone2_end_.reset();
  changed_ = false;
}

void HysteresisZoneTracker::rearm(double threshold_pct, double zone2_end_pct,
                                  bool grey_exists) {
  CIG_EXPECTS(zone2_end_pct >= threshold_pct);
  threshold_.rearm(threshold_pct);
  zone2_end_.rearm(zone2_end_pct);
  grey_exists_ = grey_exists;
  changed_ = false;
}

Json HysteresisZoneTracker::snapshot() const {
  Json j;
  j["threshold"] = threshold_.snapshot();
  j["zone2_end"] = zone2_end_.snapshot();
  j["grey_exists"] = Json(grey_exists_);
  j["changed"] = Json(changed_);
  return j;
}

void HysteresisZoneTracker::restore(const Json& j) {
  threshold_.restore(j.at("threshold"));
  zone2_end_.restore(j.at("zone2_end"));
  grey_exists_ = j.bool_or("grey_exists", grey_exists_);
  changed_ = j.bool_or("changed", false);
}

}  // namespace cig::runtime
