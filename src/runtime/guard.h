// Controller guardrails: the defensive layer between raw profiler samples
// and the adaptive decision flow.
//
// Real counters are noisy, drop batches, and spike under scheduler
// interference; fed raw into the controller those artifacts cause spurious
// switches and, in the worst case, sustained oscillation between models.
// Two small state machines contain the damage:
//
//   SampleGuard  — per-sample input hygiene: clamps rates into [0, 1] and
//                  negative counters to zero, rejects non-finite or
//                  non-positive timings outright, and MAD-filters
//                  total_time against the recent history so one 10x
//                  scheduler spike cannot poison the smoothing window.
//   SwitchGuard  — per-decision damage control: quarantines a target model
//                  after repeated mispredicted switches into it (cooldown
//                  measured in decisions), and an oscillation watchdog that
//                  pins the current model when the switch rate in a sliding
//                  window exceeds a budget, recording why.
//
// Every trip is counted in GuardMetrics (exported as `runtime.guard.*`) and
// mirrored as a CTRL-lane trace instant by the controller.
#pragma once

#include <cstdint>
#include <deque>
#include <string>

#include "comm/model.h"
#include "core/microbench.h"
#include "profile/report.h"
#include "sim/stat_registry.h"
#include "support/json.h"

namespace cig::runtime {

struct GuardConfig {
  bool enabled = true;

  // --- SampleGuard ---------------------------------------------------------
  // A sample is rejected when |total_time - median| > mad_k * MAD of the
  // last `history` accepted samples (needs `mad_min_samples` of history
  // first; a zero MAD falls back to a relative band around the median).
  double mad_k = 6.0;
  std::size_t mad_min_samples = 5;
  std::size_t history = 16;
  // After this many consecutive MAD rejections the filter concludes the
  // workload changed regime (a real phase shift, not a burst of outliers),
  // admits the sample and restarts the history from it. Two is the sweet
  // spot: one isolated spike still filters, while a genuine phase boundary
  // costs the controller only a single sample of reaction time.
  std::size_t regime_change_after = 2;

  // --- SwitchGuard ---------------------------------------------------------
  // A switch whose realized speedup lands below this is a misprediction
  // (mirrors the controller's realized < 1.0 bookkeeping, with margin).
  double rollback_threshold = 0.9;
  // Mispredicted switches into the same target before it is quarantined.
  std::uint64_t quarantine_after = 2;
  // Quarantine length, measured in decision evaluations.
  std::uint64_t cooldown_decisions = 32;
  // Oscillation watchdog: more than `max_switches_in_window` committed
  // switches within the last `watchdog_window` decisions pins the model.
  std::uint64_t watchdog_window = 16;
  std::uint64_t max_switches_in_window = 4;
  // Pin length, measured in decision evaluations.
  std::uint64_t pin_decisions = 64;
};

// Counts every guardrail action; exported under `runtime.guard.*`.
struct GuardMetrics {
  std::uint64_t clamped_fields = 0;     // fields pulled back into range
  std::uint64_t rejected_samples = 0;   // samples dropped (non-finite / MAD)
  std::uint64_t rollbacks = 0;          // switches undone after misprediction
  std::uint64_t quarantines = 0;        // models placed in cooldown
  std::uint64_t quarantine_blocked = 0; // candidate switches blocked by it
  std::uint64_t watchdog_pins = 0;      // oscillation watchdog activations
  std::uint64_t pinned_decisions = 0;   // evaluations skipped while pinned

  void export_to(sim::StatRegistry& registry) const;

  Json to_json() const;
  static GuardMetrics from_json(const Json& j);
};

class SampleGuard {
 public:
  SampleGuard(const GuardConfig& config, GuardMetrics& metrics)
      : config_(config), metrics_(&metrics) {}

  // Sanitizes `sample` in place (clamping counts toward metrics). Returns
  // false when the sample must be dropped; `why` then names the reason.
  bool admit(profile::ProfileReport& sample, std::string& why);

  // The history is per-model: switching models changes the timing regime,
  // so the old samples no longer bound the new ones.
  void reset_history();

  // Exact state round-trip (accepted history + reject streak) for
  // controller checkpoint/restore; the config comes from construction.
  Json snapshot() const;
  void restore(const Json& j);

 private:
  GuardConfig config_;
  GuardMetrics* metrics_;
  std::deque<double> accepted_total_time_;
  std::size_t consecutive_mad_rejects_ = 0;
};

class SwitchGuard {
 public:
  SwitchGuard(const GuardConfig& config, GuardMetrics& metrics)
      : config_(config), metrics_(&metrics) {}

  // Called once per decision evaluation; advances cooldown/pin clocks.
  void on_decision();

  // True while the oscillation watchdog holds the model fixed.
  bool pinned() const;
  // Why the model is pinned (empty when not pinned).
  const std::string& pin_reason() const { return pin_reason_; }

  // True when switching into `target` is currently allowed.
  bool allow(comm::CommModel target) const;

  // Records a committed switch; returns true when this switch tripped the
  // oscillation watchdog (the model is now pinned — the switch itself
  // stands, the *next* ones are held).
  bool on_switch();

  // Records a mispredicted switch into `target`; returns true when the
  // target was quarantined by this strike.
  bool on_misprediction(comm::CommModel target);

  // Exact state round-trip (decision clock, pin, switch window, strikes,
  // quarantines) for controller checkpoint/restore.
  Json snapshot() const;
  void restore(const Json& j);

 private:
  GuardConfig config_;
  GuardMetrics* metrics_;
  std::uint64_t decision_clock_ = 0;
  std::uint64_t pinned_until_ = 0;  // decision_clock_ exclusive bound
  std::string pin_reason_;
  std::deque<std::uint64_t> recent_switches_;  // decision_clock_ stamps
  core::PerModel<std::uint64_t> strikes_{};
  core::PerModel<std::uint64_t> quarantined_until_{};
};

}  // namespace cig::runtime
