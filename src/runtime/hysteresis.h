// Phase-change detection with hysteresis: the windowed cache-usage metrics
// are compared against the board's GPU_Cache_Threshold / zone boundaries
// (and the CPU threshold) through dead bands, so a metric oscillating ±ε
// around a boundary cannot flap the controller between models.
#pragma once

#include <cstdint>

#include "core/thresholds.h"
#include "support/json.h"

namespace cig::runtime {

struct HysteresisConfig {
  // Half-width of the dead band around each boundary, as a fraction of the
  // boundary itself: crossing *up* requires value > boundary * (1 + frac),
  // crossing back *down* requires value < boundary * (1 - frac). Relative
  // margins keep the band meaningful across boards whose thresholds differ
  // by an order of magnitude (TX2 1.8% vs Xavier ~50%).
  double margin_frac = 0.25;
  // Consecutive out-of-band observations required to confirm a crossing
  // (1 = the margin alone debounces).
  std::uint32_t confirm_samples = 1;
};

// Debounced over/under state for a single boundary.
class HysteresisBand {
 public:
  HysteresisBand(double boundary_pct, HysteresisConfig config);

  // Feeds one observation; returns the debounced "over boundary" state.
  bool update(double value_pct);

  bool over() const { return over_; }
  double boundary_pct() const { return boundary_pct_; }

  void reset(bool over = false);

  // Moves the band to a new boundary and resets the debounced state — used
  // when a model switch changes the scale the metric is normalised by.
  void rearm(double boundary_pct);

  // Exact state round-trip (boundary + debounce state; the config comes
  // from construction) for controller checkpoint/restore.
  Json snapshot() const;
  void restore(const Json& j);

 private:
  double boundary_pct_;
  HysteresisConfig config_;
  bool over_ = false;
  std::uint32_t streak_ = 0;  // consecutive observations beyond the band
};

// Debounced zone classification: two bands (threshold, zone-2 end) combined
// into the paper's three zones, with the SwFlush grey-zone collapse.
class HysteresisZoneTracker {
 public:
  // `grey_exists`: false on SwFlush boards, where zone 2 collapses into
  // zone 3 (DecisionEngine::classify_gpu applies the same rule).
  HysteresisZoneTracker(double threshold_pct, double zone2_end_pct,
                        bool grey_exists, HysteresisConfig config);

  // Feeds one windowed GPU cache-usage observation (percent); returns the
  // debounced zone.
  core::Zone update(double usage_pct);

  core::Zone zone() const;

  // True if the most recent update() changed the zone (a detected phase
  // change).
  bool changed() const { return changed_; }

  void reset();

  // Re-targets the bands (and resets state): the controller re-arms the
  // tracker after a model switch because the zone boundaries that apply
  // under SC/UM (the MB2 threshold and zone-2 end) differ from the ones
  // that apply under ZC (saturation of the uncached/snoop path).
  void rearm(double threshold_pct, double zone2_end_pct, bool grey_exists);

  // Exact state round-trip for controller checkpoint/restore.
  Json snapshot() const;
  void restore(const Json& j);

 private:
  HysteresisBand threshold_;
  HysteresisBand zone2_end_;
  bool grey_exists_;
  bool changed_ = false;
};

}  // namespace cig::runtime
