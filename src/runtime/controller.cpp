#include "runtime/controller.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "core/footprint.h"
#include "core/microbench.h"
#include "support/assert.h"
#include "support/hash.h"

namespace cig::runtime {

namespace {

std::string switch_label(comm::CommModel from, comm::CommModel to,
                         double predicted) {
  std::ostringstream out;
  out << "switch " << comm::model_name(from) << "->" << comm::model_name(to);
  out.precision(3);
  out << " (pred " << predicted << "x)";
  return out.str();
}

comm::CommModel parse_model(const std::string& name) {
  for (const comm::CommModel m : core::kAllModels) {
    if (name == comm::model_name(m)) return m;
  }
  throw std::runtime_error("controller snapshot: unknown model \"" + name +
                           "\"");
}

// Fingerprint of everything the restored controller assumes matches the
// snapshotting run: board identity plus the full ControllerConfig. A
// snapshot taken under a different config would restore cleanly but then
// diverge silently, so restore() refuses it instead.
std::string config_fingerprint(const ControllerConfig& c,
                               const soc::BoardConfig& board) {
  std::ostringstream out;
  out.precision(17);
  out << board.name << '|' << c.window.capacity << '|' << c.window.ewma_alpha
      << '|' << c.hysteresis.margin_frac << '|' << c.hysteresis.confirm_samples
      << '|' << c.amortization_horizon_iters << '|' << c.min_samples << '|'
      << comm::model_name(c.initial_model) << '|' << c.zc_saturation_pct << '|'
      << c.guard.enabled << '|' << c.guard.mad_k << '|'
      << c.guard.mad_min_samples << '|' << c.guard.history << '|'
      << c.guard.regime_change_after << '|' << c.guard.rollback_threshold
      << '|' << c.guard.quarantine_after << '|' << c.guard.cooldown_decisions
      << '|' << c.guard.watchdog_window << '|'
      << c.guard.max_switches_in_window << '|' << c.guard.pin_decisions << '|'
      << c.pressure.budget << '|' << c.pressure.warn_frac << '|'
      << c.pressure.critical_frac;
  return support::fnv1a64_hex(support::fnv1a64(out.str()));
}

}  // namespace

Json ControlDecision::to_json() const {
  Json j;
  j["model_before"] = comm::model_name(model_before);
  j["model_after"] = comm::model_name(model_after);
  j["evaluated"] = evaluated;
  j["wanted_switch"] = wanted_switch;
  j["switched"] = switched;
  j["vetoed_by_cost"] = vetoed_by_cost;
  j["zone"] = core::zone_key(zone);
  j["predicted_speedup"] = predicted_speedup;
  j["offline_speedup"] = offline_speedup;
  j["switch_cost_us"] = to_us(switch_cost);
  j["predicted_gain_us"] = to_us(predicted_gain);
  j["rationale"] = rationale;
  j["sample_rejected"] = sample_rejected;
  j["rolled_back"] = rolled_back;
  j["blocked_by_guard"] = blocked_by_guard;
  if (!guard_event.empty()) j["guard_event"] = guard_event;
  j["demoted"] = demoted;
  j["blocked_by_budget"] = blocked_by_budget;
  j["pressure"] = mem::pressure_level_name(pressure);
  j["footprint_bytes"] = static_cast<double>(footprint_bytes);
  j["flow_id"] = flow_id;
  if (evaluated || demoted) j["explanation"] = explanation.to_json();
  return j;
}

AdaptiveController::AdaptiveController(const core::DecisionEngine& engine,
                                       comm::Executor& executor,
                                       ControllerConfig config)
    : engine_(engine),
      executor_(executor),
      estimator_(engine.device(), executor.board()),
      config_(config),
      model_(config.initial_model),
      window_(config.window),
      zone_tracker_(engine.device().gpu_threshold_pct(),
                    engine.device().gpu_zone2_end_pct(),
                    engine.device().capability ==
                        coherence::Capability::HwIoCoherent,
                    config.hysteresis),
      cpu_band_(engine.device().cpu_threshold_pct(), config.hysteresis),
      sample_guard_(config.guard, metrics_.guard),
      switch_guard_(config.guard, metrics_.guard),
      governor_(config.pressure) {
  CIG_EXPECTS(config_.amortization_horizon_iters > 0);
  CIG_EXPECTS(config_.min_samples >= 1);
  CIG_EXPECTS(config_.zc_saturation_pct > 0);
  arm_tracker();
}

void AdaptiveController::arm_tracker() {
  if (model_ == comm::CommModel::ZeroCopy) {
    // Under ZC the eqn-2 metric is normalised by the ZC path's own peak, so
    // the MB2 threshold (derived on the SC scale) does not apply; the zone
    // boundary is saturation of that path.
    zone_tracker_.rearm(config_.zc_saturation_pct, config_.zc_saturation_pct,
                        /*grey_exists=*/false);
  } else {
    zone_tracker_.rearm(engine_.device().gpu_threshold_pct(),
                        engine_.device().gpu_zone2_end_pct(),
                        engine_.device().capability ==
                            coherence::Capability::HwIoCoherent);
  }
  cpu_band_.rearm(engine_.device().cpu_threshold_pct());
}

ControlDecision AdaptiveController::on_sample(
    const profile::ProfileReport& raw_sample, std::uint64_t shared_base,
    Bytes shared_bytes) {
  ControlDecision decision;
  decision.model_before = model_;
  decision.model_after = model_;
  metrics_.samples += 1;

  // Input hygiene first: clamp wrapped/saturated counters in a copy and
  // drop samples whose timings are unusable or wild outliers. A rejected
  // sample is not billed (its timing is the untrustworthy part); when the
  // executor shares our tracer the clock still follows the real span.
  profile::ProfileReport sample = raw_sample;
  std::string reject_reason;
  if (!sample_guard_.admit(sample, reject_reason)) {
    decision.sample_rejected = true;
    decision.guard_event = "sample rejected: " + reject_reason;
    now_ = std::max(now_, tracer_.now());
    tracer_.set_now(now_);
    tracer_.instant(sim::Lane::Ctrl,
                    std::string("guard: reject (") + reject_reason + ")");
    return decision;
  }

  // Advance observed time and the per-model ledger by the sampled phase.
  const Seconds phase_time =
      sample.total_time * static_cast<double>(sample.iterations);
  metrics_.time_in_model[core::model_index(model_)] += phase_time;
  metrics_.phase_latency_us.add(to_us(phase_time));
  metrics_.kernel_latency_us.add(to_us(sample.kernel_time));
  now_ += phase_time;
  // When the executor shares our tracer it has already billed this phase's
  // span on the clock; adopt its end if rounding put it ahead so CTRL-lane
  // events stay strictly ordered.
  now_ = std::max(now_, tracer_.now());

  // Terminate the flow arrow from the previous committed switch inside this
  // phase — the first one executed under the new model — so the exported
  // trace draws switch -> affected phase.
  if (pending_flow_id_ != 0) {
    tracer_.set_now(now_ - phase_time / 2);
    tracer_.flow_end(pending_flow_id_, sim::Lane::Ctrl, pending_flow_name_);
    pending_flow_id_ = 0;
  }
  tracer_.set_now(now_);

  // Verify the previous switch against the first sample taken after it.
  if (verify_pending_) {
    verify_pending_ = false;
    if (sample.total_time > 0 && pre_switch_iter_time_ > 0) {
      const double realized = pre_switch_iter_time_ / sample.total_time;
      metrics_.realized_speedup_product *= realized;
      metrics_.predicted_speedup_product *= pending_predicted_;
      if (realized < 1.0) metrics_.mispredicted_switches += 1;
      if (config_.guard.enabled &&
          realized < config_.guard.rollback_threshold) {
        // The switch made things materially worse: undo it, strike the
        // model that failed us (repeat offenders get quarantined), and
        // restart the statistics under the restored model.
        return roll_back(decision, realized, shared_base, shared_bytes);
      }
    }
  }

  // Memory pressure next: account the current model's resident footprint,
  // grade it, and act before the decision flow runs — a budget breach (or
  // a transient allocation failure) forces a deterministic demotion down
  // the footprint ladder regardless of what the flow would recommend.
  const Bytes footprint =
      core::FootprintModel::resident_bytes(model_, shared_bytes);
  decision.footprint_bytes = footprint;
  if (governor_.enabled() && shared_bytes > 0) {
    const bool level_changed = governor_.observe(footprint);
    decision.pressure = governor_.level();
    tracer_.counter("ctrl.footprint_bytes", static_cast<double>(footprint));
    tracer_.counter("ctrl.mem_budget_bytes",
                    static_cast<double>(governor_.budget()));
    if (level_changed) {
      tracer_.instant(sim::Lane::Ctrl,
                      std::string("pressure -> ") +
                          mem::pressure_level_name(governor_.level()));
    }
  }
  if (alloc_failure_pending_) {
    alloc_failure_pending_ = false;
    if (!core::FootprintModel::is_floor(model_)) {
      return demote(decision, "alloc failure", shared_base, shared_bytes);
    }
    // Already at the smallest footprint: nothing left to free. Record the
    // event; the sample proceeds (the transient failure is survivable).
    decision.guard_event = "alloc failure at ZC floor";
    tracer_.instant(sim::Lane::Ctrl, "pressure: alloc failure at ZC floor");
  }
  if (governor_.enabled() && shared_bytes > 0 &&
      governor_.would_exceed(footprint) &&
      !core::FootprintModel::is_floor(model_)) {
    return demote(decision, "budget", shared_base, shared_bytes);
  }

  window_.add(sample);
  if (window_.size() < config_.min_samples) return decision;

  // Incremental decision flow over the smoothed counters, with the zone
  // classification debounced through the hysteresis bands.
  profile::ProfileReport smoothed = window_.smoothed();
  smoothed.model = model_;
  const core::CacheUsage usage = engine_.usage_from(smoothed);
  const core::Zone zone = zone_tracker_.update(usage.gpu_pct());
  const bool cpu_over = cpu_band_.update(usage.cpu_pct());
  if (zone_tracker_.changed()) {
    metrics_.phase_changes += 1;
    tracer_.instant(sim::Lane::Ctrl,
                    std::string("zone -> ") + core::zone_name(zone));
  }

  auto rec = engine_.recommend_for(
      usage, zone, cpu_over, model_, core::DecisionEngine::inputs_from(smoothed));
  core::DecisionEngine::annotate_footprint(rec, shared_bytes);
  decision.evaluated = true;
  decision.zone = zone;
  decision.offline_speedup = rec.estimated_speedup;
  decision.rationale = rec.rationale;
  decision.explanation = rec.explanation;
  metrics_.decisions += 1;
  switch_guard_.on_decision();

  // Counter tracks: the eqn-1/2 operating point this decision saw plus a
  // snapshot of the runtime.* registry, one sample per evaluation.
  tracer_.counter("ctrl.gpu_cache_usage_pct", usage.gpu_pct());
  tracer_.counter("ctrl.cpu_cache_usage_pct", usage.cpu_pct());
  tracer_.counter("ctrl.gpu_ll_throughput_gbps",
                  to_GBps(smoothed.gpu_ll_throughput));
  sim::StatRegistry scratch;
  metrics_.export_to(scratch);
  tracer_.counters_from(scratch.with_prefix("runtime."));

  // Oscillation watchdog: while pinned, the model is held fixed no matter
  // what the flow recommends; the pin reason travels with the decision.
  if (switch_guard_.pinned()) {
    decision.blocked_by_guard = true;
    decision.guard_event = "pinned: " + switch_guard_.pin_reason();
    metrics_.guard.pinned_decisions += 1;
    return decision;
  }

  // Candidate targets. The offline flow's suggestion leads when it wants a
  // switch ("switch to SC (or UM)" expands to both cached models). When the
  // flow keeps the current model, the roofline estimator still gets to
  // re-examine what the offline framework cannot price: ZC in zone 1 when
  // the MB3 cap (a memory-heavy worst case) kills eqn 3, and the cached
  // sibling (copy engine vs page migration) in the cache-bound zone.
  comm::CommModel candidates[2];
  std::size_t num_candidates = 0;
  const bool on_zc = model_ == comm::CommModel::ZeroCopy;
  if (rec.switch_model) {
    candidates[num_candidates++] = rec.suggested;
    if (rec.suggested == comm::CommModel::StandardCopy) {
      candidates[num_candidates++] = comm::CommModel::UnifiedMemory;
    }
  } else if (zone == core::Zone::Comparable && !cpu_over && !on_zc) {
    candidates[num_candidates++] = comm::CommModel::ZeroCopy;
  } else if (zone == core::Zone::CacheBound && !on_zc) {
    candidates[num_candidates++] =
        model_ == comm::CommModel::StandardCopy
            ? comm::CommModel::UnifiedMemory
            : comm::CommModel::StandardCopy;
  }
  if (num_candidates == 0) return decision;

  // Drop candidates still in quarantine (repeated mispredicted switches
  // into them). When every candidate is cooling down this evaluation ends
  // here — deliberately conservative: stay on the current model.
  std::size_t kept = 0;
  for (std::size_t i = 0; i < num_candidates; ++i) {
    if (switch_guard_.allow(candidates[i])) {
      candidates[kept++] = candidates[i];
    } else {
      metrics_.guard.quarantine_blocked += 1;
      tracer_.instant(sim::Lane::Ctrl,
                      std::string("guard: quarantine blocks ") +
                          comm::model_name(candidates[i]));
    }
  }
  if (kept == 0) {
    decision.blocked_by_guard = true;
    decision.guard_event = "all candidates quarantined";
    return decision;
  }
  num_candidates = kept;

  // Budget gate: drop candidates whose footprint both breaks the budget
  // and grows the resident set (shrinking moves are always allowed — that
  // is the demotion direction). The check that rejected each candidate is
  // recorded so `--explain` names the model and the budget.
  if (governor_.enabled() && shared_bytes > 0) {
    std::size_t fit = 0;
    for (std::size_t i = 0; i < num_candidates; ++i) {
      const Bytes candidate_fp =
          core::FootprintModel::resident_bytes(candidates[i], shared_bytes);
      if (!governor_.would_exceed(candidate_fp) || candidate_fp <= footprint) {
        candidates[fit++] = candidates[i];
      } else {
        governor_.count_blocked();
        decision.blocked_by_budget = true;
        const std::string check =
            std::string("footprint ") + comm::model_name(candidates[i]) +
            " " + format_bytes(candidate_fp) + " > budget " +
            format_bytes(governor_.budget()) + " -> candidate rejected";
        decision.explanation.checks.push_back(check);
        tracer_.instant(sim::Lane::Ctrl,
                        std::string("pressure blocks ") +
                            comm::model_name(candidates[i]) + " (footprint)");
      }
    }
    if (fit == 0) {
      decision.guard_event = "all candidates over budget";
      return decision;
    }
    num_candidates = fit;
  }

  RefinedEstimate refined;
  comm::CommModel candidate = model_;
  for (std::size_t i = 0; i < num_candidates; ++i) {
    const auto est = estimator_.refine(smoothed, candidates[i], shared_bytes);
    if (candidate == model_ || est.speedup > refined.speedup) {
      refined = est;
      candidate = candidates[i];
    }
  }
  decision.predicted_speedup = refined.speedup;
  tracer_.counter("ctrl.predicted_speedup", refined.speedup);
  if (refined.speedup <= 1.0) {
    if (rec.switch_model) {
      // The offline flow wanted this switch; the online refinement says it
      // would not pay at the current operating point.
      decision.wanted_switch = true;
      metrics_.vetoed_by_estimate += 1;
    }
    return decision;
  }
  decision.wanted_switch = true;

  // Switch planner: the predicted per-iteration gain over the amortization
  // horizon must cover the modelled re-allocation + coherence cost.
  const auto estimate =
      executor_.estimate_switch_cost(model_, candidate, shared_bytes);
  const Seconds gain_per_iter =
      smoothed.total_time * (1.0 - 1.0 / refined.speedup);
  decision.predicted_gain =
      gain_per_iter * config_.amortization_horizon_iters;
  if (decision.predicted_gain < estimate.total()) {
    decision.vetoed_by_cost = true;
    decision.switch_cost = estimate.total();
    metrics_.vetoed_by_cost += 1;
    tracer_.instant(sim::Lane::Ctrl,
                    std::string("veto ") + comm::model_name(model_) + "->" +
                        comm::model_name(candidate) + " (cost)");
    return decision;
  }

  // Commit: perform the switch on the live SoC and bill its cost. A flow
  // arrow starts inside the switch segment (so viewers bind it to that
  // slice) and terminates in the next sampled phase.
  const auto realized =
      executor_.apply_model_switch(model_, candidate, shared_base,
                                   shared_bytes);
  tracer_.segment(sim::Lane::Ctrl, now_, now_ + realized.total(),
                  switch_label(model_, candidate, refined.speedup));
  pending_flow_name_ = std::string("switch ") + comm::model_name(model_) +
                       "->" + comm::model_name(candidate);
  tracer_.set_now(now_ + realized.total() / 2);
  decision.flow_id = tracer_.flow_begin(sim::Lane::Ctrl, pending_flow_name_);
  pending_flow_id_ = decision.flow_id;
  now_ += realized.total();
  tracer_.set_now(now_);
  metrics_.switches += 1;
  metrics_.switch_overhead += realized.total();

  decision.switched = true;
  decision.switch_cost = realized.total();
  decision.model_after = candidate;
  decision.footprint_bytes =
      core::FootprintModel::resident_bytes(candidate, shared_bytes);

  // Plan demotion: the flow asked for a bigger model, the budget gate
  // rejected it, and the switch landed on a smaller-footprint survivor.
  // Same ladder as a resident demotion, caught one step earlier.
  if (decision.blocked_by_budget && rec.switch_model &&
      candidate != rec.suggested &&
      core::FootprintModel::resident_bytes(candidate, shared_bytes) <
          core::FootprintModel::resident_bytes(rec.suggested, shared_bytes)) {
    decision.demoted = true;
    metrics_.demotions += 1;
    governor_.count_demotion();
    tracer_.instant(sim::Lane::Ctrl,
                    std::string("pressure demotes plan ") +
                        comm::model_name(rec.suggested) + "->" +
                        comm::model_name(candidate));
  }

  verify_pending_ = true;
  // Verify against the newest raw sample, not the smoothed aggregate: the
  // window may still mix the previous phase in, and the switch responds to
  // the *new* phase.
  pre_switch_iter_time_ = window_.latest().total_time;
  pending_predicted_ = refined.speedup;
  rollback_model_ = model_;

  // Feed the oscillation watchdog. The committed switch stands — pinning
  // holds the model the controller just landed on, stopping the next flip.
  if (switch_guard_.on_switch()) {
    decision.guard_event = "watchdog pin: " + switch_guard_.pin_reason();
    tracer_.instant(sim::Lane::Ctrl,
                    std::string("guard: watchdog pins ") +
                        comm::model_name(candidate) + " (" +
                        switch_guard_.pin_reason() + ")");
  }

  model_ = candidate;
  // Samples taken under the old model are no longer comparable: the eqn-2
  // normalisation peak changes with the model, so restart the statistics
  // and re-target the zone boundaries for the new model.
  window_.clear();
  sample_guard_.reset_history();
  arm_tracker();
  return decision;
}

ControlDecision AdaptiveController::roll_back(ControlDecision& decision,
                                              double realized,
                                              std::uint64_t shared_base,
                                              Bytes shared_bytes) {
  const comm::CommModel failed = model_;
  const comm::CommModel restore = rollback_model_;
  std::ostringstream reason;
  reason.precision(3);
  reason << "rollback " << comm::model_name(failed) << "->"
         << comm::model_name(restore) << " (realized " << realized << "x < "
         << config_.guard.rollback_threshold << "x)";
  decision.rolled_back = true;
  decision.guard_event = reason.str();
  metrics_.guard.rollbacks += 1;

  // Strike the model that failed; repeat offenders cool down.
  if (switch_guard_.on_misprediction(failed)) {
    tracer_.instant(sim::Lane::Ctrl, std::string("guard: quarantine ") +
                                         comm::model_name(failed));
  }

  if (failed != restore) {
    const auto realized_cost =
        executor_.apply_model_switch(failed, restore, shared_base,
                                     shared_bytes);
    tracer_.segment(sim::Lane::Ctrl, now_, now_ + realized_cost.total(),
                    reason.str());
    now_ += realized_cost.total();
    tracer_.set_now(now_);
    metrics_.switch_overhead += realized_cost.total();
    // A rollback is itself a switch; the watchdog sees it so that a
    // switch/rollback ping-pong still trips the pin.
    switch_guard_.on_switch();
    model_ = restore;
  }
  decision.model_after = model_;

  window_.clear();
  sample_guard_.reset_history();
  arm_tracker();
  return decision;
}

ControlDecision AdaptiveController::demote(ControlDecision& decision,
                                           const std::string& cause,
                                           std::uint64_t shared_base,
                                           Bytes shared_bytes) {
  const comm::CommModel from = model_;
  // Walk the ladder to the first model the budget accepts; the ZC floor is
  // always accepted — there is nothing smaller to fall back to.
  comm::CommModel target = core::FootprintModel::demote(from);
  while (!core::FootprintModel::is_floor(target) &&
         governor_.would_exceed(
             core::FootprintModel::resident_bytes(target, shared_bytes))) {
    target = core::FootprintModel::demote(target);
  }
  const Bytes from_fp = core::FootprintModel::resident_bytes(from, shared_bytes);
  const Bytes target_fp =
      core::FootprintModel::resident_bytes(target, shared_bytes);

  std::string reason = std::string("demote ") + comm::model_name(from) +
                       "->" + comm::model_name(target) + " (" + cause;
  if (cause == "budget") {
    reason += ": footprint " + format_bytes(from_fp) + " > budget " +
              format_bytes(governor_.budget());
  }
  reason += ")";
  decision.demoted = true;
  decision.guard_event = reason;
  decision.pressure = governor_.level();
  governor_.count_demotion();
  metrics_.demotions += 1;

  // Structured provenance even though the Fig. 2 flow never ran: the
  // checks name the model the budget rejected and the budget itself.
  core::Explanation& ex = decision.explanation;
  ex.board = engine_.device().board;
  ex.capability = coherence::capability_name(engine_.device().capability);
  ex.current = from;
  ex.suggested = target;
  ex.switch_model = true;
  ex.shared_bytes = shared_bytes;
  ex.current_footprint_bytes = from_fp;
  ex.suggested_footprint_bytes = target_fp;
  ex.checks.push_back(std::string("footprint ") + comm::model_name(from) +
                      " " + format_bytes(from_fp) +
                      (cause == "budget"
                           ? " > budget " + format_bytes(governor_.budget())
                           : " unavailable (" + cause + ")") +
                      " -> demote to " + comm::model_name(target) + " (" +
                      format_bytes(target_fp) + ")");
  ex.rationale = "Memory pressure: " + reason;
  decision.rationale = ex.rationale;

  const auto realized_cost =
      executor_.apply_model_switch(from, target, shared_base, shared_bytes);
  tracer_.segment(sim::Lane::Ctrl, now_, now_ + realized_cost.total(),
                  reason);
  tracer_.set_now(now_ + realized_cost.total());
  tracer_.instant(sim::Lane::Ctrl, reason);
  now_ += realized_cost.total();
  metrics_.switch_overhead += realized_cost.total();
  // A demotion is a switch as far as the oscillation watchdog cares: a
  // budget flapping at a boundary must still trip the pin.
  switch_guard_.on_switch();
  model_ = target;
  decision.model_after = target;
  decision.switch_cost = realized_cost.total();
  decision.footprint_bytes = target_fp;
  governor_.observe(target_fp);

  window_.clear();
  sample_guard_.reset_history();
  arm_tracker();
  return decision;
}

void AdaptiveController::finish() {
  if (pending_flow_id_ == 0) return;
  tracer_.set_now(now_);
  tracer_.flow_end(pending_flow_id_, sim::Lane::Ctrl, pending_flow_name_);
  pending_flow_id_ = 0;
}

Json AdaptiveController::snapshot() const {
  Json j;
  j["fingerprint"] = Json(config_fingerprint(config_, executor_.board()));
  j["model"] = Json(std::string(comm::model_name(model_)));
  j["now"] = Json(now_);
  j["window"] = window_.snapshot();
  j["zone_tracker"] = zone_tracker_.snapshot();
  j["cpu_band"] = cpu_band_.snapshot();
  j["metrics"] = metrics_.to_json();
  j["sample_guard"] = sample_guard_.snapshot();
  j["switch_guard"] = switch_guard_.snapshot();
  j["pending_flow_id"] = Json(pending_flow_id_);
  j["pending_flow_name"] = Json(pending_flow_name_);
  j["verify_pending"] = Json(verify_pending_);
  j["pre_switch_iter_time"] = Json(pre_switch_iter_time_);
  j["pending_predicted"] = Json(pending_predicted_);
  j["rollback_model"] = Json(std::string(comm::model_name(rollback_model_)));
  j["tracer_next_flow_id"] = Json(tracer_.next_flow_id());
  j["governor"] = governor_.snapshot();
  j["alloc_failure_pending"] = Json(alloc_failure_pending_);
  return j;
}

void AdaptiveController::restore(const Json& snapshot) {
  const std::string expected = config_fingerprint(config_, executor_.board());
  const std::string found = snapshot.string_or("fingerprint", "");
  if (found != expected) {
    throw std::runtime_error(
        "controller snapshot fingerprint mismatch (snapshot " + found +
        ", this run " + expected + "): config or board changed");
  }
  model_ = parse_model(snapshot.at("model").as_string());
  rollback_model_ = parse_model(snapshot.at("rollback_model").as_string());
  window_.restore(snapshot.at("window"));
  // Full band state (boundary + debounce) travels in the snapshot, so no
  // arm_tracker() here — the restored boundaries already reflect model_.
  zone_tracker_.restore(snapshot.at("zone_tracker"));
  cpu_band_.restore(snapshot.at("cpu_band"));
  metrics_ = RuntimeMetrics::from_json(snapshot.at("metrics"));
  sample_guard_.restore(snapshot.at("sample_guard"));
  switch_guard_.restore(snapshot.at("switch_guard"));
  pending_flow_id_ =
      static_cast<std::uint64_t>(snapshot.number_or("pending_flow_id", 0));
  pending_flow_name_ = snapshot.string_or("pending_flow_name", "");
  verify_pending_ = snapshot.bool_or("verify_pending", false);
  pre_switch_iter_time_ = snapshot.number_or("pre_switch_iter_time", 0);
  pending_predicted_ = snapshot.number_or("pending_predicted", 1.0);
  now_ = snapshot.number_or("now", 0);
  tracer_.set_now(now_);
  tracer_.set_next_flow_id(static_cast<std::uint64_t>(
      snapshot.number_or("tracer_next_flow_id", 1)));
  if (snapshot.contains("governor")) {
    governor_.restore(snapshot.at("governor"));
  }
  alloc_failure_pending_ = snapshot.bool_or("alloc_failure_pending", false);
}

}  // namespace cig::runtime
