#include "runtime/metrics.h"

#include <sstream>

#include "comm/model.h"

namespace cig::runtime {

void RuntimeMetrics::export_to(sim::StatRegistry& registry) const {
  registry.set("runtime.samples", static_cast<double>(samples));
  registry.set("runtime.decisions", static_cast<double>(decisions));
  registry.set("runtime.switches", static_cast<double>(switches));
  registry.set("runtime.vetoed_by_cost", static_cast<double>(vetoed_by_cost));
  registry.set("runtime.vetoed_by_estimate",
               static_cast<double>(vetoed_by_estimate));
  registry.set("runtime.mispredicted_switches",
               static_cast<double>(mispredicted_switches));
  registry.set("runtime.phase_changes", static_cast<double>(phase_changes));
  registry.set("runtime.switch_overhead_us", to_us(switch_overhead));
  for (const auto model : core::kAllModels) {
    registry.set(std::string("runtime.time_in_") + comm::model_name(model) +
                     "_us",
                 to_us(time_in_model[core::model_index(model)]));
  }
  registry.set("runtime.predicted_speedup_product", predicted_speedup_product);
  registry.set("runtime.realized_speedup_product", realized_speedup_product);
  phase_latency_us.export_to(registry, "runtime.phase_latency_us");
  kernel_latency_us.export_to(registry, "runtime.kernel_latency_us");
  guard.export_to(registry);
}

std::string RuntimeMetrics::to_string() const {
  std::ostringstream out;
  out << "samples " << samples << ", decisions " << decisions << ", switches "
      << switches << " (" << vetoed_by_cost << " vetoed by cost, "
      << vetoed_by_estimate << " by estimate, " << mispredicted_switches
      << " mispredicted), phase changes "
      << phase_changes << "\n";
  out << "time in model:";
  for (const auto model : core::kAllModels) {
    out << ' ' << comm::model_name(model) << ' '
        << format_time(time_in_model[core::model_index(model)]);
  }
  out << "; switch overhead " << format_time(switch_overhead) << "\n";
  out << "speedup products: predicted " << predicted_speedup_product
      << "x, realized " << realized_speedup_product << "x\n";
  if (guard.clamped_fields + guard.rejected_samples + guard.rollbacks +
          guard.quarantines + guard.watchdog_pins >
      0) {
    out << "guardrails: " << guard.clamped_fields << " fields clamped, "
        << guard.rejected_samples << " samples rejected, " << guard.rollbacks
        << " rollbacks, " << guard.quarantines << " quarantines, "
        << guard.watchdog_pins << " watchdog pins\n";
  }
  if (phase_latency_us.count() > 0) {
    out << "phase latency us: p50 " << phase_latency_us.percentile(0.50)
        << ", p95 " << phase_latency_us.percentile(0.95) << ", p99 "
        << phase_latency_us.percentile(0.99) << "; kernel latency us: p50 "
        << kernel_latency_us.percentile(0.50) << ", p95 "
        << kernel_latency_us.percentile(0.95) << ", p99 "
        << kernel_latency_us.percentile(0.99) << "\n";
  }
  return out.str();
}

}  // namespace cig::runtime
