#include "runtime/metrics.h"

#include <sstream>

#include "comm/model.h"
#include "support/json.h"

namespace cig::runtime {

void RuntimeMetrics::export_to(sim::StatRegistry& registry) const {
  registry.set("runtime.samples", static_cast<double>(samples));
  registry.set("runtime.decisions", static_cast<double>(decisions));
  registry.set("runtime.switches", static_cast<double>(switches));
  registry.set("runtime.vetoed_by_cost", static_cast<double>(vetoed_by_cost));
  registry.set("runtime.vetoed_by_estimate",
               static_cast<double>(vetoed_by_estimate));
  registry.set("runtime.mispredicted_switches",
               static_cast<double>(mispredicted_switches));
  registry.set("runtime.phase_changes", static_cast<double>(phase_changes));
  registry.set("runtime.demotions", static_cast<double>(demotions));
  registry.set("runtime.switch_overhead_us", to_us(switch_overhead));
  for (const auto model : core::kAllModels) {
    registry.set(std::string("runtime.time_in_") + comm::model_name(model) +
                     "_us",
                 to_us(time_in_model[core::model_index(model)]));
  }
  registry.set("runtime.predicted_speedup_product", predicted_speedup_product);
  registry.set("runtime.realized_speedup_product", realized_speedup_product);
  phase_latency_us.export_to(registry, "runtime.phase_latency_us");
  kernel_latency_us.export_to(registry, "runtime.kernel_latency_us");
  guard.export_to(registry);
}

Json RuntimeMetrics::to_json() const {
  Json j;
  j["samples"] = Json(static_cast<double>(samples));
  j["decisions"] = Json(static_cast<double>(decisions));
  j["switches"] = Json(static_cast<double>(switches));
  j["vetoed_by_cost"] = Json(static_cast<double>(vetoed_by_cost));
  j["vetoed_by_estimate"] = Json(static_cast<double>(vetoed_by_estimate));
  j["mispredicted_switches"] =
      Json(static_cast<double>(mispredicted_switches));
  j["phase_changes"] = Json(static_cast<double>(phase_changes));
  j["demotions"] = Json(static_cast<double>(demotions));
  Json in_model{JsonArray{}};
  for (const Seconds t : time_in_model) in_model.push_back(Json(t));
  j["time_in_model"] = std::move(in_model);
  j["switch_overhead"] = Json(switch_overhead);
  j["predicted_speedup_product"] = Json(predicted_speedup_product);
  j["realized_speedup_product"] = Json(realized_speedup_product);
  j["phase_latency_us"] = phase_latency_us.to_json();
  j["kernel_latency_us"] = kernel_latency_us.to_json();
  j["guard"] = guard.to_json();
  return j;
}

RuntimeMetrics RuntimeMetrics::from_json(const Json& j) {
  RuntimeMetrics m;
  m.samples = static_cast<std::uint64_t>(j.number_or("samples", 0));
  m.decisions = static_cast<std::uint64_t>(j.number_or("decisions", 0));
  m.switches = static_cast<std::uint64_t>(j.number_or("switches", 0));
  m.vetoed_by_cost =
      static_cast<std::uint64_t>(j.number_or("vetoed_by_cost", 0));
  m.vetoed_by_estimate =
      static_cast<std::uint64_t>(j.number_or("vetoed_by_estimate", 0));
  m.mispredicted_switches =
      static_cast<std::uint64_t>(j.number_or("mispredicted_switches", 0));
  m.phase_changes =
      static_cast<std::uint64_t>(j.number_or("phase_changes", 0));
  m.demotions = static_cast<std::uint64_t>(j.number_or("demotions", 0));
  const JsonArray& in_model = j.at("time_in_model").as_array();
  for (std::size_t i = 0; i < m.time_in_model.size(); ++i) {
    m.time_in_model[i] = i < in_model.size() ? in_model[i].as_number() : 0;
  }
  m.switch_overhead = j.number_or("switch_overhead", 0);
  m.predicted_speedup_product = j.number_or("predicted_speedup_product", 1.0);
  m.realized_speedup_product = j.number_or("realized_speedup_product", 1.0);
  m.phase_latency_us = obs::Histogram::from_json(j.at("phase_latency_us"));
  m.kernel_latency_us = obs::Histogram::from_json(j.at("kernel_latency_us"));
  m.guard = GuardMetrics::from_json(j.at("guard"));
  return m;
}

std::string RuntimeMetrics::to_string() const {
  std::ostringstream out;
  out << "samples " << samples << ", decisions " << decisions << ", switches "
      << switches << " (" << vetoed_by_cost << " vetoed by cost, "
      << vetoed_by_estimate << " by estimate, " << mispredicted_switches
      << " mispredicted), phase changes "
      << phase_changes << "\n";
  out << "time in model:";
  for (const auto model : core::kAllModels) {
    out << ' ' << comm::model_name(model) << ' '
        << format_time(time_in_model[core::model_index(model)]);
  }
  out << "; switch overhead " << format_time(switch_overhead) << "\n";
  out << "speedup products: predicted " << predicted_speedup_product
      << "x, realized " << realized_speedup_product << "x\n";
  if (guard.clamped_fields + guard.rejected_samples + guard.rollbacks +
          guard.quarantines + guard.watchdog_pins >
      0) {
    out << "guardrails: " << guard.clamped_fields << " fields clamped, "
        << guard.rejected_samples << " samples rejected, " << guard.rollbacks
        << " rollbacks, " << guard.quarantines << " quarantines, "
        << guard.watchdog_pins << " watchdog pins\n";
  }
  if (phase_latency_us.count() > 0) {
    out << "phase latency us: p50 " << phase_latency_us.percentile(0.50)
        << ", p95 " << phase_latency_us.percentile(0.95) << ", p99 "
        << phase_latency_us.percentile(0.99) << "; kernel latency us: p50 "
        << kernel_latency_us.percentile(0.50) << ", p95 "
        << kernel_latency_us.percentile(0.95) << ", p99 "
        << kernel_latency_us.percentile(0.99) << "\n";
  }
  return out.str();
}

}  // namespace cig::runtime
