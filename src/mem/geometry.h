// Cache geometry: capacity / line size / associativity, with the usual
// power-of-two address decomposition (offset | index | tag).
#pragma once

#include <cstdint>
#include <string>

#include "support/units.h"

namespace cig::mem {

struct CacheGeometry {
  Bytes capacity = 0;       // total bytes
  std::uint32_t line = 64;  // line (block) size in bytes
  std::uint32_t ways = 8;   // associativity

  std::uint64_t lines() const { return capacity / line; }
  std::uint64_t sets() const { return lines() / ways; }

  // True if capacity, line and ways describe a realisable cache
  // (powers of two, at least one set).
  bool valid() const;

  std::uint64_t line_of(std::uint64_t address) const { return address / line; }
  std::uint64_t set_of(std::uint64_t address) const {
    return line_of(address) % sets();
  }
  std::uint64_t tag_of(std::uint64_t address) const {
    return line_of(address) / sets();
  }

  std::string to_string() const;

  // Stable FNV-1a content hash over (capacity, line, ways) — feeds the
  // characterization result-cache key, so it must stay platform-independent.
  std::uint64_t content_hash() const;
};

// Convenience factory with validation.
CacheGeometry make_geometry(Bytes capacity, std::uint32_t line,
                            std::uint32_t ways);

}  // namespace cig::mem
