// Memory-pressure governor: a hard DRAM budget, graded pressure levels,
// and the bookkeeping behind deterministic comm-model demotion.
//
// The governor itself is pure state — it holds the configured budget,
// tracks the caller's resident-byte estimate, grades it into ok / warn /
// critical, and counts the demotions and blocked candidates the caller
// performs on its verdicts. It never allocates, never talks to a tracer,
// and its transitions are a pure function of the observed byte sequence,
// so every consumer (the runtime controller, the serve daemon, chaos
// cells) replays byte-identically at any --jobs setting.
//
// Budget sources, by precedence: an explicit config (--mem-budget-mb),
// the CIG_MEM_BUDGET environment variable (bytes), else disabled (0).
#pragma once

#include <cstdint>

#include "sim/stat_registry.h"
#include "support/json.h"
#include "support/units.h"

namespace cig::mem {

enum class PressureLevel : std::uint8_t { Ok = 0, Warn, Critical };

const char* pressure_level_name(PressureLevel level);

struct PressureConfig {
  // Hard resident-byte budget. 0 disables the governor entirely: every
  // plan fits, the level pins at Ok.
  Bytes budget = 0;
  // Graded thresholds as fractions of the budget: Warn at or above
  // warn_frac x budget, Critical at or above critical_frac x budget.
  double warn_frac = 0.75;
  double critical_frac = 0.90;
};

// Resolves the byte budget from CIG_MEM_BUDGET (decimal bytes) when
// `flag_bytes` is 0; returns `flag_bytes` otherwise. Malformed env values
// count as unset.
Bytes resolve_mem_budget(Bytes flag_bytes);

class PressureGovernor {
 public:
  PressureGovernor() = default;
  explicit PressureGovernor(PressureConfig config) : config_(config) {}

  bool enabled() const { return config_.budget > 0; }
  Bytes budget() const { return config_.budget; }
  const PressureConfig& config() const { return config_; }

  // Replaces the budget mid-run (the shrinking-DRAM chaos ramp). The
  // level is re-graded against the resident estimate on the next
  // observe().
  void set_budget(Bytes budget) { config_.budget = budget; }

  // Feeds the current resident-byte estimate and re-grades the level.
  // Returns true when the level changed (callers emit instants/metrics on
  // edges only, keeping traces quiet in steady state).
  bool observe(Bytes resident_bytes);

  PressureLevel level() const { return level_; }
  Bytes resident() const { return resident_; }
  Bytes peak_resident() const { return peak_resident_; }

  // True when keeping `bytes` resident would break the hard budget.
  bool would_exceed(Bytes bytes) const {
    return enabled() && bytes > config_.budget;
  }

  // Demotions forced / candidate switches blocked on this governor's
  // verdicts (counted by the caller at the point of action).
  void count_demotion() { ++demotions_; }
  void count_blocked() { ++blocked_; }
  std::uint64_t demotions() const { return demotions_; }
  std::uint64_t blocked() const { return blocked_; }
  std::uint64_t level_changes() const { return level_changes_; }

  // Exports the governor's counters under `prefix` (e.g. "runtime.mem" or
  // "serve.mem"): .budget_bytes, .resident_bytes, .peak_bytes, .level,
  // .level_changes, .demotions, .blocked.
  void export_to(sim::StatRegistry& registry, const std::string& prefix) const;

  // Full state round-trip for crash recovery: a restored governor must
  // grade the next observation exactly as the killed one would have.
  Json snapshot() const;
  void restore(const Json& json);

 private:
  PressureLevel grade(Bytes resident_bytes) const;

  PressureConfig config_;
  PressureLevel level_ = PressureLevel::Ok;
  Bytes resident_ = 0;
  Bytes peak_resident_ = 0;
  std::uint64_t level_changes_ = 0;
  std::uint64_t demotions_ = 0;
  std::uint64_t blocked_ = 0;
};

}  // namespace cig::mem
