#include "mem/hierarchy.h"

#include <algorithm>
#include <cstdlib>
#include <mutex>
#include <sstream>

#include "support/assert.h"
#include "support/log.h"

namespace cig::mem {

void WalkCounters::reset() {
  for (auto& l : level) l = LevelCounters{};
  dram_served = 0;
  dram_read_served = 0;
  dram_bytes = 0;
  uncached_served = 0;
  uncached_read_served = 0;
  uncached_bytes = 0;
  total_accesses = 0;
  requested_bytes = 0;
}

bool runtime_audit_enabled() {
  // Read per call, not cached: tests toggle CIG_AUDIT with setenv and the
  // cost is trivial next to the oracle re-run the flag triggers.
  const char* raw = std::getenv("CIG_AUDIT");
  return raw != nullptr && *raw != '\0' &&
         !(raw[0] == '0' && raw[1] == '\0');
}

std::uint32_t resolve_fastfwd(std::uint32_t requested) {
  if (requested > 0) return requested;
  const char* raw = std::getenv("CIG_FASTFWD");
  if (raw == nullptr || *raw == '\0') return 1;
  char* end = nullptr;
  const long parsed = std::strtol(raw, &end, 10);
  if (end == raw || *end != '\0' || parsed <= 0 || parsed > 1000000) {
    // Same contract as CIG_JOBS: an environment override must never abort a
    // run, but a silently discarded one sends users chasing phantom
    // accuracy bugs — say it once and fall through to full detail.
    static std::once_flag warned;
    std::call_once(warned, [raw] {
      CIG_LOG_C(::cig::LogLevel::Warn, "mem",
                "ignoring invalid CIG_FASTFWD='"
                    << raw << "' (want an integer in [1, 1000000])");
    });
    return 1;
  }
  return static_cast<std::uint32_t>(parsed);
}

MemoryHierarchy::MemoryHierarchy(std::vector<HierarchyLevel> levels,
                                 MainMemory* dram)
    : levels_(std::move(levels)), dram_(dram) {
  CIG_EXPECTS(dram_ != nullptr);
  for (const auto& l : levels_) CIG_EXPECTS(l.cache != nullptr);
  counters_.level.resize(levels_.size());
}

std::size_t MemoryHierarchy::access(const MemoryAccess& request) {
  ++counters_.total_accesses;
  counters_.requested_bytes += request.size;

  if (!any_level_enabled()) {
    // Uncacheable path: the access goes to DRAM at its own granularity.
    ++counters_.uncached_served;
    if (request.kind == AccessKind::Read) ++counters_.uncached_read_served;
    counters_.uncached_bytes += request.size;
    dram_->add_uncached_traffic(request.size);
    return kDram;
  }

  // Walk enabled levels top-down until a hit.
  std::size_t serving = kDram;
  for (std::size_t i = 0; i < levels_.size(); ++i) {
    auto& lvl = levels_[i];
    if (!lvl.enabled) continue;
    const AccessOutcome outcome =
        lvl.cache->access(request.address, request.kind);
    if (outcome.victim_dirty) {
      // Dirty victim written back one level down (or DRAM from the LLC).
      const Bytes line = lvl.cache->geometry().line;
      bool lower_found = false;
      for (std::size_t j = i + 1; j < levels_.size(); ++j) {
        if (levels_[j].enabled) {
          counters_.level[j].bytes += line;
          lower_found = true;
          break;
        }
      }
      if (!lower_found) {
        counters_.dram_bytes += line;
        dram_->add_cached_traffic(line);
      }
    }
    if (outcome.hit) {
      serving = i;
      break;
    }
  }

  if (serving != kDram) {
    const auto& lvl = levels_[serving];
    counters_.level[serving].served += 1;
    if (request.kind == AccessKind::Read) {
      counters_.level[serving].read_served += 1;
    }
    // A hit at the first enabled level delivers just the requested bytes to
    // the core; a hit at a deeper level also fills a whole line upwards.
    const bool first_enabled = [&] {
      for (std::size_t j = 0; j < serving; ++j) {
        if (levels_[j].enabled) return false;
      }
      return true;
    }();
    counters_.level[serving].bytes +=
        first_enabled ? request.size : lvl.cache->geometry().line;
  } else {
    // Fell through every enabled cache: DRAM supplies one LLC line.
    const std::size_t llc = last_enabled();
    CIG_ASSERT(llc != kDram);
    const Bytes line = levels_[llc].cache->geometry().line;
    ++counters_.dram_served;
    if (request.kind == AccessKind::Read) ++counters_.dram_read_served;
    counters_.dram_bytes += line;
    dram_->add_cached_traffic(line);
  }
  // Note: the miss path already allocated the line into each enabled level
  // (SetAssocCache::access is allocate-on-miss), so inclusive fill needs no
  // extra work here.
  return serving;
}

void MemoryHierarchy::access_block_detailed(const AccessBlock& block) {
  const std::size_t n = block.count;
  if (n == 0) return;

  Bytes requested = 0;
  for (std::size_t i = 0; i < n; ++i) requested += block.size[i];
  counters_.total_accesses += n;
  counters_.requested_bytes += requested;

  if (!any_level_enabled()) {
    std::uint64_t reads = 0;
    for (std::size_t i = 0; i < n; ++i) {
      reads += block.kind[i] == AccessKind::Read ? 1 : 0;
    }
    counters_.uncached_served += n;
    counters_.uncached_read_served += reads;
    counters_.uncached_bytes += requested;
    dram_->add_uncached_traffic(requested);
    return;
  }

  // Resolve the block level by level: the full block against the first
  // enabled cache, then only its misses (compacted, order preserved)
  // against the next, and so on. Each cache sees exactly the subsequence
  // of accesses that would have reached it under per-access walking, so
  // state and stats match the oracle byte for byte; writeback bytes are
  // pure counter updates, so accounting them per block (not interleaved
  // per access) changes nothing observable.
  const AccessBlock* cur = &block;
  AccessBlock* out = &miss_a_;
  std::size_t m = n;
  bool first_enabled = true;

  for (std::size_t i = 0; i < levels_.size() && m > 0; ++i) {
    auto& lvl = levels_[i];
    if (!lvl.enabled) continue;
    const Bytes line = lvl.cache->geometry().line;

    const std::uint64_t dirty_victims = lvl.cache->access_block(
        cur->address.data(), cur->kind.data(), m, hits_.data());
    if (dirty_victims > 0) {
      const Bytes wb = dirty_victims * line;
      bool lower_found = false;
      for (std::size_t j = i + 1; j < levels_.size(); ++j) {
        if (levels_[j].enabled) {
          counters_.level[j].bytes += wb;
          lower_found = true;
          break;
        }
      }
      if (!lower_found) {
        counters_.dram_bytes += wb;
        dram_->add_cached_traffic(wb);
      }
    }

    std::uint64_t served = 0;
    std::uint64_t read_served = 0;
    Bytes hit_bytes = 0;
    out->clear();
    for (std::size_t j = 0; j < m; ++j) {
      if (hits_[j]) {
        ++served;
        read_served += cur->kind[j] == AccessKind::Read ? 1 : 0;
        if (first_enabled) hit_bytes += cur->size[j];
      } else {
        out->push(cur->address[j], cur->size[j], cur->kind[j]);
      }
    }
    counters_.level[i].served += served;
    counters_.level[i].read_served += read_served;
    counters_.level[i].bytes += first_enabled ? hit_bytes : line * served;

    m = out->count;
    cur = out;
    out = (out == &miss_a_) ? &miss_b_ : &miss_a_;
    first_enabled = false;
  }

  if (m > 0) {
    // Fell through every enabled cache: DRAM supplies one LLC line each.
    const std::size_t llc = last_enabled();
    CIG_ASSERT(llc != kDram);
    const Bytes line = levels_[llc].cache->geometry().line;
    std::uint64_t reads = 0;
    for (std::size_t j = 0; j < m; ++j) {
      reads += cur->kind[j] == AccessKind::Read ? 1 : 0;
    }
    counters_.dram_served += m;
    counters_.dram_read_served += reads;
    counters_.dram_bytes += static_cast<Bytes>(m) * line;
    dram_->add_cached_traffic(static_cast<Bytes>(m) * line);
  }
}

namespace {

LevelCounters counters_delta(const LevelCounters& after,
                             const LevelCounters& before) {
  return LevelCounters{after.served - before.served,
                       after.read_served - before.read_served,
                       after.bytes - before.bytes};
}

CacheStats stats_delta(const CacheStats& after, const CacheStats& before) {
  CacheStats d;
  d.read_hits = after.read_hits - before.read_hits;
  d.read_misses = after.read_misses - before.read_misses;
  d.write_hits = after.write_hits - before.write_hits;
  d.write_misses = after.write_misses - before.write_misses;
  d.evictions = after.evictions - before.evictions;
  d.writebacks = after.writebacks - before.writebacks;
  return d;
}

}  // namespace

void MemoryHierarchy::access_block(const AccessBlock& block) {
  if (block.count == 0) return;
  if (ff_interval_ <= 1) {
    access_block_detailed(block);
    return;
  }

  const bool detailed = (ff_window_ % ff_interval_) == 0;
  ++ff_window_;

  if (detailed || !ff_record_.valid) {
    const WalkCounters before = counters_;
    std::vector<CacheStats> stats_before(levels_.size());
    for (std::size_t i = 0; i < levels_.size(); ++i) {
      stats_before[i] = levels_[i].cache->stats();
    }
    const Bytes dram_cached_before = dram_->cached_bytes();
    const Bytes dram_uncached_before = dram_->uncached_bytes();

    access_block_detailed(block);

    ff_record_.valid = true;
    ff_record_.accesses = block.count;
    ff_record_.delta.level.resize(levels_.size());
    for (std::size_t i = 0; i < levels_.size(); ++i) {
      ff_record_.delta.level[i] =
          counters_delta(counters_.level[i], before.level[i]);
    }
    ff_record_.delta.dram_served = counters_.dram_served - before.dram_served;
    ff_record_.delta.dram_read_served =
        counters_.dram_read_served - before.dram_read_served;
    ff_record_.delta.dram_bytes = counters_.dram_bytes - before.dram_bytes;
    ff_record_.delta.uncached_served =
        counters_.uncached_served - before.uncached_served;
    ff_record_.delta.uncached_read_served =
        counters_.uncached_read_served - before.uncached_read_served;
    ff_record_.delta.uncached_bytes =
        counters_.uncached_bytes - before.uncached_bytes;
    ff_record_.cache_delta.resize(levels_.size());
    for (std::size_t i = 0; i < levels_.size(); ++i) {
      ff_record_.cache_delta[i] =
          stats_delta(levels_[i].cache->stats(), stats_before[i]);
    }
    ff_record_.dram_cached_delta = dram_->cached_bytes() - dram_cached_before;
    ff_record_.dram_uncached_delta =
        dram_->uncached_bytes() - dram_uncached_before;
    return;
  }

  // Skipped window: replay the last detailed window's rates, scaled to this
  // block's access count (integer math: value * count / recorded). The
  // demand-side counters stay exact; everything derived from cache
  // behaviour is interpolated and the cache state itself stays frozen.
  const std::uint64_t k = block.count;
  const std::uint64_t d = ff_record_.accesses;
  CIG_ASSERT(d > 0);
  const auto scaled = [k, d](std::uint64_t v) { return v * k / d; };

  counters_.total_accesses += k;
  Bytes requested = 0;
  for (std::size_t i = 0; i < block.count; ++i) requested += block.size[i];
  counters_.requested_bytes += requested;

  for (std::size_t i = 0; i < levels_.size(); ++i) {
    counters_.level[i].served += scaled(ff_record_.delta.level[i].served);
    counters_.level[i].read_served +=
        scaled(ff_record_.delta.level[i].read_served);
    counters_.level[i].bytes += scaled(ff_record_.delta.level[i].bytes);
  }
  counters_.dram_served += scaled(ff_record_.delta.dram_served);
  counters_.dram_read_served += scaled(ff_record_.delta.dram_read_served);
  counters_.dram_bytes += scaled(ff_record_.delta.dram_bytes);
  counters_.uncached_served += scaled(ff_record_.delta.uncached_served);
  counters_.uncached_read_served +=
      scaled(ff_record_.delta.uncached_read_served);
  counters_.uncached_bytes += scaled(ff_record_.delta.uncached_bytes);

  for (std::size_t i = 0; i < levels_.size(); ++i) {
    const CacheStats& cd = ff_record_.cache_delta[i];
    CacheStats s;
    s.read_hits = scaled(cd.read_hits);
    s.read_misses = scaled(cd.read_misses);
    s.write_hits = scaled(cd.write_hits);
    s.write_misses = scaled(cd.write_misses);
    s.evictions = scaled(cd.evictions);
    s.writebacks = scaled(cd.writebacks);
    levels_[i].cache->add_synthetic_stats(s);
  }
  dram_->add_cached_traffic(scaled(ff_record_.dram_cached_delta));
  dram_->add_uncached_traffic(scaled(ff_record_.dram_uncached_delta));
}

void MemoryHierarchy::access_linear(std::uint64_t base, Bytes bytes,
                                    AccessKind kind) {
  if (bytes == 0) return;
  // Use the smallest enabled line size for iteration granularity; if all
  // caches are disabled, model 16-byte uncoalesced device bursts. Hoisted
  // out of the loop: the enable set cannot change mid-span.
  std::uint32_t step = 16;
  for (const auto& lvl : levels_) {
    if (lvl.enabled) {
      step = lvl.cache->geometry().line;
      break;
    }
  }
  AccessBlock block;
  const std::uint64_t end = base + bytes;
  for (std::uint64_t addr = base; addr < end; addr += step) {
    const std::uint32_t size =
        static_cast<std::uint32_t>(std::min<std::uint64_t>(step, end - addr));
    block.push(addr, size, kind);
    if (block.full()) {
      access_block(block);
      block.clear();
    }
  }
  if (!block.empty()) access_block(block);
}

void MemoryHierarchy::set_fastforward(std::uint32_t interval) {
  ff_interval_ = std::max<std::uint32_t>(interval, 1);
  ff_window_ = 0;
  ff_record_ = FastForwardRecord{};
}

void MemoryHierarchy::set_enabled(std::size_t i, bool enabled) {
  CIG_EXPECTS(i < levels_.size());
  levels_[i].enabled = enabled;
}

bool MemoryHierarchy::any_level_enabled() const {
  for (const auto& l : levels_)
    if (l.enabled) return true;
  return false;
}

void MemoryHierarchy::reset_counters() {
  counters_.reset();
  // A counter reset starts a new measurement: restart the fast-forward
  // window sequence so the next walk leads with a detailed window.
  ff_window_ = 0;
  ff_record_ = FastForwardRecord{};
}

std::size_t MemoryHierarchy::last_enabled() const {
  for (std::size_t i = levels_.size(); i > 0; --i) {
    if (levels_[i - 1].enabled) return i - 1;
  }
  return kDram;
}

HierarchyClone::HierarchyClone(const MemoryHierarchy& source)
    : caches_([&] {
        std::vector<SetAssocCache> caches;
        caches.reserve(source.level_count());
        for (std::size_t i = 0; i < source.level_count(); ++i) {
          caches.push_back(*source.level(i).cache);
        }
        return caches;
      }()),
      dram_(source.dram()),
      hierarchy_([&] {
        std::vector<HierarchyLevel> levels;
        levels.reserve(source.level_count());
        for (std::size_t i = 0; i < source.level_count(); ++i) {
          HierarchyLevel level = source.level(i);
          level.cache = &caches_[i];
          levels.push_back(std::move(level));
        }
        return MemoryHierarchy(std::move(levels), &dram_);
      }()) {
  // The clone's walk counters start zeroed (a fresh MemoryHierarchy);
  // clone right after reset_counters() so oracle and subject agree on the
  // starting point. Cache contents, stats, enables and DRAM traffic carry
  // over via the copies above.
}

bool hierarchies_equivalent(const MemoryHierarchy& a, const MemoryHierarchy& b,
                            std::string* diff) {
  const auto fail = [diff](const std::string& what) {
    if (diff != nullptr) *diff = what;
    return false;
  };
  if (a.level_count() != b.level_count()) {
    return fail("level_count mismatch");
  }
  if (!(a.counters() == b.counters())) {
    const WalkCounters& ca = a.counters();
    const WalkCounters& cb = b.counters();
    std::ostringstream os;
    os << "walk counters diverge:";
    for (std::size_t i = 0; i < ca.level.size(); ++i) {
      if (!(ca.level[i] == cb.level[i])) {
        os << " level[" << i << "] served " << ca.level[i].served << "/"
           << cb.level[i].served << " read_served " << ca.level[i].read_served
           << "/" << cb.level[i].read_served << " bytes " << ca.level[i].bytes
           << "/" << cb.level[i].bytes;
      }
    }
    if (ca.dram_served != cb.dram_served ||
        ca.dram_read_served != cb.dram_read_served ||
        ca.dram_bytes != cb.dram_bytes) {
      os << " dram " << ca.dram_served << "/" << cb.dram_served << " reads "
         << ca.dram_read_served << "/" << cb.dram_read_served << " bytes "
         << ca.dram_bytes << "/" << cb.dram_bytes;
    }
    if (ca.uncached_served != cb.uncached_served ||
        ca.uncached_read_served != cb.uncached_read_served ||
        ca.uncached_bytes != cb.uncached_bytes) {
      os << " uncached " << ca.uncached_served << "/" << cb.uncached_served
         << " bytes " << ca.uncached_bytes << "/" << cb.uncached_bytes;
    }
    if (ca.total_accesses != cb.total_accesses ||
        ca.requested_bytes != cb.requested_bytes) {
      os << " total " << ca.total_accesses << "/" << cb.total_accesses
         << " requested " << ca.requested_bytes << "/" << cb.requested_bytes;
    }
    return fail(os.str());
  }
  for (std::size_t i = 0; i < a.level_count(); ++i) {
    const SetAssocCache& cache_a = *a.level(i).cache;
    const SetAssocCache& cache_b = *b.level(i).cache;
    if (a.level(i).enabled != b.level(i).enabled) {
      return fail("level " + std::to_string(i) + " enable mismatch");
    }
    if (!(cache_a.stats() == cache_b.stats())) {
      const CacheStats& sa = cache_a.stats();
      const CacheStats& sb = cache_b.stats();
      std::ostringstream os;
      os << "level " << i << " cache stats diverge: rh " << sa.read_hits << "/"
         << sb.read_hits << " rm " << sa.read_misses << "/" << sb.read_misses
         << " wh " << sa.write_hits << "/" << sb.write_hits << " wm "
         << sa.write_misses << "/" << sb.write_misses << " ev "
         << sa.evictions << "/" << sb.evictions << " wb " << sa.writebacks
         << "/" << sb.writebacks;
      return fail(os.str());
    }
    if (cache_a.valid_lines() != cache_b.valid_lines() ||
        cache_a.dirty_lines() != cache_b.dirty_lines()) {
      std::ostringstream os;
      os << "level " << i << " line state diverges: valid "
         << cache_a.valid_lines() << "/" << cache_b.valid_lines() << " dirty "
         << cache_a.dirty_lines() << "/" << cache_b.dirty_lines();
      return fail(os.str());
    }
  }
  if (a.dram().cached_bytes() != b.dram().cached_bytes() ||
      a.dram().uncached_bytes() != b.dram().uncached_bytes()) {
    std::ostringstream os;
    os << "dram traffic diverges: cached " << a.dram().cached_bytes() << "/"
       << b.dram().cached_bytes() << " uncached " << a.dram().uncached_bytes()
       << "/" << b.dram().uncached_bytes();
    return fail(os.str());
  }
  return true;
}

}  // namespace cig::mem
