#include "mem/hierarchy.h"

#include "support/assert.h"

namespace cig::mem {

void WalkCounters::reset() {
  for (auto& l : level) l = LevelCounters{};
  dram_served = 0;
  dram_read_served = 0;
  dram_bytes = 0;
  uncached_served = 0;
  uncached_read_served = 0;
  uncached_bytes = 0;
  total_accesses = 0;
  requested_bytes = 0;
}

MemoryHierarchy::MemoryHierarchy(std::vector<HierarchyLevel> levels,
                                 MainMemory* dram)
    : levels_(std::move(levels)), dram_(dram) {
  CIG_EXPECTS(dram_ != nullptr);
  for (const auto& l : levels_) CIG_EXPECTS(l.cache != nullptr);
  counters_.level.resize(levels_.size());
}

std::size_t MemoryHierarchy::access(const MemoryAccess& request) {
  ++counters_.total_accesses;
  counters_.requested_bytes += request.size;

  if (!any_level_enabled()) {
    // Uncacheable path: the access goes to DRAM at its own granularity.
    ++counters_.uncached_served;
    if (request.kind == AccessKind::Read) ++counters_.uncached_read_served;
    counters_.uncached_bytes += request.size;
    dram_->add_uncached_traffic(request.size);
    return kDram;
  }

  // Walk enabled levels top-down until a hit.
  std::size_t serving = kDram;
  std::vector<std::size_t> missed;  // enabled levels that missed (to fill)
  for (std::size_t i = 0; i < levels_.size(); ++i) {
    auto& lvl = levels_[i];
    if (!lvl.enabled) continue;
    const AccessOutcome outcome = lvl.cache->access(request.address, request.kind);
    if (outcome.victim_dirty) {
      // Dirty victim written back one level down (or DRAM from the LLC).
      const Bytes line = lvl.cache->geometry().line;
      bool lower_found = false;
      for (std::size_t j = i + 1; j < levels_.size(); ++j) {
        if (levels_[j].enabled) {
          counters_.level[j].bytes += line;
          lower_found = true;
          break;
        }
      }
      if (!lower_found) {
        counters_.dram_bytes += line;
        dram_->add_cached_traffic(line);
      }
    }
    if (outcome.hit) {
      serving = i;
      break;
    }
    missed.push_back(i);
  }

  if (serving != kDram) {
    const auto& lvl = levels_[serving];
    counters_.level[serving].served += 1;
    if (request.kind == AccessKind::Read) {
      counters_.level[serving].read_served += 1;
    }
    // A hit at the first enabled level delivers just the requested bytes to
    // the core; a hit at a deeper level also fills a whole line upwards.
    const bool first_enabled = [&] {
      for (std::size_t j = 0; j < serving; ++j) {
        if (levels_[j].enabled) return false;
      }
      return true;
    }();
    counters_.level[serving].bytes +=
        first_enabled ? request.size : lvl.cache->geometry().line;
  } else {
    // Fell through every enabled cache: DRAM supplies one LLC line.
    const std::size_t llc = last_enabled();
    CIG_ASSERT(llc != kDram);
    const Bytes line = levels_[llc].cache->geometry().line;
    ++counters_.dram_served;
    if (request.kind == AccessKind::Read) ++counters_.dram_read_served;
    counters_.dram_bytes += line;
    dram_->add_cached_traffic(line);
  }
  // Note: the miss path already allocated the line into each enabled level
  // (SetAssocCache::access is allocate-on-miss), so inclusive fill needs no
  // extra work here; `missed` documents which levels allocated.
  (void)missed;
  return serving;
}

void MemoryHierarchy::access_linear(std::uint64_t base, Bytes bytes,
                                    AccessKind kind) {
  if (bytes == 0) return;
  // Use the smallest enabled line size for iteration granularity; if all
  // caches are disabled, model 16-byte uncoalesced device bursts.
  std::uint32_t step = 16;
  for (const auto& lvl : levels_) {
    if (lvl.enabled) {
      step = lvl.cache->geometry().line;
      break;
    }
  }
  const std::uint64_t end = base + bytes;
  for (std::uint64_t addr = base; addr < end; addr += step) {
    const std::uint32_t size =
        static_cast<std::uint32_t>(std::min<std::uint64_t>(step, end - addr));
    access(MemoryAccess{addr, size, kind});
  }
}

void MemoryHierarchy::set_enabled(std::size_t i, bool enabled) {
  CIG_EXPECTS(i < levels_.size());
  levels_[i].enabled = enabled;
}

bool MemoryHierarchy::any_level_enabled() const {
  for (const auto& l : levels_)
    if (l.enabled) return true;
  return false;
}

void MemoryHierarchy::reset_counters() { counters_.reset(); }

std::size_t MemoryHierarchy::last_enabled() const {
  for (std::size_t i = levels_.size(); i > 0; --i) {
    if (levels_[i - 1].enabled) return i - 1;
  }
  return kDram;
}

}  // namespace cig::mem
