// Main-memory (LPDDR) model: bandwidth, latency, per-byte energy, plus an
// efficiency factor for uncached fine-grained device accesses (the regime a
// Jetson iGPU falls into when zero-copy disables its LLC).
#pragma once

#include <cstdint>

#include "support/units.h"

namespace cig::mem {

struct DramConfig {
  BytesPerSecond bandwidth = GBps(25.6);   // peak sequential bandwidth
  Seconds latency = nanosec(120);          // single-access latency
  // Effective bandwidth for uncached, non-coalesced accesses as a fraction
  // of peak. Uncacheable pinned accesses issue narrow bursts that waste the
  // DRAM interface; on the TX2 this is catastrophic (paper: 1.28 GB/s
  // against ~60 GB/s peak).
  double uncached_efficiency = 0.05;
  Joules energy_per_byte = 40e-12;         // ~40 pJ/B for LPDDR4-class DRAM
};

class MainMemory {
 public:
  explicit MainMemory(DramConfig config) : config_(config) {}

  const DramConfig& config() const { return config_; }
  // Replaces the timing model (DVFS / thermal derating); traffic counters
  // are accounting state and survive the swap.
  void set_config(const DramConfig& config) { config_ = config; }

  BytesPerSecond cached_bandwidth() const { return config_.bandwidth; }
  BytesPerSecond uncached_bandwidth() const {
    return config_.bandwidth * config_.uncached_efficiency;
  }

  // --- traffic accounting ---------------------------------------------------
  void add_cached_traffic(Bytes bytes) { cached_bytes_ += bytes; }
  void add_uncached_traffic(Bytes bytes) { uncached_bytes_ += bytes; }

  Bytes cached_bytes() const { return cached_bytes_; }
  Bytes uncached_bytes() const { return uncached_bytes_; }
  Bytes total_bytes() const { return cached_bytes_ + uncached_bytes_; }

  Joules traffic_energy() const {
    return static_cast<double>(total_bytes()) * config_.energy_per_byte;
  }

  void reset_traffic() {
    cached_bytes_ = 0;
    uncached_bytes_ = 0;
  }

 private:
  DramConfig config_;
  Bytes cached_bytes_ = 0;
  Bytes uncached_bytes_ = 0;
};

}  // namespace cig::mem
