#include "mem/cache.h"

#include <algorithm>
#include <bit>

#include "support/assert.h"

namespace cig::mem {

const char* replacement_name(Replacement policy) {
  switch (policy) {
    case Replacement::Lru: return "LRU";
    case Replacement::Fifo: return "FIFO";
    case Replacement::TreePlru: return "tree-PLRU";
    case Replacement::Random: return "random";
  }
  return "?";
}

SetAssocCache::SetAssocCache(CacheGeometry geometry, Replacement policy,
                             std::uint64_t seed)
    : geometry_(geometry), policy_(policy), rng_(seed) {
  CIG_EXPECTS(geometry_.valid());
  const std::uint64_t entries = geometry_.lines();
  tags_.assign(entries, 0);
  valid_.assign(entries, 0);
  dirty_.assign(entries, 0);
  meta_.assign(entries, 0);
  plru_bits_.assign(geometry_.sets(), 0);
}

AccessOutcome SetAssocCache::access(std::uint64_t address, AccessKind kind) {
  const std::uint64_t set = geometry_.set_of(address);
  const std::uint64_t tag = geometry_.tag_of(address);
  const std::uint64_t base = set * geometry_.ways;
  ++tick_;

  for (std::uint32_t way = 0; way < geometry_.ways; ++way) {
    const std::uint64_t idx = base + way;
    if (valid_[idx] && tags_[idx] == tag) {
      touch(set, way);
      if (kind == AccessKind::Write) {
        if (!dirty_[idx]) ++dirty_count_;
        dirty_[idx] = 1;
        ++stats_.write_hits;
      } else {
        ++stats_.read_hits;
      }
      return AccessOutcome{.hit = true, .victim_dirty = false};
    }
  }

  // Miss: allocate (write-allocate for both reads and writes).
  if (kind == AccessKind::Write) {
    ++stats_.write_misses;
  } else {
    ++stats_.read_misses;
  }

  std::uint32_t way = geometry_.ways;  // first invalid way if any
  for (std::uint32_t w = 0; w < geometry_.ways; ++w) {
    if (!valid_[base + w]) {
      way = w;
      break;
    }
  }
  bool victim_dirty = false;
  if (way == geometry_.ways) {
    way = pick_victim(set);
    const std::uint64_t idx = base + way;
    ++stats_.evictions;
    if (dirty_[idx]) {
      victim_dirty = true;
      ++stats_.writebacks;
      --dirty_count_;
    }
  } else {
    ++valid_count_;  // filling a previously invalid way
  }

  const std::uint64_t idx = base + way;
  tags_[idx] = tag;
  valid_[idx] = 1;
  dirty_[idx] = kind == AccessKind::Write ? 1 : 0;
  if (dirty_[idx]) ++dirty_count_;
  meta_[idx] = tick_;  // both LRU stamp and FIFO insertion stamp
  touch(set, way);
  return AccessOutcome{.hit = false, .victim_dirty = victim_dirty};
}

std::uint64_t SetAssocCache::access_block(const std::uint64_t* addresses,
                                          const AccessKind* kinds,
                                          std::size_t count,
                                          std::uint8_t* hits_out) {
  // Hoisted decomposition: geometry_.valid() guarantees line, sets and ways
  // are powers of two, so set_of/tag_of reduce to shifts and masks instead
  // of the div/mod chain the per-access path pays on every call.
  const std::uint32_t line_shift =
      static_cast<std::uint32_t>(std::countr_zero(
          static_cast<std::uint64_t>(geometry_.line)));
  const std::uint32_t set_shift =
      static_cast<std::uint32_t>(std::countr_zero(geometry_.sets()));
  const std::uint64_t set_mask = geometry_.sets() - 1;
  const std::uint32_t ways = geometry_.ways;
  std::uint64_t* const tags = tags_.data();
  std::uint8_t* const valid = valid_.data();
  std::uint8_t* const dirty = dirty_.data();
  std::uint64_t* const meta = meta_.data();

  // Stats accumulate in registers; one write-back for the whole block.
  // tick_ stays a member increment: touch()/pick_victim() read it.
  std::uint64_t read_hits = 0, read_misses = 0;
  std::uint64_t write_hits = 0, write_misses = 0;
  std::uint64_t evictions = 0, dirty_victims = 0;
  std::uint64_t valid_count = valid_count_;
  std::uint64_t dirty_count = dirty_count_;

  for (std::size_t i = 0; i < count; ++i) {
    const std::uint64_t line = addresses[i] >> line_shift;
    const std::uint64_t set = line & set_mask;
    const std::uint64_t tag = line >> set_shift;
    const std::uint64_t base = set * ways;
    const bool is_write = kinds[i] == AccessKind::Write;
    ++tick_;

    std::uint32_t way = ways;  // hit way, or `ways` when none matched
    for (std::uint32_t w = 0; w < ways; ++w) {
      const std::uint64_t idx = base + w;
      if (valid[idx] && tags[idx] == tag) {
        way = w;
        break;
      }
    }
    if (way != ways) {
      const std::uint64_t idx = base + way;
      touch(set, way);
      if (is_write) {
        dirty_count += dirty[idx] ? 0 : 1;
        dirty[idx] = 1;
        ++write_hits;
      } else {
        ++read_hits;
      }
      hits_out[i] = 1;
      continue;
    }

    // Miss: allocate (write-allocate for both reads and writes).
    hits_out[i] = 0;
    if (is_write) {
      ++write_misses;
    } else {
      ++read_misses;
    }
    way = ways;  // first invalid way if any
    for (std::uint32_t w = 0; w < ways; ++w) {
      if (!valid[base + w]) {
        way = w;
        break;
      }
    }
    if (way == ways) {
      way = pick_victim(set);
      const std::uint64_t idx = base + way;
      ++evictions;
      if (dirty[idx]) {
        ++dirty_victims;
        --dirty_count;
      }
    } else {
      ++valid_count;  // filling a previously invalid way
    }

    const std::uint64_t idx = base + way;
    tags[idx] = tag;
    valid[idx] = 1;
    dirty[idx] = is_write ? 1 : 0;
    if (is_write) ++dirty_count;
    meta[idx] = tick_;  // both LRU stamp and FIFO insertion stamp
    touch(set, way);
  }

  valid_count_ = valid_count;
  dirty_count_ = dirty_count;
  stats_.read_hits += read_hits;
  stats_.read_misses += read_misses;
  stats_.write_hits += write_hits;
  stats_.write_misses += write_misses;
  stats_.evictions += evictions;
  stats_.writebacks += dirty_victims;
  return dirty_victims;
}

void SetAssocCache::add_synthetic_stats(const CacheStats& delta) {
  stats_.read_hits += delta.read_hits;
  stats_.read_misses += delta.read_misses;
  stats_.write_hits += delta.write_hits;
  stats_.write_misses += delta.write_misses;
  stats_.evictions += delta.evictions;
  stats_.writebacks += delta.writebacks;
}

bool SetAssocCache::probe(std::uint64_t address) const {
  const std::uint64_t set = geometry_.set_of(address);
  const std::uint64_t tag = geometry_.tag_of(address);
  const std::uint64_t base = set * geometry_.ways;
  for (std::uint32_t way = 0; way < geometry_.ways; ++way) {
    const std::uint64_t idx = base + way;
    if (valid_[idx] && tags_[idx] == tag) return true;
  }
  return false;
}

std::uint64_t SetAssocCache::flush_dirty() {
  std::uint64_t flushed = 0;
  if (dirty_count_ == 0) return 0;  // running counter short-circuits the scan
  for (std::uint64_t idx = 0; idx < dirty_.size(); ++idx) {
    if (valid_[idx] && dirty_[idx]) {
      dirty_[idx] = 0;
      ++flushed;
      ++stats_.writebacks;
    }
  }
  CIG_AUDIT(flushed == dirty_count_);
  dirty_count_ = 0;
  return flushed;
}

std::uint64_t SetAssocCache::invalidate_all() {
  std::uint64_t flushed = 0;
  for (std::uint64_t idx = 0; idx < valid_.size(); ++idx) {
    if (valid_[idx] && dirty_[idx]) {
      ++flushed;
      ++stats_.writebacks;
    }
    valid_[idx] = 0;
    dirty_[idx] = 0;
  }
  CIG_AUDIT(flushed == dirty_count_);
  valid_count_ = 0;
  dirty_count_ = 0;
  return flushed;
}

std::uint64_t SetAssocCache::invalidate_range(std::uint64_t base, Bytes bytes) {
  if (bytes == 0) return 0;
  std::uint64_t flushed = 0;
  const std::uint64_t first_line = geometry_.line_of(base);
  const std::uint64_t last_line = geometry_.line_of(base + bytes - 1);
  for (std::uint64_t line = first_line; line <= last_line; ++line) {
    const std::uint64_t address = line * geometry_.line;
    const std::uint64_t set = geometry_.set_of(address);
    const std::uint64_t tag = geometry_.tag_of(address);
    const std::uint64_t set_base = set * geometry_.ways;
    for (std::uint32_t way = 0; way < geometry_.ways; ++way) {
      const std::uint64_t idx = set_base + way;
      if (valid_[idx] && tags_[idx] == tag) {
        if (dirty_[idx]) {
          ++flushed;
          ++stats_.writebacks;
          --dirty_count_;
        }
        valid_[idx] = 0;
        dirty_[idx] = 0;
        --valid_count_;
        break;  // a line is resident in at most one way of its set
      }
    }
  }
  CIG_AUDIT(valid_count_ == recount_valid_lines());
  CIG_AUDIT(dirty_count_ == recount_dirty_lines());
  return flushed;
}

std::uint64_t SetAssocCache::clean_range(std::uint64_t base, Bytes bytes) {
  if (bytes == 0) return 0;
  std::uint64_t flushed = 0;
  const std::uint64_t first_line = geometry_.line_of(base);
  const std::uint64_t last_line = geometry_.line_of(base + bytes - 1);
  for (std::uint64_t line = first_line; line <= last_line; ++line) {
    const std::uint64_t address = line * geometry_.line;
    const std::uint64_t set = geometry_.set_of(address);
    const std::uint64_t tag = geometry_.tag_of(address);
    const std::uint64_t set_base = set * geometry_.ways;
    for (std::uint32_t way = 0; way < geometry_.ways; ++way) {
      const std::uint64_t idx = set_base + way;
      if (valid_[idx] && tags_[idx] == tag) {
        if (dirty_[idx]) {
          dirty_[idx] = 0;
          ++flushed;
          ++stats_.writebacks;
          --dirty_count_;
        }
        break;  // a line is resident in at most one way of its set
      }
    }
  }
  CIG_AUDIT(valid_count_ == recount_valid_lines());
  CIG_AUDIT(dirty_count_ == recount_dirty_lines());
  return flushed;
}

std::uint64_t SetAssocCache::recount_valid_lines() const {
  return static_cast<std::uint64_t>(
      std::count(valid_.begin(), valid_.end(), std::uint8_t{1}));
}

std::uint64_t SetAssocCache::recount_dirty_lines() const {
  std::uint64_t count = 0;
  for (std::uint64_t idx = 0; idx < dirty_.size(); ++idx) {
    if (valid_[idx] && dirty_[idx]) ++count;
  }
  return count;
}

void SetAssocCache::reset() {
  std::fill(valid_.begin(), valid_.end(), std::uint8_t{0});
  std::fill(dirty_.begin(), dirty_.end(), std::uint8_t{0});
  std::fill(meta_.begin(), meta_.end(), std::uint64_t{0});
  std::fill(plru_bits_.begin(), plru_bits_.end(), std::uint32_t{0});
  valid_count_ = 0;
  dirty_count_ = 0;
  tick_ = 0;
  stats_.reset();
}

std::uint32_t SetAssocCache::pick_victim(std::uint64_t set) {
  const std::uint64_t base = set * geometry_.ways;
  switch (policy_) {
    case Replacement::Lru:
    case Replacement::Fifo: {
      // LRU: meta_ refreshed on touch. FIFO: meta_ set only on fill.
      std::uint32_t victim = 0;
      std::uint64_t oldest = meta_[base];
      for (std::uint32_t way = 1; way < geometry_.ways; ++way) {
        if (meta_[base + way] < oldest) {
          oldest = meta_[base + way];
          victim = way;
        }
      }
      return victim;
    }
    case Replacement::TreePlru: {
      // Walk the PLRU bit tree towards the pseudo-least-recently-used leaf.
      std::uint32_t bits = plru_bits_[set];
      std::uint32_t node = 0;
      std::uint32_t way = 0;
      for (std::uint32_t depth = geometry_.ways; depth > 1; depth /= 2) {
        const std::uint32_t bit = (bits >> node) & 1u;
        way = way * 2 + bit;
        node = node * 2 + 1 + bit;
      }
      return way;
    }
    case Replacement::Random:
      return static_cast<std::uint32_t>(rng_.below(geometry_.ways));
  }
  return 0;
}

void SetAssocCache::touch(std::uint64_t set, std::uint32_t way) {
  const std::uint64_t base = set * geometry_.ways;
  switch (policy_) {
    case Replacement::Lru:
      meta_[base + way] = tick_;
      break;
    case Replacement::Fifo:
    case Replacement::Random:
      break;  // no recency update
    case Replacement::TreePlru: {
      // Flip bits along the path so they point away from `way`.
      std::uint32_t bits = plru_bits_[set];
      std::uint32_t node = 0;
      std::uint32_t lo = 0;
      std::uint32_t hi = geometry_.ways;
      while (hi - lo > 1) {
        const std::uint32_t mid = (lo + hi) / 2;
        const std::uint32_t going_right = way >= mid ? 1u : 0u;
        // Point the bit at the *other* half.
        if (going_right) {
          bits &= ~(1u << node);
        } else {
          bits |= (1u << node);
        }
        node = node * 2 + 1 + going_right;
        if (going_right) {
          lo = mid;
        } else {
          hi = mid;
        }
      }
      plru_bits_[set] = bits;
      break;
    }
  }
}

}  // namespace cig::mem
