// Analytical cache model: closed-form steady-state estimates for the
// stream generators, without walking the simulator.
//
// The full set-associative simulation is exact but costs one probe per
// line access; for large sweeps (or interactive what-if queries from the
// CLI) a closed-form estimate is enough. The model treats each cache as
// fully associative with LRU (a good approximation at 8-16 ways) and the
// patterns as stationary:
//
//   Linear/Tiled2D sweep over E bytes, capacity C:
//     steady hit rate = 1 if E <= C (after the cold pass), else 0
//     (cyclic LRU thrash: every line is evicted before reuse).
//   Random over E bytes:  hit rate = min(1, C / E).
//   SingleLocation:       hit rate = 1 (after one cold miss).
//
// Tests cross-validate these against the exact simulator
// (tests/test_analytic.cpp).
#pragma once

#include "mem/geometry.h"
#include "mem/stream.h"

namespace cig::mem {

struct AnalyticEstimate {
  double hit_rate = 0;            // steady-state, per line-granular access
  double cold_misses = 0;         // one-time compulsory misses
  double steady_misses_per_pass = 0;  // recurring misses per full sweep
};

// Steady-state behaviour of `pattern` against one cache of `geometry`
// that it has exclusive use of.
AnalyticEstimate estimate_cache_behaviour(const PatternSpec& pattern,
                                          const CacheGeometry& geometry);

// Composes two levels (L1 then LLC): the fraction of accesses served at
// L1, at the LLC, and falling through to DRAM.
struct AnalyticServiceSplit {
  double l1 = 0;
  double llc = 0;
  double dram = 0;  // l1 + llc + dram == 1
};

AnalyticServiceSplit estimate_service_split(const PatternSpec& pattern,
                                            const CacheGeometry& l1,
                                            const CacheGeometry& llc);

// Estimated memory service time for the whole pattern given per-level
// bandwidths (roofline-style bandwidth components only; latency excluded).
Seconds estimate_memory_time(const PatternSpec& pattern,
                             const CacheGeometry& l1, BytesPerSecond l1_bw,
                             const CacheGeometry& llc, BytesPerSecond llc_bw,
                             BytesPerSecond dram_bw);

}  // namespace cig::mem
