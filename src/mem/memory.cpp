#include "mem/memory.h"

// MainMemory is currently header-only; this TU anchors the library target
// and reserves a home for future DRAM features (banking, refresh).
