#include "mem/pressure.h"

#include <cstdlib>

namespace cig::mem {

const char* pressure_level_name(PressureLevel level) {
  switch (level) {
    case PressureLevel::Ok: return "ok";
    case PressureLevel::Warn: return "warn";
    case PressureLevel::Critical: return "critical";
  }
  return "?";
}

Bytes resolve_mem_budget(Bytes flag_bytes) {
  if (flag_bytes > 0) return flag_bytes;
  const char* env = std::getenv("CIG_MEM_BUDGET");
  if (env == nullptr || *env == '\0') return 0;
  // strtoull would silently negate a leading '-'; only plain decimal
  // digit strings count as a budget.
  if (*env < '0' || *env > '9') return 0;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(env, &end, 10);
  if (end == env || *end != '\0') return 0;
  return static_cast<Bytes>(value);
}

PressureLevel PressureGovernor::grade(Bytes resident_bytes) const {
  if (!enabled()) return PressureLevel::Ok;
  const double frac = static_cast<double>(resident_bytes) /
                      static_cast<double>(config_.budget);
  if (frac >= config_.critical_frac) return PressureLevel::Critical;
  if (frac >= config_.warn_frac) return PressureLevel::Warn;
  return PressureLevel::Ok;
}

bool PressureGovernor::observe(Bytes resident_bytes) {
  resident_ = resident_bytes;
  if (resident_ > peak_resident_) peak_resident_ = resident_;
  const PressureLevel next = grade(resident_bytes);
  if (next == level_) return false;
  level_ = next;
  ++level_changes_;
  return true;
}

void PressureGovernor::export_to(sim::StatRegistry& registry,
                                 const std::string& prefix) const {
  registry.set(prefix + ".budget_bytes", static_cast<double>(config_.budget));
  registry.set(prefix + ".resident_bytes", static_cast<double>(resident_));
  registry.set(prefix + ".peak_bytes", static_cast<double>(peak_resident_));
  registry.set(prefix + ".level", static_cast<double>(level_));
  registry.set(prefix + ".level_changes",
               static_cast<double>(level_changes_));
  registry.set(prefix + ".demotions", static_cast<double>(demotions_));
  registry.set(prefix + ".blocked", static_cast<double>(blocked_));
}

Json PressureGovernor::snapshot() const {
  Json j;
  j["budget"] = Json(static_cast<double>(config_.budget));
  j["warn_frac"] = Json(config_.warn_frac);
  j["critical_frac"] = Json(config_.critical_frac);
  j["level"] = Json(static_cast<double>(level_));
  j["resident"] = Json(static_cast<double>(resident_));
  j["peak_resident"] = Json(static_cast<double>(peak_resident_));
  j["level_changes"] = Json(static_cast<double>(level_changes_));
  j["demotions"] = Json(static_cast<double>(demotions_));
  j["blocked"] = Json(static_cast<double>(blocked_));
  return j;
}

void PressureGovernor::restore(const Json& json) {
  config_.budget = static_cast<Bytes>(json.number_or("budget", 0));
  config_.warn_frac = json.number_or("warn_frac", 0.75);
  config_.critical_frac = json.number_or("critical_frac", 0.90);
  level_ = static_cast<PressureLevel>(
      static_cast<std::uint8_t>(json.number_or("level", 0)));
  resident_ = static_cast<Bytes>(json.number_or("resident", 0));
  peak_resident_ = static_cast<Bytes>(json.number_or("peak_resident", 0));
  level_changes_ =
      static_cast<std::uint64_t>(json.number_or("level_changes", 0));
  demotions_ = static_cast<std::uint64_t>(json.number_or("demotions", 0));
  blocked_ = static_cast<std::uint64_t>(json.number_or("blocked", 0));
}

}  // namespace cig::mem
