#include "mem/bandwidth.h"

#include <algorithm>
#include <limits>

#include "support/assert.h"

namespace cig::mem {

std::vector<BandwidthShare> contended_schedule(
    const std::vector<BandwidthDemand>& demands, BytesPerSecond shared_bw) {
  CIG_EXPECTS(shared_bw > 0);
  const std::size_t n = demands.size();
  std::vector<BandwidthShare> result(n);
  std::vector<double> remaining(n);
  std::vector<bool> active(n, false);
  std::size_t active_count = 0;
  for (std::size_t i = 0; i < n; ++i) {
    CIG_EXPECTS(demands[i].bytes >= 0);
    CIG_EXPECTS(demands[i].cap > 0);
    remaining[i] = demands[i].bytes;
    if (remaining[i] > 0) {
      active[i] = true;
      ++active_count;
    }
  }

  Seconds now = 0.0;
  while (active_count > 0) {
    // Compute each active agent's current rate: water-fill the shared
    // bandwidth among agents, honouring per-agent caps.
    std::vector<double> rate(n, 0.0);
    double pool = shared_bw;
    std::size_t unsated = active_count;
    // Iteratively hand out fair shares; capped agents release their excess.
    std::vector<bool> sated(n, false);
    while (unsated > 0) {
      const double fair = pool / static_cast<double>(unsated);
      bool anyone_capped = false;
      for (std::size_t i = 0; i < n; ++i) {
        if (!active[i] || sated[i]) continue;
        if (demands[i].cap <= fair) {
          rate[i] = demands[i].cap;
          pool -= demands[i].cap;
          sated[i] = true;
          --unsated;
          anyone_capped = true;
        }
      }
      if (!anyone_capped) {
        for (std::size_t i = 0; i < n; ++i) {
          if (active[i] && !sated[i]) rate[i] = fair;
        }
        break;
      }
    }

    // Advance to the earliest completion at these rates.
    Seconds dt = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < n; ++i) {
      if (active[i] && rate[i] > 0) {
        dt = std::min(dt, remaining[i] / rate[i]);
      }
    }
    CIG_ASSERT(dt < std::numeric_limits<double>::infinity());
    now += dt;
    for (std::size_t i = 0; i < n; ++i) {
      if (!active[i]) continue;
      remaining[i] -= rate[i] * dt;
      if (remaining[i] <= 1e-9) {
        remaining[i] = 0;
        active[i] = false;
        --active_count;
        result[i].finish_time = now;
      }
    }
  }
  return result;
}

Seconds contended_makespan(const std::vector<BandwidthDemand>& demands,
                           BytesPerSecond shared_bw) {
  Seconds makespan = 0.0;
  for (const auto& share : contended_schedule(demands, shared_bw)) {
    makespan = std::max(makespan, share.finish_time);
  }
  return makespan;
}

}  // namespace cig::mem
