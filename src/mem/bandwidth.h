// Shared-DRAM bandwidth arbitration.
//
// When CPU and iGPU run concurrently (the zero-copy overlapped pattern) they
// contend for the single LPDDR interface. `contended_schedule` computes each
// agent's finish time under fair progressive sharing (water-filling): while
// k agents are active each receives min(cap_i, fair share of the remaining
// shared bandwidth); when one finishes, its share is redistributed.
#pragma once

#include <vector>

#include "support/units.h"

namespace cig::mem {

struct BandwidthDemand {
  double bytes = 0;                   // total bytes the agent must move
  BytesPerSecond cap = GBps(1e9);     // agent's private link limit
};

struct BandwidthShare {
  Seconds finish_time = 0;            // when this agent completes
};

// Returns per-agent finish times. Agents with zero bytes finish at t=0.
std::vector<BandwidthShare> contended_schedule(
    const std::vector<BandwidthDemand>& demands, BytesPerSecond shared_bw);

// Convenience: makespan of the contended schedule.
Seconds contended_makespan(const std::vector<BandwidthDemand>& demands,
                           BytesPerSecond shared_bw);

}  // namespace cig::mem
